file(REMOVE_RECURSE
  "CMakeFiles/plan_gallery.dir/plan_gallery.cpp.o"
  "CMakeFiles/plan_gallery.dir/plan_gallery.cpp.o.d"
  "plan_gallery"
  "plan_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
