# Empty dependencies file for plan_gallery.
# This may be replaced when dependencies are built.
