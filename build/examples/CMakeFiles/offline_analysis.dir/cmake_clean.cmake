file(REMOVE_RECURSE
  "CMakeFiles/offline_analysis.dir/offline_analysis.cpp.o"
  "CMakeFiles/offline_analysis.dir/offline_analysis.cpp.o.d"
  "offline_analysis"
  "offline_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
