# Empty dependencies file for offline_analysis.
# This may be replaced when dependencies are built.
