file(REMOVE_RECURSE
  "CMakeFiles/mal_debugger.dir/mal_debugger.cpp.o"
  "CMakeFiles/mal_debugger.dir/mal_debugger.cpp.o.d"
  "mal_debugger"
  "mal_debugger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mal_debugger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
