# Empty dependencies file for mal_debugger.
# This may be replaced when dependencies are built.
