file(REMOVE_RECURSE
  "CMakeFiles/scope_test.dir/scope_test.cc.o"
  "CMakeFiles/scope_test.dir/scope_test.cc.o.d"
  "scope_test"
  "scope_test.pdb"
  "scope_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scope_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
