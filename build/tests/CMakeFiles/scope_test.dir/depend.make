# Empty dependencies file for scope_test.
# This may be replaced when dependencies are built.
