# Empty dependencies file for debugger_test.
# This may be replaced when dependencies are built.
