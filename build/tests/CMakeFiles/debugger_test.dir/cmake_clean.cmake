file(REMOVE_RECURSE
  "CMakeFiles/debugger_test.dir/debugger_test.cc.o"
  "CMakeFiles/debugger_test.dir/debugger_test.cc.o.d"
  "debugger_test"
  "debugger_test.pdb"
  "debugger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debugger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
