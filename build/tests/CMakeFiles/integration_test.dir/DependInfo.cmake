
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/integration_test.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scope/CMakeFiles/stetho_scope.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/stetho_server.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/stetho_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/stetho_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/stetho_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/stetho_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/stetho_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/stetho_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/dot/CMakeFiles/stetho_dot.dir/DependInfo.cmake"
  "/root/repo/build/src/mal/CMakeFiles/stetho_mal.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/stetho_net.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/stetho_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/stetho_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stetho_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
