# Empty dependencies file for sql_oracle_test.
# This may be replaced when dependencies are built.
