file(REMOVE_RECURSE
  "CMakeFiles/sql_oracle_test.dir/sql_oracle_test.cc.o"
  "CMakeFiles/sql_oracle_test.dir/sql_oracle_test.cc.o.d"
  "sql_oracle_test"
  "sql_oracle_test.pdb"
  "sql_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
