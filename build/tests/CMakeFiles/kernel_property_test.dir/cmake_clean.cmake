file(REMOVE_RECURSE
  "CMakeFiles/kernel_property_test.dir/kernel_property_test.cc.o"
  "CMakeFiles/kernel_property_test.dir/kernel_property_test.cc.o.d"
  "kernel_property_test"
  "kernel_property_test.pdb"
  "kernel_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
