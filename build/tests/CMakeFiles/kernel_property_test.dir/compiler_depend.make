# Empty compiler generated dependencies file for kernel_property_test.
# This may be replaced when dependencies are built.
