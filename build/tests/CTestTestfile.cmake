# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/mal_test[1]_include.cmake")
include("/root/repo/build/tests/profiler_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/tpch_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/dot_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/viz_test[1]_include.cmake")
include("/root/repo/build/tests/scope_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/timeline_test[1]_include.cmake")
include("/root/repo/build/tests/debugger_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_property_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/sql_oracle_test[1]_include.cmake")
