file(REMOVE_RECURSE
  "CMakeFiles/stethoscope.dir/stethoscope_cli.cpp.o"
  "CMakeFiles/stethoscope.dir/stethoscope_cli.cpp.o.d"
  "stethoscope"
  "stethoscope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stethoscope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
