# Empty dependencies file for stethoscope.
# This may be replaced when dependencies are built.
