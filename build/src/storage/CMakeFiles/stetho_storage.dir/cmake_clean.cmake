file(REMOVE_RECURSE
  "CMakeFiles/stetho_storage.dir/column.cc.o"
  "CMakeFiles/stetho_storage.dir/column.cc.o.d"
  "CMakeFiles/stetho_storage.dir/table.cc.o"
  "CMakeFiles/stetho_storage.dir/table.cc.o.d"
  "CMakeFiles/stetho_storage.dir/value.cc.o"
  "CMakeFiles/stetho_storage.dir/value.cc.o.d"
  "libstetho_storage.a"
  "libstetho_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stetho_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
