file(REMOVE_RECURSE
  "libstetho_storage.a"
)
