# Empty compiler generated dependencies file for stetho_storage.
# This may be replaced when dependencies are built.
