file(REMOVE_RECURSE
  "CMakeFiles/stetho_layout.dir/sugiyama.cc.o"
  "CMakeFiles/stetho_layout.dir/sugiyama.cc.o.d"
  "CMakeFiles/stetho_layout.dir/svg.cc.o"
  "CMakeFiles/stetho_layout.dir/svg.cc.o.d"
  "libstetho_layout.a"
  "libstetho_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stetho_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
