# Empty dependencies file for stetho_layout.
# This may be replaced when dependencies are built.
