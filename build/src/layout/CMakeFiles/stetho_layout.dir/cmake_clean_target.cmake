file(REMOVE_RECURSE
  "libstetho_layout.a"
)
