file(REMOVE_RECURSE
  "libstetho_scope.a"
)
