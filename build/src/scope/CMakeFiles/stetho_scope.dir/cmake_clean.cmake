file(REMOVE_RECURSE
  "CMakeFiles/stetho_scope.dir/analysis.cc.o"
  "CMakeFiles/stetho_scope.dir/analysis.cc.o.d"
  "CMakeFiles/stetho_scope.dir/coloring.cc.o"
  "CMakeFiles/stetho_scope.dir/coloring.cc.o.d"
  "CMakeFiles/stetho_scope.dir/mapping.cc.o"
  "CMakeFiles/stetho_scope.dir/mapping.cc.o.d"
  "CMakeFiles/stetho_scope.dir/online.cc.o"
  "CMakeFiles/stetho_scope.dir/online.cc.o.d"
  "CMakeFiles/stetho_scope.dir/replayer.cc.o"
  "CMakeFiles/stetho_scope.dir/replayer.cc.o.d"
  "CMakeFiles/stetho_scope.dir/session.cc.o"
  "CMakeFiles/stetho_scope.dir/session.cc.o.d"
  "CMakeFiles/stetho_scope.dir/textual.cc.o"
  "CMakeFiles/stetho_scope.dir/textual.cc.o.d"
  "CMakeFiles/stetho_scope.dir/timeline.cc.o"
  "CMakeFiles/stetho_scope.dir/timeline.cc.o.d"
  "CMakeFiles/stetho_scope.dir/trace.cc.o"
  "CMakeFiles/stetho_scope.dir/trace.cc.o.d"
  "libstetho_scope.a"
  "libstetho_scope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stetho_scope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
