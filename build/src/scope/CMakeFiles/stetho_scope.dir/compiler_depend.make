# Empty compiler generated dependencies file for stetho_scope.
# This may be replaced when dependencies are built.
