file(REMOVE_RECURSE
  "libstetho_server.a"
)
