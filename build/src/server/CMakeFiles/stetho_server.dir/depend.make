# Empty dependencies file for stetho_server.
# This may be replaced when dependencies are built.
