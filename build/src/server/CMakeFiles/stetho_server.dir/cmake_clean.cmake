file(REMOVE_RECURSE
  "CMakeFiles/stetho_server.dir/mserver.cc.o"
  "CMakeFiles/stetho_server.dir/mserver.cc.o.d"
  "CMakeFiles/stetho_server.dir/result_printer.cc.o"
  "CMakeFiles/stetho_server.dir/result_printer.cc.o.d"
  "libstetho_server.a"
  "libstetho_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stetho_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
