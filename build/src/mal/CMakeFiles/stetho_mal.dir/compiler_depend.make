# Empty compiler generated dependencies file for stetho_mal.
# This may be replaced when dependencies are built.
