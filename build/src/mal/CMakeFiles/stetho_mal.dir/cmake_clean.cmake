file(REMOVE_RECURSE
  "CMakeFiles/stetho_mal.dir/parser.cc.o"
  "CMakeFiles/stetho_mal.dir/parser.cc.o.d"
  "CMakeFiles/stetho_mal.dir/program.cc.o"
  "CMakeFiles/stetho_mal.dir/program.cc.o.d"
  "CMakeFiles/stetho_mal.dir/types.cc.o"
  "CMakeFiles/stetho_mal.dir/types.cc.o.d"
  "libstetho_mal.a"
  "libstetho_mal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stetho_mal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
