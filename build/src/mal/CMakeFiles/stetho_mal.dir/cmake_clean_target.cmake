file(REMOVE_RECURSE
  "libstetho_mal.a"
)
