file(REMOVE_RECURSE
  "CMakeFiles/stetho_net.dir/channel.cc.o"
  "CMakeFiles/stetho_net.dir/channel.cc.o.d"
  "CMakeFiles/stetho_net.dir/trace_stream.cc.o"
  "CMakeFiles/stetho_net.dir/trace_stream.cc.o.d"
  "CMakeFiles/stetho_net.dir/udp.cc.o"
  "CMakeFiles/stetho_net.dir/udp.cc.o.d"
  "libstetho_net.a"
  "libstetho_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stetho_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
