file(REMOVE_RECURSE
  "libstetho_net.a"
)
