# Empty compiler generated dependencies file for stetho_net.
# This may be replaced when dependencies are built.
