# Empty dependencies file for stetho_dot.
# This may be replaced when dependencies are built.
