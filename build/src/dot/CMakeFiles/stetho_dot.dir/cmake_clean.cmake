file(REMOVE_RECURSE
  "CMakeFiles/stetho_dot.dir/graph.cc.o"
  "CMakeFiles/stetho_dot.dir/graph.cc.o.d"
  "CMakeFiles/stetho_dot.dir/parser.cc.o"
  "CMakeFiles/stetho_dot.dir/parser.cc.o.d"
  "CMakeFiles/stetho_dot.dir/writer.cc.o"
  "CMakeFiles/stetho_dot.dir/writer.cc.o.d"
  "libstetho_dot.a"
  "libstetho_dot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stetho_dot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
