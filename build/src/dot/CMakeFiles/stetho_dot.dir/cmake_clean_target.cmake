file(REMOVE_RECURSE
  "libstetho_dot.a"
)
