# Empty compiler generated dependencies file for stetho_profiler.
# This may be replaced when dependencies are built.
