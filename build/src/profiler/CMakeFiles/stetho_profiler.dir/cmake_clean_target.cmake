file(REMOVE_RECURSE
  "libstetho_profiler.a"
)
