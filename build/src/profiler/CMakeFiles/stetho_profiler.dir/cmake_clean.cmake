file(REMOVE_RECURSE
  "CMakeFiles/stetho_profiler.dir/event.cc.o"
  "CMakeFiles/stetho_profiler.dir/event.cc.o.d"
  "CMakeFiles/stetho_profiler.dir/filter.cc.o"
  "CMakeFiles/stetho_profiler.dir/filter.cc.o.d"
  "CMakeFiles/stetho_profiler.dir/profiler.cc.o"
  "CMakeFiles/stetho_profiler.dir/profiler.cc.o.d"
  "CMakeFiles/stetho_profiler.dir/sink.cc.o"
  "CMakeFiles/stetho_profiler.dir/sink.cc.o.d"
  "libstetho_profiler.a"
  "libstetho_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stetho_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
