
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiler/event.cc" "src/profiler/CMakeFiles/stetho_profiler.dir/event.cc.o" "gcc" "src/profiler/CMakeFiles/stetho_profiler.dir/event.cc.o.d"
  "/root/repo/src/profiler/filter.cc" "src/profiler/CMakeFiles/stetho_profiler.dir/filter.cc.o" "gcc" "src/profiler/CMakeFiles/stetho_profiler.dir/filter.cc.o.d"
  "/root/repo/src/profiler/profiler.cc" "src/profiler/CMakeFiles/stetho_profiler.dir/profiler.cc.o" "gcc" "src/profiler/CMakeFiles/stetho_profiler.dir/profiler.cc.o.d"
  "/root/repo/src/profiler/sink.cc" "src/profiler/CMakeFiles/stetho_profiler.dir/sink.cc.o" "gcc" "src/profiler/CMakeFiles/stetho_profiler.dir/sink.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/stetho_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
