# Empty compiler generated dependencies file for stetho_viz.
# This may be replaced when dependencies are built.
