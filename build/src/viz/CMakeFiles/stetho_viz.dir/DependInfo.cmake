
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/animation.cc" "src/viz/CMakeFiles/stetho_viz.dir/animation.cc.o" "gcc" "src/viz/CMakeFiles/stetho_viz.dir/animation.cc.o.d"
  "/root/repo/src/viz/camera.cc" "src/viz/CMakeFiles/stetho_viz.dir/camera.cc.o" "gcc" "src/viz/CMakeFiles/stetho_viz.dir/camera.cc.o.d"
  "/root/repo/src/viz/color.cc" "src/viz/CMakeFiles/stetho_viz.dir/color.cc.o" "gcc" "src/viz/CMakeFiles/stetho_viz.dir/color.cc.o.d"
  "/root/repo/src/viz/event_dispatch.cc" "src/viz/CMakeFiles/stetho_viz.dir/event_dispatch.cc.o" "gcc" "src/viz/CMakeFiles/stetho_viz.dir/event_dispatch.cc.o.d"
  "/root/repo/src/viz/lens.cc" "src/viz/CMakeFiles/stetho_viz.dir/lens.cc.o" "gcc" "src/viz/CMakeFiles/stetho_viz.dir/lens.cc.o.d"
  "/root/repo/src/viz/raster.cc" "src/viz/CMakeFiles/stetho_viz.dir/raster.cc.o" "gcc" "src/viz/CMakeFiles/stetho_viz.dir/raster.cc.o.d"
  "/root/repo/src/viz/renderer.cc" "src/viz/CMakeFiles/stetho_viz.dir/renderer.cc.o" "gcc" "src/viz/CMakeFiles/stetho_viz.dir/renderer.cc.o.d"
  "/root/repo/src/viz/virtual_space.cc" "src/viz/CMakeFiles/stetho_viz.dir/virtual_space.cc.o" "gcc" "src/viz/CMakeFiles/stetho_viz.dir/virtual_space.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/layout/CMakeFiles/stetho_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stetho_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dot/CMakeFiles/stetho_dot.dir/DependInfo.cmake"
  "/root/repo/build/src/mal/CMakeFiles/stetho_mal.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/stetho_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
