file(REMOVE_RECURSE
  "CMakeFiles/stetho_viz.dir/animation.cc.o"
  "CMakeFiles/stetho_viz.dir/animation.cc.o.d"
  "CMakeFiles/stetho_viz.dir/camera.cc.o"
  "CMakeFiles/stetho_viz.dir/camera.cc.o.d"
  "CMakeFiles/stetho_viz.dir/color.cc.o"
  "CMakeFiles/stetho_viz.dir/color.cc.o.d"
  "CMakeFiles/stetho_viz.dir/event_dispatch.cc.o"
  "CMakeFiles/stetho_viz.dir/event_dispatch.cc.o.d"
  "CMakeFiles/stetho_viz.dir/lens.cc.o"
  "CMakeFiles/stetho_viz.dir/lens.cc.o.d"
  "CMakeFiles/stetho_viz.dir/raster.cc.o"
  "CMakeFiles/stetho_viz.dir/raster.cc.o.d"
  "CMakeFiles/stetho_viz.dir/renderer.cc.o"
  "CMakeFiles/stetho_viz.dir/renderer.cc.o.d"
  "CMakeFiles/stetho_viz.dir/virtual_space.cc.o"
  "CMakeFiles/stetho_viz.dir/virtual_space.cc.o.d"
  "libstetho_viz.a"
  "libstetho_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stetho_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
