file(REMOVE_RECURSE
  "libstetho_viz.a"
)
