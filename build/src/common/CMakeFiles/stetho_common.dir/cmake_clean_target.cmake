file(REMOVE_RECURSE
  "libstetho_common.a"
)
