file(REMOVE_RECURSE
  "CMakeFiles/stetho_common.dir/clock.cc.o"
  "CMakeFiles/stetho_common.dir/clock.cc.o.d"
  "CMakeFiles/stetho_common.dir/logging.cc.o"
  "CMakeFiles/stetho_common.dir/logging.cc.o.d"
  "CMakeFiles/stetho_common.dir/status.cc.o"
  "CMakeFiles/stetho_common.dir/status.cc.o.d"
  "CMakeFiles/stetho_common.dir/string_util.cc.o"
  "CMakeFiles/stetho_common.dir/string_util.cc.o.d"
  "libstetho_common.a"
  "libstetho_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stetho_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
