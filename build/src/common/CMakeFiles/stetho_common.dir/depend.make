# Empty dependencies file for stetho_common.
# This may be replaced when dependencies are built.
