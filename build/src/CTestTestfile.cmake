# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("storage")
subdirs("mal")
subdirs("profiler")
subdirs("engine")
subdirs("sql")
subdirs("net")
subdirs("server")
subdirs("viz")
subdirs("scope")
subdirs("tpch")
subdirs("optimizer")
subdirs("dot")
subdirs("layout")
