# Empty dependencies file for stetho_tpch.
# This may be replaced when dependencies are built.
