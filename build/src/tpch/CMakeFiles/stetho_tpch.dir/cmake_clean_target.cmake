file(REMOVE_RECURSE
  "libstetho_tpch.a"
)
