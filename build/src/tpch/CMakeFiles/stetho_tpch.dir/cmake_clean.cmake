file(REMOVE_RECURSE
  "CMakeFiles/stetho_tpch.dir/dbgen.cc.o"
  "CMakeFiles/stetho_tpch.dir/dbgen.cc.o.d"
  "CMakeFiles/stetho_tpch.dir/queries.cc.o"
  "CMakeFiles/stetho_tpch.dir/queries.cc.o.d"
  "libstetho_tpch.a"
  "libstetho_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stetho_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
