# Empty dependencies file for stetho_optimizer.
# This may be replaced when dependencies are built.
