file(REMOVE_RECURSE
  "libstetho_optimizer.a"
)
