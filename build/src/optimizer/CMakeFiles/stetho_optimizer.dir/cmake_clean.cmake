file(REMOVE_RECURSE
  "CMakeFiles/stetho_optimizer.dir/pass.cc.o"
  "CMakeFiles/stetho_optimizer.dir/pass.cc.o.d"
  "CMakeFiles/stetho_optimizer.dir/passes.cc.o"
  "CMakeFiles/stetho_optimizer.dir/passes.cc.o.d"
  "libstetho_optimizer.a"
  "libstetho_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stetho_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
