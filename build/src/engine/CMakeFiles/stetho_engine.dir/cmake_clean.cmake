file(REMOVE_RECURSE
  "CMakeFiles/stetho_engine.dir/debugger.cc.o"
  "CMakeFiles/stetho_engine.dir/debugger.cc.o.d"
  "CMakeFiles/stetho_engine.dir/interpreter.cc.o"
  "CMakeFiles/stetho_engine.dir/interpreter.cc.o.d"
  "CMakeFiles/stetho_engine.dir/kernel.cc.o"
  "CMakeFiles/stetho_engine.dir/kernel.cc.o.d"
  "CMakeFiles/stetho_engine.dir/kernels_algebra.cc.o"
  "CMakeFiles/stetho_engine.dir/kernels_algebra.cc.o.d"
  "CMakeFiles/stetho_engine.dir/kernels_core.cc.o"
  "CMakeFiles/stetho_engine.dir/kernels_core.cc.o.d"
  "CMakeFiles/stetho_engine.dir/kernels_group.cc.o"
  "CMakeFiles/stetho_engine.dir/kernels_group.cc.o.d"
  "libstetho_engine.a"
  "libstetho_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stetho_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
