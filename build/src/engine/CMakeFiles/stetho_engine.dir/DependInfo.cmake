
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/debugger.cc" "src/engine/CMakeFiles/stetho_engine.dir/debugger.cc.o" "gcc" "src/engine/CMakeFiles/stetho_engine.dir/debugger.cc.o.d"
  "/root/repo/src/engine/interpreter.cc" "src/engine/CMakeFiles/stetho_engine.dir/interpreter.cc.o" "gcc" "src/engine/CMakeFiles/stetho_engine.dir/interpreter.cc.o.d"
  "/root/repo/src/engine/kernel.cc" "src/engine/CMakeFiles/stetho_engine.dir/kernel.cc.o" "gcc" "src/engine/CMakeFiles/stetho_engine.dir/kernel.cc.o.d"
  "/root/repo/src/engine/kernels_algebra.cc" "src/engine/CMakeFiles/stetho_engine.dir/kernels_algebra.cc.o" "gcc" "src/engine/CMakeFiles/stetho_engine.dir/kernels_algebra.cc.o.d"
  "/root/repo/src/engine/kernels_core.cc" "src/engine/CMakeFiles/stetho_engine.dir/kernels_core.cc.o" "gcc" "src/engine/CMakeFiles/stetho_engine.dir/kernels_core.cc.o.d"
  "/root/repo/src/engine/kernels_group.cc" "src/engine/CMakeFiles/stetho_engine.dir/kernels_group.cc.o" "gcc" "src/engine/CMakeFiles/stetho_engine.dir/kernels_group.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mal/CMakeFiles/stetho_mal.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/stetho_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/stetho_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stetho_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
