# Empty dependencies file for stetho_engine.
# This may be replaced when dependencies are built.
