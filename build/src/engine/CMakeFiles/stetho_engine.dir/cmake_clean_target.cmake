file(REMOVE_RECURSE
  "libstetho_engine.a"
)
