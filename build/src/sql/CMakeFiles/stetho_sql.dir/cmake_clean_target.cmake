file(REMOVE_RECURSE
  "libstetho_sql.a"
)
