file(REMOVE_RECURSE
  "CMakeFiles/stetho_sql.dir/ast.cc.o"
  "CMakeFiles/stetho_sql.dir/ast.cc.o.d"
  "CMakeFiles/stetho_sql.dir/compiler.cc.o"
  "CMakeFiles/stetho_sql.dir/compiler.cc.o.d"
  "CMakeFiles/stetho_sql.dir/lexer.cc.o"
  "CMakeFiles/stetho_sql.dir/lexer.cc.o.d"
  "CMakeFiles/stetho_sql.dir/parser.cc.o"
  "CMakeFiles/stetho_sql.dir/parser.cc.o.d"
  "libstetho_sql.a"
  "libstetho_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stetho_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
