# Empty compiler generated dependencies file for stetho_sql.
# This may be replaced when dependencies are built.
