# Empty dependencies file for bench_c1_edt_pacing.
# This may be replaced when dependencies are built.
