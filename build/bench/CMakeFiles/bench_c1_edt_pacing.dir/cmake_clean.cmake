file(REMOVE_RECURSE
  "CMakeFiles/bench_c1_edt_pacing.dir/bench_c1_edt_pacing.cc.o"
  "CMakeFiles/bench_c1_edt_pacing.dir/bench_c1_edt_pacing.cc.o.d"
  "bench_c1_edt_pacing"
  "bench_c1_edt_pacing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c1_edt_pacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
