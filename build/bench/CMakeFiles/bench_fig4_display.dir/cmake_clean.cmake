file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_display.dir/bench_fig4_display.cc.o"
  "CMakeFiles/bench_fig4_display.dir/bench_fig4_display.cc.o.d"
  "bench_fig4_display"
  "bench_fig4_display.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_display.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
