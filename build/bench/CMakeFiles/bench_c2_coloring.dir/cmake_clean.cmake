file(REMOVE_RECURSE
  "CMakeFiles/bench_c2_coloring.dir/bench_c2_coloring.cc.o"
  "CMakeFiles/bench_c2_coloring.dir/bench_c2_coloring.cc.o.d"
  "bench_c2_coloring"
  "bench_c2_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c2_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
