# Empty dependencies file for bench_fig3_trace.
# This may be replaced when dependencies are built.
