file(REMOVE_RECURSE
  "CMakeFiles/bench_c4_multicore.dir/bench_c4_multicore.cc.o"
  "CMakeFiles/bench_c4_multicore.dir/bench_c4_multicore.cc.o.d"
  "bench_c4_multicore"
  "bench_c4_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c4_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
