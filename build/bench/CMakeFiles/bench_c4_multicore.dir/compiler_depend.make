# Empty compiler generated dependencies file for bench_c4_multicore.
# This may be replaced when dependencies are built.
