# Empty compiler generated dependencies file for bench_fig1_mal_plan.
# This may be replaced when dependencies are built.
