file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_mal_plan.dir/bench_fig1_mal_plan.cc.o"
  "CMakeFiles/bench_fig1_mal_plan.dir/bench_fig1_mal_plan.cc.o.d"
  "bench_fig1_mal_plan"
  "bench_fig1_mal_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_mal_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
