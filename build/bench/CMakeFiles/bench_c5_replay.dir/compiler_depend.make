# Empty compiler generated dependencies file for bench_c5_replay.
# This may be replaced when dependencies are built.
