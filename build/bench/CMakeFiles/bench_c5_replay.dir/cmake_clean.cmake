file(REMOVE_RECURSE
  "CMakeFiles/bench_c5_replay.dir/bench_c5_replay.cc.o"
  "CMakeFiles/bench_c5_replay.dir/bench_c5_replay.cc.o.d"
  "bench_c5_replay"
  "bench_c5_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c5_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
