file(REMOVE_RECURSE
  "CMakeFiles/bench_c3_udp_stream.dir/bench_c3_udp_stream.cc.o"
  "CMakeFiles/bench_c3_udp_stream.dir/bench_c3_udp_stream.cc.o.d"
  "bench_c3_udp_stream"
  "bench_c3_udp_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c3_udp_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
