# Empty dependencies file for bench_c3_udp_stream.
# This may be replaced when dependencies are built.
