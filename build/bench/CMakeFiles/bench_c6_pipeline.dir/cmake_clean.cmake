file(REMOVE_RECURSE
  "CMakeFiles/bench_c6_pipeline.dir/bench_c6_pipeline.cc.o"
  "CMakeFiles/bench_c6_pipeline.dir/bench_c6_pipeline.cc.o.d"
  "bench_c6_pipeline"
  "bench_c6_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c6_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
