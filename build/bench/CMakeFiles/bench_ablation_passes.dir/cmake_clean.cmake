file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_passes.dir/bench_ablation_passes.cc.o"
  "CMakeFiles/bench_ablation_passes.dir/bench_ablation_passes.cc.o.d"
  "bench_ablation_passes"
  "bench_ablation_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
