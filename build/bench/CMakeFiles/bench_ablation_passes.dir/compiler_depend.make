# Empty compiler generated dependencies file for bench_ablation_passes.
# This may be replaced when dependencies are built.
