file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_large_graph.dir/bench_fig2_large_graph.cc.o"
  "CMakeFiles/bench_fig2_large_graph.dir/bench_fig2_large_graph.cc.o.d"
  "bench_fig2_large_graph"
  "bench_fig2_large_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_large_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
