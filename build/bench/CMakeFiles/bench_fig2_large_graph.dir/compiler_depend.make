# Empty compiler generated dependencies file for bench_fig2_large_graph.
# This may be replaced when dependencies are built.
