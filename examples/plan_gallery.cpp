// Plan gallery: renders every TPC-H query's MAL plan through the full
// dot → layout → SVG pipeline, plus one mitosis-inflated plan of >1000
// nodes (the paper's Fig. 2 "large graph for a complex SQL query").

#include <cstdio>
#include <fstream>

#include "dot/parser.h"
#include "dot/writer.h"
#include "layout/svg.h"
#include "layout/sugiyama.h"
#include "server/mserver.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace stetho;

namespace {

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

/// Renders one plan, writes <name>.svg, prints stats.
Status RenderPlan(const std::string& name, const std::string& dot_text) {
  STETHO_ASSIGN_OR_RETURN(dot::Graph graph, dot::ParseDot(dot_text));
  STETHO_ASSIGN_OR_RETURN(layout::GraphLayout layout,
                          layout::LayoutGraph(graph));
  int max_layer = 0;
  for (const auto& n : layout.nodes) max_layer = std::max(max_layer, n.layer);
  std::string svg = layout::LayoutToSvg(graph, layout);
  std::ofstream(name + ".svg") << svg;
  std::printf("  %-18s nodes=%-5zu edges=%-5zu layers=%-3d crossings=%-5lld "
              "canvas=%.0fx%.0f -> %s.svg\n",
              name.c_str(), graph.num_nodes(), graph.num_edges(),
              max_layer + 1, static_cast<long long>(layout.crossings),
              layout.width, layout.height, name.c_str());
  return Status::OK();
}

}  // namespace

int main() {
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  auto catalog = tpch::GenerateTpch(config);
  if (!catalog.ok()) return Fail(catalog.status());

  std::printf("== plan gallery (one SVG per query) ==\n");
  {
    server::MserverOptions options;
    options.mitosis_pieces = 4;
    server::Mserver server(std::move(catalog.value()), options);
    for (const auto& q : tpch::TpchQueries()) {
      auto plan = server.Explain(q.sql);
      if (!plan.ok()) return Fail(plan.status());
      dot::DotWriterOptions dot_options;
      dot_options.graph_name = "user." + q.id;
      dot_options.max_label_chars = 48;
      std::string dot_text = dot::ProgramToDot(plan.value(), dot_options);
      if (auto st = RenderPlan("plan_" + q.id, dot_text); !st.ok()) {
        return Fail(st);
      }
    }
  }

  // Fig. 2: a very large plan graph. Heavy mitosis over the widest query
  // pushes the node count beyond 1000.
  std::printf("\n== large-graph rendering (paper Fig. 2, >1000 nodes) ==\n");
  {
    auto catalog2 = tpch::GenerateTpch(config);
    if (!catalog2.ok()) return Fail(catalog2.status());
    server::MserverOptions options;
    options.mitosis_pieces = 128;
    server::Mserver server(std::move(catalog2.value()), options);
    auto plan = server.Explain(tpch::GetQuery("scan_heavy").value().sql);
    if (!plan.ok()) return Fail(plan.status());
    if (plan.value().size() <= 1000) {
      std::fprintf(stderr, "expected >1000 nodes, got %zu\n",
                   plan.value().size());
      return 1;
    }
    dot::DotWriterOptions dot_options;
    dot_options.graph_name = "user.large";
    dot_options.max_label_chars = 24;
    if (auto st = RenderPlan("plan_large",
                             dot::ProgramToDot(plan.value(), dot_options));
        !st.ok()) {
      return Fail(st);
    }
  }
  std::printf("\nplan gallery OK\n");
  return 0;
}
