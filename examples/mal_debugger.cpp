// The GDB-like MAL debugger (paper §2): step through a MAL plan, set
// breakpoints on pcs or operators, and inspect intermediate BATs — the
// runtime-inspection baseline that Stethoscope's visual interface improves
// upon.

#include <cstdio>

#include "engine/debugger.h"
#include "optimizer/pass.h"
#include "sql/compiler.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace stetho;

int main() {
  tpch::TpchConfig config;
  config.scale_factor = 0.005;
  auto catalog = tpch::GenerateTpch(config);
  if (!catalog.ok()) return 1;

  auto program = sql::Compiler::CompileSql(
      &catalog.value(), "select l_tax from lineitem where l_partkey = 1");
  if (!program.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  std::printf("== plan under debug ==\n%s\n",
              program.value().ToString().c_str());

  auto dbg = engine::MalDebugger::Create(&program.value(), &catalog.value());
  if (!dbg.ok()) return 1;

  // Step through the catalog-access prefix, inspecting as we go.
  std::printf("== stepping ==\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("next: %s\n", dbg.value()->CurrentInstruction().c_str());
    if (!dbg.value()->Step().ok()) return 1;
  }
  std::printf("\n== info locals after 3 steps ==\n");
  for (const std::string& var : dbg.value()->ListVariables()) {
    std::printf("  %s\n", var.c_str());
  }

  // Break on the selection operator, continue, inspect the candidate list.
  dbg.value()->BreakOn("algebra.thetaselect");
  auto stop = dbg.value()->Continue();
  if (!stop.ok()) return 1;
  std::printf("\n== stopped at breakpoint ==\n%s\n",
              dbg.value()->CurrentInstruction().c_str());
  if (!dbg.value()->Step().ok()) return 1;  // execute the select
  auto cand = dbg.value()->InspectVariable("X_3");
  if (cand.ok()) {
    std::printf("after select: %s\n", cand.value().c_str());
  }

  // Run to completion; every register remains inspectable.
  if (!dbg.value()->Continue().ok()) return 1;
  std::printf("\n== plan finished: %zu result column(s); all %zu variables "
              "still inspectable ==\n",
              dbg.value()->results_so_far(),
              dbg.value()->ListVariables().size());
  std::printf("mal debugger OK\n");
  return 0;
}
