// Quickstart: the paper's Fig. 1 pipeline in one sitting.
//
// Loads a small TPC-H catalog, starts an in-process Mserver, executes the
// paper's query (`select l_tax from lineitem where l_partkey = 1`), prints
// the optimized MAL plan (Fig. 1), an execution-trace excerpt (Fig. 3), and
// replays the trace through the Stethoscope scene with the pair-sequence
// coloring algorithm.

#include <cstdio>

#include "dot/parser.h"
#include "profiler/sink.h"
#include "scope/analysis.h"
#include "scope/mapping.h"
#include "scope/replayer.h"
#include "server/mserver.h"
#include "tpch/dbgen.h"

using namespace stetho;

int main() {
  // 1. Generate deterministic TPC-H data (SF 0.01 ≈ 60k lineitem rows).
  tpch::TpchConfig config;
  config.scale_factor = 0.01;
  auto catalog = tpch::GenerateTpch(config);
  if (!catalog.ok()) {
    std::fprintf(stderr, "dbgen failed: %s\n",
                 catalog.status().ToString().c_str());
    return 1;
  }
  std::printf("== TPC-H catalog ready: %zu lineitem rows ==\n",
              catalog.value().GetTable("lineitem").value()->num_rows());

  // 2. Start the server and attach an in-memory trace sink.
  server::MserverOptions options;
  options.dop = 4;
  options.mitosis_pieces = 4;
  server::Mserver server(std::move(catalog.value()), options);
  auto ring = std::make_shared<profiler::RingBufferSink>(1 << 16);
  server.profiler()->AddSink(ring);

  // 3. Execute the paper's query.
  auto outcome =
      server.ExecuteSql("select l_tax from lineitem where l_partkey = 1");
  if (!outcome.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== MAL plan (paper Fig. 1) ==\n%s\n",
              outcome.value().plan.ToString().c_str());
  std::printf("result rows: %zu, total %lld us\n",
              outcome.value().result.columns[0].column->size(),
              static_cast<long long>(outcome.value().result.total_usec));

  // 4. The execution trace (paper Fig. 3) — first 8 lines.
  std::printf("\n== execution trace excerpt (paper Fig. 3) ==\n");
  auto events = ring->Snapshot();
  for (size_t i = 0; i < events.size() && i < 8; ++i) {
    std::printf("%s\n", profiler::FormatTraceLine(events[i]).c_str());
  }
  std::printf("... (%zu events total)\n", events.size());

  // 5. Replay the trace on the plan graph with state coloring.
  auto graph = dot::ParseDot(outcome.value().dot);
  if (!graph.ok()) return 1;
  scope::ReplayOptions replay_options;
  replay_options.render_interval_us = 0;  // no pacing for a batch demo
  auto replayer = scope::OfflineReplayer::Create(
      graph.value(), events, replay_options);
  if (!replayer.ok()) return 1;
  auto played = replayer.value()->Play(/*speed=*/1e9, events.size());
  if (!played.ok()) return 1;
  std::printf("\n== replayed %zu events; node n4 tooltip ==\n%s\n",
              played.value(),
              replayer.value()->TooltipFor(scope::NodeForPc(4)).c_str());

  // 6. Run-time analyses.
  std::printf("\n== thread utilization ==\n%s",
              scope::AnalyzeThreadUtilization(events).ToString().c_str());
  auto ops = scope::AnalyzeOperators(events);
  std::printf("\n== top operators ==\n");
  for (size_t i = 0; i < ops.size() && i < 5; ++i) {
    std::printf("  %-22s calls=%-4lld total=%lldus max_rss=%lldB\n",
                ops[i].op.c_str(), static_cast<long long>(ops[i].calls),
                static_cast<long long>(ops[i].total_usec),
                static_cast<long long>(ops[i].max_rss_bytes));
  }
  std::printf("\nquickstart OK\n");
  return 0;
}
