// Online mode (paper §4.2 / §5 "Online Demo"): monitor live query execution.
//
// The server streams its plan's dot file and the profiler trace over the
// datagram stream; the textual Stethoscope demultiplexes them; a monitoring
// thread applies the §4.2.1 pair-sequence coloring algorithm to the glyph
// scene while the query runs. A second session shows the paper's anomaly:
// a server that silently executes sequentially although parallelism was
// expected.

#include <cstdio>
#include <fstream>

#include "scope/online.h"
#include "server/mserver.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace stetho;

namespace {

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

storage::Catalog MakeCatalog() {
  tpch::TpchConfig config;
  config.scale_factor = 0.01;
  auto catalog = tpch::GenerateTpch(config);
  if (!catalog.ok()) {
    std::fprintf(stderr, "dbgen failed\n");
    std::exit(1);
  }
  return std::move(catalog.value());
}

void PrintReport(const scope::OnlineReport& r) {
  std::printf("  query: %s\n", r.outcome.sql.c_str());
  std::printf("  plan nodes: %zu, events: %lld (filtered %lld)\n",
              r.graph_nodes, static_cast<long long>(r.events_received),
              static_cast<long long>(r.events_filtered));
  std::printf("  analysis rounds: %zu, node color updates: %zu\n",
              r.analysis_rounds, r.color_updates);
  std::printf("  progress: %.0f%%\n", 100.0 * r.final_progress);
  std::printf("  %s\n", r.parallelism.summary.c_str());
  std::printf("  utilization:\n%s", r.utilization.ToString().c_str());
}

}  // namespace

int main() {
  // ---- healthy parallel server ----
  {
    server::MserverOptions options;
    options.dop = 4;
    options.mitosis_pieces = 8;
    server::Mserver server(MakeCatalog(), options);

    scope::OnlineOptions online;
    online.render_interval_us = 1000;  // fast pacing: batch demo
    online.trace_path = "online_trace.trace";
    scope::OnlineMonitor monitor(&server, online);

    auto q6 = tpch::GetQuery("q6");
    if (!q6.ok()) return Fail(q6.status());
    std::printf("== monitoring TPC-H Q6 on a parallel server (dop=4, "
                "mitosis=8) ==\n");
    auto report = monitor.MonitorQuery(q6.value().sql);
    if (!report.ok()) return Fail(report.status());
    PrintReport(report.value());

    // The colored scene is available for inspection after the run.
    std::ofstream("online_display.svg")
        << monitor.scene()->BirdsEyeView().ToSvg();
    std::printf("  wrote online_display.svg and online_trace.trace\n");
  }

  // ---- the paper's uncovered anomaly: sequential where parallel expected --
  {
    server::MserverOptions options;
    options.dop = 4;
    options.mitosis_pieces = 8;
    options.force_sequential = true;  // the kernel misbehaves
    server::Mserver server(MakeCatalog(), options);

    scope::OnlineOptions online;
    online.render_interval_us = 1000;
    scope::OnlineMonitor monitor(&server, online);
    std::printf("\n== same query on a misbehaving server ==\n");
    auto report = monitor.MonitorQuery(tpch::GetQuery("q6").value().sql);
    if (!report.ok()) return Fail(report.status());
    PrintReport(report.value());
    if (!report.value().parallelism.sequential_anomaly) {
      std::fprintf(stderr, "expected the sequential-execution anomaly!\n");
      return 1;
    }
  }
  std::printf("\nonline monitoring OK\n");
  return 0;
}
