// Interactive navigation (paper §5 demo features): a scripted session that
// reproduces the demo walk-through — animated zoom, node-to-node
// navigation, fisheye lens, step-by-step trace replay with tool-tip and
// debug-window inspection, and a final birds-eye view.
//
// Pass commands as arguments to drive your own session, e.g.
//   ./interactive_session "zoom fit" "focus n4" "lens on 4" "play 8 20" view

#include <cstdio>
#include <fstream>
#include <vector>

#include "common/clock.h"
#include "dot/parser.h"
#include "profiler/sink.h"
#include "scope/session.h"
#include "server/mserver.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace stetho;

int main(int argc, char** argv) {
  // Record a query.
  tpch::TpchConfig config;
  config.scale_factor = 0.005;
  auto catalog = tpch::GenerateTpch(config);
  if (!catalog.ok()) return 1;
  server::MserverOptions options;
  options.dop = 2;
  options.mitosis_pieces = 4;
  server::Mserver server(std::move(catalog.value()), options);
  auto ring = std::make_shared<profiler::RingBufferSink>(1 << 16);
  server.profiler()->AddSink(ring);
  auto outcome = server.ExecuteSql(tpch::GetQuery("q3").value().sql);
  if (!outcome.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  auto graph = dot::ParseDot(outcome.value().dot);
  if (!graph.ok()) return 1;

  // Build the replay scene and session (virtual clock: animations are
  // deterministic and instantaneous in wall time).
  VirtualClock clock;
  scope::ReplayOptions replay;
  replay.clock = &clock;
  replay.render_interval_us = 1000;
  auto replayer =
      scope::OfflineReplayer::Create(graph.value(), ring->Snapshot(), replay);
  if (!replayer.ok()) return 1;
  scope::InteractiveSession session(replayer.value().get(), &clock);

  std::vector<std::string> script;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) script.emplace_back(argv[i]);
  } else {
    script = {
        "zoom fit",   "progress",    "step",      "step",     "step",
        "tooltip n2", "focus n2",    "zoom in",   "zoom in",  "lens on 3",
        "view",       "lens off",    "next",      "next",     "play 1e6 40",
        "debug",      "seek 10",     "progress",  "rewind",   "play 1e6 100000",
        "progress",   "zoom fit",    "birdseye",
    };
  }

  std::printf("== interactive session over TPC-H Q3 (%zu plan nodes, %zu "
              "trace events) ==\n\n",
              graph.value().num_nodes(), replayer.value()->size());
  for (const std::string& command : script) {
    auto response = session.Execute(command);
    std::printf("> %s\n", command.c_str());
    if (response.ok()) {
      std::printf("%s\n\n", response.value().c_str());
    } else {
      std::printf("error: %s\n\n", response.status().ToString().c_str());
    }
  }

  std::ofstream("session_view.svg") << session.Render().ToSvg();
  std::printf("wrote session_view.svg (%zu commands executed)\n",
              session.transcript().size());
  return 0;
}
