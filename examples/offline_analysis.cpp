// Offline mode (paper §4.1 / §5 "Offline Demo"): record a query's dot and
// trace files to disk, then analyze them in a fresh Stethoscope session —
// trace replay with step / fast-forward / rewind, costly-instruction
// clustering, thread utilization, per-operator memory usage, and a rendered
// display window (paper Fig. 4) written as SVG.

#include <cstdio>
#include <fstream>

#include "dot/parser.h"
#include "net/trace_stream.h"
#include "profiler/sink.h"
#include "scope/analysis.h"
#include "scope/coloring.h"
#include "scope/replayer.h"
#include "scope/timeline.h"
#include "scope/trace.h"
#include "server/mserver.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace stetho;

namespace {

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string query_id = argc > 1 ? argv[1] : "q3";
  const std::string dot_path = "offline_plan.dot";
  const std::string trace_path = "offline_trace.trace";

  // ---- recording session ----
  {
    tpch::TpchConfig config;
    config.scale_factor = 0.01;
    auto catalog = tpch::GenerateTpch(config);
    if (!catalog.ok()) return Fail(catalog.status());
    server::MserverOptions options;
    options.dop = 4;
    options.mitosis_pieces = 4;
    server::Mserver server(std::move(catalog.value()), options);

    auto file_sink = profiler::FileSink::Open(trace_path);
    if (!file_sink.ok()) return Fail(file_sink.status());
    server.profiler()->AddSink(std::move(file_sink).value());

    auto query = tpch::GetQuery(query_id);
    if (!query.ok()) return Fail(query.status());
    std::printf("recording query '%s': %s\n", query_id.c_str(),
                query.value().title.c_str());
    auto outcome = server.ExecuteSql(query.value().sql);
    if (!outcome.ok()) return Fail(outcome.status());

    std::ofstream dot_file(dot_path);
    dot_file << outcome.value().dot;
    std::printf("wrote %s (%zu plan nodes) and %s\n", dot_path.c_str(),
                outcome.value().plan.size(), trace_path.c_str());
  }

  // ---- offline analysis session: only the two files are used ----
  std::ifstream dot_in(dot_path);
  std::string dot_text((std::istreambuf_iterator<char>(dot_in)),
                       std::istreambuf_iterator<char>());
  auto graph = dot::ParseDot(dot_text);
  if (!graph.ok()) return Fail(graph.status());
  auto events = scope::ReadTraceFile(trace_path);
  if (!events.ok()) return Fail(events.status());
  std::printf("\noffline session: %zu graph nodes, %zu trace events\n",
              graph.value().num_nodes(), events.value().size());

  scope::ReplayOptions replay_options;
  replay_options.render_interval_us = 0;
  replay_options.mode = scope::ColoringMode::kGradient;
  auto replayer = scope::OfflineReplayer::Create(graph.value(),
                                                 events.value(), replay_options);
  if (!replayer.ok()) return Fail(replayer.status());

  // Step-by-step walk-through of the first events...
  for (int i = 0; i < 4; ++i) {
    if (!replayer.value()->Step().ok()) break;
    std::printf("step %d -> %s\n", i + 1,
                replayer.value()->DebugWindowText().c_str());
  }
  // ...then fast-forward to the end, rewind, and seek to the middle.
  if (auto p = replayer.value()->Play(1e9, events.value().size()); !p.ok()) {
    return Fail(p.status());
  }
  std::printf("\nfast-forwarded to event %zu/%zu\n", replayer.value()->cursor(),
              replayer.value()->size());
  replayer.value()->Rewind();
  if (auto st = replayer.value()->SeekTo(events.value().size() / 2); !st.ok()) {
    return Fail(st);
  }
  std::printf("rewound and sought to event %zu\n", replayer.value()->cursor());
  if (auto st = replayer.value()->SeekTo(events.value().size()); !st.ok()) {
    return Fail(st);
  }

  // Costly-instruction clustering over the full trace.
  auto clusters = scope::FindCostlyClusters(events.value(), /*min_usec=*/100);
  std::printf("\ncostly-instruction clusters (>=100us):\n");
  for (size_t i = 0; i < clusters.size() && i < 5; ++i) {
    std::printf("  cluster %zu: events [%zu..%zu], %zu instructions, %lldus\n",
                i, clusters[i].first_event, clusters[i].last_event,
                clusters[i].pcs.size(),
                static_cast<long long>(clusters[i].total_usec));
  }

  // Thread utilization + operator memory.
  std::printf("\n%s", scope::AnalyzeThreadUtilization(events.value())
                          .ToString()
                          .c_str());
  auto ops = scope::AnalyzeOperators(events.value());
  std::printf("\nper-operator profile (top 8 by total time):\n");
  for (size_t i = 0; i < ops.size() && i < 8; ++i) {
    std::printf("  %-22s calls=%-5lld total=%-8lldus peak_rss=%lldB\n",
                ops[i].op.c_str(), static_cast<long long>(ops[i].calls),
                static_cast<long long>(ops[i].total_usec),
                static_cast<long long>(ops[i].max_rss_bytes));
  }

  // Per-thread utilization timeline (Gantt) artifact.
  std::ofstream("offline_timeline.svg")
      << scope::RenderUtilizationTimeline(events.value());
  std::printf("wrote offline_timeline.svg\n");

  // Birds-eye view + display window (paper Fig. 4) as SVG artifacts.
  std::ofstream("offline_birdseye.svg")
      << replayer.value()->BirdsEyeView().ToSvg();
  (void)replayer.value()->FocusNode("n4");
  std::ofstream("offline_display.svg")
      << replayer.value()->CurrentView().ToSvg();
  std::printf("\nwrote offline_birdseye.svg and offline_display.svg\n");
  std::printf("offline analysis OK\n");
  return 0;
}
