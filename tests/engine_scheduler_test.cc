// Stress and failure-path tests for the persistent work-stealing dataflow
// scheduler: many concurrent Executes sharing the process-wide WorkerPool
// (the TSan target), trace-contract conformance under that concurrency, and
// the abort-drain guarantee when a kernel fails mid-flight.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "analysis/checks.h"
#include "analysis/diagnostic.h"
#include "common/clock.h"
#include "engine/interpreter.h"
#include "engine/kernel.h"
#include "engine/worker_pool.h"
#include "mal/program.h"
#include "profiler/profiler.h"
#include "profiler/sink.h"
#include "storage/table.h"

namespace stetho::engine {
namespace {

using mal::Argument;
using mal::MalType;
using mal::Program;
using storage::Catalog;
using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::TablePtr;
using storage::Value;

Catalog MakeCatalog() {
  Catalog cat;
  TablePtr t = Table::Make(
      "lineitem", Schema({{"l_partkey", DataType::kInt64},
                          {"l_tax", DataType::kDouble}}));
  for (int64_t i = 0; i < 64; ++i) {
    EXPECT_TRUE(t->AppendRow({Value::Int(i % 7),
                              Value::Double(static_cast<double>(i) / 100.0)})
                    .ok());
  }
  EXPECT_TRUE(cat.AddTable(t).ok());
  return cat;
}

/// A wide plan: one bind fans out into several independent select→projection
/// chains, so the dataflow scheduler has real parallel slack.
Program WidePlan() {
  Program p("user.stress");
  int mvc = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("sql", "mvc", {mvc}, {});
  int tid = p.AddVariable(MalType::Bat(DataType::kOid));
  p.Add("sql", "tid", {tid},
        {Argument::Var(mvc), Argument::Const(Value::String("sys")),
         Argument::Const(Value::String("lineitem"))});
  int partkey = p.AddVariable(MalType::Bat(DataType::kInt64));
  p.Add("sql", "bind", {partkey},
        {Argument::Var(mvc), Argument::Const(Value::String("sys")),
         Argument::Const(Value::String("lineitem")),
         Argument::Const(Value::String("l_partkey")),
         Argument::Const(Value::Int(0))});
  int tax = p.AddVariable(MalType::Bat(DataType::kDouble));
  p.Add("sql", "bind", {tax},
        {Argument::Var(mvc), Argument::Const(Value::String("sys")),
         Argument::Const(Value::String("lineitem")),
         Argument::Const(Value::String("l_tax")),
         Argument::Const(Value::Int(0))});
  for (int64_t k = 0; k < 6; ++k) {
    int cand = p.AddVariable(MalType::Bat(DataType::kOid));
    p.Add("algebra", "thetaselect", {cand},
          {Argument::Var(partkey), Argument::Var(tid),
           Argument::Const(Value::Int(k)),
           Argument::Const(Value::String("=="))});
    int proj = p.AddVariable(MalType::Bat(DataType::kDouble));
    p.Add("algebra", "projection", {proj},
          {Argument::Var(cand), Argument::Var(tax)});
    p.Add("io", "print", {}, {Argument::Var(proj)});
  }
  return p;
}

std::vector<analysis::Diagnostic> ConformanceDiags(
    const Program& program, const std::vector<profiler::TraceEvent>& trace) {
  analysis::CheckContext ctx;
  ctx.program = &program;
  ctx.trace = &trace;
  std::vector<analysis::Diagnostic> diags;
  analysis::MakeTraceConformanceCheck()->Run(ctx, &diags);
  return diags;
}

/// Many queries execute concurrently on the shared process-wide pool with
/// profiling on; each query's private trace must still satisfy the Fig. 3
/// contract (exactly one start and one done per pc, monotone clock).
TEST(SchedulerStressTest, ConcurrentQueriesKeepTraceContract) {
  Catalog cat = MakeCatalog();
  Program plan = WidePlan();
  ASSERT_TRUE(plan.Validate().ok());

  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 5;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cat, &plan, &failures] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        profiler::Profiler prof(SteadyClock::Default());
        auto sink = std::make_shared<profiler::RingBufferSink>(1024);
        prof.AddSink(sink);

        Interpreter interp(&cat);
        ExecOptions opts;
        opts.num_threads = 4;
        opts.profiler = &prof;
        auto r = interp.Execute(plan, opts);
        if (!r.ok()) {
          ++failures;
          continue;
        }
        std::vector<profiler::TraceEvent> trace = sink->Snapshot();
        if (trace.size() != 2 * plan.size()) ++failures;
        if (!ConformanceDiags(plan, trace).empty()) ++failures;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

/// The per-query admission slots stamped into stats/trace stay in
/// [0, num_threads) even though pool workers are shared across queries.
TEST(SchedulerStressTest, ThreadIdsAreQueryLocalSlots) {
  Catalog cat = MakeCatalog();
  Program plan = WidePlan();
  Interpreter interp(&cat);
  ExecOptions opts;
  opts.num_threads = 3;
  auto r = interp.Execute(plan, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (const InstructionStat& s : r.value().stats) {
    EXPECT_GE(s.thread, 0);
    EXPECT_LT(s.thread, 3);
  }
}

/// Regression: a kernel failing while dependents are queued must surface the
/// error from Execute rather than hanging the scheduler. The failing
/// instruction has both queued dependents (skipped after the abort) and
/// independent siblings (drained normally).
TEST(SchedulerFailureTest, MidFlightKernelFailureDoesNotHang) {
  ModuleRegistry registry;
  ASSERT_TRUE(registry
                  .Register("test", "src",
                            [](KernelArgs& a) {
                              *a.results[0] =
                                  RegisterValue::Scalar(Value::Int(1));
                              return Status::OK();
                            })
                  .ok());
  ASSERT_TRUE(registry
                  .Register("test", "fail",
                            [](KernelArgs&) {
                              return Status::Internal("injected kernel failure");
                            })
                  .ok());
  std::atomic<int> uses{0};
  ASSERT_TRUE(registry
                  .Register("test", "use",
                            [&uses](KernelArgs& a) {
                              ++uses;
                              *a.results[0] = *a.args[0];
                              return Status::OK();
                            })
                  .ok());

  Program p("user.failing");
  int src = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("test", "src", {src}, {});
  int bad = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("test", "fail", {bad}, {Argument::Var(src)});
  // Dependents of the failing instruction: must be skipped, not run.
  for (int i = 0; i < 6; ++i) {
    int v = p.AddVariable(MalType::Scalar(DataType::kInt64));
    p.Add("test", "use", {v}, {Argument::Var(bad)});
  }
  // Independent siblings: may run before the abort lands, must drain.
  for (int i = 0; i < 6; ++i) {
    int v = p.AddVariable(MalType::Scalar(DataType::kInt64));
    p.Add("test", "use", {v}, {Argument::Var(src)});
  }
  ASSERT_TRUE(p.Validate().ok());

  Catalog cat;
  Interpreter interp(&cat, &registry);
  ExecOptions opts;
  opts.num_threads = 4;
  auto r = interp.Execute(p, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("injected kernel failure"),
            std::string::npos);
  // Dependents of the failed instruction never ran.
  EXPECT_LE(uses.load(), 6);
}

/// Same failure repeated back-to-back: the shared pool must come out of each
/// aborted query clean enough to serve the next one.
TEST(SchedulerFailureTest, PoolSurvivesRepeatedAborts) {
  ModuleRegistry registry;
  ASSERT_TRUE(registry
                  .Register("test", "fail",
                            [](KernelArgs&) {
                              return Status::Internal("injected kernel failure");
                            })
                  .ok());
  Program p("user.failing");
  int bad = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("test", "fail", {bad}, {});
  int bad2 = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("test", "fail", {bad2}, {});
  ASSERT_TRUE(p.Validate().ok());

  Catalog cat;
  Interpreter interp(&cat, &registry);
  for (int i = 0; i < 20; ++i) {
    ExecOptions opts;
    opts.num_threads = 2;
    auto r = interp.Execute(p, opts);
    ASSERT_FALSE(r.ok());
  }

  // And a healthy query still completes on the same pool.
  Catalog healthy = MakeCatalog();
  Interpreter interp2(&healthy);
  ExecOptions opts;
  opts.num_threads = 4;
  auto ok = interp2.Execute(WidePlan(), opts);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

/// The sequential-anomaly path must not touch the pool: every instruction
/// runs as logical thread 0 regardless of pool state.
TEST(SchedulerStressTest, SequentialPathStaysOffPool) {
  Catalog cat = MakeCatalog();
  Program plan = WidePlan();
  Interpreter interp(&cat);

  WorkerPool::Default()->EnsureWorkers(2);
  int64_t executed_before = WorkerPool::Default()->executed_count();

  ExecOptions opts;
  opts.use_dataflow = false;
  opts.num_threads = 4;
  auto r = interp.Execute(plan, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (const InstructionStat& s : r.value().stats) EXPECT_EQ(s.thread, 0);
  EXPECT_EQ(WorkerPool::Default()->executed_count(), executed_before);
}

// The debug-gated scheduler self-check (STETHO_SCHED_SELFCHECK): a healthy
// dataflow run passes with the check enabled — zero violations counted and
// results unchanged — and the switch restores cleanly. The violation path
// itself is exercised post-hoc by the trace replay in hb_test.cc (injecting
// a live dispatch-before-producer bug would mean breaking the scheduler).
TEST(SchedSelfCheckTest, CleanRunPassesWithCheckEnabled) {
  obs::Registry* registry = obs::Registry::Default();
  // Touch the counter so the delta read below cannot miss it.
  registry
      ->GetOrCreateCounter("stetho_sched_selfcheck_violations_total",
                           "Dataflow tasks dispatched before a producer "
                           "completed (STETHO_SCHED_SELFCHECK)")
      ->Increment(0);
  int64_t violations_before =
      registry->CounterValue("stetho_sched_selfcheck_violations_total")
          .value();

  bool was_enabled = SchedSelfCheckEnabled();
  SetSchedSelfCheck(true);
  EXPECT_TRUE(SchedSelfCheckEnabled());

  Catalog cat = MakeCatalog();
  Program plan = WidePlan();
  for (int round = 0; round < 4; ++round) {
    Interpreter interp(&cat);
    ExecOptions opts;
    opts.num_threads = 4;
    auto r = interp.Execute(plan, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }

  SetSchedSelfCheck(was_enabled);
  EXPECT_EQ(registry->CounterValue("stetho_sched_selfcheck_violations_total")
                .value(),
            violations_before);
}

}  // namespace
}  // namespace stetho::engine
