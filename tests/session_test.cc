#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/clock.h"
#include "dot/parser.h"
#include "profiler/sink.h"
#include "scope/mapping.h"
#include "scope/session.h"
#include "server/mserver.h"
#include "tpch/dbgen.h"

namespace stetho::scope {
namespace {

class SessionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::TpchConfig config;
    config.scale_factor = 0.001;
    auto cat = tpch::GenerateTpch(config);
    ASSERT_TRUE(cat.ok());
    server::MserverOptions options;
    options.force_sequential = true;
    server_ = std::make_unique<server::Mserver>(std::move(cat.value()), options);
    ring_ = std::make_shared<profiler::RingBufferSink>(1 << 14);
    server_->profiler()->AddSink(ring_);
    auto outcome = server_->ExecuteSql(
        "select l_tax from lineitem where l_partkey = 1");
    ASSERT_TRUE(outcome.ok());
    auto graph = dot::ParseDot(outcome.value().dot);
    ASSERT_TRUE(graph.ok());
    graph_ = std::move(graph).value();

    ReplayOptions replay;
    replay.clock = &clock_;
    replay.render_interval_us = 0;
    auto replayer = OfflineReplayer::Create(graph_, ring_->Snapshot(), replay);
    ASSERT_TRUE(replayer.ok());
    replayer_ = std::move(replayer).value();
    session_ = std::make_unique<InteractiveSession>(replayer_.get(), &clock_,
                                                    /*animation_ms=*/200);
  }

  VirtualClock clock_;
  std::unique_ptr<server::Mserver> server_;
  std::shared_ptr<profiler::RingBufferSink> ring_;
  dot::Graph graph_;
  std::unique_ptr<OfflineReplayer> replayer_;
  std::unique_ptr<InteractiveSession> session_;
};

TEST_F(SessionFixture, HelpListsCommands) {
  auto r = session_->Execute("help");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.value().find("zoom"), std::string::npos);
  EXPECT_NE(r.value().find("lens"), std::string::npos);
}

TEST_F(SessionFixture, ZoomAnimatesAltitude) {
  double before = session_->camera()->altitude();
  int64_t clock_before = clock_.NowMicros();
  auto r = session_->Execute("zoom out");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(session_->camera()->altitude(), before);
  // The transition consumed (virtual) animation time.
  EXPECT_GE(clock_.NowMicros() - clock_before, 200000);
  ASSERT_TRUE(session_->Execute("zoom in").ok());
  EXPECT_LT(session_->camera()->altitude(),
            session_->camera()->altitude() * 10 + 1);  // sane
}

TEST_F(SessionFixture, ZoomFitShowsWholeScene) {
  ASSERT_TRUE(session_->Execute("zoom fit").ok());
  viz::Frame frame = session_->Render();
  EXPECT_EQ(frame.culled, 0u);
  EXPECT_EQ(frame.commands.size(),
            replayer_->space()->size());  // everything visible
}

TEST_F(SessionFixture, PanMovesCamera) {
  ASSERT_TRUE(session_->Execute("zoom fit").ok());
  double x0 = session_->camera()->x();
  auto r = session_->Execute("pan 100 -50");
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(session_->camera()->x(), x0 + 100, 1e-6);
}

TEST_F(SessionFixture, FocusAndNextNavigate) {
  auto r = session_->Execute("focus n3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r.value().find("focused n3"), std::string::npos);
  EXPECT_NE(r.value().find("sql.bind"), std::string::npos);
  auto next = session_->Execute("next");
  ASSERT_TRUE(next.ok());
  EXPECT_NE(next.value().find("focused n4"), std::string::npos);
  auto prev = session_->Execute("prev");
  ASSERT_TRUE(prev.ok());
  EXPECT_NE(prev.value().find("focused n3"), std::string::npos);
  EXPECT_FALSE(session_->Execute("focus bogus").ok());
}

TEST_F(SessionFixture, LensToggles) {
  EXPECT_FALSE(session_->lens_active());
  ASSERT_TRUE(session_->Execute("lens on 4").ok());
  EXPECT_TRUE(session_->lens_active());
  viz::Frame with_lens = session_->Render();
  ASSERT_TRUE(session_->Execute("lens off").ok());
  EXPECT_FALSE(session_->lens_active());
  EXPECT_FALSE(session_->Execute("lens sideways").ok());
  (void)with_lens;
}

TEST_F(SessionFixture, TransportCommands) {
  auto r = session_->Execute("step");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.value().find("state=start"), std::string::npos);
  ASSERT_TRUE(session_->Execute("play 1000 6").ok());
  EXPECT_EQ(replayer_->cursor(), 7u);
  ASSERT_TRUE(session_->Execute("back").ok());
  EXPECT_EQ(replayer_->cursor(), 6u);
  auto progress = session_->Execute("progress");
  ASSERT_TRUE(progress.ok());
  EXPECT_NE(progress.value().find("6/"), std::string::npos);
  ASSERT_TRUE(session_->Execute("seek 0").ok());
  ASSERT_TRUE(session_->Execute("rewind").ok());
  EXPECT_EQ(replayer_->cursor(), 0u);
}

TEST_F(SessionFixture, TooltipDebugView) {
  ASSERT_TRUE(session_->Execute("play 1e9 100").ok());
  auto tip = session_->Execute("tooltip n2");
  ASSERT_TRUE(tip.ok());
  EXPECT_NE(tip.value().find("sql.tid"), std::string::npos);
  auto dbg = session_->Execute("debug");
  ASSERT_TRUE(dbg.ok());
  EXPECT_NE(dbg.value().find("state=done"), std::string::npos);
  EXPECT_TRUE(session_->Execute("view").ok());
  EXPECT_TRUE(session_->Execute("birdseye").ok());
}

TEST_F(SessionFixture, FilterOptionsWindow) {
  size_t full = replayer_->size();
  auto r = session_->Execute("filter start=0;done=1;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(replayer_->size(), full / 2);  // done events only
  EXPECT_TRUE(replayer_->filtered());
  EXPECT_EQ(replayer_->cursor(), 0u);  // filter rewinds
  // Stepping now sees only done events.
  ASSERT_TRUE(session_->Execute("step").ok());
  EXPECT_NE(session_->Execute("debug").value().find("state=done"),
            std::string::npos);
  ASSERT_TRUE(session_->Execute("filter off").ok());
  EXPECT_EQ(replayer_->size(), full);
  EXPECT_FALSE(replayer_->filtered());
  EXPECT_FALSE(session_->Execute("filter bogus=1;").ok());
}

TEST_F(SessionFixture, ModuleFilter) {
  auto r = session_->Execute("filter modules=algebra;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(replayer_->size(), 0u);
  EXPECT_LT(replayer_->size(), replayer_->events_filtered_out() +
                                   replayer_->size());
  for (const auto& e : replayer_->events()) {
    EXPECT_NE(e.stmt.find("algebra."), std::string::npos);
  }
}

TEST_F(SessionFixture, UnknownAndMalformedCommands) {
  EXPECT_FALSE(session_->Execute("teleport").ok());
  EXPECT_FALSE(session_->Execute("").ok());
  EXPECT_FALSE(session_->Execute("pan 1").ok());
  EXPECT_FALSE(session_->Execute("play fast now").ok());
  EXPECT_FALSE(session_->Execute("seek -nope").ok());
}

TEST_F(SessionFixture, ScreenshotCommands) {
  std::string svg_path = testing::TempDir() + "/session_shot.svg";
  std::string ppm_path = testing::TempDir() + "/session_shot.ppm";
  ASSERT_TRUE(session_->Execute("zoom fit").ok());
  ASSERT_TRUE(session_->Execute("shot " + svg_path).ok());
  ASSERT_TRUE(session_->Execute("shot " + ppm_path).ok());
  std::ifstream svg_in(svg_path);
  std::string svg((std::istreambuf_iterator<char>(svg_in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  std::ifstream ppm_in(ppm_path, std::ios::binary);
  std::string header(2, '\0');
  ppm_in.read(header.data(), 2);
  EXPECT_EQ(header, "P6");
  std::remove(svg_path.c_str());
  std::remove(ppm_path.c_str());
  EXPECT_FALSE(session_->Execute("shot").ok());
}

TEST_F(SessionFixture, TranscriptRecordsSuccessfulCommands) {
  ASSERT_TRUE(session_->Execute("zoom fit").ok());
  ASSERT_TRUE(session_->Execute("step").ok());
  (void)session_->Execute("bogus");
  ASSERT_EQ(session_->transcript().size(), 2u);
  EXPECT_EQ(session_->transcript()[0].first, "zoom fit");
  EXPECT_EQ(session_->transcript()[1].first, "step");
}

}  // namespace
}  // namespace stetho::scope
