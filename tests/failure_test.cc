// Failure-injection tests: every layer must degrade gracefully — errors
// surface as Status, never as hangs, crashes, or silent corruption.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "engine/interpreter.h"
#include "net/channel.h"
#include "net/udp.h"
#include "profiler/sink.h"
#include "scope/replayer.h"
#include "scope/textual.h"
#include "server/mserver.h"
#include "storage/table.h"
#include "tpch/dbgen.h"

namespace stetho {
namespace {

using engine::ExecOptions;
using engine::Interpreter;
using engine::KernelArgs;
using engine::ModuleRegistry;
using mal::Argument;
using mal::MalType;
using mal::Program;
using storage::DataType;
using storage::Value;

// ---------------------------------------------------------------------------
// Engine: kernel failures under the dataflow scheduler.
// ---------------------------------------------------------------------------

/// Registry whose "test.fail" kernel errors and whose "test.slow" spins.
class FailingRegistry {
 public:
  FailingRegistry() {
    engine::RegisterCoreKernels(&registry_);
    engine::RegisterAlgebraKernels(&registry_);
    engine::RegisterGroupAggrKernels(&registry_);
    STETHO_CHECK_REGISTER(registry_.Register("test", "fail", [](KernelArgs&) {
      return Status::Internal("injected kernel failure");
    }));
    STETHO_CHECK_REGISTER(
        registry_.Register("test", "failafter", [this](KernelArgs& a) {
          int64_t calls = calls_.fetch_add(1);
          STETHO_ASSIGN_OR_RETURN(int64_t n, engine::ArgInt(a, 0));
          if (calls >= n) return Status::Internal("delayed injected failure");
          *a.results[0] = engine::RegisterValue::Scalar(Value::Int(calls));
          return Status::OK();
        }));
  }
  const ModuleRegistry* get() const { return &registry_; }

 private:
  ModuleRegistry registry_;
  std::atomic<int64_t> calls_{0};
};

TEST(EngineFailureTest, ErrorInParallelPlanTerminatesCleanly) {
  storage::Catalog cat;
  FailingRegistry registry;
  Interpreter interp(&cat, registry.get());

  // 16 parallel spins plus one failing instruction: the scheduler must
  // abort, join all workers, and report the injected error.
  Program p;
  for (int i = 0; i < 16; ++i) {
    int v = p.AddVariable(MalType::Scalar(DataType::kInt64));
    p.Add("debug", "spin", {v}, {Argument::Const(Value::Int(100000))});
  }
  p.Add("test", "fail", {}, {});
  ExecOptions opts;
  opts.num_threads = 4;
  auto r = interp.Execute(p, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("injected kernel failure"),
            std::string::npos);
}

TEST(EngineFailureTest, RepeatedFailuresNeverHang) {
  storage::Catalog cat;
  FailingRegistry registry;
  Interpreter interp(&cat, registry.get());
  // A chain where the k-th call fails: run for several k to hit failures
  // at different dataflow depths.
  for (int64_t fail_at : {0, 1, 3}) {
    Program p;
    int prev = -1;
    for (int i = 0; i < 6; ++i) {
      int v = p.AddVariable(MalType::Scalar(DataType::kInt64));
      std::vector<Argument> args = {Argument::Const(Value::Int(fail_at))};
      if (prev >= 0) args.push_back(Argument::Var(prev));
      p.Add("test", "failafter", {v}, std::move(args));
      prev = v;
    }
    ExecOptions opts;
    opts.num_threads = 4;
    auto r = interp.Execute(p, opts);
    EXPECT_FALSE(r.ok()) << fail_at;
  }
}

TEST(EngineFailureTest, ArityAndTypeErrorsCarryContext) {
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  auto cat = tpch::GenerateTpch(config);
  ASSERT_TRUE(cat.ok());
  Interpreter interp(&cat.value());

  // Wrong arity.
  {
    Program p;
    int v = p.AddVariable(MalType::Scalar(DataType::kInt64));
    p.Add("sql", "mvc", {v}, {Argument::Const(Value::Int(1))});
    auto r = interp.Execute(p, {});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(r.status().message().find("pc=0"), std::string::npos);
  }
  // Scalar where BAT expected.
  {
    Program p;
    int v = p.AddVariable(MalType::Scalar(DataType::kInt64));
    p.Add("sql", "mvc", {v}, {});
    int out = p.AddVariable(MalType::Bat(DataType::kOid));
    p.Add("bat", "mirror", {out}, {Argument::Var(v)});
    auto r = interp.Execute(p, {});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
  }
  // Candidate oid out of range.
  {
    Program p;
    int big = p.AddVariable(MalType::Bat(DataType::kOid));
    p.Add("bat", "densebat", {big}, {Argument::Const(Value::Int(10))});
    int small = p.AddVariable(MalType::Bat(DataType::kOid));
    p.Add("bat", "densebat", {small}, {Argument::Const(Value::Int(2))});
    int out = p.AddVariable(MalType::Bat(DataType::kOid));
    p.Add("algebra", "projection", {out},
          {Argument::Var(big), Argument::Var(small)});
    auto r = interp.Execute(p, {});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  }
}

TEST(EngineFailureTest, ProfilerSeesStartOfFailedInstruction) {
  storage::Catalog cat;
  FailingRegistry registry;
  Interpreter interp(&cat, registry.get());
  VirtualClock clock;
  profiler::Profiler prof(&clock);
  auto ring = std::make_shared<profiler::RingBufferSink>(64);
  prof.AddSink(ring);
  Program p;
  p.Add("test", "fail", {}, {});
  ExecOptions opts;
  opts.profiler = &prof;
  opts.clock = &clock;
  opts.use_dataflow = false;
  ASSERT_FALSE(interp.Execute(p, opts).ok());
  auto events = ring->Snapshot();
  ASSERT_EQ(events.size(), 1u);  // start emitted, no done (it never finished)
  EXPECT_EQ(events[0].state, profiler::EventState::kStart);
}

// ---------------------------------------------------------------------------
// Streams: malformed input, dead endpoints, overload.
// ---------------------------------------------------------------------------

TEST(StreamFailureTest, MalformedLinesCountedNotFatal) {
  auto [sender, receiver] = net::Channel::CreatePair();
  scope::TextualOptions options;
  scope::TextualStethoscope textual(options);
  ASSERT_TRUE(textual.AddServer("srv", std::move(receiver)).ok());
  ASSERT_TRUE(sender->Send("complete garbage").ok());
  ASSERT_TRUE(sender->Send("[ 1, 2 ]").ok());
  profiler::TraceEvent ok_event;
  ok_event.stmt = "io.print(X_1);";
  ASSERT_TRUE(sender->Send(profiler::FormatTraceLine(ok_event)).ok());
  for (int i = 0; i < 300 && textual.events_received() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(textual.events_received(), 1);
  EXPECT_EQ(textual.malformed_lines(), 2);
  textual.Stop();
}

TEST(StreamFailureTest, SendToDeadUdpPortDoesNotBreakQuery) {
  // Bind a port, then close it: the server streams into the void; the
  // query must still succeed (UDP is fire-and-forget).
  uint16_t dead_port;
  {
    auto receiver = net::UdpReceiver::Bind(0);
    ASSERT_TRUE(receiver.ok());
    dead_port = receiver.value()->port();
  }
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  auto cat = tpch::GenerateTpch(config);
  ASSERT_TRUE(cat.ok());
  server::Mserver server(std::move(cat.value()), server::MserverOptions{});
  auto sender = net::UdpSender::Connect(dead_port);
  ASSERT_TRUE(sender.ok());
  server.AttachStream(
      std::shared_ptr<net::DatagramSender>(std::move(sender).value()));
  auto outcome =
      server.ExecuteSql("select l_tax from lineitem where l_partkey = 1");
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
}

TEST(StreamFailureTest, ChannelOverflowDropsButDelivers) {
  // An undersized channel drops excess events (like UDP under pressure);
  // the stethoscope keeps whatever arrives.
  auto [sender, receiver] = net::Channel::CreatePair(/*max_queue=*/8);
  scope::TextualOptions options;
  scope::TextualStethoscope textual(options);
  ASSERT_TRUE(textual.AddServer("srv", std::move(receiver)).ok());
  profiler::TraceEvent e;
  e.stmt = "x";
  // Burst much larger than the queue; listener may drain in parallel so
  // anywhere between 8 and 200 arrive — never zero, never > 200.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(sender->Send(profiler::FormatTraceLine(e)).ok());
  }
  for (int i = 0; i < 300 && textual.events_received() < 8; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(textual.events_received(), 8);
  EXPECT_LE(textual.events_received(), 200);
  textual.Stop();
}

TEST(StreamFailureTest, StopIsIdempotentAndStopsListeners) {
  auto [sender, receiver] = net::Channel::CreatePair();
  scope::TextualOptions options;
  auto* textual = new scope::TextualStethoscope(options);
  ASSERT_TRUE(textual->AddServer("srv", std::move(receiver)).ok());
  textual->Stop();
  textual->Stop();
  EXPECT_FALSE(
      textual->AddServer("late", net::Channel::CreatePair().second).ok());
  delete textual;
  // Sender into a stopped stethoscope: channel is closed by the receiver.
  EXPECT_FALSE(sender->Send("x").ok());
}

// ---------------------------------------------------------------------------
// Replayer robustness.
// ---------------------------------------------------------------------------

TEST(ReplayFailureTest, TraceEventsWithoutPlanNodesAreIgnored) {
  dot::Graph graph;
  graph.AddNode("n0").attrs["label"] = "only node";
  std::vector<profiler::TraceEvent> events(2);
  events[0].pc = 0;
  events[0].state = profiler::EventState::kStart;
  events[1].pc = 999;  // no such node in the graph
  events[1].state = profiler::EventState::kStart;
  scope::ReplayOptions options;
  options.render_interval_us = 0;
  auto replayer = scope::OfflineReplayer::Create(graph, events, options);
  ASSERT_TRUE(replayer.ok());
  EXPECT_TRUE(replayer.value()->Step().ok());
  EXPECT_TRUE(replayer.value()->Step().ok());  // unknown pc: no crash
  EXPECT_FALSE(replayer.value()->Step().ok());  // end of trace
}

TEST(ReplayFailureTest, EmptyTrace) {
  dot::Graph graph;
  graph.AddNode("n0");
  scope::ReplayOptions options;
  options.render_interval_us = 0;
  auto replayer = scope::OfflineReplayer::Create(graph, {}, options);
  ASSERT_TRUE(replayer.ok());
  EXPECT_TRUE(replayer.value()->AtEnd());
  EXPECT_FALSE(replayer.value()->Step().ok());
  EXPECT_EQ(replayer.value()->DebugWindowText(), "trace not started");
  auto played = replayer.value()->Play(2.0, 10);
  ASSERT_TRUE(played.ok());
  EXPECT_EQ(played.value(), 0u);
}

TEST(ReplayFailureTest, InvalidSpeedRejected) {
  dot::Graph graph;
  graph.AddNode("n0");
  scope::ReplayOptions options;
  options.render_interval_us = 0;
  auto replayer = scope::OfflineReplayer::Create(graph, {}, options);
  ASSERT_TRUE(replayer.ok());
  EXPECT_FALSE(replayer.value()->Play(0, 1).ok());
  EXPECT_FALSE(replayer.value()->Play(-3, 1).ok());
}

// ---------------------------------------------------------------------------
// Storage / SQL misuse.
// ---------------------------------------------------------------------------

TEST(SqlFailureTest, DeepErrorsPropagateWithContext) {
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  auto cat = tpch::GenerateTpch(config);
  ASSERT_TRUE(cat.ok());
  server::Mserver server(std::move(cat.value()), server::MserverOptions{});
  struct Case {
    const char* sql;
    StatusCode code;
  };
  const Case cases[] = {
      {"select nope from lineitem", StatusCode::kNotFound},
      {"select l_tax from ghost_table", StatusCode::kNotFound},
      {"select l_tax, o_orderkey from lineitem", StatusCode::kNotFound},
      {"select sum(l_tax), l_partkey from lineitem", StatusCode::kInvalidArgument},
      {"select l_tax from lineitem where l_tax", StatusCode::kTypeError},
      {"select 1 + from lineitem", StatusCode::kParseError},
  };
  for (const Case& c : cases) {
    auto r = server.ExecuteSql(c.sql);
    ASSERT_FALSE(r.ok()) << c.sql;
    EXPECT_EQ(r.status().code(), c.code) << c.sql << " -> "
                                         << r.status().ToString();
  }
}

}  // namespace
}  // namespace stetho
