// Tests for the static memory-lifetime analysis (analysis/liveness.h): the
// per-range byte model, the sequential accountant simulation, conformance of
// the static bounds against the engine's recorded live-byte peaks, and the
// memory_reorder pass's safety property (execution-equivalent, never
// peak-worse) across the TPC-H sweep.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/absint.h"
#include "analysis/liveness.h"
#include "engine/interpreter.h"
#include "mal/program.h"
#include "optimizer/pass.h"
#include "sql/compiler.h"
#include "storage/table.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace stetho {
namespace {

using analysis::AnalyzeMemory;
using analysis::LiveRange;
using analysis::MemoryReport;
using analysis::ParallelPeakBound;
using mal::Argument;
using mal::MalType;
using storage::DataType;
using storage::Value;

MalType Lng() { return MalType::Scalar(DataType::kInt64); }
MalType BatLng() { return MalType::Bat(DataType::kInt64); }
MalType BatOid() { return MalType::Bat(DataType::kOid); }

/// densebat(16) -> mirror -> batcalc.add -> count -> print. Every BAT is an
/// exact 16-row column: 16 * 8 payload + 16 null-mask bytes = 144 each.
mal::Program SmallPlan() {
  mal::Program p;
  int a = p.AddVariable(BatOid());
  p.Add("bat", "densebat", {a}, {Argument::Const(Value::Int(16))});
  int b = p.AddVariable(BatOid());
  p.Add("bat", "mirror", {b}, {Argument::Var(a)});
  int c = p.AddVariable(BatLng());
  p.Add("batcalc", "add", {c}, {Argument::Var(a), Argument::Var(b)});
  int n = p.AddVariable(Lng());
  p.Add("aggr", "count", {n}, {Argument::Var(c)});
  p.Add("io", "print", {}, {Argument::Var(n)});
  return p;
}

const LiveRange* FindRange(const MemoryReport& report, int var) {
  for (const LiveRange& r : report.ranges) {
    if (r.var == var) return &r;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Byte model + sequential profile on a hand-computed plan
// ---------------------------------------------------------------------------

TEST(LivenessTest, HandComputedSequentialProfile) {
  mal::Program p = SmallPlan();
  MemoryReport report = AnalyzeMemory(p);
  ASSERT_TRUE(report.bounded);

  // Each 16-row column: 16 oid/lng payload bytes * 8 + 16 null-mask bytes.
  const LiveRange* a = FindRange(report, 0);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->bytes, 16 * 8 + 16);
  EXPECT_EQ(a->card_hi, 16);
  EXPECT_TRUE(a->exact);
  EXPECT_EQ(a->def_pc, 0);
  EXPECT_EQ(a->last_use_pc, 2);  // consumed by mirror (pc 1) and add (pc 2)
  EXPECT_EQ(a->num_consumers, 2);

  // Accountant simulation: a(144) | a+b(288) | a+b+c then release a,b (144)
  // | release c (0) | sink (0). Peak is the instant all three are live.
  ASSERT_EQ(report.live_after.size(), 5u);
  EXPECT_EQ(report.live_after[0], 144);
  EXPECT_EQ(report.live_after[1], 288);
  EXPECT_EQ(report.live_after[2], 144);
  EXPECT_EQ(report.live_after[3], 0);
  EXPECT_EQ(report.live_after[4], 0);
  EXPECT_EQ(report.seq_peak_bytes, 432);
  EXPECT_EQ(report.seq_peak_pc, 2);

  // No base-table reads in this plan.
  EXPECT_EQ(report.input_bytes, 0);
}

TEST(LivenessTest, UnboundedSourceMakesReportUnbounded) {
  mal::Program p;
  int m = p.AddVariable(Lng());
  p.Add("sql", "mvc", {m}, {});
  int t = p.AddVariable(BatOid());
  p.Add("sql", "tid", {t},
        {Argument::Var(m), Argument::Const(Value::String("sys")),
         Argument::Const(Value::String("t"))});  // no cardinality annotation
  int n = p.AddVariable(Lng());
  p.Add("aggr", "count", {n}, {Argument::Var(t)});
  p.Add("io", "print", {}, {Argument::Var(n)});
  MemoryReport report = AnalyzeMemory(p);
  EXPECT_FALSE(report.bounded);
  EXPECT_EQ(report.seq_peak_bytes, analysis::kUnboundedBytes);
  EXPECT_EQ(ParallelPeakBound(p, report, 4), analysis::kUnboundedBytes);
}

TEST(LivenessTest, AnnotatedSourceContributesInputBytes) {
  mal::Program p;
  int m = p.AddVariable(Lng());
  p.Add("sql", "mvc", {m}, {});
  int t = p.AddVariable(BatOid());
  p.Add("sql", "tid", {t},
        {Argument::Var(m), Argument::Const(Value::String("sys")),
         Argument::Const(Value::String("t"))});
  p.AnnotateCardinality(t, 100, 100);
  int n = p.AddVariable(Lng());
  p.Add("aggr", "count", {n}, {Argument::Var(t)});
  p.Add("io", "print", {}, {Argument::Var(n)});
  MemoryReport report = AnalyzeMemory(p);
  ASSERT_TRUE(report.bounded);
  EXPECT_EQ(report.input_bytes, 100 * 8 + 100);
  EXPECT_EQ(report.seq_peak_bytes, 100 * 8 + 100);
}

TEST(LivenessTest, FormatBytesAndBudgetParsing) {
  EXPECT_EQ(analysis::FormatBytes(analysis::kUnboundedBytes), "unbounded");
  EXPECT_EQ(analysis::FormatBytes(512), "512 B");
  EXPECT_NE(analysis::FormatBytes(3 << 20).find("MiB"), std::string::npos);

  ASSERT_EQ(setenv("STETHO_MEM_BUDGET", "64m", 1), 0);
  EXPECT_EQ(analysis::EnvMemBudgetBytes(), int64_t{64} << 20);
  ASSERT_EQ(setenv("STETHO_MEM_BUDGET", "1024", 1), 0);
  EXPECT_EQ(analysis::EnvMemBudgetBytes(), 1024);
  ASSERT_EQ(unsetenv("STETHO_MEM_BUDGET"), 0);
  EXPECT_EQ(analysis::EnvMemBudgetBytes(), 0);
}

// ---------------------------------------------------------------------------
// Conformance: the static bounds dominate what the engine actually records
// ---------------------------------------------------------------------------

class TpchLivenessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    auto cat = tpch::GenerateTpch(config);
    ASSERT_TRUE(cat.ok());
    catalog_ = new storage::Catalog(std::move(cat.value()));
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }
  static mal::Program Compile(const char* query, int pieces) {
    auto plan =
        sql::Compiler::CompileSql(catalog_, tpch::GetQuery(query).value().sql);
    EXPECT_TRUE(plan.ok());
    optimizer::Pipeline pipeline = optimizer::Pipeline::Default(pieces);
    auto fired = pipeline.Run(&plan.value());
    EXPECT_TRUE(fired.ok());
    return std::move(plan.value());
  }
  static storage::Catalog* catalog_;
};

storage::Catalog* TpchLivenessTest::catalog_ = nullptr;

TEST_F(TpchLivenessTest, StaticBoundsDominateRecordedPeaks) {
  for (const char* query : {"paper", "q1", "q6", "q14", "big_group"}) {
    for (int pieces : {0, 8}) {
      SCOPED_TRACE(std::string(query) + " pieces=" + std::to_string(pieces));
      mal::Program plan = Compile(query, pieces);
      MemoryReport report = AnalyzeMemory(plan);
      ASSERT_TRUE(report.bounded);

      engine::Interpreter interp(catalog_);
      engine::ExecOptions seq;
      seq.use_dataflow = false;
      auto sr = interp.Execute(plan, seq);
      ASSERT_TRUE(sr.ok()) << sr.status().ToString();
      // Program-order execution must stay under the sequential simulation.
      EXPECT_LE(sr.value().peak_rss_bytes, report.seq_peak_bytes);

      engine::ExecOptions par;
      par.num_threads = 4;
      auto pr = interp.Execute(plan, par);
      ASSERT_TRUE(pr.ok()) << pr.status().ToString();
      // Any dataflow schedule must stay under the dop-aware bound.
      int64_t bound = ParallelPeakBound(plan, report, 4);
      EXPECT_LE(pr.value().peak_rss_bytes, bound);
      // And the parallel bound can never undercut the sequential peak
      // (sequential order is one of the legal schedules).
      EXPECT_GE(bound, report.seq_peak_bytes);
    }
  }
}

TEST_F(TpchLivenessTest, ReportFormatsWithoutSurprises) {
  mal::Program plan = Compile("q1", 8);
  MemoryReport report = AnalyzeMemory(plan);
  std::string text = analysis::FormatMemoryReport(plan, report, 4);
  EXPECT_NE(text.find("sequential peak"), std::string::npos);
  EXPECT_NE(text.find("parallel bound"), std::string::npos);
  EXPECT_NE(text.find("heaviest live ranges"), std::string::npos);
}

// ---------------------------------------------------------------------------
// memory_reorder property: execution-equivalent and never peak-worse
// ---------------------------------------------------------------------------

void ExpectSameResults(const engine::QueryResult& a,
                       const engine::QueryResult& b) {
  ASSERT_EQ(a.columns.size(), b.columns.size());
  for (size_t c = 0; c < a.columns.size(); ++c) {
    const auto& ca = a.columns[c];
    const auto& cb = b.columns[c];
    ASSERT_EQ(ca.is_scalar, cb.is_scalar);
    if (ca.is_scalar) {
      EXPECT_EQ(ca.scalar.Compare(cb.scalar), 0);
      continue;
    }
    ASSERT_EQ(ca.column->size(), cb.column->size()) << "col " << c;
    for (size_t i = 0; i < ca.column->size(); ++i) {
      ASSERT_EQ(ca.column->GetValue(i), cb.column->GetValue(i))
          << "col " << c << " row " << i;
    }
  }
}

TEST_F(TpchLivenessTest, MemoryReorderIsSafeAcrossTheQuerySweep) {
  auto pass = optimizer::MakeMemoryReorderPass();
  int fired_count = 0;
  for (const char* query :
       {"paper", "q1", "q3", "q5", "q6", "q12", "q14", "big_group",
        "scan_heavy", "q18", "q11", "q16", "distinct_flags"}) {
    SCOPED_TRACE(query);
    auto base =
        sql::Compiler::CompileSql(catalog_, tpch::GetQuery(query).value().sql);
    ASSERT_TRUE(base.ok());
    MemoryReport before = AnalyzeMemory(base.value());
    analysis::PlanSummary summary =
        analysis::SummarizeObservable(base.value());

    mal::Program reordered = base.value();
    auto changed = pass->Run(&reordered);
    ASSERT_TRUE(changed.ok()) << changed.status().ToString();
    if (!changed.value()) continue;
    ++fired_count;

    // Structurally valid, observably equivalent, and strictly peak-better.
    ASSERT_TRUE(reordered.Validate().ok());
    EXPECT_TRUE(analysis::CheckSummaryEquivalence(
                    summary, analysis::SummarizeObservable(reordered),
                    "memory_reorder")
                    .ok());
    MemoryReport after = AnalyzeMemory(reordered);
    ASSERT_TRUE(after.bounded);
    EXPECT_LT(after.seq_peak_bytes, before.seq_peak_bytes);

    // Execution equivalence, sequentially on both plans.
    engine::Interpreter interp(catalog_);
    engine::ExecOptions seq;
    seq.use_dataflow = false;
    auto ra = interp.Execute(base.value(), seq);
    auto rb = interp.Execute(reordered, seq);
    ASSERT_TRUE(ra.ok()) << ra.status().ToString();
    ASSERT_TRUE(rb.ok()) << rb.status().ToString();
    ExpectSameResults(ra.value(), rb.value());
    // The reordered plan's recorded peak also respects its new bound.
    EXPECT_LE(rb.value().peak_rss_bytes, after.seq_peak_bytes);
  }
  // The pass is self-rejecting, but it must actually fire somewhere in the
  // sweep or the property above is vacuous.
  EXPECT_GT(fired_count, 0);
}

}  // namespace
}  // namespace stetho
