// Mutation harness: a catalog of seeded corruptions — each a realistic way a
// plan, dot graph, or trace can go wrong — run against the full default check
// suite. Every mutation must be caught by the specific check named in its
// table entry; a silent pass is a test failure. This is the end-to-end
// guarantee that the linter's coverage does not regress.

#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/runner.h"
#include "dot/writer.h"
#include "engine/kernel.h"
#include "mal/program.h"
#include "profiler/event.h"

namespace stetho {
namespace {

using analysis::CheckContext;
using analysis::Diagnostic;
using analysis::Runner;
using mal::Argument;
using mal::MalType;
using profiler::EventState;
using profiler::TraceEvent;
using storage::DataType;
using storage::Value;

MalType Lng() { return MalType::Scalar(DataType::kInt64); }
MalType BatLng() { return MalType::Bat(DataType::kInt64); }
MalType BatOid() { return MalType::Bat(DataType::kOid); }

/// Everything a lint invocation can see. Plan mutations supply only the
/// program (mal_lint with a single .mal input); graph/trace mutations pair
/// the clean plan with a corrupted artifact, mirroring cross-validation runs.
struct Artifacts {
  mal::Program program;
  std::optional<dot::Graph> graph;
  std::optional<std::vector<TraceEvent>> trace;
};

/// The clean baseline: densebat -> mirror -> batcalc.add -> count -> print.
mal::Program CleanPlan() {
  mal::Program p;
  int a = p.AddVariable(BatOid());
  p.Add("bat", "densebat", {a}, {Argument::Const(Value::Int(16))});
  int b = p.AddVariable(BatOid());
  p.Add("bat", "mirror", {b}, {Argument::Var(a)});
  int c = p.AddVariable(BatLng());
  p.Add("batcalc", "add", {c}, {Argument::Var(a), Argument::Var(b)});
  int n = p.AddVariable(Lng());
  p.Add("aggr", "count", {n}, {Argument::Var(c)});
  p.Add("io", "print", {}, {Argument::Var(n)});
  return p;
}

std::vector<TraceEvent> WellFormedTrace(const mal::Program& p) {
  std::vector<TraceEvent> trace;
  int64_t seq = 0;
  for (const mal::Instruction& ins : p.instructions()) {
    for (EventState state : {EventState::kStart, EventState::kDone}) {
      TraceEvent e;
      e.event = seq;
      e.time_us = 100 + seq * 5;
      e.pc = ins.pc;
      e.state = state;
      e.usec = state == EventState::kDone ? 5 : 0;
      e.stmt = p.InstructionToString(ins);
      trace.push_back(e);
      ++seq;
    }
  }
  return trace;
}

Artifacts Plan(mal::Program p) {
  Artifacts a;
  a.program = std::move(p);
  return a;
}

Artifacts WithGraph(const std::function<void(dot::Graph*)>& corrupt) {
  Artifacts a;
  a.program = CleanPlan();
  dot::Graph g = dot::ProgramToGraph(a.program);
  corrupt(&g);
  a.graph = std::move(g);
  return a;
}

Artifacts WithTrace(const std::function<void(std::vector<TraceEvent>*)>& corrupt) {
  Artifacts a;
  a.program = CleanPlan();
  std::vector<TraceEvent> t = WellFormedTrace(a.program);
  corrupt(&t);
  a.trace = std::move(t);
  return a;
}

struct Mutation {
  const char* name;            // what was corrupted
  const char* expected_check;  // the check that must catch it
  Artifacts (*build)();
};

// ---------------------------------------------------------------------------
// The corruption catalog
// ---------------------------------------------------------------------------

const Mutation kMutations[] = {
    // --- SSA structure ---
    {"use-before-definition", "ssa-def-before-use",
     [] {
       mal::Program p;
       int a = p.AddVariable(Lng());
       int b = p.AddVariable(Lng());
       p.Add("calc", "add", {b},
             {Argument::Var(a), Argument::Const(Value::Int(1))});
       p.Add("sql", "mvc", {a}, {});
       p.Add("io", "print", {}, {Argument::Var(b)});
       return Plan(std::move(p));
     }},
    {"out-of-range-variable", "ssa-def-before-use",
     [] {
       mal::Program p = CleanPlan();
       p.mutable_instruction(2).args[1] = Argument::Var(99);
       return Plan(std::move(p));
     }},
    {"double-assignment", "ssa-single-assignment",
     [] {
       mal::Program p;
       int a = p.AddVariable(Lng());
       p.Add("sql", "mvc", {a}, {});
       p.Add("sql", "mvc", {a}, {});
       p.Add("io", "print", {}, {Argument::Var(a)});
       return Plan(std::move(p));
     }},
    {"dead-pure-instruction", "dead-instruction",
     [] {
       mal::Program p = CleanPlan();
       int d = p.AddVariable(BatOid());
       p.Add("bat", "densebat", {d}, {Argument::Const(Value::Int(4))});
       return Plan(std::move(p));
     }},

    // --- kernel signatures ---
    {"unknown-module", "kernel-signature",
     [] {
       mal::Program p = CleanPlan();
       int x = p.AddVariable(Lng());
       p.Add("zorro", "slash", {x}, {});
       p.Add("io", "print", {}, {Argument::Var(x)});
       return Plan(std::move(p));
     }},
    {"unknown-function-in-known-module", "kernel-signature",
     [] {
       mal::Program p = CleanPlan();
       int x = p.AddVariable(BatOid());
       p.Add("bat", "frobnicate", {x}, {});
       p.Add("io", "print", {}, {Argument::Var(x)});
       return Plan(std::move(p));
     }},
    {"wrong-arity", "kernel-signature",
     [] {
       mal::Program p;
       int b = p.AddVariable(BatOid());
       p.Add("bat", "densebat", {b},
             {Argument::Const(Value::Int(4)), Argument::Const(Value::Int(9))});
       p.Add("io", "print", {}, {Argument::Var(b)});
       return Plan(std::move(p));
     }},
    {"scalar-into-bat-slot", "kernel-signature",
     [] {
       mal::Program p;
       int s = p.AddVariable(Lng());
       p.Add("sql", "mvc", {s}, {});
       int out = p.AddVariable(BatLng());
       p.Add("bat", "mirror", {out}, {Argument::Var(s)});
       p.Add("io", "print", {}, {Argument::Var(out)});
       return Plan(std::move(p));
     }},
    {"batcalc-on-scalars-only", "kernel-signature",
     [] {
       mal::Program p;
       int out = p.AddVariable(BatLng());
       p.Add("batcalc", "add", {out},
             {Argument::Const(Value::Int(1)), Argument::Const(Value::Int(2))});
       p.Add("io", "print", {}, {Argument::Var(out)});
       return Plan(std::move(p));
     }},

    // --- result sinks ---
    {"sink-order-key-collision", "sink-order-key",
     [] {
       mal::Program p;
       int a = p.AddVariable(Lng());
       p.Add("sql", "mvc", {a}, {});
       std::vector<Argument> args(257, Argument::Var(a));
       p.Add("io", "print", {}, std::move(args));
       return Plan(std::move(p));
     }},
    {"unregistered-sink-kernel", "sink-order-key",
     [] {
       mal::Program p;
       int a = p.AddVariable(Lng());
       p.Add("sql", "mvc", {a}, {});
       p.Add("user", "printResult", {}, {Argument::Var(a)});
       return Plan(std::move(p));
     }},
    {"plan-without-sink", "sink-order-key",
     [] {
       mal::Program p;
       int a = p.AddVariable(Lng());
       p.Add("sql", "mvc", {a}, {});
       return Plan(std::move(p));
     }},

    // --- abstract type flow ---
    {"result-declared-wrong-elem", "type-flow",
     [] {
       mal::Program p;
       int a = p.AddVariable(BatOid());
       p.Add("bat", "densebat", {a}, {Argument::Const(Value::Int(4))});
       int n = p.AddVariable(MalType::Scalar(DataType::kDouble));
       p.Add("aggr", "count", {n}, {Argument::Var(a)});  // count yields :lng
       p.Add("io", "print", {}, {Argument::Var(n)});
       return Plan(std::move(p));
     }},
    {"mirror-declared-as-value-bat", "type-flow",
     [] {
       mal::Program p;
       int a = p.AddVariable(BatOid());
       p.Add("bat", "densebat", {a}, {Argument::Const(Value::Int(16))});
       int b = p.AddVariable(BatLng());  // bat.mirror yields head oids
       p.Add("bat", "mirror", {b}, {Argument::Var(a)});
       int n = p.AddVariable(Lng());
       p.Add("aggr", "count", {n}, {Argument::Var(b)});
       p.Add("io", "print", {}, {Argument::Var(n)});
       return Plan(std::move(p));
     }},
    {"int-in-boolean-slot", "type-flow",
     [] {
       mal::Program p;
       int b = p.AddVariable(MalType::Scalar(DataType::kBool));
       p.Add("calc", "not", {b}, {Argument::Const(Value::Int(5))});
       p.Add("io", "print", {}, {Argument::Var(b)});
       return Plan(std::move(p));
     }},
    {"heterogeneous-append", "type-flow",
     [] {
       mal::Program p;
       int a = p.AddVariable(BatOid());
       p.Add("bat", "densebat", {a}, {Argument::Const(Value::Int(4))});
       int c = p.AddVariable(BatLng());
       p.Add("batcalc", "add", {c},
             {Argument::Var(a), Argument::Const(Value::Int(1))});
       int d = p.AddVariable(BatOid());
       p.Add("bat", "append", {d}, {Argument::Var(a), Argument::Var(c)});
       p.Add("io", "print", {}, {Argument::Var(d)});
       return Plan(std::move(p));
     }},

    // --- cardinality flow ---
    {"zip-of-disjoint-cardinalities", "cardinality-contradiction",
     [] {
       mal::Program p;
       int a = p.AddVariable(BatOid());
       p.Add("bat", "densebat", {a}, {Argument::Const(Value::Int(4))});
       int b = p.AddVariable(BatOid());
       p.Add("bat", "densebat", {b}, {Argument::Const(Value::Int(8))});
       int c = p.AddVariable(BatLng());
       p.Add("batcalc", "add", {c}, {Argument::Var(a), Argument::Var(b)});
       p.Add("io", "print", {}, {Argument::Var(c)});
       return Plan(std::move(p));
     }},
    {"candidate-list-exceeds-column", "cardinality-contradiction",
     [] {
       mal::Program p;
       int cand = p.AddVariable(BatOid());
       p.Add("bat", "densebat", {cand}, {Argument::Const(Value::Int(8))});
       int col = p.AddVariable(BatOid());
       p.Add("bat", "densebat", {col}, {Argument::Const(Value::Int(4))});
       int out = p.AddVariable(BatOid());
       p.Add("algebra", "projection", {out},
             {Argument::Var(cand), Argument::Var(col)});
       p.Add("io", "print", {}, {Argument::Var(out)});
       return Plan(std::move(p));
     }},
    {"provably-empty-source", "guaranteed-empty",
     [] {
       mal::Program p;
       int a = p.AddVariable(BatOid());
       p.Add("bat", "densebat", {a}, {Argument::Const(Value::Int(0))});
       int n = p.AddVariable(Lng());
       p.Add("aggr", "count", {n}, {Argument::Var(a)});
       p.Add("io", "print", {}, {Argument::Var(n)});
       return Plan(std::move(p));
     }},

    // --- constant flow / candidate discipline ---
    {"constant-only-expression", "missed-constant-fold",
     [] {
       mal::Program p;
       int x = p.AddVariable(Lng());
       p.Add("calc", "add", {x},
             {Argument::Const(Value::Int(2)), Argument::Const(Value::Int(3))});
       p.Add("io", "print", {}, {Argument::Var(x)});
       return Plan(std::move(p));
     }},
    {"data-bat-as-candidate-list", "order-key-propagation",
     [] {
       mal::Program p;
       int col = p.AddVariable(BatOid());
       p.Add("bat", "densebat", {col}, {Argument::Const(Value::Int(8))});
       int data = p.AddVariable(BatLng());
       p.Add("batcalc", "add", {data},
             {Argument::Var(col), Argument::Const(Value::Int(1))});
       int out = p.AddVariable(BatOid());
       p.Add("algebra", "projection", {out},
             {Argument::Var(data), Argument::Var(col)});
       p.Add("io", "print", {}, {Argument::Var(out)});
       return Plan(std::move(p));
     }},

    // --- dot graph contract ---
    {"dot-label-tampered", "dot-contract",
     [] {
       return WithGraph(
           [](dot::Graph* g) { g->node(2).attrs["label"] = "tampered"; });
     }},
    {"dot-nodes-missing", "dot-contract",
     [] {
       return WithGraph([](dot::Graph* g) {
         *g = dot::Graph();        // drop every "nN" node…
         g->AddNode("opaque_name");  // …and add one violating the convention
       });
     }},
    {"dot-extra-edge", "dot-contract",
     [] {
       return WithGraph([](dot::Graph* g) { g->AddEdge("n0", "n4"); });
     }},

    // --- trace contract ---
    {"trace-missing-done", "trace-conformance",
     [] {
       return WithTrace([](std::vector<TraceEvent>* t) {
         t->erase(t->begin() + 5);  // pc=2's done event
       });
     }},
    {"trace-backwards-clock", "trace-conformance",
     [] {
       return WithTrace(
           [](std::vector<TraceEvent>* t) { (*t)[3].time_us = 1; });
     }},
    {"trace-negative-duration", "trace-conformance",
     [] {
       return WithTrace([](std::vector<TraceEvent>* t) { (*t)[1].usec = -5; });
     }},
    {"trace-statement-mismatch", "trace-conformance",
     [] {
       return WithTrace([](std::vector<TraceEvent>* t) {
         (*t)[2].stmt = "X_9 := bat.bogus();";
         (*t)[3].stmt = "X_9 := bat.bogus();";
       });
     }},
    {"trace-double-execution", "trace-conformance",
     [] {
       return WithTrace([](std::vector<TraceEvent>* t) {
         TraceEvent start = (*t)[0];
         TraceEvent done = (*t)[1];
         start.event = 100;
         start.time_us = 1000;
         done.event = 101;
         done.time_us = 1005;
         t->push_back(start);
         t->push_back(done);
       });
     }},
    {"trace-consumer-before-producer-done", "trace-dependency-violation",
     [] {
       return WithTrace([](std::vector<TraceEvent>* t) {
         // Reorder so bat.mirror (pc=1) starts before densebat (pc=0) is
         // done, keeping the clock monotonic so only the happens-before
         // replay can object.
         std::swap((*t)[1], (*t)[2]);
         std::swap((*t)[1].event, (*t)[2].event);
         std::swap((*t)[1].time_us, (*t)[2].time_us);
       });
     }},

    // --- memory lifetime ---
    {"dropped-bat-consumer", "bat-lifetime",
     [] {
       // An effectful producer's BAT result with no reader: allocated,
       // charged to the accountant, and released untouched. (Kernels
       // without a signature are conservatively effectful.)
       mal::Program p = CleanPlan();
       int u = p.AddVariable(BatLng());
       p.Add("user", "generate", {u}, {Argument::Const(Value::Int(8))});
       return Plan(std::move(p));
     }},
    {"exact-materialization-blowup", "memory-blowup",
     [] {
       // The base table is annotated at 64 rows but the plan provably
       // materializes a million-row BAT — an exact cardinality more than
       // 32x the input bytes (the "inflated cardinality" corruption).
       mal::Program p;
       int m = p.AddVariable(Lng());
       p.Add("sql", "mvc", {m}, {});
       int t = p.AddVariable(BatOid());
       p.Add("sql", "tid", {t},
             {Argument::Var(m), Argument::Const(Value::String("sys")),
              Argument::Const(Value::String("tiny"))});
       p.AnnotateCardinality(t, 64, 64);
       int big = p.AddVariable(BatOid());
       p.Add("bat", "densebat", {big},
             {Argument::Const(Value::Int(1000000))});
       int n0 = p.AddVariable(Lng());
       p.Add("aggr", "count", {n0}, {Argument::Var(t)});
       int n1 = p.AddVariable(Lng());
       p.Add("aggr", "count", {n1}, {Argument::Var(big)});
       p.Add("io", "print", {}, {Argument::Var(n0), Argument::Var(n1)});
       return Plan(std::move(p));
     }},
    {"heavy-bat-held-across-peak", "live-range-bloat",
     [] {
       // A ~900 KiB BAT whose only consumer is textually reordered past
       // the plan's memory peak: dataflow would let it die at pc 1, but
       // program order holds it across the peak ten instructions later.
       mal::Program p;
       int a = p.AddVariable(BatOid());
       p.Add("bat", "densebat", {a}, {Argument::Const(Value::Int(100000))});
       std::vector<Argument> printed;
       for (int i = 0; i < 4; ++i) {  // filler work between def and use
         int d = p.AddVariable(BatOid());
         p.Add("bat", "densebat", {d}, {Argument::Const(Value::Int(32))});
         int n = p.AddVariable(Lng());
         p.Add("aggr", "count", {n}, {Argument::Var(d)});
         printed.push_back(Argument::Var(n));
       }
       int big = p.AddVariable(BatOid());  // the peak: ~3.4 MiB live here
       p.Add("bat", "densebat", {big}, {Argument::Const(Value::Int(400000))});
       int nb = p.AddVariable(Lng());
       p.Add("aggr", "count", {nb}, {Argument::Var(big)});
       int na = p.AddVariable(Lng());
       p.Add("aggr", "count", {na}, {Argument::Var(a)});  // held until here
       printed.push_back(Argument::Var(nb));
       printed.push_back(Argument::Var(na));
       p.Add("io", "print", {}, std::move(printed));
       return Plan(std::move(p));
     }},
    {"recorded-rss-above-static-bound", "footprint-conformance",
     [] {
       // The engine accountant reports a live-byte peak the static model
       // cannot explain (an undercounted width looks exactly like this):
       // the bound must dominate every schedule, so this is an error.
       return WithTrace([](std::vector<TraceEvent>* t) {
         (*t)[4].rss_bytes = int64_t{1} << 30;
       });
     }},
};

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

std::vector<Diagnostic> Lint(const Artifacts& a) {
  CheckContext ctx;
  ctx.program = &a.program;
  ctx.registry = engine::ModuleRegistry::Default();
  if (a.graph.has_value()) ctx.graph = &a.graph.value();
  if (a.trace.has_value()) ctx.trace = &a.trace.value();
  return Runner::Default().Run(ctx);
}

TEST(MutationTest, BaselineArtifactsLintClean) {
  Artifacts a;
  a.program = CleanPlan();
  a.graph = dot::ProgramToGraph(a.program);
  a.trace = WellFormedTrace(a.program);
  std::vector<Diagnostic> diags = Lint(a);
  EXPECT_TRUE(diags.empty()) << analysis::FormatDiagnostics(diags);
}

TEST(MutationTest, CatalogMeetsMinimumSize) {
  EXPECT_GE(std::size(kMutations), 20u);
}

TEST(MutationTest, EveryMutationIsCaughtByItsNamedCheck) {
  for (const Mutation& m : kMutations) {
    SCOPED_TRACE(m.name);
    Artifacts a = m.build();
    std::vector<Diagnostic> diags = Lint(a);
    bool caught = false;
    for (const Diagnostic& d : diags) {
      if (d.check_id == m.expected_check) caught = true;
    }
    EXPECT_TRUE(caught) << "silent pass: corruption '" << m.name
                        << "' was not caught by " << m.expected_check
                        << "; diagnostics were:\n"
                        << analysis::FormatDiagnostics(diags);
  }
}

}  // namespace
}  // namespace stetho
