#include <gtest/gtest.h>

#include "engine/interpreter.h"
#include "sql/compiler.h"
#include "storage/table.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace stetho::tpch {
namespace {

using engine::ExecOptions;
using engine::Interpreter;
using engine::QueryResult;
using storage::Catalog;
using storage::ColumnPtr;

// --- date helpers ---

TEST(TpchDateTest, RoundTrip) {
  for (int64_t date : {19920101LL, 19950617LL, 19981231LL, 20000229LL}) {
    EXPECT_EQ(DaysToDate(DateToDays(date)), date);
  }
}

TEST(TpchDateTest, EpochAnchor) {
  EXPECT_EQ(DateToDays(19700101), 0);
  EXPECT_EQ(DaysToDate(0), 19700101);
}

TEST(TpchDateTest, AddDaysCrossesMonthAndYear) {
  EXPECT_EQ(AddDays(19940131, 1), 19940201);
  EXPECT_EQ(AddDays(19941231, 1), 19950101);
  EXPECT_EQ(AddDays(19940301, -1), 19940228);
  EXPECT_EQ(AddDays(19960228, 1), 19960229);  // leap year
}

// --- generator ---

class TpchFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TpchConfig config;
    config.scale_factor = 0.001;
    auto cat = GenerateTpch(config);
    ASSERT_TRUE(cat.ok()) << cat.status().ToString();
    catalog_ = new Catalog(std::move(cat.value()));
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  static Catalog* catalog_;
};

Catalog* TpchFixture::catalog_ = nullptr;

TEST_F(TpchFixture, AllTablesPresent) {
  for (const char* name : {"region", "nation", "supplier", "part", "partsupp",
                           "customer", "orders", "lineitem"}) {
    EXPECT_TRUE(catalog_->GetTable(name).ok()) << name;
  }
}

TEST_F(TpchFixture, RowCountsScale) {
  TpchConfig config;
  config.scale_factor = 0.001;
  TpchRowCounts counts = RowCountsFor(config);
  EXPECT_EQ(counts.region, 5u);
  EXPECT_EQ(counts.nation, 25u);
  EXPECT_EQ(counts.customer, 150u);
  EXPECT_EQ(counts.orders, 1500u);
  auto lineitem = catalog_->GetTable("lineitem");
  ASSERT_TRUE(lineitem.ok());
  // 1..7 lines per order.
  EXPECT_GE(lineitem.value()->num_rows(), counts.orders);
  EXPECT_LE(lineitem.value()->num_rows(), counts.orders * 7);
}

TEST_F(TpchFixture, Deterministic) {
  TpchConfig config;
  config.scale_factor = 0.001;
  auto again = GenerateTpch(config);
  ASSERT_TRUE(again.ok());
  auto a = catalog_->GetTable("lineitem").value();
  auto b = again.value().GetTable("lineitem").value();
  ASSERT_EQ(a->num_rows(), b->num_rows());
  for (size_t c = 0; c < a->schema().num_columns(); ++c) {
    for (size_t i = 0; i < std::min<size_t>(a->num_rows(), 50); ++i) {
      EXPECT_EQ(a->column(c)->GetValue(i), b->column(c)->GetValue(i));
    }
  }
}

TEST_F(TpchFixture, ForeignKeysInRange) {
  auto lineitem = catalog_->GetTable("lineitem").value();
  auto orders = catalog_->GetTable("orders").value();
  auto part = catalog_->GetTable("part").value();
  int64_t max_order = static_cast<int64_t>(orders->num_rows());
  int64_t max_part = static_cast<int64_t>(part->num_rows());
  ColumnPtr okey = lineitem->GetColumn("l_orderkey").value();
  ColumnPtr pkey = lineitem->GetColumn("l_partkey").value();
  for (size_t i = 0; i < lineitem->num_rows(); ++i) {
    ASSERT_GE(okey->IntAt(i), 1);
    ASSERT_LE(okey->IntAt(i), max_order);
    ASSERT_GE(pkey->IntAt(i), 1);
    ASSERT_LE(pkey->IntAt(i), max_part);
  }
}

TEST_F(TpchFixture, DateInvariants) {
  auto lineitem = catalog_->GetTable("lineitem").value();
  ColumnPtr ship = lineitem->GetColumn("l_shipdate").value();
  ColumnPtr receipt = lineitem->GetColumn("l_receiptdate").value();
  ColumnPtr flag = lineitem->GetColumn("l_returnflag").value();
  ColumnPtr status = lineitem->GetColumn("l_linestatus").value();
  for (size_t i = 0; i < lineitem->num_rows(); ++i) {
    ASSERT_LT(ship->IntAt(i), receipt->IntAt(i));
    const std::string& f = flag->StringAt(i);
    ASSERT_TRUE(f == "R" || f == "A" || f == "N") << f;
    if (receipt->IntAt(i) > 19950617) {
      ASSERT_EQ(f, "N");
    }
    const std::string& s = status->StringAt(i);
    ASSERT_TRUE(s == "O" || s == "F");
  }
}

// --- queries compile and run ---

Result<QueryResult> RunQuery(Catalog* cat, const std::string& id,
                             int threads = 2) {
  auto q = GetQuery(id);
  if (!q.ok()) return q.status();
  auto program = sql::Compiler::CompileSql(cat, q.value().sql);
  if (!program.ok()) return program.status();
  Interpreter interp(cat);
  ExecOptions opts;
  opts.num_threads = threads;
  return interp.Execute(program.value(), opts);
}

TEST_F(TpchFixture, EveryQueryCompilesAndRuns) {
  for (const TpchQuery& q : TpchQueries()) {
    auto r = RunQuery(catalog_, q.id);
    EXPECT_TRUE(r.ok()) << q.id << ": " << r.status().ToString();
  }
}

TEST_F(TpchFixture, PaperQueryReturnsTaxColumn) {
  auto r = RunQuery(catalog_, "paper");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().columns.size(), 1u);
  ColumnPtr tax = r.value().columns[0].column;
  for (size_t i = 0; i < tax->size(); ++i) {
    EXPECT_GE(tax->DoubleAt(i), 0.0);
    EXPECT_LE(tax->DoubleAt(i), 0.08);
  }
}

TEST_F(TpchFixture, Q1HasAtMostSixGroupsAndConsistentCounts) {
  auto r = RunQuery(catalog_, "q1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& cols = r.value().columns;
  ASSERT_EQ(cols.size(), 10u);
  size_t ngroups = cols[0].column->size();
  EXPECT_GE(ngroups, 1u);
  EXPECT_LE(ngroups, 6u);  // 3 flags x 2 statuses
  // count_order must sum to the number of lineitem rows passing the filter.
  int64_t total = 0;
  for (size_t g = 0; g < ngroups; ++g) {
    total += cols[9].column->IntAt(g);
  }
  auto lineitem = catalog_->GetTable("lineitem").value();
  ColumnPtr ship = lineitem->GetColumn("l_shipdate").value();
  int64_t expected = 0;
  for (size_t i = 0; i < lineitem->num_rows(); ++i) {
    if (ship->IntAt(i) <= 19980902) ++expected;
  }
  EXPECT_EQ(total, expected);
  // avg_disc within [0, 0.10].
  for (size_t g = 0; g < ngroups; ++g) {
    EXPECT_GE(cols[8].column->DoubleAt(g), 0.0);
    EXPECT_LE(cols[8].column->DoubleAt(g), 0.10);
  }
}

TEST_F(TpchFixture, Q3TopTenDescending) {
  auto r = RunQuery(catalog_, "q3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ColumnPtr revenue = r.value().columns[1].column;
  ASSERT_LE(revenue->size(), 10u);
  for (size_t i = 1; i < revenue->size(); ++i) {
    EXPECT_GE(revenue->DoubleAt(i - 1), revenue->DoubleAt(i));
  }
}

TEST_F(TpchFixture, Q6MatchesHandRolledScan) {
  auto r = RunQuery(catalog_, "q6");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().columns.size(), 1u);
  double got = r.value().columns[0].scalar.AsDouble();

  auto lineitem = catalog_->GetTable("lineitem").value();
  ColumnPtr ship = lineitem->GetColumn("l_shipdate").value();
  ColumnPtr disc = lineitem->GetColumn("l_discount").value();
  ColumnPtr qty = lineitem->GetColumn("l_quantity").value();
  ColumnPtr price = lineitem->GetColumn("l_extendedprice").value();
  double expected = 0;
  for (size_t i = 0; i < lineitem->num_rows(); ++i) {
    if (ship->IntAt(i) >= 19940101 && ship->IntAt(i) < 19950101 &&
        disc->DoubleAt(i) >= 0.05 && disc->DoubleAt(i) <= 0.07 &&
        qty->IntAt(i) < 24) {
      expected += price->DoubleAt(i) * disc->DoubleAt(i);
    }
  }
  EXPECT_NEAR(got, expected, 1e-6);
}

TEST_F(TpchFixture, Q14PercentageInRange) {
  auto r = RunQuery(catalog_, "q14");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  double promo = r.value().columns[0].scalar.AsDouble();
  EXPECT_GE(promo, 0.0);
  EXPECT_LE(promo, 100.0);
}

TEST_F(TpchFixture, Q5RevenueByNationDescending) {
  auto r = RunQuery(catalog_, "q5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ColumnPtr revenue = r.value().columns[1].column;
  for (size_t i = 1; i < revenue->size(); ++i) {
    EXPECT_GE(revenue->DoubleAt(i - 1), revenue->DoubleAt(i));
  }
}

TEST_F(TpchFixture, QueriesDeterministicAcrossSchedulers) {
  for (const char* id : {"q1", "q6", "q3"}) {
    auto seq = RunQuery(catalog_, id, /*threads=*/1);
    auto par = RunQuery(catalog_, id, /*threads=*/4);
    ASSERT_TRUE(seq.ok()) << id;
    ASSERT_TRUE(par.ok()) << id;
    ASSERT_EQ(seq.value().columns.size(), par.value().columns.size()) << id;
    for (size_t c = 0; c < seq.value().columns.size(); ++c) {
      const auto& a = seq.value().columns[c];
      const auto& b = par.value().columns[c];
      if (a.is_scalar) {
        EXPECT_EQ(a.scalar, b.scalar);
        continue;
      }
      ASSERT_EQ(a.column->size(), b.column->size()) << id;
      for (size_t i = 0; i < a.column->size(); ++i) {
        EXPECT_EQ(a.column->GetValue(i), b.column->GetValue(i)) << id;
      }
    }
  }
}

TEST(TpchQueriesTest, RegistryLookup) {
  EXPECT_TRUE(GetQuery("paper").ok());
  EXPECT_TRUE(GetQuery("q1").ok());
  EXPECT_FALSE(GetQuery("q99").ok());
  EXPECT_GE(TpchQueries().size(), 8u);
}

TEST(TpchGenTest, RejectsNonPositiveScale) {
  TpchConfig config;
  config.scale_factor = 0;
  EXPECT_FALSE(GenerateTpch(config).ok());
}

}  // namespace
}  // namespace stetho::tpch
