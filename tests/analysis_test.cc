// Golden-diagnostic tests for every analysis check, Runner/format plumbing,
// and the "seed pipeline is clean" property: random valid plans and every
// TPC-H query produce zero diagnostics after each optimizer stage.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/checks.h"
#include "analysis/runner.h"
#include "analysis/signatures.h"
#include "common/rng.h"
#include "dot/parser.h"
#include "dot/writer.h"
#include "engine/kernel.h"
#include "mal/parser.h"
#include "mal/program.h"
#include "optimizer/pass.h"
#include "profiler/sink.h"
#include "server/mserver.h"
#include "sql/compiler.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace stetho {
namespace {

using analysis::CheckContext;
using analysis::Diagnostic;
using analysis::Runner;
using analysis::Severity;
using mal::Argument;
using mal::MalType;
using profiler::EventState;
using profiler::TraceEvent;
using storage::DataType;
using storage::Value;

MalType Lng() { return MalType::Scalar(DataType::kInt64); }
MalType BatLng() { return MalType::Bat(DataType::kInt64); }
MalType BatOid() { return MalType::Bat(DataType::kOid); }

/// Runs exactly one check over the context.
std::vector<Diagnostic> RunOne(std::unique_ptr<analysis::Check> check,
                               const CheckContext& ctx) {
  Runner runner;
  runner.Add(std::move(check));
  return runner.Run(ctx);
}

CheckContext PlanContext(const mal::Program& p) {
  CheckContext ctx;
  ctx.program = &p;
  return ctx;
}

bool HasCheck(const std::vector<Diagnostic>& diags, const std::string& id) {
  for (const Diagnostic& d : diags) {
    if (d.check_id == id) return true;
  }
  return false;
}

/// A well-formed little plan: two sources, an add, a count, and a print
/// consuming everything.
mal::Program CleanPlan() {
  mal::Program p;
  int a = p.AddVariable(BatOid());
  p.Add("bat", "densebat", {a}, {Argument::Const(Value::Int(16))});
  int b = p.AddVariable(BatOid());
  p.Add("bat", "mirror", {b}, {Argument::Var(a)});
  int c = p.AddVariable(BatLng());
  p.Add("batcalc", "add", {c}, {Argument::Var(a), Argument::Var(b)});
  int n = p.AddVariable(Lng());
  p.Add("aggr", "count", {n}, {Argument::Var(c)});
  p.Add("io", "print", {}, {Argument::Var(n)});
  return p;
}

// ---------------------------------------------------------------------------
// ssa-def-before-use
// ---------------------------------------------------------------------------

TEST(DefBeforeUseTest, CleanPlanHasNoFindings) {
  mal::Program p = CleanPlan();
  EXPECT_TRUE(RunOne(analysis::MakeDefBeforeUseCheck(), PlanContext(p)).empty());
}

TEST(DefBeforeUseTest, FlagsUseBeforeDefinition) {
  mal::Program p;
  int a = p.AddVariable(Lng());
  int b = p.AddVariable(Lng());
  p.Add("calc", "add", {b}, {Argument::Var(a), Argument::Const(Value::Int(1))});
  p.Add("sql", "mvc", {a}, {});
  p.Add("io", "print", {}, {Argument::Var(b)});

  auto diags = RunOne(analysis::MakeDefBeforeUseCheck(), PlanContext(p));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_EQ(diags[0].check_id, "ssa-def-before-use");
  EXPECT_EQ(diags[0].pc, 0);
  EXPECT_EQ(diags[0].var, a);
}

TEST(DefBeforeUseTest, FlagsOutOfRangeArgument) {
  mal::Program p;
  int a = p.AddVariable(Lng());
  p.Add("calc", "add", {a},
        {Argument::Var(99), Argument::Const(Value::Int(1))});

  auto diags = RunOne(analysis::MakeDefBeforeUseCheck(), PlanContext(p));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].pc, 0);
  EXPECT_EQ(diags[0].var, 99);
  EXPECT_NE(diags[0].message.find("out-of-range"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ssa-single-assignment
// ---------------------------------------------------------------------------

TEST(SingleAssignmentTest, FlagsSecondAssignment) {
  mal::Program p;
  int a = p.AddVariable(Lng());
  p.Add("sql", "mvc", {a}, {});
  p.Add("sql", "mvc", {a}, {});
  p.Add("io", "print", {}, {Argument::Var(a)});

  auto diags = RunOne(analysis::MakeSingleAssignmentCheck(), PlanContext(p));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].check_id, "ssa-single-assignment");
  EXPECT_EQ(diags[0].pc, 1);
  EXPECT_EQ(diags[0].var, a);
  EXPECT_NE(diags[0].message.find("pc=0"), std::string::npos);
}

TEST(SingleAssignmentTest, FlagsOutOfRangeResult) {
  mal::Program p;
  p.Add("sql", "mvc", {7}, {});
  auto diags = RunOne(analysis::MakeSingleAssignmentCheck(), PlanContext(p));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_EQ(diags[0].var, 7);
}

// ---------------------------------------------------------------------------
// dead-instruction
// ---------------------------------------------------------------------------

TEST(DeadInstructionTest, FlagsUnusedPureResult) {
  mal::Program p = CleanPlan();
  int d = p.AddVariable(BatOid());
  p.Add("bat", "densebat", {d}, {Argument::Const(Value::Int(4))});

  auto diags = RunOne(analysis::MakeDeadInstructionCheck(), PlanContext(p));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_EQ(diags[0].check_id, "dead-instruction");
  EXPECT_EQ(diags[0].pc, 5);
}

TEST(DeadInstructionTest, IgnoresEffectfulAndPartiallyUsedOps) {
  mal::Program p;
  // debug.spin is effectful: unused result must NOT be flagged.
  int s = p.AddVariable(Lng());
  p.Add("debug", "spin", {s}, {Argument::Const(Value::Int(1))});
  // algebra.sort's permutation result routinely goes unused: one live
  // result keeps the instruction alive.
  int b = p.AddVariable(BatLng());
  p.Add("bat", "densebat", {b}, {Argument::Const(Value::Int(8))});
  int sorted = p.AddVariable(BatLng());
  int perm = p.AddVariable(BatOid());
  p.Add("algebra", "sort", {sorted, perm},
        {Argument::Var(b), Argument::Const(Value::Bool(false))});
  p.Add("io", "print", {}, {Argument::Var(sorted)});

  EXPECT_TRUE(
      RunOne(analysis::MakeDeadInstructionCheck(), PlanContext(p)).empty());
}

// ---------------------------------------------------------------------------
// kernel-signature
// ---------------------------------------------------------------------------

TEST(KernelSignatureTest, FlagsUnknownKernelAgainstRegistry) {
  mal::Program p;
  int a = p.AddVariable(Lng());
  p.Add("user", "mystery", {a}, {});
  CheckContext ctx = PlanContext(p);
  ctx.registry = engine::ModuleRegistry::Default();

  auto diags = RunOne(analysis::MakeKernelSignatureCheck(), ctx);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].check_id, "kernel-signature");
  EXPECT_NE(diags[0].message.find("unknown kernel user.mystery"),
            std::string::npos);
}

TEST(KernelSignatureTest, FlagsWrongArity) {
  mal::Program p;
  int b = p.AddVariable(BatOid());
  p.Add("bat", "densebat", {b},
        {Argument::Const(Value::Int(4)), Argument::Const(Value::Int(9))});
  auto diags = RunOne(analysis::MakeKernelSignatureCheck(), PlanContext(p));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].pc, 0);
  EXPECT_NE(diags[0].message.find("takes 1 arguments, got 2"),
            std::string::npos);
}

TEST(KernelSignatureTest, FlagsScalarWhereBatExpected) {
  mal::Program p;
  int s = p.AddVariable(Lng());
  p.Add("sql", "mvc", {s}, {});
  int out = p.AddVariable(BatLng());
  p.Add("bat", "mirror", {out}, {Argument::Var(s)});
  auto diags = RunOne(analysis::MakeKernelSignatureCheck(), PlanContext(p));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].pc, 1);
  EXPECT_EQ(diags[0].var, s);
  EXPECT_NE(diags[0].message.find("must be a bat"), std::string::npos);
}

TEST(KernelSignatureTest, FlagsBatcalcWithoutBatArgument) {
  mal::Program p;
  int out = p.AddVariable(BatLng());
  p.Add("batcalc", "add", {out},
        {Argument::Const(Value::Int(1)), Argument::Const(Value::Int(2))});
  auto diags = RunOne(analysis::MakeKernelSignatureCheck(), PlanContext(p));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("at least one BAT argument"),
            std::string::npos);
}

TEST(KernelSignatureTest, FlagsResultDeclaredWithWrongShape) {
  mal::Program p;
  int b = p.AddVariable(BatLng());
  p.Add("bat", "densebat", {b}, {Argument::Const(Value::Int(4))});
  int n = p.AddVariable(BatLng());  // aggr.count yields a scalar
  p.Add("aggr", "count", {n}, {Argument::Var(b)});
  auto diags = RunOne(analysis::MakeKernelSignatureCheck(), PlanContext(p));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].pc, 1);
  EXPECT_EQ(diags[0].var, n);
}

TEST(KernelSignatureTest, FlagsVariadicBelowMinimum) {
  mal::Program p;
  int out = p.AddVariable(BatLng());
  p.Add("mat", "pack", {out}, {});
  auto diags = RunOne(analysis::MakeKernelSignatureCheck(), PlanContext(p));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("at least 1 arguments"), std::string::npos);
}

// ---------------------------------------------------------------------------
// bat-lifetime
// ---------------------------------------------------------------------------

TEST(BatLifetimeTest, FlagsUnconsumedBatFromUnknownProducer) {
  mal::Program p;
  int b = p.AddVariable(BatLng());
  p.Add("user", "loadBat", {b}, {});
  auto diags = RunOne(analysis::MakeBatLifetimeCheck(), PlanContext(p));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_EQ(diags[0].check_id, "bat-lifetime");
  EXPECT_EQ(diags[0].var, b);
}

TEST(BatLifetimeTest, PureProducersLeftToDeadInstructionCheck) {
  mal::Program p;
  int b = p.AddVariable(BatLng());
  p.Add("bat", "densebat", {b}, {Argument::Const(Value::Int(4))});
  EXPECT_TRUE(RunOne(analysis::MakeBatLifetimeCheck(), PlanContext(p)).empty());
}

TEST(BatLifetimeTest, FlagsConsumerStartingBeforeProducerDone) {
  mal::Program p = CleanPlan();
  std::vector<TraceEvent> trace;
  auto push = [&trace, &p](int64_t seq, int pc, EventState state) {
    TraceEvent e;
    e.event = seq;
    e.time_us = seq * 10;
    e.pc = pc;
    e.state = state;
    e.stmt = p.InstructionToString(p.instruction(pc));
    trace.push_back(e);
  };
  // pc=1 (bat.mirror of X_0) starts BEFORE pc=0 (densebat) is done.
  push(0, 0, EventState::kStart);
  push(1, 1, EventState::kStart);
  push(2, 0, EventState::kDone);
  push(3, 1, EventState::kDone);
  for (int pc = 2; pc < 5; ++pc) {
    push(2 * pc, pc, EventState::kStart);
    push(2 * pc + 1, pc, EventState::kDone);
  }
  CheckContext ctx = PlanContext(p);
  ctx.trace = &trace;

  // bat-lifetime is plan-only: the trace-side producer/consumer ordering
  // moved to trace-dependency-violation (hb.h), which still catches it.
  auto diags = RunOne(analysis::MakeBatLifetimeCheck(), ctx);
  EXPECT_TRUE(diags.empty());
  auto hb = RunOne(analysis::MakeTraceDependencyViolationCheck(), ctx);
  ASSERT_FALSE(hb.empty());
  EXPECT_EQ(hb[0].severity, Severity::kError);
  EXPECT_EQ(hb[0].pc, 1);
}

// ---------------------------------------------------------------------------
// sink-order-key
// ---------------------------------------------------------------------------

TEST(SinkOrderKeyTest, NotesPlanWithoutAnySink) {
  mal::Program p;
  int a = p.AddVariable(Lng());
  p.Add("sql", "mvc", {a}, {});
  auto diags = RunOne(analysis::MakeSinkOrderKeyCheck(), PlanContext(p));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kNote);
  EXPECT_EQ(diags[0].pc, -1);
}

TEST(SinkOrderKeyTest, FlagsUnknownSinkWithoutOrderKey) {
  mal::Program p;
  int a = p.AddVariable(Lng());
  p.Add("sql", "mvc", {a}, {});
  p.Add("user", "printResult", {}, {Argument::Var(a)});
  auto diags = RunOne(analysis::MakeSinkOrderKeyCheck(), PlanContext(p));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_EQ(diags[0].check_id, "sink-order-key");
  EXPECT_EQ(diags[0].pc, 1);
}

TEST(SinkOrderKeyTest, FlagsOrderKeyCollision) {
  mal::Program p;
  int a = p.AddVariable(Lng());
  p.Add("sql", "mvc", {a}, {});
  std::vector<Argument> args(257, Argument::Var(a));
  p.Add("io", "print", {}, std::move(args));
  auto diags = RunOne(analysis::MakeSinkOrderKeyCheck(), PlanContext(p));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("order key"), std::string::npos);
}

// ---------------------------------------------------------------------------
// dot-contract
// ---------------------------------------------------------------------------

TEST(DotContractTest, GeneratedGraphConforms) {
  mal::Program p = CleanPlan();
  dot::Graph g = dot::ProgramToGraph(p);
  CheckContext ctx = PlanContext(p);
  ctx.graph = &g;
  EXPECT_TRUE(RunOne(analysis::MakeDotContractCheck(), ctx).empty());
}

TEST(DotContractTest, FlagsTamperedLabel) {
  mal::Program p = CleanPlan();
  dot::Graph g = dot::ProgramToGraph(p);
  g.node(2).attrs["label"] = "tampered";
  CheckContext ctx = PlanContext(p);
  ctx.graph = &g;
  auto diags = RunOne(analysis::MakeDotContractCheck(), ctx);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].check_id, "dot-contract");
  EXPECT_EQ(diags[0].pc, 2);
  EXPECT_NE(diags[0].message.find("label mismatch"), std::string::npos);
}

TEST(DotContractTest, FlagsMissingNodeAndBadId) {
  mal::Program p = CleanPlan();
  dot::Graph g;  // empty graph: every pc is missing
  g.AddNode("opaque_name");
  CheckContext ctx = PlanContext(p);
  ctx.graph = &g;
  auto diags = RunOne(analysis::MakeDotContractCheck(), ctx);
  EXPECT_TRUE(HasCheck(diags, "dot-contract"));
  bool missing = false, bad_id = false;
  for (const Diagnostic& d : diags) {
    if (d.message.find("has no dot node") != std::string::npos) missing = true;
    if (d.message.find("naming convention") != std::string::npos) bad_id = true;
  }
  EXPECT_TRUE(missing);
  EXPECT_TRUE(bad_id);
}

TEST(DotContractTest, FlagsExtraAndMissingEdges) {
  mal::Program p = CleanPlan();
  dot::Graph g = dot::ProgramToGraph(p);
  g.AddEdge("n0", "n4");  // not a dataflow dependency
  CheckContext ctx = PlanContext(p);
  ctx.graph = &g;
  auto diags = RunOne(analysis::MakeDotContractCheck(), ctx);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_NE(diags[0].message.find("no matching dataflow dependency"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// trace-conformance
// ---------------------------------------------------------------------------

std::vector<TraceEvent> WellFormedTrace(const mal::Program& p) {
  std::vector<TraceEvent> trace;
  int64_t seq = 0;
  for (const mal::Instruction& ins : p.instructions()) {
    for (EventState state : {EventState::kStart, EventState::kDone}) {
      TraceEvent e;
      e.event = seq;
      e.time_us = 100 + seq * 5;
      e.pc = ins.pc;
      e.state = state;
      e.usec = state == EventState::kDone ? 5 : 0;
      e.stmt = p.InstructionToString(ins);
      trace.push_back(e);
      ++seq;
    }
  }
  return trace;
}

TEST(TraceConformanceTest, WellFormedTraceIsClean) {
  mal::Program p = CleanPlan();
  std::vector<TraceEvent> trace = WellFormedTrace(p);
  CheckContext ctx = PlanContext(p);
  ctx.trace = &trace;
  EXPECT_TRUE(RunOne(analysis::MakeTraceConformanceCheck(), ctx).empty());
}

TEST(TraceConformanceTest, FlagsUnpairedStart) {
  mal::Program p = CleanPlan();
  std::vector<TraceEvent> trace = WellFormedTrace(p);
  trace.erase(trace.begin() + 5);  // drop pc=2's done event
  CheckContext ctx = PlanContext(p);
  ctx.trace = &trace;
  auto diags = RunOne(analysis::MakeTraceConformanceCheck(), ctx);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].check_id, "trace-conformance");
  EXPECT_EQ(diags[0].pc, 2);
  EXPECT_NE(diags[0].message.find("1 start vs 0 done"), std::string::npos);
}

TEST(TraceConformanceTest, FlagsDoubleExecution) {
  mal::Program p = CleanPlan();
  std::vector<TraceEvent> trace = WellFormedTrace(p);
  std::vector<TraceEvent> doubled = trace;
  for (TraceEvent e : {trace[0], trace[1]}) {
    e.event += 100;
    e.time_us += 1000;
    doubled.push_back(e);
  }
  CheckContext ctx = PlanContext(p);
  ctx.trace = &doubled;
  auto diags = RunOne(analysis::MakeTraceConformanceCheck(), ctx);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].pc, 0);
  EXPECT_NE(diags[0].message.find("executed 2 times"), std::string::npos);
}

TEST(TraceConformanceTest, FlagsNonMonotonicClock) {
  mal::Program p = CleanPlan();
  std::vector<TraceEvent> trace = WellFormedTrace(p);
  trace[3].time_us = 1;  // runs backwards
  CheckContext ctx = PlanContext(p);
  ctx.trace = &trace;
  auto diags = RunOne(analysis::MakeTraceConformanceCheck(), ctx);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("runs backwards"), std::string::npos);
}

TEST(TraceConformanceTest, FlagsPcOutOfRangeAndStmtMismatch) {
  mal::Program p = CleanPlan();
  std::vector<TraceEvent> trace = WellFormedTrace(p);
  trace[0].stmt = "something else entirely";
  TraceEvent rogue = trace.back();
  rogue.event = 99;
  rogue.pc = 42;
  trace.push_back(rogue);
  CheckContext ctx = PlanContext(p);
  ctx.trace = &trace;
  auto diags = RunOne(analysis::MakeTraceConformanceCheck(), ctx);
  bool mismatch = false, out_of_range = false;
  for (const Diagnostic& d : diags) {
    if (d.message.find("diverges from the plan") != std::string::npos) {
      mismatch = true;
      EXPECT_EQ(d.pc, 0);
    }
    if (d.message.find("outside the plan") != std::string::npos) {
      out_of_range = true;
      EXPECT_EQ(d.pc, 42);
    }
  }
  EXPECT_TRUE(mismatch);
  EXPECT_TRUE(out_of_range);
}

// ---------------------------------------------------------------------------
// Runner + formatting
// ---------------------------------------------------------------------------

TEST(RunnerTest, SkipsChecksWithMissingInputs) {
  CheckContext empty;
  EXPECT_TRUE(Runner::Default().Run(empty).empty());
}

TEST(RunnerTest, DefaultSuiteHasAllChecks) {
  EXPECT_EQ(Runner::Default().size(), 24u);
}

TEST(RunnerTest, SortsErrorsFirstThenByPc) {
  mal::Program p;
  int a = p.AddVariable(Lng());
  // pc=0: dead instruction (warning) — result never used.
  p.Add("sql", "mvc", {a}, {});
  // pc=1: def-before-use (error).
  int b = p.AddVariable(Lng());
  p.Add("calc", "not", {b}, {Argument::Var(5)});
  auto diags = Runner::Default().Run(PlanContext(p));
  ASSERT_GE(diags.size(), 2u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  for (size_t i = 1; i < diags.size(); ++i) {
    EXPECT_LE(static_cast<int>(diags[i].severity),
              static_cast<int>(diags[i - 1].severity));
  }
}

TEST(RunnerTest, DiagnosticsToStatusNamesContextAndCheck) {
  mal::Program p;
  int b = p.AddVariable(Lng());
  p.Add("calc", "not", {b}, {Argument::Var(9)});
  auto diags = Runner::Default().Run(PlanContext(p));
  Status st = analysis::DiagnosticsToStatus(diags, "pass 'broken'");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("pass 'broken'"), std::string::npos);
  EXPECT_NE(st.message().find("ssa-def-before-use"), std::string::npos);
  EXPECT_NE(st.message().find("pc=0"), std::string::npos);
}

TEST(RunnerTest, WarningsDoNotFailStatus) {
  mal::Program p;
  int a = p.AddVariable(Lng());
  p.Add("sql", "mvc", {a}, {});  // dead instruction + no-sink note
  auto diags = Runner::Default().Run(PlanContext(p));
  EXPECT_FALSE(diags.empty());
  EXPECT_TRUE(analysis::DiagnosticsToStatus(diags, "ctx").ok());
}

TEST(RunnerTest, JsonOutputIsStructuredAndEscaped) {
  std::vector<Diagnostic> diags(1);
  diags[0].severity = Severity::kError;
  diags[0].check_id = "dot-contract";
  diags[0].pc = 3;
  diags[0].message = "label \"weird\\path\" mismatch";
  std::string json = analysis::DiagnosticsToJson(diags);
  EXPECT_NE(json.find("\"check\": \"dot-contract\""), std::string::npos);
  EXPECT_NE(json.find("\"pc\": 3"), std::string::npos);
  EXPECT_NE(json.find("\\\"weird\\\\path\\\""), std::string::npos);
  EXPECT_TRUE(analysis::DiagnosticsToJson({}).find("[]") == 0);
}

TEST(RunnerTest, DiagnosticToStringIncludesEveryField) {
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.check_id = "dead-instruction";
  d.pc = 12;
  d.var = 4;
  d.message = "unused";
  d.fix_hint = "remove it";
  std::string s = d.ToString();
  EXPECT_NE(s.find("warning[dead-instruction]"), std::string::npos);
  EXPECT_NE(s.find("pc=12"), std::string::npos);
  EXPECT_NE(s.find("var=4"), std::string::npos);
  EXPECT_NE(s.find("hint: remove it"), std::string::npos);
}

TEST(RunnerTest, LenientParserFeedsLinter) {
  auto p = mal::ParseProgram(
      "function user.main():void;\n"
      "    X_1:lng := calc.not(X_0);\n"
      "    X_0:lng := sql.mvc();\n"
      "end user.main;\n");
  EXPECT_FALSE(p.ok());  // strict parse rejects def-before-use

  auto lenient = mal::ParseProgramLenient(
      "function user.main():void;\n"
      "    X_1:lng := calc.not(X_0);\n"
      "    X_0:lng := sql.mvc();\n"
      "end user.main;\n");
  ASSERT_TRUE(lenient.ok());
  auto diags = Runner::Default().Run(PlanContext(lenient.value()));
  EXPECT_TRUE(HasCheck(diags, "ssa-def-before-use"));
}

// ---------------------------------------------------------------------------
// Property: random valid plans stay clean through every optimizer stage.
// ---------------------------------------------------------------------------

mal::Program GenerateRandomPlan(uint64_t seed) {
  SplitMix64 rng(seed);
  mal::Program p;
  std::vector<int> bats;
  std::vector<int> scalars;

  int sources = 1 + static_cast<int>(rng.NextBounded(3));
  for (int i = 0; i < sources; ++i) {
    int v = p.AddVariable(BatOid());
    p.Add("bat", "densebat",
          {v}, {Argument::Const(Value::Int(rng.NextRange(1, 64)))});
    bats.push_back(v);
  }

  int ops = 3 + static_cast<int>(rng.NextBounded(10));
  for (int i = 0; i < ops; ++i) {
    switch (rng.NextBounded(6)) {
      case 0: {  // bat.mirror (always produces bat[:oid])
        int in = bats[rng.NextBounded(bats.size())];
        int out = p.AddVariable(BatOid());
        p.Add("bat", "mirror", {out}, {Argument::Var(in)});
        bats.push_back(out);
        break;
      }
      case 1: {  // batcalc over a bat and a constant (or the bat itself;
                 // two independent sources would zip different row counts)
        int in = bats[rng.NextBounded(bats.size())];
        Argument rhs = rng.NextBool(0.5)
                           ? Argument::Const(Value::Int(rng.NextRange(1, 9)))
                           : Argument::Var(in);
        int out = p.AddVariable(BatLng());
        p.Add("batcalc", "add", {out}, {Argument::Var(in), rhs});
        bats.push_back(out);
        break;
      }
      case 2: {  // aggr.count: bat -> scalar
        int in = bats[rng.NextBounded(bats.size())];
        int out = p.AddVariable(Lng());
        p.Add("aggr", "count", {out}, {Argument::Var(in)});
        scalars.push_back(out);
        break;
      }
      case 3: {  // scalar arithmetic, sometimes constant-foldable
        Argument lhs = scalars.empty() || rng.NextBool(0.3)
                           ? Argument::Const(Value::Int(rng.NextRange(1, 9)))
                           : Argument::Var(scalars[rng.NextBounded(
                                 scalars.size())]);
        int out = p.AddVariable(Lng());
        p.Add("calc", "add", {out},
              {lhs, Argument::Const(Value::Int(rng.NextRange(1, 9)))});
        scalars.push_back(out);
        break;
      }
      case 4: {  // bat.append (operands must share an element type)
        int a = bats[rng.NextBounded(bats.size())];
        int b = bats[rng.NextBounded(bats.size())];
        if (p.variable(b).type != p.variable(a).type) b = a;
        int out = p.AddVariable(p.variable(a).type);
        p.Add("bat", "append", {out}, {Argument::Var(a), Argument::Var(b)});
        bats.push_back(out);
        break;
      }
      case 5: {  // duplicate of an earlier op, CSE fodder
        int in = bats[rng.NextBounded(bats.size())];
        int out = p.AddVariable(BatOid());
        p.Add("bat", "mirror", {out}, {Argument::Var(in)});
        bats.push_back(out);
        break;
      }
    }
  }

  // Print every variable so nothing is dead and the plan has a sink.
  std::vector<Argument> args;
  for (int v : bats) args.push_back(Argument::Var(v));
  for (int v : scalars) args.push_back(Argument::Var(v));
  p.Add("io", "print", {}, std::move(args));
  return p;
}

class RandomPlanTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomPlanTest, OptimizerStagesStayLintClean) {
  mal::Program p = GenerateRandomPlan(GetParam());
  ASSERT_TRUE(p.Validate().ok());

  CheckContext ctx;
  ctx.registry = engine::ModuleRegistry::Default();

  // Lint the raw plan, then after each individual optimizer stage. The raw
  // plan deliberately contains foldable calc.* chains, so allow the
  // missed-constant-fold notes but nothing of consequence.
  ctx.program = &p;
  auto diags = Runner::Default().Run(ctx);
  EXPECT_EQ(analysis::CountSeverity(diags, Severity::kError), 0u)
      << analysis::FormatDiagnostics(diags);
  EXPECT_EQ(analysis::CountSeverity(diags, Severity::kWarning), 0u)
      << analysis::FormatDiagnostics(diags);

  for (int pieces : {0, 4}) {
    mal::Program optimized = GenerateRandomPlan(GetParam());
    optimizer::Pipeline pipeline = optimizer::Pipeline::Default(pieces);
    auto fired = pipeline.Run(&optimized);  // lints after every pass itself
    ASSERT_TRUE(fired.ok()) << fired.status().ToString();
    ctx.program = &optimized;
    diags = Runner::Default().Run(ctx);
    EXPECT_TRUE(diags.empty())
        << "pieces=" << pieces << "\n"
        << analysis::FormatDiagnostics(diags) << optimized.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPlanTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u, 144u, 233u));

// ---------------------------------------------------------------------------
// Integration: the whole seed SQL -> MAL -> optimizer -> execution pipeline
// produces plans, graphs, and traces with zero diagnostics.
// ---------------------------------------------------------------------------

class SeedPipelineTest : public ::testing::Test {
 protected:
  static storage::Catalog MakeCatalog() {
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    auto cat = tpch::GenerateTpch(config);
    EXPECT_TRUE(cat.ok());
    return std::move(cat.value());
  }
};

TEST_F(SeedPipelineTest, AllQueriesLintCleanAfterOptimization) {
  storage::Catalog catalog = MakeCatalog();
  CheckContext ctx;
  ctx.registry = engine::ModuleRegistry::Default();
  for (const char* query :
       {"paper", "q1", "q3", "q5", "q6", "q12", "q14", "big_group",
        "scan_heavy", "q18", "q11", "q16", "distinct_flags"}) {
    const std::string sql = tpch::GetQuery(query).value().sql;
    for (int pieces : {0, 8}) {
      auto plan = sql::Compiler::CompileSql(&catalog, sql);
      ASSERT_TRUE(plan.ok()) << query;
      optimizer::Pipeline pipeline = optimizer::Pipeline::Default(pieces);
      auto fired = pipeline.Run(&plan.value());
      ASSERT_TRUE(fired.ok()) << query << ": " << fired.status().ToString();

      ctx.program = &plan.value();
      dot::Graph graph = dot::ProgramToGraph(plan.value());
      ctx.graph = &graph;
      auto diags = Runner::Default().Run(ctx);
      EXPECT_TRUE(diags.empty())
          << query << " pieces=" << pieces << "\n"
          << analysis::FormatDiagnostics(diags);
      ctx.graph = nullptr;
    }
  }
}

TEST_F(SeedPipelineTest, ExecutedQueryTraceLintsClean) {
  server::MserverOptions options;
  options.mitosis_pieces = 4;
  server::Mserver server(MakeCatalog(), options);
  auto ring = std::make_shared<profiler::RingBufferSink>(1 << 16);
  server.profiler()->AddSink(ring);

  for (const char* query : {"q1", "q6", "q14"}) {
    ring->Clear();
    auto outcome = server.ExecuteSql(tpch::GetQuery(query).value().sql);
    ASSERT_TRUE(outcome.ok()) << query;
    auto graph = dot::ParseDot(outcome.value().dot);
    ASSERT_TRUE(graph.ok()) << query;
    auto events = ring->Snapshot();
    ASSERT_FALSE(events.empty()) << query;

    CheckContext ctx;
    ctx.program = &outcome.value().plan;
    ctx.graph = &graph.value();
    ctx.trace = &events;
    ctx.registry = engine::ModuleRegistry::Default();
    auto diags = Runner::Default().Run(ctx);
    // Selective plans may earn the informational "bound is >2x the
    // recorded peak" conformance note; anything at warning or above (or
    // any other note) is a real regression.
    for (const Diagnostic& d : diags) {
      EXPECT_TRUE(d.severity == Severity::kNote &&
                  d.check_id == "footprint-conformance")
          << query << "\n" << analysis::FormatDiagnostics(diags);
    }
  }
}

// The signature table stays in lock-step with the engine: every kernel the
// registry exposes has a shape entry, so the lint can type-check any plan
// the compiler emits.
TEST(SignatureTableTest, CoversEveryRegisteredKernel) {
  for (const std::string& name :
       engine::ModuleRegistry::Default()->ListKernels()) {
    size_t dotpos = name.find('.');
    ASSERT_NE(dotpos, std::string::npos) << name;
    EXPECT_NE(analysis::LookupKernelSignature(name.substr(0, dotpos),
                                              name.substr(dotpos + 1)),
              nullptr)
        << "registered kernel " << name << " missing from the signature table";
  }
}

// ---------------------------------------------------------------------------
// SARIF schema shape, fingerprints, and baselines
// ---------------------------------------------------------------------------

// Minimal structural audit against SARIF 2.1.0: regions are 1-based with an
// explicit startColumn, every result's ruleIndex points at the entry in the
// rules array whose id matches its ruleId, and rules appear in
// first-appearance order. (Full-output fidelity is the golden-file test in
// absint_test.cc.)
TEST(SarifSchemaShapeTest, RuleIndexAndRegionsAreConsistent) {
  std::vector<Diagnostic> diags(3);
  diags[0].severity = Severity::kError;
  diags[0].check_id = "trace-dependency-violation";
  diags[0].pc = 0;
  diags[0].message = "first";
  diags[1].severity = Severity::kWarning;
  diags[1].check_id = "type-flow";
  diags[1].pc = 4;
  diags[1].message = "second";
  diags[2].severity = Severity::kNote;
  diags[2].check_id = "trace-dependency-violation";
  diags[2].pc = 9;
  diags[2].message = "third";
  std::string sarif = analysis::DiagnosticsToSarif(diags, "p.mal");

  // Rules: first-appearance order, each id exactly once.
  size_t rule0 = sarif.find("{\"id\": \"trace-dependency-violation\"");
  size_t rule1 = sarif.find("{\"id\": \"type-flow\"");
  ASSERT_NE(rule0, std::string::npos);
  ASSERT_NE(rule1, std::string::npos);
  EXPECT_LT(rule0, rule1);
  EXPECT_EQ(sarif.find("{\"id\": \"trace-dependency-violation\"", rule0 + 1),
            std::string::npos);

  // Results reference the matching rule index.
  EXPECT_NE(sarif.find("\"ruleId\": \"trace-dependency-violation\", "
                       "\"ruleIndex\": 0"),
            std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"type-flow\", \"ruleIndex\": 1"),
            std::string::npos);

  // Regions are 1-based: pc 0 is line 1 column 1; pc 9 is line 10.
  EXPECT_NE(sarif.find("\"region\": {\"startLine\": 1, \"startColumn\": 1}"),
            std::string::npos);
  EXPECT_NE(sarif.find("\"region\": {\"startLine\": 10, \"startColumn\": 1}"),
            std::string::npos);
  EXPECT_EQ(sarif.find("\"startLine\": 0"), std::string::npos);
  EXPECT_EQ(sarif.find("\"startColumn\": 0"), std::string::npos);
}

TEST(FingerprintTest, NormalizesDigitsButKeepsIdentity) {
  Diagnostic d;
  d.check_id = "trace-dependency-violation";
  d.pc = 3;
  d.message = "started before producer pc=2 finished";
  std::string fp = analysis::DiagnosticFingerprint(d);
  EXPECT_EQ(fp,
            "trace-dependency-violation:3:started before producer pc=# "
            "finished");

  // Drifting counts inside the message do not change the fingerprint...
  Diagnostic drifted = d;
  drifted.message = "started before producer pc=7 finished";
  EXPECT_EQ(analysis::DiagnosticFingerprint(drifted), fp);
  // ...but a different pc or check does.
  Diagnostic moved = d;
  moved.pc = 4;
  EXPECT_NE(analysis::DiagnosticFingerprint(moved), fp);
}

TEST(BaselineTest, RoundTripSuppressesOnlyListedFindings) {
  std::vector<Diagnostic> diags(2);
  diags[0].severity = Severity::kError;
  diags[0].check_id = "trace-write-race";
  diags[0].pc = 5;
  diags[0].message = "write-write race on X_9";
  diags[1].severity = Severity::kNote;
  diags[1].check_id = "schedule-serialization";
  diags[1].pc = -1;
  diags[1].message = "plan admits 4-wide parallelism";

  // Baseline only the first finding; parse tolerates comments and blanks.
  std::string file = "# comment\n\n" +
                     analysis::DiagnosticFingerprint(diags[0]) + "\n";
  std::vector<std::string> baseline = analysis::ParseBaseline(file);
  ASSERT_EQ(baseline.size(), 1u);
  std::vector<Diagnostic> left = analysis::ApplyBaseline(diags, baseline);
  ASSERT_EQ(left.size(), 1u);
  EXPECT_EQ(left[0].check_id, "schedule-serialization");

  // FormatBaseline over the findings suppresses everything on re-apply.
  std::vector<std::string> full =
      analysis::ParseBaseline(analysis::FormatBaseline(diags));
  EXPECT_TRUE(analysis::ApplyBaseline(diags, full).empty());
}

TEST(FailOnTest, ThresholdMatchesSeverityOrdering) {
  std::vector<Diagnostic> diags(1);
  diags[0].severity = Severity::kWarning;
  diags[0].check_id = "dead-instruction";
  diags[0].message = "m";
  EXPECT_TRUE(analysis::AnyAtOrAbove(diags, Severity::kNote));
  EXPECT_TRUE(analysis::AnyAtOrAbove(diags, Severity::kWarning));
  EXPECT_FALSE(analysis::AnyAtOrAbove(diags, Severity::kError));
  EXPECT_FALSE(analysis::AnyAtOrAbove({}, Severity::kNote));
}


// ---------------------------------------------------------------------------
// trace-sequence-gap
// ---------------------------------------------------------------------------

std::vector<TraceEvent> SeqTrace(const std::vector<int64_t>& seqs) {
  std::vector<TraceEvent> trace;
  for (int64_t seq : seqs) {
    TraceEvent e;
    e.event = seq;
    e.time_us = 100 + seq;
    e.pc = 0;
    e.state = EventState::kDone;
    trace.push_back(e);
  }
  return trace;
}

TEST(TraceSequenceGapTest, CleanContiguousTraceHasNoFindings) {
  mal::Program p = CleanPlan();
  auto trace = SeqTrace({0, 1, 2, 3, 4, 5});
  CheckContext ctx = PlanContext(p);
  ctx.trace = &trace;
  EXPECT_TRUE(
      RunOne(analysis::MakeTraceSequenceGapCheck(), ctx).empty());
}

TEST(TraceSequenceGapTest, MissingSequenceNumbersWarn) {
  mal::Program p = CleanPlan();
  auto trace = SeqTrace({0, 1, 4, 5});  // 2 and 3 lost in transit
  CheckContext ctx = PlanContext(p);
  ctx.trace = &trace;
  auto diags = RunOne(analysis::MakeTraceSequenceGapCheck(), ctx);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_EQ(diags[0].check_id, "trace-sequence-gap");
  EXPECT_NE(diags[0].message.find("2 of 6"), std::string::npos)
      << diags[0].message;
}

TEST(TraceSequenceGapTest, DuplicatedSequenceNumbersError) {
  mal::Program p = CleanPlan();
  auto trace = SeqTrace({0, 1, 1, 2});
  CheckContext ctx = PlanContext(p);
  ctx.trace = &trace;
  auto diags = RunOne(analysis::MakeTraceSequenceGapCheck(), ctx);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_NE(diags[0].message.find("appears 2 times"), std::string::npos);
}

TEST(TraceSequenceGapTest, FileOrderRegressionIsANote) {
  mal::Program p = CleanPlan();
  auto trace = SeqTrace({0, 2, 1, 3});  // complete but recorded out of order
  CheckContext ctx = PlanContext(p);
  ctx.trace = &trace;
  auto diags = RunOne(analysis::MakeTraceSequenceGapCheck(), ctx);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kNote);
  EXPECT_NE(diags[0].message.find("out of emission order"),
            std::string::npos);
}

TEST(TraceSequenceGapTest, TornTraceCapsDetailedDuplicates) {
  mal::Program p = CleanPlan();
  std::vector<int64_t> seqs;
  for (int64_t q = 0; q < 12; ++q) {
    seqs.push_back(q);
    seqs.push_back(q);  // every number duplicated: 12 > kMaxDetailed
  }
  auto trace = SeqTrace(seqs);
  CheckContext ctx = PlanContext(p);
  ctx.trace = &trace;
  auto diags = RunOne(analysis::MakeTraceSequenceGapCheck(), ctx);
  // 8 detailed + 1 summary, all errors.
  ASSERT_EQ(diags.size(), 9u);
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.severity, Severity::kError);
  }
}

TEST(TraceSequenceGapTest, SkippedWithoutATrace) {
  mal::Program p = CleanPlan();
  EXPECT_TRUE(
      RunOne(analysis::MakeTraceSequenceGapCheck(), PlanContext(p)).empty());
}

}  // namespace
}  // namespace stetho
