#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "profiler/event.h"
#include "profiler/filter.h"
#include "profiler/profiler.h"
#include "profiler/sink.h"

namespace stetho::profiler {
namespace {

TraceEvent MakeEvent(int pc, EventState state, int64_t usec = 0,
                     std::string stmt = "X_1 := sql.mvc();") {
  TraceEvent e;
  e.event = 1;
  e.time_us = 1000;
  e.pc = pc;
  e.thread = 2;
  e.state = state;
  e.usec = usec;
  e.rss_bytes = 4096;
  e.stmt = std::move(stmt);
  return e;
}

// --- trace line format ---

TEST(TraceLineTest, FormatShape) {
  std::string line = FormatTraceLine(MakeEvent(3, EventState::kStart));
  EXPECT_EQ(line.front(), '[');
  EXPECT_EQ(line.back(), ']');
  EXPECT_NE(line.find("\"start\""), std::string::npos);
  EXPECT_NE(line.find("sql.mvc"), std::string::npos);
}

TEST(TraceLineTest, RoundTrip) {
  TraceEvent e = MakeEvent(7, EventState::kDone, 1234,
                           "X_5:bat[:dbl] := algebra.projection(X_3,X_4);");
  auto parsed = ParseTraceLine(FormatTraceLine(e));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value(), e);
}

TEST(TraceLineTest, RoundTripWithQuotesInStmt) {
  TraceEvent e = MakeEvent(1, EventState::kStart, 0,
                           "X_2 := sql.bind(X_1,\"sys\",\"lineitem\",\"l_tax\",0);");
  auto parsed = ParseTraceLine(FormatTraceLine(e));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().stmt, e.stmt);
}

TEST(TraceLineTest, RejectsMalformed) {
  EXPECT_FALSE(ParseTraceLine("not a trace line").ok());
  EXPECT_FALSE(ParseTraceLine("[ 1, 2, 3 ]").ok());
  EXPECT_FALSE(ParseTraceLine("[ 1,2,3,4,\"weird\",6,7,\"s\" ]").ok());
  EXPECT_FALSE(ParseTraceLine("").ok());
}

TEST(TraceLineTest, ToleratesWhitespace) {
  std::string line = "  " + FormatTraceLine(MakeEvent(1, EventState::kDone)) + "  ";
  EXPECT_TRUE(ParseTraceLine(line).ok());
}

// --- filters ---

TEST(FilterTest, DefaultPassesEverything) {
  EventFilter f;
  EXPECT_TRUE(f.Matches(MakeEvent(0, EventState::kStart)));
  EXPECT_TRUE(f.Matches(MakeEvent(0, EventState::kDone)));
}

TEST(FilterTest, OnlyState) {
  EventFilter f;
  f.OnlyState(EventState::kDone);
  EXPECT_FALSE(f.Matches(MakeEvent(0, EventState::kStart)));
  EXPECT_TRUE(f.Matches(MakeEvent(0, EventState::kDone)));
}

TEST(FilterTest, MinUsecOnlyGatesDoneEvents) {
  EventFilter f;
  f.MinUsec(100);
  EXPECT_TRUE(f.Matches(MakeEvent(0, EventState::kStart, 0)));
  EXPECT_FALSE(f.Matches(MakeEvent(0, EventState::kDone, 50)));
  EXPECT_TRUE(f.Matches(MakeEvent(0, EventState::kDone, 150)));
}

TEST(FilterTest, PcRange) {
  EventFilter f;
  f.PcRange(2, 4);
  EXPECT_FALSE(f.Matches(MakeEvent(1, EventState::kDone)));
  EXPECT_TRUE(f.Matches(MakeEvent(2, EventState::kDone)));
  EXPECT_TRUE(f.Matches(MakeEvent(4, EventState::kDone)));
  EXPECT_FALSE(f.Matches(MakeEvent(5, EventState::kDone)));
}

TEST(FilterTest, ModuleFilterParsesStatement) {
  EventFilter f;
  f.AddModule("algebra");
  EXPECT_TRUE(f.Matches(MakeEvent(
      0, EventState::kDone, 0, "X_5:bat[:oid] := algebra.select(X_1,X_2,1,1);")));
  EXPECT_FALSE(f.Matches(MakeEvent(0, EventState::kDone, 0, "io.print(X_5);")));
  // Statements without assignment still resolve their module.
  f = EventFilter();
  f.AddModule("io");
  EXPECT_TRUE(f.Matches(MakeEvent(0, EventState::kDone, 0, "io.print(X_5);")));
}

TEST(FilterTest, SerializeDeserializeRoundTrip) {
  EventFilter f;
  f.OnlyState(EventState::kDone).AddModule("algebra").AddModule("aggr");
  f.MinUsec(42).PcRange(1, 9);
  auto back = EventFilter::Deserialize(f.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().Serialize(), f.Serialize());
}

TEST(FilterTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(EventFilter::Deserialize("nonsense").ok());
  EXPECT_FALSE(EventFilter::Deserialize("bogus_key=1;").ok());
}

// --- sinks ---

TEST(RingBufferSinkTest, KeepsMostRecent) {
  RingBufferSink sink(3);
  for (int i = 0; i < 5; ++i) sink.Consume(MakeEvent(i, EventState::kStart));
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.total_consumed(), 5);
  auto snap = sink.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].pc, 2);
  EXPECT_EQ(snap[2].pc, 4);
}

TEST(RingBufferSinkTest, ConsumeBatchMatchesPerEvent) {
  RingBufferSink batched(4);
  RingBufferSink one_by_one(4);
  std::vector<TraceEvent> events;
  for (int i = 0; i < 7; ++i) events.push_back(MakeEvent(i, EventState::kDone, i));
  batched.ConsumeBatch(events.data(), events.size());
  for (const TraceEvent& e : events) one_by_one.Consume(e);
  EXPECT_EQ(batched.size(), one_by_one.size());
  EXPECT_EQ(batched.total_consumed(), one_by_one.total_consumed());
  EXPECT_EQ(batched.dropped(), one_by_one.dropped());
  auto a = batched.Snapshot();
  auto b = one_by_one.Snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].pc, b[i].pc);
}

TEST(RingBufferSinkTest, ConsumeBatchLargerThanCapacity) {
  // A batch bigger than the whole ring keeps only the tail; everything
  // else counts as dropped exactly as per-event eviction would.
  RingBufferSink sink(3);
  std::vector<TraceEvent> events;
  for (int i = 0; i < 10; ++i) {
    events.push_back(MakeEvent(i, EventState::kStart));
  }
  sink.ConsumeBatch(events.data(), events.size());
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.total_consumed(), 10);
  EXPECT_EQ(sink.dropped(), 7);
  auto snap = sink.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].pc, 7);
  EXPECT_EQ(snap[2].pc, 9);
}

TEST(RingBufferSinkTest, EmptyBatchIsNoOp) {
  RingBufferSink sink(3);
  sink.ConsumeBatch(nullptr, 0);
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.total_consumed(), 0);
}

TEST(RingBufferSinkTest, Clear) {
  RingBufferSink sink(10);
  sink.Consume(MakeEvent(0, EventState::kStart));
  sink.Clear();
  EXPECT_EQ(sink.size(), 0u);
}

TEST(FileSinkTest, WritesParseableLines) {
  std::string path = testing::TempDir() + "/stetho_trace_test.trace";
  {
    auto sink = FileSink::Open(path);
    ASSERT_TRUE(sink.ok()) << sink.status().ToString();
    sink.value()->Consume(MakeEvent(0, EventState::kStart));
    sink.value()->Consume(MakeEvent(0, EventState::kDone, 99));
    ASSERT_TRUE(sink.value()->Flush().ok());
  }
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(ParseTraceLine(line).ok()) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(FileSinkTest, ConsumeBatchWritesIdenticalBytes) {
  std::string batch_path = testing::TempDir() + "/stetho_trace_batch.trace";
  std::string single_path = testing::TempDir() + "/stetho_trace_single.trace";
  std::vector<TraceEvent> events;
  for (int i = 0; i < 5; ++i) {
    events.push_back(MakeEvent(i, EventState::kDone, 10 * i));
  }
  {
    auto sink = FileSink::Open(batch_path);
    ASSERT_TRUE(sink.ok());
    sink.value()->ConsumeBatch(events.data(), events.size());
    ASSERT_TRUE(sink.value()->Flush().ok());
  }
  {
    auto sink = FileSink::Open(single_path);
    ASSERT_TRUE(sink.ok());
    for (const TraceEvent& e : events) sink.value()->Consume(e);
    ASSERT_TRUE(sink.value()->Flush().ok());
  }
  std::ifstream a(batch_path), b(single_path);
  std::string sa((std::istreambuf_iterator<char>(a)),
                 std::istreambuf_iterator<char>());
  std::string sb((std::istreambuf_iterator<char>(b)),
                 std::istreambuf_iterator<char>());
  EXPECT_FALSE(sa.empty());
  EXPECT_EQ(sa, sb);
  std::remove(batch_path.c_str());
  std::remove(single_path.c_str());
}

TEST(FileSinkTest, OpenFailsOnBadPath) {
  EXPECT_FALSE(FileSink::Open("/nonexistent_dir_zzz/x.trace").ok());
}

// --- Profiler ---

TEST(ProfilerTest, AssignsSequenceAndTimestamp) {
  VirtualClock clock(5000);
  Profiler prof(&clock);
  auto ring = std::make_shared<RingBufferSink>(16);
  prof.AddSink(ring);
  prof.EmitStart(1, 0, 0, "a");
  clock.Advance(10);
  prof.EmitDone(1, 0, 10, 0, "a");
  auto snap = ring->Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].event, 0);
  EXPECT_EQ(snap[1].event, 1);
  EXPECT_EQ(snap[0].time_us, 5000);
  EXPECT_EQ(snap[1].time_us, 5010);
}

TEST(ProfilerTest, FilterDropsAndCounts) {
  VirtualClock clock;
  Profiler prof(&clock);
  auto ring = std::make_shared<RingBufferSink>(16);
  prof.AddSink(ring);
  EventFilter f;
  f.OnlyState(EventState::kDone);
  prof.SetFilter(f);
  prof.EmitStart(1, 0, 0, "a");
  prof.EmitDone(1, 0, 5, 0, "a");
  EXPECT_EQ(ring->size(), 1u);
  EXPECT_EQ(prof.events_emitted(), 1);
  EXPECT_EQ(prof.events_filtered(), 1);
}

TEST(ProfilerTest, DisabledEmitsNothing) {
  VirtualClock clock;
  Profiler prof(&clock);
  auto ring = std::make_shared<RingBufferSink>(16);
  prof.AddSink(ring);
  prof.SetEnabled(false);
  prof.EmitStart(1, 0, 0, "a");
  EXPECT_EQ(ring->size(), 0u);
  prof.SetEnabled(true);
  prof.EmitStart(1, 0, 0, "a");
  EXPECT_EQ(ring->size(), 1u);
}

TEST(ProfilerTest, MultipleSinksFanOut) {
  VirtualClock clock;
  Profiler prof(&clock);
  auto a = std::make_shared<RingBufferSink>(4);
  auto b = std::make_shared<RingBufferSink>(4);
  prof.AddSink(a);
  prof.AddSink(b);
  prof.EmitDone(0, 0, 1, 0, "x");
  EXPECT_EQ(a->size(), 1u);
  EXPECT_EQ(b->size(), 1u);
}

TEST(ProfilerTest, ConcurrentEmitUniqueEventIds) {
  VirtualClock clock;
  Profiler prof(&clock);
  auto ring = std::make_shared<RingBufferSink>(100000);
  prof.AddSink(ring);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&prof, t] {
      for (int i = 0; i < 500; ++i) prof.EmitStart(i, t, 0, "s");
    });
  }
  for (auto& t : threads) t.join();
  auto snap = ring->Snapshot();
  ASSERT_EQ(snap.size(), 2000u);
  std::vector<int64_t> ids;
  for (const auto& e : snap) ids.push_back(e.event);
  std::sort(ids.begin(), ids.end());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], static_cast<int64_t>(i));
  }
}

}  // namespace
}  // namespace stetho::profiler
