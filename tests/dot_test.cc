#include <gtest/gtest.h>

#include "dot/graph.h"
#include "dot/parser.h"
#include "dot/writer.h"
#include "mal/program.h"
#include "sql/compiler.h"
#include "storage/table.h"
#include "tpch/dbgen.h"

namespace stetho::dot {
namespace {

using mal::Argument;
using mal::MalType;
using mal::Program;
using storage::DataType;
using storage::Value;

Program TinyPlan() {
  Program p;
  int a = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("sql", "mvc", {a}, {});
  int b = p.AddVariable(MalType::Bat(DataType::kOid));
  p.Add("sql", "tid", {b},
        {Argument::Var(a), Argument::Const(Value::String("sys")),
         Argument::Const(Value::String("t"))});
  p.Add("io", "print", {}, {Argument::Var(b)});
  return p;
}

// --- Graph ---

TEST(GraphTest, AddNodeIdempotent) {
  Graph g;
  g.AddNode("a").attrs["label"] = "first";
  g.AddNode("a");
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.node(0).label(), "first");
}

TEST(GraphTest, EdgesCreateNodes) {
  Graph g;
  g.AddEdge("a", "b");
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_GE(g.FindNode("a"), 0);
  EXPECT_EQ(g.FindNode("zzz"), -1);
}

TEST(GraphTest, RootsAndAdjacency) {
  Graph g;
  g.AddEdge("a", "c");
  g.AddEdge("b", "c");
  g.AddEdge("c", "d");
  auto roots = g.Roots();
  ASSERT_EQ(roots.size(), 2u);  // a, b
  auto out = g.OutAdjacency();
  EXPECT_EQ(out[static_cast<size_t>(g.FindNode("c"))].size(), 1u);
  auto in = g.InAdjacency();
  EXPECT_EQ(in[static_cast<size_t>(g.FindNode("c"))].size(), 2u);
}

TEST(GraphTest, TopologicalOrder) {
  Graph g;
  g.AddEdge("a", "b");
  g.AddEdge("b", "c");
  auto order = g.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order.value(), (std::vector<int>{0, 1, 2}));
}

TEST(GraphTest, CycleDetected) {
  Graph g;
  g.AddEdge("a", "b");
  g.AddEdge("b", "a");
  EXPECT_FALSE(g.TopologicalOrder().ok());
}

// --- writer ---

TEST(DotWriterTest, EmitsNodePerInstructionAndPcNames) {
  Program p = TinyPlan();
  std::string text = ProgramToDot(p);
  EXPECT_NE(text.find("digraph"), std::string::npos);
  EXPECT_NE(text.find("n0 [label="), std::string::npos);
  EXPECT_NE(text.find("n1 [label="), std::string::npos);
  EXPECT_NE(text.find("n2 [label="), std::string::npos);
  EXPECT_NE(text.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(text.find("n1 -> n2"), std::string::npos);
  EXPECT_NE(text.find("sql.tid"), std::string::npos);
}

TEST(DotWriterTest, LabelTruncation) {
  Program p = TinyPlan();
  DotWriterOptions options;
  options.max_label_chars = 10;
  std::string text = ProgramToDot(p, options);
  EXPECT_NE(text.find("..."), std::string::npos);
}

TEST(DotWriterTest, ProgramToGraphMatchesDependencies) {
  Program p = TinyPlan();
  Graph g = ProgramToGraph(p);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.node(0).label(), p.InstructionToString(p.instruction(0)));
}

// --- parser ---

TEST(DotParserTest, ParsesWriterOutput) {
  Program p = TinyPlan();
  auto parsed = ParseDot(ProgramToDot(p));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Graph& g = parsed.value();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.directed());
  int n1 = g.FindNode("n1");
  ASSERT_GE(n1, 0);
  EXPECT_NE(g.node(static_cast<size_t>(n1)).label().find("sql.tid"),
            std::string::npos);
}

TEST(DotParserTest, GraphRoundTrip) {
  Graph g("roundtrip");
  g.AddNode("a").attrs["label"] = "alpha \"quoted\"";
  g.AddNode("b").attrs["fillcolor"] = "red";
  g.AddEdge("a", "b").attrs["style"] = "dashed";
  auto parsed = ParseDot(GraphToDot(g));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Graph& back = parsed.value();
  EXPECT_EQ(back.name(), "roundtrip");
  ASSERT_EQ(back.num_nodes(), 2u);
  EXPECT_EQ(back.node(0).label(), "alpha \"quoted\"");
  EXPECT_EQ(back.node(1).attrs.at("fillcolor"), "red");
  ASSERT_EQ(back.num_edges(), 1u);
  EXPECT_EQ(back.edges()[0].attrs.at("style"), "dashed");
}

TEST(DotParserTest, UndirectedGraph) {
  auto parsed = ParseDot("graph g { a -- b; }");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().directed());
  EXPECT_EQ(parsed.value().num_edges(), 1u);
}

TEST(DotParserTest, SkipsCommentsAndDefaults) {
  auto parsed = ParseDot(
      "// header comment\n"
      "digraph g {\n"
      "  /* block */ node [shape=box];\n"
      "  rankdir = TB;\n"
      "  # trailing comment\n"
      "  a [label=\"x\"];\n"
      "  a -> b;\n"
      "}\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().num_nodes(), 2u);
  EXPECT_EQ(parsed.value().num_edges(), 1u);
}

TEST(DotParserTest, Rejections) {
  EXPECT_FALSE(ParseDot("").ok());
  EXPECT_FALSE(ParseDot("notagraph g { }").ok());
  EXPECT_FALSE(ParseDot("digraph g { a -> ; }").ok());
  EXPECT_FALSE(ParseDot("digraph g { a [label=\"unterminated ]; }").ok());
  EXPECT_FALSE(ParseDot("digraph g { a -> b; ").ok());
}

// --- end-to-end with the compiler ---

TEST(DotPipelineTest, CompiledQueryRoundTripsThroughDot) {
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  auto cat = tpch::GenerateTpch(config);
  ASSERT_TRUE(cat.ok());
  auto program = sql::Compiler::CompileSql(
      &cat.value(), "select l_tax from lineitem where l_partkey = 1");
  ASSERT_TRUE(program.ok());

  std::string dot_text = ProgramToDot(program.value());
  auto graph = ParseDot(dot_text);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph.value().num_nodes(), program.value().size());
  // pc <-> node-name mapping: every instruction has its n<pc> node.
  for (size_t pc = 0; pc < program.value().size(); ++pc) {
    EXPECT_GE(graph.value().FindNode("n" + std::to_string(pc)), 0);
  }
  // The DAG is acyclic and roots exist.
  EXPECT_TRUE(graph.value().TopologicalOrder().ok());
  EXPECT_FALSE(graph.value().Roots().empty());
}

}  // namespace
}  // namespace stetho::dot
