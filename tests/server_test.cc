#include <gtest/gtest.h>

#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>

#include "analysis/perfdiff.h"
#include "net/channel.h"
#include "obs/metrics.h"
#include "obs/profile_store.h"
#include "profiler/sink.h"
#include "server/mserver.h"
#include "server/result_printer.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace stetho::server {
namespace {

/// Current value of the process-global slow-query counter (0 before the
/// first slow query registers it) — delta-assert against this, the
/// registry is shared across cases.
int64_t SlowQueriesValue() {
  auto value = obs::Registry::Default()->CounterValue("stetho_slow_queries_total");
  return value.ok() ? value.value() : 0;
}

storage::Catalog TinyCatalog() {
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  auto cat = tpch::GenerateTpch(config);
  EXPECT_TRUE(cat.ok());
  return std::move(cat.value());
}

TEST(MserverTest, ExecutePaperQuery) {
  Mserver server(TinyCatalog(), MserverOptions{});
  auto r = server.ExecuteSql("select l_tax from lineitem where l_partkey = 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().name, "s0");
  EXPECT_FALSE(r.value().dot.empty());
  EXPECT_GT(r.value().plan.size(), 0u);
  ASSERT_EQ(r.value().result.columns.size(), 1u);
}

TEST(MserverTest, QueryNamesIncrement) {
  Mserver server(TinyCatalog(), MserverOptions{});
  auto a = server.ExecuteSql("select l_tax from lineitem where l_partkey = 1");
  auto b = server.ExecuteSql("select l_tax from lineitem where l_partkey = 2");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().name, "s0");
  EXPECT_EQ(b.value().name, "s1");
  EXPECT_NE(a.value().plan.function_name(), b.value().plan.function_name());
}

TEST(MserverTest, ExplainDoesNotExecute) {
  Mserver server(TinyCatalog(), MserverOptions{});
  auto plan = server.Explain("select l_tax from lineitem where l_partkey = 1");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_GT(plan.value().size(), 0u);
  EXPECT_EQ(plan.value().instruction(0).FullName(), "language.dataflow");
}

TEST(MserverTest, MitosisGrowsPlan) {
  MserverOptions plain_opts;
  Mserver plain(TinyCatalog(), plain_opts);
  MserverOptions split_opts;
  split_opts.mitosis_pieces = 8;
  Mserver split(TinyCatalog(), split_opts);
  const char* sql = "select l_tax from lineitem where l_partkey = 1";
  auto a = plain.Explain(sql);
  auto b = split.Explain(sql);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b.value().size(), a.value().size());
}

TEST(MserverTest, ProfilerEventsFlowDuringQuery) {
  Mserver server(TinyCatalog(), MserverOptions{});
  auto ring = std::make_shared<profiler::RingBufferSink>(10000);
  server.profiler()->AddSink(ring);
  auto r = server.ExecuteSql("select l_tax from lineitem where l_partkey = 1");
  ASSERT_TRUE(r.ok());
  // Two events per instruction.
  EXPECT_EQ(ring->total_consumed(),
            static_cast<int64_t>(2 * r.value().plan.size()));
}

TEST(MserverTest, FilterSetRemotely) {
  Mserver server(TinyCatalog(), MserverOptions{});
  auto ring = std::make_shared<profiler::RingBufferSink>(10000);
  server.profiler()->AddSink(ring);
  ASSERT_TRUE(server.SetProfilerFilter("start=0;done=1;").ok());
  auto r = server.ExecuteSql("select l_tax from lineitem where l_partkey = 1");
  ASSERT_TRUE(r.ok());
  auto events = ring->Snapshot();
  ASSERT_FALSE(events.empty());
  for (const auto& e : events) {
    EXPECT_EQ(e.state, profiler::EventState::kDone);
  }
  EXPECT_FALSE(server.SetProfilerFilter("garbage").ok());
}

TEST(MserverTest, StreamCarriesDotThenTraceThenEof) {
  Mserver server(TinyCatalog(), MserverOptions{});
  auto [sender, receiver] = net::Channel::CreatePair(1 << 18);
  server.AttachStream(std::shared_ptr<net::DatagramSender>(std::move(sender)));
  auto r = server.ExecuteSql("select l_tax from lineitem where l_partkey = 1");
  ASSERT_TRUE(r.ok());

  std::vector<std::string> lines;
  std::string payload;
  while (true) {
    auto got = receiver->Receive(&payload, 10);
    if (!got.ok() || !got.value()) break;
    lines.push_back(payload);
  }
  ASSERT_GT(lines.size(), 4u);
  EXPECT_EQ(lines.front().rfind("%DOT-BEGIN", 0), 0u);
  EXPECT_EQ(lines.back().rfind("%EOF", 0), 0u);
  // Dot content precedes all trace lines.
  size_t dot_end = 0;
  size_t first_trace = lines.size();
  for (size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].rfind("%DOT-END", 0) == 0) dot_end = i;
    if (lines[i].front() == '[' && i < first_trace) first_trace = i;
  }
  EXPECT_LT(dot_end, first_trace);
  EXPECT_LT(first_trace, lines.size());
}

TEST(MserverTest, ForceSequentialUsesOneThread) {
  MserverOptions options;
  options.force_sequential = true;
  Mserver server(TinyCatalog(), options);
  auto r = server.ExecuteSql("select l_tax from lineitem where l_partkey = 1");
  ASSERT_TRUE(r.ok());
  for (const auto& stat : r.value().result.stats) {
    EXPECT_EQ(stat.thread, 0);
  }
}

// --- budgeted admission (memory gate between optimize and execute) ---

obs::Counter* AdmissionCounterByName(const char* outcome) {
  return obs::Registry::Default()->GetOrCreateCounter(
      std::string("stetho_admission_") + outcome + "_total", "");
}

TEST(MserverAdmissionTest, TinyBudgetRejectsWithPredictedPeak) {
  MserverOptions options;
  options.mem_budget_bytes = 1024;  // far below any real plan's peak
  Mserver server(TinyCatalog(), options);
  obs::Counter* rejected = AdmissionCounterByName("rejected");
  int64_t rejected_before = rejected->value();
  auto r = server.ExecuteSql(tpch::GetQuery("q1").value().sql);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("predicted peak"), std::string::npos);
  EXPECT_NE(r.status().message().find("budget"), std::string::npos);
  EXPECT_EQ(rejected->value(), rejected_before + 1);
}

TEST(MserverAdmissionTest, GenerousBudgetAdmitsAndExportsPrediction) {
  MserverOptions options;
  options.mem_budget_bytes = int64_t{1} << 40;
  Mserver server(TinyCatalog(), options);
  obs::Counter* admitted = AdmissionCounterByName("admitted");
  obs::Gauge* predicted = obs::Registry::Default()->GetOrCreateGauge(
      "stetho_mem_predicted_peak_bytes", "");
  int64_t admitted_before = admitted->value();
  auto r = server.ExecuteSql(tpch::GetQuery("q1").value().sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(admitted->value(), admitted_before + 1);
  // The exported prediction is a genuine upper bound for this very run.
  EXPECT_GE(predicted->value(), r.value().result.peak_rss_bytes);
}

TEST(MserverAdmissionTest, QueuesUntilEngineMemoryDrains) {
  MserverOptions options;
  options.mem_budget_bytes = int64_t{1} << 40;
  options.admission_wait_ms = 2000;
  Mserver server(TinyCatalog(), options);
  obs::Counter* queued = AdmissionCounterByName("queued");
  obs::Counter* admitted = AdmissionCounterByName("admitted");
  int64_t queued_before = queued->value();
  int64_t admitted_before = admitted->value();
  // Simulate another query holding the whole budget, releasing it shortly:
  // the gauge is the interpreter's live-byte mirror, so a raw Add looks
  // exactly like in-flight registers (restored below).
  obs::Gauge* live = obs::Registry::Default()->GetOrCreateGauge(
      "stetho_engine_live_bytes",
      "Live column bytes currently held by executing queries "
      "(Column::MemoryBytes accounting)");
  live->Add(options.mem_budget_bytes);
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    live->Add(-options.mem_budget_bytes);
  });
  auto r = server.ExecuteSql(tpch::GetQuery("q6").value().sql);
  releaser.join();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(queued->value(), queued_before + 1);
  EXPECT_EQ(admitted->value(), admitted_before + 1);
}

TEST(MserverAdmissionTest, QueueTimeoutRejects) {
  MserverOptions options;
  options.mem_budget_bytes = int64_t{1} << 40;
  options.admission_wait_ms = 20;
  Mserver server(TinyCatalog(), options);
  obs::Counter* rejected = AdmissionCounterByName("rejected");
  int64_t rejected_before = rejected->value();
  obs::Gauge* live = obs::Registry::Default()->GetOrCreateGauge(
      "stetho_engine_live_bytes",
      "Live column bytes currently held by executing queries "
      "(Column::MemoryBytes accounting)");
  live->Add(options.mem_budget_bytes);  // headroom never appears
  auto r = server.ExecuteSql(tpch::GetQuery("q6").value().sql);
  live->Add(-options.mem_budget_bytes);  // restore the global gauge
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("queueing"), std::string::npos);
  EXPECT_EQ(rejected->value(), rejected_before + 1);
}

TEST(MserverProfileTest, ExecuteFoldsIntoInjectedStore) {
  obs::ProfileStore store;
  MserverOptions options;
  options.dop = 2;
  options.profile_store = &store;
  Mserver server(TinyCatalog(), options);

  const int64_t slow_before = SlowQueriesValue();
  auto r = server.ExecuteSql("select l_tax from lineitem where l_partkey = 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  const uint64_t shape = analysis::PlanShapeHash(r.value().plan);
  auto profile = store.Lookup(shape);
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->queries, 1);
  EXPECT_EQ(profile->plan_size, r.value().plan.size());
  EXPECT_EQ(profile->pcs.size(), r.value().plan.size());
  EXPECT_GE(profile->total_usec.max(), 0);
  // First run of the shape: no pre-fold baseline, so nothing is "slow".
  EXPECT_EQ(SlowQueriesValue(), slow_before);

  // A second run of the same SQL folds into the same shape despite the
  // fresh function name.
  ASSERT_TRUE(
      server.ExecuteSql("select l_tax from lineitem where l_partkey = 1")
          .ok());
  profile = store.Lookup(shape);
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->queries, 2);
}

TEST(MserverProfileTest, SlowQueryLogsAndEmitsPostmortem) {
  const std::string dir = testing::TempDir() + "mserver_flight";
  mkdir(dir.c_str(), 0755);

  obs::ProfileStore store;
  MserverOptions options;
  options.dop = 2;
  options.profile_store = &store;
  options.slow_query_factor = 3.0;
  options.flight_dir = dir;
  Mserver server(TinyCatalog(), options);

  const std::string sql = "select l_tax from lineitem where l_partkey = 1";
  // Seed a pathologically fast baseline for this shape (median 1us), so
  // the real run blows past the 3x gate deterministically.
  auto plan = server.Explain(sql);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  obs::QueryObservation seed;
  seed.shape_hash = analysis::PlanShapeHash(plan.value());
  seed.plan_size = plan.value().size();
  seed.total_usec = 1;
  ASSERT_TRUE(store.Fold(seed).ok());

  const int64_t slow_before = SlowQueriesValue();
  auto r = server.ExecuteSql(sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(SlowQueriesValue(), slow_before + 1);

  const std::string path = dir + "/postmortem_" + r.value().name + ".txt";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing " << path;
  std::string bundle((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  EXPECT_NE(bundle.find("slow query postmortem"), std::string::npos);
  EXPECT_NE(bundle.find(sql), std::string::npos);
  EXPECT_NE(bundle.find("== plan =="), std::string::npos);
  EXPECT_NE(bundle.find("== recent trace events"), std::string::npos);
  EXPECT_NE(bundle.find("== flight recorder =="), std::string::npos);
  // The attached ring captured the query's profiler events.
  EXPECT_NE(bundle.find("\"done\""), std::string::npos) << bundle;
  std::remove(path.c_str());
}

TEST(MserverProfileTest, FastQueryWritesNoPostmortem) {
  const std::string dir = testing::TempDir() + "mserver_flight_quiet";
  mkdir(dir.c_str(), 0755);

  obs::ProfileStore store;
  MserverOptions options;
  options.dop = 2;
  options.profile_store = &store;
  options.flight_dir = dir;
  Mserver server(TinyCatalog(), options);

  const std::string sql = "select l_tax from lineitem where l_partkey = 1";
  const int64_t slow_before = SlowQueriesValue();
  // Two comparable runs: the second judges against the first's baseline
  // and should sit well under 3x.
  ASSERT_TRUE(server.ExecuteSql(sql).ok());
  auto r = server.ExecuteSql(sql);
  ASSERT_TRUE(r.ok());
  if (SlowQueriesValue() == slow_before) {
    std::ifstream in(dir + "/postmortem_" + r.value().name + ".txt");
    EXPECT_FALSE(in.good());
  }
}

TEST(MserverTest, CompileErrorsSurface) {
  Mserver server(TinyCatalog(), MserverOptions{});
  EXPECT_FALSE(server.ExecuteSql("select nonsense from nothing").ok());
  EXPECT_FALSE(server.Explain("not even sql").ok());
}

TEST(ResultPrinterTest, FormatsColumnsAndRows) {
  Mserver server(TinyCatalog(), MserverOptions{});
  auto r = server.ExecuteSql(
      "select l_returnflag, count(*) as n from lineitem group by "
      "l_returnflag order by l_returnflag");
  ASSERT_TRUE(r.ok());
  std::string table = FormatResultTable(r.value().result);
  EXPECT_NE(table.find("| l_returnflag |"), std::string::npos);
  EXPECT_NE(table.find(" n |"), std::string::npos);  // right-aligned header
  EXPECT_NE(table.find(" A "), std::string::npos);
  // Bordered: starts and ends with a rule.
  EXPECT_EQ(table.rfind("+--", 0), 0u);
  EXPECT_NE(table.find("rows)"), std::string::npos);
}

TEST(ResultPrinterTest, ScalarResultSingleRow) {
  Mserver server(TinyCatalog(), MserverOptions{});
  auto r = server.ExecuteSql("select count(*) from lineitem");
  ASSERT_TRUE(r.ok());
  std::string table = FormatResultTable(r.value().result);
  EXPECT_NE(table.find("(1 row)"), std::string::npos);
}

TEST(ResultPrinterTest, ElidesLongResults) {
  Mserver server(TinyCatalog(), MserverOptions{});
  auto r = server.ExecuteSql("select l_orderkey from lineitem");
  ASSERT_TRUE(r.ok());
  PrintOptions options;
  options.max_rows = 5;
  std::string table = FormatResultTable(r.value().result, options);
  EXPECT_NE(table.find("(5 of "), std::string::npos);
}

TEST(ResultPrinterTest, EmptyResult) {
  engine::QueryResult empty;
  EXPECT_EQ(FormatResultTable(empty), "(no result columns)\n");
}

TEST(MserverTest, EveryTpchQueryExecutes) {
  MserverOptions options;
  options.mitosis_pieces = 4;
  options.dop = 4;
  Mserver server(TinyCatalog(), options);
  for (const auto& q : tpch::TpchQueries()) {
    auto r = server.ExecuteSql(q.sql);
    EXPECT_TRUE(r.ok()) << q.id << ": " << r.status().ToString();
  }
}

}  // namespace
}  // namespace stetho::server
