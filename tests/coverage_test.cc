// Edge-case coverage across modules: empty inputs, error paths, and
// behaviors not exercised by the mainline suites.

#include <gtest/gtest.h>

#include "dot/graph.h"
#include "engine/interpreter.h"
#include "mal/program.h"
#include "optimizer/pass.h"
#include "server/result_printer.h"
#include "sql/compiler.h"
#include "storage/table.h"
#include "viz/animation.h"

namespace stetho {
namespace {

using engine::ExecOptions;
using engine::Interpreter;
using engine::QueryResult;
using mal::Argument;
using mal::MalType;
using mal::Program;
using storage::Catalog;
using storage::Column;
using storage::ColumnPtr;
using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::TablePtr;
using storage::Value;

Result<QueryResult> RunProgram(Catalog* cat, const Program& p) {
  Interpreter interp(cat);
  ExecOptions opts;
  opts.use_dataflow = false;
  return interp.Execute(p, opts);
}

// --- engine edges ---

TEST(EngineEdgeTest, BatAppendConcatenates) {
  Catalog cat;
  Program p;
  int a = p.AddVariable(MalType::Bat(DataType::kOid));
  p.Add("bat", "densebat", {a}, {Argument::Const(Value::Int(3))});
  int b = p.AddVariable(MalType::Bat(DataType::kOid));
  p.Add("bat", "densebat", {b}, {Argument::Const(Value::Int(2))});
  int both = p.AddVariable(MalType::Bat(DataType::kOid));
  p.Add("bat", "append", {both}, {Argument::Var(a), Argument::Var(b)});
  p.Add("io", "print", {}, {Argument::Var(both)});
  auto r = RunProgram(&cat, p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ColumnPtr col = r.value().columns[0].column;
  ASSERT_EQ(col->size(), 5u);
  EXPECT_EQ(col->OidAt(3), 0u);  // second range restarts
}

TEST(EngineEdgeTest, BatAppendTypeMismatch) {
  Catalog cat;
  TablePtr t = Table::Make("t", Schema({{"i", DataType::kInt64},
                                        {"s", DataType::kString}}));
  ASSERT_TRUE(t->AppendRow({Value::Int(1), Value::String("x")}).ok());
  ASSERT_TRUE(cat.AddTable(t).ok());
  Program p;
  int mvc = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("sql", "mvc", {mvc}, {});
  auto bind = [&](const char* col, DataType dt) {
    int v = p.AddVariable(MalType::Bat(dt));
    p.Add("sql", "bind", {v},
          {Argument::Var(mvc), Argument::Const(Value::String("sys")),
           Argument::Const(Value::String("t")),
           Argument::Const(Value::String(col)), Argument::Const(Value::Int(0))});
    return v;
  };
  int i = bind("i", DataType::kInt64);
  int s = bind("s", DataType::kString);
  int out = p.AddVariable(MalType::Bat(DataType::kInt64));
  p.Add("bat", "append", {out}, {Argument::Var(i), Argument::Var(s)});
  auto r = RunProgram(&cat, p);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST(EngineEdgeTest, DenseBatNegative) {
  Catalog cat;
  Program p;
  int a = p.AddVariable(MalType::Bat(DataType::kOid));
  p.Add("bat", "densebat", {a}, {Argument::Const(Value::Int(-1))});
  EXPECT_FALSE(RunProgram(&cat, p).ok());
}

TEST(EngineEdgeTest, SliceBadRange) {
  Catalog cat;
  Program p;
  int a = p.AddVariable(MalType::Bat(DataType::kOid));
  p.Add("bat", "densebat", {a}, {Argument::Const(Value::Int(5))});
  int s = p.AddVariable(MalType::Bat(DataType::kOid));
  p.Add("algebra", "slice", {s},
        {Argument::Var(a), Argument::Const(Value::Int(3)),
         Argument::Const(Value::Int(1))});
  EXPECT_FALSE(RunProgram(&cat, p).ok());
}

TEST(EngineEdgeTest, AggregatesOverEmptyColumnAreNull) {
  Catalog cat;
  Program p;
  int a = p.AddVariable(MalType::Bat(DataType::kOid));
  p.Add("bat", "densebat", {a}, {Argument::Const(Value::Int(0))});
  int sum = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("aggr", "sum", {sum}, {Argument::Var(a)});
  int count = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("aggr", "count", {count}, {Argument::Var(a)});
  p.Add("io", "print", {}, {Argument::Var(sum)});
  p.Add("io", "print", {}, {Argument::Var(count)});
  auto r = RunProgram(&cat, p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().columns[0].scalar.is_null());  // SQL: SUM of none
  EXPECT_EQ(r.value().columns[1].scalar.AsInt(), 0);   // COUNT of none
}

TEST(EngineEdgeTest, CalcStringComparisons) {
  Catalog cat;
  Program p;
  int lt = p.AddVariable(MalType::Scalar(DataType::kBool));
  p.Add("calc", "lt", {lt},
        {Argument::Const(Value::String("apple")),
         Argument::Const(Value::String("banana"))});
  int eq = p.AddVariable(MalType::Scalar(DataType::kBool));
  p.Add("calc", "eq", {eq},
        {Argument::Const(Value::String("x")),
         Argument::Const(Value::String("x"))});
  p.Add("io", "print", {}, {Argument::Var(lt)});
  p.Add("io", "print", {}, {Argument::Var(eq)});
  auto r = RunProgram(&cat, p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().columns[0].scalar.AsBool());
  EXPECT_TRUE(r.value().columns[1].scalar.AsBool());
}

TEST(EngineEdgeTest, MatPackTypeMismatch) {
  Catalog cat;
  TablePtr t = Table::Make("t", Schema({{"i", DataType::kInt64},
                                        {"d", DataType::kDouble}}));
  ASSERT_TRUE(t->AppendRow({Value::Int(1), Value::Double(1.5)}).ok());
  ASSERT_TRUE(cat.AddTable(t).ok());
  Program p;
  int mvc = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("sql", "mvc", {mvc}, {});
  int i = p.AddVariable(MalType::Bat(DataType::kInt64));
  p.Add("sql", "bind", {i},
        {Argument::Var(mvc), Argument::Const(Value::String("sys")),
         Argument::Const(Value::String("t")), Argument::Const(Value::String("i")),
         Argument::Const(Value::Int(0))});
  int d = p.AddVariable(MalType::Bat(DataType::kDouble));
  p.Add("sql", "bind", {d},
        {Argument::Var(mvc), Argument::Const(Value::String("sys")),
         Argument::Const(Value::String("t")), Argument::Const(Value::String("d")),
         Argument::Const(Value::Int(0))});
  int packed = p.AddVariable(MalType::Bat(DataType::kInt64));
  p.Add("mat", "pack", {packed}, {Argument::Var(i), Argument::Var(d)});
  auto r = RunProgram(&cat, p);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

// --- dot / graph edges ---

TEST(GraphEdgeTest, EmptyGraphTopologicalOrder) {
  dot::Graph g;
  auto order = g.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  EXPECT_TRUE(order.value().empty());
  EXPECT_TRUE(g.Roots().empty());
}

TEST(GraphEdgeTest, SelfLoopIsCycle) {
  dot::Graph g;
  g.AddEdge("a", "a");
  EXPECT_FALSE(g.TopologicalOrder().ok());
}

// --- optimizer edges ---

TEST(OptimizerEdgeTest, MitosisHandlesSelectOverPartitionedCandidates) {
  // A plan where a select consumes the result of another (already
  // partitioned) select: the pass must chain slices rather than repartition.
  Catalog cat;
  TablePtr t = Table::Make("t", Schema({{"v", DataType::kInt64}}));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t->AppendRow({Value::Int(i % 10)}).ok());
  }
  ASSERT_TRUE(cat.AddTable(t).ok());
  auto program = sql::Compiler::CompileSql(
      &cat, "select v from t where v >= 2 and v <= 7 and v <> 5");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Program plain = program.value();
  Program split = program.value();
  auto changed = optimizer::MakeMitosisPass(4)->Run(&split);
  ASSERT_TRUE(changed.ok());
  EXPECT_TRUE(changed.value());
  // Exactly one partition fan-out (4 bat.partition calls), selects chained.
  size_t partitions = 0;
  for (const auto& ins : split.instructions()) {
    if (ins.FullName() == "bat.partition") ++partitions;
  }
  EXPECT_EQ(partitions, 4u);

  auto a = RunProgram(&cat, plain);
  auto b = RunProgram(&cat, split);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a.value().columns[0].column->size(),
            b.value().columns[0].column->size());
  for (size_t i = 0; i < a.value().columns[0].column->size(); ++i) {
    EXPECT_EQ(a.value().columns[0].column->IntAt(i),
              b.value().columns[0].column->IntAt(i));
  }
}

TEST(OptimizerEdgeTest, PipelineOnEmptyProgram) {
  Program p;
  optimizer::Pipeline pipeline = optimizer::Pipeline::Default(4);
  auto fired = pipeline.Run(&p);
  ASSERT_TRUE(fired.ok());
  // Only the dataflow marker fires.
  EXPECT_EQ(p.size(), 1u);
}

// --- result printer edges ---

TEST(ResultPrinterEdgeTest, NullsRenderAsNULL) {
  engine::QueryResult result;
  engine::ResultColumn col;
  col.name = "v";
  col.column = Column::Make(DataType::kInt64);
  col.column->AppendInt(1);
  col.column->AppendNull();
  result.columns.push_back(col);
  std::string table = server::FormatResultTable(result);
  EXPECT_NE(table.find("NULL"), std::string::npos);
}

TEST(ResultPrinterEdgeTest, RaggedColumnsPadded) {
  engine::QueryResult result;
  engine::ResultColumn a;
  a.name = "a";
  a.column = Column::Make(DataType::kInt64);
  a.column->AppendInt(1);
  a.column->AppendInt(2);
  engine::ResultColumn b;
  b.name = "b";
  b.column = Column::Make(DataType::kInt64);
  b.column->AppendInt(9);
  result.columns.push_back(a);
  result.columns.push_back(b);
  std::string table = server::FormatResultTable(result);
  EXPECT_NE(table.find("(2 rows)"), std::string::npos);
}

// --- animator edges ---

TEST(AnimatorEdgeTest, CompetingAnimationsLastWins) {
  VirtualClock clock;
  viz::VirtualSpace space;
  viz::Glyph g;
  g.kind = viz::GlyphKind::kShape;
  g.fill = viz::Color::White();
  int id = space.AddGlyph(g);
  viz::Animator animator(&clock);
  animator.AnimateGlyphFill(&space, id, viz::Color::Red(), 10000);
  animator.AnimateGlyphFill(&space, id, viz::Color::Green(), 10000);
  clock.Advance(20000);
  animator.Tick();
  // Both completed; the later-scheduled animation applied last.
  EXPECT_EQ(space.GetGlyph(id).value().fill, viz::Color::Green());
}

TEST(AnimatorEdgeTest, ZeroDurationSnapsImmediately) {
  VirtualClock clock;
  viz::Camera cam(100, 100);
  viz::Animator animator(&clock);
  animator.AnimateCamera(&cam, 10, 20, 30, 0);
  animator.Tick();
  EXPECT_DOUBLE_EQ(cam.x(), 10);
  EXPECT_DOUBLE_EQ(cam.altitude(), 30);
  EXPECT_EQ(animator.active(), 0u);
}

}  // namespace
}  // namespace stetho
