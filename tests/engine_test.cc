#include <gtest/gtest.h>

#include <set>

#include "common/clock.h"
#include "engine/interpreter.h"
#include "engine/kernel.h"
#include "mal/program.h"
#include "obs/metrics.h"
#include "profiler/profiler.h"
#include "profiler/sink.h"
#include "storage/table.h"

namespace stetho::engine {
namespace {

using mal::Argument;
using mal::MalType;
using mal::Program;
using storage::Catalog;
using storage::ColumnPtr;
using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::TablePtr;
using storage::Value;

/// Six-row lineitem-like fixture.
Catalog MakeCatalog() {
  Catalog cat;
  TablePtr t = Table::Make(
      "lineitem", Schema({{"l_partkey", DataType::kInt64},
                          {"l_tax", DataType::kDouble},
                          {"l_returnflag", DataType::kString},
                          {"l_quantity", DataType::kInt64}}));
  struct Row {
    int64_t partkey;
    double tax;
    const char* flag;
    int64_t qty;
  };
  const Row rows[] = {
      {1, 0.02, "N", 10}, {2, 0.04, "R", 20}, {1, 0.06, "A", 30},
      {3, 0.01, "N", 40}, {2, 0.03, "R", 50}, {1, 0.05, "N", 60},
  };
  for (const Row& r : rows) {
    EXPECT_TRUE(t->AppendRow({Value::Int(r.partkey), Value::Double(r.tax),
                              Value::String(r.flag), Value::Int(r.qty)})
                    .ok());
  }
  EXPECT_TRUE(cat.AddTable(t).ok());
  return cat;
}

/// Builder helpers shortening program construction.
struct Plan {
  Program p{"user.main"};

  int Bind(const char* column, DataType type, int mvc) {
    int v = p.AddVariable(MalType::Bat(type));
    p.Add("sql", "bind", {v},
          {Argument::Var(mvc), Argument::Const(Value::String("sys")),
           Argument::Const(Value::String("lineitem")),
           Argument::Const(Value::String(column)), Argument::Const(Value::Int(0))});
    return v;
  }
  int Mvc() {
    int v = p.AddVariable(MalType::Scalar(DataType::kInt64));
    p.Add("sql", "mvc", {v}, {});
    return v;
  }
  int Tid(int mvc) {
    int v = p.AddVariable(MalType::Bat(DataType::kOid));
    p.Add("sql", "tid", {v},
          {Argument::Var(mvc), Argument::Const(Value::String("sys")),
           Argument::Const(Value::String("lineitem"))});
    return v;
  }
  void Print(int var) { p.Add("io", "print", {}, {Argument::Var(var)}); }
};

Result<QueryResult> RunPlan(const Program& p, Catalog* cat,
                        ExecOptions opts = {}) {
  Interpreter interp(cat);
  return interp.Execute(p, opts);
}

/// The paper's Fig. 1 query: select l_tax from lineitem where l_partkey=1.
Program PaperQuery() {
  Plan b;
  int mvc = b.Mvc();
  int tid = b.Tid(mvc);
  int partkey = b.Bind("l_partkey", DataType::kInt64, mvc);
  int cand = b.p.AddVariable(MalType::Bat(DataType::kOid));
  b.p.Add("algebra", "thetaselect", {cand},
          {Argument::Var(partkey), Argument::Var(tid),
           Argument::Const(Value::Int(1)), Argument::Const(Value::String("=="))});
  int tax = b.Bind("l_tax", DataType::kDouble, mvc);
  int proj = b.p.AddVariable(MalType::Bat(DataType::kDouble));
  b.p.Add("algebra", "projection", {proj},
          {Argument::Var(cand), Argument::Var(tax)});
  b.Print(proj);
  return std::move(b.p);
}

TEST(InterpreterTest, PaperQuerySequential) {
  Catalog cat = MakeCatalog();
  ExecOptions opts;
  opts.use_dataflow = false;
  auto r = RunPlan(PaperQuery(), &cat, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().columns.size(), 1u);
  ColumnPtr col = r.value().columns[0].column;
  ASSERT_EQ(col->size(), 3u);  // partkey==1 rows: 0, 2, 5
  EXPECT_DOUBLE_EQ(col->DoubleAt(0), 0.02);
  EXPECT_DOUBLE_EQ(col->DoubleAt(1), 0.06);
  EXPECT_DOUBLE_EQ(col->DoubleAt(2), 0.05);
}

TEST(InterpreterTest, PaperQueryDataflowMatchesSequential) {
  Catalog cat = MakeCatalog();
  ExecOptions seq;
  seq.use_dataflow = false;
  ExecOptions par;
  par.use_dataflow = true;
  par.num_threads = 4;
  auto a = RunPlan(PaperQuery(), &cat, seq);
  auto b = RunPlan(PaperQuery(), &cat, par);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().columns.size(), b.value().columns.size());
  ColumnPtr ca = a.value().columns[0].column;
  ColumnPtr cb = b.value().columns[0].column;
  ASSERT_EQ(ca->size(), cb->size());
  for (size_t i = 0; i < ca->size(); ++i) {
    EXPECT_EQ(ca->GetValue(i), cb->GetValue(i));
  }
}

TEST(InterpreterTest, RangeSelect) {
  Catalog cat = MakeCatalog();
  Plan b;
  int mvc = b.Mvc();
  int tid = b.Tid(mvc);
  int qty = b.Bind("l_quantity", DataType::kInt64, mvc);
  int cand = b.p.AddVariable(MalType::Bat(DataType::kOid));
  b.p.Add("algebra", "select", {cand},
          {Argument::Var(qty), Argument::Var(tid), Argument::Const(Value::Int(20)),
           Argument::Const(Value::Int(40))});
  b.Print(cand);
  auto r = RunPlan(b.p, &cat);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ColumnPtr col = r.value().columns[0].column;
  ASSERT_EQ(col->size(), 3u);  // qty 20, 30, 40
  EXPECT_EQ(col->OidAt(0), 1u);
  EXPECT_EQ(col->OidAt(1), 2u);
  EXPECT_EQ(col->OidAt(2), 3u);
}

TEST(InterpreterTest, SelectWithNullBoundsIsUnbounded) {
  Catalog cat = MakeCatalog();
  Plan b;
  int mvc = b.Mvc();
  int tid = b.Tid(mvc);
  int qty = b.Bind("l_quantity", DataType::kInt64, mvc);
  int cand = b.p.AddVariable(MalType::Bat(DataType::kOid));
  b.p.Add("algebra", "select", {cand},
          {Argument::Var(qty), Argument::Var(tid), Argument::Const(Value::Null()),
           Argument::Const(Value::Int(20))});
  b.Print(cand);
  auto r = RunPlan(b.p, &cat);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().columns[0].column->size(), 2u);  // 10, 20
}

TEST(InterpreterTest, LikeSelect) {
  Catalog cat = MakeCatalog();
  Plan b;
  int mvc = b.Mvc();
  int tid = b.Tid(mvc);
  int flag = b.Bind("l_returnflag", DataType::kString, mvc);
  int cand = b.p.AddVariable(MalType::Bat(DataType::kOid));
  b.p.Add("algebra", "likeselect", {cand},
          {Argument::Var(flag), Argument::Var(tid),
           Argument::Const(Value::String("R"))});
  b.Print(cand);
  auto r = RunPlan(b.p, &cat);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().columns[0].column->size(), 2u);
}

TEST(InterpreterTest, JoinProducesMatchingPairs) {
  Catalog cat = MakeCatalog();
  Plan b;
  int mvc = b.Mvc();
  int pk = b.Bind("l_partkey", DataType::kInt64, mvc);
  int pk2 = b.Bind("l_partkey", DataType::kInt64, mvc);
  int lo = b.p.AddVariable(MalType::Bat(DataType::kOid));
  int ro = b.p.AddVariable(MalType::Bat(DataType::kOid));
  b.p.Add("algebra", "join", {lo, ro}, {Argument::Var(pk), Argument::Var(pk2)});
  b.Print(lo);
  b.Print(ro);
  auto r = RunPlan(b.p, &cat);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // partkey values {1,2,1,3,2,1}: self-join matches 3*3 + 2*2 + 1 = 14 pairs.
  EXPECT_EQ(r.value().columns[0].column->size(), 14u);
  EXPECT_EQ(r.value().columns[1].column->size(), 14u);
}

TEST(InterpreterTest, SortAndFirstn) {
  Catalog cat = MakeCatalog();
  Plan b;
  int mvc = b.Mvc();
  int tax = b.Bind("l_tax", DataType::kDouble, mvc);
  int sorted = b.p.AddVariable(MalType::Bat(DataType::kDouble));
  int order = b.p.AddVariable(MalType::Bat(DataType::kOid));
  b.p.Add("algebra", "sort", {sorted, order},
          {Argument::Var(tax), Argument::Const(Value::Bool(false))});
  int tax2 = b.Bind("l_tax", DataType::kDouble, mvc);
  int top = b.p.AddVariable(MalType::Bat(DataType::kOid));
  b.p.Add("algebra", "firstn", {top},
          {Argument::Var(tax2), Argument::Const(Value::Int(2)),
           Argument::Const(Value::Bool(false))});
  b.Print(sorted);
  b.Print(top);
  auto r = RunPlan(b.p, &cat);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ColumnPtr s = r.value().columns[0].column;
  for (size_t i = 1; i < s->size(); ++i) {
    EXPECT_LE(s->DoubleAt(i - 1), s->DoubleAt(i));
  }
  ColumnPtr t = r.value().columns[1].column;
  ASSERT_EQ(t->size(), 2u);
  EXPECT_EQ(t->OidAt(0), 2u);  // tax 0.06 at row 2
  EXPECT_EQ(t->OidAt(1), 5u);  // tax 0.05 at row 5
}

TEST(InterpreterTest, GroupAndGroupedAggregates) {
  Catalog cat = MakeCatalog();
  Plan b;
  int mvc = b.Mvc();
  int flag = b.Bind("l_returnflag", DataType::kString, mvc);
  int groups = b.p.AddVariable(MalType::Bat(DataType::kOid));
  int extents = b.p.AddVariable(MalType::Bat(DataType::kOid));
  int histo = b.p.AddVariable(MalType::Bat(DataType::kInt64));
  b.p.Add("group", "group", {groups, extents, histo}, {Argument::Var(flag)});
  int qty = b.Bind("l_quantity", DataType::kInt64, mvc);
  int sums = b.p.AddVariable(MalType::Bat(DataType::kInt64));
  b.p.Add("aggr", "subsum", {sums},
          {Argument::Var(qty), Argument::Var(groups), Argument::Var(extents)});
  int keys = b.Bind("l_returnflag", DataType::kString, mvc);
  int names = b.p.AddVariable(MalType::Bat(DataType::kString));
  b.p.Add("algebra", "projection", {names},
          {Argument::Var(extents), Argument::Var(keys)});
  b.Print(names);
  b.Print(sums);
  b.Print(histo);
  auto r = RunPlan(b.p, &cat);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ColumnPtr names_c = r.value().columns[0].column;
  ColumnPtr sums_c = r.value().columns[1].column;
  ColumnPtr histo_c = r.value().columns[2].column;
  ASSERT_EQ(names_c->size(), 3u);  // N, R, A in first-seen order
  EXPECT_EQ(names_c->StringAt(0), "N");
  EXPECT_EQ(sums_c->IntAt(0), 10 + 40 + 60);
  EXPECT_EQ(names_c->StringAt(1), "R");
  EXPECT_EQ(sums_c->IntAt(1), 20 + 50);
  EXPECT_EQ(names_c->StringAt(2), "A");
  EXPECT_EQ(sums_c->IntAt(2), 30);
  EXPECT_EQ(histo_c->IntAt(0), 3);
}

TEST(InterpreterTest, SubgroupRefines) {
  Catalog cat = MakeCatalog();
  Plan b;
  int mvc = b.Mvc();
  int flag = b.Bind("l_returnflag", DataType::kString, mvc);
  int g1 = b.p.AddVariable(MalType::Bat(DataType::kOid));
  int e1 = b.p.AddVariable(MalType::Bat(DataType::kOid));
  int h1 = b.p.AddVariable(MalType::Bat(DataType::kInt64));
  b.p.Add("group", "group", {g1, e1, h1}, {Argument::Var(flag)});
  int pk = b.Bind("l_partkey", DataType::kInt64, mvc);
  int g2 = b.p.AddVariable(MalType::Bat(DataType::kOid));
  int e2 = b.p.AddVariable(MalType::Bat(DataType::kOid));
  int h2 = b.p.AddVariable(MalType::Bat(DataType::kInt64));
  b.p.Add("group", "subgroup", {g2, e2, h2},
          {Argument::Var(pk), Argument::Var(g1)});
  b.Print(e2);
  auto r = RunPlan(b.p, &cat);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // (flag, partkey) pairs: (N,1)x2? rows: (N,1),(R,2),(A,1),(N,3),(R,2),(N,1)
  // distinct: (N,1),(R,2),(A,1),(N,3) -> 4 groups.
  EXPECT_EQ(r.value().columns[0].column->size(), 4u);
}

TEST(InterpreterTest, ScalarAggregates) {
  Catalog cat = MakeCatalog();
  Plan b;
  int mvc = b.Mvc();
  int qty = b.Bind("l_quantity", DataType::kInt64, mvc);
  const char* aggs[] = {"sum", "min", "max", "avg", "count"};
  std::vector<int> outs;
  for (const char* name : aggs) {
    int v = b.p.AddVariable(MalType::Scalar(DataType::kDouble));
    b.p.Add("aggr", name, {v}, {Argument::Var(qty)});
    outs.push_back(v);
  }
  for (int v : outs) b.Print(v);
  auto r = RunPlan(b.p, &cat);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().columns.size(), 5u);
  EXPECT_EQ(r.value().columns[0].scalar.AsInt(), 210);
  EXPECT_EQ(r.value().columns[1].scalar.AsInt(), 10);
  EXPECT_EQ(r.value().columns[2].scalar.AsInt(), 60);
  EXPECT_DOUBLE_EQ(r.value().columns[3].scalar.AsDouble(), 35.0);
  EXPECT_EQ(r.value().columns[4].scalar.AsInt(), 6);
}

TEST(InterpreterTest, BatcalcBroadcastAndMask) {
  Catalog cat = MakeCatalog();
  Plan b;
  int mvc = b.Mvc();
  int qty = b.Bind("l_quantity", DataType::kInt64, mvc);
  // mask = qty > 25
  int mask = b.p.AddVariable(MalType::Bat(DataType::kBool));
  b.p.Add("batcalc", "gt", {mask},
          {Argument::Var(qty), Argument::Const(Value::Int(25))});
  int tid = b.Tid(mvc);
  int cand = b.p.AddVariable(MalType::Bat(DataType::kOid));
  b.p.Add("algebra", "selectmask", {cand},
          {Argument::Var(tid), Argument::Var(mask)});
  // doubled = qty * 2 projected over cand
  int qty2 = b.Bind("l_quantity", DataType::kInt64, mvc);
  int doubled = b.p.AddVariable(MalType::Bat(DataType::kInt64));
  b.p.Add("batcalc", "mul", {doubled},
          {Argument::Var(qty2), Argument::Const(Value::Int(2))});
  int proj = b.p.AddVariable(MalType::Bat(DataType::kInt64));
  b.p.Add("algebra", "projection", {proj},
          {Argument::Var(cand), Argument::Var(doubled)});
  b.Print(proj);
  auto r = RunPlan(b.p, &cat);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ColumnPtr col = r.value().columns[0].column;
  ASSERT_EQ(col->size(), 4u);  // qty 30, 40, 50, 60
  EXPECT_EQ(col->IntAt(0), 60);
  EXPECT_EQ(col->IntAt(3), 120);
}

TEST(InterpreterTest, DivisionByZeroFails) {
  Catalog cat = MakeCatalog();
  Plan b;
  int mvc = b.Mvc();
  int qty = b.Bind("l_quantity", DataType::kInt64, mvc);
  int div = b.p.AddVariable(MalType::Bat(DataType::kDouble));
  b.p.Add("batcalc", "div", {div},
          {Argument::Var(qty), Argument::Const(Value::Int(0))});
  b.Print(div);
  auto r = RunPlan(b.p, &cat);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("division by zero"), std::string::npos);
}

TEST(InterpreterTest, PartitionPackRoundTrip) {
  Catalog cat = MakeCatalog();
  Plan b;
  int mvc = b.Mvc();
  int qty = b.Bind("l_quantity", DataType::kInt64, mvc);
  std::vector<Argument> pieces;
  for (int i = 0; i < 3; ++i) {
    int piece = b.p.AddVariable(MalType::Bat(DataType::kInt64));
    b.p.Add("bat", "partition", {piece},
            {Argument::Var(qty), Argument::Const(Value::Int(3)),
             Argument::Const(Value::Int(i))});
    pieces.push_back(Argument::Var(piece));
  }
  int packed = b.p.AddVariable(MalType::Bat(DataType::kInt64));
  b.p.Add("mat", "pack", {packed}, pieces);
  b.Print(packed);
  auto r = RunPlan(b.p, &cat);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ColumnPtr col = r.value().columns[0].column;
  ASSERT_EQ(col->size(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(col->IntAt(i), static_cast<int64_t>((i + 1) * 10));
  }
}

TEST(InterpreterTest, UnknownKernelFails) {
  Catalog cat = MakeCatalog();
  Program p;
  p.Add("bogus", "nothing", {}, {});
  auto r = RunPlan(p, &cat);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(InterpreterTest, KernelErrorsCarryPcContext) {
  Catalog cat = MakeCatalog();
  Plan b;
  int mvc = b.Mvc();
  b.p.Add("sql", "bind", {b.p.AddVariable(MalType::Bat(DataType::kInt64))},
          {Argument::Var(mvc), Argument::Const(Value::String("sys")),
           Argument::Const(Value::String("lineitem")),
           Argument::Const(Value::String("no_such_column")),
           Argument::Const(Value::Int(0))});
  auto r = RunPlan(b.p, &cat);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("pc=1"), std::string::npos);
}

TEST(InterpreterTest, StatsRecordedPerInstruction) {
  Catalog cat = MakeCatalog();
  VirtualClock clock;
  ExecOptions opts;
  opts.use_dataflow = false;
  opts.clock = &clock;
  opts.pad_instruction_usec = 10;
  Program p = PaperQuery();
  auto r = RunPlan(p, &cat, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().stats.size(), p.size());
  for (const InstructionStat& s : r.value().stats) {
    EXPECT_EQ(s.usec, 10);  // virtual clock: exactly the padding
    EXPECT_EQ(s.thread, 0);
  }
  EXPECT_EQ(r.value().total_usec, static_cast<int64_t>(p.size()) * 10);
}

TEST(InterpreterTest, ProfilerReceivesStartDonePairs) {
  Catalog cat = MakeCatalog();
  VirtualClock clock;
  profiler::Profiler prof(&clock);
  auto ring = std::make_shared<profiler::RingBufferSink>(1000);
  prof.AddSink(ring);
  ExecOptions opts;
  opts.use_dataflow = false;
  opts.clock = &clock;
  opts.profiler = &prof;
  Program p = PaperQuery();
  auto r = RunPlan(p, &cat, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto events = ring->Snapshot();
  ASSERT_EQ(events.size(), 2 * p.size());
  // Sequential execution: strict start/done pairing per pc.
  for (size_t i = 0; i < events.size(); i += 2) {
    EXPECT_EQ(events[i].state, profiler::EventState::kStart);
    EXPECT_EQ(events[i + 1].state, profiler::EventState::kDone);
    EXPECT_EQ(events[i].pc, events[i + 1].pc);
    EXPECT_EQ(events[i].stmt, events[i + 1].stmt);
  }
}

TEST(InterpreterTest, DataflowUsesMultipleThreads) {
  // A plan with 8 independent debug.spin instructions must spread across
  // workers (probabilistically certain with enough work per instruction).
  Catalog cat = MakeCatalog();
  Program p;
  std::vector<int> outs;
  for (int i = 0; i < 8; ++i) {
    int v = p.AddVariable(MalType::Scalar(DataType::kInt64));
    p.Add("debug", "spin", {v}, {Argument::Const(Value::Int(2000000))});
    outs.push_back(v);
  }
  for (int v : outs) p.Add("io", "print", {}, {Argument::Var(v)});
  ExecOptions opts;
  opts.num_threads = 4;
  auto r = RunPlan(p, &cat, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::set<int> threads;
  for (size_t pc = 0; pc < 8; ++pc) threads.insert(r.value().stats[pc].thread);
  EXPECT_GT(threads.size(), 1u);
}

TEST(InterpreterTest, SequentialModeUsesOneThread) {
  Catalog cat = MakeCatalog();
  Program p = PaperQuery();
  ExecOptions opts;
  opts.use_dataflow = false;
  opts.num_threads = 4;
  auto r = RunPlan(p, &cat, opts);
  ASSERT_TRUE(r.ok());
  for (const InstructionStat& s : r.value().stats) EXPECT_EQ(s.thread, 0);
}

TEST(InterpreterTest, MemoryAccountingTracksPeak) {
  Catalog cat = MakeCatalog();
  Program p = PaperQuery();
  auto r = RunPlan(p, &cat);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().peak_rss_bytes, 0);
}

TEST(InterpreterTest, ExportsLiveAndPeakBytesMetrics) {
  obs::Gauge* live = obs::Registry::Default()->GetOrCreateGauge(
      "stetho_engine_live_bytes",
      "Live column bytes currently held by executing queries "
      "(Column::MemoryBytes accounting)");
  obs::Gauge* peak = obs::Registry::Default()->GetOrCreateGauge(
      "stetho_engine_peak_rss_bytes",
      "Live-byte peak recorded by the last completed query execution");
  // Metrics are process-global: delta-assert around the run instead of
  // expecting absolute values.
  int64_t live_before = live->value();
  Catalog cat = MakeCatalog();
  Program p = PaperQuery();
  auto r = RunPlan(p, &cat);
  ASSERT_TRUE(r.ok());
  // Every byte the query charged was drained again on completion.
  EXPECT_EQ(live->value(), live_before);
  // The peak gauge mirrors the last query's accountant peak.
  EXPECT_EQ(peak->value(), r.value().peak_rss_bytes);
  EXPECT_GT(peak->value(), 0);
}

TEST(InterpreterTest, DebugSleepVirtualClock) {
  Catalog cat = MakeCatalog();
  VirtualClock clock;
  Program p;
  p.Add("debug", "sleep", {}, {Argument::Const(Value::Int(5000))});
  ExecOptions opts;
  opts.clock = &clock;
  opts.use_dataflow = false;
  auto r = RunPlan(p, &cat, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().stats[0].usec, 5000);
}

TEST(InterpreterTest, BooleanKernels) {
  Catalog cat = MakeCatalog();
  Plan b;
  int mvc = b.Mvc();
  int qty = b.Bind("l_quantity", DataType::kInt64, mvc);
  int m1 = b.p.AddVariable(MalType::Bat(DataType::kBool));
  b.p.Add("batcalc", "gt", {m1},
          {Argument::Var(qty), Argument::Const(Value::Int(15))});
  int m2 = b.p.AddVariable(MalType::Bat(DataType::kBool));
  b.p.Add("batcalc", "lt", {m2},
          {Argument::Var(qty), Argument::Const(Value::Int(45))});
  int both = b.p.AddVariable(MalType::Bat(DataType::kBool));
  b.p.Add("batcalc", "and", {both}, {Argument::Var(m1), Argument::Var(m2)});
  int either = b.p.AddVariable(MalType::Bat(DataType::kBool));
  b.p.Add("batcalc", "or", {either}, {Argument::Var(m1), Argument::Var(m2)});
  int neither = b.p.AddVariable(MalType::Bat(DataType::kBool));
  b.p.Add("batcalc", "not", {neither}, {Argument::Var(either)});
  b.Print(both);
  b.Print(either);
  b.Print(neither);
  auto r = RunPlan(b.p, &cat);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // qty = {10,20,30,40,50,60}; >15 & <45 -> rows 1,2,3.
  ColumnPtr both_c = r.value().columns[0].column;
  int count_both = 0;
  for (size_t i = 0; i < both_c->size(); ++i) {
    if (both_c->BoolAt(i)) ++count_both;
  }
  EXPECT_EQ(count_both, 3);
  // >15 | <45 covers everything.
  ColumnPtr either_c = r.value().columns[1].column;
  for (size_t i = 0; i < either_c->size(); ++i) {
    EXPECT_TRUE(either_c->BoolAt(i));
    EXPECT_FALSE(r.value().columns[2].column->BoolAt(i));
  }
}

TEST(InterpreterTest, BooleanNullSemantics) {
  // SQL three-valued logic: NULL AND false = false, NULL OR true = true,
  // NULL AND true = NULL.
  Catalog cat;
  TablePtr t = Table::Make("flags", Schema({{"b", DataType::kBool}}));
  ASSERT_TRUE(t->AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(t->AppendRow({Value::Bool(true)}).ok());
  ASSERT_TRUE(cat.AddTable(t).ok());
  Program p;
  int mvc = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("sql", "mvc", {mvc}, {});
  int col = p.AddVariable(MalType::Bat(DataType::kBool));
  p.Add("sql", "bind", {col},
        {Argument::Var(mvc), Argument::Const(Value::String("sys")),
         Argument::Const(Value::String("flags")),
         Argument::Const(Value::String("b")), Argument::Const(Value::Int(0))});
  int and_false = p.AddVariable(MalType::Bat(DataType::kBool));
  p.Add("batcalc", "and", {and_false},
        {Argument::Var(col), Argument::Const(Value::Bool(false))});
  int or_true = p.AddVariable(MalType::Bat(DataType::kBool));
  p.Add("batcalc", "or", {or_true},
        {Argument::Var(col), Argument::Const(Value::Bool(true))});
  int and_true = p.AddVariable(MalType::Bat(DataType::kBool));
  p.Add("batcalc", "and", {and_true},
        {Argument::Var(col), Argument::Const(Value::Bool(true))});
  p.Add("io", "print", {}, {Argument::Var(and_false)});
  p.Add("io", "print", {}, {Argument::Var(or_true)});
  p.Add("io", "print", {}, {Argument::Var(and_true)});
  auto r = RunPlan(p, &cat);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.value().columns[0].column->IsNull(0));
  EXPECT_FALSE(r.value().columns[0].column->BoolAt(0));  // NULL AND false
  EXPECT_FALSE(r.value().columns[1].column->IsNull(0));
  EXPECT_TRUE(r.value().columns[1].column->BoolAt(0));   // NULL OR true
  EXPECT_TRUE(r.value().columns[2].column->IsNull(0));   // NULL AND true
}

TEST(InterpreterTest, IfThenElse) {
  Catalog cat = MakeCatalog();
  Plan b;
  int mvc = b.Mvc();
  int qty = b.Bind("l_quantity", DataType::kInt64, mvc);
  int mask = b.p.AddVariable(MalType::Bat(DataType::kBool));
  b.p.Add("batcalc", "ge", {mask},
          {Argument::Var(qty), Argument::Const(Value::Int(40))});
  int picked = b.p.AddVariable(MalType::Bat(DataType::kDouble));
  b.p.Add("batcalc", "ifthenelse", {picked},
          {Argument::Var(mask), Argument::Var(qty),
           Argument::Const(Value::Double(0.0))});
  b.Print(picked);
  auto r = RunPlan(b.p, &cat);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ColumnPtr col = r.value().columns[0].column;
  ASSERT_EQ(col->size(), 6u);
  EXPECT_DOUBLE_EQ(col->DoubleAt(0), 0.0);   // qty 10
  EXPECT_DOUBLE_EQ(col->DoubleAt(3), 40.0);  // qty 40
  EXPECT_DOUBLE_EQ(col->DoubleAt(5), 60.0);  // qty 60
}

TEST(InterpreterTest, CalcCasts) {
  Catalog cat = MakeCatalog();
  Program p;
  int as_dbl = p.AddVariable(MalType::Scalar(DataType::kDouble));
  p.Add("calc", "dbl", {as_dbl}, {Argument::Const(Value::Int(7))});
  int as_lng = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("calc", "lng", {as_lng}, {Argument::Const(Value::Double(3.9))});
  int as_str = p.AddVariable(MalType::Scalar(DataType::kString));
  p.Add("calc", "str", {as_str}, {Argument::Const(Value::Int(42))});
  p.Add("io", "print", {}, {Argument::Var(as_dbl)});
  p.Add("io", "print", {}, {Argument::Var(as_lng)});
  p.Add("io", "print", {}, {Argument::Var(as_str)});
  auto r = RunPlan(p, &cat);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r.value().columns[0].scalar.AsDouble(), 7.0);
  EXPECT_EQ(r.value().columns[1].scalar.AsInt(), 3);  // truncation
  EXPECT_EQ(r.value().columns[2].scalar.AsString(), "42");
}

TEST(InterpreterTest, LikeSelectPatterns) {
  Catalog cat;
  TablePtr t = Table::Make("words", Schema({{"w", DataType::kString}}));
  for (const char* w : {"PROMO ANODIZED TIN", "STANDARD PLATED BRASS",
                        "PROMO BRUSHED STEEL", "ECONOMY ANODIZED TIN", ""}) {
    ASSERT_TRUE(t->AppendRow({Value::String(w)}).ok());
  }
  ASSERT_TRUE(cat.AddTable(t).ok());
  struct Case {
    const char* pattern;
    size_t expected;
  };
  const Case cases[] = {
      {"PROMO%", 2},  {"%TIN", 2},    {"%ANODIZED%", 2}, {"%", 5},
      {"_ROMO%", 2},  {"PROMO", 0},   {"", 1},           {"%Z%", 2},
      {"%QQ%", 0},    {"_", 0},
  };
  for (const Case& c : cases) {
    Program p;
    int mvc = p.AddVariable(MalType::Scalar(DataType::kInt64));
    p.Add("sql", "mvc", {mvc}, {});
    int tid = p.AddVariable(MalType::Bat(DataType::kOid));
    p.Add("sql", "tid", {tid},
          {Argument::Var(mvc), Argument::Const(Value::String("sys")),
           Argument::Const(Value::String("words"))});
    int col = p.AddVariable(MalType::Bat(DataType::kString));
    p.Add("sql", "bind", {col},
          {Argument::Var(mvc), Argument::Const(Value::String("sys")),
           Argument::Const(Value::String("words")),
           Argument::Const(Value::String("w")), Argument::Const(Value::Int(0))});
    int cand = p.AddVariable(MalType::Bat(DataType::kOid));
    p.Add("algebra", "likeselect", {cand},
          {Argument::Var(col), Argument::Var(tid),
           Argument::Const(Value::String(c.pattern))});
    p.Add("io", "print", {}, {Argument::Var(cand)});
    auto r = RunPlan(p, &cat);
    ASSERT_TRUE(r.ok()) << c.pattern;
    EXPECT_EQ(r.value().columns[0].column->size(), c.expected) << c.pattern;
  }
}

TEST(ModuleRegistryTest, DefaultHasAllFamilies) {
  const ModuleRegistry* reg = ModuleRegistry::Default();
  for (const char* name :
       {"sql.bind", "sql.tid", "algebra.select", "algebra.join",
        "algebra.projection", "group.group", "aggr.subsum", "mat.pack",
        "bat.partition", "batcalc.add", "calc.add", "io.print",
        "language.dataflow", "debug.sleep"}) {
    auto dot = std::string(name).find('.');
    auto fn = reg->Lookup(std::string(name).substr(0, dot),
                          std::string(name).substr(dot + 1));
    EXPECT_TRUE(fn.ok()) << name;
  }
}

TEST(ModuleRegistryTest, DuplicateRegistrationRejected) {
  ModuleRegistry reg;
  ASSERT_TRUE(reg.Register("m", "f", [](KernelArgs&) { return Status::OK(); }).ok());
  EXPECT_FALSE(reg.Register("m", "f", [](KernelArgs&) { return Status::OK(); }).ok());
}

}  // namespace
}  // namespace stetho::engine
