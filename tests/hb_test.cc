// Happens-before analysis tests: vector-clock replay, critical-path
// accounting, and the injected-corruption harness for the five schedule
// checks (trace-dependency-violation, trace-write-race, span-interleaving,
// trace-clock-monotonicity, schedule-serialization). Mirrors
// tests/mutation_test.cc: every corruption class must be caught by the
// check named in its table entry — a silent pass is a test failure — and
// legal shuffled schedules must produce zero findings.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/checks.h"
#include "analysis/hb.h"
#include "analysis/runner.h"
#include "common/rng.h"
#include "mal/program.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "profiler/event.h"

namespace stetho {
namespace {

using analysis::CheckContext;
using analysis::Diagnostic;
using analysis::ScheduleReport;
using mal::Argument;
using mal::MalType;
using obs::SpanRecord;
using profiler::EventState;
using profiler::TraceEvent;
using storage::DataType;
using storage::Value;

MalType BatLng() { return MalType::Bat(DataType::kInt64); }

/// A runner loaded with only the five happens-before checks, so findings
/// here are attributable to the new suite (and interference with the other
/// checks is covered by mutation_test's full-suite baseline).
const analysis::Runner& HbRunner() {
  static const analysis::Runner& runner = *[] {
    auto* r = new analysis::Runner();
    r->Add(analysis::MakeTraceDependencyViolationCheck());
    r->Add(analysis::MakeTraceWriteRaceCheck());
    r->Add(analysis::MakeSpanInterleavingCheck());
    r->Add(analysis::MakeTraceClockMonotonicityCheck());
    r->Add(analysis::MakeScheduleSerializationCheck());
    return r;
  }();
  return runner;
}

struct Artifacts {
  mal::Program program;
  std::optional<std::vector<TraceEvent>> trace;
  std::optional<std::vector<SpanRecord>> spans;
};

std::vector<Diagnostic> RunHb(const Artifacts& a) {
  CheckContext ctx;
  ctx.program = &a.program;
  if (a.trace.has_value()) ctx.trace = &a.trace.value();
  if (a.spans.has_value()) ctx.spans = &a.spans.value();
  return HbRunner().Run(ctx);
}

bool HasCheck(const std::vector<Diagnostic>& diags, const std::string& id) {
  return std::any_of(diags.begin(), diags.end(),
                     [&id](const Diagnostic& d) { return d.check_id == id; });
}

/// Diamond DAG: pc0 -> {pc1, pc2} -> pc3. Plan width 2.
mal::Program DiamondPlan() {
  mal::Program p;
  int a = p.AddVariable(BatLng());
  p.Add("bat", "densebat", {a}, {Argument::Const(Value::Int(16))});
  int b = p.AddVariable(BatLng());
  p.Add("bat", "mirror", {b}, {Argument::Var(a)});
  int c = p.AddVariable(BatLng());
  p.Add("bat", "mirror", {c}, {Argument::Var(a)});
  int d = p.AddVariable(BatLng());
  p.Add("batcalc", "add", {d}, {Argument::Var(b), Argument::Var(c)});
  return p;
}

TraceEvent Event(const mal::Program& p, int64_t seq, int64_t time_us, int pc,
                 int thread, EventState state, int64_t usec = 0) {
  TraceEvent e;
  e.event = seq;
  e.time_us = time_us;
  e.pc = pc;
  e.thread = thread;
  e.state = state;
  e.usec = usec;
  e.stmt = p.InstructionToString(p.instruction(pc));
  return e;
}

/// Two-slot parallel execution of DiamondPlan: pc1 on slot 0 and pc2 on
/// slot 1 overlap. Event ids step by 10 so corruptions can renumber one
/// event between two others without colliding.
std::vector<TraceEvent> ParallelDiamondTrace(const mal::Program& p) {
  return {
      Event(p, 0, 1000, 0, 0, EventState::kStart),
      Event(p, 10, 1010, 0, 0, EventState::kDone, 10),
      Event(p, 20, 1020, 1, 0, EventState::kStart),
      Event(p, 30, 1030, 2, 1, EventState::kStart),
      Event(p, 40, 1040, 1, 0, EventState::kDone, 20),
      Event(p, 50, 1050, 2, 1, EventState::kDone, 5),
      Event(p, 60, 1060, 3, 0, EventState::kStart),
      Event(p, 70, 1070, 3, 0, EventState::kDone, 10),
  };
}

std::vector<TraceEvent>::iterator FindEvent(std::vector<TraceEvent>& trace,
                                            int pc, EventState state) {
  return std::find_if(trace.begin(), trace.end(),
                      [pc, state](const TraceEvent& e) {
                        return e.pc == pc && e.state == state;
                      });
}

/// Renumbers the (pc_a, state_a) event to sit immediately before the
/// (pc_b, state_b) event in both emission order and time.
void MoveBefore(std::vector<TraceEvent>* trace, int pc_a, EventState state_a,
                int pc_b, EventState state_b) {
  auto a = FindEvent(*trace, pc_a, state_a);
  auto b = FindEvent(*trace, pc_b, state_b);
  ASSERT_NE(a, trace->end());
  ASSERT_NE(b, trace->end());
  a->event = b->event - 1;
  a->time_us = b->time_us - 1;
}

// ---------------------------------------------------------------------------
// Vector clocks and the replay itself
// ---------------------------------------------------------------------------

TEST(VectorClockTest, TickJoinLessEq) {
  analysis::VectorClock a(2), b(2);
  EXPECT_TRUE(a.LessEq(b));
  a.Tick(0);
  EXPECT_FALSE(a.LessEq(b));
  EXPECT_TRUE(b.LessEq(a));
  b.Tick(1);
  b.Tick(1);
  analysis::VectorClock joined = a;
  joined.Join(b);
  EXPECT_EQ(joined.tick(0), 1);
  EXPECT_EQ(joined.tick(1), 2);
  EXPECT_TRUE(a.LessEq(joined));
  EXPECT_TRUE(b.LessEq(joined));
  // Different widths compare as if padded with zeros.
  analysis::VectorClock narrow(1);
  EXPECT_TRUE(narrow.LessEq(joined));
}

TEST(AnalyzeScheduleTest, CleanParallelRunHasNoViolations) {
  mal::Program p = DiamondPlan();
  ScheduleReport report = analysis::AnalyzeSchedule(p, ParallelDiamondTrace(p));
  EXPECT_TRUE(report.violations.empty());
  EXPECT_TRUE(report.inverted.empty());
  EXPECT_TRUE(report.duplicates.empty());
  EXPECT_EQ(report.plan_width, 2);
  EXPECT_EQ(report.max_observed_concurrency, 2);
  EXPECT_EQ(report.completed_executions, 4);
  EXPECT_EQ(report.threads.size(), 2u);
}

TEST(AnalyzeScheduleTest, CriticalPathMakespanAndSlack) {
  mal::Program p = DiamondPlan();
  ScheduleReport report = analysis::AnalyzeSchedule(p, ParallelDiamondTrace(p));
  // Weights 10/20/5/10: the longest chain is pc0 -> pc1 -> pc3 = 40 us.
  ASSERT_EQ(report.critical_path.size(), 3u);
  EXPECT_EQ(report.critical_path[0].pc, 0);
  EXPECT_EQ(report.critical_path[1].pc, 1);
  EXPECT_EQ(report.critical_path[2].pc, 3);
  EXPECT_EQ(report.critical_path_usec, 40);
  EXPECT_EQ(report.makespan_usec, 70);  // 1070 - 1000
  EXPECT_EQ(report.slack_usec, 30);
  std::string rendered = analysis::FormatScheduleReport(report, p);
  EXPECT_NE(rendered.find("critical path"), std::string::npos);
  EXPECT_NE(rendered.find("bat.mirror"), std::string::npos);
}

TEST(AnalyzeScheduleTest, HappensBeforeOrdersEdgesAndSlots) {
  mal::Program p = DiamondPlan();
  ScheduleReport r = analysis::AnalyzeSchedule(p, ParallelDiamondTrace(p));
  // Producer -> consumer edges the schedule respected are ordered.
  EXPECT_TRUE(analysis::HappensBefore(r.executions[0], r.executions[1]));
  EXPECT_TRUE(analysis::HappensBefore(r.executions[0], r.executions[3]));
  EXPECT_TRUE(analysis::HappensBefore(r.executions[2], r.executions[3]));
  // The two middle instructions overlap on different slots: unordered.
  EXPECT_FALSE(analysis::HappensBefore(r.executions[1], r.executions[2]));
  EXPECT_FALSE(analysis::HappensBefore(r.executions[2], r.executions[1]));
  // Nothing happens-before its own producer.
  EXPECT_FALSE(analysis::HappensBefore(r.executions[3], r.executions[0]));
}

TEST(AnalyzeScheduleTest, UpdatesHbMetrics) {
  obs::Registry* registry = obs::Registry::Default();
  mal::Program p = DiamondPlan();
  // Metrics are process-global: delta-assert around the call.
  analysis::AnalyzeSchedule(p, ParallelDiamondTrace(p));  // ensure created
  int64_t replays =
      registry->CounterValue("stetho_hb_replays_total").value();
  int64_t violations =
      registry->CounterValue("stetho_hb_violations_total").value();
  std::vector<TraceEvent> bad = ParallelDiamondTrace(p);
  MoveBefore(&bad, 3, EventState::kStart, 1, EventState::kDone);
  ScheduleReport report = analysis::AnalyzeSchedule(p, bad);
  EXPECT_FALSE(report.violations.empty());
  EXPECT_EQ(registry->CounterValue("stetho_hb_replays_total").value(),
            replays + 1);
  EXPECT_GT(registry->CounterValue("stetho_hb_violations_total").value(),
            violations);
}

// ---------------------------------------------------------------------------
// Injected-corruption catalog: every class caught, no silent passes
// ---------------------------------------------------------------------------

struct HbMutation {
  std::string name;
  std::string expected_check;
  std::function<Artifacts()> build;
};

Artifacts WithTrace(
    const std::function<void(std::vector<TraceEvent>*)>& corrupt) {
  Artifacts a;
  a.program = DiamondPlan();
  std::vector<TraceEvent> trace = ParallelDiamondTrace(a.program);
  corrupt(&trace);
  a.trace = std::move(trace);
  return a;
}

std::vector<HbMutation> MutationCatalog() {
  std::vector<HbMutation> catalog;

  catalog.push_back(
      {"swapped-start-done", "trace-dependency-violation", [] {
         return WithTrace([](std::vector<TraceEvent>* t) {
           // pc3's done is renumbered before its start: the interval runs
           // backwards.
           std::swap(FindEvent(*t, 3, EventState::kStart)->event,
                     FindEvent(*t, 3, EventState::kDone)->event);
         });
       }});
  catalog.push_back(
      {"reordered-producer-consumer-same-slot", "trace-dependency-violation",
       [] {
         return WithTrace([](std::vector<TraceEvent>* t) {
           // pc1 (slot 0) starts before its producer pc0 (slot 0) is done.
           MoveBefore(t, 1, EventState::kStart, 0, EventState::kDone);
         });
       }});
  catalog.push_back(
      {"reordered-producer-consumer-cross-slot", "trace-dependency-violation",
       [] {
         return WithTrace([](std::vector<TraceEvent>* t) {
           // pc3 (slot 0) starts before its producer pc2 (slot 1) is done.
           MoveBefore(t, 3, EventState::kStart, 2, EventState::kDone);
         });
       }});
  catalog.push_back(
      {"producer-done-dropped", "trace-dependency-violation", [] {
         return WithTrace([](std::vector<TraceEvent>* t) {
           t->erase(FindEvent(*t, 1, EventState::kDone));
         });
       }});
  catalog.push_back(
      {"consumer-start-dropped", "trace-dependency-violation", [] {
         return WithTrace([](std::vector<TraceEvent>* t) {
           // A done with no start: the interval is inverted/incomplete.
           t->erase(FindEvent(*t, 3, EventState::kStart));
         });
       }});
  catalog.push_back(
      {"duplicated-pc-pair", "trace-dependency-violation", [] {
         return WithTrace([](std::vector<TraceEvent>* t) {
           TraceEvent start = *FindEvent(*t, 1, EventState::kStart);
           TraceEvent done = *FindEvent(*t, 1, EventState::kDone);
           start.event += 1000;
           start.time_us += 1000;
           done.event += 1000;
           done.time_us += 1000;
           t->push_back(start);
           t->push_back(done);
         });
       }});
  catalog.push_back(
      {"duplicated-start", "trace-dependency-violation", [] {
         return WithTrace([](std::vector<TraceEvent>* t) {
           TraceEvent start = *FindEvent(*t, 2, EventState::kStart);
           start.event += 1000;
           start.time_us += 1000;
           t->push_back(start);
         });
       }});
  catalog.push_back(
      {"duplicated-done", "trace-dependency-violation", [] {
         return WithTrace([](std::vector<TraceEvent>* t) {
           TraceEvent done = *FindEvent(*t, 2, EventState::kDone);
           done.event += 1000;
           done.time_us += 1000;
           t->push_back(done);
         });
       }});
  catalog.push_back(
      {"clock-regression-slot0", "trace-clock-monotonicity", [] {
         return WithTrace([](std::vector<TraceEvent>* t) {
           FindEvent(*t, 3, EventState::kDone)->time_us = 1;
         });
       }});
  catalog.push_back(
      {"clock-regression-slot1", "trace-clock-monotonicity", [] {
         return WithTrace([](std::vector<TraceEvent>* t) {
           FindEvent(*t, 2, EventState::kDone)->time_us = 1;
         });
       }});
  catalog.push_back(
      {"write-read-race", "trace-write-race", [] {
         return WithTrace([](std::vector<TraceEvent>* t) {
           // Reader pc3 (slot 0) starts before writer pc2 (slot 1) is done
           // and no other path orders them: concurrent access to var c.
           MoveBefore(t, 3, EventState::kStart, 2, EventState::kDone);
         });
       }});
  catalog.push_back(
      {"write-write-race", "trace-write-race", [] {
         // Malformed double assignment executed concurrently: pc1 and pc2
         // both define var b, overlapping on different slots.
         Artifacts a;
         mal::Program p;
         int va = p.AddVariable(BatLng());
         p.Add("bat", "densebat", {va}, {Argument::Const(Value::Int(16))});
         int vb = p.AddVariable(BatLng());
         p.Add("bat", "mirror", {vb}, {Argument::Var(va)});
         p.Add("bat", "mirror", {vb}, {Argument::Var(va)});
         p.Add("io", "print", {}, {Argument::Var(vb)});
         a.trace = std::vector<TraceEvent>{
             Event(p, 0, 1000, 0, 0, EventState::kStart),
             Event(p, 10, 1010, 0, 0, EventState::kDone, 10),
             Event(p, 20, 1020, 1, 0, EventState::kStart),
             Event(p, 30, 1030, 2, 1, EventState::kStart),
             Event(p, 40, 1040, 1, 0, EventState::kDone, 20),
             Event(p, 50, 1050, 2, 1, EventState::kDone, 20),
             Event(p, 60, 1060, 3, 0, EventState::kStart),
             Event(p, 70, 1070, 3, 0, EventState::kDone, 10),
         };
         a.program = std::move(p);
         return a;
       }});
  catalog.push_back(
      {"span-partial-overlap", "span-interleaving", [] {
         Artifacts a;
         a.program = DiamondPlan();
         std::vector<SpanRecord> spans(2);
         spans[0] = {"bat.mirror", "kernel", 0, 1, 100, 50, 0};
         spans[1] = {"batcalc.add", "kernel", 0, 3, 120, 60, 1};  // straddles
         a.spans = std::move(spans);
         return a;
       }});
  catalog.push_back(
      {"span-cross-tid-retag", "span-interleaving", [] {
         // Two spans that legally overlapped on different tids; the second
         // is mis-tagged onto tid 0, producing a partial overlap there.
         Artifacts a;
         a.program = DiamondPlan();
         std::vector<SpanRecord> spans(3);
         spans[0] = {"bat.densebat", "kernel", 0, 0, 0, 40, 0};
         spans[1] = {"bat.mirror", "kernel", 0, 1, 50, 100, 1};
         spans[2] = {"bat.mirror", "kernel", 0, 2, 120, 100, 2};  // was tid 1
         a.spans = std::move(spans);
         return a;
       }});
  catalog.push_back(
      {"serialized-wide-plan", "schedule-serialization", [] {
         // Width-2 plan, two slots in use, yet never two instructions open
         // at once: the lost-concurrency anomaly.
         Artifacts a;
         a.program = DiamondPlan();
         const mal::Program& p = a.program;
         a.trace = std::vector<TraceEvent>{
             Event(p, 0, 1000, 0, 0, EventState::kStart),
             Event(p, 10, 1010, 0, 0, EventState::kDone, 10),
             Event(p, 20, 1020, 1, 1, EventState::kStart),
             Event(p, 30, 1030, 1, 1, EventState::kDone, 10),
             Event(p, 40, 1040, 2, 0, EventState::kStart),
             Event(p, 50, 1050, 2, 0, EventState::kDone, 10),
             Event(p, 60, 1060, 3, 1, EventState::kStart),
             Event(p, 70, 1070, 3, 1, EventState::kDone, 10),
         };
         return a;
       }});
  return catalog;
}

TEST(HbMutationTest, CatalogCoversAtLeastTwelveCorruptionClasses) {
  EXPECT_GE(MutationCatalog().size(), 12u);
}

TEST(HbMutationTest, EveryCorruptionIsCaughtByItsNamedCheck) {
  for (const HbMutation& m : MutationCatalog()) {
    std::vector<Diagnostic> diags = RunHb(m.build());
    EXPECT_FALSE(diags.empty()) << m.name << ": silent pass";
    EXPECT_TRUE(HasCheck(diags, m.expected_check))
        << m.name << ": expected " << m.expected_check << ", got\n"
        << analysis::FormatDiagnostics(diags);
  }
}

TEST(HbMutationTest, CleanParallelBaselineHasZeroFindings) {
  Artifacts a;
  a.program = DiamondPlan();
  a.trace = ParallelDiamondTrace(a.program);
  std::vector<Diagnostic> diags = RunHb(a);
  EXPECT_TRUE(diags.empty()) << analysis::FormatDiagnostics(diags);
}

TEST(HbMutationTest, SerialSingleSlotScheduleIsNotFlagged) {
  // dop=1 execution of a wide plan: serial is expected, not an anomaly.
  Artifacts a;
  a.program = DiamondPlan();
  const mal::Program& p = a.program;
  std::vector<TraceEvent> trace;
  for (int pc = 0; pc < 4; ++pc) {
    trace.push_back(
        Event(p, pc * 20, 1000 + pc * 20, pc, 0, EventState::kStart));
    trace.push_back(Event(p, pc * 20 + 10, 1010 + pc * 20, pc, 0,
                          EventState::kDone, 10));
  }
  a.trace = std::move(trace);
  std::vector<Diagnostic> diags = RunHb(a);
  EXPECT_TRUE(diags.empty()) << analysis::FormatDiagnostics(diags);
}

// ---------------------------------------------------------------------------
// Property test: random DAG plans, shuffled-but-legal schedules are clean
// ---------------------------------------------------------------------------

/// Random SSA DAG: instruction 0 is a source; each later instruction reads
/// 1..3 uniformly chosen earlier results. Dependencies are therefore dense
/// enough that most corruptions have an edge to violate.
mal::Program RandomDagPlan(SplitMix64* rng, int num_instructions) {
  mal::Program p;
  std::vector<int> defined;
  for (int i = 0; i < num_instructions; ++i) {
    int result = p.AddVariable(BatLng());
    if (defined.empty()) {
      p.Add("bat", "densebat", {result}, {Argument::Const(Value::Int(16))});
    } else {
      std::vector<Argument> args;
      int nargs = static_cast<int>(rng->NextRange(1, 3));
      for (int k = 0; k < nargs; ++k) {
        args.push_back(Argument::Var(
            defined[rng->NextBounded(defined.size())]));
      }
      p.Add("bat", "mirror", {result}, args);
    }
    defined.push_back(result);
  }
  return p;
}

/// Emits a random legal schedule: an instruction becomes ready only when
/// every producer is done, each open instruction holds an admission slot
/// (lowest free slot first, like the interpreter), and start/done pairs
/// carry that slot. Every interleaving this produces is one the dataflow
/// scheduler could legally have produced.
std::vector<TraceEvent> LegalSchedule(const mal::Program& p, SplitMix64* rng,
                                      int dop) {
  std::vector<std::vector<int>> deps = p.BuildDependencies();
  std::vector<int> indegree(p.size(), 0);
  std::vector<std::vector<int>> dependents(p.size());
  for (size_t pc = 0; pc < p.size(); ++pc) {
    indegree[pc] = static_cast<int>(deps[pc].size());
    for (int q : deps[pc]) {
      dependents[static_cast<size_t>(q)].push_back(static_cast<int>(pc));
    }
  }
  std::vector<int> ready;
  for (size_t pc = 0; pc < p.size(); ++pc) {
    if (indegree[pc] == 0) ready.push_back(static_cast<int>(pc));
  }
  std::vector<int> free_slots;
  for (int s = dop - 1; s >= 0; --s) free_slots.push_back(s);  // back = 0
  struct Open {
    int pc;
    int slot;
    int64_t started_us;
  };
  std::vector<Open> open;
  std::vector<TraceEvent> trace;
  int64_t seq = 0;
  while (!ready.empty() || !open.empty()) {
    bool can_start = !ready.empty() && !free_slots.empty();
    if (can_start && (open.empty() || rng->NextBool(0.6))) {
      size_t pick = rng->NextBounded(ready.size());
      int pc = ready[pick];
      ready.erase(ready.begin() + static_cast<ptrdiff_t>(pick));
      int slot = free_slots.back();
      free_slots.pop_back();
      int64_t now = 1000 + seq * 10;
      trace.push_back(Event(p, seq * 10, now, pc, slot, EventState::kStart));
      ++seq;
      open.push_back({pc, slot, now});
    } else {
      size_t pick = rng->NextBounded(open.size());
      Open done = open[pick];
      open.erase(open.begin() + static_cast<ptrdiff_t>(pick));
      int64_t now = 1000 + seq * 10;
      trace.push_back(Event(p, seq * 10, now, done.pc, done.slot,
                            EventState::kDone, now - done.started_us));
      ++seq;
      free_slots.push_back(done.slot);
      std::sort(free_slots.begin(), free_slots.end(),
                std::greater<int>());  // keep lowest slot at the back
      for (int dep : dependents[static_cast<size_t>(done.pc)]) {
        if (--indegree[static_cast<size_t>(dep)] == 0) ready.push_back(dep);
      }
    }
  }
  return trace;
}

TEST(HbPropertyTest, LegalShuffledSchedulesAreClean) {
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    SplitMix64 rng(seed);
    int size = static_cast<int>(rng.NextRange(4, 24));
    int dop = static_cast<int>(rng.NextRange(1, 4));
    Artifacts a;
    a.program = RandomDagPlan(&rng, size);
    a.trace = LegalSchedule(a.program, &rng, dop);
    std::vector<Diagnostic> diags = RunHb(a);
    EXPECT_TRUE(diags.empty())
        << "seed " << seed << " size " << size << " dop " << dop << "\n"
        << analysis::FormatDiagnostics(diags);
  }
}

TEST(HbPropertyTest, ViolatedEdgeIsAlwaysCaught) {
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    SplitMix64 rng(seed);
    int size = static_cast<int>(rng.NextRange(4, 24));
    int dop = static_cast<int>(rng.NextRange(1, 4));
    Artifacts a;
    a.program = RandomDagPlan(&rng, size);
    std::vector<TraceEvent> trace = LegalSchedule(a.program, &rng, dop);
    // Violate one random dependency edge: renumber the consumer's start to
    // just before the producer's done.
    std::vector<std::vector<int>> deps = a.program.BuildDependencies();
    int consumer = -1;
    while (consumer < 0) {
      int pc = static_cast<int>(rng.NextBounded(a.program.size()));
      if (!deps[static_cast<size_t>(pc)].empty()) consumer = pc;
    }
    int producer = deps[static_cast<size_t>(consumer)][0];
    MoveBefore(&trace, consumer, EventState::kStart, producer,
               EventState::kDone);
    a.trace = std::move(trace);
    std::vector<Diagnostic> diags = RunHb(a);
    EXPECT_TRUE(HasCheck(diags, "trace-dependency-violation"))
        << "seed " << seed << ": violated edge pc" << producer << " -> pc"
        << consumer << " passed silently\n"
        << analysis::FormatDiagnostics(diags);
  }
}

TEST(HbPropertyTest, LegalSchedulesRespectHappensBeforeEdges) {
  SplitMix64 rng(7);
  mal::Program p = RandomDagPlan(&rng, 16);
  std::vector<TraceEvent> trace = LegalSchedule(p, &rng, 3);
  ScheduleReport report = analysis::AnalyzeSchedule(p, trace);
  EXPECT_TRUE(report.violations.empty());
  std::vector<std::vector<int>> deps = p.BuildDependencies();
  for (size_t pc = 0; pc < p.size(); ++pc) {
    for (int q : deps[pc]) {
      EXPECT_TRUE(analysis::HappensBefore(
          report.executions[static_cast<size_t>(q)], report.executions[pc]))
          << "edge pc" << q << " -> pc" << pc;
    }
  }
}

}  // namespace
}  // namespace stetho
