#include <gtest/gtest.h>

#include "common/rng.h"
#include "dot/parser.h"
#include "dot/writer.h"
#include "layout/sugiyama.h"
#include "layout/svg.h"
#include "sql/compiler.h"
#include "tpch/dbgen.h"

namespace stetho::layout {
namespace {

dot::Graph Diamond() {
  dot::Graph g("diamond");
  g.AddNode("a").attrs["label"] = "root";
  g.AddNode("b").attrs["label"] = "left";
  g.AddNode("c").attrs["label"] = "right";
  g.AddNode("d").attrs["label"] = "sink";
  g.AddEdge("a", "b");
  g.AddEdge("a", "c");
  g.AddEdge("b", "d");
  g.AddEdge("c", "d");
  return g;
}

TEST(SugiyamaTest, EmptyGraph) {
  dot::Graph g;
  auto layout = LayoutGraph(g);
  ASSERT_TRUE(layout.ok());
  EXPECT_TRUE(layout.value().nodes.empty());
}

TEST(SugiyamaTest, DiamondLayers) {
  auto layout = LayoutGraph(Diamond());
  ASSERT_TRUE(layout.ok()) << layout.status().ToString();
  const GraphLayout& l = layout.value();
  ASSERT_EQ(l.nodes.size(), 4u);
  EXPECT_EQ(l.nodes[0].layer, 0);
  EXPECT_EQ(l.nodes[1].layer, 1);
  EXPECT_EQ(l.nodes[2].layer, 1);
  EXPECT_EQ(l.nodes[3].layer, 2);
  // Deeper layers have strictly larger y.
  EXPECT_LT(l.nodes[0].y, l.nodes[1].y);
  EXPECT_LT(l.nodes[1].y, l.nodes[3].y);
  // Same layer shares y.
  EXPECT_DOUBLE_EQ(l.nodes[1].y, l.nodes[2].y);
}

TEST(SugiyamaTest, NoOverlapWithinLayer) {
  auto layout = LayoutGraph(Diamond());
  ASSERT_TRUE(layout.ok());
  const auto& n1 = layout.value().nodes[1];
  const auto& n2 = layout.value().nodes[2];
  double gap = std::abs(n1.x - n2.x);
  EXPECT_GE(gap, (n1.width + n2.width) / 2.0);
}

TEST(SugiyamaTest, AllNodesInsideCanvas) {
  auto layout = LayoutGraph(Diamond());
  ASSERT_TRUE(layout.ok());
  for (const NodeLayout& n : layout.value().nodes) {
    EXPECT_GE(n.x - n.width / 2.0, 0.0);
    EXPECT_GE(n.y - n.height / 2.0, 0.0);
    EXPECT_LE(n.x + n.width / 2.0, layout.value().width);
    EXPECT_LE(n.y + n.height / 2.0, layout.value().height);
  }
}

TEST(SugiyamaTest, EdgesConnectPorts) {
  auto layout = LayoutGraph(Diamond());
  ASSERT_TRUE(layout.ok());
  const GraphLayout& l = layout.value();
  ASSERT_EQ(l.edges.size(), 4u);
  for (const EdgeLayout& e : l.edges) {
    ASSERT_EQ(e.points.size(), 2u);
    // Edge goes downward.
    EXPECT_LT(e.points[0].y, e.points[1].y);
  }
}

TEST(SugiyamaTest, RejectsCycles) {
  dot::Graph g;
  g.AddEdge("a", "b");
  g.AddEdge("b", "a");
  EXPECT_FALSE(LayoutGraph(g).ok());
}

TEST(SugiyamaTest, WideLabelWidthsClamped) {
  dot::Graph g;
  g.AddNode("a").attrs["label"] = std::string(500, 'x');
  LayoutOptions options;
  auto layout = LayoutGraph(g, options);
  ASSERT_TRUE(layout.ok());
  EXPECT_LE(layout.value().nodes[0].width, options.max_node_width);
}

TEST(SugiyamaTest, BarycenterReducesCrossingsOnRandomDags) {
  // Property: sweeps never leave more crossings than zero sweeps on a
  // batch of random layered DAGs.
  SplitMix64 rng(1234);
  for (int trial = 0; trial < 10; ++trial) {
    dot::Graph g;
    const int kLayers = 4;
    const int kPerLayer = 6;
    for (int l = 0; l < kLayers; ++l) {
      for (int i = 0; i < kPerLayer; ++i) {
        g.AddNode("n" + std::to_string(l * kPerLayer + i));
      }
    }
    for (int l = 0; l + 1 < kLayers; ++l) {
      for (int i = 0; i < kPerLayer; ++i) {
        for (int j = 0; j < kPerLayer; ++j) {
          if (rng.NextBool(0.3)) {
            g.AddEdge("n" + std::to_string(l * kPerLayer + i),
                      "n" + std::to_string((l + 1) * kPerLayer + j));
          }
        }
      }
    }
    LayoutOptions no_sweeps;
    no_sweeps.barycenter_sweeps = 0;
    LayoutOptions with_sweeps;
    with_sweeps.barycenter_sweeps = 4;
    auto before = LayoutGraph(g, no_sweeps);
    auto after = LayoutGraph(g, with_sweeps);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    EXPECT_LE(after.value().crossings, before.value().crossings)
        << "trial " << trial;
  }
}

TEST(SugiyamaTest, ScalesToThousandNodes) {
  // Feature claim §1(5): graphs with more than 1000 nodes are supported.
  dot::Graph g;
  const int kNodes = 1200;
  for (int i = 0; i < kNodes; ++i) {
    g.AddNode("n" + std::to_string(i)).attrs["label"] = "op" + std::to_string(i);
  }
  SplitMix64 rng(7);
  for (int i = 1; i < kNodes; ++i) {
    // Tree backbone plus extra edges; always parent < child so it's a DAG.
    int parent = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(i)));
    g.AddEdge("n" + std::to_string(parent), "n" + std::to_string(i));
  }
  auto layout = LayoutGraph(g);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout.value().nodes.size(), static_cast<size_t>(kNodes));
  EXPECT_GT(layout.value().width, 0);
}

// --- SVG ---

TEST(SvgTest, EmitsNodesAndEdges) {
  auto layout = LayoutGraph(Diamond());
  ASSERT_TRUE(layout.ok());
  std::string svg = LayoutToSvg(Diamond(), layout.value());
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("class=\"node\" id=\"a\""), std::string::npos);
  EXPECT_NE(svg.find("data-from=\"a\" data-to=\"b\""), std::string::npos);
  EXPECT_NE(svg.find(">root<"), std::string::npos);
}

TEST(SvgTest, FillColorFromNodeAttr) {
  dot::Graph g = Diamond();
  g.node(static_cast<size_t>(g.FindNode("b"))).attrs["fillcolor"] = "red";
  auto layout = LayoutGraph(g);
  ASSERT_TRUE(layout.ok());
  std::string svg = LayoutToSvg(g, layout.value());
  EXPECT_NE(svg.find("fill=\"red\""), std::string::npos);
}

TEST(SvgTest, ParseRoundTrip) {
  dot::Graph g = Diamond();
  auto layout = LayoutGraph(g);
  ASSERT_TRUE(layout.ok());
  std::string svg = LayoutToSvg(g, layout.value());
  auto doc = ParseSvg(svg);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc.value().nodes.size(), 4u);
  EXPECT_EQ(doc.value().edges.size(), 4u);
  EXPECT_DOUBLE_EQ(doc.value().width, layout.value().width);
  // Geometry survives.
  const SvgNode& first = doc.value().nodes[0];
  EXPECT_GT(first.width, 0);
  EXPECT_FALSE(first.label.empty());
}

TEST(SvgTest, SvgToGraphRebuildsTopology) {
  dot::Graph g = Diamond();
  auto layout = LayoutGraph(g);
  ASSERT_TRUE(layout.ok());
  auto doc = ParseSvg(LayoutToSvg(g, layout.value()));
  ASSERT_TRUE(doc.ok());
  dot::Graph back = SvgToGraph(doc.value());
  EXPECT_EQ(back.num_nodes(), g.num_nodes());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  int a = back.FindNode("a");
  ASSERT_GE(a, 0);
  EXPECT_EQ(back.node(static_cast<size_t>(a)).label(), "root");
  EXPECT_TRUE(back.TopologicalOrder().ok());
}

TEST(SvgTest, EscapedLabelsSurvive) {
  dot::Graph g;
  g.AddNode("x").attrs["label"] = "a < b & \"c\"";
  auto layout = LayoutGraph(g);
  ASSERT_TRUE(layout.ok());
  auto doc = ParseSvg(LayoutToSvg(g, layout.value()));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc.value().nodes[0].label, "a < b & \"c\"");
}

TEST(SvgTest, RejectsNonSvg) {
  EXPECT_FALSE(ParseSvg("<html></html>").ok());
  EXPECT_FALSE(ParseSvg("").ok());
}

// --- full paper workflow: dot -> svg -> in-memory graph ---

TEST(WorkflowTest, DotToSvgToGraphForCompiledQuery) {
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  auto cat = tpch::GenerateTpch(config);
  ASSERT_TRUE(cat.ok());
  auto program = sql::Compiler::CompileSql(
      &cat.value(), "select l_tax from lineitem where l_partkey = 1");
  ASSERT_TRUE(program.ok());

  // Step 1: dot file parsing.
  auto graph = dot::ParseDot(dot::ProgramToDot(program.value()));
  ASSERT_TRUE(graph.ok());
  // Step 2: intermediate svg representation.
  auto layout = LayoutGraph(graph.value());
  ASSERT_TRUE(layout.ok());
  std::string svg = LayoutToSvg(graph.value(), layout.value());
  // Step 3: svg parsed into the in-memory graph structure.
  auto doc = ParseSvg(svg);
  ASSERT_TRUE(doc.ok());
  dot::Graph final_graph = SvgToGraph(doc.value());
  EXPECT_EQ(final_graph.num_nodes(), program.value().size());
  EXPECT_FALSE(final_graph.Roots().empty());
}

}  // namespace
}  // namespace stetho::layout
