#include <gtest/gtest.h>

#include "common/rng.h"
#include "dot/parser.h"
#include "dot/writer.h"
#include "engine/worker_pool.h"
#include "layout/layout_cache.h"
#include "layout/sugiyama.h"
#include "layout/svg.h"
#include "obs/metrics.h"
#include "sql/compiler.h"
#include "tpch/dbgen.h"

namespace stetho::layout {
namespace {

dot::Graph Diamond() {
  dot::Graph g("diamond");
  g.AddNode("a").attrs["label"] = "root";
  g.AddNode("b").attrs["label"] = "left";
  g.AddNode("c").attrs["label"] = "right";
  g.AddNode("d").attrs["label"] = "sink";
  g.AddEdge("a", "b");
  g.AddEdge("a", "c");
  g.AddEdge("b", "d");
  g.AddEdge("c", "d");
  return g;
}

TEST(SugiyamaTest, EmptyGraph) {
  dot::Graph g;
  auto layout = LayoutGraph(g);
  ASSERT_TRUE(layout.ok());
  EXPECT_TRUE(layout.value().nodes.empty());
}

TEST(SugiyamaTest, DiamondLayers) {
  auto layout = LayoutGraph(Diamond());
  ASSERT_TRUE(layout.ok()) << layout.status().ToString();
  const GraphLayout& l = layout.value();
  ASSERT_EQ(l.nodes.size(), 4u);
  EXPECT_EQ(l.nodes[0].layer, 0);
  EXPECT_EQ(l.nodes[1].layer, 1);
  EXPECT_EQ(l.nodes[2].layer, 1);
  EXPECT_EQ(l.nodes[3].layer, 2);
  // Deeper layers have strictly larger y.
  EXPECT_LT(l.nodes[0].y, l.nodes[1].y);
  EXPECT_LT(l.nodes[1].y, l.nodes[3].y);
  // Same layer shares y.
  EXPECT_DOUBLE_EQ(l.nodes[1].y, l.nodes[2].y);
}

TEST(SugiyamaTest, NoOverlapWithinLayer) {
  auto layout = LayoutGraph(Diamond());
  ASSERT_TRUE(layout.ok());
  const auto& n1 = layout.value().nodes[1];
  const auto& n2 = layout.value().nodes[2];
  double gap = std::abs(n1.x - n2.x);
  EXPECT_GE(gap, (n1.width + n2.width) / 2.0);
}

TEST(SugiyamaTest, AllNodesInsideCanvas) {
  auto layout = LayoutGraph(Diamond());
  ASSERT_TRUE(layout.ok());
  for (const NodeLayout& n : layout.value().nodes) {
    EXPECT_GE(n.x - n.width / 2.0, 0.0);
    EXPECT_GE(n.y - n.height / 2.0, 0.0);
    EXPECT_LE(n.x + n.width / 2.0, layout.value().width);
    EXPECT_LE(n.y + n.height / 2.0, layout.value().height);
  }
}

TEST(SugiyamaTest, EdgesConnectPorts) {
  auto layout = LayoutGraph(Diamond());
  ASSERT_TRUE(layout.ok());
  const GraphLayout& l = layout.value();
  ASSERT_EQ(l.edges.size(), 4u);
  for (const EdgeLayout& e : l.edges) {
    ASSERT_EQ(e.points.size(), 2u);
    // Edge goes downward.
    EXPECT_LT(e.points[0].y, e.points[1].y);
  }
}

TEST(SugiyamaTest, RejectsCycles) {
  dot::Graph g;
  g.AddEdge("a", "b");
  g.AddEdge("b", "a");
  EXPECT_FALSE(LayoutGraph(g).ok());
}

TEST(SugiyamaTest, WideLabelWidthsClamped) {
  dot::Graph g;
  g.AddNode("a").attrs["label"] = std::string(500, 'x');
  LayoutOptions options;
  auto layout = LayoutGraph(g, options);
  ASSERT_TRUE(layout.ok());
  EXPECT_LE(layout.value().nodes[0].width, options.max_node_width);
}

TEST(SugiyamaTest, BarycenterReducesCrossingsOnRandomDags) {
  // Property: sweeps never leave more crossings than zero sweeps on a
  // batch of random layered DAGs.
  SplitMix64 rng(1234);
  for (int trial = 0; trial < 10; ++trial) {
    dot::Graph g;
    const int kLayers = 4;
    const int kPerLayer = 6;
    for (int l = 0; l < kLayers; ++l) {
      for (int i = 0; i < kPerLayer; ++i) {
        g.AddNode("n" + std::to_string(l * kPerLayer + i));
      }
    }
    for (int l = 0; l + 1 < kLayers; ++l) {
      for (int i = 0; i < kPerLayer; ++i) {
        for (int j = 0; j < kPerLayer; ++j) {
          if (rng.NextBool(0.3)) {
            g.AddEdge("n" + std::to_string(l * kPerLayer + i),
                      "n" + std::to_string((l + 1) * kPerLayer + j));
          }
        }
      }
    }
    LayoutOptions no_sweeps;
    no_sweeps.barycenter_sweeps = 0;
    LayoutOptions with_sweeps;
    with_sweeps.barycenter_sweeps = 4;
    auto before = LayoutGraph(g, no_sweeps);
    auto after = LayoutGraph(g, with_sweeps);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    EXPECT_LE(after.value().crossings, before.value().crossings)
        << "trial " << trial;
  }
}

TEST(SugiyamaTest, ScalesToThousandNodes) {
  // Feature claim §1(5): graphs with more than 1000 nodes are supported.
  dot::Graph g;
  const int kNodes = 1200;
  for (int i = 0; i < kNodes; ++i) {
    g.AddNode("n" + std::to_string(i)).attrs["label"] = "op" + std::to_string(i);
  }
  SplitMix64 rng(7);
  for (int i = 1; i < kNodes; ++i) {
    // Tree backbone plus extra edges; always parent < child so it's a DAG.
    int parent = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(i)));
    g.AddEdge("n" + std::to_string(parent), "n" + std::to_string(i));
  }
  auto layout = LayoutGraph(g);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout.value().nodes.size(), static_cast<size_t>(kNodes));
  EXPECT_GT(layout.value().width, 0);
}

dot::Graph RandomLayeredDag(uint64_t seed, int layers, int per_layer,
                            double edge_prob) {
  SplitMix64 rng(seed);
  dot::Graph g;
  for (int l = 0; l < layers; ++l) {
    for (int i = 0; i < per_layer; ++i) {
      g.AddNode("n" + std::to_string(l * per_layer + i));
    }
  }
  for (int l = 0; l + 1 < layers; ++l) {
    for (int i = 0; i < per_layer; ++i) {
      for (int j = 0; j < per_layer; ++j) {
        if (rng.NextBool(edge_prob)) {
          g.AddEdge("n" + std::to_string(l * per_layer + i),
                    "n" + std::to_string((l + 1) * per_layer + j));
        }
      }
    }
  }
  return g;
}

TEST(CrossingCountTest, TreeMatchesNaiveOracle) {
  // The Fenwick-tree counter must agree with the O(E^2) oracle on every
  // layout, sweep-optimized or not.
  SplitMix64 rng(99);
  for (int trial = 0; trial < 12; ++trial) {
    dot::Graph g = RandomLayeredDag(1000 + trial, 3 + trial % 4,
                                    4 + trial % 5, 0.25 + 0.05 * (trial % 3));
    for (int sweeps : {0, 4}) {
      LayoutOptions options;
      options.barycenter_sweeps = sweeps;
      auto layout = LayoutGraph(g, options);
      ASSERT_TRUE(layout.ok()) << layout.status().ToString();
      EXPECT_EQ(CountCrossings(g, layout.value()),
                CountCrossingsNaive(g, layout.value()))
          << "trial " << trial << " sweeps " << sweeps;
    }
  }
}

TEST(CrossingCountTest, ReportedCrossingsMatchOracle) {
  dot::Graph g = RandomLayeredDag(42, 5, 6, 0.3);
  auto layout = LayoutGraph(g);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout.value().crossings,
            CountCrossingsNaive(g, layout.value()));
}

TEST(SugiyamaTest, ParallelOrderingMatchesSequential) {
  // The worker-pool sweep path must be bit-identical to the sequential
  // one — parallelism only changes wall-clock, never geometry.
  dot::Graph g = RandomLayeredDag(7, 6, 8, 0.25);
  engine::WorkerPool pool;
  pool.EnsureWorkers(3);
  LayoutOptions sequential;
  sequential.parallel_min_nodes = 1 << 30;
  LayoutOptions parallel;
  parallel.parallel_min_nodes = 1;
  parallel.pool = &pool;
  auto a = LayoutGraph(g, sequential);
  auto b = LayoutGraph(g, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().nodes.size(), b.value().nodes.size());
  EXPECT_EQ(a.value().crossings, b.value().crossings);
  for (size_t i = 0; i < a.value().nodes.size(); ++i) {
    EXPECT_EQ(a.value().nodes[i].layer, b.value().nodes[i].layer) << i;
    EXPECT_DOUBLE_EQ(a.value().nodes[i].x, b.value().nodes[i].x) << i;
    EXPECT_DOUBLE_EQ(a.value().nodes[i].y, b.value().nodes[i].y) << i;
  }
}

TEST(SugiyamaTest, EarlyExitNeverWorseThanFullSweeps) {
  // barycenter_sweeps is a ceiling: a huge budget must never end worse
  // than the default (convergence detection keeps the best ordering).
  dot::Graph g = RandomLayeredDag(21, 5, 7, 0.3);
  LayoutOptions defaults;
  LayoutOptions generous;
  generous.barycenter_sweeps = 32;
  auto a = LayoutGraph(g, defaults);
  auto b = LayoutGraph(g, generous);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(b.value().crossings, a.value().crossings);
}

// --- layout cache ---

TEST(LayoutCacheTest, HitReturnsIdenticalGeometry) {
  LayoutCache cache(4);
  dot::Graph g = RandomLayeredDag(5, 4, 5, 0.3);
  obs::Counter* hits = obs::Registry::Default()->GetOrCreateCounter(
      "stetho_layout_cache_hits_total", "");
  obs::Counter* misses = obs::Registry::Default()->GetOrCreateCounter(
      "stetho_layout_cache_misses_total", "");
  int64_t hits0 = hits->value();
  int64_t misses0 = misses->value();

  auto first = cache.GetOrCompute(g);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(misses->value() - misses0, 1);
  auto second = cache.GetOrCompute(g);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(hits->value() - hits0, 1);
  // Same shared layout object — bit-identical geometry by construction.
  EXPECT_EQ(first.value().get(), second.value().get());

  auto oracle = LayoutGraph(g);
  ASSERT_TRUE(oracle.ok());
  ASSERT_EQ(first.value()->nodes.size(), oracle.value().nodes.size());
  for (size_t i = 0; i < oracle.value().nodes.size(); ++i) {
    EXPECT_DOUBLE_EQ(first.value()->nodes[i].x, oracle.value().nodes[i].x);
    EXPECT_DOUBLE_EQ(first.value()->nodes[i].y, oracle.value().nodes[i].y);
  }
}

TEST(LayoutCacheTest, DistinctOptionsMissDistinctEntries) {
  LayoutCache cache(4);
  dot::Graph g = RandomLayeredDag(6, 4, 5, 0.3);
  LayoutOptions wide;
  wide.node_gap = 40;
  ASSERT_TRUE(cache.GetOrCompute(g).ok());
  ASSERT_TRUE(cache.GetOrCompute(g, wide).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(LayoutCache::HashKey(g, {}), LayoutCache::HashKey(g, wide));
}

TEST(LayoutCacheTest, LruEvictsOldest) {
  LayoutCache cache(2);
  dot::Graph a = RandomLayeredDag(1, 3, 4, 0.3);
  dot::Graph b = RandomLayeredDag(2, 3, 4, 0.3);
  dot::Graph c = RandomLayeredDag(3, 3, 4, 0.3);
  auto pa = cache.GetOrCompute(a);
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(cache.GetOrCompute(b).ok());
  // Touch `a` so `b` is the LRU entry, then insert `c`.
  auto pa2 = cache.GetOrCompute(a);
  ASSERT_TRUE(pa2.ok());
  EXPECT_EQ(pa.value().get(), pa2.value().get());
  ASSERT_TRUE(cache.GetOrCompute(c).ok());
  EXPECT_EQ(cache.size(), 2u);
  // `a` survives (recently used); a recompute of `a` is still a hit.
  auto pa3 = cache.GetOrCompute(a);
  ASSERT_TRUE(pa3.ok());
  EXPECT_EQ(pa.value().get(), pa3.value().get());
}

TEST(LayoutCacheTest, ZeroCapacityAlwaysComputes) {
  LayoutCache cache(0);
  dot::Graph g = RandomLayeredDag(8, 3, 4, 0.3);
  auto a = cache.GetOrCompute(g);
  auto b = cache.GetOrCompute(g);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value().get(), b.value().get());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LayoutCacheTest, PropagatesLayoutErrors) {
  LayoutCache cache(4);
  dot::Graph cyclic;
  cyclic.AddEdge("a", "b");
  cyclic.AddEdge("b", "a");
  EXPECT_FALSE(cache.GetOrCompute(cyclic).ok());
  EXPECT_EQ(cache.size(), 0u);
}

// --- SVG ---

TEST(SvgTest, EmitsNodesAndEdges) {
  auto layout = LayoutGraph(Diamond());
  ASSERT_TRUE(layout.ok());
  std::string svg = LayoutToSvg(Diamond(), layout.value());
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("class=\"node\" id=\"a\""), std::string::npos);
  EXPECT_NE(svg.find("data-from=\"a\" data-to=\"b\""), std::string::npos);
  EXPECT_NE(svg.find(">root<"), std::string::npos);
}

TEST(SvgTest, FillColorFromNodeAttr) {
  dot::Graph g = Diamond();
  g.node(static_cast<size_t>(g.FindNode("b"))).attrs["fillcolor"] = "red";
  auto layout = LayoutGraph(g);
  ASSERT_TRUE(layout.ok());
  std::string svg = LayoutToSvg(g, layout.value());
  EXPECT_NE(svg.find("fill=\"red\""), std::string::npos);
}

TEST(SvgTest, ParseRoundTrip) {
  dot::Graph g = Diamond();
  auto layout = LayoutGraph(g);
  ASSERT_TRUE(layout.ok());
  std::string svg = LayoutToSvg(g, layout.value());
  auto doc = ParseSvg(svg);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc.value().nodes.size(), 4u);
  EXPECT_EQ(doc.value().edges.size(), 4u);
  EXPECT_DOUBLE_EQ(doc.value().width, layout.value().width);
  // Geometry survives.
  const SvgNode& first = doc.value().nodes[0];
  EXPECT_GT(first.width, 0);
  EXPECT_FALSE(first.label.empty());
}

TEST(SvgTest, SvgToGraphRebuildsTopology) {
  dot::Graph g = Diamond();
  auto layout = LayoutGraph(g);
  ASSERT_TRUE(layout.ok());
  auto doc = ParseSvg(LayoutToSvg(g, layout.value()));
  ASSERT_TRUE(doc.ok());
  dot::Graph back = SvgToGraph(doc.value());
  EXPECT_EQ(back.num_nodes(), g.num_nodes());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  int a = back.FindNode("a");
  ASSERT_GE(a, 0);
  EXPECT_EQ(back.node(static_cast<size_t>(a)).label(), "root");
  EXPECT_TRUE(back.TopologicalOrder().ok());
}

TEST(SvgTest, EscapedLabelsSurvive) {
  dot::Graph g;
  g.AddNode("x").attrs["label"] = "a < b & \"c\"";
  auto layout = LayoutGraph(g);
  ASSERT_TRUE(layout.ok());
  auto doc = ParseSvg(LayoutToSvg(g, layout.value()));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc.value().nodes[0].label, "a < b & \"c\"");
}

TEST(SvgTest, RejectsNonSvg) {
  EXPECT_FALSE(ParseSvg("<html></html>").ok());
  EXPECT_FALSE(ParseSvg("").ok());
}

// --- full paper workflow: dot -> svg -> in-memory graph ---

TEST(WorkflowTest, DotToSvgToGraphForCompiledQuery) {
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  auto cat = tpch::GenerateTpch(config);
  ASSERT_TRUE(cat.ok());
  auto program = sql::Compiler::CompileSql(
      &cat.value(), "select l_tax from lineitem where l_partkey = 1");
  ASSERT_TRUE(program.ok());

  // Step 1: dot file parsing.
  auto graph = dot::ParseDot(dot::ProgramToDot(program.value()));
  ASSERT_TRUE(graph.ok());
  // Step 2: intermediate svg representation.
  auto layout = LayoutGraph(graph.value());
  ASSERT_TRUE(layout.ok());
  std::string svg = LayoutToSvg(graph.value(), layout.value());
  // Step 3: svg parsed into the in-memory graph structure.
  auto doc = ParseSvg(svg);
  ASSERT_TRUE(doc.ok());
  dot::Graph final_graph = SvgToGraph(doc.value());
  EXPECT_EQ(final_graph.num_nodes(), program.value().size());
  EXPECT_FALSE(final_graph.Roots().empty());
}

}  // namespace
}  // namespace stetho::layout
