#include <gtest/gtest.h>

#include "profiler/sink.h"
#include "scope/timeline.h"
#include "server/mserver.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace stetho::scope {
namespace {

using profiler::EventState;
using profiler::TraceEvent;

TraceEvent Done(int pc, int thread, int64_t end_us, int64_t usec,
                const char* stmt = "X_1 := algebra.select(X_0);") {
  TraceEvent e;
  e.pc = pc;
  e.thread = thread;
  e.state = EventState::kDone;
  e.time_us = end_us;
  e.usec = usec;
  e.stmt = stmt;
  return e;
}

TEST(TimelineTest, ExtractIntervalsFromDoneEvents) {
  std::vector<TraceEvent> events = {
      Done(0, 0, 100, 100),
      Done(1, 1, 180, 60),
      Done(2, 0, 300, 50),
  };
  auto intervals = ExtractIntervals(events);
  ASSERT_EQ(intervals.size(), 3u);
  // Sorted by (thread, start); timestamps relative to trace start.
  EXPECT_EQ(intervals[0].thread, 0);
  EXPECT_EQ(intervals[0].start_us, 0);
  EXPECT_EQ(intervals[0].end_us, 0);  // t0 = 100 → end 0? see below
}

TEST(TimelineTest, IntervalsRelativeToEarliestEvent) {
  std::vector<TraceEvent> events;
  TraceEvent start;
  start.pc = 0;
  start.state = EventState::kStart;
  start.time_us = 1000;
  events.push_back(start);
  events.push_back(Done(0, 0, 1100, 100));
  auto intervals = ExtractIntervals(events);
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0].start_us, 0);
  EXPECT_EQ(intervals[0].end_us, 100);
  EXPECT_EQ(intervals[0].op, "algebra.select");
}

TEST(TimelineTest, ClampsNegativeStarts) {
  std::vector<TraceEvent> events = {Done(0, 0, 10, 500)};
  auto intervals = ExtractIntervals(events);
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0].start_us, 0);
}

TEST(TimelineTest, SvgHasLanePerThreadAndRectPerInstruction) {
  std::vector<TraceEvent> events = {
      Done(0, 0, 100, 50),
      Done(1, 1, 150, 70),
      Done(2, 2, 220, 40),
      Done(3, 1, 400, 90),
  };
  std::string svg = RenderUtilizationTimeline(events);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  for (const char* label : {"thread 0", "thread 1", "thread 2"}) {
    EXPECT_NE(svg.find(label), std::string::npos) << label;
  }
  size_t rects = 0;
  for (size_t pos = 0; (pos = svg.find("class=\"interval\"", pos)) !=
                       std::string::npos;
       ++pos) {
    ++rects;
  }
  EXPECT_EQ(rects, 4u);
  EXPECT_NE(svg.find("<title>pc=3"), std::string::npos);
}

TEST(TimelineTest, EmptyTraceYieldsValidSvg) {
  std::string svg = RenderUtilizationTimeline({});
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("0 instructions"), std::string::npos);
}

TEST(TimelineTest, MemoryCurve) {
  std::vector<TraceEvent> events;
  for (int i = 0; i < 5; ++i) {
    TraceEvent e = Done(i, 0, 100 * (i + 1), 10);
    e.rss_bytes = (i == 2) ? 5000 : 1000;  // peak in the middle
    events.push_back(e);
  }
  std::string svg = RenderMemoryCurve(events);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("peak 5000 bytes"), std::string::npos);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
}

TEST(TimelineTest, MemoryCurveEmpty) {
  std::string svg = RenderMemoryCurve({});
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_EQ(svg.find("<polyline"), std::string::npos);
}

TEST(TimelineTest, RealQueryTimeline) {
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  auto cat = tpch::GenerateTpch(config);
  ASSERT_TRUE(cat.ok());
  server::MserverOptions options;
  options.dop = 2;
  options.mitosis_pieces = 4;
  server::Mserver server(std::move(cat.value()), options);
  auto ring = std::make_shared<profiler::RingBufferSink>(1 << 14);
  server.profiler()->AddSink(ring);
  auto outcome = server.ExecuteSql(tpch::GetQuery("q6").value().sql);
  ASSERT_TRUE(outcome.ok());
  auto events = ring->Snapshot();
  auto intervals = ExtractIntervals(events);
  EXPECT_EQ(intervals.size(), outcome.value().plan.size());
  std::string svg = RenderUtilizationTimeline(events);
  EXPECT_NE(svg.find("algebra.select"), std::string::npos);
}

}  // namespace
}  // namespace stetho::scope
