// Property-based and parameterized sweeps across module invariants.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "dot/graph.h"
#include "dot/parser.h"
#include "dot/writer.h"
#include "engine/interpreter.h"
#include "layout/sugiyama.h"
#include "layout/svg.h"
#include "mal/parser.h"
#include "optimizer/pass.h"
#include "profiler/event.h"
#include "scope/coloring.h"
#include "sql/compiler.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "viz/lens.h"

namespace stetho {
namespace {

using profiler::EventState;
using profiler::TraceEvent;

// ---------------------------------------------------------------------------
// Query sweep: every TPC-H query must produce identical results under every
// execution strategy (sequential, dataflow, dataflow + mitosis).
// ---------------------------------------------------------------------------

class QueryEquivalenceTest : public ::testing::TestWithParam<const char*> {
 protected:
  static void SetUpTestSuite() {
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    auto cat = tpch::GenerateTpch(config);
    ASSERT_TRUE(cat.ok());
    catalog_ = new storage::Catalog(std::move(cat.value()));
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }
  static storage::Catalog* catalog_;
};

storage::Catalog* QueryEquivalenceTest::catalog_ = nullptr;

void ExpectSameResults(const engine::QueryResult& a,
                       const engine::QueryResult& b, const std::string& tag) {
  ASSERT_EQ(a.columns.size(), b.columns.size()) << tag;
  for (size_t c = 0; c < a.columns.size(); ++c) {
    const auto& ca = a.columns[c];
    const auto& cb = b.columns[c];
    ASSERT_EQ(ca.is_scalar, cb.is_scalar) << tag;
    if (ca.is_scalar) {
      EXPECT_EQ(ca.scalar.Compare(cb.scalar), 0) << tag;
      continue;
    }
    ASSERT_EQ(ca.column->size(), cb.column->size()) << tag << " col " << c;
    for (size_t i = 0; i < ca.column->size(); ++i) {
      ASSERT_EQ(ca.column->GetValue(i), cb.column->GetValue(i))
          << tag << " col " << c << " row " << i;
    }
  }
}

TEST_P(QueryEquivalenceTest, AllSchedulersAgree) {
  const std::string sql = tpch::GetQuery(GetParam()).value().sql;
  auto base = sql::Compiler::CompileSql(catalog_, sql);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  engine::Interpreter interp(catalog_);
  engine::ExecOptions seq;
  seq.use_dataflow = false;
  auto ref = interp.Execute(base.value(), seq);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  engine::ExecOptions par;
  par.num_threads = 4;
  auto dataflow = interp.Execute(base.value(), par);
  ASSERT_TRUE(dataflow.ok());
  ExpectSameResults(ref.value(), dataflow.value(), "dataflow");

  for (int pieces : {2, 7, 16}) {
    mal::Program optimized = base.value();
    optimizer::Pipeline pipeline = optimizer::Pipeline::Default(pieces);
    auto fired = pipeline.Run(&optimized);
    ASSERT_TRUE(fired.ok()) << fired.status().ToString();
    auto split = interp.Execute(optimized, par);
    ASSERT_TRUE(split.ok()) << split.status().ToString();
    ExpectSameResults(ref.value(), split.value(),
                      "mitosis x" + std::to_string(pieces));
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, QueryEquivalenceTest,
                         ::testing::Values("paper", "q1", "q3", "q5", "q6",
                                           "q12", "q14", "big_group",
                                           "scan_heavy", "q18", "q11",
                                           "q16", "distinct_flags"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Trace-line round trip over randomized events.
// ---------------------------------------------------------------------------

class TraceRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TraceRoundTripTest, FormatParseIdentity) {
  SplitMix64 rng(GetParam());
  const char* stmts[] = {
      "X_1 := sql.mvc();",
      "X_9:bat[:oid] := algebra.thetaselect(X_2,X_8,1,\"==\");",
      "io.print(X_5);",
      "X_4:bat[:str] := sql.bind(X_0,\"sys\",\"lineitem\",\"l_comment\",0);",
      "weird \"quotes\" and \\ backslashes",
  };
  for (int i = 0; i < 200; ++i) {
    TraceEvent e;
    e.event = static_cast<int64_t>(rng.Next() >> 1);
    e.time_us = static_cast<int64_t>(rng.Next() >> 1);
    e.pc = static_cast<int>(rng.NextBounded(10000));
    e.thread = static_cast<int>(rng.NextBounded(64));
    e.state = rng.NextBool(0.5) ? EventState::kStart : EventState::kDone;
    e.usec = static_cast<int64_t>(rng.NextBounded(1 << 30));
    e.rss_bytes = static_cast<int64_t>(rng.NextBounded(1ULL << 40));
    e.stmt = stmts[rng.NextBounded(5)];
    auto back = profiler::ParseTraceLine(profiler::FormatTraceLine(e));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    ASSERT_EQ(back.value(), e);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceRoundTripTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// ---------------------------------------------------------------------------
// Layout invariants over random DAGs.
// ---------------------------------------------------------------------------

struct LayoutCase {
  int nodes;
  uint64_t seed;
};

class LayoutInvariantTest : public ::testing::TestWithParam<LayoutCase> {};

dot::Graph RandomDag(int n, uint64_t seed) {
  SplitMix64 rng(seed);
  dot::Graph g;
  for (int i = 0; i < n; ++i) {
    g.AddNode("n" + std::to_string(i)).attrs["label"] =
        std::string(1 + rng.NextBounded(40), 'x');
  }
  for (int i = 1; i < n; ++i) {
    int parent = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(i)));
    g.AddEdge("n" + std::to_string(parent), "n" + std::to_string(i));
    if (rng.NextBool(0.3)) {
      int extra = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(i)));
      g.AddEdge("n" + std::to_string(extra), "n" + std::to_string(i));
    }
  }
  return g;
}

TEST_P(LayoutInvariantTest, StructuralInvariantsHold) {
  dot::Graph g = RandomDag(GetParam().nodes, GetParam().seed);
  auto layout = layout::LayoutGraph(g);
  ASSERT_TRUE(layout.ok());
  const layout::GraphLayout& l = layout.value();

  // 1. Every node inside the canvas.
  for (const layout::NodeLayout& n : l.nodes) {
    EXPECT_GE(n.x - n.width / 2, -1e-6);
    EXPECT_GE(n.y - n.height / 2, -1e-6);
    EXPECT_LE(n.x + n.width / 2, l.width + 1e-6);
    EXPECT_LE(n.y + n.height / 2, l.height + 1e-6);
  }
  // 2. No horizontal overlap within a layer; same layer implies same y.
  std::map<int, std::vector<const layout::NodeLayout*>> by_layer;
  for (const layout::NodeLayout& n : l.nodes) by_layer[n.layer].push_back(&n);
  for (auto& [layer, nodes] : by_layer) {
    for (size_t i = 0; i < nodes.size(); ++i) {
      EXPECT_DOUBLE_EQ(nodes[i]->y, nodes[0]->y);
      for (size_t j = i + 1; j < nodes.size(); ++j) {
        double gap = std::abs(nodes[i]->x - nodes[j]->x);
        EXPECT_GE(gap + 1e-6, (nodes[i]->width + nodes[j]->width) / 2)
            << "overlap in layer " << layer;
      }
    }
  }
  // 3. Edges strictly descend (longest-path layering guarantees child layer
  //    > parent layer).
  for (const layout::EdgeLayout& e : l.edges) {
    ASSERT_EQ(e.points.size(), 2u);
    EXPECT_LT(e.points[0].y, e.points[1].y);
  }
  // 4. SVG round trip preserves topology.
  auto doc = layout::ParseSvg(layout::LayoutToSvg(g, l));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().nodes.size(), g.num_nodes());
  EXPECT_EQ(doc.value().edges.size(), g.num_edges());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LayoutInvariantTest,
    ::testing::Values(LayoutCase{2, 1}, LayoutCase{10, 2}, LayoutCase{10, 99},
                      LayoutCase{60, 3}, LayoutCase{60, 77},
                      LayoutCase{250, 4}, LayoutCase{250, 123},
                      LayoutCase{1000, 5}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.nodes) + "_s" +
             std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------------
// Coloring invariants over random well-formed traces.
// ---------------------------------------------------------------------------

class ColoringInvariantTest : public ::testing::TestWithParam<uint64_t> {};

/// Random well-formed trace: every start is eventually closed by its done.
std::vector<TraceEvent> RandomCompleteTrace(uint64_t seed, size_t n_instr) {
  SplitMix64 rng(seed);
  std::vector<TraceEvent> events;
  std::vector<int> open;
  int pc = 0;
  size_t started = 0;
  while (started < n_instr || !open.empty()) {
    bool can_start = started < n_instr;
    bool do_start = can_start && (open.empty() || rng.NextBool(0.5));
    TraceEvent e;
    e.time_us = static_cast<int64_t>(events.size()) * 5;
    e.thread = static_cast<int>(rng.NextBounded(4));
    e.stmt = "X := m.f();";
    if (do_start) {
      e.pc = pc++;
      e.state = EventState::kStart;
      open.push_back(e.pc);
      ++started;
    } else {
      size_t pick = rng.NextBounded(open.size());
      e.pc = open[pick];
      open.erase(open.begin() + static_cast<long>(pick));
      e.state = EventState::kDone;
      e.usec = static_cast<int64_t>(rng.NextBounded(5000));
    }
    events.push_back(std::move(e));
  }
  return events;
}

TEST_P(ColoringInvariantTest, PairSequenceProperties) {
  auto events = RandomCompleteTrace(GetParam(), 300);
  auto decisions = scope::PairSequenceColoring(events);

  // Every decided pc occurs in the buffer.
  std::map<int, int> occurrences;
  for (const TraceEvent& e : events) ++occurrences[e.pc];
  std::map<int, viz::Color> last;
  for (const auto& d : decisions) {
    ASSERT_TRUE(occurrences.count(d.pc)) << d.pc;
    ASSERT_TRUE(d.color == viz::Color::Red() || d.color == viz::Color::Green());
    last[d.pc] = d.color;
  }
  // In a complete trace every colored instruction's final state is GREEN:
  // its done event always follows any unpaired start.
  for (const auto& [pc, color] : last) {
    EXPECT_EQ(color, viz::Color::Green()) << pc;
  }
}

TEST_P(ColoringInvariantTest, ThresholdProperties) {
  auto events = RandomCompleteTrace(GetParam(), 300);
  const int64_t threshold = 2500;
  auto decisions = scope::ThresholdColoring(events, threshold);
  // RED decisions correspond exactly to done events meeting the threshold;
  // complete traces leave nothing running, so no ORANGE.
  size_t expected_red = 0;
  for (const TraceEvent& e : events) {
    if (e.state == EventState::kDone && e.usec >= threshold) ++expected_red;
  }
  size_t red = 0;
  for (const auto& d : decisions) {
    EXPECT_NE(d.color, viz::Color::Orange());
    if (d.color == viz::Color::Red()) ++red;
  }
  EXPECT_EQ(red, expected_red);
}

TEST_P(ColoringInvariantTest, GradientBounds) {
  auto events = RandomCompleteTrace(GetParam(), 300);
  auto decisions = scope::GradientColoring(events);
  for (const auto& d : decisions) {
    // Every gradient color lies on the white→red ramp: g == b, r >= g.
    EXPECT_EQ(d.color.g, d.color.b);
    EXPECT_GE(d.color.r, d.color.g);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColoringInvariantTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// ---------------------------------------------------------------------------
// MAL listing round trip over compiler output for every query.
// ---------------------------------------------------------------------------

class MalRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MalRoundTripTest, PrintParsePrintFixpoint) {
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  auto cat = tpch::GenerateTpch(config);
  ASSERT_TRUE(cat.ok());
  auto program = sql::Compiler::CompileSql(
      &cat.value(), tpch::GetQuery(GetParam()).value().sql);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  // Also exercise optimized plans (mitosis renames/multiplies variables).
  optimizer::Pipeline pipeline = optimizer::Pipeline::Default(3);
  mal::Program plan = std::move(program).value();
  ASSERT_TRUE(pipeline.Run(&plan).ok());

  std::string text = plan.ToString();
  auto parsed = mal::ParseProgram(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().ToString(), text);
  EXPECT_EQ(parsed.value().size(), plan.size());
}

INSTANTIATE_TEST_SUITE_P(AllQueries, MalRoundTripTest,
                         ::testing::Values("paper", "q1", "q3", "q5", "q6",
                                           "q12", "q14", "big_group",
                                           "scan_heavy", "q18", "q11",
                                           "q16", "distinct_flags"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Dot round trip over compiled plans.
// ---------------------------------------------------------------------------

class DotRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DotRoundTripTest, GraphSurvivesDotText) {
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  auto cat = tpch::GenerateTpch(config);
  ASSERT_TRUE(cat.ok());
  auto program = sql::Compiler::CompileSql(
      &cat.value(), tpch::GetQuery(GetParam()).value().sql);
  ASSERT_TRUE(program.ok());
  dot::Graph direct = dot::ProgramToGraph(program.value());
  auto parsed = dot::ParseDot(dot::ProgramToDot(program.value()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().num_nodes(), direct.num_nodes());
  ASSERT_EQ(parsed.value().num_edges(), direct.num_edges());
  for (size_t i = 0; i < direct.num_nodes(); ++i) {
    int j = parsed.value().FindNode(direct.node(i).id);
    ASSERT_GE(j, 0);
    EXPECT_EQ(parsed.value().node(static_cast<size_t>(j)).label(),
              direct.node(i).label());
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, DotRoundTripTest,
                         ::testing::Values("paper", "q1", "q3", "q6", "q14"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Fisheye lens invariants across parameter combinations.
// ---------------------------------------------------------------------------

struct LensCase {
  double radius;
  double mag;
};

class LensInvariantTest : public ::testing::TestWithParam<LensCase> {};

TEST_P(LensInvariantTest, MonotoneBoundedRimFixed) {
  viz::FisheyeLens lens(0, 0, GetParam().radius, GetParam().mag);
  double r = GetParam().radius;
  double prev = 0;
  for (int i = 1; i <= 100; ++i) {
    double d = r * i / 100.0;
    layout::Point moved = lens.Apply({d, 0});
    EXPECT_GT(moved.x, prev - 1e-12) << d;          // monotone
    EXPECT_LE(moved.x, r + 1e-9) << d;              // bounded by the rim
    EXPECT_GE(moved.x, d - 1e-9) << d;              // magnifies outward
    prev = moved.x;
  }
  layout::Point rim = lens.Apply({r, 0});
  EXPECT_NEAR(rim.x, r, 1e-9);
  EXPECT_NEAR(lens.GainAt(0), GetParam().mag, 1e-9);
  EXPECT_NEAR(lens.GainAt(r), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Params, LensInvariantTest,
    ::testing::Values(LensCase{50, 2}, LensCase{50, 8}, LensCase{200, 3},
                      LensCase{10, 1.5}, LensCase{400, 12}));

// ---------------------------------------------------------------------------
// TPC-H date arithmetic vs day-by-day reference.
// ---------------------------------------------------------------------------

class DateSweepTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(DateSweepTest, AddDaysConsistentWithDayCount) {
  int64_t start = GetParam();
  int64_t days = tpch::DateToDays(start);
  for (int delta = 0; delta <= 400; ++delta) {
    int64_t date = tpch::AddDays(start, delta);
    EXPECT_EQ(tpch::DateToDays(date), days + delta);
    // Valid calendar components.
    int64_t m = (date / 100) % 100;
    int64_t d = date % 100;
    EXPECT_GE(m, 1);
    EXPECT_LE(m, 12);
    EXPECT_GE(d, 1);
    EXPECT_LE(d, 31);
  }
}

INSTANTIATE_TEST_SUITE_P(Starts, DateSweepTest,
                         ::testing::Values(19920101, 19951230, 19960115,
                                           19981231, 20000101));

}  // namespace
}  // namespace stetho
