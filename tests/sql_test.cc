#include <gtest/gtest.h>

#include "engine/interpreter.h"
#include "sql/compiler.h"
#include "sql/parser.h"
#include "storage/table.h"

namespace stetho::sql {
namespace {

using engine::ExecOptions;
using engine::Interpreter;
using engine::QueryResult;
using storage::Catalog;
using storage::ColumnPtr;
using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::TablePtr;
using storage::Value;

// ---------------------------------------------------------------------------
// Parser tests
// ---------------------------------------------------------------------------

TEST(SqlParserTest, MinimalSelect) {
  auto r = ParseSelect("select l_tax from lineitem");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectStmt& s = r.value();
  ASSERT_EQ(s.items.size(), 1u);
  EXPECT_EQ(s.items[0].expr->kind, ExprKind::kColumn);
  EXPECT_EQ(s.items[0].expr->column, "l_tax");
  EXPECT_EQ(s.from.name, "lineitem");
  EXPECT_EQ(s.where, nullptr);
}

TEST(SqlParserTest, PaperQuery) {
  auto r = ParseSelect("select l_tax from lineitem where l_partkey = 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_NE(r.value().where, nullptr);
  EXPECT_EQ(r.value().where->kind, ExprKind::kBinary);
  EXPECT_EQ(r.value().where->bin_op, BinaryOp::kEq);
}

TEST(SqlParserTest, OperatorPrecedence) {
  auto r = ParseSelect("select a + b * c - d from t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // ((a + (b*c)) - d)
  EXPECT_EQ(r.value().items[0].expr->ToString(), "((a + (b * c)) - d)");
}

TEST(SqlParserTest, BooleanPrecedence) {
  auto r = ParseSelect("select a from t where x = 1 or y = 2 and z = 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // OR binds loosest: (x=1 OR (y=2 AND z=3))
  const ExprPtr& w = r.value().where;
  EXPECT_EQ(w->bin_op, BinaryOp::kOr);
  EXPECT_EQ(w->right->bin_op, BinaryOp::kAnd);
}

TEST(SqlParserTest, BetweenAndLike) {
  auto r = ParseSelect(
      "select a from t where a between 1 and 5 and b like 'PROMO%'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ExprPtr& w = r.value().where;
  EXPECT_EQ(w->bin_op, BinaryOp::kAnd);
  EXPECT_EQ(w->left->kind, ExprKind::kBetween);
  EXPECT_EQ(w->right->kind, ExprKind::kLike);
  EXPECT_EQ(w->right->pattern, "PROMO%");
}

TEST(SqlParserTest, Aggregates) {
  auto r = ParseSelect(
      "select sum(a), count(*), avg(a + b) as x from t group by c");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectStmt& s = r.value();
  EXPECT_EQ(s.items[0].expr->kind, ExprKind::kAggregate);
  EXPECT_EQ(s.items[0].expr->agg, AggFunc::kSum);
  EXPECT_EQ(s.items[1].expr->agg, AggFunc::kCount);
  EXPECT_EQ(s.items[1].expr->agg_arg, nullptr);
  EXPECT_EQ(s.items[2].alias, "x");
  ASSERT_EQ(s.group_by.size(), 1u);
}

TEST(SqlParserTest, JoinsAndQualifiedColumns) {
  auto r = ParseSelect(
      "select o.o_orderkey from customer c join orders o on c.c_custkey = "
      "o.o_custkey");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectStmt& s = r.value();
  EXPECT_EQ(s.from.alias, "c");
  ASSERT_EQ(s.joins.size(), 1u);
  EXPECT_EQ(s.joins[0].table.alias, "o");
  EXPECT_EQ(s.joins[0].on->left->table, "c");
}

TEST(SqlParserTest, OrderLimitOffset) {
  auto r = ParseSelect(
      "select a from t order by a desc, b limit 10 offset 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectStmt& s = r.value();
  ASSERT_EQ(s.order_by.size(), 2u);
  EXPECT_TRUE(s.order_by[0].desc);
  EXPECT_FALSE(s.order_by[1].desc);
  EXPECT_EQ(s.limit, 10);
  EXPECT_EQ(s.offset, 5);
}

TEST(SqlParserTest, CaseWhen) {
  auto r = ParseSelect(
      "select case when a > 1 then b else 0 end from t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().items[0].expr->kind, ExprKind::kCase);
}

TEST(SqlParserTest, StringEscapes) {
  auto r = ParseSelect("select a from t where b = 'O''BRIEN'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().where->right->literal.AsString(), "O'BRIEN");
}

TEST(SqlParserTest, Rejections) {
  EXPECT_FALSE(ParseSelect("").ok());
  EXPECT_FALSE(ParseSelect("select").ok());
  EXPECT_FALSE(ParseSelect("select a").ok());                 // missing FROM
  EXPECT_FALSE(ParseSelect("select a from t where").ok());    // dangling WHERE
  EXPECT_FALSE(ParseSelect("select a from t garbage here").ok());
  EXPECT_FALSE(ParseSelect("select sum(*) from t").ok());     // * only in COUNT
  EXPECT_FALSE(ParseSelect("select a from t where b like 5").ok());
}

// ---------------------------------------------------------------------------
// Compiler + execution tests on a hand-checked fixture
// ---------------------------------------------------------------------------

Catalog SmallCatalog() {
  Catalog cat;
  TablePtr t = Table::Make(
      "sales", Schema({{"region", DataType::kString},
                       {"item", DataType::kInt64},
                       {"amount", DataType::kDouble},
                       {"qty", DataType::kInt64}}));
  struct Row {
    const char* region;
    int64_t item;
    double amount;
    int64_t qty;
  };
  const Row rows[] = {
      {"east", 1, 10.0, 1}, {"west", 2, 20.0, 2}, {"east", 1, 30.0, 3},
      {"west", 3, 40.0, 4}, {"east", 2, 50.0, 5}, {"north", 1, 60.0, 6},
  };
  for (const Row& r : rows) {
    EXPECT_TRUE(t->AppendRow({Value::String(r.region), Value::Int(r.item),
                              Value::Double(r.amount), Value::Int(r.qty)})
                    .ok());
  }
  EXPECT_TRUE(cat.AddTable(t).ok());

  TablePtr items = Table::Make(
      "items", Schema({{"item_id", DataType::kInt64},
                       {"label", DataType::kString}}));
  EXPECT_TRUE(items->AppendRow({Value::Int(1), Value::String("apple")}).ok());
  EXPECT_TRUE(items->AppendRow({Value::Int(2), Value::String("banana")}).ok());
  EXPECT_TRUE(items->AppendRow({Value::Int(3), Value::String("cherry")}).ok());
  EXPECT_TRUE(cat.AddTable(items).ok());
  return cat;
}

Result<QueryResult> Exec(Catalog* cat, const std::string& sql,
                         bool dataflow = false) {
  auto program = Compiler::CompileSql(cat, sql);
  if (!program.ok()) return program.status();
  Interpreter interp(cat);
  ExecOptions opts;
  opts.use_dataflow = dataflow;
  return interp.Execute(program.value(), opts);
}

TEST(SqlExecTest, SimpleProjectionFilter) {
  Catalog cat = SmallCatalog();
  auto r = Exec(&cat, "select amount from sales where region = 'east'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().columns.size(), 1u);
  ColumnPtr col = r.value().columns[0].column;
  ASSERT_EQ(col->size(), 3u);
  EXPECT_DOUBLE_EQ(col->DoubleAt(0), 10.0);
  EXPECT_DOUBLE_EQ(col->DoubleAt(1), 30.0);
  EXPECT_DOUBLE_EQ(col->DoubleAt(2), 50.0);
}

TEST(SqlExecTest, ArithmeticInSelectList) {
  Catalog cat = SmallCatalog();
  auto r = Exec(&cat, "select amount * qty + 1 from sales where item = 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ColumnPtr col = r.value().columns[0].column;
  ASSERT_EQ(col->size(), 2u);
  EXPECT_DOUBLE_EQ(col->DoubleAt(0), 20.0 * 2 + 1);
  EXPECT_DOUBLE_EQ(col->DoubleAt(1), 50.0 * 5 + 1);
}

TEST(SqlExecTest, StarExpansion) {
  Catalog cat = SmallCatalog();
  auto r = Exec(&cat, "select * from sales where qty >= 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().columns.size(), 4u);
  EXPECT_EQ(r.value().columns[0].name, "region");
  EXPECT_EQ(r.value().columns[0].column->size(), 2u);
}

TEST(SqlExecTest, OrPredicateResidual) {
  Catalog cat = SmallCatalog();
  auto r = Exec(&cat,
                "select amount from sales where region = 'north' or qty <= 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().columns[0].column->size(), 3u);  // rows 0, 1, 5
}

TEST(SqlExecTest, BetweenPushdown) {
  Catalog cat = SmallCatalog();
  auto r = Exec(&cat, "select qty from sales where amount between 20 and 40");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ColumnPtr col = r.value().columns[0].column;
  ASSERT_EQ(col->size(), 3u);
  EXPECT_EQ(col->IntAt(0), 2);
  EXPECT_EQ(col->IntAt(2), 4);
}

TEST(SqlExecTest, LikePushdown) {
  Catalog cat = SmallCatalog();
  auto r = Exec(&cat, "select item from sales where region like '%st'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().columns[0].column->size(), 5u);  // east/west rows
}

TEST(SqlExecTest, OrderByDescWithLimit) {
  Catalog cat = SmallCatalog();
  auto r = Exec(&cat, "select amount from sales order by amount desc limit 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ColumnPtr col = r.value().columns[0].column;
  ASSERT_EQ(col->size(), 2u);
  EXPECT_DOUBLE_EQ(col->DoubleAt(0), 60.0);
  EXPECT_DOUBLE_EQ(col->DoubleAt(1), 50.0);
}

TEST(SqlExecTest, OrderByMultipleKeysStable) {
  Catalog cat = SmallCatalog();
  auto r = Exec(&cat, "select region, amount from sales order by region, "
                      "amount desc");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ColumnPtr region = r.value().columns[0].column;
  ColumnPtr amount = r.value().columns[1].column;
  ASSERT_EQ(region->size(), 6u);
  // east rows first (amount desc within): 50, 30, 10
  EXPECT_EQ(region->StringAt(0), "east");
  EXPECT_DOUBLE_EQ(amount->DoubleAt(0), 50.0);
  EXPECT_DOUBLE_EQ(amount->DoubleAt(2), 10.0);
  EXPECT_EQ(region->StringAt(3), "north");
  EXPECT_EQ(region->StringAt(4), "west");
  EXPECT_DOUBLE_EQ(amount->DoubleAt(4), 40.0);
}

TEST(SqlExecTest, OffsetSlicing) {
  Catalog cat = SmallCatalog();
  auto r = Exec(&cat, "select amount from sales order by amount limit 2 offset 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ColumnPtr col = r.value().columns[0].column;
  ASSERT_EQ(col->size(), 2u);
  EXPECT_DOUBLE_EQ(col->DoubleAt(0), 20.0);
  EXPECT_DOUBLE_EQ(col->DoubleAt(1), 30.0);
}

TEST(SqlExecTest, ScalarAggregatesNoGroup) {
  Catalog cat = SmallCatalog();
  auto r = Exec(&cat,
                "select sum(amount), count(*), min(qty), max(qty), avg(amount) "
                "from sales");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().columns.size(), 5u);
  EXPECT_DOUBLE_EQ(r.value().columns[0].scalar.AsDouble(), 210.0);
  EXPECT_EQ(r.value().columns[1].scalar.AsInt(), 6);
  EXPECT_EQ(r.value().columns[2].scalar.AsInt(), 1);
  EXPECT_EQ(r.value().columns[3].scalar.AsInt(), 6);
  EXPECT_DOUBLE_EQ(r.value().columns[4].scalar.AsDouble(), 35.0);
}

TEST(SqlExecTest, AggregateExpression) {
  Catalog cat = SmallCatalog();
  auto r = Exec(&cat, "select sum(amount) / count(*) from sales");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r.value().columns[0].scalar.AsDouble(), 35.0);
}

TEST(SqlExecTest, GroupByWithAggregates) {
  Catalog cat = SmallCatalog();
  auto r = Exec(&cat,
                "select region, sum(amount) as total, count(*) as n from sales "
                "group by region order by region");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ColumnPtr region = r.value().columns[0].column;
  ColumnPtr total = r.value().columns[1].column;
  ColumnPtr n = r.value().columns[2].column;
  ASSERT_EQ(region->size(), 3u);
  EXPECT_EQ(region->StringAt(0), "east");
  EXPECT_DOUBLE_EQ(total->DoubleAt(0), 90.0);
  EXPECT_EQ(n->IntAt(0), 3);
  EXPECT_EQ(region->StringAt(1), "north");
  EXPECT_DOUBLE_EQ(total->DoubleAt(1), 60.0);
  EXPECT_EQ(region->StringAt(2), "west");
  EXPECT_DOUBLE_EQ(total->DoubleAt(2), 60.0);
}

TEST(SqlExecTest, GroupByTwoKeys) {
  Catalog cat = SmallCatalog();
  auto r = Exec(&cat,
                "select region, item, count(*) as n from sales group by "
                "region, item order by region, item");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Distinct (region, item): (east,1)x2,(west,2),(west,3),(east,2),(north,1)
  EXPECT_EQ(r.value().columns[0].column->size(), 5u);
  EXPECT_EQ(r.value().columns[2].column->IntAt(0), 2);  // (east,1)
}

TEST(SqlExecTest, CaseWhenAggregate) {
  Catalog cat = SmallCatalog();
  auto r = Exec(&cat,
                "select sum(case when region = 'east' then amount else 0.0 "
                "end) from sales");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r.value().columns[0].scalar.AsDouble(), 90.0);
}

TEST(SqlExecTest, JoinTwoTables) {
  Catalog cat = SmallCatalog();
  auto r = Exec(&cat,
                "select label, amount from sales join items on item = item_id "
                "order by amount");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ColumnPtr label = r.value().columns[0].column;
  ColumnPtr amount = r.value().columns[1].column;
  ASSERT_EQ(label->size(), 6u);
  EXPECT_EQ(label->StringAt(0), "apple");    // amount 10, item 1
  EXPECT_EQ(label->StringAt(1), "banana");   // amount 20, item 2
  EXPECT_EQ(label->StringAt(3), "cherry");   // amount 40, item 3
}

TEST(SqlExecTest, JoinWithGroupBy) {
  Catalog cat = SmallCatalog();
  auto r = Exec(&cat,
                "select label, sum(amount) as total from sales join items on "
                "item = item_id group by label order by total desc");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ColumnPtr label = r.value().columns[0].column;
  ColumnPtr total = r.value().columns[1].column;
  ASSERT_EQ(label->size(), 3u);
  EXPECT_EQ(label->StringAt(0), "apple");  // 10+30+60 = 100
  EXPECT_DOUBLE_EQ(total->DoubleAt(0), 100.0);
  EXPECT_EQ(label->StringAt(1), "banana");  // 20+50 = 70
  EXPECT_EQ(label->StringAt(2), "cherry");  // 40
}

TEST(SqlExecTest, DataflowMatchesSequential) {
  Catalog cat = SmallCatalog();
  const char* sql =
      "select region, sum(amount * qty) as v from sales group by region "
      "order by v desc";
  auto seq = Exec(&cat, sql, /*dataflow=*/false);
  auto par = Exec(&cat, sql, /*dataflow=*/true);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  for (size_t c = 0; c < seq.value().columns.size(); ++c) {
    ColumnPtr a = seq.value().columns[c].column;
    ColumnPtr b = par.value().columns[c].column;
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ(a->GetValue(i), b->GetValue(i));
    }
  }
}

TEST(SqlExecTest, CompileErrors) {
  Catalog cat = SmallCatalog();
  EXPECT_FALSE(Exec(&cat, "select x from sales").ok());            // no column
  EXPECT_FALSE(Exec(&cat, "select amount from nosuch").ok());      // no table
  EXPECT_FALSE(Exec(&cat, "select item from sales join items on item < item_id").ok());
  EXPECT_FALSE(Exec(&cat, "select region, sum(amount) from sales").ok());
  EXPECT_FALSE(Exec(&cat, "select item_id from sales join items on item = "
                          "item_id group by label order by nope").ok());
}

TEST(SqlExecTest, Distinct) {
  Catalog cat = SmallCatalog();
  auto r = Exec(&cat, "select distinct region from sales order by region");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ColumnPtr col = r.value().columns[0].column;
  ASSERT_EQ(col->size(), 3u);
  EXPECT_EQ(col->StringAt(0), "east");
  EXPECT_EQ(col->StringAt(1), "north");
  EXPECT_EQ(col->StringAt(2), "west");
}

TEST(SqlExecTest, DistinctMultipleColumns) {
  Catalog cat = SmallCatalog();
  auto r = Exec(&cat, "select distinct region, item from sales");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Distinct (region, item): (east,1),(west,2),(west,3),(east,2),(north,1).
  EXPECT_EQ(r.value().columns[0].column->size(), 5u);
  EXPECT_EQ(r.value().columns[1].column->size(), 5u);
}

TEST(SqlExecTest, DistinctRejectsOrderByOutsideSelectList) {
  Catalog cat = SmallCatalog();
  EXPECT_FALSE(
      Exec(&cat, "select distinct region from sales order by amount").ok());
  EXPECT_FALSE(Exec(&cat, "select distinct region, sum(amount) from sales "
                          "group by region").ok());
}

TEST(SqlExecTest, Having) {
  Catalog cat = SmallCatalog();
  auto r = Exec(&cat,
                "select region, sum(amount) as total from sales group by "
                "region having sum(amount) > 60 order by total desc");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ColumnPtr region = r.value().columns[0].column;
  ColumnPtr total = r.value().columns[1].column;
  // east=90 qualifies; west=60 and north=60 do not (strict >).
  ASSERT_EQ(region->size(), 1u);
  EXPECT_EQ(region->StringAt(0), "east");
  EXPECT_DOUBLE_EQ(total->DoubleAt(0), 90.0);
}

TEST(SqlExecTest, HavingOnCount) {
  Catalog cat = SmallCatalog();
  auto r = Exec(&cat,
                "select item, count(*) as n from sales group by item having "
                "count(*) >= 2 order by item");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ColumnPtr item = r.value().columns[0].column;
  ASSERT_EQ(item->size(), 2u);  // items 1 (x3) and 2 (x2)
  EXPECT_EQ(item->IntAt(0), 1);
  EXPECT_EQ(item->IntAt(1), 2);
}

TEST(SqlExecTest, CountDistinctScalar) {
  Catalog cat = SmallCatalog();
  auto r = Exec(&cat, "select count(distinct region), count(distinct item) "
                      "from sales");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().columns[0].scalar.AsInt(), 3);  // east west north
  EXPECT_EQ(r.value().columns[1].scalar.AsInt(), 3);  // items 1 2 3
}

TEST(SqlExecTest, CountDistinctGrouped) {
  Catalog cat = SmallCatalog();
  auto r = Exec(&cat,
                "select region, count(distinct item) as k, count(*) as n "
                "from sales group by region order by region");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ColumnPtr region = r.value().columns[0].column;
  ColumnPtr k = r.value().columns[1].column;
  ColumnPtr n = r.value().columns[2].column;
  ASSERT_EQ(region->size(), 3u);
  // east: items {1,1,2} -> 2 distinct of 3 rows.
  EXPECT_EQ(region->StringAt(0), "east");
  EXPECT_EQ(k->IntAt(0), 2);
  EXPECT_EQ(n->IntAt(0), 3);
  // north: {1} -> 1; west: {2,3} -> 2.
  EXPECT_EQ(k->IntAt(1), 1);
  EXPECT_EQ(k->IntAt(2), 2);
}

TEST(SqlExecTest, DistinctOnlyForCount) {
  Catalog cat = SmallCatalog();
  EXPECT_FALSE(Exec(&cat, "select sum(distinct amount) from sales").ok());
}

TEST(SqlExecTest, HavingRequiresGroupBy) {
  Catalog cat = SmallCatalog();
  EXPECT_FALSE(Exec(&cat, "select sum(amount) from sales having sum(amount) "
                          "> 1").ok());
}

TEST(SqlExecTest, PlanShapeMatchesPaperFigure1) {
  Catalog cat = SmallCatalog();
  auto program = Compiler::CompileSql(
      &cat, "select amount from sales where item = 1");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  std::string text = program.value().ToString();
  // The MonetDB-style scaffold of Fig. 1.
  EXPECT_NE(text.find("sql.mvc()"), std::string::npos);
  EXPECT_NE(text.find("sql.tid("), std::string::npos);
  EXPECT_NE(text.find("sql.bind("), std::string::npos);
  EXPECT_NE(text.find("algebra.thetaselect("), std::string::npos);
  EXPECT_NE(text.find("algebra.projection("), std::string::npos);
  EXPECT_NE(text.find("sql.resultSet("), std::string::npos);
  EXPECT_NE(text.find("function user.main():void;"), std::string::npos);
}

}  // namespace
}  // namespace stetho::sql
