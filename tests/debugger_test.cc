#include <gtest/gtest.h>

#include "engine/debugger.h"
#include "sql/compiler.h"
#include "storage/table.h"
#include "tpch/dbgen.h"

namespace stetho::engine {
namespace {

class DebuggerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::TpchConfig config;
    config.scale_factor = 0.001;
    auto cat = tpch::GenerateTpch(config);
    ASSERT_TRUE(cat.ok());
    catalog_ = std::make_unique<storage::Catalog>(std::move(cat.value()));
    auto program = sql::Compiler::CompileSql(
        catalog_.get(), "select l_tax from lineitem where l_partkey = 1");
    ASSERT_TRUE(program.ok());
    program_ = std::move(program).value();
    // Plan (no optimizer): mvc, tid, bind, thetaselect, bind, projection,
    // resultSet -> 7 instructions.
    ASSERT_EQ(program_.size(), 7u);
  }

  std::unique_ptr<MalDebugger> MakeDebugger() {
    auto dbg = MalDebugger::Create(&program_, catalog_.get());
    EXPECT_TRUE(dbg.ok());
    return std::move(dbg).value();
  }

  std::unique_ptr<storage::Catalog> catalog_;
  mal::Program program_;
};

TEST_F(DebuggerFixture, StepThroughWholePlan) {
  auto dbg = MakeDebugger();
  EXPECT_EQ(dbg->next_pc(), 0);
  EXPECT_NE(dbg->CurrentInstruction().find("sql.mvc"), std::string::npos);
  size_t steps = 0;
  while (!dbg->Finished()) {
    ASSERT_TRUE(dbg->Step().ok());
    ++steps;
  }
  EXPECT_EQ(steps, program_.size());
  EXPECT_FALSE(dbg->Step().ok());
  EXPECT_EQ(dbg->CurrentInstruction(), "<end of plan>");
  EXPECT_EQ(dbg->results_so_far(), 1u);
}

TEST_F(DebuggerFixture, PcBreakpoint) {
  auto dbg = MakeDebugger();
  ASSERT_TRUE(dbg->BreakAt(3).ok());
  auto stop = dbg->Continue();
  ASSERT_TRUE(stop.ok());
  EXPECT_EQ(stop.value(), 3);
  EXPECT_EQ(dbg->next_pc(), 3);
  // The breakpointed instruction has NOT run yet.
  EXPECT_NE(dbg->CurrentInstruction().find("thetaselect"), std::string::npos);
  // Resuming from the stop finishes the plan.
  auto done = dbg->Continue();
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done.value(), -1);
  EXPECT_TRUE(dbg->Finished());
}

TEST_F(DebuggerFixture, ModuleBreakpointFiresRepeatedly) {
  auto dbg = MakeDebugger();
  dbg->BreakOn("sql");
  std::vector<int> stops;
  while (true) {
    auto stop = dbg->Continue();
    ASSERT_TRUE(stop.ok());
    if (stop.value() < 0) break;
    stops.push_back(stop.value());
  }
  // sql.mvc(0), sql.tid(1), sql.bind(2), sql.bind(4), sql.resultSet(6) —
  // pc 0 is where the fresh debugger stops first.
  EXPECT_EQ(stops, (std::vector<int>{0, 1, 2, 4, 6}));
}

TEST_F(DebuggerFixture, FullNameBreakpoint) {
  auto dbg = MakeDebugger();
  dbg->BreakOn("algebra.projection");
  auto stop = dbg->Continue();
  ASSERT_TRUE(stop.ok());
  EXPECT_EQ(stop.value(), 5);
}

TEST_F(DebuggerFixture, InspectVariables) {
  auto dbg = MakeDebugger();
  auto before = dbg->InspectVariable("X_1");
  ASSERT_TRUE(before.ok());
  EXPECT_NE(before.value().find("<unassigned>"), std::string::npos);

  // Run through the tid instruction.
  ASSERT_TRUE(dbg->Step().ok());  // mvc
  ASSERT_TRUE(dbg->Step().ok());  // tid
  auto mvc = dbg->InspectVariable("X_0");
  ASSERT_TRUE(mvc.ok());
  EXPECT_EQ(mvc.value(), "X_0 = 0");
  auto tid = dbg->InspectVariable("X_1");
  ASSERT_TRUE(tid.ok());
  EXPECT_NE(tid.value().find("bat[oid]"), std::string::npos);
  EXPECT_NE(tid.value().find("count="), std::string::npos);
  EXPECT_NE(tid.value().find("0@0"), std::string::npos);  // head sample
  EXPECT_FALSE(dbg->InspectVariable("X_999").ok());
  EXPECT_EQ(dbg->ListVariables().size(), 2u);
}

TEST_F(DebuggerFixture, RegistersSurviveForInspection) {
  // Unlike the production interpreter, the debugger never frees registers:
  // every intermediate stays inspectable after the plan finishes.
  auto dbg = MakeDebugger();
  ASSERT_TRUE(dbg->Continue().ok());
  EXPECT_EQ(dbg->ListVariables().size(), program_.num_variables());
  for (size_t v = 0; v < program_.num_variables(); ++v) {
    auto value = dbg->InspectVariable(program_.variable(static_cast<int>(v)).name);
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(value.value().find("<freed>"), std::string::npos);
  }
}

TEST_F(DebuggerFixture, BreakpointManagement) {
  auto dbg = MakeDebugger();
  ASSERT_TRUE(dbg->BreakAt(2).ok());
  dbg->BreakOn("algebra");
  EXPECT_EQ(dbg->ListBreakpoints().size(), 2u);
  EXPECT_FALSE(dbg->BreakAt(99).ok());
  dbg->ClearBreakpoints();
  EXPECT_TRUE(dbg->ListBreakpoints().empty());
  auto stop = dbg->Continue();
  ASSERT_TRUE(stop.ok());
  EXPECT_EQ(stop.value(), -1);  // no breakpoints: runs to completion
}

TEST_F(DebuggerFixture, KernelErrorsCarryPc) {
  mal::Program bad;
  int v = bad.AddVariable(mal::MalType::Bat(storage::DataType::kInt64));
  bad.Add("sql", "bind", {v},
          {mal::Argument::Const(storage::Value::Int(0)),
           mal::Argument::Const(storage::Value::String("sys")),
           mal::Argument::Const(storage::Value::String("lineitem")),
           mal::Argument::Const(storage::Value::String("ghost")),
           mal::Argument::Const(storage::Value::Int(0))});
  auto dbg = MalDebugger::Create(&bad, catalog_.get());
  ASSERT_TRUE(dbg.ok());
  Status st = dbg.value()->Step();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("pc=0"), std::string::npos);
}

}  // namespace
}  // namespace stetho::engine
