#include <gtest/gtest.h>

#include "engine/interpreter.h"
#include "mal/program.h"
#include "optimizer/pass.h"
#include "sql/compiler.h"
#include "storage/table.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace stetho::optimizer {
namespace {

using engine::ExecOptions;
using engine::Interpreter;
using mal::Argument;
using mal::MalType;
using mal::Program;
using storage::Catalog;
using storage::DataType;
using storage::Value;

size_t CountOps(const Program& p, const std::string& full_name) {
  size_t n = 0;
  for (const auto& ins : p.instructions()) {
    if (ins.FullName() == full_name) ++n;
  }
  return n;
}

Catalog TinyTpch() {
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  auto cat = tpch::GenerateTpch(config);
  EXPECT_TRUE(cat.ok());
  return std::move(cat.value());
}

// --- constant folding ---

TEST(ConstantFoldingTest, FoldsScalarCalc) {
  Program p;
  int a = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("calc", "add", {a},
        {Argument::Const(Value::Int(2)), Argument::Const(Value::Int(3))});
  int b = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("calc", "mul", {b},
        {Argument::Var(a), Argument::Const(Value::Int(10))});
  p.Add("io", "print", {}, {Argument::Var(b)});

  auto pass = MakeConstantFoldingPass();
  auto changed = pass->Run(&p);
  ASSERT_TRUE(changed.ok()) << changed.status().ToString();
  EXPECT_TRUE(changed.value());
  // Both calc instructions fold away; print receives the constant 50.
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p.instruction(0).FullName(), "io.print");
  ASSERT_EQ(p.instruction(0).args.size(), 1u);
  EXPECT_EQ(p.instruction(0).args[0].constant, Value::Int(50));
}

TEST(ConstantFoldingTest, LeavesNonConstAlone) {
  Program p;
  int a = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("sql", "mvc", {a}, {});
  int b = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("calc", "add", {b}, {Argument::Var(a), Argument::Const(Value::Int(1))});
  p.Add("io", "print", {}, {Argument::Var(b)});
  auto changed = MakeConstantFoldingPass()->Run(&p);
  ASSERT_TRUE(changed.ok());
  EXPECT_FALSE(changed.value());
  EXPECT_EQ(p.size(), 3u);
}

// --- CSE ---

TEST(CsePassTest, MergesIdenticalPureInstructions) {
  Program p;
  int mvc = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("sql", "mvc", {mvc}, {});
  auto bind = [&p, mvc] {
    int v = p.AddVariable(MalType::Bat(DataType::kInt64));
    p.Add("sql", "bind", {v},
          {Argument::Var(mvc), Argument::Const(Value::String("sys")),
           Argument::Const(Value::String("t")),
           Argument::Const(Value::String("c")), Argument::Const(Value::Int(0))});
    return v;
  };
  int b1 = bind();
  int b2 = bind();
  p.Add("io", "print", {}, {Argument::Var(b1)});
  p.Add("io", "print", {}, {Argument::Var(b2)});

  auto changed = MakeCommonSubexpressionPass()->Run(&p);
  ASSERT_TRUE(changed.ok()) << changed.status().ToString();
  EXPECT_TRUE(changed.value());
  EXPECT_EQ(CountOps(p, "sql.bind"), 1u);
  // Both prints now reference the same variable.
  EXPECT_EQ(p.instruction(2).args[0].var, p.instruction(3).args[0].var);
}

TEST(CsePassTest, DoesNotMergeImpure) {
  Program p;
  p.Add("debug", "sleep", {}, {Argument::Const(Value::Int(1))});
  p.Add("debug", "sleep", {}, {Argument::Const(Value::Int(1))});
  auto changed = MakeCommonSubexpressionPass()->Run(&p);
  ASSERT_TRUE(changed.ok());
  EXPECT_FALSE(changed.value());
  EXPECT_EQ(p.size(), 2u);
}

TEST(CsePassTest, DistinguishesDifferentConstantTypes) {
  Program p;
  int a = p.AddVariable(MalType::Bat(DataType::kOid));
  p.Add("bat", "densebat", {a}, {Argument::Const(Value::Int(3))});
  int b = p.AddVariable(MalType::Bat(DataType::kOid));
  p.Add("bat", "densebat", {b}, {Argument::Const(Value::Oid(3))});
  p.Add("io", "print", {}, {Argument::Var(a)});
  p.Add("io", "print", {}, {Argument::Var(b)});
  auto changed = MakeCommonSubexpressionPass()->Run(&p);
  ASSERT_TRUE(changed.ok());
  EXPECT_FALSE(changed.value());
}

// --- dead code ---

TEST(DeadCodeTest, RemovesUnusedPureChains) {
  Program p;
  int mvc = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("sql", "mvc", {mvc}, {});
  int unused = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("calc", "add", {unused},
        {Argument::Var(mvc), Argument::Const(Value::Int(1))});
  int used = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("calc", "add", {used},
        {Argument::Var(mvc), Argument::Const(Value::Int(2))});
  p.Add("io", "print", {}, {Argument::Var(used)});

  auto changed = MakeDeadCodePass()->Run(&p);
  ASSERT_TRUE(changed.ok());
  EXPECT_TRUE(changed.value());
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(CountOps(p, "calc.add"), 1u);
}

TEST(DeadCodeTest, KeepsImpureInstructions) {
  Program p;
  p.Add("debug", "sleep", {}, {Argument::Const(Value::Int(1))});
  auto changed = MakeDeadCodePass()->Run(&p);
  ASSERT_TRUE(changed.ok());
  EXPECT_FALSE(changed.value());
  EXPECT_EQ(p.size(), 1u);
}

// --- mitosis ---

TEST(MitosisTest, SplitsScanSelects) {
  Catalog cat = TinyTpch();
  auto program = sql::Compiler::CompileSql(
      &cat, "select l_tax from lineitem where l_partkey = 1");
  ASSERT_TRUE(program.ok());
  Program p = std::move(program.value());
  size_t before = p.size();
  ASSERT_EQ(CountOps(p, "algebra.thetaselect"), 1u);

  auto changed = MakeMitosisPass(4)->Run(&p);
  ASSERT_TRUE(changed.ok()) << changed.status().ToString();
  EXPECT_TRUE(changed.value());
  EXPECT_EQ(CountOps(p, "algebra.thetaselect"), 4u);
  EXPECT_EQ(CountOps(p, "bat.partition"), 4u);
  EXPECT_EQ(CountOps(p, "mat.pack"), 1u);
  EXPECT_GT(p.size(), before);
  EXPECT_TRUE(p.Validate().ok());
}

TEST(MitosisTest, ResultsUnchangedByPartitioning) {
  Catalog cat = TinyTpch();
  for (const char* id : {"paper", "q1", "q6"}) {
    auto q = tpch::GetQuery(id);
    ASSERT_TRUE(q.ok());
    auto base = sql::Compiler::CompileSql(&cat, q.value().sql);
    ASSERT_TRUE(base.ok()) << id;
    Program plain = base.value();
    Program split = base.value();
    auto changed = MakeMitosisPass(8)->Run(&split);
    ASSERT_TRUE(changed.ok()) << id;

    Interpreter interp(&cat);
    ExecOptions opts;
    opts.num_threads = 4;
    auto a = interp.Execute(plain, opts);
    auto b = interp.Execute(split, opts);
    ASSERT_TRUE(a.ok()) << id << a.status().ToString();
    ASSERT_TRUE(b.ok()) << id << b.status().ToString();
    ASSERT_EQ(a.value().columns.size(), b.value().columns.size()) << id;
    for (size_t c = 0; c < a.value().columns.size(); ++c) {
      const auto& ca = a.value().columns[c];
      const auto& cb = b.value().columns[c];
      if (ca.is_scalar) {
        EXPECT_EQ(ca.scalar.Compare(cb.scalar), 0) << id;
        continue;
      }
      ASSERT_EQ(ca.column->size(), cb.column->size()) << id;
      for (size_t i = 0; i < ca.column->size(); ++i) {
        EXPECT_EQ(ca.column->GetValue(i), cb.column->GetValue(i)) << id;
      }
    }
  }
}

TEST(MitosisTest, NoEffectWithoutScanSelects) {
  Program p;
  int mvc = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("sql", "mvc", {mvc}, {});
  p.Add("io", "print", {}, {Argument::Var(mvc)});
  auto changed = MakeMitosisPass(4)->Run(&p);
  ASSERT_TRUE(changed.ok());
  EXPECT_FALSE(changed.value());
}

// --- markers / pruning ---

TEST(DataflowMarkerTest, PrependsOnce) {
  Program p;
  p.Add("io", "print", {}, {Argument::Const(Value::Int(1))});
  auto changed = MakeDataflowMarkerPass()->Run(&p);
  ASSERT_TRUE(changed.ok());
  EXPECT_TRUE(changed.value());
  EXPECT_EQ(p.instruction(0).FullName(), "language.dataflow");
  auto again = MakeDataflowMarkerPass()->Run(&p);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value());
}

TEST(AdminPruneTest, RemovesLanguageNodes) {
  Program p;
  p.Add("language", "dataflow", {}, {});
  p.Add("io", "print", {}, {Argument::Const(Value::Int(1))});
  auto changed = MakeAdminPrunePass()->Run(&p);
  ASSERT_TRUE(changed.ok());
  EXPECT_TRUE(changed.value());
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p.instruction(0).FullName(), "io.print");
}

// --- pipeline ---

TEST(PipelineTest, DefaultPipelineRunsAndValidates) {
  Catalog cat = TinyTpch();
  auto q = tpch::GetQuery("q3");
  ASSERT_TRUE(q.ok());
  auto program = sql::Compiler::CompileSql(&cat, q.value().sql);
  ASSERT_TRUE(program.ok());
  Program p = std::move(program.value());

  Pipeline pipeline = Pipeline::Default(/*mitosis_pieces=*/4);
  auto fired = pipeline.Run(&p);
  ASSERT_TRUE(fired.ok()) << fired.status().ToString();
  EXPECT_TRUE(p.Validate().ok());
  EXPECT_EQ(p.instruction(0).FullName(), "language.dataflow");

  // Optimized plan still executes.
  Interpreter interp(&cat);
  ExecOptions opts;
  opts.num_threads = 4;
  auto r = interp.Execute(p, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(PipelineTest, OptimizedPlanMatchesUnoptimized) {
  Catalog cat = TinyTpch();
  for (const char* id : {"q1", "q3", "q6", "q14", "scan_heavy"}) {
    auto q = tpch::GetQuery(id);
    ASSERT_TRUE(q.ok());
    auto base = sql::Compiler::CompileSql(&cat, q.value().sql);
    ASSERT_TRUE(base.ok()) << id;
    Program plain = base.value();
    Program optimized = base.value();
    Pipeline pipeline = Pipeline::Default(/*mitosis_pieces=*/4);
    auto fired = pipeline.Run(&optimized);
    ASSERT_TRUE(fired.ok()) << id << fired.status().ToString();

    Interpreter interp(&cat);
    ExecOptions opts;
    auto a = interp.Execute(plain, opts);
    auto b = interp.Execute(optimized, opts);
    ASSERT_TRUE(a.ok()) << id;
    ASSERT_TRUE(b.ok()) << id << ": " << b.status().ToString();
    ASSERT_EQ(a.value().columns.size(), b.value().columns.size()) << id;
    for (size_t c = 0; c < a.value().columns.size(); ++c) {
      const auto& ca = a.value().columns[c];
      const auto& cb = b.value().columns[c];
      if (ca.is_scalar) {
        EXPECT_EQ(ca.scalar.Compare(cb.scalar), 0) << id;
        continue;
      }
      ASSERT_EQ(ca.column->size(), cb.column->size()) << id;
      for (size_t i = 0; i < ca.column->size(); ++i) {
        EXPECT_EQ(ca.column->GetValue(i), cb.column->GetValue(i)) << id;
      }
    }
  }
}

// A deliberately broken pass: rewrites the plan so an argument is used
// before its definition. The pipeline's post-pass lint must fail with a
// Status naming the pass and the violated check.
class ClobberPass : public Pass {
 public:
  const char* name() const override { return "clobber"; }
  Result<bool> Run(Program* program) override {
    std::vector<mal::Instruction> reversed(program->instructions().rbegin(),
                                           program->instructions().rend());
    program->ReplaceInstructions(std::move(reversed));
    return true;
  }
};

TEST(PipelineTest, BrokenPassFailsWithPassNameAndCheckId) {
  Catalog cat = TinyTpch();
  auto base = sql::Compiler::CompileSql(&cat, tpch::GetQuery("q6").value().sql);
  ASSERT_TRUE(base.ok());
  Program p = std::move(base.value());

  Pipeline pipeline;
  pipeline.Add(std::make_unique<ClobberPass>());
  auto fired = pipeline.Run(&p);
  ASSERT_FALSE(fired.ok());
  const Status st = fired.status();
  const std::string& msg = st.message();
  EXPECT_NE(msg.find("optimizer pass 'clobber'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("ssa-def-before-use"), std::string::npos) << msg;
  EXPECT_NE(msg.find("pc="), std::string::npos) << msg;
}

}  // namespace
}  // namespace stetho::optimizer
