// Unit tests for the abstract domain (analysis/domain.h), the abstract
// interpreter (analysis/absint.h), the absint-based lint checks, the
// optimizer's pass-equivalence differ, and the SARIF rendering.

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/absint.h"
#include "analysis/checks.h"
#include "analysis/domain.h"
#include "analysis/runner.h"
#include "engine/kernel.h"
#include "mal/program.h"
#include "optimizer/pass.h"
#include "storage/value.h"

namespace stetho {
namespace {

using analysis::AbstractState;
using analysis::AbstractValue;
using analysis::CheckContext;
using analysis::Diagnostic;
using analysis::Interval;
using analysis::PlanSummary;
using analysis::Runner;
using analysis::Severity;
using analysis::Tri;
using mal::Argument;
using mal::MalType;
using storage::DataType;
using storage::Value;

MalType Lng() { return MalType::Scalar(DataType::kInt64); }
MalType Dbl() { return MalType::Scalar(DataType::kDouble); }
MalType BatLng() { return MalType::Bat(DataType::kInt64); }
MalType BatOid() { return MalType::Bat(DataType::kOid); }

std::vector<Diagnostic> RunOne(std::unique_ptr<analysis::Check> check,
                               const mal::Program& p) {
  Runner runner;
  runner.Add(std::move(check));
  CheckContext ctx;
  ctx.program = &p;
  return runner.Run(ctx);
}

/// densebat(16) -> mirror -> batcalc.add -> count -> print.
mal::Program CleanPlan() {
  mal::Program p;
  int a = p.AddVariable(BatOid());
  p.Add("bat", "densebat", {a}, {Argument::Const(Value::Int(16))});
  int b = p.AddVariable(BatOid());
  p.Add("bat", "mirror", {b}, {Argument::Var(a)});
  int c = p.AddVariable(BatLng());
  p.Add("batcalc", "add", {c}, {Argument::Var(a), Argument::Var(b)});
  int n = p.AddVariable(Lng());
  p.Add("aggr", "count", {n}, {Argument::Var(c)});
  p.Add("io", "print", {}, {Argument::Var(n)});
  return p;
}

// ---------------------------------------------------------------------------
// Interval
// ---------------------------------------------------------------------------

TEST(IntervalTest, ConstructorsAndPredicates) {
  EXPECT_TRUE(Interval::Exact(5).is_exact());
  EXPECT_TRUE(Interval::Unknown().is_unknown());
  EXPECT_TRUE(Interval::Range(2, 8).Contains(8));
  EXPECT_FALSE(Interval::Range(2, 8).Contains(9));
  EXPECT_TRUE(Interval::Range(0, 4).Overlaps(Interval::Range(4, 9)));
  EXPECT_FALSE(Interval::Range(0, 4).Overlaps(Interval::Range(5, 9)));
}

TEST(IntervalTest, JoinIsHullMeetIsIntersection) {
  Interval a = Interval::Range(2, 5);
  Interval b = Interval::Range(4, 9);
  EXPECT_EQ(a.Join(b), Interval::Range(2, 9));
  EXPECT_EQ(a.Meet(b), Interval::Range(4, 5));
}

TEST(IntervalTest, SaturatingArithmetic) {
  Interval big{0, Interval::kUnbounded};
  EXPECT_EQ(Interval::SaturatingAdd(big, Interval::Exact(3)).hi,
            Interval::kUnbounded);
  EXPECT_EQ(Interval::SaturatingAdd(Interval::Exact(4), Interval::Exact(3)),
            Interval::Exact(7));
  EXPECT_EQ(
      Interval::SaturatingMulUpper(Interval::Range(0, 4), Interval::Range(0, 5)),
      Interval::Range(0, 20));
  EXPECT_EQ(Interval::SaturatingMulUpper(big, Interval::Range(0, 5)).hi,
            Interval::kUnbounded);
  EXPECT_EQ(Interval::SaturatingMulUpper(big, Interval::Exact(0)).hi, 0);
}

TEST(IntervalTest, ToStringRendersStarForUnbounded) {
  EXPECT_EQ(Interval::Range(0, 16).ToString(), "[0, 16]");
  EXPECT_EQ(Interval::Unknown().ToString(), "[0, *]");
}

TEST(TriTest, TriOrTruthTable) {
  EXPECT_EQ(TriOr(Tri::kFalse, Tri::kFalse), Tri::kFalse);
  EXPECT_EQ(TriOr(Tri::kFalse, Tri::kUnknown), Tri::kUnknown);
  EXPECT_EQ(TriOr(Tri::kUnknown, Tri::kTrue), Tri::kTrue);
  EXPECT_EQ(TriOr(Tri::kTrue, Tri::kFalse), Tri::kTrue);
}

// ---------------------------------------------------------------------------
// AbstractValue
// ---------------------------------------------------------------------------

TEST(AbstractValueTest, FromConstantCapturesTypeAndValue) {
  AbstractValue v = AbstractValue::FromConstant(Value::Int(42));
  EXPECT_TRUE(v.defined);
  EXPECT_EQ(v.is_bat, Tri::kFalse);
  EXPECT_EQ(v.elem, DataType::kInt64);
  EXPECT_EQ(v.card, Interval::Exact(1));
  EXPECT_EQ(v.nullable, Tri::kFalse);
  ASSERT_TRUE(v.constant.has_value());
  EXPECT_EQ(*v.constant, Value::Int(42));

  AbstractValue null_v = AbstractValue::FromConstant(Value::Null());
  EXPECT_EQ(null_v.nullable, Tri::kTrue);
  EXPECT_FALSE(null_v.elem_known());
}

TEST(AbstractValueTest, FromDeclaredUsesAnnotation) {
  mal::Program p;
  int v = p.AddVariable(BatLng());
  p.AnnotateCardinality(v, 10, 20);
  AbstractValue a = AbstractValue::FromDeclared(p.variable(v));
  EXPECT_EQ(a.is_bat, Tri::kTrue);
  EXPECT_EQ(a.elem, DataType::kInt64);
  EXPECT_EQ(a.card, Interval::Range(10, 20));

  int s = p.AddVariable(Lng());
  AbstractValue b = AbstractValue::FromDeclared(p.variable(s));
  EXPECT_EQ(b.is_bat, Tri::kFalse);
  EXPECT_EQ(b.card, Interval::Exact(1));
}

TEST(AbstractValueTest, JoinKeepsOnlyAgreedFacts) {
  AbstractValue a = AbstractValue::FromConstant(Value::Int(1));
  AbstractValue b = AbstractValue::FromConstant(Value::Int(2));
  AbstractValue j = a.Join(b);
  EXPECT_FALSE(j.constant.has_value());  // disagreeing constants dropped
  EXPECT_EQ(j.elem, DataType::kInt64);   // agreed element type kept
  EXPECT_EQ(j.card, Interval::Exact(1));
  EXPECT_EQ(a.Join(a), a);  // idempotent
}

TEST(AbstractValueTest, CompatibleWithDetectsEveryConflictKind) {
  AbstractValue top = AbstractValue::Top();
  EXPECT_TRUE(top.CompatibleWith(top));

  AbstractValue bat = top;
  bat.is_bat = Tri::kTrue;
  AbstractValue scalar = top;
  scalar.is_bat = Tri::kFalse;
  EXPECT_FALSE(bat.CompatibleWith(scalar));

  AbstractValue lng = top;
  lng.elem = DataType::kInt64;
  AbstractValue dbl = top;
  dbl.elem = DataType::kDouble;
  EXPECT_FALSE(lng.CompatibleWith(dbl));
  EXPECT_TRUE(lng.CompatibleWith(top));  // unknown elem is compatible

  AbstractValue small = top;
  small.card = Interval::Range(0, 4);
  AbstractValue large = top;
  large.card = Interval::Range(5, 9);
  EXPECT_FALSE(small.CompatibleWith(large));

  AbstractValue no_null = top;
  no_null.nullable = Tri::kFalse;
  AbstractValue has_null = top;
  has_null.nullable = Tri::kTrue;
  EXPECT_FALSE(no_null.CompatibleWith(has_null));

  AbstractValue c1 = AbstractValue::FromConstant(Value::Int(1));
  AbstractValue c2 = AbstractValue::FromConstant(Value::Int(2));
  EXPECT_FALSE(c1.CompatibleWith(c2));
  EXPECT_TRUE(c1.CompatibleWith(c1));

  AbstractValue undefined;  // bottom is compatible with everything
  EXPECT_TRUE(undefined.CompatibleWith(c1));
}

TEST(AbstractValueTest, ToStringFormats) {
  AbstractValue c = AbstractValue::FromConstant(Value::Int(5));
  EXPECT_EQ(c.ToString(), "const 5:lng");
  AbstractValue b = AbstractValue::Top();
  b.is_bat = Tri::kTrue;
  b.elem = DataType::kInt64;
  b.card = Interval::Range(0, 16);
  b.nullable = Tri::kFalse;
  b.sorted = Tri::kTrue;
  EXPECT_EQ(b.ToString(), "bat[:lng] card=[0, 16] null=no sorted=yes");
  EXPECT_EQ(AbstractValue{}.ToString(), "<undefined>");
}

// ---------------------------------------------------------------------------
// AnalyzeProgram
// ---------------------------------------------------------------------------

TEST(AnalyzeProgramTest, PropagatesFactsThroughCleanPlan) {
  mal::Program p = CleanPlan();
  AbstractState state = analysis::AnalyzeProgram(p);
  ASSERT_EQ(state.vars.size(), 4u);

  const AbstractValue& densebat = state.vars[0];
  EXPECT_EQ(densebat.card, Interval::Exact(16));
  EXPECT_EQ(densebat.elem, DataType::kOid);
  EXPECT_EQ(densebat.sorted, Tri::kTrue);
  EXPECT_EQ(densebat.nullable, Tri::kFalse);

  const AbstractValue& mirror = state.vars[1];
  EXPECT_EQ(mirror.card, Interval::Exact(16));
  EXPECT_EQ(mirror.elem, DataType::kOid);

  const AbstractValue& sum = state.vars[2];
  EXPECT_EQ(sum.card, Interval::Exact(16));
  EXPECT_EQ(sum.elem, DataType::kInt64);
  EXPECT_EQ(sum.nullable, Tri::kFalse);

  // count of an exactly-16-row NULL-free BAT is the constant 16.
  const AbstractValue& count = state.vars[3];
  EXPECT_EQ(count.is_bat, Tri::kFalse);
  ASSERT_TRUE(count.constant.has_value());
  EXPECT_EQ(*count.constant, Value::Int(16));
}

TEST(AnalyzeProgramTest, CountOfNullableInputIsNotConstant) {
  // Without a provably NULL-free input, aggr.count must not claim an exact
  // value: count skips NULLs.
  mal::Program p;
  int a = p.AddVariable(BatLng());
  p.AnnotateCardinality(a, 8, 8);
  p.Add("sql", "bind", {a},
        {Argument::Const(Value::Int(0)), Argument::Const(Value::String("sys")),
         Argument::Const(Value::String("t")),
         Argument::Const(Value::String("c")),
         Argument::Const(Value::Int(0))});
  int n = p.AddVariable(Lng());
  p.Add("aggr", "count", {n}, {Argument::Var(a)});
  AbstractState state = analysis::AnalyzeProgram(p);
  EXPECT_EQ(state.vars[static_cast<size_t>(a)].card, Interval::Exact(8));
  EXPECT_FALSE(state.vars[static_cast<size_t>(n)].constant.has_value());
}

TEST(AnalyzeProgramTest, DeclaredTypeFillsUnknownFacts) {
  mal::Program p;
  int a = p.AddVariable(BatLng());
  // Unknown kernel: the transfer table has nothing, so the declaration is
  // all we know.
  p.Add("user", "mystery", {a}, {});
  AbstractState state = analysis::AnalyzeProgram(p);
  EXPECT_EQ(state.vars[0].is_bat, Tri::kTrue);
  EXPECT_EQ(state.vars[0].elem, DataType::kInt64);
  EXPECT_TRUE(state.vars[0].card.is_unknown());
}

TEST(AnalyzeProgramTest, MalformedReferencesStayBottomWithoutCrashing) {
  mal::Program p;
  int out = p.AddVariable(BatOid());
  p.Add("bat", "mirror", {out}, {Argument::Var(7)});  // out of range
  AbstractState state = analysis::AnalyzeProgram(p);
  EXPECT_TRUE(state.vars[0].defined);  // result still evaluated
}

TEST(EvalInstructionTest, RawResultIgnoresDeclaration) {
  mal::Program p;
  int a = p.AddVariable(BatOid());
  p.Add("bat", "densebat", {a}, {Argument::Const(Value::Int(4))});
  int wrong = p.AddVariable(BatLng());  // mirror actually produces bat[:oid]
  p.Add("bat", "mirror", {wrong}, {Argument::Var(a)});
  AbstractState state = analysis::AnalyzeProgram(p);
  std::vector<AbstractValue> raw =
      analysis::EvalInstruction(p, p.instruction(1), state);
  ASSERT_EQ(raw.size(), 1u);
  EXPECT_EQ(raw[0].elem, DataType::kOid);  // not the declared :lng
}

// ---------------------------------------------------------------------------
// Plan summaries + the pass-equivalence differ
// ---------------------------------------------------------------------------

TEST(SummaryTest, CollectsSinkOperandsInPlanOrder) {
  mal::Program p = CleanPlan();
  PlanSummary s = analysis::SummarizeObservable(p);
  ASSERT_EQ(s.columns.size(), 1u);
  EXPECT_EQ(s.columns[0].op, "io.print");
  EXPECT_EQ(s.columns[0].pc, 4);
  EXPECT_EQ(s.columns[0].arg_index, 0u);
  ASSERT_TRUE(s.columns[0].value.constant.has_value());
  EXPECT_EQ(*s.columns[0].value.constant, Value::Int(16));
}

TEST(SummaryTest, EquivalenceAcceptsSelfAndRefinement) {
  mal::Program p = CleanPlan();
  PlanSummary s = analysis::SummarizeObservable(p);
  EXPECT_TRUE(analysis::CheckSummaryEquivalence(s, s, "noop").ok());

  // A refined summary (narrower cardinality) is still equivalent.
  PlanSummary widened = s;
  widened.columns[0].value.constant.reset();
  widened.columns[0].value.card = Interval::Unknown();
  EXPECT_TRUE(analysis::CheckSummaryEquivalence(widened, s, "refine").ok());
}

TEST(SummaryTest, EquivalenceRejectsContradiction) {
  mal::Program p = CleanPlan();
  PlanSummary before = analysis::SummarizeObservable(p);
  PlanSummary after = before;
  after.columns[0].value.constant = Value::Int(17);
  Status st = analysis::CheckSummaryEquivalence(before, after, "pass 'evil'");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("pass 'evil'"), std::string::npos);
  EXPECT_NE(st.message().find("io.print"), std::string::npos);
  EXPECT_NE(st.message().find("const 16:lng"), std::string::npos);
  EXPECT_NE(st.message().find("const 17:lng"), std::string::npos);
}

TEST(SummaryTest, EquivalenceRejectsColumnCountAndRewiring) {
  mal::Program p = CleanPlan();
  PlanSummary s = analysis::SummarizeObservable(p);
  PlanSummary empty;
  EXPECT_FALSE(analysis::CheckSummaryEquivalence(s, empty, "drop").ok());

  PlanSummary rewired = s;
  rewired.columns[0].op = "sql.resultSet";
  EXPECT_FALSE(analysis::CheckSummaryEquivalence(s, rewired, "rewire").ok());
}

/// A deliberately broken pass: increments the first integer constant it
/// finds. The rewrite is structurally valid (every lint check passes) but
/// changes what the query prints — only the differ can catch it.
class ConstantCorruptingPass final : public optimizer::Pass {
 public:
  const char* name() const override { return "constant_corrupting"; }
  Result<bool> Run(mal::Program* program) override {
    for (size_t pc = 0; pc < program->size(); ++pc) {
      mal::Instruction& ins =
          program->mutable_instruction(static_cast<int>(pc));
      for (Argument& arg : ins.args) {
        if (arg.kind == Argument::Kind::kConst &&
            arg.constant.type() == DataType::kInt64) {
          arg.constant = Value::Int(arg.constant.AsInt() + 1);
          return true;
        }
      }
    }
    return false;
  }
};

TEST(PipelineDifferTest, RejectsSemanticsChangingPass) {
  mal::Program p;
  p.Add("io", "print", {}, {Argument::Const(Value::Int(42))});

  optimizer::Pipeline pipeline;
  pipeline.Add(std::make_unique<ConstantCorruptingPass>());
  auto fired = pipeline.Run(&p);
  ASSERT_FALSE(fired.ok());
  EXPECT_NE(fired.status().message().find("constant_corrupting"),
            std::string::npos);
  EXPECT_NE(fired.status().message().find("const 42:lng"), std::string::npos);
  EXPECT_NE(fired.status().message().find("const 43:lng"), std::string::npos);
}

TEST(PipelineDifferTest, AcceptsConstantFolding) {
  mal::Program p;
  int x = p.AddVariable(Lng());
  p.Add("calc", "add", {x},
        {Argument::Const(Value::Int(2)), Argument::Const(Value::Int(3))});
  p.Add("io", "print", {}, {Argument::Var(x)});

  optimizer::Pipeline pipeline = optimizer::Pipeline::Default(0);
  auto fired = pipeline.Run(&p);
  ASSERT_TRUE(fired.ok()) << fired.status().ToString();
  bool folded = false;
  for (const std::string& name : fired.value()) {
    if (name == "constant_folding") folded = true;
  }
  EXPECT_TRUE(folded);
}

// ---------------------------------------------------------------------------
// The absint-based checks
// ---------------------------------------------------------------------------

TEST(TypeFlowTest, CleanPlanHasNoFindings) {
  mal::Program p = CleanPlan();
  EXPECT_TRUE(RunOne(analysis::MakeTypeFlowCheck(), p).empty());
}

TEST(TypeFlowTest, FlagsResultDeclarationMismatch) {
  mal::Program p;
  int a = p.AddVariable(BatOid());
  p.Add("bat", "densebat", {a}, {Argument::Const(Value::Int(4))});
  int n = p.AddVariable(Dbl());  // aggr.count actually produces :lng
  p.Add("aggr", "count", {n}, {Argument::Var(a)});
  p.Add("io", "print", {}, {Argument::Var(n)});
  auto diags = RunOne(analysis::MakeTypeFlowCheck(), p);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_EQ(diags[0].pc, 1);
  EXPECT_EQ(diags[0].var, n);
}

TEST(TypeFlowTest, FlagsBooleanSlotViolation) {
  mal::Program p;
  int b = p.AddVariable(MalType::Scalar(DataType::kBool));
  p.Add("calc", "not", {b}, {Argument::Const(Value::Int(5))});
  p.Add("io", "print", {}, {Argument::Var(b)});
  auto diags = RunOne(analysis::MakeTypeFlowCheck(), p);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find(":bit"), std::string::npos);
}

TEST(CardinalityContradictionTest, FlagsDisjointZipArguments) {
  mal::Program p;
  int a = p.AddVariable(BatOid());
  p.Add("bat", "densebat", {a}, {Argument::Const(Value::Int(4))});
  int b = p.AddVariable(BatOid());
  p.Add("bat", "densebat", {b}, {Argument::Const(Value::Int(8))});
  int c = p.AddVariable(BatLng());
  p.Add("batcalc", "add", {c}, {Argument::Var(a), Argument::Var(b)});
  p.Add("io", "print", {}, {Argument::Var(c)});
  auto diags = RunOne(analysis::MakeCardinalityContradictionCheck(), p);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].pc, 2);
  EXPECT_NE(diags[0].message.find("[4, 4]"), std::string::npos);
  EXPECT_NE(diags[0].message.find("[8, 8]"), std::string::npos);
}

TEST(CardinalityContradictionTest, BroadcastScalarIsFine) {
  mal::Program p;
  int a = p.AddVariable(BatOid());
  p.Add("bat", "densebat", {a}, {Argument::Const(Value::Int(4))});
  int c = p.AddVariable(BatLng());
  p.Add("batcalc", "add", {c},
        {Argument::Var(a), Argument::Const(Value::Int(1))});
  p.Add("io", "print", {}, {Argument::Var(c)});
  EXPECT_TRUE(
      RunOne(analysis::MakeCardinalityContradictionCheck(), p).empty());
}

TEST(GuaranteedEmptyTest, FlagsProvablyEmptyBat) {
  mal::Program p;
  int a = p.AddVariable(BatOid());
  p.Add("bat", "densebat", {a}, {Argument::Const(Value::Int(0))});
  int n = p.AddVariable(Lng());
  p.Add("aggr", "count", {n}, {Argument::Var(a)});
  p.Add("io", "print", {}, {Argument::Var(n)});
  auto diags = RunOne(analysis::MakeGuaranteedEmptyCheck(), p);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_EQ(diags[0].pc, 0);
}

TEST(MissedConstantFoldTest, NotesFoldableCalcAndStopsAfterFolding) {
  mal::Program p;
  int x = p.AddVariable(Lng());
  p.Add("calc", "add", {x},
        {Argument::Const(Value::Int(2)), Argument::Const(Value::Int(3))});
  p.Add("io", "print", {}, {Argument::Var(x)});
  auto diags = RunOne(analysis::MakeMissedConstantFoldCheck(), p);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kNote);

  optimizer::Pipeline pipeline = optimizer::Pipeline::Default(0);
  ASSERT_TRUE(pipeline.Run(&p).ok());
  EXPECT_TRUE(RunOne(analysis::MakeMissedConstantFoldCheck(), p).empty());
}

TEST(OrderKeyPropagationTest, FlagsDataBatUsedAsCandidateList) {
  mal::Program p;
  int col = p.AddVariable(BatOid());
  p.Add("bat", "densebat", {col}, {Argument::Const(Value::Int(8))});
  int data = p.AddVariable(BatLng());
  p.Add("batcalc", "add", {data},
        {Argument::Var(col), Argument::Const(Value::Int(1))});
  int out = p.AddVariable(BatOid());
  // The :lng data BAT lands in projection's candidate slot.
  p.Add("algebra", "projection", {out},
        {Argument::Var(data), Argument::Var(col)});
  p.Add("io", "print", {}, {Argument::Var(out)});
  auto diags = RunOne(analysis::MakeOrderKeyPropagationCheck(), p);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_EQ(diags[0].pc, 2);
  EXPECT_EQ(diags[0].var, data);
}

TEST(OrderKeyPropagationTest, TidStyleCandidateIsClean) {
  mal::Program p;
  int col = p.AddVariable(BatOid());
  p.Add("bat", "densebat", {col}, {Argument::Const(Value::Int(8))});
  int out = p.AddVariable(BatOid());
  p.Add("algebra", "projection", {out},
        {Argument::Var(col), Argument::Var(col)});
  p.Add("io", "print", {}, {Argument::Var(out)});
  EXPECT_TRUE(RunOne(analysis::MakeOrderKeyPropagationCheck(), p).empty());
}

// ---------------------------------------------------------------------------
// dead-instruction severity depends on the linting context
// ---------------------------------------------------------------------------

TEST(DeadInstructionSeverityTest, WarningFromCliNoteMidPipeline) {
  mal::Program p;
  int a = p.AddVariable(BatOid());
  p.Add("bat", "densebat", {a}, {Argument::Const(Value::Int(4))});  // dead
  p.Add("io", "print", {}, {Argument::Const(Value::Int(1))});

  Runner runner;
  runner.Add(analysis::MakeDeadInstructionCheck());
  CheckContext ctx;
  ctx.program = &p;
  auto diags = runner.Run(ctx);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);

  ctx.in_pipeline = true;
  diags = runner.Run(ctx);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kNote);
}

// ---------------------------------------------------------------------------
// SARIF rendering
// ---------------------------------------------------------------------------

TEST(SarifTest, EmptyDiagnosticsIsAValidEmptyLog) {
  std::string sarif = analysis::DiagnosticsToSarif({}, "");
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"mal_lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos);
  EXPECT_NE(sarif.find("\"rules\": []"), std::string::npos);
}

TEST(SarifTest, MatchesGoldenFile) {
  std::vector<Diagnostic> diags(2);
  diags[0].severity = Severity::kError;
  diags[0].check_id = "type-flow";
  diags[0].pc = 2;
  diags[0].var = 3;
  diags[0].message =
      "bat.mirror computes :oid for result 0 but X_3 is declared :bat[:lng]";
  diags[0].fix_hint = "fix the declared type or the producing operation";
  diags[1].severity = Severity::kNote;
  diags[1].check_id = "missed-constant-fold";
  diags[1].pc = 0;
  diags[1].var = 1;
  diags[1].message = "calc.add has only constant operands";
  std::string sarif = analysis::DiagnosticsToSarif(diags, "plans/q01.mal");

  std::string golden_path =
      std::string(STETHO_TESTS_DIR) + "/golden/mal_lint.sarif";
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(sarif, buffer.str())
      << "SARIF output diverged from " << golden_path
      << "; actual output:\n"
      << sarif;
}

TEST(SarifTest, LevelsRegionsAndRuleIndexAreStable) {
  std::vector<Diagnostic> diags(1);
  diags[0].severity = Severity::kWarning;
  diags[0].check_id = "guaranteed-empty";
  diags[0].pc = 7;
  diags[0].message = "empty";
  std::string sarif = analysis::DiagnosticsToSarif(diags, "x.mal");
  EXPECT_NE(sarif.find("\"level\": \"warning\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 8"), std::string::npos);  // pc + 1
  EXPECT_NE(sarif.find("\"uri\": \"x.mal\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleIndex\": 0"), std::string::npos);
  // The built-in check's description is attached to the rule.
  EXPECT_NE(sarif.find("\"shortDescription\""), std::string::npos);
}

}  // namespace
}  // namespace stetho
