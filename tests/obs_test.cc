#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <cstdlib>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/checks.h"
#include "common/clock.h"
#include "engine/interpreter.h"
#include "mal/program.h"
#include "net/channel.h"
#include "net/pipe_health.h"
#include "net/trace_stream.h"
#include "net/udp.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/profile_store.h"
#include "obs/span.h"
#include "obs/trace_export.h"
#include "optimizer/pass.h"
#include "profiler/event.h"
#include "profiler/sink.h"
#include "server/mserver.h"
#include "storage/table.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace stetho::obs {
namespace {

using mal::Argument;
using mal::MalType;
using mal::Program;
using storage::Catalog;
using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::TablePtr;
using storage::Value;

/// Tiny lineitem fixture for fixed-plan execution tests.
Catalog MakeCatalog() {
  Catalog cat;
  TablePtr t = Table::Make("lineitem",
                           Schema({{"l_partkey", DataType::kInt64},
                                   {"l_tax", DataType::kDouble}}));
  EXPECT_TRUE(t->AppendRow({Value::Int(1), Value::Double(0.02)}).ok());
  EXPECT_TRUE(t->AppendRow({Value::Int(2), Value::Double(0.04)}).ok());
  EXPECT_TRUE(cat.AddTable(t).ok());
  return cat;
}

/// Three-instruction plan: sql.mvc; sql.bind l_partkey; io.print.
Program FixedPlan(const char* table = "lineitem") {
  Program p{"user.main"};
  int mvc = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("sql", "mvc", {mvc}, {});
  int col = p.AddVariable(MalType::Bat(DataType::kInt64));
  p.Add("sql", "bind", {col},
        {Argument::Var(mvc), Argument::Const(Value::String("sys")),
         Argument::Const(Value::String(table)),
         Argument::Const(Value::String("l_partkey")),
         Argument::Const(Value::Int(0))});
  p.Add("io", "print", {}, {Argument::Var(col)});
  return p;
}

/// Counter value, or 0 when the metric has not been registered yet (the
/// process-wide registry's contents depend on which tests ran before us).
int64_t CounterOr0(Registry* registry, const std::string& name) {
  auto value = registry->CounterValue(name);
  return value.ok() ? value.value() : 0;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// --- Registry -------------------------------------------------------------

TEST(RegistryTest, CounterGaugeBasics) {
  Registry registry;
  auto counter = registry.RegisterCounter("requests_total", "Requests.");
  ASSERT_TRUE(counter.ok());
  counter.value()->Increment();
  counter.value()->Increment(4);
  EXPECT_EQ(counter.value()->value(), 5);
  EXPECT_EQ(registry.CounterValue("requests_total").value(), 5);

  auto gauge = registry.RegisterGauge("depth", "Queue depth.");
  ASSERT_TRUE(gauge.ok());
  gauge.value()->Set(7);
  gauge.value()->Add(-2);
  EXPECT_EQ(registry.GaugeValue("depth").value(), 5);

  EXPECT_EQ(registry.size(), 2u);
  EXPECT_TRUE(registry.CounterValue("missing").status().code() == StatusCode::kNotFound);
}

TEST(RegistryTest, StrictRegistrationValidatesNames) {
  Registry registry;
  EXPECT_TRUE(registry.RegisterCounter("9bad", "h").status().code() == StatusCode::kInvalidArgument);
  EXPECT_TRUE(
      registry.RegisterCounter("has space", "h").status().code() == StatusCode::kInvalidArgument);
  EXPECT_TRUE(registry.RegisterCounter("", "h").status().code() == StatusCode::kInvalidArgument);
  ASSERT_TRUE(registry.RegisterCounter("ok_name:x", "h").ok());
  EXPECT_TRUE(
      registry.RegisterCounter("ok_name:x", "h").status().code() == StatusCode::kAlreadyExists);
  // Cross-kind collisions are rejected too: one namespace for all metrics.
  EXPECT_TRUE(
      registry.RegisterGauge("ok_name:x", "h").status().code() == StatusCode::kAlreadyExists);
}

TEST(RegistryTest, GetOrCreateIsIdempotent) {
  Registry registry;
  Counter* a = registry.GetOrCreateCounter("c", "h");
  Counter* b = registry.GetOrCreateCounter("c", "other help ignored");
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(b->value(), 1);
  Histogram* h1 = registry.GetOrCreateHistogram("h", "h", {1, 2});
  Histogram* h2 = registry.GetOrCreateHistogram("h", "h", {99});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2->bounds().size(), 2u);  // first registration wins
}

TEST(RegistryTest, HistogramBucketEdges) {
  Registry registry;
  auto made = registry.RegisterHistogram("lat", "h", {10, 100});
  ASSERT_TRUE(made.ok());
  Histogram* h = made.value();
  h->Observe(0);     // <= 10
  h->Observe(10);    // boundary value lands in its own bucket (le semantics)
  h->Observe(11);    // <= 100
  h->Observe(100);   // <= 100
  h->Observe(101);   // +Inf
  EXPECT_EQ(h->bucket_count(0), 2);
  EXPECT_EQ(h->bucket_count(1), 2);
  EXPECT_EQ(h->bucket_count(2), 1);  // +Inf
  EXPECT_EQ(h->count(), 5);
  EXPECT_EQ(h->sum(), 0 + 10 + 11 + 100 + 101);
}

TEST(RegistryTest, DefaultLatencyBoundsAreAscending) {
  const std::vector<int64_t>& bounds = Histogram::DefaultLatencyBounds();
  ASSERT_GE(bounds.size(), 4u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  EXPECT_GE(bounds.back(), 1000000);  // spans out to at least a second
}

TEST(RegistryTest, ExpositionTextGolden) {
  Registry registry;
  registry.GetOrCreateCounter("b_total", "A counter.")->Increment(3);
  registry.GetOrCreateGauge("c_depth", "A gauge.")->Set(-4);
  registry.GetOrCreateHistogram("a_usec", "A histogram.", {5, 50})->Observe(7);
  EXPECT_EQ(registry.ExpositionText(),
            "# HELP a_usec A histogram.\n"
            "# TYPE a_usec histogram\n"
            "a_usec_bucket{le=\"5\"} 0\n"
            "a_usec_bucket{le=\"50\"} 1\n"
            "a_usec_bucket{le=\"+Inf\"} 1\n"
            "a_usec_sum 7\n"
            "a_usec_count 1\n"
            "# HELP b_total A counter.\n"
            "# TYPE b_total counter\n"
            "b_total 3\n"
            "# HELP c_depth A gauge.\n"
            "# TYPE c_depth gauge\n"
            "c_depth -4\n");
}

TEST(RegistryTest, SnapshotIsSortedAndKinded) {
  Registry registry;
  registry.GetOrCreateGauge("z", "h")->Set(9);
  registry.GetOrCreateCounter("a", "h")->Increment(2);
  registry.GetOrCreateHistogram("m", "h", {1})->Observe(3);
  std::vector<MetricSample> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a");
  EXPECT_EQ(snap[0].kind, "counter");
  EXPECT_EQ(snap[0].value, 2);
  EXPECT_EQ(snap[1].name, "m");
  EXPECT_EQ(snap[1].kind, "histogram");
  EXPECT_EQ(snap[1].value, 1);  // observation count
  EXPECT_EQ(snap[1].sum, 3);
  EXPECT_EQ(snap[2].name, "z");
  EXPECT_EQ(snap[2].kind, "gauge");
  EXPECT_EQ(snap[2].value, 9);
}

// --- Tracer / Span --------------------------------------------------------

TEST(TracerTest, DisabledTracerRecordsNothing) {
  VirtualClock clock;
  Tracer tracer(&clock);
  tracer.RecordComplete("x", "phase", 0, -1, 0, 5);
  { Span span(&tracer, "y", "phase"); }
  { Span span(nullptr, "z", "phase"); }  // null tracer is explicitly fine
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.total_recorded(), 0);
}

TEST(TracerTest, VirtualClockSpanNesting) {
  VirtualClock clock(100);
  Tracer tracer(&clock);
  tracer.SetEnabled(true);
  {
    Span outer(&tracer, "outer", "phase");
    clock.Advance(5);
    {
      Span inner(&tracer, "inner", "phase", /*tid=*/2, /*pc=*/7);
      clock.Advance(7);
    }
    clock.Advance(2);
  }
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner closes first; seq preserves record order.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].start_us, 105);
  EXPECT_EQ(spans[0].dur_us, 7);
  EXPECT_EQ(spans[0].tid, 2);
  EXPECT_EQ(spans[0].pc, 7);
  EXPECT_EQ(spans[0].seq, 0);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].start_us, 100);
  EXPECT_EQ(spans[1].dur_us, 14);  // contains the inner span
  EXPECT_EQ(spans[1].seq, 1);
  // The outer span fully covers the inner one on the timeline.
  EXPECT_LE(spans[1].start_us, spans[0].start_us);
  EXPECT_GE(spans[1].start_us + spans[1].dur_us,
            spans[0].start_us + spans[0].dur_us);
}

TEST(TracerTest, RingEvictsOldestAndCounts) {
  VirtualClock clock;
  Tracer tracer(&clock, /*capacity=*/3);
  tracer.SetEnabled(true);
  for (int i = 0; i < 5; ++i) {
    tracer.RecordComplete("s" + std::to_string(i), "phase", 0, -1, i, 1);
  }
  EXPECT_EQ(tracer.size(), 3u);
  EXPECT_EQ(tracer.total_recorded(), 5);
  EXPECT_EQ(tracer.dropped(), 2);
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans.front().name, "s2");
  EXPECT_EQ(spans.back().name, "s4");
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
}

// --- Chrome trace export --------------------------------------------------

TEST(TraceExportTest, GoldenChromeTraceJson) {
  std::vector<SpanRecord> spans(2);
  spans[0] = {"parse", "phase", 0, -1, 10, 4, 0};
  spans[1] = {"algebra.select \"q\"", "kernel", 3, 9, 14, 2, 1};
  EXPECT_EQ(
      WriteChromeTrace(spans),
      "{\"traceEvents\":["
      "{\"name\":\"parse\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":10,"
      "\"dur\":4,\"pid\":1,\"tid\":0,\"args\":{\"seq\":0}},"
      "{\"name\":\"algebra.select \\\"q\\\"\",\"cat\":\"kernel\","
      "\"ph\":\"X\",\"ts\":14,\"dur\":2,\"pid\":1,\"tid\":3,"
      "\"args\":{\"seq\":1,\"pc\":9}}"
      "],\"displayTimeUnit\":\"ms\"}");
}

TEST(TraceExportTest, ParseRoundTrip) {
  std::vector<SpanRecord> spans(3);
  spans[0] = {"parse", "phase", 0, -1, 0, 12, 0};
  spans[1] = {"pass:dead-code", "pass", 0, -1, 12, 3, 1};
  spans[2] = {"line\nbreak\t\"x\"", "kernel", 1, 4, 15, 9, 2};
  auto parsed = ParseChromeTrace(WriteChromeTrace(spans));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value(), spans);
}

TEST(TraceExportTest, ParseAcceptsBareArrayAndSkipsNonComplete) {
  auto parsed = ParseChromeTrace(
      R"([{"name":"a","cat":"phase","ph":"X","ts":1,"dur":2,"tid":0,)"
      R"("args":{"seq":0}},)"
      R"({"name":"meta","ph":"M","pid":1},)"
      R"({"name":"b","cat":"kernel","ph":"X","ts":3.0,"dur":1,"tid":2,)"
      R"("args":{"seq":1,"pc":5}}])");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value()[0].name, "a");
  EXPECT_EQ(parsed.value()[1].pc, 5);
  EXPECT_EQ(parsed.value()[1].start_us, 3);
}

TEST(TraceExportTest, ParseRejectsMalformedJson) {
  EXPECT_TRUE(ParseChromeTrace("{\"traceEvents\":").status().code() == StatusCode::kParseError);
  EXPECT_TRUE(ParseChromeTrace("42").status().code() == StatusCode::kParseError);
  EXPECT_TRUE(ParseChromeTrace("{}").status().code() == StatusCode::kParseError);
  EXPECT_TRUE(ParseChromeTrace("[1,2]").status().code() == StatusCode::kParseError);
}

/// The acceptance-test shape in miniature: a fixed plan run sequentially on
/// a VirtualClock with synthetic padding produces a byte-for-byte
/// deterministic Chrome trace.
TEST(TraceExportTest, GoldenTraceForFixedPlan) {
  Catalog cat = MakeCatalog();
  VirtualClock clock;
  Tracer tracer(&clock);
  tracer.SetEnabled(true);

  engine::ExecOptions opts;
  opts.use_dataflow = false;
  opts.clock = &clock;
  opts.pad_instruction_usec = 10;
  opts.tracer = &tracer;
  engine::Interpreter interp(&cat);
  auto result = interp.Execute(FixedPlan(), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(
      WriteChromeTrace(tracer.Snapshot()),
      "{\"traceEvents\":["
      "{\"name\":\"sql.mvc\",\"cat\":\"kernel\",\"ph\":\"X\",\"ts\":0,"
      "\"dur\":10,\"pid\":1,\"tid\":0,\"args\":{\"seq\":0,\"pc\":0}},"
      "{\"name\":\"sql.bind\",\"cat\":\"kernel\",\"ph\":\"X\",\"ts\":10,"
      "\"dur\":10,\"pid\":1,\"tid\":0,\"args\":{\"seq\":1,\"pc\":1}},"
      "{\"name\":\"io.print\",\"cat\":\"kernel\",\"ph\":\"X\",\"ts\":20,"
      "\"dur\":10,\"pid\":1,\"tid\":0,\"args\":{\"seq\":2,\"pc\":2}}"
      "],\"displayTimeUnit\":\"ms\"}");
}

/// Under the dataflow scheduler span tids are query-local admission slots:
/// every tid stays inside [0, dop) — the trace thread contract the exported
/// trace must preserve.
TEST(TraceExportTest, DataflowSpansCarrySlotTids) {
  Catalog cat = MakeCatalog();
  VirtualClock clock;
  Tracer tracer(&clock);
  tracer.SetEnabled(true);
  engine::ExecOptions opts;
  opts.num_threads = 2;
  opts.tracer = &tracer;
  engine::Interpreter interp(&cat);
  auto result = interp.Execute(FixedPlan(), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  for (const SpanRecord& span : spans) {
    EXPECT_EQ(span.cat, "kernel");
    EXPECT_GE(span.tid, 0);
    EXPECT_LT(span.tid, 2);
    EXPECT_GE(span.pc, 0);
  }
}

// --- Flight recorder ------------------------------------------------------

TEST(FlightRecorderTest, RenderContainsNotesSpansAndMetrics) {
  Registry registry;
  registry.GetOrCreateCounter("fr_demo_total", "h")->Increment(6);
  VirtualClock clock(50);
  Tracer tracer(&clock);
  tracer.SetEnabled(true);
  tracer.RecordComplete("algebra.select", "kernel", 1, 3, 50, 4);
  FlightRecorder recorder(&registry, &tracer);
  recorder.SetEnabled(true);
  recorder.Note("query s0 admitted");
  std::string report = recorder.Render("test reason");
  EXPECT_NE(report.find("test reason"), std::string::npos) << report;
  EXPECT_NE(report.find("query s0 admitted"), std::string::npos) << report;
  EXPECT_NE(report.find("algebra.select"), std::string::npos) << report;
  EXPECT_NE(report.find("fr_demo_total"), std::string::npos) << report;
}

TEST(FlightRecorderTest, NotesAreBoundedAndDisabledNotesDropped) {
  Registry registry;
  Tracer tracer;
  FlightRecorder recorder(&registry, &tracer, /*max_notes=*/2);
  recorder.Note("ignored while disabled");
  recorder.SetEnabled(true);
  recorder.Note("one");
  recorder.Note("two");
  recorder.Note("three");
  std::string report = recorder.Render("r");
  EXPECT_EQ(report.find("ignored while disabled"), std::string::npos);
  EXPECT_EQ(report.find("one"), std::string::npos);  // evicted
  EXPECT_NE(report.find("two"), std::string::npos);
  EXPECT_NE(report.find("three"), std::string::npos);
}

TEST(FlightRecorderTest, DumpsOnQueryAbort) {
  Catalog cat = MakeCatalog();
  Registry registry;
  Tracer tracer;
  FlightRecorder recorder(&registry, &tracer);
  recorder.SetEnabled(true);
  const std::string path = testing::TempDir() + "obs_abort_dump.txt";
  ASSERT_TRUE(recorder.SetOutputFile(path).ok());

  engine::ExecOptions opts;
  opts.use_dataflow = false;
  opts.recorder = &recorder;
  engine::Interpreter interp(&cat);
  auto result = interp.Execute(FixedPlan("no_such_table"), opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(recorder.dump_count(), 1);
  ASSERT_TRUE(recorder.SetOutputFile("").ok());  // flush + close

  std::string dump = ReadFile(path);
  EXPECT_NE(dump.find("query aborted"), std::string::npos) << dump;
  EXPECT_NE(dump.find("no_such_table"), std::string::npos) << dump;
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, DisabledRecorderStaysSilentOnAbort) {
  Catalog cat = MakeCatalog();
  Registry registry;
  Tracer tracer;
  FlightRecorder recorder(&registry, &tracer);  // never enabled
  engine::ExecOptions opts;
  opts.use_dataflow = false;
  opts.recorder = &recorder;
  engine::Interpreter interp(&cat);
  ASSERT_FALSE(interp.Execute(FixedPlan("no_such_table"), opts).ok());
  EXPECT_EQ(recorder.dump_count(), 0);
}

/// A deliberately broken pass (reverses the plan): the pipeline's post-pass
/// lint fails, and the process-wide flight recorder captures the black box.
class ClobberPass : public optimizer::Pass {
 public:
  const char* name() const override { return "clobber"; }
  Result<bool> Run(Program* program) override {
    std::vector<mal::Instruction> reversed(program->instructions().rbegin(),
                                           program->instructions().rend());
    program->ReplaceInstructions(std::move(reversed));
    return true;
  }
};

TEST(FlightRecorderTest, DumpsOnPipelineFailure) {
  FlightRecorder* recorder = FlightRecorder::Default();
  const std::string path = testing::TempDir() + "obs_pipeline_dump.txt";
  ASSERT_TRUE(recorder->SetOutputFile(path).ok());
  recorder->SetEnabled(true);
  int64_t dumps_before = recorder->dump_count();

  Program p = FixedPlan();
  optimizer::Pipeline pipeline;
  pipeline.Add(std::make_unique<ClobberPass>());
  auto fired = pipeline.Run(&p);
  ASSERT_FALSE(fired.ok());

  recorder->SetEnabled(false);
  ASSERT_TRUE(recorder->SetOutputFile("").ok());
  EXPECT_EQ(recorder->dump_count(), dumps_before + 1);
  std::string dump = ReadFile(path);
  EXPECT_NE(dump.find("clobber"), std::string::npos) << dump;
  std::remove(path.c_str());
}

// --- Built-in instrumentation --------------------------------------------

TEST(InstrumentationTest, PoolAndKernelMetricsAdvance) {
  Registry* registry = Registry::Default();
  Catalog cat = MakeCatalog();
  SetEnabled(true);  // opt into latency observation for this test
  int64_t executed_before =
      CounterOr0(registry, "stetho_pool_executed_total");

  engine::ExecOptions opts;
  opts.num_threads = 2;
  engine::Interpreter interp(&cat);
  auto result = interp.Execute(FixedPlan(), opts);
  SetEnabled(false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Every instruction ran as one pool task.
  EXPECT_GE(registry->CounterValue("stetho_pool_executed_total").value(),
            executed_before + 3);
  // The pool registered its gauge/histogram companions.
  EXPECT_TRUE(registry->GaugeValue("stetho_pool_queue_depth").ok());
  EXPECT_TRUE(registry->FindHistogram("stetho_pool_task_usec").ok());
  EXPECT_TRUE(registry->CounterValue("stetho_pool_steals_total").ok());
  EXPECT_TRUE(registry->CounterValue("stetho_pool_wakeups_total").ok());
  // Kernel families from the fixed plan: sql.* and io.*.
  EXPECT_GE(registry->CounterValue("stetho_kernel_sql_calls_total").value(), 2);
  EXPECT_GE(registry->CounterValue("stetho_kernel_io_calls_total").value(), 1);
  EXPECT_TRUE(registry->FindHistogram("stetho_kernel_sql_usec").ok());
}

TEST(InstrumentationTest, RingSinkCountsOverwrites) {
  Registry* registry = Registry::Default();
  int64_t before =
      CounterOr0(registry, "stetho_profiler_ring_dropped_total");
  profiler::RingBufferSink sink(2);
  for (int i = 0; i < 5; ++i) {
    profiler::TraceEvent e;
    e.pc = i;
    sink.Consume(e);
  }
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.total_consumed(), 5);
  EXPECT_EQ(sink.dropped(), 3);
  EXPECT_EQ(
      registry->CounterValue("stetho_profiler_ring_dropped_total").value(),
      before + 3);
}

TEST(InstrumentationTest, DatagramSinkCountsFailedSends) {
  Registry* registry = Registry::Default();
  int64_t before =
      CounterOr0(registry, "stetho_net_trace_dropped_total");
  auto [sender, receiver] = net::Channel::CreatePair();
  net::DatagramTraceSink sink(
      std::shared_ptr<net::DatagramSender>(std::move(sender)));
  profiler::TraceEvent e;
  sink.Consume(e);
  EXPECT_EQ(sink.dropped(), 0);
  receiver.reset();  // closed peer: every further send is a dropped event
  sink.Consume(e);
  sink.Consume(e);
  EXPECT_EQ(sink.dropped(), 2);
  EXPECT_EQ(registry->CounterValue("stetho_net_trace_dropped_total").value(),
            before + 2);
}

TEST(InstrumentationTest, UdpCountersTrackDatagrams) {
  Registry* registry = Registry::Default();
  int64_t sent_before =
      CounterOr0(registry, "stetho_net_datagrams_sent_total");
  int64_t recv_before =
      CounterOr0(registry, "stetho_net_datagrams_recv_total");
  auto receiver = net::UdpReceiver::Bind(0);
  ASSERT_TRUE(receiver.ok());
  auto sender = net::UdpSender::Connect(receiver.value()->port());
  ASSERT_TRUE(sender.ok());
  ASSERT_TRUE(sender.value()->Send("ping").ok());
  std::string payload;
  auto got = receiver.value()->Receive(&payload, 2000);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got.value());
  EXPECT_EQ(payload, "ping");
  EXPECT_GE(registry->CounterValue("stetho_net_datagrams_sent_total").value(),
            sent_before + 1);
  EXPECT_GE(registry->CounterValue("stetho_net_datagrams_recv_total").value(),
            recv_before + 1);
}

TEST(InstrumentationTest, ServerEmitsPhaseSpansAndOptimizerMetrics) {
  Registry* registry = Registry::Default();
  Tracer* tracer = Tracer::Default();
  tracer->SetEnabled(true);
  tracer->Clear();
  SetEnabled(true);  // pass/task latency histograms observe only when active
  int64_t fired_before =
      CounterOr0(registry, "stetho_opt_passes_fired_total");

  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  auto cat = tpch::GenerateTpch(config);
  ASSERT_TRUE(cat.ok());
  server::MserverOptions options;
  options.dop = 2;  // force the shared pool even on a single-CPU machine
  server::Mserver server(std::move(cat).value(), options);
  auto outcome = server.ExecuteSql(tpch::GetQuery("q6").value().sql);
  SetEnabled(false);
  tracer->SetEnabled(false);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  std::vector<std::string> phases;
  for (const SpanRecord& span : tracer->Snapshot()) {
    if (span.cat == "phase") phases.push_back(span.name);
    if (span.cat == "pass") {
      EXPECT_EQ(span.name.rfind("pass:", 0), 0u) << span.name;
    }
  }
  tracer->Clear();
  // Each phase scope closes before the next opens, so record order is the
  // pipeline order.
  EXPECT_EQ(phases, (std::vector<std::string>{"parse", "optimize", "admit",
                                              "execute"}));
  EXPECT_GT(registry->CounterValue("stetho_opt_passes_fired_total").value(),
            fired_before);
  EXPECT_TRUE(registry->FindHistogram("stetho_opt_pass_usec").ok());
  // The server's dump command is one string away from Prometheus scrape.
  std::string text = server.MetricsText();
  EXPECT_NE(text.find("stetho_pool_executed_total"), std::string::npos);

  // Profiler emission counters advanced alongside (per-event accounting).
  EXPECT_GE(
      registry->CounterValue("stetho_profiler_events_emitted_total").value(),
      2);
}

// --- trace-span-conformance lint check ------------------------------------

profiler::TraceEvent DoneEvent(int pc, int thread) {
  profiler::TraceEvent e;
  e.pc = pc;
  e.thread = thread;
  e.state = profiler::EventState::kDone;
  return e;
}

std::vector<analysis::Diagnostic> RunConformance(
    const std::vector<profiler::TraceEvent>& trace,
    const std::vector<SpanRecord>& spans) {
  analysis::CheckContext ctx;
  ctx.trace = &trace;
  ctx.spans = &spans;
  std::vector<analysis::Diagnostic> out;
  analysis::MakeTraceSpanConformanceCheck()->Run(ctx, &out);
  return out;
}

TEST(TraceSpanConformanceTest, CleanWhenSpansMatchTrace) {
  std::vector<profiler::TraceEvent> trace = {DoneEvent(0, 0), DoneEvent(1, 1)};
  std::vector<SpanRecord> spans(3);
  spans[0] = {"sql.bind", "kernel", 0, 0, 0, 5, 0};
  spans[1] = {"algebra.select", "kernel", 1, 1, 5, 5, 1};
  spans[2] = {"execute", "phase", 0, -1, 0, 10, 2};  // phases are exempt
  EXPECT_TRUE(RunConformance(trace, spans).empty());
}

TEST(TraceSpanConformanceTest, FlagsMissingSpanAndTidDivergence) {
  std::vector<profiler::TraceEvent> trace = {DoneEvent(0, 0), DoneEvent(1, 1)};
  std::vector<SpanRecord> spans(1);
  spans[0] = {"sql.bind", "kernel", 3, 0, 0, 5, 0};  // pc 1 missing, tid wrong
  std::vector<analysis::Diagnostic> out = RunConformance(trace, spans);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NE(out[0].message.find("thread id diverges"), std::string::npos)
      << out[0].message;
  EXPECT_NE(out[1].message.find("0 kernel span(s)"), std::string::npos)
      << out[1].message;
}

TEST(TraceSpanConformanceTest, WarnsOnSpanWithoutProfilerPair) {
  std::vector<profiler::TraceEvent> trace;  // filter dropped everything
  std::vector<SpanRecord> spans(1);
  spans[0] = {"sql.bind", "kernel", 0, 2, 0, 5, 0};
  std::vector<analysis::Diagnostic> out = RunConformance(trace, spans);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].severity, analysis::Severity::kWarning);
}

TEST(TraceSpanConformanceTest, ErrorsOnKernelSpanWithoutPc) {
  std::vector<profiler::TraceEvent> trace = {DoneEvent(0, 0)};
  std::vector<SpanRecord> spans(2);
  spans[0] = {"sql.bind", "kernel", 0, 0, 0, 5, 0};
  spans[1] = {"mystery", "kernel", 0, -1, 5, 5, 1};
  std::vector<analysis::Diagnostic> out = RunConformance(trace, spans);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].message.find("carries no pc"), std::string::npos);
}

// --- Concurrency stress (run under TSan via the sanitizer presets) --------

TEST(ObsStressTest, ConcurrentRegistryTracerAndSnapshots) {
  Registry registry;
  VirtualClock clock;
  Tracer tracer(&clock, /*capacity=*/256);
  tracer.SetEnabled(true);
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kIters; ++i) {
        // All threads race GetOrCreate on a shared name plus one of their
        // own, interleaved with hot-path updates and reader snapshots.
        registry.GetOrCreateCounter("stress_shared_total", "h")->Increment();
        registry
            .GetOrCreateHistogram("stress_usec_" + std::to_string(t % 3), "h",
                                  Histogram::DefaultLatencyBounds())
            ->Observe(i);
        tracer.RecordComplete("op", "kernel", t, i, i, 1);
        if (i % 64 == 0) {
          (void)registry.ExpositionText();
          (void)registry.Snapshot();
          (void)tracer.Snapshot();
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.CounterValue("stress_shared_total").value(),
            kThreads * kIters);
  EXPECT_EQ(tracer.total_recorded(), kThreads * kIters);
  EXPECT_EQ(tracer.size() + static_cast<size_t>(tracer.dropped()),
            static_cast<size_t>(kThreads * kIters));
}

TEST(ObsStressTest, ConcurrentQueriesShareDefaultRegistry) {
  Catalog cat = MakeCatalog();
  Registry* registry = Registry::Default();
  SetEnabled(true);
  int64_t before =
      CounterOr0(registry, "stetho_kernel_sql_calls_total");
  constexpr int kQueries = 6;
  std::vector<std::thread> threads;
  threads.reserve(kQueries);
  for (int q = 0; q < kQueries; ++q) {
    threads.emplace_back([&cat] {
      engine::ExecOptions opts;
      opts.num_threads = 2;
      engine::Interpreter interp(&cat);
      auto result = interp.Execute(FixedPlan(), opts);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
    });
  }
  for (std::thread& t : threads) t.join();
  SetEnabled(false);
  EXPECT_EQ(registry->CounterValue("stetho_kernel_sql_calls_total").value(),
            before + 2 * kQueries);
}


// --- metric-naming audit (satellite of the pipeline-health issue) ---

TEST(HistogramTest, QuantileEstimateInterpolatesInsideBuckets) {
  Registry reg;
  Histogram* h = reg.GetOrCreateHistogram("stetho_qtest_usec", "h",
                                          {10, 100, 1000});
  EXPECT_EQ(h->QuantileEstimate(0.5), 0.0);  // empty
  // 100 observations uniformly inside the (10, 100] bucket.
  for (int i = 0; i < 100; ++i) h->Observe(55);
  double p50 = h->QuantileEstimate(0.5);
  EXPECT_GT(p50, 10.0);
  EXPECT_LE(p50, 100.0);
  // Everything in one bucket: p95 lands in the same bucket as p50.
  EXPECT_LE(h->QuantileEstimate(0.95), 100.0);
  // An observation past the last bound clamps to it rather than inventing
  // an upper edge for +Inf.
  for (int i = 0; i < 1000; ++i) h->Observe(5000);
  EXPECT_EQ(h->QuantileEstimate(0.99), 1000.0);
}

TEST(HistogramTest, QuantileEstimateOrdersQuantiles) {
  Registry reg;
  Histogram* h = reg.GetOrCreateHistogram(
      "stetho_qorder_usec", "h", Histogram::DefaultLatencyBounds());
  for (int64_t v = 1; v <= 2000; ++v) h->Observe(v);
  const double p50 = h->QuantileEstimate(0.5);
  const double p95 = h->QuantileEstimate(0.95);
  const double p99 = h->QuantileEstimate(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // The estimate is bucket-bounded: the true p50 (1000) sits inside the
  // bucket the estimate falls in.
  EXPECT_NEAR(p50, 1000.0, 1000.0);
}

TEST(RegistryTest, HistogramSummaryTextListsNonEmptyHistograms) {
  Registry reg;
  Histogram* seen = reg.GetOrCreateHistogram("stetho_summary_seen_usec", "h",
                                             {10, 100});
  reg.GetOrCreateHistogram("stetho_summary_empty_usec", "h", {10, 100});
  for (int i = 0; i < 10; ++i) seen->Observe(42);
  const std::string summary = reg.HistogramSummaryText();
  EXPECT_NE(summary.find("stetho_summary_seen_usec"), std::string::npos)
      << summary;
  EXPECT_NE(summary.find("p50="), std::string::npos) << summary;
  EXPECT_NE(summary.find("p95="), std::string::npos) << summary;
  EXPECT_NE(summary.find("p99="), std::string::npos) << summary;
  EXPECT_NE(summary.find("count=10"), std::string::npos) << summary;
  // Histograms with no observations stay out of the summary.
  EXPECT_EQ(summary.find("stetho_summary_empty_usec"), std::string::npos)
      << summary;
}

TEST(FlightRecorderTest, BundleDirWritesOrdinalFiles) {
  const std::string dir = testing::TempDir() + "obs_flight_bundles";
  mkdir(dir.c_str(), 0755);
  Registry registry;
  Tracer tracer;
  FlightRecorder recorder(&registry, &tracer);
  recorder.SetEnabled(true);
  recorder.Note("bundle note");
  ASSERT_TRUE(recorder.SetOutputDir(dir).ok());
  EXPECT_EQ(recorder.NextBundlePath(), dir + "/flight_0001.txt");

  recorder.Dump("first failure");
  recorder.Dump("second failure");
  EXPECT_EQ(recorder.dump_count(), 2);
  EXPECT_EQ(recorder.NextBundlePath(), dir + "/flight_0003.txt");

  const std::string first = ReadFile(dir + "/flight_0001.txt");
  EXPECT_NE(first.find("first failure"), std::string::npos) << first;
  EXPECT_NE(first.find("bundle note"), std::string::npos) << first;
  const std::string second = ReadFile(dir + "/flight_0002.txt");
  EXPECT_NE(second.find("second failure"), std::string::npos) << second;

  // "" restores single-stream output and empties the bundle path.
  ASSERT_TRUE(recorder.SetOutputDir("").ok());
  EXPECT_EQ(recorder.NextBundlePath(), "");
  std::remove((dir + "/flight_0001.txt").c_str());
  std::remove((dir + "/flight_0002.txt").c_str());
}

TEST(FlightRecorderTest, FlightRingFromEnvParsesAndFallsBack) {
  const char* saved = std::getenv("STETHO_FLIGHT_RING");
  const std::string restore = saved == nullptr ? "" : saved;
  ::setenv("STETHO_FLIGHT_RING", "128", 1);
  EXPECT_EQ(FlightRingFromEnv(64), 128u);
  ::setenv("STETHO_FLIGHT_RING", "not-a-number", 1);
  EXPECT_EQ(FlightRingFromEnv(64), 64u);
  ::setenv("STETHO_FLIGHT_RING", "-5", 1);
  EXPECT_EQ(FlightRingFromEnv(64), 64u);
  ::unsetenv("STETHO_FLIGHT_RING");
  EXPECT_EQ(FlightRingFromEnv(64), 64u);
  if (saved != nullptr) ::setenv("STETHO_FLIGHT_RING", restore.c_str(), 1);
}

TEST(MetricsAuditTest, FlagsEveryNamingRuleViolation) {
  Registry reg;
  reg.GetOrCreateCounter("stetho_events", "counter missing _total");
  reg.GetOrCreateGauge("stetho_depth_total", "gauge posing as a counter");
  reg.GetOrCreateHistogram("stetho_delay", "histogram without a unit suffix",
                           Histogram::DefaultLatencyBounds());
  reg.GetOrCreateCounter("stetho_Bad_case_total", "uppercase letters");
  std::vector<std::string> violations = reg.AuditMetricNames();
  ASSERT_EQ(violations.size(), 4u);
  std::string all;
  for (const std::string& v : violations) all += v + "\n";
  EXPECT_NE(all.find("stetho_events"), std::string::npos) << all;
  EXPECT_NE(all.find("stetho_depth_total"), std::string::npos) << all;
  EXPECT_NE(all.find("stetho_delay"), std::string::npos) << all;
  EXPECT_NE(all.find("stetho_Bad_case_total"), std::string::npos) << all;
}

TEST(MetricsAuditTest, AcceptsConformingNames) {
  Registry reg;
  reg.GetOrCreateCounter("stetho_pipe_lost_total", "ok");
  reg.GetOrCreateGauge("stetho_query_progress_ratio", "ok");
  reg.GetOrCreateHistogram("stetho_pipe_latency_usec", "ok",
                           Histogram::DefaultLatencyBounds());
  reg.GetOrCreateHistogram("stetho_batch_bytes", "ok",
                           Histogram::DefaultLatencyBounds());
  EXPECT_TRUE(reg.AuditMetricNames().empty());
}

/// The audit that matters: every metric the platform actually registers
/// conforms. ctest runs each case in its own process, so the test first
/// drives a query through the instrumented stack (server, pool, kernels,
/// optimizer, profiler, pipe health, progress) to populate the default
/// registry with the real stetho_* catalog.
TEST(MetricsAuditTest, DefaultRegistryCatalogIsClean) {
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  auto cat = tpch::GenerateTpch(config);
  ASSERT_TRUE(cat.ok());
  server::MserverOptions options;
  options.dop = 2;
  server::Mserver server(std::move(cat).value(), options);
  ASSERT_TRUE(server.ExecuteSql("select count(*) from nation").ok());
  // Register the rest of the profile-store family (loads / evictions /
  // corrupt-lines fire on load paths the query above does not take).
  {
    const std::string path = testing::TempDir() + "obs_audit.profile";
    std::ofstream out(path);
    out << "not a profile record\n";
    out.close();
    ProfileStoreOptions store_options;
    store_options.capacity = 1;
    ProfileStore store(store_options);
    ASSERT_TRUE(store.LoadFile(path).ok());
    QueryObservation observation;
    observation.shape_hash = 0x1;
    observation.plan_size = 1;
    observation.pcs.push_back({0, 5, 0, 1});
    ASSERT_TRUE(store.Fold(observation).ok());
    observation.shape_hash = 0x2;
    ASSERT_TRUE(store.Fold(observation).ok());  // evicts shape 0x1
    std::remove(path.c_str());
  }
  net::StreamHealth health;
  profiler::TraceEvent e;
  e.event = 0;
  e.state = profiler::EventState::kDone;
  health.Observe(e, /*ingest_us=*/1);
  health.ObserveStaleness(2);
  health.Finalize();
  (void)server.MetricsText();

  std::vector<std::string> violations =
      Registry::Default()->AuditMetricNames();
  std::string all;
  for (const std::string& v : violations) all += v + "\n";
  EXPECT_TRUE(violations.empty()) << all;
}

}  // namespace
}  // namespace stetho::obs
