// Property tests pitting engine kernels against naive reference
// implementations on randomized columns.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "engine/interpreter.h"
#include "mal/program.h"
#include "storage/table.h"

namespace stetho::engine {
namespace {

using mal::Argument;
using mal::MalType;
using mal::Program;
using storage::Column;
using storage::ColumnPtr;
using storage::DataType;
using storage::Value;

/// Random int64 column with values in [0, card) and optional NULLs.
ColumnPtr RandomIntColumn(SplitMix64* rng, size_t n, int64_t card,
                          double null_p = 0.0) {
  ColumnPtr col = Column::Make(DataType::kInt64);
  for (size_t i = 0; i < n; ++i) {
    if (null_p > 0 && rng->NextBool(null_p)) {
      col->AppendNull();
    } else {
      col->AppendInt(static_cast<int64_t>(rng->NextBounded(
          static_cast<uint64_t>(card))));
    }
  }
  return col;
}

/// Runs a single-instruction plan over injected input BATs and returns the
/// printed outputs.
Result<engine::QueryResult> RunKernel(
    const std::string& module, const std::string& function,
    const std::vector<ColumnPtr>& bat_args, const std::vector<Value>& tail,
    size_t num_results) {
  storage::Catalog cat;
  Program p;
  // Materialize inputs via bat.densebat+... simpler: register them as a
  // table and bind. Shortest: use a custom one-off registry kernel? Instead
  // store each input as a single-column table.
  std::vector<int> input_vars;
  int mvc = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("sql", "mvc", {mvc}, {});
  for (size_t i = 0; i < bat_args.size(); ++i) {
    std::string tname = "t" + std::to_string(i);
    storage::TablePtr t = storage::Table::Make(
        tname, storage::Schema({{"c", bat_args[i]->type()}}));
    // Append rows through the column directly: rebuild via AppendRow.
    for (size_t r = 0; r < bat_args[i]->size(); ++r) {
      EXPECT_TRUE(t->AppendRow({bat_args[i]->GetValue(r)}).ok());
    }
    EXPECT_TRUE(cat.AddTable(t).ok());
    int v = p.AddVariable(MalType::Bat(bat_args[i]->type()));
    p.Add("sql", "bind", {v},
          {Argument::Var(mvc), Argument::Const(Value::String("sys")),
           Argument::Const(Value::String(tname)),
           Argument::Const(Value::String("c")), Argument::Const(Value::Int(0))});
    input_vars.push_back(v);
  }
  std::vector<Argument> args;
  for (int v : input_vars) args.push_back(Argument::Var(v));
  for (const Value& v : tail) args.push_back(Argument::Const(v));
  std::vector<int> results;
  for (size_t i = 0; i < num_results; ++i) {
    results.push_back(p.AddVariable(MalType::Bat(DataType::kOid)));
  }
  p.Add(module, function, results, std::move(args));
  for (int r : results) p.Add("io", "print", {}, {Argument::Var(r)});
  Interpreter interp(&cat);
  ExecOptions opts;
  opts.use_dataflow = false;
  return interp.Execute(p, opts);
}

class KernelOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelOracleTest, ThetaSelectMatchesScan) {
  SplitMix64 rng(GetParam());
  ColumnPtr col = RandomIntColumn(&rng, 500, 50, 0.05);
  ColumnPtr cand = Column::MakeOidRange(0, col->size());
  const char* ops[] = {"==", "!=", "<", "<=", ">", ">="};
  for (const char* op : ops) {
    int64_t pivot = static_cast<int64_t>(rng.NextBounded(50));
    auto r = RunKernel("algebra", "thetaselect", {col, cand},
                       {Value::Int(pivot), Value::String(op)}, 1);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ColumnPtr got = r.value().columns[0].column;
    // Reference scan.
    std::vector<uint64_t> expected;
    for (size_t i = 0; i < col->size(); ++i) {
      if (col->IsNull(i)) continue;
      int64_t v = col->IntAt(i);
      bool keep = false;
      std::string o = op;
      if (o == "==") keep = v == pivot;
      if (o == "!=") keep = v != pivot;
      if (o == "<") keep = v < pivot;
      if (o == "<=") keep = v <= pivot;
      if (o == ">") keep = v > pivot;
      if (o == ">=") keep = v >= pivot;
      if (keep) expected.push_back(i);
    }
    ASSERT_EQ(got->size(), expected.size()) << op;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got->OidAt(i), expected[i]) << op;
    }
  }
}

TEST_P(KernelOracleTest, JoinMatchesNestedLoop) {
  SplitMix64 rng(GetParam());
  ColumnPtr l = RandomIntColumn(&rng, 120, 25, 0.05);
  ColumnPtr r = RandomIntColumn(&rng, 90, 25, 0.05);
  auto res = RunKernel("algebra", "join", {l, r}, {}, 2);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ColumnPtr lo = res.value().columns[0].column;
  ColumnPtr ro = res.value().columns[1].column;
  ASSERT_EQ(lo->size(), ro->size());

  // Reference nested loop (NULLs never match). Order may differ: compare
  // as multisets of pairs.
  std::multiset<std::pair<uint64_t, uint64_t>> expected;
  for (size_t i = 0; i < l->size(); ++i) {
    if (l->IsNull(i)) continue;
    for (size_t j = 0; j < r->size(); ++j) {
      if (r->IsNull(j)) continue;
      if (l->IntAt(i) == r->IntAt(j)) expected.emplace(i, j);
    }
  }
  std::multiset<std::pair<uint64_t, uint64_t>> got;
  for (size_t k = 0; k < lo->size(); ++k) {
    got.emplace(lo->OidAt(k), ro->OidAt(k));
  }
  EXPECT_EQ(got, expected);
}

TEST_P(KernelOracleTest, GroupMatchesMap) {
  SplitMix64 rng(GetParam());
  ColumnPtr col = RandomIntColumn(&rng, 300, 12, 0.1);
  auto res = RunKernel("group", "group", {col}, {}, 3);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ColumnPtr groups = res.value().columns[0].column;
  ColumnPtr extents = res.value().columns[1].column;
  ColumnPtr histo = res.value().columns[2].column;
  ASSERT_EQ(groups->size(), col->size());

  // Reference: same value (or NULL) -> same group; groups consistent with
  // extents representatives; histo sums to row count.
  std::map<std::pair<bool, int64_t>, uint64_t> first_group;
  for (size_t i = 0; i < col->size(); ++i) {
    std::pair<bool, int64_t> key{col->IsNull(i),
                                 col->IsNull(i) ? 0 : col->IntAt(i)};
    uint64_t g = groups->OidAt(i);
    auto [it, inserted] = first_group.emplace(key, g);
    EXPECT_EQ(it->second, g) << "row " << i;
  }
  EXPECT_EQ(first_group.size(), extents->size());
  int64_t total = 0;
  for (size_t g = 0; g < histo->size(); ++g) total += histo->IntAt(g);
  EXPECT_EQ(total, static_cast<int64_t>(col->size()));
  // Representatives carry their group's value.
  for (size_t g = 0; g < extents->size(); ++g) {
    size_t rep = extents->OidAt(g);
    EXPECT_EQ(groups->OidAt(rep), g);
  }
}

TEST_P(KernelOracleTest, SortIsSortedPermutation) {
  SplitMix64 rng(GetParam());
  ColumnPtr col = RandomIntColumn(&rng, 200, 1000, 0.05);
  auto res = RunKernel("algebra", "sort", {col}, {Value::Bool(false)}, 2);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ColumnPtr sorted = res.value().columns[0].column;
  ColumnPtr perm = res.value().columns[1].column;
  ASSERT_EQ(sorted->size(), col->size());
  // Monotone (NULLs first) and a true permutation of positions.
  for (size_t i = 1; i < sorted->size(); ++i) {
    EXPECT_LE(sorted->GetValue(i - 1).Compare(sorted->GetValue(i)), 0);
  }
  std::set<uint64_t> seen;
  for (size_t i = 0; i < perm->size(); ++i) {
    EXPECT_TRUE(seen.insert(perm->OidAt(i)).second);
    EXPECT_EQ(sorted->GetValue(i), col->GetValue(perm->OidAt(i)));
  }
}

TEST_P(KernelOracleTest, GroupedSumMatchesMap) {
  SplitMix64 rng(GetParam());
  ColumnPtr keys = RandomIntColumn(&rng, 250, 8);
  ColumnPtr vals = RandomIntColumn(&rng, 250, 100);
  // group then subsum through a two-instruction plan.
  storage::Catalog cat;
  storage::TablePtr t = storage::Table::Make(
      "t", storage::Schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}}));
  for (size_t i = 0; i < keys->size(); ++i) {
    ASSERT_TRUE(
        t->AppendRow({keys->GetValue(i), vals->GetValue(i)}).ok());
  }
  ASSERT_TRUE(cat.AddTable(t).ok());
  Program p;
  int mvc = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("sql", "mvc", {mvc}, {});
  auto bind = [&](const char* name) {
    int v = p.AddVariable(MalType::Bat(DataType::kInt64));
    p.Add("sql", "bind", {v},
          {Argument::Var(mvc), Argument::Const(Value::String("sys")),
           Argument::Const(Value::String("t")),
           Argument::Const(Value::String(name)), Argument::Const(Value::Int(0))});
    return v;
  };
  int k = bind("k");
  int v = bind("v");
  int g = p.AddVariable(MalType::Bat(DataType::kOid));
  int e = p.AddVariable(MalType::Bat(DataType::kOid));
  int h = p.AddVariable(MalType::Bat(DataType::kInt64));
  p.Add("group", "group", {g, e, h}, {Argument::Var(k)});
  int sums = p.AddVariable(MalType::Bat(DataType::kInt64));
  p.Add("aggr", "subsum", {sums},
        {Argument::Var(v), Argument::Var(g), Argument::Var(e)});
  int rep = p.AddVariable(MalType::Bat(DataType::kInt64));
  p.Add("algebra", "projection", {rep}, {Argument::Var(e), Argument::Var(k)});
  p.Add("io", "print", {}, {Argument::Var(rep)});
  p.Add("io", "print", {}, {Argument::Var(sums)});
  Interpreter interp(&cat);
  auto res = interp.Execute(p, {});
  ASSERT_TRUE(res.ok()) << res.status().ToString();

  std::map<int64_t, int64_t> expected;
  for (size_t i = 0; i < keys->size(); ++i) {
    expected[keys->IntAt(i)] += vals->IntAt(i);
  }
  ColumnPtr rep_c = res.value().columns[0].column;
  ColumnPtr sum_c = res.value().columns[1].column;
  ASSERT_EQ(rep_c->size(), expected.size());
  for (size_t i = 0; i < rep_c->size(); ++i) {
    EXPECT_EQ(sum_c->IntAt(i), expected[rep_c->IntAt(i)]) << rep_c->IntAt(i);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelOracleTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace stetho::engine
