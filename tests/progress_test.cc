#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "analysis/progress.h"
#include "mal/parser.h"
#include "scope/trace.h"
#include "server/mserver.h"
#include "tpch/dbgen.h"

namespace stetho::analysis {
namespace {

using profiler::EventState;
using profiler::TraceEvent;

std::string ExamplePath(const char* name) {
  return std::string(STETHO_EXAMPLES_DIR) + "/" + name;
}

/// The recorded demo artifacts: the c4_q1 plan (with its cardinality
/// pragmas, so the byte model is bounded) and its trace's done-events in
/// emission order — the ground truth the estimator is graded against.
class ProgressExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::ifstream in(ExamplePath("c4_q1.mal"));
    ASSERT_TRUE(in.good()) << "missing " << ExamplePath("c4_q1.mal");
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    auto program = mal::ParseProgram(text);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    program_ = std::move(program).value();

    auto events = scope::ReadTraceFile(ExamplePath("c4_q1.trace"));
    ASSERT_TRUE(events.ok()) << events.status().ToString();
    for (const TraceEvent& e : events.value()) {
      if (e.state == EventState::kDone) done_.push_back(e);
    }
    ASSERT_FALSE(done_.empty());
    std::stable_sort(done_.begin(), done_.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.time_us < b.time_us;
                     });
  }

  mal::Program program_;
  std::vector<TraceEvent> done_;  // done-events in emission-time order
};

TEST_F(ProgressExampleTest, ModelPricesEveryInstruction) {
  auto model = ProgressModel::Build(program_);
  ASSERT_EQ(model->plan_size(), program_.size());
  double sum = 0;
  for (size_t pc = 0; pc < model->plan_size(); ++pc) {
    EXPECT_GE(model->weight(static_cast<int>(pc)), 1.0) << pc;
    sum += model->weight(static_cast<int>(pc));
  }
  EXPECT_DOUBLE_EQ(model->total_weight(), sum);
  EXPECT_GT(model->critical_path_weight(), 0.0);
  EXPECT_LE(model->critical_path_weight(), model->total_weight());
  // Nothing done: the full critical path remains.
  std::vector<bool> none(model->plan_size(), false);
  EXPECT_DOUBLE_EQ(model->RemainingCriticalWeight(none),
                   model->critical_path_weight());
  std::vector<bool> all(model->plan_size(), true);
  EXPECT_DOUBLE_EQ(model->RemainingCriticalWeight(all), 0.0);
}

TEST_F(ProgressExampleTest, RatioMonotoneAndFinishesAtOne) {
  ProgressEstimator estimator(ProgressModel::Build(program_));
  EXPECT_DOUBLE_EQ(estimator.ratio(), 0.0);
  EXPECT_EQ(estimator.EtaUsec(), -1);  // nothing observed yet
  double last = 0.0;
  for (const TraceEvent& e : done_) {
    estimator.ObserveEvent(e);
    const double r = estimator.ratio();
    EXPECT_GE(r, last);
    EXPECT_LE(r, 1.0);
    last = r;
  }
  EXPECT_GT(estimator.done_count(), 0);
  EXPECT_GT(last, 0.9);  // the trace covers (nearly) the whole plan
  estimator.MarkFinished();
  EXPECT_DOUBLE_EQ(estimator.ratio(), 1.0);
  EXPECT_EQ(estimator.EtaUsec(), 0);
  EXPECT_NE(estimator.ScoreboardLine("q1").find("100.0%"), std::string::npos);
}

TEST_F(ProgressExampleTest, StartEventsDoNotAdvanceProgress) {
  ProgressEstimator estimator(ProgressModel::Build(program_));
  TraceEvent start = done_.front();
  start.state = EventState::kStart;
  estimator.ObserveEvent(start);
  EXPECT_EQ(estimator.done_count(), 0);
  EXPECT_DOUBLE_EQ(estimator.ratio(), 0.0);
}

TEST_F(ProgressExampleTest, DuplicateDoneEventsAccountOnce) {
  ProgressEstimator estimator(ProgressModel::Build(program_));
  estimator.ObserveEvent(done_.front());
  const double once = estimator.ratio();
  estimator.ObserveEvent(done_.front());  // duplicated delivery
  EXPECT_EQ(estimator.done_count(), 1);
  EXPECT_DOUBLE_EQ(estimator.ratio(), once);
}

/// Satellite (f) acceptance: replay the recorded trace into the estimator
/// in event-time order and grade the ETA at the halfway point (first sample
/// at ratio >= 0.5) against the true remaining event-time. The model prices
/// work in bytes, not microseconds, so the grade is a 2x band, not
/// equality.
TEST_F(ProgressExampleTest, EtaAtHalfwayWithinTwofoldOfTruth) {
  ProgressEstimator estimator(ProgressModel::Build(program_));
  const int64_t end_us = done_.back().time_us;
  int64_t eta = -1;
  int64_t truth = -1;
  for (const TraceEvent& e : done_) {
    estimator.ObserveEvent(e);
    if (eta < 0 && estimator.ratio() >= 0.5) {
      eta = estimator.EtaUsec();
      truth = end_us - e.time_us;
    }
  }
  ASSERT_GE(eta, 0) << "never reached the halfway point";
  ASSERT_GT(truth, 0) << "halfway fell on the last event; trace too small";
  EXPECT_GE(eta, truth / 2) << "eta " << eta << "us vs true " << truth << "us";
  EXPECT_LE(eta, truth * 2) << "eta " << eta << "us vs true " << truth << "us";
}

TEST_F(ProgressExampleTest, CacheSharesOneModelAcrossQueryNames) {
  ProgressModelCache cache(4);
  mal::Program a = program_;
  a.set_function_name("user.s0");
  mal::Program b = program_;
  b.set_function_name("user.s17");  // same shape, server-renamed
  auto ma = cache.GetOrBuild(a);
  auto mb = cache.GetOrBuild(b);
  EXPECT_EQ(ma.get(), mb.get());
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 1);
}

TEST(ProgressScoreboardTest, MserverProgressTextTracksQueries) {
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  auto cat = tpch::GenerateTpch(config);
  ASSERT_TRUE(cat.ok());
  server::MserverOptions options;
  options.dop = 2;
  server::Mserver server(std::move(cat.value()), options);
  EXPECT_NE(server.ProgressText().find("no queries tracked"),
            std::string::npos);
  auto outcome = server.ExecuteSql("select count(*) from nation");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  std::string board = server.ProgressText();
  EXPECT_NE(board.find(outcome.value().name), std::string::npos) << board;
  EXPECT_NE(board.find("100.0%"), std::string::npos) << board;
}

}  // namespace
}  // namespace stetho::analysis
