// End-to-end SQL oracle: random tables and randomly generated single-table
// queries, executed both by the full pipeline (SQL -> MAL -> optimizer ->
// dataflow interpreter) and by a naive row-at-a-time reference evaluator.
// Results must agree exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "analysis/absint.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "engine/interpreter.h"
#include "optimizer/pass.h"
#include "sql/compiler.h"
#include "storage/table.h"

namespace stetho {
namespace {

using storage::Catalog;
using storage::ColumnPtr;
using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::TablePtr;
using storage::Value;

struct Row {
  int64_t a;
  int64_t b;
  double x;
};

struct Dataset {
  Catalog catalog;
  std::vector<Row> rows;
};

Dataset RandomDataset(SplitMix64* rng, size_t n) {
  Dataset out;
  TablePtr t = Table::Make("t", Schema({{"a", DataType::kInt64},
                                        {"b", DataType::kInt64},
                                        {"x", DataType::kDouble}}));
  for (size_t i = 0; i < n; ++i) {
    Row row;
    row.a = static_cast<int64_t>(rng->NextBounded(20));
    row.b = static_cast<int64_t>(rng->NextBounded(8));
    row.x = static_cast<double>(rng->NextBounded(1000)) / 10.0;
    out.rows.push_back(row);
    EXPECT_TRUE(
        t->AppendRow({Value::Int(row.a), Value::Int(row.b), Value::Double(row.x)})
            .ok());
  }
  EXPECT_TRUE(out.catalog.AddTable(t).ok());
  return out;
}

/// A random conjunction/disjunction of comparisons plus its reference
/// evaluation.
struct Predicate {
  std::string sql;
  std::function<bool(const Row&)> eval;
};

Predicate RandomPredicate(SplitMix64* rng) {
  auto atom = [&]() -> Predicate {
    int which = static_cast<int>(rng->NextBounded(4));
    int64_t k = static_cast<int64_t>(rng->NextBounded(20));
    switch (which) {
      case 0:
        return {StrFormat("a >= %lld", static_cast<long long>(k)),
                [k](const Row& r) { return r.a >= k; }};
      case 1:
        return {StrFormat("a < %lld", static_cast<long long>(k)),
                [k](const Row& r) { return r.a < k; }};
      case 2: {
        int64_t lo = k % 8;
        int64_t hi = lo + 3;
        return {StrFormat("b between %lld and %lld",
                          static_cast<long long>(lo),
                          static_cast<long long>(hi)),
                [lo, hi](const Row& r) { return r.b >= lo && r.b <= hi; }};
      }
      default: {
        double bound = static_cast<double>(k) * 5.0;
        return {StrFormat("x <= %.1f", bound),
                [bound](const Row& r) { return r.x <= bound; }};
      }
    }
  };
  Predicate p1 = atom();
  Predicate p2 = atom();
  if (rng->NextBool(0.5)) {
    return {"(" + p1.sql + " and " + p2.sql + ")",
            [p1, p2](const Row& r) { return p1.eval(r) && p2.eval(r); }};
  }
  return {"(" + p1.sql + " or " + p2.sql + ")",
          [p1, p2](const Row& r) { return p1.eval(r) || p2.eval(r); }};
}

Result<engine::QueryResult> RunSql(Catalog* cat, const std::string& sql,
                                   int mitosis) {
  auto program = sql::Compiler::CompileSql(cat, sql);
  if (!program.ok()) return program.status();
  optimizer::Pipeline pipeline = optimizer::Pipeline::Default(mitosis);
  mal::Program plan = std::move(program).value();
  auto fired = pipeline.Run(&plan);
  if (!fired.ok()) return fired.status();
  engine::Interpreter interp(cat);
  engine::ExecOptions opts;
  opts.num_threads = 3;
  return interp.Execute(plan, opts);
}

class SqlOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlOracleTest, FilterProjection) {
  SplitMix64 rng(GetParam());
  Dataset data = RandomDataset(&rng, 400);
  for (int trial = 0; trial < 5; ++trial) {
    Predicate pred = RandomPredicate(&rng);
    std::string sql = "select a, x from t where " + pred.sql;
    auto r = RunSql(&data.catalog, sql, trial % 2 == 0 ? 0 : 4);
    ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    // Reference: preserved row order.
    std::vector<Row> expected;
    for (const Row& row : data.rows) {
      if (pred.eval(row)) expected.push_back(row);
    }
    ColumnPtr a = r.value().columns[0].column;
    ColumnPtr x = r.value().columns[1].column;
    ASSERT_EQ(a->size(), expected.size()) << sql;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(a->IntAt(i), expected[i].a) << sql << " row " << i;
      EXPECT_DOUBLE_EQ(x->DoubleAt(i), expected[i].x) << sql << " row " << i;
    }
  }
}

TEST_P(SqlOracleTest, GroupedAggregates) {
  SplitMix64 rng(GetParam());
  Dataset data = RandomDataset(&rng, 300);
  Predicate pred = RandomPredicate(&rng);
  std::string sql =
      "select b, count(*) as n, sum(a) as sa, min(x) as mn, max(x) as mx, "
      "avg(x) as av from t where " + pred.sql +
      " group by b order by b";
  auto r = RunSql(&data.catalog, sql, 4);
  ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();

  struct Agg {
    int64_t n = 0;
    int64_t sa = 0;
    double mn = 1e300;
    double mx = -1e300;
    double sum_x = 0;
  };
  std::map<int64_t, Agg> expected;
  for (const Row& row : data.rows) {
    if (!pred.eval(row)) continue;
    Agg& agg = expected[row.b];
    ++agg.n;
    agg.sa += row.a;
    agg.mn = std::min(agg.mn, row.x);
    agg.mx = std::max(agg.mx, row.x);
    agg.sum_x += row.x;
  }
  const auto& cols = r.value().columns;
  ASSERT_EQ(cols[0].column->size(), expected.size()) << sql;
  size_t i = 0;
  for (const auto& [key, agg] : expected) {  // std::map: ascending keys
    EXPECT_EQ(cols[0].column->IntAt(i), key) << sql;
    EXPECT_EQ(cols[1].column->IntAt(i), agg.n) << sql;
    EXPECT_EQ(cols[2].column->IntAt(i), agg.sa) << sql;
    EXPECT_DOUBLE_EQ(cols[3].column->DoubleAt(i), agg.mn) << sql;
    EXPECT_DOUBLE_EQ(cols[4].column->DoubleAt(i), agg.mx) << sql;
    EXPECT_NEAR(cols[5].column->DoubleAt(i),
                agg.sum_x / static_cast<double>(agg.n), 1e-9)
        << sql;
    ++i;
  }
}

TEST_P(SqlOracleTest, OrderByLimitOffset) {
  SplitMix64 rng(GetParam());
  Dataset data = RandomDataset(&rng, 200);
  int64_t limit = static_cast<int64_t>(1 + rng.NextBounded(50));
  int64_t offset = static_cast<int64_t>(rng.NextBounded(30));
  bool desc = rng.NextBool(0.5);
  std::string sql = StrFormat(
      "select x, a from t order by x %s, a limit %lld offset %lld",
      desc ? "desc" : "asc", static_cast<long long>(limit),
      static_cast<long long>(offset));
  auto r = RunSql(&data.catalog, sql, 0);
  ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();

  std::vector<Row> sorted = data.rows;
  std::stable_sort(sorted.begin(), sorted.end(), [&](const Row& p, const Row& q) {
    if (p.x != q.x) return desc ? p.x > q.x : p.x < q.x;
    return p.a < q.a;
  });
  size_t begin = std::min<size_t>(static_cast<size_t>(offset), sorted.size());
  size_t end = std::min<size_t>(begin + static_cast<size_t>(limit), sorted.size());
  ColumnPtr x = r.value().columns[0].column;
  ColumnPtr a = r.value().columns[1].column;
  ASSERT_EQ(x->size(), end - begin) << sql;
  for (size_t i = 0; i < x->size(); ++i) {
    EXPECT_DOUBLE_EQ(x->DoubleAt(i), sorted[begin + i].x) << sql << " row " << i;
    EXPECT_EQ(a->IntAt(i), sorted[begin + i].a) << sql << " row " << i;
  }
}

// Property: ANY subset of the optimizer passes, applied in ANY order, must
// preserve both the abstract summary of the plan's sink columns (the
// pipeline differ's contract) and the concrete execution results. This is
// the external version of the equivalence guarantee Pipeline::Run enforces
// internally after every pass.
TEST_P(SqlOracleTest, RandomPipelinesPreserveSemantics) {
  SplitMix64 rng(GetParam() + 1000);
  Dataset data = RandomDataset(&rng, 250);
  for (int trial = 0; trial < 3; ++trial) {
    Predicate pred = RandomPredicate(&rng);
    std::string sql = "select a, x from t where " + pred.sql;
    auto compiled = sql::Compiler::CompileSql(&data.catalog, sql);
    ASSERT_TRUE(compiled.ok()) << sql << ": " << compiled.status().ToString();
    mal::Program baseline = compiled.value();  // kept unoptimized
    mal::Program optimized = compiled.value();

    optimizer::Pipeline pipeline;
    std::vector<std::unique_ptr<optimizer::Pass>> pool;
    pool.push_back(optimizer::MakeConstantFoldingPass());
    pool.push_back(optimizer::MakeCommonSubexpressionPass());
    pool.push_back(optimizer::MakeDeadCodePass());
    pool.push_back(
        optimizer::MakeMitosisPass(2 + static_cast<int>(rng.NextBounded(4))));
    pool.push_back(optimizer::MakeDataflowMarkerPass());
    pool.push_back(optimizer::MakeAdminPrunePass());
    // Random order: Fisher-Yates over the pool, then a random subset.
    for (size_t i = pool.size(); i > 1; --i) {
      std::swap(pool[i - 1], pool[rng.NextBounded(i)]);
    }
    std::string pass_names;
    for (auto& pass : pool) {
      if (!rng.NextBool(0.7)) continue;
      pass_names += std::string(pass->name()) + " ";
      pipeline.Add(std::move(pass));
    }

    analysis::PlanSummary before = analysis::SummarizeObservable(optimized);
    auto fired = pipeline.Run(&optimized);
    ASSERT_TRUE(fired.ok())
        << sql << " [" << pass_names << "]: " << fired.status().ToString();
    analysis::PlanSummary after = analysis::SummarizeObservable(optimized);
    Status equivalent =
        analysis::CheckSummaryEquivalence(before, after, "random pipeline");
    EXPECT_TRUE(equivalent.ok())
        << sql << " [" << pass_names << "]: " << equivalent.ToString();

    engine::Interpreter interp(&data.catalog);
    engine::ExecOptions opts;
    opts.num_threads = 3;
    auto r0 = interp.Execute(baseline, opts);
    auto r1 = interp.Execute(optimized, opts);
    ASSERT_TRUE(r0.ok()) << sql << ": " << r0.status().ToString();
    ASSERT_TRUE(r1.ok())
        << sql << " [" << pass_names << "]: " << r1.status().ToString();
    const auto& c0 = r0.value().columns;
    const auto& c1 = r1.value().columns;
    ASSERT_EQ(c0.size(), c1.size()) << sql << " [" << pass_names << "]";
    ASSERT_EQ(c0.size(), 2u);
    ASSERT_EQ(c0[0].column->size(), c1[0].column->size())
        << sql << " [" << pass_names << "]";
    for (size_t i = 0; i < c0[0].column->size(); ++i) {
      EXPECT_EQ(c0[0].column->IntAt(i), c1[0].column->IntAt(i))
          << sql << " [" << pass_names << "] row " << i;
      EXPECT_DOUBLE_EQ(c0[1].column->DoubleAt(i), c1[1].column->DoubleAt(i))
          << sql << " [" << pass_names << "] row " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlOracleTest,
                         ::testing::Values(7, 17, 27, 37, 47, 57));

}  // namespace
}  // namespace stetho
