#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "analysis/checks.h"
#include "analysis/perfdiff.h"
#include "mal/parser.h"
#include "obs/profile_store.h"
#include "scope/trace.h"

namespace stetho::analysis {
namespace {

using obs::PcSample;
using obs::PlanProfile;
using obs::ProfileStore;
using obs::ProfileStoreOptions;
using obs::QueryObservation;
using obs::RobustStat;
using profiler::EventState;
using profiler::TraceEvent;

std::string ExamplePath(const char* name) {
  return std::string(STETHO_EXAMPLES_DIR) + "/" + name;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + name;
}

/// A deterministic synthetic observation: `plan_size` pcs with durations
/// spread over three octaves so median/MAD are nontrivial.
QueryObservation MakeObservation(uint64_t shape_hash, size_t plan_size,
                                 int64_t usec_scale) {
  QueryObservation observation;
  observation.shape_hash = shape_hash;
  observation.plan_size = plan_size;
  observation.total_usec = static_cast<int64_t>(plan_size) * usec_scale;
  for (size_t pc = 0; pc < plan_size; ++pc) {
    PcSample sample;
    sample.pc = static_cast<int>(pc);
    sample.usec = usec_scale * static_cast<int64_t>(1 + pc % 7);
    sample.bytes = static_cast<int64_t>(1) << (pc % 16);
    sample.concurrency = static_cast<int>(1 + pc % 4);
    observation.pcs.push_back(sample);
  }
  return observation;
}

// --- RobustStat -----------------------------------------------------------

TEST(RobustStatTest, ObserveTracksCountSumMinMax) {
  RobustStat stat;
  EXPECT_EQ(stat.count(), 0);
  EXPECT_EQ(stat.Median(), 0.0);
  for (int64_t v : {100, 200, 400, 800, 1600}) stat.Observe(v);
  EXPECT_EQ(stat.count(), 5);
  EXPECT_EQ(stat.sum(), 3100);
  EXPECT_EQ(stat.min(), 100);
  EXPECT_EQ(stat.max(), 1600);
}

TEST(RobustStatTest, MedianIsWithinBucketError) {
  RobustStat stat;
  for (int i = 0; i < 101; ++i) stat.Observe(1000);
  // The log-bucket center is within ~4.5% of the true value.
  EXPECT_NEAR(stat.Median(), 1000.0, 1000.0 * 0.045);
  EXPECT_NEAR(stat.Mad(), 0.0, 1.0);
}

TEST(RobustStatTest, MergeEqualsFoldingEverySample) {
  RobustStat left;
  RobustStat right;
  RobustStat all;
  for (int64_t v = 1; v <= 50; ++v) {
    (v % 2 == 0 ? left : right).Observe(v * 13);
    all.Observe(v * 13);
  }
  RobustStat merged = left;
  merged.Merge(right);
  EXPECT_EQ(merged, all);
  // Merge is commutative: the opposite order lands on the same state.
  RobustStat flipped = right;
  flipped.Merge(left);
  EXPECT_EQ(flipped, all);
}

TEST(RobustStatTest, SerializeParseRoundTrip) {
  RobustStat stat;
  for (int64_t v : {0, 1, 7, 7, 4096, 123456789}) stat.Observe(v);
  RobustStat parsed;
  ASSERT_TRUE(RobustStat::Parse(stat.Serialize(), &parsed));
  EXPECT_EQ(parsed, stat);

  RobustStat garbage;
  EXPECT_FALSE(RobustStat::Parse("", &garbage));
  EXPECT_FALSE(RobustStat::Parse("not,a,stat", &garbage));
  EXPECT_FALSE(RobustStat::Parse("1,2,3", &garbage));
}

// --- ProfileStore ---------------------------------------------------------

TEST(ProfileStoreTest, FoldThenLookup) {
  ProfileStore store;
  ASSERT_TRUE(store.Fold(MakeObservation(0xabcdef, 8, 100)).ok());
  ASSERT_TRUE(store.Fold(MakeObservation(0xabcdef, 8, 120)).ok());
  EXPECT_EQ(store.size(), 1u);

  auto profile = store.Lookup(0xabcdef);
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->queries, 2);
  EXPECT_EQ(profile->plan_size, 8u);
  ASSERT_EQ(profile->pcs.size(), 8u);
  EXPECT_EQ(profile->pcs[0].usec.count(), 2);
  EXPECT_EQ(profile->total_usec.count(), 2);

  EXPECT_EQ(store.Lookup(0x1234), nullptr);
  // Observations without a shape hash are rejected.
  EXPECT_FALSE(store.Fold(MakeObservation(0, 8, 100)).ok());
}

TEST(ProfileStoreTest, SaveLoadRoundTrip) {
  const std::string path = TempPath("perfdiff_roundtrip.profile");
  ProfileStore store;
  ASSERT_TRUE(store.Fold(MakeObservation(0x11, 6, 50)).ok());
  ASSERT_TRUE(store.Fold(MakeObservation(0x11, 6, 75)).ok());
  ASSERT_TRUE(store.Fold(MakeObservation(0x22, 3, 10)).ok());
  ASSERT_TRUE(store.SaveFile(path).ok());

  ProfileStore loaded;
  ASSERT_TRUE(loaded.LoadFile(path).ok());
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.corrupt_lines(), 0);

  auto original = store.Lookup(0x11);
  auto restored = loaded.Lookup(0x11);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->queries, original->queries);
  EXPECT_EQ(restored->total_usec, original->total_usec);
  ASSERT_EQ(restored->pcs.size(), original->pcs.size());
  for (size_t pc = 0; pc < restored->pcs.size(); ++pc) {
    EXPECT_EQ(restored->pcs[pc].usec, original->pcs[pc].usec) << pc;
    EXPECT_EQ(restored->pcs[pc].bytes, original->pcs[pc].bytes) << pc;
    EXPECT_EQ(restored->pcs[pc].concurrency, original->pcs[pc].concurrency)
        << pc;
  }
  std::remove(path.c_str());
}

TEST(ProfileStoreTest, OpenDirJournalsAndCompacts) {
  const std::string dir = TempPath("perfdiff_journal_dir");
  const std::string journal = dir + "/profile.journal";
  std::remove(journal.c_str());
  mkdir(dir.c_str(), 0755);
  {
    ProfileStore store;
    ASSERT_TRUE(store.OpenDir(dir).ok());
    ASSERT_TRUE(store.Fold(MakeObservation(0x33, 4, 40)).ok());
    ASSERT_TRUE(store.Fold(MakeObservation(0x33, 4, 44)).ok());
  }
  // The journal now carries per-query q-records appended after the (empty)
  // compacted state.
  {
    std::ifstream in(journal);
    ASSERT_TRUE(in.good());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("q "), std::string::npos);
  }
  // Reopening replays the q-records and rewrites the journal compacted to
  // one p-record per shape.
  {
    ProfileStore store;
    ASSERT_TRUE(store.OpenDir(dir).ok());
    auto profile = store.Lookup(0x33);
    ASSERT_NE(profile, nullptr);
    EXPECT_EQ(profile->queries, 2);

    std::ifstream in(journal);
    ASSERT_TRUE(in.good());
    std::string line;
    int p_records = 0;
    int q_records = 0;
    while (std::getline(in, line)) {
      if (line.rfind("p ", 0) == 0) ++p_records;
      if (line.rfind("q ", 0) == 0) ++q_records;
    }
    EXPECT_EQ(p_records, 1);
    EXPECT_EQ(q_records, 0);
  }
  std::remove(journal.c_str());
}

TEST(ProfileStoreTest, CorruptLinesAreCountedNotFatal) {
  const std::string path = TempPath("perfdiff_corrupt.profile");
  {
    ProfileStore store;
    ASSERT_TRUE(store.Fold(MakeObservation(0x44, 2, 30)).ok());
    ASSERT_TRUE(store.SaveFile(path).ok());
  }
  {
    std::ofstream out(path, std::ios::app);
    out << "this is not a record\n";
    out << "q zz nonsense\n";
    out << "p 00 truncated\n";
  }
  ProfileStore store;
  ASSERT_TRUE(store.LoadFile(path).ok());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.corrupt_lines(), 3);
  auto profile = store.Lookup(0x44);
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->queries, 1);

  ProfileStore missing;
  EXPECT_FALSE(missing.LoadFile(TempPath("does_not_exist.profile")).ok());
  std::remove(path.c_str());
}

TEST(ProfileStoreTest, CapacityEvictsLeastRecentlyTouched) {
  ProfileStoreOptions options;
  options.capacity = 2;
  ProfileStore store(options);
  ASSERT_TRUE(store.Fold(MakeObservation(0x1, 2, 10)).ok());
  ASSERT_TRUE(store.Fold(MakeObservation(0x2, 2, 10)).ok());
  // Touch shape 1 so shape 2 is the eviction victim.
  ASSERT_NE(store.Lookup(0x1), nullptr);
  ASSERT_TRUE(store.Fold(MakeObservation(0x3, 2, 10)).ok());
  EXPECT_EQ(store.size(), 2u);
  EXPECT_NE(store.Lookup(0x1), nullptr);
  EXPECT_EQ(store.Lookup(0x2), nullptr);
  EXPECT_NE(store.Lookup(0x3), nullptr);
}

TEST(ProfileStoreTest, ConcurrentFoldAndLookup) {
  ProfileStore store;
  constexpr int kThreads = 4;
  constexpr int kFolds = 64;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&store, t] {
      for (int i = 0; i < kFolds; ++i) {
        const uint64_t shape = 0x100 + static_cast<uint64_t>(i % 8);
        ASSERT_TRUE(store.Fold(MakeObservation(shape, 4, 10 + t)).ok());
        auto profile = store.Lookup(shape);
        ASSERT_NE(profile, nullptr);
        ASSERT_GE(profile->queries, 1);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(store.size(), 8u);
  auto profile = store.Lookup(0x100);
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->queries, kThreads * kFolds / 8);
}

// --- Shape hashing + trace observation on the recorded artifacts ----------

class PerfdiffExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::ifstream in(ExamplePath("c4_q1.mal"));
    ASSERT_TRUE(in.good()) << "missing " << ExamplePath("c4_q1.mal");
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    auto program = mal::ParseProgram(text);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    program_ = std::move(program).value();

    auto events = scope::ReadTraceFile(ExamplePath("c4_q1.trace"));
    ASSERT_TRUE(events.ok()) << events.status().ToString();
    trace_ = std::move(events).value();
    ASSERT_FALSE(trace_.empty());
  }

  mal::Program program_;
  std::vector<TraceEvent> trace_;
};

TEST_F(PerfdiffExampleTest, PlanAndTraceShapeHashesAgree) {
  const uint64_t plan_hash = PlanShapeHash(program_);
  EXPECT_NE(plan_hash, 0u);
  // The recorded trace covers every pc, so hashing its statement texts in
  // pc order reproduces the plan-shape key exactly.
  EXPECT_EQ(TraceShapeHash(trace_), plan_hash);
}

TEST_F(PerfdiffExampleTest, ShapeHashIsFunctionNameBlind) {
  std::string renamed = program_.ToString();
  const size_t at = renamed.find("user.main");
  ASSERT_NE(at, std::string::npos);
  renamed.replace(at, 9, "user.renamed");
  auto program = mal::ParseProgram(renamed);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(PlanShapeHash(program.value()), PlanShapeHash(program_));
}

TEST_F(PerfdiffExampleTest, ObservationFromTraceCoversEveryPc) {
  QueryObservation observation = ObservationFromTrace(trace_);
  EXPECT_EQ(observation.shape_hash, PlanShapeHash(program_));
  EXPECT_EQ(observation.plan_size, program_.size());
  EXPECT_EQ(observation.pcs.size(), program_.size());
  EXPECT_GT(observation.total_usec, 0);
  for (const PcSample& sample : observation.pcs) {
    EXPECT_GE(sample.usec, 0);
    EXPECT_GE(sample.concurrency, 1);
  }
}

// --- trace-perf-regression ------------------------------------------------

TEST_F(PerfdiffExampleTest, RegressionCheckIsQuietOnItsOwnBaseline) {
  ProfileStore store;
  QueryObservation observation = ObservationFromTrace(trace_);
  observation.shape_hash = PlanShapeHash(program_);
  ASSERT_TRUE(store.Fold(observation).ok());

  auto check = MakeTracePerfRegressionCheck();
  CheckContext context;
  context.program = &program_;
  context.trace = &trace_;
  context.profile = &store;
  std::vector<Diagnostic> findings;
  check->Run(context, &findings);
  EXPECT_TRUE(findings.empty()) << findings.front().ToString();
}

TEST_F(PerfdiffExampleTest, RegressionCheckFlagsInjectedSlowdown) {
  ProfileStore store;
  QueryObservation observation = ObservationFromTrace(trace_);
  observation.shape_hash = PlanShapeHash(program_);
  ASSERT_TRUE(store.Fold(observation).ok());

  // Find the slowest instruction and blow up its done event 5x — well past
  // both the 2.0x ratio gate and the 4*MAD jitter floor.
  int slow_pc = -1;
  int64_t slow_usec = 0;
  for (const PcSample& sample : observation.pcs) {
    if (sample.usec > slow_usec) {
      slow_usec = sample.usec;
      slow_pc = sample.pc;
    }
  }
  ASSERT_GE(slow_pc, 0);
  std::vector<TraceEvent> slow_trace = trace_;
  for (TraceEvent& event : slow_trace) {
    if (event.pc == slow_pc && event.state == EventState::kDone) {
      event.usec *= 5;
    }
  }

  auto check = MakeTracePerfRegressionCheck();
  CheckContext context;
  context.program = &program_;
  context.trace = &slow_trace;
  context.profile = &store;
  std::vector<Diagnostic> findings;
  check->Run(context, &findings);
  ASSERT_FALSE(findings.empty());
  bool flagged = false;
  for (const Diagnostic& finding : findings) {
    EXPECT_EQ(finding.check_id, "trace-perf-regression");
    if (finding.pc == slow_pc) {
      flagged = true;
      EXPECT_EQ(finding.severity, Severity::kError) << finding.ToString();
    }
  }
  EXPECT_TRUE(flagged);
}

TEST_F(PerfdiffExampleTest, RegressionCheckNotesMissingBaseline) {
  ProfileStore store;  // empty: shape never observed
  auto check = MakeTracePerfRegressionCheck();
  CheckContext context;
  context.program = &program_;
  context.trace = &trace_;
  context.profile = &store;
  std::vector<Diagnostic> findings;
  check->Run(context, &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kNote);
  EXPECT_EQ(findings[0].check_id, "trace-perf-regression");
}

// --- DiffTraces -----------------------------------------------------------

TEST_F(PerfdiffExampleTest, DiffAgainstSelfIsFlat) {
  TraceDiff diff = DiffTraces(trace_, trace_, &program_);
  EXPECT_TRUE(diff.shapes_match);
  EXPECT_EQ(diff.a_hash, diff.b_hash);
  EXPECT_EQ(diff.a_makespan_usec, diff.b_makespan_usec);
  EXPECT_GT(diff.a_critical_usec, 0);
  EXPECT_EQ(diff.a_critical_usec, diff.b_critical_usec);
  EXPECT_TRUE(diff.only_a.empty());
  EXPECT_TRUE(diff.only_b.empty());
  for (const PcDelta& delta : diff.deltas) {
    EXPECT_EQ(delta.delta_usec, 0) << delta.pc;
    // ratio is b / max(a, 1), so a zero-duration pc self-diffs to 0.
    if (delta.a_usec > 0) EXPECT_DOUBLE_EQ(delta.ratio, 1.0) << delta.pc;
  }
}

TEST_F(PerfdiffExampleTest, DiffSurfacesInjectedSlowdownFirst) {
  QueryObservation observation = ObservationFromTrace(trace_);
  int slow_pc = -1;
  int64_t slow_usec = 0;
  for (const PcSample& sample : observation.pcs) {
    if (sample.usec > slow_usec) {
      slow_usec = sample.usec;
      slow_pc = sample.pc;
    }
  }
  std::vector<TraceEvent> slow_trace = trace_;
  for (TraceEvent& event : slow_trace) {
    if (event.pc == slow_pc && event.state == EventState::kDone) {
      event.usec *= 5;
    }
  }

  TraceDiff diff = DiffTraces(trace_, slow_trace, &program_);
  EXPECT_TRUE(diff.shapes_match);
  ASSERT_FALSE(diff.deltas.empty());
  // Deltas sort by absolute change, so the injected pc leads the report.
  EXPECT_EQ(diff.deltas[0].pc, slow_pc);
  EXPECT_EQ(diff.deltas[0].delta_usec, slow_usec * 4);
  EXPECT_NEAR(diff.deltas[0].ratio, 5.0, 0.01);

  const std::string report = FormatTraceDiff(diff);
  EXPECT_NE(report.find("shape"), std::string::npos);
  EXPECT_NE(report.find("pc " + std::to_string(slow_pc)),
            std::string::npos);
}

TEST(DiffTracesTest, ReportsUnmatchedPcs) {
  auto make_pair = [](int pc, int64_t usec, const std::string& stmt) {
    TraceEvent start;
    start.pc = pc;
    start.state = EventState::kStart;
    start.time_us = pc * 100;
    start.stmt = stmt;
    TraceEvent done = start;
    done.state = EventState::kDone;
    done.time_us = start.time_us + usec;
    done.usec = usec;
    return std::vector<TraceEvent>{start, done};
  };
  std::vector<TraceEvent> a;
  std::vector<TraceEvent> b;
  for (const TraceEvent& e : make_pair(0, 10, "X_1 := a.b();")) {
    a.push_back(e);
    b.push_back(e);
  }
  for (const TraceEvent& e : make_pair(1, 20, "X_2 := c.d(X_1);"))
    a.push_back(e);
  for (const TraceEvent& e : make_pair(2, 30, "X_3 := e.f(X_1);"))
    b.push_back(e);

  TraceDiff diff = DiffTraces(a, b, nullptr);
  EXPECT_FALSE(diff.shapes_match);
  EXPECT_EQ(diff.a_critical_usec, -1);
  ASSERT_EQ(diff.deltas.size(), 1u);
  EXPECT_EQ(diff.deltas[0].pc, 0);
  ASSERT_EQ(diff.only_a.size(), 1u);
  EXPECT_EQ(diff.only_a[0], 1);
  ASSERT_EQ(diff.only_b.size(), 1u);
  EXPECT_EQ(diff.only_b[0], 2);
}

}  // namespace
}  // namespace stetho::analysis
