// End-to-end integration tests spanning every module: the complete offline
// workflow over real files, the complete online workflow over real loopback
// UDP, and multi-query sessions.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "dot/parser.h"
#include "layout/svg.h"
#include "layout/sugiyama.h"
#include "net/udp.h"
#include "profiler/sink.h"
#include "scope/analysis.h"
#include "scope/mapping.h"
#include "scope/online.h"
#include "scope/replayer.h"
#include "scope/textual.h"
#include "scope/trace.h"
#include "server/mserver.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace stetho {
namespace {

storage::Catalog SmallTpch() {
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  auto cat = tpch::GenerateTpch(config);
  EXPECT_TRUE(cat.ok());
  return std::move(cat.value());
}

/// The full offline workflow of paper §4.1, against real files: server
/// records dot + trace; a fresh session reads the files, builds the graph
/// via the dot→svg→graph pipeline, replays, and analyzes.
TEST(IntegrationTest, OfflineWorkflowOverFiles) {
  std::string dir = testing::TempDir();
  std::string dot_path = dir + "/offline_it.dot";
  std::string trace_path = dir + "/offline_it.trace";

  size_t plan_size = 0;
  {
    server::MserverOptions options;
    options.dop = 2;
    options.mitosis_pieces = 4;
    server::Mserver server(SmallTpch(), options);
    auto sink = profiler::FileSink::Open(trace_path);
    ASSERT_TRUE(sink.ok());
    server.profiler()->AddSink(std::move(sink).value());
    auto outcome = server.ExecuteSql(tpch::GetQuery("q1").value().sql);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    plan_size = outcome.value().plan.size();
    std::ofstream(dot_path) << outcome.value().dot;
    ASSERT_TRUE(server.profiler()->GetFilter().Matches(
        profiler::TraceEvent{}));  // default filter passes all
  }

  // Fresh session: dot file -> svg -> in-memory graph (the paper's shared
  // workflow steps), trace file -> events.
  std::ifstream dot_in(dot_path);
  std::string dot_text((std::istreambuf_iterator<char>(dot_in)),
                       std::istreambuf_iterator<char>());
  auto graph0 = dot::ParseDot(dot_text);
  ASSERT_TRUE(graph0.ok());
  auto layout = layout::LayoutGraph(graph0.value());
  ASSERT_TRUE(layout.ok());
  auto svg_doc = layout::ParseSvg(
      layout::LayoutToSvg(graph0.value(), layout.value()));
  ASSERT_TRUE(svg_doc.ok());
  dot::Graph graph = layout::SvgToGraph(svg_doc.value());
  EXPECT_EQ(graph.num_nodes(), plan_size);

  auto events = scope::ReadTraceFile(trace_path);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events.value().size(), 2 * plan_size);

  scope::ReplayOptions replay;
  replay.render_interval_us = 0;
  auto replayer =
      scope::OfflineReplayer::Create(graph, events.value(), replay);
  ASSERT_TRUE(replayer.ok());
  auto played = replayer.value()->Play(1e12, events.value().size());
  ASSERT_TRUE(played.ok());
  EXPECT_EQ(played.value(), events.value().size());
  // All instructions completed -> every node green.
  for (size_t pc = 0; pc < plan_size; ++pc) {
    EXPECT_EQ(replayer.value()
                  ->NodeColor(scope::NodeForPc(static_cast<int>(pc)))
                  .value(),
              viz::Color::Green());
  }
  EXPECT_DOUBLE_EQ(scope::EstimateProgress(events.value(), plan_size), 1.0);

  std::remove(dot_path.c_str());
  std::remove(trace_path.c_str());
}

/// The online workflow of paper §4.2 over REAL loopback UDP: server
/// profiler -> UDP -> textual Stethoscope -> dot + trace demux -> graph +
/// analysis.
TEST(IntegrationTest, OnlineWorkflowOverRealUdp) {
  auto udp_receiver = net::UdpReceiver::Bind(0);
  ASSERT_TRUE(udp_receiver.ok());
  uint16_t port = udp_receiver.value()->port();

  std::string trace_path = testing::TempDir() + "/online_it.trace";
  scope::TextualOptions topt;
  topt.trace_path = trace_path;
  scope::TextualStethoscope textual(topt);
  ASSERT_TRUE(textual.AddServer("udp0", std::move(udp_receiver).value()).ok());

  server::MserverOptions options;
  options.dop = 2;
  options.mitosis_pieces = 4;
  server::Mserver server(SmallTpch(), options);
  auto udp_sender = net::UdpSender::Connect(port);
  ASSERT_TRUE(udp_sender.ok());
  server.AttachStream(
      std::shared_ptr<net::DatagramSender>(std::move(udp_sender).value()));

  // Launch the query in a separate thread (online-mode shape).
  std::thread query([&server] {
    auto outcome = server.ExecuteSql(tpch::GetQuery("q6").value().sql);
    EXPECT_TRUE(outcome.ok());
  });
  // Await the dot file + EOF on the stream.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (textual.FinishedQueries().empty() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  query.join();
  ASSERT_FALSE(textual.FinishedQueries().empty());
  std::string name = textual.FinishedQueries().front();

  auto dot_text = textual.DotFor(name);
  ASSERT_TRUE(dot_text.ok());
  auto graph = dot::ParseDot(dot_text.value());
  ASSERT_TRUE(graph.ok());
  EXPECT_GT(graph.value().num_nodes(), 0u);

  // UDP on loopback delivers the full trace here: 2 events per node.
  auto buffer = textual.BufferSnapshot();
  EXPECT_EQ(buffer.size(), 2 * graph.value().num_nodes());
  auto util = scope::AnalyzeThreadUtilization(buffer);
  EXPECT_GT(util.wall_us, 0);
  textual.Stop();
  ASSERT_TRUE(textual.Flush().ok());

  // The redirected trace file matches the in-memory buffer.
  auto from_file = scope::ReadTraceFile(trace_path);
  ASSERT_TRUE(from_file.ok());
  EXPECT_EQ(from_file.value().size(), buffer.size());
  std::remove(trace_path.c_str());
}

/// Several queries through one monitored server session; per-query dot
/// files are kept apart and every query finishes.
TEST(IntegrationTest, MultiQueryOnlineSession) {
  server::MserverOptions options;
  options.dop = 2;
  server::Mserver server(SmallTpch(), options);
  scope::OnlineOptions online;
  online.render_interval_us = 0;
  online.analysis_period_us = 1000;

  for (const char* id : {"paper", "q6", "q14"}) {
    scope::OnlineMonitor monitor(&server, online);
    auto report = monitor.MonitorQuery(tpch::GetQuery(id).value().sql);
    ASSERT_TRUE(report.ok()) << id << ": " << report.status().ToString();
    EXPECT_DOUBLE_EQ(report.value().final_progress, 1.0) << id;
    EXPECT_EQ(report.value().graph_nodes, report.value().outcome.plan.size());
  }
}

/// Server-side filter set "through Stethoscope" (paper §3): only costly
/// done events cross the wire; the client analysis still works.
TEST(IntegrationTest, RemoteFilterReducesStream) {
  server::MserverOptions options;
  server::Mserver server(SmallTpch(), options);
  ASSERT_TRUE(server.SetProfilerFilter("start=0;done=1;min_usec=0;").ok());

  auto ring = std::make_shared<profiler::RingBufferSink>(1 << 14);
  server.profiler()->AddSink(ring);
  auto outcome = server.ExecuteSql(tpch::GetQuery("q6").value().sql);
  ASSERT_TRUE(outcome.ok());
  auto events = ring->Snapshot();
  ASSERT_EQ(events.size(), outcome.value().plan.size());  // done only
  for (const auto& e : events) {
    EXPECT_EQ(e.state, profiler::EventState::kDone);
  }
  // Operator analysis works on the filtered stream.
  EXPECT_FALSE(scope::AnalyzeOperators(events).empty());
}

/// Two independent servers streaming into ONE textual Stethoscope — the
/// paper's distributed-sources scenario (§3.2).
TEST(IntegrationTest, TwoServersOneStethoscope) {
  scope::TextualOptions topt;
  scope::TextualStethoscope textual(topt);

  server::MserverOptions options;
  options.dop = 2;
  server::Mserver server_a(SmallTpch(), options);
  server::Mserver server_b(SmallTpch(), options);
  for (server::Mserver* server : {&server_a, &server_b}) {
    auto receiver = net::UdpReceiver::Bind(0);
    ASSERT_TRUE(receiver.ok());
    auto sender = net::UdpSender::Connect(receiver.value()->port());
    ASSERT_TRUE(sender.ok());
    ASSERT_TRUE(textual
                    .AddServer(server == &server_a ? "A" : "B",
                               std::move(receiver).value())
                    .ok());
    server->AttachStream(
        std::shared_ptr<net::DatagramSender>(std::move(sender).value()));
  }

  std::thread qa([&] {
    EXPECT_TRUE(server_a.ExecuteSql(tpch::GetQuery("q6").value().sql).ok());
  });
  std::thread qb([&] {
    EXPECT_TRUE(server_b.ExecuteSql(tpch::GetQuery("paper").value().sql).ok());
  });
  qa.join();
  qb.join();
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (textual.FinishedQueries().size() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(textual.FinishedQueries().size(), 2u);
  // Both dot files arrived and stay distinguishable even though each server
  // named its query "s0": keys are namespaced per server.
  auto dots = textual.CompletedDots();
  ASSERT_EQ(dots.size(), 2u);
  EXPECT_TRUE(textual.DotFor("A/s0").ok());
  EXPECT_TRUE(textual.DotFor("B/s0").ok());
  // The two plans differ (different queries).
  EXPECT_NE(textual.DotFor("A/s0").value(), textual.DotFor("B/s0").value());
  EXPECT_GT(textual.events_received(), 0);
  textual.Stop();
}

/// Replaying the same trace in the three coloring modes touches disjoint
/// node sets consistently.
TEST(IntegrationTest, ColoringModesConsistentOnSameTrace) {
  server::MserverOptions options;
  options.force_sequential = true;
  server::Mserver server(SmallTpch(), options);
  auto ring = std::make_shared<profiler::RingBufferSink>(1 << 14);
  server.profiler()->AddSink(ring);
  auto outcome = server.ExecuteSql(tpch::GetQuery("q14").value().sql);
  ASSERT_TRUE(outcome.ok());
  auto graph = dot::ParseDot(outcome.value().dot);
  ASSERT_TRUE(graph.ok());
  auto events = ring->Snapshot();

  auto count_colored = [&](scope::ColoringMode mode, int64_t threshold) {
    scope::ReplayOptions replay;
    replay.render_interval_us = 0;
    replay.mode = mode;
    replay.threshold_us = threshold;
    auto replayer =
        scope::OfflineReplayer::Create(graph.value(), events, replay);
    EXPECT_TRUE(replayer.ok());
    (void)replayer.value()->Play(1e12, events.size());
    size_t colored = 0;
    for (size_t pc = 0; pc < outcome.value().plan.size(); ++pc) {
      auto c = replayer.value()->NodeColor(
          scope::NodeForPc(static_cast<int>(pc)));
      if (c.ok() && !(c.value() == viz::Color::Gray())) ++colored;
    }
    return colored;
  };
  // State mode colors every executed node; threshold(∞) colors none;
  // gradient colors every completed node.
  EXPECT_EQ(count_colored(scope::ColoringMode::kState, 0),
            outcome.value().plan.size());
  EXPECT_EQ(count_colored(scope::ColoringMode::kThreshold, 1LL << 60), 0u);
  EXPECT_EQ(count_colored(scope::ColoringMode::kGradient, 0),
            outcome.value().plan.size());
}

}  // namespace
}  // namespace stetho
