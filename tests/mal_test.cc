#include <gtest/gtest.h>

#include "mal/parser.h"
#include "mal/program.h"
#include "mal/types.h"

namespace stetho::mal {
namespace {

using storage::DataType;
using storage::Value;

// --- MalType ---

TEST(MalTypeTest, ToStringScalars) {
  EXPECT_EQ(MalType::Scalar(DataType::kInt64).ToString(), ":lng");
  EXPECT_EQ(MalType::Scalar(DataType::kDouble).ToString(), ":dbl");
  EXPECT_EQ(MalType::Scalar(DataType::kString).ToString(), ":str");
  EXPECT_EQ(MalType::Scalar(DataType::kBool).ToString(), ":bit");
  EXPECT_EQ(MalType::Scalar(DataType::kOid).ToString(), ":oid");
  EXPECT_EQ(MalType::Void().ToString(), ":void");
}

TEST(MalTypeTest, ToStringBat) {
  EXPECT_EQ(MalType::Bat(DataType::kOid).ToString(), ":bat[:oid]");
  EXPECT_EQ(MalType::Bat(DataType::kDouble).ToString(), ":bat[:dbl]");
}

TEST(MalTypeTest, ParseRoundTrip) {
  for (const MalType& t :
       {MalType::Scalar(DataType::kInt64), MalType::Bat(DataType::kString),
        MalType::Void(), MalType::Bat(DataType::kOid)}) {
    auto parsed = ParseMalType(t.ToString());
    ASSERT_TRUE(parsed.ok()) << t.ToString();
    EXPECT_EQ(parsed.value(), t);
  }
}

TEST(MalTypeTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseMalType(":frobnicate").ok());
  EXPECT_FALSE(ParseMalType("lng").ok());
}

// --- Program construction ---

Program PaperLikePlan() {
  // Mirrors the shape of the paper's Fig. 1 query:
  //   select l_tax from lineitem where l_partkey=1
  Program p("user.main");
  int mvc = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("sql", "mvc", {mvc}, {});
  int tid = p.AddVariable(MalType::Bat(DataType::kOid));
  p.Add("sql", "tid", {tid},
        {Argument::Var(mvc), Argument::Const(Value::String("sys")),
         Argument::Const(Value::String("lineitem"))});
  int partkey = p.AddVariable(MalType::Bat(DataType::kInt64));
  p.Add("sql", "bind", {partkey},
        {Argument::Var(mvc), Argument::Const(Value::String("sys")),
         Argument::Const(Value::String("lineitem")),
         Argument::Const(Value::String("l_partkey")),
         Argument::Const(Value::Int(0))});
  int cand = p.AddVariable(MalType::Bat(DataType::kOid));
  p.Add("algebra", "thetaselect", {cand},
        {Argument::Var(partkey), Argument::Var(tid),
         Argument::Const(Value::Int(1)),
         Argument::Const(Value::String("=="))});
  int tax = p.AddVariable(MalType::Bat(DataType::kDouble));
  p.Add("sql", "bind", {tax},
        {Argument::Var(mvc), Argument::Const(Value::String("sys")),
         Argument::Const(Value::String("lineitem")),
         Argument::Const(Value::String("l_tax")),
         Argument::Const(Value::Int(0))});
  int proj = p.AddVariable(MalType::Bat(DataType::kDouble));
  p.Add("algebra", "projection", {proj},
        {Argument::Var(cand), Argument::Var(tax)});
  p.Add("io", "print", {}, {Argument::Var(proj)});
  return p;
}

TEST(ProgramTest, PcAssignment) {
  Program p = PaperLikePlan();
  ASSERT_EQ(p.size(), 7u);
  for (size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(p.instruction(static_cast<int>(i)).pc, static_cast<int>(i));
  }
}

TEST(ProgramTest, ValidatePasses) {
  Program p = PaperLikePlan();
  EXPECT_TRUE(p.Validate().ok()) << p.Validate().ToString();
}

TEST(ProgramTest, ValidateCatchesUseBeforeDef) {
  Program p;
  int v = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("io", "print", {}, {Argument::Var(v)});  // v never assigned
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ProgramTest, ValidateCatchesDoubleAssignment) {
  Program p;
  int v = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("sql", "mvc", {v}, {});
  p.Add("sql", "mvc", {v}, {});
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ProgramTest, DependenciesFollowDefUse) {
  Program p = PaperLikePlan();
  auto deps = p.BuildDependencies();
  ASSERT_EQ(deps.size(), 7u);
  EXPECT_TRUE(deps[0].empty());                       // sql.mvc
  EXPECT_EQ(deps[1], (std::vector<int>{0}));          // tid <- mvc
  EXPECT_EQ(deps[3], (std::vector<int>{2, 1}));       // select <- bind, tid
  EXPECT_EQ(deps[5], (std::vector<int>{3, 4}));       // projection <- cand, tax
  EXPECT_EQ(deps[6], (std::vector<int>{5}));          // print <- projection
}

TEST(ProgramTest, DependenciesDeduplicated) {
  Program p;
  int a = p.AddVariable(MalType::Scalar(DataType::kInt64));
  p.Add("sql", "mvc", {a}, {});
  int b = p.AddVariable(MalType::Scalar(DataType::kInt64));
  // Same producer referenced twice -> one dependency edge.
  p.Add("calc", "add", {b}, {Argument::Var(a), Argument::Var(a)});
  auto deps = p.BuildDependencies();
  EXPECT_EQ(deps[1], (std::vector<int>{0}));
}

TEST(ProgramTest, ListingFormat) {
  Program p = PaperLikePlan();
  std::string text = p.ToString();
  EXPECT_NE(text.find("function user.main():void;"), std::string::npos);
  EXPECT_NE(text.find("end user.main;"), std::string::npos);
  EXPECT_NE(text.find("algebra.projection(X_3,X_4);"), std::string::npos);
  EXPECT_NE(text.find(":bat[:dbl]"), std::string::npos);
  EXPECT_NE(text.find("\"lineitem\""), std::string::npos);
}

TEST(ProgramTest, MultiResultPrinting) {
  Program p;
  int a = p.AddVariable(MalType::Bat(DataType::kOid));
  int b = p.AddVariable(MalType::Bat(DataType::kInt64));
  p.Add("group", "groupdone", {a, b}, {});
  std::string line = p.InstructionToString(p.instruction(0));
  EXPECT_EQ(line, "(X_0:bat[:oid],X_1:bat[:lng]) := group.groupdone();");
}

TEST(ProgramTest, ReplaceInstructionsRenumbers) {
  Program p = PaperLikePlan();
  std::vector<Instruction> kept;
  kept.push_back(p.instruction(0));
  kept.push_back(p.instruction(2));
  p.ReplaceInstructions(std::move(kept));
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.instruction(0).pc, 0);
  EXPECT_EQ(p.instruction(1).pc, 1);
  EXPECT_EQ(p.instruction(1).FullName(), "sql.bind");
}

// --- Parser round-trip ---

TEST(ParserTest, RoundTripPaperPlan) {
  Program p = PaperLikePlan();
  std::string text = p.ToString();
  auto parsed = ParseProgram(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().ToString(), text);
}

TEST(ParserTest, RoundTripMultiResult) {
  Program p;
  int x = p.AddVariable(MalType::Bat(DataType::kInt64));
  p.Add("bat", "new", {x}, {Argument::Const(Value::Int(3))});
  int g = p.AddVariable(MalType::Bat(DataType::kOid));
  int e = p.AddVariable(MalType::Bat(DataType::kOid));
  p.Add("group", "groupdone", {g, e}, {Argument::Var(x)});
  p.Add("io", "print", {}, {Argument::Var(g)});
  std::string text = p.ToString();
  auto parsed = ParseProgram(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().ToString(), text);
}

TEST(ParserTest, ParsesLiterals) {
  std::string text =
      "function user.main():void;\n"
      "    X_0:lng := calc.lng(42);\n"
      "    X_1:dbl := calc.dbl(-1.5);\n"
      "    X_2:str := calc.str(\"he\\\"llo\");\n"
      "    X_3:bit := calc.bit(true);\n"
      "    X_4:oid := calc.oid(7@0);\n"
      "    io.print(X_0,X_1,X_2,X_3,X_4,nil);\n"
      "end user.main;\n";
  auto parsed = ParseProgram(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Program& p = parsed.value();
  ASSERT_EQ(p.size(), 6u);
  EXPECT_EQ(p.instruction(0).args[0].constant, Value::Int(42));
  EXPECT_EQ(p.instruction(1).args[0].constant, Value::Double(-1.5));
  EXPECT_EQ(p.instruction(2).args[0].constant, Value::String("he\"llo"));
  EXPECT_EQ(p.instruction(3).args[0].constant, Value::Bool(true));
  EXPECT_EQ(p.instruction(4).args[0].constant, Value::Oid(7));
  EXPECT_TRUE(p.instruction(5).args[5].constant.is_null());
}

TEST(ParserTest, SkipsComments) {
  std::string text =
      "# leading comment\n"
      "function user.main():void;\n"
      "    # a comment line\n"
      "    X_0:lng := sql.mvc(); # trailing comment\n"
      "end user.main;\n";
  auto parsed = ParseProgram(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().size(), 1u);
}

TEST(ParserTest, CardinalityPragmasRoundTrip) {
  Program p;
  int mvc = p.AddVariable(MalType::Scalar(DataType::kInt64));
  int tid = p.AddVariable(MalType::Bat(DataType::kOid));
  p.Add("sql", "mvc", {mvc}, {});
  p.Add("sql", "tid", {tid},
        {Argument::Var(mvc), Argument::Const(Value::String("sys")),
         Argument::Const(Value::String("lineitem"))});
  p.AnnotateCardinality(tid, 0, 60175);

  std::string text = p.ToString();
  EXPECT_NE(text.find("# card X_1 0..60175"), std::string::npos) << text;
  auto parsed = ParseProgram(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  int rt = parsed.value().FindVariable("X_1");
  ASSERT_GE(rt, 0);
  const Variable& v = parsed.value().variable(rt);
  EXPECT_TRUE(v.has_cardinality());
  EXPECT_EQ(v.card_lo, 0);
  EXPECT_EQ(v.card_hi, 60175);
  // Printing the re-parsed plan reproduces the original byte-for-byte.
  EXPECT_EQ(parsed.value().ToString(), text);
}

TEST(ParserTest, MalformedCardPragmaIsJustAComment) {
  std::string text =
      "function user.main():void;\n"
      "# card nope\n"
      "# card X_0 banana..7\n"
      "    X_0:lng := sql.mvc();\n"
      "end user.main;\n";
  auto parsed = ParseProgram(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_FALSE(parsed.value().variable(0).has_cardinality());
}

TEST(ParserTest, RejectsMissingHeader) {
  EXPECT_FALSE(ParseProgram("X_0 := sql.mvc();").ok());
}

TEST(ParserTest, RejectsMissingEnd) {
  EXPECT_FALSE(
      ParseProgram("function user.main():void;\n X_0:lng := sql.mvc();\n").ok());
}

TEST(ParserTest, RejectsMalformedStatement) {
  EXPECT_FALSE(ParseProgram("function user.main():void;\n"
                            "    X_0 := ;\n"
                            "end user.main;\n")
                   .ok());
}

TEST(ParserTest, FunctionNamePreserved) {
  Program p("user.s1_1");
  p.Add("sql", "mvc", {p.AddVariable(MalType::Scalar(DataType::kInt64))}, {});
  // Rebuild the single result instruction correctly: result var id 0.
  auto parsed = ParseProgram(p.ToString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().function_name(), "user.s1_1");
}

}  // namespace
}  // namespace stetho::mal
