#include <gtest/gtest.h>

#include <atomic>

#include "common/clock.h"
#include "dot/parser.h"
#include "layout/sugiyama.h"
#include "obs/metrics.h"
#include "viz/animation.h"
#include "viz/camera.h"
#include "viz/color.h"
#include "viz/event_dispatch.h"
#include "viz/lens.h"
#include "viz/raster.h"
#include "viz/renderer.h"
#include "viz/virtual_space.h"

namespace stetho::viz {
namespace {

// --- Color ---

TEST(ColorTest, HexRoundTrip) {
  Color c{0x12, 0xAB, 0xEF};
  auto parsed = Color::Parse(c.ToHex());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), c);
}

TEST(ColorTest, NamedColors) {
  EXPECT_EQ(Color::Parse("red").value(), Color::Red());
  EXPECT_EQ(Color::Parse("GREEN").value(), Color::Green());
  EXPECT_FALSE(Color::Parse("mauve-ish").ok());
}

TEST(ColorTest, LerpEndpointsAndClamp) {
  Color a = Color::White();
  Color b = Color::Black();
  EXPECT_EQ(Color::Lerp(a, b, 0.0), a);
  EXPECT_EQ(Color::Lerp(a, b, 1.0), b);
  EXPECT_EQ(Color::Lerp(a, b, -5.0), a);
  EXPECT_EQ(Color::Lerp(a, b, 5.0), b);
  Color mid = Color::Lerp(a, b, 0.5);
  EXPECT_NEAR(mid.r, 128, 2);
}

// --- VirtualSpace + scene building ---

dot::Graph TwoNodeGraph() {
  dot::Graph g;
  g.AddNode("n0").attrs["label"] = "first";
  g.AddNode("n1").attrs["label"] = "second";
  g.AddEdge("n0", "n1");
  return g;
}

TEST(VirtualSpaceTest, GlyphModelMatchesZvtm) {
  // Paper §3.1: a two-node graph with one edge is represented by two shape
  // glyphs, two text glyphs, and one edge glyph — five objects.
  dot::Graph g = TwoNodeGraph();
  auto layout = layout::LayoutGraph(g);
  ASSERT_TRUE(layout.ok());
  VirtualSpace space;
  BuildScene(g, layout.value(), &space);
  EXPECT_EQ(space.size(), 5u);
  int shapes = 0;
  int texts = 0;
  int edges = 0;
  for (const Glyph& glyph : space.Snapshot()) {
    switch (glyph.kind) {
      case GlyphKind::kShape:
        ++shapes;
        break;
      case GlyphKind::kText:
        ++texts;
        break;
      case GlyphKind::kEdge:
        ++edges;
        break;
    }
  }
  EXPECT_EQ(shapes, 2);
  EXPECT_EQ(texts, 2);
  EXPECT_EQ(edges, 1);
}

TEST(VirtualSpaceTest, OwnerLookup) {
  dot::Graph g = TwoNodeGraph();
  auto layout = layout::LayoutGraph(g);
  ASSERT_TRUE(layout.ok());
  VirtualSpace space;
  BuildScene(g, layout.value(), &space);
  EXPECT_EQ(space.GlyphsForOwner("n0").size(), 2u);  // shape + text
  int shape = space.ShapeFor("n0");
  ASSERT_GE(shape, 0);
  EXPECT_EQ(space.GetGlyph(shape).value().kind, GlyphKind::kShape);
  EXPECT_EQ(space.ShapeFor("nope"), -1);
}

TEST(VirtualSpaceTest, MutateGlyph) {
  VirtualSpace space;
  Glyph g;
  g.kind = GlyphKind::kShape;
  g.owner = "n0";
  int id = space.AddGlyph(g);
  ASSERT_TRUE(space.MutateGlyph(id, [](Glyph* gg) {
    gg->fill = Color::Red();
  }).ok());
  EXPECT_EQ(space.GetGlyph(id).value().fill, Color::Red());
  EXPECT_FALSE(space.MutateGlyph(999, [](Glyph*) {}).ok());
}

TEST(VirtualSpaceTest, SnapshotZOrder) {
  VirtualSpace space;
  Glyph top;
  top.z = 5;
  top.owner = "a";
  Glyph bottom;
  bottom.z = 1;
  bottom.owner = "b";
  space.AddGlyph(top);
  space.AddGlyph(bottom);
  auto snap = space.Snapshot();
  EXPECT_EQ(snap[0].owner, "b");
  EXPECT_EQ(snap[1].owner, "a");
}

// --- Camera ---

TEST(CameraTest, ProjectUnprojectInverse) {
  Camera cam(800, 600);
  cam.MoveTo(100, 50);
  cam.SetAltitude(150);
  layout::Point world{37.5, -12.25};
  layout::Point screen = cam.Project(world);
  layout::Point back = cam.Unproject(screen);
  EXPECT_NEAR(back.x, world.x, 1e-9);
  EXPECT_NEAR(back.y, world.y, 1e-9);
}

TEST(CameraTest, AltitudeZoomsOut) {
  Camera cam(800, 600);
  cam.SetAltitude(0);
  double scale0 = cam.Scale();
  cam.SetAltitude(100);
  EXPECT_LT(cam.Scale(), scale0);
  layout::Point size = cam.VisibleSize();
  EXPECT_GT(size.x, 800);  // sees more world than the viewport at 1:1
}

TEST(CameraTest, AltitudeClampedNonNegative) {
  Camera cam(800, 600);
  cam.SetAltitude(-50);
  EXPECT_EQ(cam.altitude(), 0);
  EXPECT_DOUBLE_EQ(cam.Scale(), 1.0);
}

TEST(CameraTest, FitRectContainsRect) {
  Camera cam(800, 600);
  cam.FitRect(0, 0, 4000, 1000);
  layout::Point origin = cam.VisibleOrigin();
  layout::Point size = cam.VisibleSize();
  EXPECT_LE(origin.x, 0.0 + 1e-6);
  EXPECT_LE(origin.y, 0.0 + 1e-6);
  EXPECT_GE(origin.x + size.x, 4000 - 1e-6);
  EXPECT_GE(origin.y + size.y, 1000 - 1e-6);
}

TEST(CameraTest, FitSmallRectStaysAtUnitScale) {
  Camera cam(800, 600);
  cam.FitRect(0, 0, 100, 100);
  EXPECT_DOUBLE_EQ(cam.Scale(), 1.0);
}

// --- Animator ---

TEST(AnimatorTest, CameraAnimationReachesTarget) {
  VirtualClock clock;
  Camera cam(800, 600);
  Animator animator(&clock);
  animator.AnimateCamera(&cam, 200, 300, 50, 100000);
  EXPECT_EQ(animator.active(), 1u);
  clock.Advance(50000);
  animator.Tick();
  // Mid-flight: somewhere strictly between start and target.
  EXPECT_GT(cam.x(), 0);
  EXPECT_LT(cam.x(), 200);
  clock.Advance(60000);
  animator.Tick();
  EXPECT_DOUBLE_EQ(cam.x(), 200);
  EXPECT_DOUBLE_EQ(cam.y(), 300);
  EXPECT_DOUBLE_EQ(cam.altitude(), 50);
  EXPECT_EQ(animator.active(), 0u);
}

TEST(AnimatorTest, GlyphFillAnimation) {
  VirtualClock clock;
  VirtualSpace space;
  Glyph g;
  g.kind = GlyphKind::kShape;
  g.fill = Color::White();
  int id = space.AddGlyph(g);
  Animator animator(&clock);
  animator.AnimateGlyphFill(&space, id, Color::Red(), 10000);
  clock.Advance(20000);
  animator.Tick();
  EXPECT_EQ(space.GetGlyph(id).value().fill, Color::Red());
}

TEST(AnimatorTest, RunToCompletionOnVirtualClock) {
  VirtualClock clock;
  Camera cam(800, 600);
  Animator animator(&clock);
  animator.AnimateCamera(&cam, 10, 10, 0, 500000);
  animator.RunToCompletion(50000);
  EXPECT_DOUBLE_EQ(cam.x(), 10);
  EXPECT_EQ(animator.active(), 0u);
}

TEST(AnimatorTest, EasingMonotone) {
  double prev = 0;
  for (int i = 0; i <= 10; ++i) {
    double t = ApplyEasing(Easing::kEaseInOut, i / 10.0);
    EXPECT_GE(t, prev);
    prev = t;
  }
  EXPECT_DOUBLE_EQ(ApplyEasing(Easing::kEaseInOut, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ApplyEasing(Easing::kEaseInOut, 1.0), 1.0);
}

// --- FisheyeLens ---

TEST(LensTest, CenterMagnificationAndRimFixed) {
  FisheyeLens lens(100, 100, 50, 3.0);
  EXPECT_NEAR(lens.GainAt(0), 3.0, 1e-9);
  EXPECT_NEAR(lens.GainAt(50), 1.0, 1e-9);
  // Point at the rim is unmoved.
  layout::Point rim{150, 100};
  layout::Point moved = lens.Apply(rim);
  EXPECT_NEAR(moved.x, rim.x, 1e-9);
}

TEST(LensTest, MagnifiesNearFocus) {
  FisheyeLens lens(0, 0, 100, 4.0);
  layout::Point p{10, 0};
  layout::Point moved = lens.Apply(p);
  EXPECT_GT(moved.x, p.x * 2);   // strongly magnified
  EXPECT_LT(moved.x, 100.0);     // never escapes the lens
}

TEST(LensTest, MonotoneRadialMapping) {
  FisheyeLens lens(0, 0, 100, 5.0);
  double prev = 0;
  for (int d = 1; d < 100; ++d) {
    layout::Point moved = lens.Apply({static_cast<double>(d), 0});
    EXPECT_GT(moved.x, prev) << "fold-over at d=" << d;
    prev = moved.x;
  }
}

TEST(LensTest, OutsideUntouched) {
  FisheyeLens lens(0, 0, 10, 3.0);
  layout::Point p{50, 50};
  layout::Point moved = lens.Apply(p);
  EXPECT_EQ(moved.x, p.x);
  EXPECT_EQ(moved.y, p.y);
  EXPECT_FALSE(lens.Contains(p));
}

// --- EventDispatchThread ---

TEST(EventDispatchTest, TasksRunInOrder) {
  VirtualClock clock;
  EventDispatchThread edt(&clock, 0);
  std::vector<int> order;
  std::mutex mu;
  for (int i = 0; i < 10; ++i) {
    edt.Post([&, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    });
  }
  edt.Drain();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventDispatchTest, RenderPacingEnforcesInterval) {
  // The paper's observation: queued rendering introduces a delay of up to
  // 150 ms between consecutive node renders. On a virtual clock the pacing
  // is exact.
  VirtualClock clock;
  EventDispatchThread edt(&clock, 150000);
  std::atomic<int> renders{0};
  for (int i = 0; i < 5; ++i) {
    edt.PostRender([&] { renders.fetch_add(1); });
  }
  edt.Drain();
  EXPECT_EQ(renders.load(), 5);
  DispatchStats stats = edt.Stats();
  EXPECT_EQ(stats.renders, 5);
  ASSERT_EQ(stats.render_gaps_us.size(), 4u);
  for (int64_t gap : stats.render_gaps_us) {
    EXPECT_GE(gap, 150000);
  }
}

TEST(EventDispatchTest, NonRenderTasksNotThrottled) {
  VirtualClock clock;
  EventDispatchThread edt(&clock, 150000);
  for (int i = 0; i < 100; ++i) {
    edt.Post([] {});
  }
  edt.Drain();
  // Virtual clock never advanced: no pacing sleeps happened.
  EXPECT_EQ(clock.NowMicros(), 0);
  EXPECT_EQ(edt.Stats().tasks_executed, 100);
}

TEST(EventDispatchTest, QueueDepthTracked) {
  VirtualClock clock;
  EventDispatchThread edt(&clock, 150000);
  for (int i = 0; i < 20; ++i) {
    edt.PostRender([] {});
  }
  edt.Drain();
  EXPECT_GE(edt.Stats().max_queue_depth, 1);
}

TEST(EventDispatchTest, ShutdownIdempotent) {
  VirtualClock clock;
  auto* edt = new EventDispatchThread(&clock, 0);
  edt->Post([] {});
  edt->Shutdown();
  edt->Shutdown();
  delete edt;
}

// --- Renderer ---

TEST(RendererTest, FrameContainsProjectedGlyphs) {
  dot::Graph g = TwoNodeGraph();
  auto layout = layout::LayoutGraph(g);
  ASSERT_TRUE(layout.ok());
  VirtualSpace space;
  BuildScene(g, layout.value(), &space);
  Camera cam(800, 600);
  cam.FitRect(0, 0, layout.value().width, layout.value().height);
  Frame frame = Renderer::RenderFrame(space, cam);
  EXPECT_EQ(frame.commands.size(), 5u);
  EXPECT_EQ(frame.culled, 0u);
  std::string svg = frame.ToSvg();
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  EXPECT_NE(svg.find(">first<"), std::string::npos);
}

TEST(RendererTest, CullsOffscreenGlyphs) {
  VirtualSpace space;
  Glyph g;
  g.kind = GlyphKind::kShape;
  g.x = 1e6;
  g.y = 1e6;
  g.width = 10;
  g.height = 10;
  space.AddGlyph(g);
  Camera cam(800, 600);
  Frame frame = Renderer::RenderFrame(space, cam);
  EXPECT_TRUE(frame.commands.empty());
  EXPECT_EQ(frame.culled, 1u);
}

TEST(RendererTest, InvisibleGlyphsSkipped) {
  VirtualSpace space;
  Glyph g;
  g.kind = GlyphKind::kShape;
  g.visible = false;
  space.AddGlyph(g);
  Camera cam(800, 600);
  Frame frame = Renderer::RenderFrame(space, cam);
  EXPECT_TRUE(frame.commands.empty());
}

TEST(RendererTest, MinimapShowsViewportMarker) {
  dot::Graph g = TwoNodeGraph();
  auto layout = layout::LayoutGraph(g);
  ASSERT_TRUE(layout.ok());
  VirtualSpace space;
  BuildScene(g, layout.value(), &space);

  Camera main(800, 600);
  main.SetAltitude(0);
  main.CenterOn(layout.value().nodes[0].x, layout.value().nodes[0].y);
  Frame minimap = Renderer::RenderMinimap(space, main, 200, 150);
  EXPECT_EQ(minimap.viewport_width, 200);
  // Whole scene (5 glyphs) plus the viewport marker.
  ASSERT_EQ(minimap.commands.size(), 6u);
  const DrawCommand& marker = minimap.commands.back();
  EXPECT_EQ(marker.owner, "viewport");
  EXPECT_EQ(marker.stroke, Color::Red());
  EXPECT_GT(marker.width, 0);
  // Zooming the main camera out grows the marker.
  main.SetAltitude(500);
  Frame wider = Renderer::RenderMinimap(space, main, 200, 150);
  EXPECT_GT(wider.commands.back().width, marker.width);
}

TEST(RendererTest, LensMagnifiesNearbyGlyphs) {
  VirtualSpace space;
  Glyph g;
  g.kind = GlyphKind::kShape;
  g.x = 0;
  g.y = 0;
  g.width = 20;
  g.height = 10;
  space.AddGlyph(g);
  Camera cam(800, 600);
  cam.MoveTo(0, 0);
  // Lens centered on the glyph's screen position (viewport center).
  FisheyeLens lens(400, 300, 200, 3.0);
  Frame plain = Renderer::RenderFrame(space, cam);
  Frame magnified = Renderer::RenderFrame(space, cam, &lens);
  ASSERT_EQ(plain.commands.size(), 1u);
  ASSERT_EQ(magnified.commands.size(), 1u);
  EXPECT_GT(magnified.commands[0].width, plain.commands[0].width * 2);
}

// --- Raster ---

TEST(RasterTest, SetGetAndClipping) {
  Raster raster(10, 8, Color::White());
  EXPECT_EQ(raster.At(0, 0), Color::White());
  raster.Set(3, 4, Color::Red());
  EXPECT_EQ(raster.At(3, 4), Color::Red());
  raster.Set(-1, 0, Color::Red());   // clipped, no crash
  raster.Set(10, 8, Color::Red());
  EXPECT_EQ(raster.At(-1, 0), Color::Black());  // out of range sentinel
}

TEST(RasterTest, PpmFormat) {
  Raster raster(4, 2);
  std::string ppm = raster.ToPpm();
  EXPECT_EQ(ppm.rfind("P6\n4 2\n255\n", 0), 0u);
  EXPECT_EQ(ppm.size(), std::string("P6\n4 2\n255\n").size() + 4 * 2 * 3);
}

TEST(RasterTest, RasterizeColoredScene) {
  // One red node centered in the viewport over a white background.
  VirtualSpace space;
  Glyph shape;
  shape.kind = GlyphKind::kShape;
  shape.x = 0;
  shape.y = 0;
  shape.width = 40;
  shape.height = 20;
  shape.fill = Color::Red();
  shape.stroke = Color::Black();
  space.AddGlyph(shape);
  Camera cam(200, 100);
  cam.MoveTo(0, 0);
  Frame frame = Renderer::RenderFrame(space, cam);
  Raster raster = RasterizeFrame(frame);
  EXPECT_EQ(raster.width(), 200);
  EXPECT_EQ(raster.height(), 100);
  // Center pixel: node fill. Corner: background. Node border: stroke.
  EXPECT_EQ(raster.At(100, 50), Color::Red());
  EXPECT_EQ(raster.At(2, 2), Color::White());
  EXPECT_EQ(raster.At(100 - 20, 50), Color::Black());  // left border
}

TEST(RasterTest, EdgesDrawLines) {
  VirtualSpace space;
  Glyph edge;
  edge.kind = GlyphKind::kEdge;
  edge.x = -50;
  edge.y = 0;
  edge.x2 = 50;
  edge.y2 = 0;
  edge.stroke = Color::Black();
  space.AddGlyph(edge);
  Camera cam(200, 100);
  Frame frame = Renderer::RenderFrame(space, cam);
  Raster raster = RasterizeFrame(frame);
  // Horizontal line through the middle.
  EXPECT_EQ(raster.At(100, 50), Color::Black());
  EXPECT_EQ(raster.At(60, 50), Color::Black());
  EXPECT_EQ(raster.At(100, 40), Color::White());
}

TEST(RasterTest, DiffRatioDetectsChange) {
  Raster a(20, 20);
  Raster b(20, 20);
  EXPECT_DOUBLE_EQ(a.DiffRatio(b), 0.0);
  b.Set(0, 0, Color::Red());
  EXPECT_NEAR(a.DiffRatio(b), 1.0 / 400.0, 1e-12);
  Raster c(10, 10);
  EXPECT_DOUBLE_EQ(a.DiffRatio(c), 1.0);
}

TEST(RasterTest, ReplayChangesPixels) {
  // A colored replay produces a visually different screenshot than the
  // initial gray scene — the pixel-level proof of the coloring pipeline.
  dot::Graph g = TwoNodeGraph();
  auto layout = layout::LayoutGraph(g);
  ASSERT_TRUE(layout.ok());
  VirtualSpace space;
  BuildScene(g, layout.value(), &space);
  Camera cam(400, 300);
  cam.FitRect(0, 0, layout.value().width, layout.value().height);
  Raster before = RasterizeFrame(Renderer::RenderFrame(space, cam));
  int shape = space.ShapeFor("n0");
  ASSERT_GE(shape, 0);
  ASSERT_TRUE(space.MutateGlyph(shape, [](Glyph* gg) {
    gg->fill = Color::Green();
  }).ok());
  Raster after = RasterizeFrame(Renderer::RenderFrame(space, cam));
  EXPECT_GT(after.DiffRatio(before), 0.001);
}

// --- dirty-glyph epochs + delta rendering ---

TEST(VirtualSpaceTest, EpochTracksMutations) {
  VirtualSpace space;
  Glyph g;
  g.kind = GlyphKind::kShape;
  int id = space.AddGlyph(g);
  int64_t e0 = space.epoch();
  ASSERT_TRUE(space.SetFill(id, Color::Red()).ok());
  EXPECT_GT(space.epoch(), e0);
  // A no-op fill (same color) must not dirty the glyph.
  int64_t e1 = space.epoch();
  ASSERT_TRUE(space.SetFill(id, Color::Red()).ok());
  EXPECT_EQ(space.epoch(), e1);
  EXPECT_TRUE(space.SnapshotSince(e1).empty());
}

TEST(VirtualSpaceTest, SnapshotSinceReturnsOnlyDirtyGlyphs) {
  VirtualSpace space;
  Glyph g;
  g.kind = GlyphKind::kShape;
  int a = space.AddGlyph(g);
  int b = space.AddGlyph(g);
  int64_t epoch = 0;
  auto all = space.Snapshot(&epoch);
  EXPECT_EQ(all.size(), 2u);
  EXPECT_TRUE(space.SnapshotSince(epoch).empty());
  ASSERT_TRUE(space.SetFill(b, Color::Green()).ok());
  auto dirty = space.SnapshotSince(epoch);
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0].id, b);
  EXPECT_EQ(dirty[0].fill, Color::Green());
  // The other glyph is untouched.
  EXPECT_NE(a, b);
}

TEST(VirtualSpaceTest, AddGlyphsMatchesRepeatedAddGlyph) {
  Glyph g;
  g.kind = GlyphKind::kShape;
  g.owner = "n0";
  VirtualSpace one_by_one;
  VirtualSpace batched;
  std::vector<Glyph> batch;
  for (int i = 0; i < 5; ++i) {
    Glyph gi = g;
    gi.z = i % 2;
    one_by_one.AddGlyph(gi);
    batch.push_back(gi);
  }
  int first = batched.AddGlyphs(std::move(batch));
  EXPECT_EQ(first, 0);
  ASSERT_EQ(batched.size(), one_by_one.size());
  auto a = one_by_one.Snapshot();
  auto b = batched.Snapshot();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].z, b[i].z);
  }
  EXPECT_EQ(batched.GlyphsForOwner("n0").size(), 5u);
}

TEST(RendererTest, RenderDeltaContainsOnlyChangedGlyphs) {
  dot::Graph g = TwoNodeGraph();
  auto layout = layout::LayoutGraph(g);
  ASSERT_TRUE(layout.ok());
  VirtualSpace space;
  BuildScene(g, layout.value(), &space);
  Camera cam(400, 300);
  cam.FitRect(0, 0, layout.value().width, layout.value().height);
  Frame full = Renderer::RenderFrame(space, cam);
  EXPECT_TRUE(Renderer::RenderDelta(space, cam, full.epoch).commands.empty());
  int shape = space.ShapeFor("n1");
  ASSERT_GE(shape, 0);
  ASSERT_TRUE(space.SetFill(shape, Color::Red()).ok());
  Frame delta = Renderer::RenderDelta(space, cam, full.epoch);
  ASSERT_EQ(delta.commands.size(), 1u);
  EXPECT_EQ(delta.commands[0].glyph, shape);
  EXPECT_EQ(delta.commands[0].fill, Color::Red());
}

TEST(RasterTest, IncrementalDeltaMatchesFullRedraw) {
  // Pixel-identity: dirty-rect redraw == full re-rasterization after a
  // sequence of color changes.
  dot::Graph g = TwoNodeGraph();
  auto layout = layout::LayoutGraph(g);
  ASSERT_TRUE(layout.ok());
  VirtualSpace space;
  BuildScene(g, layout.value(), &space);
  Camera cam(400, 300);
  cam.FitRect(0, 0, layout.value().width, layout.value().height);
  Frame full = Renderer::RenderFrame(space, cam);
  IncrementalRasterizer inc(400, 300);
  inc.Draw(full);
  int64_t epoch = full.epoch;
  const Color colors[] = {Color::Red(), Color::Green(), Color::Orange()};
  const char* nodes[] = {"n0", "n1", "n0"};
  for (int step = 0; step < 3; ++step) {
    int shape = space.ShapeFor(nodes[step]);
    ASSERT_GE(shape, 0);
    ASSERT_TRUE(space.SetFill(shape, colors[step]).ok());
    Frame delta = Renderer::RenderDelta(space, cam, epoch);
    epoch = delta.epoch;
    ASSERT_TRUE(inc.ApplyDelta(delta).ok());
    Raster oracle = RasterizeFrame(Renderer::RenderFrame(space, cam));
    EXPECT_DOUBLE_EQ(inc.raster().DiffRatio(oracle), 0.0) << "step " << step;
  }
}

TEST(RasterTest, IncrementalRedrawIsLocalAndCounted) {
  dot::Graph g = TwoNodeGraph();
  auto layout = layout::LayoutGraph(g);
  ASSERT_TRUE(layout.ok());
  VirtualSpace space;
  BuildScene(g, layout.value(), &space);
  Camera cam(400, 300);
  cam.FitRect(0, 0, layout.value().width, layout.value().height);
  Frame full = Renderer::RenderFrame(space, cam);
  IncrementalRasterizer inc(400, 300);
  inc.Draw(full);
  obs::Counter* redrawn = obs::Registry::Default()->GetOrCreateCounter(
      "stetho_viz_glyphs_redrawn_total", "");
  int64_t before = redrawn->value();
  int shape = space.ShapeFor("n0");
  ASSERT_TRUE(space.SetFill(shape, Color::Red()).ok());
  ASSERT_TRUE(
      inc.ApplyDelta(Renderer::RenderDelta(space, cam, full.epoch)).ok());
  // Only commands intersecting the node's dirty rectangle were redrawn —
  // strictly fewer than the full scene.
  EXPECT_GT(inc.last_redrawn(), 0);
  EXPECT_LT(inc.last_redrawn(), static_cast<int64_t>(full.commands.size()));
  EXPECT_EQ(redrawn->value() - before, inc.last_redrawn());
}

TEST(RasterTest, ApplyDeltaRequiresMatchingScene) {
  IncrementalRasterizer inc(100, 100);
  Frame delta;
  delta.viewport_width = 100;
  delta.viewport_height = 100;
  EXPECT_FALSE(inc.ApplyDelta(delta).ok());  // no Draw yet
  Frame full;
  full.viewport_width = 100;
  full.viewport_height = 100;
  inc.Draw(full);
  EXPECT_TRUE(inc.ApplyDelta(delta).ok());
  Frame wrong;
  wrong.viewport_width = 50;
  wrong.viewport_height = 100;
  EXPECT_FALSE(inc.ApplyDelta(wrong).ok());
}

}  // namespace
}  // namespace stetho::viz
