#include <gtest/gtest.h>

#include "storage/column.h"
#include "storage/table.h"
#include "storage/value.h"

namespace stetho::storage {
namespace {

// --- Value ---

TEST(ValueTest, NullValue) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_EQ(Value::Int(5).AsInt(), 5);
  EXPECT_DOUBLE_EQ(Value::Double(1.5).AsDouble(), 1.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::Oid(9).AsOid(), 9u);
}

TEST(ValueTest, ToStringLiterals) {
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::String("a\"b").ToString(), "\"a\\\"b\"");
  EXPECT_EQ(Value::Oid(7).ToString(), "7@0");
}

TEST(ValueTest, NumericConversions) {
  auto d = Value::Int(4).ToDouble();
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d.value(), 4.0);
  auto i = Value::Bool(true).ToInt();
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i.value(), 1);
  EXPECT_FALSE(Value::String("x").ToDouble().ok());
  EXPECT_FALSE(Value::Double(1.5).ToInt().ok());
}

TEST(ValueTest, CompareNumericCrossType) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int(1).Compare(Value::Double(1.5)), 0);
  EXPECT_GT(Value::Double(3.0).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, CompareNullsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_GT(Value::Int(0).Compare(Value::Null()), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(ValueTest, EqualityRequiresSameType) {
  EXPECT_TRUE(Value::Int(2) == Value::Int(2));
  // 2 and 2.0 compare equal but are not the same typed value.
  EXPECT_FALSE(Value::Int(2) == Value::Double(2.0));
}

// --- Column ---

TEST(ColumnTest, AppendAndGet) {
  ColumnPtr col = Column::Make(DataType::kInt64);
  col->AppendInt(1);
  col->AppendInt(2);
  col->AppendInt(3);
  EXPECT_EQ(col->size(), 3u);
  EXPECT_EQ(col->IntAt(1), 2);
  EXPECT_EQ(col->GetValue(2), Value::Int(3));
}

TEST(ColumnTest, StringColumn) {
  ColumnPtr col = Column::Make(DataType::kString);
  col->AppendString("a");
  col->AppendString("b");
  EXPECT_EQ(col->StringAt(0), "a");
  EXPECT_EQ(col->GetValue(1), Value::String("b"));
}

TEST(ColumnTest, NullsBackfill) {
  ColumnPtr col = Column::Make(DataType::kDouble);
  col->AppendDouble(1.0);
  EXPECT_FALSE(col->has_nulls());
  col->AppendNull();
  EXPECT_TRUE(col->has_nulls());
  EXPECT_FALSE(col->IsNull(0));
  EXPECT_TRUE(col->IsNull(1));
  EXPECT_TRUE(col->GetValue(1).is_null());
}

TEST(ColumnTest, OidRange) {
  ColumnPtr col = Column::MakeOidRange(10, 4);
  ASSERT_EQ(col->size(), 4u);
  EXPECT_EQ(col->OidAt(0), 10u);
  EXPECT_EQ(col->OidAt(3), 13u);
  EXPECT_EQ(col->type(), DataType::kOid);
}

TEST(ColumnTest, AppendValueCoercion) {
  ColumnPtr col = Column::Make(DataType::kDouble);
  EXPECT_TRUE(col->AppendValue(Value::Int(2)).ok());
  EXPECT_DOUBLE_EQ(col->DoubleAt(0), 2.0);
  ColumnPtr s = Column::Make(DataType::kString);
  EXPECT_FALSE(s->AppendValue(Value::Int(2)).ok());
}

TEST(ColumnTest, Slice) {
  ColumnPtr col = Column::Make(DataType::kInt64);
  for (int i = 0; i < 10; ++i) col->AppendInt(i);
  ColumnPtr s = col->Slice(3, 6);
  ASSERT_EQ(s->size(), 3u);
  EXPECT_EQ(s->IntAt(0), 3);
  EXPECT_EQ(s->IntAt(2), 5);
}

TEST(ColumnTest, SliceClampsAndEmpty) {
  ColumnPtr col = Column::Make(DataType::kInt64);
  col->AppendInt(1);
  EXPECT_EQ(col->Slice(0, 100)->size(), 1u);
  EXPECT_EQ(col->Slice(5, 9)->size(), 0u);
}

TEST(ColumnTest, SlicePreservesNulls) {
  ColumnPtr col = Column::Make(DataType::kInt64);
  col->AppendInt(1);
  col->AppendNull();
  col->AppendInt(3);
  ColumnPtr s = col->Slice(1, 3);
  ASSERT_EQ(s->size(), 2u);
  EXPECT_TRUE(s->IsNull(0));
  EXPECT_FALSE(s->IsNull(1));
}

TEST(ColumnTest, Gather) {
  ColumnPtr col = Column::Make(DataType::kString);
  col->AppendString("a");
  col->AppendString("b");
  col->AppendString("c");
  auto r = col->Gather({2, 0, 2});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value()->size(), 3u);
  EXPECT_EQ(r.value()->StringAt(0), "c");
  EXPECT_EQ(r.value()->StringAt(1), "a");
  EXPECT_EQ(r.value()->StringAt(2), "c");
}

TEST(ColumnTest, GatherOutOfRange) {
  ColumnPtr col = Column::Make(DataType::kInt64);
  col->AppendInt(1);
  EXPECT_FALSE(col->Gather({1}).ok());
  EXPECT_FALSE(col->Gather({-1}).ok());
}

TEST(ColumnTest, MemoryBytesGrows) {
  ColumnPtr col = Column::Make(DataType::kInt64);
  size_t before = col->MemoryBytes();
  for (int i = 0; i < 1000; ++i) col->AppendInt(i);
  EXPECT_GT(col->MemoryBytes(), before);
  EXPECT_GE(col->MemoryBytes(), 1000 * sizeof(int64_t));
}

// --- Schema / Table / Catalog ---

Schema LineitemMini() {
  return Schema({{"l_partkey", DataType::kInt64},
                 {"l_tax", DataType::kDouble},
                 {"l_comment", DataType::kString}});
}

TEST(SchemaTest, FindColumnCaseInsensitive) {
  Schema s = LineitemMini();
  EXPECT_EQ(s.FindColumn("L_TAX"), 1);
  EXPECT_EQ(s.FindColumn("nope"), -1);
}

TEST(SchemaTest, ToString) {
  Schema s({{"a", DataType::kInt64}});
  EXPECT_EQ(s.ToString(), "(a:lng)");
}

TEST(TableTest, AppendRowAndColumnLookup) {
  TablePtr t = Table::Make("lineitem", LineitemMini());
  ASSERT_TRUE(
      t->AppendRow({Value::Int(1), Value::Double(0.06), Value::String("x")}).ok());
  ASSERT_TRUE(
      t->AppendRow({Value::Int(2), Value::Double(0.02), Value::String("y")}).ok());
  EXPECT_EQ(t->num_rows(), 2u);
  auto col = t->GetColumn("l_tax");
  ASSERT_TRUE(col.ok());
  EXPECT_DOUBLE_EQ(col.value()->DoubleAt(1), 0.02);
  EXPECT_FALSE(t->GetColumn("bogus").ok());
}

TEST(TableTest, AppendRowArityMismatch) {
  TablePtr t = Table::Make("t", LineitemMini());
  EXPECT_FALSE(t->AppendRow({Value::Int(1)}).ok());
}

TEST(CatalogTest, AddAndLookup) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable(Table::Make("lineitem", LineitemMini())).ok());
  EXPECT_TRUE(cat.GetTable("LINEITEM").ok());
  EXPECT_FALSE(cat.GetTable("orders").ok());
  EXPECT_EQ(cat.num_tables(), 1u);
}

TEST(CatalogTest, DuplicateRejected) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable(Table::Make("t", LineitemMini())).ok());
  EXPECT_EQ(cat.AddTable(Table::Make("T", LineitemMini())).code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace stetho::storage
