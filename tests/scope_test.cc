#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <set>
#include <thread>

#include "analysis/perfdiff.h"
#include "common/clock.h"
#include "common/rng.h"
#include "obs/profile_store.h"
#include "dot/parser.h"
#include "dot/writer.h"
#include "net/channel.h"
#include "net/trace_stream.h"
#include "net/udp.h"
#include "profiler/sink.h"
#include "scope/analysis.h"
#include "scope/coloring.h"
#include "scope/mapping.h"
#include "scope/online.h"
#include "scope/replayer.h"
#include "scope/textual.h"
#include "scope/trace.h"
#include "server/mserver.h"
#include "tpch/dbgen.h"

namespace stetho::scope {
namespace {

using profiler::EventState;
using profiler::TraceEvent;

TraceEvent Ev(EventState state, int pc, int thread = 0, int64_t usec = 10,
              int64_t time_us = 0, const char* stmt = "X_0 := sql.mvc();") {
  TraceEvent e;
  e.state = state;
  e.pc = pc;
  e.thread = thread;
  e.usec = state == EventState::kDone ? usec : 0;
  e.time_us = time_us;
  e.rss_bytes = 1024;
  e.stmt = stmt;
  return e;
}

// --- mapping ---

TEST(MappingTest, RoundTrip) {
  EXPECT_EQ(NodeForPc(0), "n0");
  EXPECT_EQ(NodeForPc(42), "n42");
  EXPECT_EQ(PcForNode("n42").value(), 42);
  EXPECT_FALSE(PcForNode("x42").ok());
  EXPECT_FALSE(PcForNode("n").ok());
  EXPECT_FALSE(PcForNode("n-3").ok());
}

// --- coloring: the paper's worked example ---

TEST(ColoringTest, PaperExampleExactlyOneRed) {
  // {start,1},{done,1},{start,2},{done,2},{start,3},{start,4}:
  // pcs 1 and 2 are adjacent pairs -> uncolored; pc 3 is an unpaired start
  // with instructions after it -> RED; pc 4 is the last event -> unjudged.
  std::vector<TraceEvent> buffer = {
      Ev(EventState::kStart, 1), Ev(EventState::kDone, 1),
      Ev(EventState::kStart, 2), Ev(EventState::kDone, 2),
      Ev(EventState::kStart, 3), Ev(EventState::kStart, 4),
  };
  auto decisions = PairSequenceColoring(buffer);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].pc, 3);
  EXPECT_EQ(decisions[0].color, viz::Color::Red());
}

TEST(ColoringTest, UnpairedDoneTurnsGreen) {
  // start,5 ... other work ... done,5: 5 was long-running; its done event
  // (not adjacent to its start) colors it GREEN.
  std::vector<TraceEvent> buffer = {
      Ev(EventState::kStart, 5), Ev(EventState::kStart, 6),
      Ev(EventState::kDone, 5),  Ev(EventState::kDone, 6),
  };
  auto decisions = PairSequenceColoring(buffer);
  ASSERT_EQ(decisions.size(), 4u);
  EXPECT_EQ(decisions[0].pc, 5);
  EXPECT_EQ(decisions[0].color, viz::Color::Red());
  EXPECT_EQ(decisions[1].pc, 6);
  EXPECT_EQ(decisions[1].color, viz::Color::Red());
  EXPECT_EQ(decisions[2].pc, 5);
  EXPECT_EQ(decisions[2].color, viz::Color::Green());
  EXPECT_EQ(decisions[3].pc, 6);
  EXPECT_EQ(decisions[3].color, viz::Color::Green());
}

TEST(ColoringTest, AllAdjacentPairsColorNothing) {
  std::vector<TraceEvent> buffer;
  for (int pc = 0; pc < 20; ++pc) {
    buffer.push_back(Ev(EventState::kStart, pc));
    buffer.push_back(Ev(EventState::kDone, pc));
  }
  EXPECT_TRUE(PairSequenceColoring(buffer).empty());
}

TEST(ColoringTest, EmptyBuffer) {
  EXPECT_TRUE(PairSequenceColoring({}).empty());
}

TEST(ColoringTest, ThresholdSeparatesCostly) {
  std::vector<TraceEvent> buffer = {
      Ev(EventState::kStart, 1), Ev(EventState::kDone, 1, 0, 50),
      Ev(EventState::kStart, 2), Ev(EventState::kDone, 2, 0, 5000),
      Ev(EventState::kStart, 3),  // still running
  };
  auto decisions = ThresholdColoring(buffer, 1000);
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_EQ(decisions[0].pc, 2);
  EXPECT_EQ(decisions[0].color, viz::Color::Red());
  EXPECT_EQ(decisions[1].pc, 3);
  EXPECT_EQ(decisions[1].color, viz::Color::Orange());
}

TEST(ColoringTest, GradientScalesWithDuration) {
  std::vector<TraceEvent> buffer = {
      Ev(EventState::kDone, 1, 0, 100),
      Ev(EventState::kDone, 2, 0, 1000),
  };
  auto decisions = GradientColoring(buffer);
  ASSERT_EQ(decisions.size(), 2u);
  // pc 2 is the max -> full red; pc 1 is lighter (closer to white).
  EXPECT_EQ(decisions[1].color, viz::Color::Red());
  EXPECT_GT(decisions[0].color.g, decisions[1].color.g);
}

// --- incremental pair-sequence tracker ---

TEST(ColoringTest, TrackerMatchesPaperExample) {
  std::vector<TraceEvent> buffer = {
      Ev(EventState::kStart, 1), Ev(EventState::kDone, 1),
      Ev(EventState::kStart, 2), Ev(EventState::kDone, 2),
      Ev(EventState::kStart, 3), Ev(EventState::kStart, 4),
  };
  PairSequenceTracker tracker;
  for (const TraceEvent& e : buffer) tracker.Observe(e);
  ASSERT_EQ(tracker.decisions().size(), 1u);
  EXPECT_EQ(tracker.decisions()[0].pc, 3);
  EXPECT_EQ(tracker.decisions()[0].color, viz::Color::Red());
}

TEST(ColoringTest, TrackerEquivalentToRescanOnRandomStreams) {
  // Property: after every prefix of a random event stream, the tracker's
  // accumulated decisions are exactly what a full rescan would produce.
  SplitMix64 rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<TraceEvent> stream;
    PairSequenceTracker tracker;
    std::vector<ColorDecision> via_take_new;
    const int kEvents = 60;
    for (int i = 0; i < kEvents; ++i) {
      int pc = static_cast<int>(rng.NextBounded(6));
      EventState state =
          rng.NextBool(0.5) ? EventState::kStart : EventState::kDone;
      stream.push_back(Ev(state, pc));
      tracker.Observe(stream.back());
      auto rescan = PairSequenceColoring(stream);
      ASSERT_EQ(tracker.decisions().size(), rescan.size())
          << "trial " << trial << " prefix " << i;
      for (size_t k = 0; k < rescan.size(); ++k) {
        EXPECT_EQ(tracker.decisions()[k].pc, rescan[k].pc);
        EXPECT_EQ(tracker.decisions()[k].color, rescan[k].color);
      }
      // Random batch boundaries for the delta interface.
      if (rng.NextBool(0.3)) {
        auto fresh = tracker.TakeNew();
        via_take_new.insert(via_take_new.end(), fresh.begin(), fresh.end());
      }
    }
    auto fresh = tracker.TakeNew();
    via_take_new.insert(via_take_new.end(), fresh.begin(), fresh.end());
    // Concatenated deltas reproduce the full decision list.
    auto rescan = PairSequenceColoring(stream);
    ASSERT_EQ(via_take_new.size(), rescan.size());
    for (size_t k = 0; k < rescan.size(); ++k) {
      EXPECT_EQ(via_take_new[k].pc, rescan[k].pc);
      EXPECT_EQ(via_take_new[k].color, rescan[k].color);
    }
  }
}

TEST(ColoringTest, TrackerResetForgetsState) {
  PairSequenceTracker tracker;
  tracker.Observe(Ev(EventState::kStart, 1));
  tracker.Observe(Ev(EventState::kStart, 2));
  EXPECT_EQ(tracker.decisions().size(), 1u);
  tracker.Reset();
  EXPECT_TRUE(tracker.decisions().empty());
  // The pre-reset pending start must not leak a verdict.
  tracker.Observe(Ev(EventState::kDone, 3));
  ASSERT_EQ(tracker.decisions().size(), 1u);
  EXPECT_EQ(tracker.decisions()[0].pc, 3);
  EXPECT_EQ(tracker.decisions()[0].color, viz::Color::Green());
}

// --- analysis ---

TEST(AnalysisTest, ThreadUtilization) {
  std::vector<TraceEvent> events = {
      Ev(EventState::kStart, 0, 0, 0, 0),
      Ev(EventState::kStart, 1, 1, 0, 0),
      Ev(EventState::kDone, 0, 0, 100, 100),
      Ev(EventState::kDone, 1, 1, 150, 150),
  };
  UtilizationReport report = AnalyzeThreadUtilization(events);
  EXPECT_EQ(report.wall_us, 150);
  EXPECT_EQ(report.max_concurrency, 2u);
  ASSERT_EQ(report.threads.size(), 2u);
  EXPECT_EQ(report.threads[0].busy_us, 100);
  EXPECT_EQ(report.threads[1].busy_us, 150);
  EXPECT_NE(report.ToString().find("thread 0"), std::string::npos);
}

TEST(AnalysisTest, SequentialTraceHasConcurrencyOne) {
  std::vector<TraceEvent> events;
  int64_t t = 0;
  for (int pc = 0; pc < 5; ++pc) {
    events.push_back(Ev(EventState::kStart, pc, 0, 0, t));
    t += 10;
    events.push_back(Ev(EventState::kDone, pc, 0, 10, t));
  }
  UtilizationReport report = AnalyzeThreadUtilization(events);
  EXPECT_EQ(report.max_concurrency, 1u);
}

TEST(AnalysisTest, OperatorAggregation) {
  std::vector<TraceEvent> events = {
      Ev(EventState::kDone, 1, 0, 100, 0, "X_1:bat[:oid] := algebra.select(X_0,1,2);"),
      Ev(EventState::kDone, 2, 0, 300, 0, "X_2:bat[:oid] := algebra.select(X_0,3,4);"),
      Ev(EventState::kDone, 3, 0, 50, 0, "io.print(X_2);"),
  };
  auto ops = AnalyzeOperators(events);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].op, "algebra.select");
  EXPECT_EQ(ops[0].calls, 2);
  EXPECT_EQ(ops[0].total_usec, 400);
  EXPECT_EQ(ops[0].max_usec, 300);
  EXPECT_EQ(ops[1].op, "io.print");
}

TEST(AnalysisTest, CostlyClusters) {
  std::vector<TraceEvent> events;
  // Two clusters of costly events separated by a long cheap stretch.
  for (int i = 0; i < 3; ++i) events.push_back(Ev(EventState::kDone, i, 0, 5000));
  for (int i = 0; i < 20; ++i) events.push_back(Ev(EventState::kDone, 100 + i, 0, 1));
  for (int i = 0; i < 2; ++i) events.push_back(Ev(EventState::kDone, 50 + i, 0, 9000));
  auto clusters = FindCostlyClusters(events, 1000, 8);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].pcs.size(), 3u);
  EXPECT_EQ(clusters[0].total_usec, 15000);
  EXPECT_EQ(clusters[1].pcs.size(), 2u);
}

TEST(AnalysisTest, ParallelismAnomalyDetected) {
  std::vector<TraceEvent> sequential;
  int64_t t = 0;
  for (int pc = 0; pc < 6; ++pc) {
    sequential.push_back(Ev(EventState::kStart, pc, 0, 0, t));
    t += 10;
    sequential.push_back(Ev(EventState::kDone, pc, 0, 10, t));
  }
  auto diag = DiagnoseParallelism(sequential, 8);
  EXPECT_TRUE(diag.sequential_anomaly);
  EXPECT_NE(diag.summary.find("ANOMALY"), std::string::npos);

  std::vector<TraceEvent> parallel = {
      Ev(EventState::kStart, 0, 0, 0, 0), Ev(EventState::kStart, 1, 1, 0, 1),
      Ev(EventState::kDone, 0, 0, 50, 50), Ev(EventState::kDone, 1, 1, 50, 51),
  };
  EXPECT_FALSE(DiagnoseParallelism(parallel, 2).sequential_anomaly);
}

TEST(AnalysisTest, OperatorPercentiles) {
  std::vector<TraceEvent> events;
  for (int i = 1; i <= 100; ++i) {
    events.push_back(Ev(EventState::kDone, i, 0, i * 10, 0,
                        "X := algebra.select(X_0);"));
  }
  auto ops = AnalyzeOperators(events);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].calls, 100);
  EXPECT_EQ(ops[0].max_usec, 1000);
  EXPECT_EQ(ops[0].p50_usec, 500);   // median of 10..1000
  EXPECT_EQ(ops[0].p95_usec, 960);   // nearest-rank 95th
}

TEST(TraceSortTest, RestoresEmissionOrder) {
  std::vector<TraceEvent> events;
  for (int64_t id : {3, 0, 2, 1}) {
    TraceEvent e = Ev(EventState::kDone, static_cast<int>(id));
    e.event = id;
    events.push_back(e);
  }
  SortTraceByEventId(&events);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].event, static_cast<int64_t>(i));
  }
}

TEST(AnalysisTest, CompareTracesFindsRegressions) {
  std::vector<TraceEvent> a = {
      Ev(EventState::kDone, 0, 0, 100, 0, "X_0 := sql.mvc();"),
      Ev(EventState::kDone, 1, 0, 500, 0, "X_1 := algebra.join(X_0,X_0);"),
      Ev(EventState::kDone, 2, 0, 50, 0, "io.print(X_1);"),
  };
  std::vector<TraceEvent> b = {
      Ev(EventState::kDone, 0, 0, 110, 0, "X_0 := sql.mvc();"),
      Ev(EventState::kDone, 1, 0, 2500, 0, "X_1 := algebra.join(X_0,X_0);"),
      Ev(EventState::kDone, 3, 0, 70, 0, "language.pass(X_1);"),
  };
  auto cmp = CompareTraces(a, b);
  EXPECT_EQ(cmp.total_usec_a, 650);
  EXPECT_EQ(cmp.total_usec_b, 2680);
  ASSERT_EQ(cmp.deltas.size(), 2u);  // pcs 0 and 1 in both
  EXPECT_EQ(cmp.deltas[0].pc, 1);    // biggest mover first
  EXPECT_EQ(cmp.deltas[0].delta_usec(), 2000);
  EXPECT_EQ(cmp.deltas[0].op, "algebra.join");
  EXPECT_EQ(cmp.only_in_a, (std::vector<int>{2}));
  EXPECT_EQ(cmp.only_in_b, (std::vector<int>{3}));
  std::string report = cmp.ToString();
  EXPECT_NE(report.find("+2030us"), std::string::npos);
  EXPECT_NE(report.find("algebra.join"), std::string::npos);
}

TEST(AnalysisTest, CompareIdenticalTraces) {
  auto t = std::vector<TraceEvent>{
      Ev(EventState::kDone, 0, 0, 100),
      Ev(EventState::kDone, 1, 0, 200),
  };
  auto cmp = CompareTraces(t, t);
  EXPECT_EQ(cmp.total_usec_a, cmp.total_usec_b);
  for (const auto& d : cmp.deltas) EXPECT_EQ(d.delta_usec(), 0);
  EXPECT_TRUE(cmp.only_in_a.empty());
  EXPECT_TRUE(cmp.only_in_b.empty());
}

TEST(AnalysisTest, ProgressEstimate) {
  std::vector<TraceEvent> events = {
      Ev(EventState::kDone, 0), Ev(EventState::kDone, 1),
      Ev(EventState::kStart, 2),
  };
  EXPECT_DOUBLE_EQ(EstimateProgress(events, 4), 0.5);
  EXPECT_DOUBLE_EQ(EstimateProgress({}, 4), 0.0);
  EXPECT_DOUBLE_EQ(EstimateProgress(events, 0), 0.0);
}

// --- trace file IO ---

TEST(TraceFileTest, WriteThenRead) {
  std::string path = testing::TempDir() + "/scope_trace_rw.trace";
  {
    auto sink = profiler::FileSink::Open(path);
    ASSERT_TRUE(sink.ok());
    TraceEvent e = Ev(EventState::kStart, 7);
    e.event = 1;
    sink.value()->Consume(e);
    e.state = EventState::kDone;
    e.event = 2;
    e.usec = 55;
    sink.value()->Consume(e);
    ASSERT_TRUE(sink.value()->Flush().ok());
  }
  auto events = ReadTraceFile(path);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_EQ(events.value().size(), 2u);
  EXPECT_EQ(events.value()[0].pc, 7);
  EXPECT_EQ(events.value()[1].usec, 55);
  std::remove(path.c_str());
}

TEST(TraceFileTest, MissingFileErrors) {
  EXPECT_FALSE(ReadTraceFile("/nonexistent/file.trace").ok());
}

TEST(TraceFileTest, TailPicksUpAppends) {
  std::string path = testing::TempDir() + "/scope_trace_tail.trace";
  std::remove(path.c_str());
  TraceFileTail tail(path);
  // Missing file: zero events.
  auto first = tail.Poll();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value().empty());

  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs((profiler::FormatTraceLine(Ev(EventState::kStart, 1)) + "\n").c_str(), f);
  std::fflush(f);
  auto second = tail.Poll();
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second.value().size(), 1u);

  // Partial line handling: write half a line, then the rest.
  std::string line = profiler::FormatTraceLine(Ev(EventState::kDone, 1)) + "\n";
  std::fputs(line.substr(0, 10).c_str(), f);
  std::fflush(f);
  auto third = tail.Poll();
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third.value().empty());
  std::fputs(line.substr(10).c_str(), f);
  std::fflush(f);
  std::fclose(f);
  auto fourth = tail.Poll();
  ASSERT_TRUE(fourth.ok());
  ASSERT_EQ(fourth.value().size(), 1u);
  EXPECT_EQ(fourth.value()[0].state, EventState::kDone);
  EXPECT_EQ(tail.parse_errors(), 0);
  std::remove(path.c_str());
}

// --- textual stethoscope ---

TEST(TextualTest, DemultiplexesDotAndTrace) {
  auto [sender, receiver] = net::Channel::CreatePair();
  TextualOptions options;
  TextualStethoscope textual(options);
  ASSERT_TRUE(textual.AddServer("srv", std::move(receiver)).ok());

  std::string dot = "digraph \"user.s0\" {\n  n0 [label=\"sql.mvc\"];\n}\n";
  ASSERT_TRUE(net::SendDotFile(sender.get(), "s0", dot).ok());
  ASSERT_TRUE(sender->Send(profiler::FormatTraceLine(Ev(EventState::kStart, 0))).ok());
  ASSERT_TRUE(sender->Send(profiler::FormatTraceLine(Ev(EventState::kDone, 0))).ok());
  ASSERT_TRUE(net::SendEof(sender.get(), "s0").ok());

  // Wait for delivery. Keys are namespaced by server name.
  for (int i = 0; i < 200 && !textual.QueryFinished("srv/s0"); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(textual.QueryFinished("srv/s0"));
  EXPECT_EQ(textual.events_received(), 2);
  auto received_dot = textual.DotFor("srv/s0");
  ASSERT_TRUE(received_dot.ok());
  auto graph = dot::ParseDot(received_dot.value());
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph.value().num_nodes(), 1u);
  EXPECT_EQ(textual.BufferSnapshot().size(), 2u);
  textual.Stop();
}

TEST(TextualTest, ClientSideFilter) {
  auto [sender, receiver] = net::Channel::CreatePair();
  TextualOptions options;
  options.filter.OnlyState(EventState::kDone);
  TextualStethoscope textual(options);
  ASSERT_TRUE(textual.AddServer("srv", std::move(receiver)).ok());
  ASSERT_TRUE(sender->Send(profiler::FormatTraceLine(Ev(EventState::kStart, 0))).ok());
  ASSERT_TRUE(sender->Send(profiler::FormatTraceLine(Ev(EventState::kDone, 0))).ok());
  for (int i = 0; i < 200 && textual.events_received() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(textual.events_received(), 2);
  EXPECT_EQ(textual.events_filtered(), 1);
  EXPECT_EQ(textual.BufferSnapshot().size(), 1u);
  textual.Stop();
}

TEST(TextualTest, MultipleServersSimultaneously) {
  // Paper §3.2: "The textual Stethoscope can connect to multiple MonetDB
  // servers at the same time to receive execution traces from all sources."
  TextualOptions options;
  TextualStethoscope textual(options);
  std::vector<std::unique_ptr<net::DatagramSender>> senders;
  const int kServers = 4;
  for (int s = 0; s < kServers; ++s) {
    auto [sender, receiver] = net::Channel::CreatePair();
    ASSERT_TRUE(
        textual.AddServer("srv" + std::to_string(s), std::move(receiver)).ok());
    senders.push_back(std::move(sender));
  }
  std::atomic<int> callbacks{0};
  textual.SetEventCallback([&](const std::string&, const TraceEvent&) {
    callbacks.fetch_add(1);
  });
  const int kPerServer = 25;
  for (int s = 0; s < kServers; ++s) {
    for (int i = 0; i < kPerServer; ++i) {
      ASSERT_TRUE(senders[static_cast<size_t>(s)]
                      ->Send(profiler::FormatTraceLine(Ev(EventState::kDone, i)))
                      .ok());
    }
  }
  for (int i = 0; i < 500 && textual.events_received() < kServers * kPerServer;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(textual.events_received(), kServers * kPerServer);
  EXPECT_EQ(callbacks.load(), kServers * kPerServer);
  textual.Stop();
}

TEST(TextualTest, WritesTraceFile) {
  std::string path = testing::TempDir() + "/textual_out.trace";
  std::remove(path.c_str());
  {
    auto [sender, receiver] = net::Channel::CreatePair();
    TextualOptions options;
    options.trace_path = path;
    TextualStethoscope textual(options);
    ASSERT_TRUE(textual.AddServer("srv", std::move(receiver)).ok());
    ASSERT_TRUE(sender->Send(profiler::FormatTraceLine(Ev(EventState::kDone, 9))).ok());
    for (int i = 0; i < 200 && textual.events_received() < 1; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    textual.Stop();
    ASSERT_TRUE(textual.Flush().ok());
  }
  auto events = ReadTraceFile(path);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events.value().size(), 1u);
  EXPECT_EQ(events.value()[0].pc, 9);
  std::remove(path.c_str());
}

TEST(TextualTest, OverRealUdp) {
  auto receiver = net::UdpReceiver::Bind(0);
  ASSERT_TRUE(receiver.ok());
  uint16_t port = receiver.value()->port();
  TextualOptions options;
  TextualStethoscope textual(options);
  ASSERT_TRUE(textual.AddServer("udp_srv", std::move(receiver).value()).ok());

  auto sender = net::UdpSender::Connect(port);
  ASSERT_TRUE(sender.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        sender.value()->Send(profiler::FormatTraceLine(Ev(EventState::kDone, i))).ok());
  }
  for (int i = 0; i < 500 && textual.events_received() < 10; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(textual.events_received(), 9);  // UDP may drop, loopback rarely does
  textual.Stop();
}

TEST(TextualTest, BatchedBurstPreservesOrderAndDemux) {
  // A burst far larger than max_batch arrives interleaved with framing
  // lines; batching must not reorder events or mix them into dot content.
  auto [sender, receiver] = net::Channel::CreatePair();
  TextualOptions options;
  options.max_batch = 8;
  TextualStethoscope textual(options);
  ASSERT_TRUE(textual.AddServer("srv", std::move(receiver)).ok());

  const int kEvents = 100;
  ASSERT_TRUE(
      net::SendDotFile(sender.get(), "s0", "digraph \"q\" {\n}\n").ok());
  for (int i = 0; i < kEvents; ++i) {
    ASSERT_TRUE(
        sender->Send(profiler::FormatTraceLine(Ev(EventState::kDone, i))).ok());
  }
  ASSERT_TRUE(sender->Send("this is not a trace line").ok());
  ASSERT_TRUE(net::SendEof(sender.get(), "s0").ok());

  for (int i = 0; i < 500 && !textual.QueryFinished("srv/s0"); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(textual.QueryFinished("srv/s0"));
  EXPECT_EQ(textual.events_received(), kEvents);
  EXPECT_EQ(textual.malformed_lines(), 1);
  EXPECT_TRUE(textual.DotFor("srv/s0").ok());
  auto snapshot = textual.BufferSnapshot();
  ASSERT_EQ(snapshot.size(), static_cast<size_t>(kEvents));
  for (int i = 0; i < kEvents; ++i) {
    EXPECT_EQ(snapshot[static_cast<size_t>(i)].pc, i);
  }
  textual.Stop();
}

TEST(TextualTest, ConcurrentIngestAndSnapshotStress) {
  // Readers hammer every query surface while the listener ingests a
  // stream — the TSan preset turns any ingest/snapshot race into a
  // failure.
  auto [sender, receiver] = net::Channel::CreatePair();
  TextualOptions options;
  options.buffer_capacity = 64;  // force ring evictions mid-stream
  TextualStethoscope textual(options);
  std::atomic<int64_t> callbacks{0};
  textual.SetEventCallback([&](const std::string&, const TraceEvent&) {
    callbacks.fetch_add(1, std::memory_order_relaxed);
  });
  ASSERT_TRUE(textual.AddServer("srv", std::move(receiver)).ok());

  const int kEvents = 1500;
  std::thread producer([&, sender = std::move(sender)] {
    for (int i = 0; i < kEvents; ++i) {
      ASSERT_TRUE(
          sender->Send(profiler::FormatTraceLine(Ev(EventState::kDone, i)))
              .ok());
      if (i % 500 == 0) {
        ASSERT_TRUE(net::SendDotFile(sender.get(),
                                     "q" + std::to_string(i),
                                     "digraph \"q\" {\n}\n")
                        .ok());
      }
    }
    ASSERT_TRUE(net::SendEof(sender.get(), "final").ok());
  });

  size_t max_seen = 0;
  for (int i = 0; i < 2000 && !textual.QueryFinished("srv/final"); ++i) {
    max_seen = std::max(max_seen, textual.BufferSnapshot().size());
    (void)textual.CompletedDots();
    (void)textual.events_received();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  producer.join();
  ASSERT_TRUE(textual.QueryFinished("srv/final"));
  EXPECT_EQ(textual.events_received(), kEvents);
  EXPECT_EQ(callbacks.load(), kEvents);
  EXPECT_LE(max_seen, 64u);
  EXPECT_EQ(textual.CompletedDots().size(), 3u);
  textual.Stop();
}

// --- offline replayer ---

class ReplayFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::TpchConfig config;
    config.scale_factor = 0.001;
    auto cat = tpch::GenerateTpch(config);
    ASSERT_TRUE(cat.ok());
    server::MserverOptions options;
    options.clock = &clock_;
    options.force_sequential = true;  // deterministic trace order
    server_ = std::make_unique<server::Mserver>(std::move(cat.value()), options);
    ring_ = std::make_shared<profiler::RingBufferSink>(1 << 16);
    server_->profiler()->AddSink(ring_);
    auto outcome = server_->ExecuteSql(
        "select l_tax from lineitem where l_partkey = 1");
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    outcome_ = std::move(outcome).value();
    auto graph = dot::ParseDot(outcome_.dot);
    ASSERT_TRUE(graph.ok());
    graph_ = std::move(graph).value();
    events_ = ring_->Snapshot();
    ASSERT_EQ(events_.size(), 2 * outcome_.plan.size());
    // Make timings deterministic regardless of the host: event i happens at
    // i*10us and instruction pc takes (pc+1)*100us.
    for (size_t i = 0; i < events_.size(); ++i) {
      events_[i].time_us = static_cast<int64_t>(i) * 10;
      if (events_[i].state == EventState::kDone) {
        events_[i].usec = (events_[i].pc + 1) * 100;
      }
    }
  }

  std::unique_ptr<OfflineReplayer> MakeReplayer(
      ColoringMode mode = ColoringMode::kState) {
    ReplayOptions options;
    options.clock = &replay_clock_;
    options.mode = mode;
    options.threshold_us = 1;
    auto r = OfflineReplayer::Create(graph_, events_, options);
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  }

  VirtualClock clock_;
  VirtualClock replay_clock_;
  std::unique_ptr<server::Mserver> server_;
  std::shared_ptr<profiler::RingBufferSink> ring_;
  server::QueryOutcome outcome_;
  dot::Graph graph_;
  std::vector<TraceEvent> events_;
};

TEST_F(ReplayFixture, StepColorsNodes) {
  auto replayer = MakeReplayer();
  EXPECT_EQ(replayer->cursor(), 0u);
  // First event is the start of pc 0 -> RED.
  ASSERT_TRUE(replayer->Step().ok());
  EXPECT_EQ(replayer->NodeColor(NodeForPc(events_[0].pc)).value(),
            viz::Color::Red());
  // Second event: done of the same pc -> GREEN (sequential trace).
  ASSERT_TRUE(replayer->Step().ok());
  EXPECT_EQ(replayer->NodeColor(NodeForPc(events_[1].pc)).value(),
            viz::Color::Green());
}

TEST_F(ReplayFixture, PlayToEndAllGreen) {
  auto replayer = MakeReplayer();
  auto applied = replayer->Play(/*speed=*/16.0, events_.size());
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value(), events_.size());
  EXPECT_TRUE(replayer->AtEnd());
  for (size_t pc = 0; pc < outcome_.plan.size(); ++pc) {
    EXPECT_EQ(replayer->NodeColor(NodeForPc(static_cast<int>(pc))).value(),
              viz::Color::Green())
        << pc;
  }
}

TEST_F(ReplayFixture, RewindResetsColors) {
  auto replayer = MakeReplayer();
  ASSERT_TRUE(replayer->Play(8.0, events_.size()).ok());
  replayer->Rewind();
  EXPECT_EQ(replayer->cursor(), 0u);
  EXPECT_EQ(replayer->NodeColor("n0").value(), viz::Color::Gray());
}

TEST_F(ReplayFixture, SeekForwardAndBack) {
  auto replayer = MakeReplayer();
  ASSERT_TRUE(replayer->SeekTo(4).ok());
  EXPECT_EQ(replayer->cursor(), 4u);
  // Events 0..3 are start/done of pcs 0 and 1 -> both GREEN, pc 2 untouched.
  EXPECT_EQ(replayer->NodeColor(NodeForPc(events_[0].pc)).value(),
            viz::Color::Green());
  EXPECT_EQ(replayer->NodeColor(NodeForPc(events_[4].pc)).value(),
            viz::Color::Gray());
  ASSERT_TRUE(replayer->StepBack().ok());
  EXPECT_EQ(replayer->cursor(), 3u);
  // After stepping back past pc 1's done, pc 1 is RED (start applied only).
  EXPECT_EQ(replayer->NodeColor(NodeForPc(events_[2].pc)).value(),
            viz::Color::Red());
  EXPECT_FALSE(replayer->SeekTo(events_.size() + 1).ok());
}

TEST_F(ReplayFixture, StepBackAtStartFails) {
  auto replayer = MakeReplayer();
  EXPECT_FALSE(replayer->StepBack().ok());
}

TEST_F(ReplayFixture, RenderPacingAppliesToColoring) {
  auto replayer = MakeReplayer();
  ASSERT_TRUE(replayer->Play(1e9, events_.size()).ok());
  auto stats = replayer->dispatcher()->Stats();
  ASSERT_GT(stats.render_gaps_us.size(), 0u);
  for (int64_t gap : stats.render_gaps_us) {
    EXPECT_GE(gap, 150000);  // the paper's 150ms EDT delay
  }
}

TEST_F(ReplayFixture, TooltipAndDebugWindow) {
  auto replayer = MakeReplayer();
  ASSERT_TRUE(replayer->Play(8.0, events_.size()).ok());
  std::string tip = replayer->TooltipFor("n1");
  EXPECT_NE(tip.find("n1:"), std::string::npos);
  EXPECT_NE(tip.find("executions="), std::string::npos);
  std::string dbg = replayer->DebugWindowText();
  EXPECT_NE(dbg.find("state=done"), std::string::npos);
  EXPECT_NE(dbg.find("progress:"), std::string::npos);
  EXPECT_EQ(replayer->TooltipFor("zz"), "unknown node zz");
}

TEST_F(ReplayFixture, BirdsEyeViewShowsWholeGraph) {
  auto replayer = MakeReplayer();
  viz::Frame frame = replayer->BirdsEyeView();
  // All shape+text+edge glyphs visible, nothing culled.
  EXPECT_EQ(frame.culled, 0u);
  EXPECT_GE(frame.commands.size(), 2 * graph_.num_nodes());
}

TEST_F(ReplayFixture, FocusNodeMovesCamera) {
  auto replayer = MakeReplayer();
  // n0 and n3 sit in different layout layers, so focusing them lands the
  // camera at different vertical positions.
  ASSERT_TRUE(replayer->FocusNode("n0").ok());
  double y0 = replayer->camera()->y();
  ASSERT_TRUE(replayer->FocusNode("n3").ok());
  EXPECT_NE(replayer->camera()->y(), y0);
  EXPECT_FALSE(replayer->FocusNode("n999").ok());
}

TEST_F(ReplayFixture, ThresholdModeOnlyColorsCostly) {
  ReplayOptions options;
  options.clock = &replay_clock_;
  options.mode = ColoringMode::kThreshold;
  options.threshold_us = 1LL << 60;  // nothing is that costly
  auto replayer = OfflineReplayer::Create(graph_, events_, options);
  ASSERT_TRUE(replayer.ok());
  ASSERT_TRUE(replayer.value()->Play(8.0, events_.size()).ok());
  for (size_t pc = 0; pc < outcome_.plan.size(); ++pc) {
    EXPECT_EQ(
        replayer.value()->NodeColor(NodeForPc(static_cast<int>(pc))).value(),
        viz::Color::Gray());
  }
}

TEST_F(ReplayFixture, ColorFadeAnimatesToTarget) {
  ReplayOptions options;
  options.clock = &replay_clock_;
  options.render_interval_us = 0;
  options.color_fade_us = 80000;  // 80ms fades
  auto replayer = OfflineReplayer::Create(graph_, events_, options);
  ASSERT_TRUE(replayer.ok());
  // Step completes the fade: target color exactly reached.
  ASSERT_TRUE(replayer.value()->Step().ok());
  EXPECT_EQ(replayer.value()->NodeColor(NodeForPc(events_[0].pc)).value(),
            viz::Color::Red());
  // A full play ends all green despite fading through intermediate colors.
  ASSERT_TRUE(replayer.value()->Play(1e9, events_.size()).ok());
  for (size_t pc = 0; pc < outcome_.plan.size(); ++pc) {
    EXPECT_EQ(replayer.value()
                  ->NodeColor(NodeForPc(static_cast<int>(pc)))
                  .value(),
              viz::Color::Green());
  }
  EXPECT_EQ(replayer.value()->animator()->active(), 0u);
}

TEST_F(ReplayFixture, GradientModeColorsByDuration) {
  auto replayer = MakeReplayer(ColoringMode::kGradient);
  ASSERT_TRUE(replayer->Play(8.0, events_.size()).ok());
  // At least one node is fully red (the max-duration one).
  bool saw_red = false;
  for (size_t pc = 0; pc < outcome_.plan.size(); ++pc) {
    if (replayer->NodeColor(NodeForPc(static_cast<int>(pc))).value() ==
        viz::Color::Red()) {
      saw_red = true;
    }
  }
  EXPECT_TRUE(saw_red);
}

TEST_F(ReplayFixture, SeekMatchesSteppedOracleAllModes) {
  // SeekTo only touches pcs whose color can change; a step-by-step replay
  // is the oracle it must agree with. Gradient mode is the exception by
  // design (unchanged from the pre-incremental seek): live stepping tints
  // a node against the running maximum at its done event, while a seek
  // re-derives every colored node against the maximum at the seek target —
  // there the oracle is that recomputation, done here by hand.
  for (ColoringMode mode : {ColoringMode::kState, ColoringMode::kThreshold,
                            ColoringMode::kGradient}) {
    const size_t targets[] = {0, 1, events_.size() / 2, events_.size() - 1,
                              events_.size()};
    for (size_t target : targets) {
      auto seeker = MakeReplayer(mode);
      ASSERT_TRUE(seeker->SeekTo(target).ok());
      if (mode == ColoringMode::kGradient) {
        std::vector<int64_t> cum(outcome_.plan.size(), 0);
        for (size_t i = 0; i < target; ++i) {
          if (events_[i].state == EventState::kDone) {
            cum[static_cast<size_t>(events_[i].pc)] += events_[i].usec;
          }
        }
        int64_t max_usec = 1;
        for (int64_t u : cum) max_usec = std::max(max_usec, u);
        for (size_t pc = 0; pc < cum.size(); ++pc) {
          viz::Color expected =
              cum[pc] > 0
                  ? viz::Color::Lerp(viz::Color::White(), viz::Color::Red(),
                                     static_cast<double>(cum[pc]) /
                                         static_cast<double>(max_usec))
                  : viz::Color::Gray();
          EXPECT_EQ(seeker->NodeColor(NodeForPc(static_cast<int>(pc))).value(),
                    expected)
              << "gradient target " << target << " pc " << pc;
        }
        continue;
      }
      auto stepper = MakeReplayer(mode);
      for (size_t i = 0; i < target; ++i) ASSERT_TRUE(stepper->Step().ok());
      for (size_t pc = 0; pc < outcome_.plan.size(); ++pc) {
        std::string node = NodeForPc(static_cast<int>(pc));
        EXPECT_EQ(seeker->NodeColor(node).value(),
                  stepper->NodeColor(node).value())
            << "mode " << static_cast<int>(mode) << " target " << target
            << " pc " << pc;
      }
    }
  }
}

TEST_F(ReplayFixture, SeekSequenceMatchesFreshReplay) {
  // Chained forward/backward seeks must land on the same state as a fresh
  // replay stepped to the final position (incremental diffs can't drift).
  auto replayer = MakeReplayer();
  const size_t n = events_.size();
  const size_t hops[] = {n, 3, n / 2, 0, n - 1};
  for (size_t hop : hops) {
    ASSERT_TRUE(replayer->SeekTo(hop).ok());
  }
  auto oracle = MakeReplayer();
  for (size_t i = 0; i + 1 < n; ++i) ASSERT_TRUE(oracle->Step().ok());
  for (size_t pc = 0; pc < outcome_.plan.size(); ++pc) {
    std::string node = NodeForPc(static_cast<int>(pc));
    EXPECT_EQ(replayer->NodeColor(node).value(),
              oracle->NodeColor(node).value())
        << pc;
  }
}

TEST_F(ReplayFixture, FilterChangeKeepsSeekOracleAgreement) {
  profiler::EventFilter filter;
  filter.OnlyState(EventState::kDone);
  auto seeker = MakeReplayer();
  seeker->SetFilter(filter);
  auto stepper = MakeReplayer();
  stepper->SetFilter(filter);
  const size_t target = seeker->size() / 2;
  ASSERT_TRUE(seeker->SeekTo(target).ok());
  for (size_t i = 0; i < target; ++i) ASSERT_TRUE(stepper->Step().ok());
  for (size_t pc = 0; pc < outcome_.plan.size(); ++pc) {
    std::string node = NodeForPc(static_cast<int>(pc));
    EXPECT_EQ(seeker->NodeColor(node).value(),
              stepper->NodeColor(node).value())
        << pc;
  }
}

// --- recorded example artifacts (examples/c4_q1.*) ---

TEST(ExamplesTest, C4Q1TrackerByteIdenticalToRescan) {
  // Acceptance gate: on the recorded demo artifacts the incremental
  // tracker's decision stream is exactly the rescan's.
  auto events =
      ReadTraceFile(std::string(STETHO_EXAMPLES_DIR) + "/c4_q1.trace");
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_FALSE(events.value().empty());
  auto rescan = PairSequenceColoring(events.value());
  PairSequenceTracker tracker;
  for (const TraceEvent& e : events.value()) tracker.Observe(e);
  ASSERT_EQ(tracker.decisions().size(), rescan.size());
  for (size_t i = 0; i < rescan.size(); ++i) {
    EXPECT_EQ(tracker.decisions()[i].pc, rescan[i].pc) << i;
    EXPECT_EQ(tracker.decisions()[i].color, rescan[i].color) << i;
  }
}

TEST(ExamplesTest, C4Q1SeekMatchesSteppedReplay) {
  auto events =
      ReadTraceFile(std::string(STETHO_EXAMPLES_DIR) + "/c4_q1.trace");
  ASSERT_TRUE(events.ok());
  std::ifstream dot_in(std::string(STETHO_EXAMPLES_DIR) + "/c4_q1.dot");
  std::string dot_text((std::istreambuf_iterator<char>(dot_in)),
                       std::istreambuf_iterator<char>());
  auto graph = dot::ParseDot(dot_text);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();

  VirtualClock clock;
  ReplayOptions options;
  options.clock = &clock;
  options.render_interval_us = 0;
  auto seeker = OfflineReplayer::Create(graph.value(), events.value(), options);
  auto stepper =
      OfflineReplayer::Create(graph.value(), events.value(), options);
  ASSERT_TRUE(seeker.ok());
  ASSERT_TRUE(stepper.ok());
  const size_t target = events.value().size() / 2;
  ASSERT_TRUE(seeker.value()->SeekTo(target).ok());
  for (size_t i = 0; i < target; ++i) {
    ASSERT_TRUE(stepper.value()->Step().ok());
  }
  for (size_t i = 0; i < graph.value().num_nodes(); ++i) {
    std::string node = NodeForPc(static_cast<int>(i));
    EXPECT_EQ(seeker.value()->NodeColor(node).value(),
              stepper.value()->NodeColor(node).value())
        << node;
  }
}

// --- online monitor ---

TEST(OnlineMonitorTest, EndToEndColorsAndReports) {
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  auto cat = tpch::GenerateTpch(config);
  ASSERT_TRUE(cat.ok());
  server::MserverOptions soptions;
  soptions.dop = 4;
  soptions.mitosis_pieces = 4;
  server::Mserver server(std::move(cat.value()), soptions);

  OnlineOptions options;
  options.render_interval_us = 0;  // no pacing: keep the test fast
  options.analysis_period_us = 2000;
  OnlineMonitor monitor(&server, options);
  auto report = monitor.MonitorQuery(
      "select sum(l_extendedprice * l_discount) as revenue from lineitem "
      "where l_shipdate >= 19940101 and l_shipdate < 19950101");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const OnlineReport& r = report.value();
  EXPECT_GT(r.graph_nodes, 0u);
  EXPECT_EQ(r.graph_nodes, r.outcome.plan.size());
  EXPECT_GT(r.events_received, 0);
  EXPECT_GT(r.analysis_rounds, 0u);
  EXPECT_FALSE(r.operators.empty());
  EXPECT_DOUBLE_EQ(r.final_progress, 1.0);
  // Progress series is monotone and ends complete.
  ASSERT_FALSE(r.progress_series.empty());
  for (size_t i = 1; i < r.progress_series.size(); ++i) {
    EXPECT_GE(r.progress_series[i], r.progress_series[i - 1]);
  }
  EXPECT_DOUBLE_EQ(r.progress_series.back(), 1.0);
  ASSERT_EQ(r.outcome.result.columns.size(), 1u);
  ASSERT_NE(monitor.scene(), nullptr);
}

/// Tentpole acceptance: 5% injected datagram loss on the demo query. The
/// monitor must not hang (the %EOF is spared, and even a lost one only
/// costs three idle analysis rounds), the receiver's gap accounting must
/// match the injector's exact counts, and progress still ends pinned at
/// 1.0 because the query itself completed.
TEST(OnlineMonitorTest, LossyWireIsAccountedAndStillCompletes) {
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  auto cat = tpch::GenerateTpch(config);
  ASSERT_TRUE(cat.ok());
  server::MserverOptions soptions;
  soptions.dop = 4;
  soptions.mitosis_pieces = 4;
  server::Mserver server(std::move(cat.value()), soptions);

  OnlineOptions options;
  options.render_interval_us = 0;
  options.analysis_period_us = 2000;
  options.fault.drop_p = 0.05;
  options.fault.seed = 11;
  OnlineMonitor monitor(&server, options);
  auto report = monitor.MonitorQuery(
      "select sum(l_extendedprice * l_discount) as revenue from lineitem "
      "where l_shipdate >= 19940101 and l_shipdate < 19950101");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const OnlineReport& r = report.value();
  ASSERT_GT(r.injected_dropped, 0);
  EXPECT_EQ(r.injected_duplicated, 0);
  EXPECT_EQ(r.injected_reordered, 0);

  // The health summary is finalized (no gap still "pending") and its loss
  // ratio sits within one percentage point of the injected truth. Losses
  // at the sequence-span edges are invisible to a gap accountant, hence a
  // band rather than equality on the ratio; the count itself can only
  // undershoot.
  EXPECT_EQ(r.pipe_health.pending, 0);
  EXPECT_GT(r.pipe_health.lost, 0);
  EXPECT_LE(r.pipe_health.lost, r.injected_dropped);
  const double injected_ratio =
      static_cast<double>(r.injected_dropped) /
      static_cast<double>(r.injected_dropped + r.events_received);
  EXPECT_NEAR(r.pipe_health.loss_ratio(), injected_ratio, 0.01);

  // Progress: monotone throughout, pinned at exactly 1.0 once the query
  // finished — lost done-events must not leave the bar stuck short.
  ASSERT_FALSE(r.progress_series.empty());
  for (size_t i = 1; i < r.progress_series.size(); ++i) {
    EXPECT_GE(r.progress_series[i], r.progress_series[i - 1]);
  }
  EXPECT_DOUBLE_EQ(r.progress_series.back(), 1.0);
  EXPECT_DOUBLE_EQ(r.final_progress, 1.0);
  EXPECT_EQ(r.outcome.result.columns.size(), 1u);
}

/// Seeds a near-zero baseline for the query's plan shape, so the live
/// comparator must flag the real run's slower instructions (any pc over
/// the 10us jitter floor regresses against a 0us median).
TEST(OnlineMonitorTest, FlagsStragglersAgainstStoredBaseline) {
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  auto cat = tpch::GenerateTpch(config);
  ASSERT_TRUE(cat.ok());
  server::MserverOptions soptions;
  soptions.dop = 4;
  soptions.mitosis_pieces = 4;
  server::Mserver server(std::move(cat.value()), soptions);

  const std::string sql =
      "select sum(l_extendedprice * l_discount) as revenue from lineitem "
      "where l_shipdate >= 19940101 and l_shipdate < 19950101";
  auto plan = server.Explain(sql);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  obs::ProfileStore store;
  obs::QueryObservation seed;
  seed.shape_hash = analysis::PlanShapeHash(plan.value());
  seed.plan_size = plan.value().size();
  seed.total_usec = 1;
  for (size_t pc = 0; pc < seed.plan_size; ++pc) {
    obs::PcSample sample;
    sample.pc = static_cast<int>(pc);
    sample.usec = 0;
    seed.pcs.push_back(sample);
  }
  ASSERT_TRUE(store.Fold(seed).ok());

  OnlineOptions options;
  options.render_interval_us = 0;
  options.analysis_period_us = 2000;
  options.profile = &store;
  std::string last_status;
  options.status_line = [&last_status](const std::string& line) {
    last_status = line;
  };
  OnlineMonitor monitor(&server, options);
  auto report = monitor.MonitorQuery(sql);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const OnlineReport& r = report.value();
  EXPECT_DOUBLE_EQ(r.final_progress, 1.0);

  ASSERT_FALSE(r.stragglers.empty());
  EXPECT_GT(r.straggler_updates, 0u);
  std::set<int> flagged_pcs;
  for (const StragglerFlag& flag : r.stragglers) {
    EXPECT_GE(flag.pc, 0);
    EXPECT_LT(flag.pc, static_cast<int>(r.outcome.plan.size()));
    // Every flag cleared both gates against the near-zero baseline (a 0us
    // sample sits in the v<=1 log bucket, so its median reads as 1).
    EXPECT_GE(flag.usec, options.straggler_min_usec);
    EXPECT_LE(flag.baseline_median, 1.0);
    // One flag per pc, never re-reported.
    EXPECT_TRUE(flagged_pcs.insert(flag.pc).second) << flag.pc;
  }
  EXPECT_NE(last_status.find("stragglers:"), std::string::npos)
      << last_status;
}

/// The zero-false-positive side: against a generous baseline (everything
/// profiled at 10s) nothing in a millisecond-scale run may flag.
TEST(OnlineMonitorTest, NoStragglersAgainstGenerousBaseline) {
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  auto cat = tpch::GenerateTpch(config);
  ASSERT_TRUE(cat.ok());
  server::MserverOptions soptions;
  soptions.dop = 4;
  server::Mserver server(std::move(cat.value()), soptions);

  const std::string sql =
      "select l_tax from lineitem where l_partkey = 1";
  auto plan = server.Explain(sql);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  obs::ProfileStore store;
  obs::QueryObservation seed;
  seed.shape_hash = analysis::PlanShapeHash(plan.value());
  seed.plan_size = plan.value().size();
  seed.total_usec = 10'000'000;
  for (size_t pc = 0; pc < seed.plan_size; ++pc) {
    obs::PcSample sample;
    sample.pc = static_cast<int>(pc);
    sample.usec = 10'000'000;
    seed.pcs.push_back(sample);
  }
  ASSERT_TRUE(store.Fold(seed).ok());

  OnlineOptions options;
  options.render_interval_us = 0;
  options.analysis_period_us = 2000;
  options.profile = &store;
  OnlineMonitor monitor(&server, options);
  auto report = monitor.MonitorQuery(sql);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().stragglers.empty());
  EXPECT_EQ(report.value().straggler_updates, 0u);
}

TEST(OnlineMonitorTest, DetectsSequentialAnomaly) {
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  auto cat = tpch::GenerateTpch(config);
  ASSERT_TRUE(cat.ok());
  server::MserverOptions soptions;
  soptions.dop = 4;
  soptions.mitosis_pieces = 4;
  soptions.force_sequential = true;  // the misbehaving server
  server::Mserver server(std::move(cat.value()), soptions);

  OnlineOptions options;
  options.render_interval_us = 0;
  OnlineMonitor monitor(&server, options);
  auto report =
      monitor.MonitorQuery("select l_tax from lineitem where l_partkey = 1");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().parallelism.sequential_anomaly);
  EXPECT_NE(report.value().parallelism.summary.find("ANOMALY"),
            std::string::npos);
}

TEST(OnlineMonitorTest, RunsUnderVirtualClock) {
  // The monitor's waits go through the injected clock, so a VirtualClock
  // session completes without depending on real 30s/20ms constants.
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  auto cat = tpch::GenerateTpch(config);
  ASSERT_TRUE(cat.ok());
  server::Mserver server(std::move(cat.value()), server::MserverOptions{});
  VirtualClock clock;
  OnlineOptions options;
  options.clock = &clock;
  options.render_interval_us = 0;
  options.dot_timeout_us = 1LL << 60;  // virtual sleeps burn virtual time fast
  OnlineMonitor monitor(&server, options);
  auto report =
      monitor.MonitorQuery("select l_tax from lineitem where l_partkey = 1");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_DOUBLE_EQ(report.value().final_progress, 1.0);
  EXPECT_GT(report.value().events_received, 0);
}

TEST(OnlineMonitorTest, DotTimeoutDrivenByInjectedClock) {
  // An already-expired deadline times out on the first poll — previously
  // this branch needed 30 real seconds to reach.
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  auto cat = tpch::GenerateTpch(config);
  ASSERT_TRUE(cat.ok());
  server::MserverOptions soptions;
  soptions.dop = 4;
  soptions.mitosis_pieces = 4;
  server::Mserver server(std::move(cat.value()), soptions);
  VirtualClock clock;
  clock.Advance(1000);
  OnlineOptions options;
  options.clock = &clock;
  options.render_interval_us = 0;
  options.dot_timeout_us = -1000000;
  OnlineMonitor monitor(&server, options);
  auto report = monitor.MonitorQuery(
      "select sum(l_extendedprice * l_discount) as revenue from lineitem "
      "where l_shipdate >= 19940101 and l_shipdate < 19950101");
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().ToString().find("no dot file"), std::string::npos);
}

TEST(OnlineMonitorTest, QueryErrorPropagates) {
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  auto cat = tpch::GenerateTpch(config);
  ASSERT_TRUE(cat.ok());
  server::Mserver server(std::move(cat.value()), server::MserverOptions{});
  OnlineOptions options;
  OnlineMonitor monitor(&server, options);
  EXPECT_FALSE(monitor.MonitorQuery("select bogus from nothing").ok());
}

}  // namespace
}  // namespace stetho::scope
