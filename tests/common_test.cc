#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace stetho {
namespace {

// --- Status / Result ---

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::ParseError("bad token");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.message(), "bad token");
  EXPECT_EQ(st.ToString(), "parse_error: bad token");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kResourceExhausted); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> HalfOf(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Status UseHalf(int v, int* out) {
  STETHO_ASSIGN_OR_RETURN(*out, HalfOf(v));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status st = UseHalf(7, &out);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

// --- string utilities ---

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, SplitSingle) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, SplitAndTrimDropsEmpties) {
  auto parts = SplitAndTrim("  a , , b ,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
}

TEST(StringUtilTest, PrefixSuffix) {
  EXPECT_TRUE(StartsWith("algebra.select", "algebra"));
  EXPECT_FALSE(StartsWith("alg", "algebra"));
  EXPECT_TRUE(EndsWith("plan.dot", ".dot"));
  EXPECT_FALSE(EndsWith("dot", "plan.dot"));
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("LineItem"), "lineitem");
  EXPECT_EQ(ToUpper("tpch"), "TPCH");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("pc=%d usec=%lld", 3, 150LL), "pc=3 usec=150");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringUtilTest, ParseInt64) {
  auto r = ParseInt64("  -42 ");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), -42);
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(StringUtilTest, ParseDouble) {
  auto r = ParseDouble("3.25e2");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 325.0);
  EXPECT_FALSE(ParseDouble("3.2.1").ok());
}

TEST(StringUtilTest, EscapeRoundTrip) {
  std::string raw = "say \"hi\" \\ bye";
  EXPECT_EQ(UnescapeQuoted(EscapeQuoted(raw)), raw);
}

TEST(StringUtilTest, EscapeXml) {
  EXPECT_EQ(EscapeXml("a<b & c>\"d\""), "a&lt;b &amp; c&gt;&quot;d&quot;");
}

// --- clocks ---

TEST(ClockTest, SteadyClockAdvances) {
  SteadyClock clock;
  int64_t a = clock.NowMicros();
  clock.SleepMicros(1000);
  int64_t b = clock.NowMicros();
  EXPECT_GE(b - a, 1000);
}

TEST(ClockTest, VirtualClockManualAdvance) {
  VirtualClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.NowMicros(), 150);
  clock.Advance(-10);  // ignored
  EXPECT_EQ(clock.NowMicros(), 150);
  clock.SleepMicros(25);
  EXPECT_EQ(clock.NowMicros(), 175);
}

TEST(ClockTest, VirtualClockAdvanceToNeverGoesBack) {
  VirtualClock clock(0);
  clock.AdvanceTo(500);
  EXPECT_EQ(clock.NowMicros(), 500);
  clock.AdvanceTo(300);
  EXPECT_EQ(clock.NowMicros(), 500);
}

TEST(ClockTest, VirtualClockConcurrentAdvance) {
  VirtualClock clock(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&clock] {
      for (int i = 0; i < 1000; ++i) clock.Advance(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(clock.NowMicros(), 4000);
}

// --- rng ---

TEST(RngTest, Deterministic) {
  SplitMix64 a(7);
  SplitMix64 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, RangeIsInclusive) {
  SplitMix64 rng(42);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextRange(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// --- logging ---

TEST(LoggingTest, LevelGate) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  STETHO_LOG(Info) << "suppressed";
  SetLogLevel(prev);
}

}  // namespace
}  // namespace stetho
