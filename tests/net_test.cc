#include <gtest/gtest.h>

#include <thread>

#include "common/clock.h"
#include "net/channel.h"
#include "net/trace_stream.h"
#include "net/udp.h"
#include "profiler/profiler.h"

namespace stetho::net {
namespace {

// --- in-process channel ---

TEST(ChannelTest, SendReceive) {
  auto [sender, receiver] = Channel::CreatePair();
  ASSERT_TRUE(sender->Send("hello").ok());
  std::string payload;
  auto got = receiver->Receive(&payload, 100);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got.value());
  EXPECT_EQ(payload, "hello");
}

TEST(ChannelTest, TimeoutReturnsFalse) {
  auto [sender, receiver] = Channel::CreatePair();
  std::string payload;
  auto got = receiver->Receive(&payload, 10);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.value());
}

TEST(ChannelTest, PreservesMessageBoundariesAndOrder) {
  auto [sender, receiver] = Channel::CreatePair();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sender->Send("msg" + std::to_string(i)).ok());
  }
  std::string payload;
  for (int i = 0; i < 10; ++i) {
    auto got = receiver->Receive(&payload, 100);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got.value());
    EXPECT_EQ(payload, "msg" + std::to_string(i));
  }
}

TEST(ChannelTest, CloseUnblocksReceiver) {
  auto [sender, receiver] = Channel::CreatePair();
  std::thread closer([r = receiver.get()] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    r->Close();
  });
  std::string payload;
  auto got = receiver->Receive(&payload, 5000);
  closer.join();
  EXPECT_FALSE(got.ok());  // Aborted
  EXPECT_FALSE(sender->Send("x").ok());
}

TEST(ChannelTest, DrainsQueueAfterClose) {
  auto [sender, receiver] = Channel::CreatePair();
  ASSERT_TRUE(sender->Send("queued").ok());
  receiver->Close();
  std::string payload;
  auto got = receiver->Receive(&payload, 10);
  // Queued messages are still deliverable after close.
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value());
  EXPECT_EQ(payload, "queued");
}

TEST(ChannelTest, OverflowDropsLikeUdp) {
  auto [sender, receiver] = Channel::CreatePair(/*max_queue=*/2);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(sender->Send(std::to_string(i)).ok());
  }
  std::string payload;
  int delivered = 0;
  while (true) {
    auto got = receiver->Receive(&payload, 5);
    if (!got.ok() || !got.value()) break;
    ++delivered;
  }
  EXPECT_EQ(delivered, 2);
}

// --- loopback UDP ---

TEST(UdpTest, LoopbackSendReceive) {
  auto receiver = UdpReceiver::Bind(0);
  ASSERT_TRUE(receiver.ok()) << receiver.status().ToString();
  ASSERT_GT(receiver.value()->port(), 0);
  auto sender = UdpSender::Connect(receiver.value()->port());
  ASSERT_TRUE(sender.ok()) << sender.status().ToString();

  ASSERT_TRUE(sender.value()->Send("datagram-1").ok());
  std::string payload;
  auto got = receiver.value()->Receive(&payload, 2000);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(got.value());
  EXPECT_EQ(payload, "datagram-1");
}

TEST(UdpTest, TimeoutOnSilence) {
  auto receiver = UdpReceiver::Bind(0);
  ASSERT_TRUE(receiver.ok());
  std::string payload;
  auto got = receiver.value()->Receive(&payload, 20);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.value());
}

TEST(UdpTest, ManyDatagramsArrive) {
  auto receiver = UdpReceiver::Bind(0);
  ASSERT_TRUE(receiver.ok());
  auto sender = UdpSender::Connect(receiver.value()->port());
  ASSERT_TRUE(sender.ok());
  const int kCount = 200;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(sender.value()->Send("m" + std::to_string(i)).ok());
  }
  int received = 0;
  std::string payload;
  while (received < kCount) {
    auto got = receiver.value()->Receive(&payload, 200);
    ASSERT_TRUE(got.ok());
    if (!got.value()) break;  // loopback UDP may drop under pressure
    ++received;
  }
  // Loopback should deliver virtually everything.
  EXPECT_GT(received, kCount * 9 / 10);
}

// --- trace stream framing ---

TEST(TraceStreamTest, DotFramingRoundTrip) {
  auto [sender, receiver] = Channel::CreatePair();
  std::string dot = "digraph g {\n  n0 [label=\"x\"];\n  n0 -> n1;\n}\n";
  ASSERT_TRUE(SendDotFile(sender.get(), "s0", dot).ok());
  ASSERT_TRUE(SendEof(sender.get(), "s0").ok());

  std::vector<std::string> lines;
  std::string payload;
  while (true) {
    auto got = receiver->Receive(&payload, 10);
    if (!got.ok() || !got.value()) break;
    lines.push_back(payload);
  }
  ASSERT_EQ(lines.size(), 7u);  // BEGIN + 4 dot lines + END + EOF
  EXPECT_EQ(lines.front(), "%DOT-BEGIN s0");
  EXPECT_EQ(lines[1], "%DOT digraph g {");
  EXPECT_EQ(lines[5], "%DOT-END s0");
  EXPECT_EQ(lines.back(), "%EOF s0");
}

TEST(TraceStreamTest, DatagramSinkForwardsEvents) {
  auto [sender, receiver] = Channel::CreatePair();
  DatagramTraceSink sink(std::shared_ptr<DatagramSender>(std::move(sender)));
  VirtualClock clock;
  profiler::Profiler prof(&clock);
  // Hook the sink into a profiler via shared_ptr aliasing.
  prof.AddSink(std::shared_ptr<profiler::EventSink>(&sink, [](auto*) {}));
  prof.EmitStart(3, 1, 0, "X_1 := sql.mvc();");

  std::string payload;
  auto got = receiver->Receive(&payload, 100);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got.value());
  auto event = profiler::ParseTraceLine(payload);
  ASSERT_TRUE(event.ok()) << event.status().ToString();
  EXPECT_EQ(event.value().pc, 3);
}

}  // namespace
}  // namespace stetho::net
