#include <gtest/gtest.h>

#include <thread>

#include "common/clock.h"
#include "net/channel.h"
#include "net/fault_injection.h"
#include "net/pipe_health.h"
#include "net/trace_stream.h"
#include "net/udp.h"
#include "profiler/profiler.h"

namespace stetho::net {
namespace {

// --- in-process channel ---

TEST(ChannelTest, SendReceive) {
  auto [sender, receiver] = Channel::CreatePair();
  ASSERT_TRUE(sender->Send("hello").ok());
  std::string payload;
  auto got = receiver->Receive(&payload, 100);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got.value());
  EXPECT_EQ(payload, "hello");
}

TEST(ChannelTest, TimeoutReturnsFalse) {
  auto [sender, receiver] = Channel::CreatePair();
  std::string payload;
  auto got = receiver->Receive(&payload, 10);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.value());
}

TEST(ChannelTest, PreservesMessageBoundariesAndOrder) {
  auto [sender, receiver] = Channel::CreatePair();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sender->Send("msg" + std::to_string(i)).ok());
  }
  std::string payload;
  for (int i = 0; i < 10; ++i) {
    auto got = receiver->Receive(&payload, 100);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got.value());
    EXPECT_EQ(payload, "msg" + std::to_string(i));
  }
}

TEST(ChannelTest, CloseUnblocksReceiver) {
  auto [sender, receiver] = Channel::CreatePair();
  std::thread closer([r = receiver.get()] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    r->Close();
  });
  std::string payload;
  auto got = receiver->Receive(&payload, 5000);
  closer.join();
  EXPECT_FALSE(got.ok());  // Aborted
  EXPECT_FALSE(sender->Send("x").ok());
}

TEST(ChannelTest, DrainsQueueAfterClose) {
  auto [sender, receiver] = Channel::CreatePair();
  ASSERT_TRUE(sender->Send("queued").ok());
  receiver->Close();
  std::string payload;
  auto got = receiver->Receive(&payload, 10);
  // Queued messages are still deliverable after close.
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value());
  EXPECT_EQ(payload, "queued");
}

TEST(ChannelTest, OverflowDropsLikeUdp) {
  auto [sender, receiver] = Channel::CreatePair(/*max_queue=*/2);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(sender->Send(std::to_string(i)).ok());
  }
  std::string payload;
  int delivered = 0;
  while (true) {
    auto got = receiver->Receive(&payload, 5);
    if (!got.ok() || !got.value()) break;
    ++delivered;
  }
  EXPECT_EQ(delivered, 2);
}

// --- loopback UDP ---

TEST(UdpTest, LoopbackSendReceive) {
  auto receiver = UdpReceiver::Bind(0);
  ASSERT_TRUE(receiver.ok()) << receiver.status().ToString();
  ASSERT_GT(receiver.value()->port(), 0);
  auto sender = UdpSender::Connect(receiver.value()->port());
  ASSERT_TRUE(sender.ok()) << sender.status().ToString();

  ASSERT_TRUE(sender.value()->Send("datagram-1").ok());
  std::string payload;
  auto got = receiver.value()->Receive(&payload, 2000);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(got.value());
  EXPECT_EQ(payload, "datagram-1");
}

TEST(UdpTest, TimeoutOnSilence) {
  auto receiver = UdpReceiver::Bind(0);
  ASSERT_TRUE(receiver.ok());
  std::string payload;
  auto got = receiver.value()->Receive(&payload, 20);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.value());
}

TEST(UdpTest, ManyDatagramsArrive) {
  auto receiver = UdpReceiver::Bind(0);
  ASSERT_TRUE(receiver.ok());
  auto sender = UdpSender::Connect(receiver.value()->port());
  ASSERT_TRUE(sender.ok());
  const int kCount = 200;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(sender.value()->Send("m" + std::to_string(i)).ok());
  }
  int received = 0;
  std::string payload;
  while (received < kCount) {
    auto got = receiver.value()->Receive(&payload, 200);
    ASSERT_TRUE(got.ok());
    if (!got.value()) break;  // loopback UDP may drop under pressure
    ++received;
  }
  // Loopback should deliver virtually everything.
  EXPECT_GT(received, kCount * 9 / 10);
}

// --- trace stream framing ---

TEST(TraceStreamTest, DotFramingRoundTrip) {
  auto [sender, receiver] = Channel::CreatePair();
  std::string dot = "digraph g {\n  n0 [label=\"x\"];\n  n0 -> n1;\n}\n";
  ASSERT_TRUE(SendDotFile(sender.get(), "s0", dot).ok());
  ASSERT_TRUE(SendEof(sender.get(), "s0").ok());

  std::vector<std::string> lines;
  std::string payload;
  while (true) {
    auto got = receiver->Receive(&payload, 10);
    if (!got.ok() || !got.value()) break;
    lines.push_back(payload);
  }
  ASSERT_EQ(lines.size(), 7u);  // BEGIN + 4 dot lines + END + EOF
  EXPECT_EQ(lines.front(), "%DOT-BEGIN s0");
  EXPECT_EQ(lines[1], "%DOT digraph g {");
  EXPECT_EQ(lines[5], "%DOT-END s0");
  EXPECT_EQ(lines.back(), "%EOF s0");
}

TEST(TraceStreamTest, DatagramSinkForwardsEvents) {
  auto [sender, receiver] = Channel::CreatePair();
  DatagramTraceSink sink(std::shared_ptr<DatagramSender>(std::move(sender)));
  VirtualClock clock;
  profiler::Profiler prof(&clock);
  // Hook the sink into a profiler via shared_ptr aliasing.
  prof.AddSink(std::shared_ptr<profiler::EventSink>(&sink, [](auto*) {}));
  prof.EmitStart(3, 1, 0, "X_1 := sql.mvc();");

  std::string payload;
  auto got = receiver->Receive(&payload, 100);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got.value());
  auto event = profiler::ParseTraceLine(payload);
  ASSERT_TRUE(event.ok()) << event.status().ToString();
  EXPECT_EQ(event.value().pc, 3);
}


// --- stream health (sequence-gap accounting) ---

profiler::TraceEvent SeqEvent(int64_t seq) {
  profiler::TraceEvent e;
  e.event = seq;
  e.time_us = 1000 + seq;
  e.pc = static_cast<int>(seq / 2);
  e.state = profiler::EventState::kDone;
  return e;
}

TEST(StreamHealthTest, CleanStreamHasNoFindings) {
  StreamHealth health;
  for (int64_t i = 0; i < 100; ++i) health.Observe(SeqEvent(i));
  health.Finalize();
  PipeHealthSummary s = health.Snapshot();
  EXPECT_EQ(s.observed, 100);
  EXPECT_EQ(s.lost, 0);
  EXPECT_EQ(s.reordered, 0);
  EXPECT_EQ(s.duplicated, 0);
  EXPECT_EQ(s.expected(), 100);
  EXPECT_DOUBLE_EQ(s.loss_ratio(), 0.0);
}

TEST(StreamHealthTest, OpenGapSettlesIntoLostOnFinalize) {
  StreamHealth health;
  for (int64_t seq : {0, 1, 3, 4}) health.Observe(SeqEvent(seq));
  EXPECT_EQ(health.Snapshot().pending, 1);  // seq 2 may still be in flight
  EXPECT_EQ(health.Snapshot().lost, 0);
  health.Finalize();
  PipeHealthSummary s = health.Snapshot();
  EXPECT_EQ(s.lost, 1);
  EXPECT_EQ(s.pending, 0);
  EXPECT_DOUBLE_EQ(s.loss_ratio(), 0.2);
}

TEST(StreamHealthTest, LateArrivalFillingGapIsReorder) {
  StreamHealth health;
  for (int64_t seq : {0, 2, 1, 3}) health.Observe(SeqEvent(seq));
  health.Finalize();
  PipeHealthSummary s = health.Snapshot();
  EXPECT_EQ(s.observed, 4);
  EXPECT_EQ(s.reordered, 1);
  EXPECT_EQ(s.lost, 0);
  EXPECT_EQ(s.duplicated, 0);
}

TEST(StreamHealthTest, RepeatDeliveryIsDuplicate) {
  StreamHealth health;
  for (int64_t seq : {0, 1, 1, 2}) health.Observe(SeqEvent(seq));
  PipeHealthSummary s = health.Snapshot();
  EXPECT_EQ(s.observed, 3);
  EXPECT_EQ(s.duplicated, 1);
  EXPECT_EQ(s.reordered, 0);
}

TEST(StreamHealthTest, StragglerBelowFirstArrivalCountsReordered) {
  StreamHealth health;
  health.Observe(SeqEvent(5));
  health.Observe(SeqEvent(3));  // arrived after 5: reordered, opens gap 4
  PipeHealthSummary s = health.Snapshot();
  EXPECT_EQ(s.min_seq, 3);
  EXPECT_EQ(s.max_seq, 5);
  EXPECT_EQ(s.reordered, 1);
  EXPECT_EQ(s.pending, 1);
}

TEST(StreamHealthTest, GapAgesIntoLossPastReorderWindow) {
  StreamHealth::Options options;
  options.reorder_window = 4;
  StreamHealth health(options);
  health.Observe(SeqEvent(0));
  health.Observe(SeqEvent(10));  // opens gaps 1..9
  PipeHealthSummary s = health.Snapshot();
  // Gaps trailing the high-water mark (10) by more than 4 are lost:
  // 1..5; 6..9 may still be late stragglers.
  EXPECT_EQ(s.lost, 5);
  EXPECT_EQ(s.pending, 4);
  // A straggler for an aged-out gap counts duplicated-side (monotone loss),
  // one inside the window still redeems as a reorder.
  health.Observe(SeqEvent(7));
  s = health.Snapshot();
  EXPECT_EQ(s.reordered, 1);
  EXPECT_EQ(s.lost, 5);
}

TEST(StreamHealthTest, ClockOffsetAndLatencyEstimates) {
  StreamHealth health;
  // Emit times 1000+seq; receiver clock runs 500us ahead plus queueing.
  health.Observe(SeqEvent(0), /*ingest_us=*/1000 + 500 + 40);
  health.Observe(SeqEvent(1), /*ingest_us=*/1001 + 500);  // zero-delay arrival
  health.Observe(SeqEvent(2), /*ingest_us=*/1002 + 500 + 120);
  PipeHealthSummary s = health.Snapshot();
  // The minimum delta (event 1, delta 500) is the offset estimate...
  EXPECT_EQ(s.clock_offset_us, 500);
  // ...so event 2's offset-corrected latency is its 120us queueing delay.
  EXPECT_EQ(s.last_latency_us, 120);
  EXPECT_GE(s.max_latency_us, 120);
}

TEST(StreamHealthTest, SummaryToStringMentionsLoss) {
  StreamHealth health;
  for (int64_t seq : {0, 3}) health.Observe(SeqEvent(seq));
  health.Finalize();
  std::string text = health.Snapshot().ToString();
  EXPECT_NE(text.find("2 lost"), std::string::npos) << text;
}

// --- fault injection ---

TEST(FaultInjectionTest, CleanPassthroughWithZeroProbabilities) {
  auto [sender, receiver] = Channel::CreatePair();
  FaultOptions fault;  // all-zero
  FaultInjectingSender faulty(std::shared_ptr<DatagramSender>(std::move(sender)),
                              fault);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(faulty.Send("msg" + std::to_string(i)).ok());
  }
  std::string payload;
  for (int i = 0; i < 50; ++i) {
    auto got = receiver->Receive(&payload, 100);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got.value());
    EXPECT_EQ(payload, "msg" + std::to_string(i));
  }
  EXPECT_EQ(faulty.injected_dropped(), 0);
  EXPECT_EQ(faulty.injected_duplicated(), 0);
  EXPECT_EQ(faulty.injected_reordered(), 0);
}

TEST(FaultInjectionTest, ControlLinesAreSpared) {
  auto [sender, receiver] = Channel::CreatePair();
  FaultOptions fault;
  fault.drop_p = 1.0;  // drop everything faultable
  FaultInjectingSender faulty(std::shared_ptr<DatagramSender>(std::move(sender)),
                              fault);
  ASSERT_TRUE(faulty.Send("%DOT-BEGIN q").ok());
  ASSERT_TRUE(faulty.Send("[ 0, 1, 0, 0, \"start\", 0, 0, \"x\" ]").ok());
  ASSERT_TRUE(faulty.Send("%EOF q").ok());
  std::string payload;
  ASSERT_TRUE(receiver->Receive(&payload, 100).value());
  EXPECT_EQ(payload, "%DOT-BEGIN q");
  ASSERT_TRUE(receiver->Receive(&payload, 100).value());
  EXPECT_EQ(payload, "%EOF q");
  EXPECT_FALSE(receiver->Receive(&payload, 10).value());
  EXPECT_EQ(faulty.injected_dropped(), 1);
}

TEST(FaultInjectionTest, SameSeedSameFaultPlan) {
  for (int run = 0; run < 2; ++run) {
    auto [sender, receiver] = Channel::CreatePair();
    FaultOptions fault;
    fault.drop_p = 0.1;
    fault.dup_p = 0.05;
    fault.reorder_p = 0.05;
    fault.seed = 7;
    FaultInjectingSender faulty(
        std::shared_ptr<DatagramSender>(std::move(sender)), fault);
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(faulty.Send(std::to_string(i)).ok());
    }
    ASSERT_TRUE(faulty.Flush().ok());
    static int64_t first_dropped = -1;
    static int64_t first_dup = -1;
    static int64_t first_reord = -1;
    if (run == 0) {
      first_dropped = faulty.injected_dropped();
      first_dup = faulty.injected_duplicated();
      first_reord = faulty.injected_reordered();
      EXPECT_GT(first_dropped, 0);
    } else {
      EXPECT_EQ(faulty.injected_dropped(), first_dropped);
      EXPECT_EQ(faulty.injected_duplicated(), first_dup);
      EXPECT_EQ(faulty.injected_reordered(), first_reord);
    }
  }
}

/// The satellite contract: the receiving gap accountant reports EXACTLY the
/// injected loss/reorder/duplicate counts. The seed is chosen so the first
/// and last sequence numbers are delivered (asserted below) — losses at the
/// span edges are invisible to any sequence-based accountant.
TEST(FaultInjectionTest, GapAccountantMatchesInjectedCountsExactly) {
  auto [sender, receiver] = Channel::CreatePair();
  FaultOptions fault;
  fault.drop_p = 0.05;
  fault.dup_p = 0.03;
  fault.reorder_p = 0.04;
  fault.seed = 42;
  auto faulty = std::make_shared<FaultInjectingSender>(
      std::shared_ptr<DatagramSender>(std::move(sender)), fault);

  const int64_t kEvents = 500;
  for (int64_t i = 0; i < kEvents; ++i) {
    ASSERT_TRUE(faulty->Send(profiler::FormatTraceLine(SeqEvent(i))).ok());
  }
  ASSERT_TRUE(faulty->Send("%EOF q").ok());  // flushes any held datagram

  StreamHealth health;
  std::string payload;
  bool saw_first = false;
  bool saw_last = false;
  while (true) {
    auto got = receiver->Receive(&payload, 10);
    ASSERT_TRUE(got.ok());
    if (!got.value()) break;
    if (!payload.empty() && payload[0] == '%') continue;
    auto event = profiler::ParseTraceLine(payload);
    ASSERT_TRUE(event.ok()) << payload;
    saw_first = saw_first || event.value().event == 0;
    saw_last = saw_last || event.value().event == kEvents - 1;
    health.Observe(event.value());
  }
  health.Finalize();

  ASSERT_TRUE(saw_first) << "seed delivers seq 0; pick another seed";
  ASSERT_TRUE(saw_last) << "seed delivers the last seq; pick another seed";
  PipeHealthSummary s = health.Snapshot();
  EXPECT_GT(faulty->injected_dropped(), 0);
  EXPECT_GT(faulty->injected_duplicated(), 0);
  EXPECT_GT(faulty->injected_reordered(), 0);
  EXPECT_EQ(s.lost, faulty->injected_dropped());
  EXPECT_EQ(s.duplicated, faulty->injected_duplicated());
  EXPECT_EQ(s.reordered, faulty->injected_reordered());
  EXPECT_EQ(s.observed, kEvents - faulty->injected_dropped());
  EXPECT_NEAR(s.loss_ratio(),
              static_cast<double>(faulty->injected_dropped()) / kEvents,
              0.001);
}

}  // namespace
}  // namespace stetho::net
