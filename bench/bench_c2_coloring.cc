// Experiment C2 (paper §4.2.1): the run-time coloring algorithms.
//
// Reproduces the paper's worked 6-statement example (exactly one RED node,
// pc=3) and measures both algorithms — pair-sequence analysis and the
// user-threshold variant — plus the gradient extension, over synthetic
// buffers from 1e3 to 1e6 events. The pair-sequence algorithm must scale
// linearly in the buffer size (it is rerun on every sampling tick online).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "scope/coloring.h"

namespace {

using namespace stetho;

void BM_PairSequence(benchmark::State& state) {
  auto buffer = bench::SyntheticTrace(static_cast<size_t>(state.range(0)));
  size_t colored = 0;
  for (auto _ : state) {
    auto decisions = scope::PairSequenceColoring(buffer);
    colored = decisions.size();
    benchmark::DoNotOptimize(decisions);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(buffer.size()));
  state.counters["buffer_events"] = static_cast<double>(buffer.size());
  state.counters["decisions"] = static_cast<double>(colored);
}
BENCHMARK(BM_PairSequence)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_Threshold(benchmark::State& state) {
  auto buffer = bench::SyntheticTrace(static_cast<size_t>(state.range(0)));
  size_t colored = 0;
  for (auto _ : state) {
    auto decisions = scope::ThresholdColoring(buffer, /*threshold_us=*/1000);
    colored = decisions.size();
    benchmark::DoNotOptimize(decisions);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(buffer.size()));
  state.counters["decisions"] = static_cast<double>(colored);
}
BENCHMARK(BM_Threshold)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_Gradient(benchmark::State& state) {
  auto buffer = bench::SyntheticTrace(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto decisions = scope::GradientColoring(buffer);
    benchmark::DoNotOptimize(decisions);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(buffer.size()));
}
BENCHMARK(BM_Gradient)->Arg(1000)->Arg(100000);

/// Incremental §4.2.1 analysis: the tracker consumes each event once and
/// hands back only the new verdicts — what the online monitor now runs per
/// sampling tick instead of a full-buffer rescan. items/s here is the
/// per-event cost; compare against BM_PairSequence's whole-buffer rescan.
void BM_PairSequenceTracker(benchmark::State& state) {
  auto buffer = bench::SyntheticTrace(static_cast<size_t>(state.range(0)));
  scope::PairSequenceTracker tracker;
  size_t i = 0;
  size_t decisions = 0;
  for (auto _ : state) {
    if (i == buffer.size()) {
      tracker.Reset();
      i = 0;
    }
    tracker.Observe(buffer[i++]);
    decisions += tracker.TakeNew().size();
  }
  benchmark::DoNotOptimize(decisions);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PairSequenceTracker)->Arg(100000)->Arg(1000000);

/// Buffer composition sweep: mostly-paired (healthy plan) vs mostly
/// long-running (pathological). Decision counts should track the unpaired
/// fraction; runtime should not degrade.
void BM_PairSequenceComposition(benchmark::State& state) {
  double paired = static_cast<double>(state.range(0)) / 100.0;
  auto buffer = bench::SyntheticTrace(100000, paired);
  size_t colored = 0;
  for (auto _ : state) {
    auto decisions = scope::PairSequenceColoring(buffer);
    colored = decisions.size();
    benchmark::DoNotOptimize(decisions);
  }
  state.counters["paired_pct"] = static_cast<double>(state.range(0));
  state.counters["decisions"] = static_cast<double>(colored);
}
BENCHMARK(BM_PairSequenceComposition)->Arg(95)->Arg(50)->Arg(5);

}  // namespace

int main(int argc, char** argv) {
  using namespace stetho;
  using profiler::EventState;
  std::printf("=== C2: the paper's worked example ===\n");
  std::printf("buffer: {start,1},{done,1},{start,2},{done,2},{start,3},"
              "{start,4}\n");
  std::vector<profiler::TraceEvent> buffer;
  auto ev = [](EventState s, int pc) {
    profiler::TraceEvent e;
    e.state = s;
    e.pc = pc;
    return e;
  };
  buffer = {ev(EventState::kStart, 1), ev(EventState::kDone, 1),
            ev(EventState::kStart, 2), ev(EventState::kDone, 2),
            ev(EventState::kStart, 3), ev(EventState::kStart, 4)};
  auto decisions = scope::PairSequenceColoring(buffer);
  for (const auto& d : decisions) {
    std::printf("  pc=%d -> %s\n", d.pc, d.color.ToHex().c_str());
  }
  std::printf("(expected: exactly one decision, pc=3 RED)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
