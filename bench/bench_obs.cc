// Experiment OBS (self-observability overhead): the platform that inspects
// query execution must withstand its own stethoscope. Measures the C4
// workload (TPC-H q1, mitosis-partitioned, dataflow execution) with
// observability fully off (the shipped default), with metrics enabled, and
// with metrics + span tracing + flight recorder enabled — the acceptance
// bar is <=3% slowdown fully enabled and no measurable change disabled.
// Micro-benchmarks pin down the per-operation costs behind those ratios.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace {

using namespace stetho;

/// Everything off (kill switch at its default): the baseline the other
/// configurations are compared against.
void BM_QueryObsOff(benchmark::State& state) {
  obs::SetEnabled(false);
  server::MserverOptions options;
  options.dop = static_cast<int>(state.range(0));
  options.mitosis_pieces = 16;
  auto server = bench::MakeServer(options, /*scale_factor=*/0.02);
  const std::string sql = tpch::GetQuery("q1").value().sql;
  for (auto _ : state) {
    auto outcome = server->ExecuteSql(sql);
    if (!outcome.ok()) {
      state.SkipWithError(outcome.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["dop"] = static_cast<double>(options.dop);
}
BENCHMARK(BM_QueryObsOff)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Metrics only: kernel-family counters/histograms, pool task latency,
/// per-pass timing — the clock-reading paths the kill switch gates.
void BM_QueryObsMetrics(benchmark::State& state) {
  obs::SetEnabled(true);
  server::MserverOptions options;
  options.dop = static_cast<int>(state.range(0));
  options.mitosis_pieces = 16;
  auto server = bench::MakeServer(options, /*scale_factor=*/0.02);
  const std::string sql = tpch::GetQuery("q1").value().sql;
  for (auto _ : state) {
    auto outcome = server->ExecuteSql(sql);
    if (!outcome.ok()) {
      state.SkipWithError(outcome.status().ToString().c_str());
      obs::SetEnabled(false);
      return;
    }
    benchmark::DoNotOptimize(outcome);
  }
  obs::SetEnabled(false);
  state.counters["dop"] = static_cast<double>(options.dop);
}
BENCHMARK(BM_QueryObsMetrics)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The full stethoscope turned on itself: metrics + phase/pass/kernel spans
/// + flight recorder armed. The tracer ring is cleared per iteration so
/// span accumulation does not distort later iterations.
void BM_QueryObsFullTrace(benchmark::State& state) {
  obs::SetEnabled(true);
  obs::Tracer::Default()->SetEnabled(true);
  obs::FlightRecorder::Default()->SetEnabled(true);
  server::MserverOptions options;
  options.dop = static_cast<int>(state.range(0));
  options.mitosis_pieces = 16;
  auto server = bench::MakeServer(options, /*scale_factor=*/0.02);
  const std::string sql = tpch::GetQuery("q1").value().sql;
  int64_t spans = 0;
  for (auto _ : state) {
    obs::Tracer::Default()->Clear();
    auto outcome = server->ExecuteSql(sql);
    if (!outcome.ok()) {
      state.SkipWithError(outcome.status().ToString().c_str());
      break;
    }
    spans = static_cast<int64_t>(obs::Tracer::Default()->size());
    benchmark::DoNotOptimize(outcome);
  }
  obs::FlightRecorder::Default()->SetEnabled(false);
  obs::Tracer::Default()->SetEnabled(false);
  obs::Tracer::Default()->Clear();
  obs::SetEnabled(false);
  state.counters["dop"] = static_cast<double>(options.dop);
  state.counters["spans_per_query"] = static_cast<double>(spans);
}
BENCHMARK(BM_QueryObsFullTrace)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- Micro costs behind the ratios above ----------------------------------

void BM_CounterIncrement(benchmark::State& state) {
  obs::Registry registry;
  obs::Counter* counter = registry.GetOrCreateCounter("bench_total", "b");
  for (auto _ : state) {
    counter->Increment();
  }
  benchmark::DoNotOptimize(counter->value());
}
BENCHMARK(BM_CounterIncrement);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Registry registry;
  obs::Histogram* hist = registry.GetOrCreateHistogram(
      "bench_usec", "b", obs::Histogram::DefaultLatencyBounds());
  int64_t v = 0;
  for (auto _ : state) {
    hist->Observe(v++ & 1023);
  }
  benchmark::DoNotOptimize(hist->count());
}
BENCHMARK(BM_HistogramObserve);

/// The cost every instrumented site pays when the platform ships with
/// observability off: one null/enabled check, nothing else.
void BM_SpanDisabled(benchmark::State& state) {
  obs::Tracer tracer;  // disabled
  for (auto _ : state) {
    obs::Span span(&tracer, "parse", "phase");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::Tracer tracer;
  tracer.SetEnabled(true);
  for (auto _ : state) {
    obs::Span span(&tracer, "parse", "phase");
    benchmark::DoNotOptimize(&span);
  }
  benchmark::DoNotOptimize(tracer.total_recorded());
}
BENCHMARK(BM_SpanEnabled);

/// Steady-state metric resolution (the map hit instrumented code takes once
/// per query, not per instruction).
void BM_RegistryGetOrCreateHit(benchmark::State& state) {
  obs::Registry registry;
  registry.GetOrCreateCounter("bench_hit_total", "b");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        registry.GetOrCreateCounter("bench_hit_total", "b"));
  }
}
BENCHMARK(BM_RegistryGetOrCreateHit);

}  // namespace

BENCHMARK_MAIN();
