// Experiment OBS (self-observability overhead): the platform that inspects
// query execution must withstand its own stethoscope. Measures the C4
// workload (TPC-H q1, mitosis-partitioned, dataflow execution) with
// observability fully off (the shipped default), with metrics enabled, and
// with metrics + span tracing + flight recorder enabled — the acceptance
// bar is <=3% slowdown fully enabled and no measurable change disabled.
// Micro-benchmarks pin down the per-operation costs behind those ratios.

#include <benchmark/benchmark.h>

#include "analysis/perfdiff.h"
#include "analysis/progress.h"
#include "bench_util.h"
#include "net/pipe_health.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/profile_store.h"
#include "obs/span.h"
#include "profiler/event.h"

namespace {

using namespace stetho;

/// Everything off (kill switch at its default): the baseline the other
/// configurations are compared against.
void BM_QueryObsOff(benchmark::State& state) {
  obs::SetEnabled(false);
  server::MserverOptions options;
  options.dop = static_cast<int>(state.range(0));
  options.mitosis_pieces = 16;
  auto server = bench::MakeServer(options, /*scale_factor=*/0.02);
  const std::string sql = tpch::GetQuery("q1").value().sql;
  for (auto _ : state) {
    auto outcome = server->ExecuteSql(sql);
    if (!outcome.ok()) {
      state.SkipWithError(outcome.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["dop"] = static_cast<double>(options.dop);
}
BENCHMARK(BM_QueryObsOff)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Metrics only: kernel-family counters/histograms, pool task latency,
/// per-pass timing — the clock-reading paths the kill switch gates.
void BM_QueryObsMetrics(benchmark::State& state) {
  obs::SetEnabled(true);
  server::MserverOptions options;
  options.dop = static_cast<int>(state.range(0));
  options.mitosis_pieces = 16;
  auto server = bench::MakeServer(options, /*scale_factor=*/0.02);
  const std::string sql = tpch::GetQuery("q1").value().sql;
  for (auto _ : state) {
    auto outcome = server->ExecuteSql(sql);
    if (!outcome.ok()) {
      state.SkipWithError(outcome.status().ToString().c_str());
      obs::SetEnabled(false);
      return;
    }
    benchmark::DoNotOptimize(outcome);
  }
  obs::SetEnabled(false);
  state.counters["dop"] = static_cast<double>(options.dop);
}
BENCHMARK(BM_QueryObsMetrics)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The full stethoscope turned on itself: metrics + phase/pass/kernel spans
/// + flight recorder armed. The tracer ring is cleared per iteration so
/// span accumulation does not distort later iterations.
void BM_QueryObsFullTrace(benchmark::State& state) {
  obs::SetEnabled(true);
  obs::Tracer::Default()->SetEnabled(true);
  obs::FlightRecorder::Default()->SetEnabled(true);
  server::MserverOptions options;
  options.dop = static_cast<int>(state.range(0));
  options.mitosis_pieces = 16;
  auto server = bench::MakeServer(options, /*scale_factor=*/0.02);
  const std::string sql = tpch::GetQuery("q1").value().sql;
  int64_t spans = 0;
  for (auto _ : state) {
    obs::Tracer::Default()->Clear();
    auto outcome = server->ExecuteSql(sql);
    if (!outcome.ok()) {
      state.SkipWithError(outcome.status().ToString().c_str());
      break;
    }
    spans = static_cast<int64_t>(obs::Tracer::Default()->size());
    benchmark::DoNotOptimize(outcome);
  }
  obs::FlightRecorder::Default()->SetEnabled(false);
  obs::Tracer::Default()->SetEnabled(false);
  obs::Tracer::Default()->Clear();
  obs::SetEnabled(false);
  state.counters["dop"] = static_cast<double>(options.dop);
  state.counters["spans_per_query"] = static_cast<double>(spans);
}
BENCHMARK(BM_QueryObsFullTrace)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- Micro costs behind the ratios above ----------------------------------

void BM_CounterIncrement(benchmark::State& state) {
  obs::Registry registry;
  obs::Counter* counter = registry.GetOrCreateCounter("bench_total", "b");
  for (auto _ : state) {
    counter->Increment();
  }
  benchmark::DoNotOptimize(counter->value());
}
BENCHMARK(BM_CounterIncrement);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Registry registry;
  obs::Histogram* hist = registry.GetOrCreateHistogram(
      "bench_usec", "b", obs::Histogram::DefaultLatencyBounds());
  int64_t v = 0;
  for (auto _ : state) {
    hist->Observe(v++ & 1023);
  }
  benchmark::DoNotOptimize(hist->count());
}
BENCHMARK(BM_HistogramObserve);

/// The cost every instrumented site pays when the platform ships with
/// observability off: one null/enabled check, nothing else.
void BM_SpanDisabled(benchmark::State& state) {
  obs::Tracer tracer;  // disabled
  for (auto _ : state) {
    obs::Span span(&tracer, "parse", "phase");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::Tracer tracer;
  tracer.SetEnabled(true);
  for (auto _ : state) {
    obs::Span span(&tracer, "parse", "phase");
    benchmark::DoNotOptimize(&span);
  }
  benchmark::DoNotOptimize(tracer.total_recorded());
}
BENCHMARK(BM_SpanEnabled);

/// Steady-state metric resolution (the map hit instrumented code takes once
/// per query, not per instruction).
void BM_RegistryGetOrCreateHit(benchmark::State& state) {
  obs::Registry registry;
  registry.GetOrCreateCounter("bench_hit_total", "b");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        registry.GetOrCreateCounter("bench_hit_total", "b"));
  }
}
BENCHMARK(BM_RegistryGetOrCreateHit);

// --- Pipeline-health accounting (the telemetry receive path) --------------

/// The common case the listener thread pays per trace line: in-order
/// delivery, no clock read (obs off), one mutex + integer bookkeeping.
void BM_StreamHealthObserveInOrder(benchmark::State& state) {
  net::StreamHealth health;
  profiler::TraceEvent e;
  e.state = profiler::EventState::kDone;
  int64_t seq = 0;
  for (auto _ : state) {
    e.event = seq;
    e.time_us = seq++;
    health.Observe(e, /*ingest_us=*/-1);
  }
  benchmark::DoNotOptimize(health.Snapshot().observed);
}
BENCHMARK(BM_StreamHealthObserveInOrder);

/// A steadily lossy wire: every 16th sequence number never arrives, so the
/// pending-gap set churns (insert, age past the reorder window, settle
/// into lost) — the accountant's worst sustained case.
void BM_StreamHealthObserveLossy(benchmark::State& state) {
  net::StreamHealth health;
  profiler::TraceEvent e;
  e.state = profiler::EventState::kDone;
  int64_t seq = 0;
  for (auto _ : state) {
    if ((seq & 15) == 0) ++seq;  // the hole
    e.event = seq;
    e.time_us = seq++;
    health.Observe(e, /*ingest_us=*/-1);
  }
  benchmark::DoNotOptimize(health.Snapshot().lost);
}
BENCHMARK(BM_StreamHealthObserveLossy);

// --- Progress estimation --------------------------------------------------

/// One absint + liveness sweep plus the critical-path DP — the cost
/// ProgressModelCache amortizes to once per plan shape.
void BM_ProgressModelBuild(benchmark::State& state) {
  server::MserverOptions options;
  options.mitosis_pieces = 16;
  auto server = bench::MakeServer(options, /*scale_factor=*/0.02);
  auto plan = server->Explain(tpch::GetQuery("q1").value().sql);
  if (!plan.ok()) {
    state.SkipWithError(plan.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::ProgressModel::Build(plan.value()));
  }
  state.counters["plan_size"] = static_cast<double>(plan.value().size());
}
BENCHMARK(BM_ProgressModelBuild);

/// Full per-query accounting: a fresh estimator fed one done-event per
/// instruction (the interpreter hook's steady cost, including the gauge
/// publish). Items = instructions.
void BM_ProgressEstimatorQuery(benchmark::State& state) {
  server::MserverOptions options;
  options.mitosis_pieces = 16;
  auto server = bench::MakeServer(options, /*scale_factor=*/0.02);
  auto plan = server->Explain(tpch::GetQuery("q1").value().sql);
  if (!plan.ok()) {
    state.SkipWithError(plan.status().ToString().c_str());
    return;
  }
  auto model = analysis::ProgressModel::Build(plan.value());
  for (auto _ : state) {
    analysis::ProgressEstimator estimator(model);
    int64_t now = 0;
    for (size_t pc = 0; pc < model->plan_size(); ++pc) {
      estimator.OnInstructionDone(static_cast<int>(pc), 5, now += 10, 0);
    }
    benchmark::DoNotOptimize(estimator.ratio());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(model->plan_size()));
}
BENCHMARK(BM_ProgressEstimatorQuery);

/// The ETA query at mid-flight: remaining-critical-path DP over the plan,
/// what every scoreboard line and --watch round pays.
void BM_ProgressEtaHalfway(benchmark::State& state) {
  server::MserverOptions options;
  options.mitosis_pieces = 16;
  auto server = bench::MakeServer(options, /*scale_factor=*/0.02);
  auto plan = server->Explain(tpch::GetQuery("q1").value().sql);
  if (!plan.ok()) {
    state.SkipWithError(plan.status().ToString().c_str());
    return;
  }
  auto model = analysis::ProgressModel::Build(plan.value());
  analysis::ProgressEstimator estimator(model);
  int64_t now = 0;
  for (size_t pc = 0; pc < model->plan_size() / 2; ++pc) {
    estimator.OnInstructionDone(static_cast<int>(pc), 5, now += 10, 0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.EtaUsec());
  }
}
BENCHMARK(BM_ProgressEtaHalfway);

/// A C4-sized observation for the profile-store micro benches (194-pc
/// plan shape, deterministic synthetic durations).
obs::QueryObservation MakeObservation(uint64_t shape_hash) {
  obs::QueryObservation observation;
  observation.shape_hash = shape_hash;
  observation.plan_size = 194;
  observation.total_usec = 20000;
  for (int pc = 0; pc < 194; ++pc) {
    obs::PcSample sample;
    sample.pc = pc;
    sample.usec = 5 + (pc % 7) * 100;
    sample.bytes = int64_t{1} << (pc % 20);
    sample.concurrency = 1 + pc % 4;
    observation.pcs.push_back(sample);
  }
  return observation;
}

/// Folding one completed query into the store — the per-query cost the
/// server pays after MarkFinished (in-memory store; the journal append is
/// I/O-bound and measured by the end-to-end configurations above).
void BM_ProfileFold(benchmark::State& state) {
  obs::ProfileStore store;
  obs::QueryObservation observation = MakeObservation(0x9e3779b97f4a7c15ULL);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Fold(observation));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(observation.pcs.size()));
}
BENCHMARK(BM_ProfileFold);

/// Baseline lookup — the per-round cost of the online monitor's straggler
/// sweep and the slow-query gate (deep-copy snapshot of a 194-pc profile).
void BM_ProfileLookup(benchmark::State& state) {
  obs::ProfileStore store;
  obs::QueryObservation observation = MakeObservation(0x9e3779b97f4a7c15ULL);
  for (int i = 0; i < 8; ++i) (void)store.Fold(observation);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Lookup(observation.shape_hash));
  }
}
BENCHMARK(BM_ProfileLookup);

}  // namespace

BENCHMARK_MAIN();
