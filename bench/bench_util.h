#ifndef STETHO_BENCH_BENCH_UTIL_H_
#define STETHO_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "profiler/event.h"
#include "server/mserver.h"
#include "storage/table.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace stetho::bench {

/// Shared deterministic TPC-H catalog (generated once per binary).
inline storage::Catalog& SharedCatalog(double scale_factor = 0.01) {
  static storage::Catalog* catalog = [scale_factor] {
    tpch::TpchConfig config;
    config.scale_factor = scale_factor;
    auto cat = tpch::GenerateTpch(config);
    if (!cat.ok()) {
      std::fprintf(stderr, "dbgen failed: %s\n",
                   cat.status().ToString().c_str());
      std::abort();
    }
    return new storage::Catalog(std::move(cat.value()));
  }();
  return *catalog;
}

/// Copies the shared catalog into a server with the given options.
inline std::unique_ptr<server::Mserver> MakeServer(
    server::MserverOptions options = {}, double scale_factor = 0.01) {
  // Catalog holds shared_ptr tables: copying the catalog is cheap and the
  // underlying columns are shared.
  return std::make_unique<server::Mserver>(SharedCatalog(scale_factor),
                                           options);
}

/// Synthetic trace of `n` events mimicking a mixed sequential/parallel
/// execution: fraction `paired` of instructions appear as adjacent
/// start/done pairs, the rest interleave (long-running).
inline std::vector<profiler::TraceEvent> SyntheticTrace(size_t n,
                                                        double paired = 0.8,
                                                        uint64_t seed = 42) {
  SplitMix64 rng(seed);
  std::vector<profiler::TraceEvent> events;
  events.reserve(n);
  int64_t t = 0;
  int pc = 0;
  std::vector<int> open;
  while (events.size() + 2 <= n) {
    profiler::TraceEvent e;
    e.time_us = t;
    e.thread = static_cast<int>(rng.NextBounded(4));
    e.rss_bytes = static_cast<int64_t>(rng.NextBounded(1 << 20));
    e.stmt = "X_1:bat[:oid] := algebra.select(X_0,X_2,1,9);";
    if (!open.empty() && rng.NextBool(0.5)) {
      // Close a long-running instruction.
      e.pc = open.back();
      open.pop_back();
      e.state = profiler::EventState::kDone;
      e.usec = static_cast<int64_t>(rng.NextBounded(20000));
      events.push_back(e);
      t += 3;
      continue;
    }
    if (rng.NextBool(paired)) {
      e.pc = pc++;
      e.state = profiler::EventState::kStart;
      events.push_back(e);
      e.state = profiler::EventState::kDone;
      e.usec = static_cast<int64_t>(rng.NextBounded(50));
      e.time_us = ++t;
      events.push_back(e);
    } else {
      e.pc = pc++;
      e.state = profiler::EventState::kStart;
      events.push_back(e);
      open.push_back(e.pc);
    }
    t += 2;
  }
  return events;
}

}  // namespace stetho::bench

#endif  // STETHO_BENCH_BENCH_UTIL_H_
