// Experiment C3 (paper §3.2): the textual Stethoscope "uses a UDP socket
// interface to connect to MonetDB server" and "can connect to multiple
// MonetDB servers at the same time to receive execution traces from all
// (distributed) sources. Its filter options allow for selective tracing."
//
// Measures datagram transport throughput (in-process channel and real
// loopback UDP) and the textual Stethoscope's end-to-end ingest rate with
// 1..8 concurrent servers, with and without filtering.

#include <benchmark/benchmark.h>

#include <thread>

#include "bench_util.h"
#include "net/channel.h"
#include "net/udp.h"
#include "scope/textual.h"

namespace {

using namespace stetho;

std::string SampleLine() {
  profiler::TraceEvent e;
  e.event = 12;
  e.time_us = 123456;
  e.pc = 7;
  e.thread = 2;
  e.state = profiler::EventState::kDone;
  e.usec = 1500;
  e.rss_bytes = 1 << 20;
  e.stmt = "X_9:bat[:oid] := algebra.thetaselect(X_2,X_8,1,\"==\");";
  return profiler::FormatTraceLine(e);
}

void BM_ChannelRoundTrip(benchmark::State& state) {
  auto [sender, receiver] = net::Channel::CreatePair();
  std::string line = SampleLine();
  std::string payload;
  for (auto _ : state) {
    (void)sender->Send(line);
    auto got = receiver->Receive(&payload, 100);
    if (!got.ok() || !got.value()) {
      state.SkipWithError("channel receive failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(line.size()));
}
BENCHMARK(BM_ChannelRoundTrip);

void BM_UdpLoopbackRoundTrip(benchmark::State& state) {
  auto receiver = net::UdpReceiver::Bind(0);
  if (!receiver.ok()) {
    state.SkipWithError("bind failed");
    return;
  }
  auto sender = net::UdpSender::Connect(receiver.value()->port());
  if (!sender.ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  std::string line = SampleLine();
  std::string payload;
  for (auto _ : state) {
    (void)sender.value()->Send(line);
    auto got = receiver.value()->Receive(&payload, 1000);
    if (!got.ok() || !got.value()) {
      state.SkipWithError("udp receive failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(line.size()));
}
BENCHMARK(BM_UdpLoopbackRoundTrip);

/// End-to-end ingest: N producer threads stream trace lines into one
/// textual Stethoscope over in-process channels.
void BM_TextualIngestMultiServer(benchmark::State& state) {
  const int servers = static_cast<int>(state.range(0));
  const bool filtered = state.range(1) != 0;
  const int kEventsPerServer = 2000;
  std::string line = SampleLine();

  for (auto _ : state) {
    scope::TextualOptions options;
    options.buffer_capacity = 1 << 16;
    if (filtered) {
      options.filter.OnlyState(profiler::EventState::kStart);  // drops all
    }
    scope::TextualStethoscope textual(options);
    std::vector<std::unique_ptr<net::DatagramSender>> senders;
    for (int s = 0; s < servers; ++s) {
      auto [sender, receiver] = net::Channel::CreatePair(1 << 18);
      (void)textual.AddServer("srv" + std::to_string(s), std::move(receiver));
      senders.push_back(std::move(sender));
    }
    std::vector<std::thread> producers;
    for (int s = 0; s < servers; ++s) {
      producers.emplace_back([&, s] {
        for (int i = 0; i < kEventsPerServer; ++i) {
          (void)senders[static_cast<size_t>(s)]->Send(line);
        }
      });
    }
    for (auto& t : producers) t.join();
    int64_t expected = static_cast<int64_t>(servers) * kEventsPerServer;
    while (textual.events_received() < expected) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    textual.Stop();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(servers) * kEventsPerServer);
  state.SetLabel(filtered ? "filter drops all" : "no filter");
}
BENCHMARK(BM_TextualIngestMultiServer)
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond);

/// Live server -> UDP -> textual Stethoscope, while the query runs.
void BM_LiveQueryOverUdp(benchmark::State& state) {
  auto udp_receiver = net::UdpReceiver::Bind(0);
  if (!udp_receiver.ok()) {
    state.SkipWithError("bind failed");
    return;
  }
  uint16_t port = udp_receiver.value()->port();

  scope::TextualOptions options;
  scope::TextualStethoscope textual(options);
  (void)textual.AddServer("udp", std::move(udp_receiver).value());

  server::MserverOptions server_options;
  server_options.dop = 2;
  auto server = bench::MakeServer(server_options, 0.001);
  auto udp_sender = net::UdpSender::Connect(port);
  if (!udp_sender.ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  server->AttachStream(
      std::shared_ptr<net::DatagramSender>(std::move(udp_sender).value()));

  const std::string sql = tpch::GetQuery("q6").value().sql;
  for (auto _ : state) {
    auto outcome = server->ExecuteSql(sql);
    if (!outcome.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["events_seen"] =
      static_cast<double>(textual.events_received());
  textual.Stop();
}
BENCHMARK(BM_LiveQueryOverUdp)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
