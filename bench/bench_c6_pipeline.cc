// Experiment C6 (paper §4, work-flow description): per-stage cost of the
// fundamental pipeline both modes share — "the dot file gets parsed and an
// intermediate scalar vector graphics (svg) representation gets created. In
// the next step, the svg file gets parsed and an in memory graph structure
// gets created."
//
// Stage breakdown (dot write, dot parse, layout, svg write, svg parse,
// graph rebuild) over synthetic layered DAGs of 10..2000 nodes.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "dot/parser.h"
#include "dot/writer.h"
#include "layout/layout_cache.h"
#include "layout/svg.h"
#include "layout/sugiyama.h"

namespace {

using namespace stetho;

/// Random layered DAG with n nodes (tree backbone + extra edges).
dot::Graph RandomDag(int n, uint64_t seed = 11) {
  SplitMix64 rng(seed);
  dot::Graph graph("bench");
  for (int i = 0; i < n; ++i) {
    graph.AddNode("n" + std::to_string(i)).attrs["label"] =
        "X_" + std::to_string(i) + " := algebra.select(...)";
  }
  for (int i = 1; i < n; ++i) {
    int parent = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(i)));
    graph.AddEdge("n" + std::to_string(parent), "n" + std::to_string(i));
    if (i > 2 && rng.NextBool(0.4)) {
      int extra = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(i)));
      graph.AddEdge("n" + std::to_string(extra), "n" + std::to_string(i));
    }
  }
  return graph;
}

void BM_Stage1_DotWrite(benchmark::State& state) {
  dot::Graph graph = RandomDag(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::string text = dot::GraphToDot(graph);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_Stage1_DotWrite)->Arg(10)->Arg(100)->Arg(500)->Arg(2000);

void BM_Stage2_DotParse(benchmark::State& state) {
  std::string text = dot::GraphToDot(RandomDag(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto graph = dot::ParseDot(text);
    benchmark::DoNotOptimize(graph);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_Stage2_DotParse)->Arg(10)->Arg(100)->Arg(500)->Arg(2000);

void BM_Stage3_Layout(benchmark::State& state) {
  dot::Graph graph = RandomDag(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto layout = layout::LayoutGraph(graph);
    benchmark::DoNotOptimize(layout);
  }
}
BENCHMARK(BM_Stage3_Layout)->Arg(10)->Arg(100)->Arg(500)->Arg(2000);

/// Stage 3 served from the content-hash layout cache — what re-entering
/// the pipeline with an unchanged plan costs after the front-end work.
void BM_Stage3_LayoutCached(benchmark::State& state) {
  dot::Graph graph = RandomDag(static_cast<int>(state.range(0)));
  layout::LayoutCache cache(4);
  (void)cache.GetOrCompute(graph);
  for (auto _ : state) {
    auto layout = cache.GetOrCompute(graph);
    benchmark::DoNotOptimize(layout);
  }
}
BENCHMARK(BM_Stage3_LayoutCached)->Arg(10)->Arg(100)->Arg(500)->Arg(2000);

void BM_Stage4_SvgWrite(benchmark::State& state) {
  dot::Graph graph = RandomDag(static_cast<int>(state.range(0)));
  auto layout = layout::LayoutGraph(graph);
  for (auto _ : state) {
    std::string svg = layout::LayoutToSvg(graph, layout.value());
    benchmark::DoNotOptimize(svg);
  }
}
BENCHMARK(BM_Stage4_SvgWrite)->Arg(10)->Arg(100)->Arg(500)->Arg(2000);

void BM_Stage5_SvgParse(benchmark::State& state) {
  dot::Graph graph = RandomDag(static_cast<int>(state.range(0)));
  auto layout = layout::LayoutGraph(graph);
  std::string svg = layout::LayoutToSvg(graph, layout.value());
  for (auto _ : state) {
    auto doc = layout::ParseSvg(svg);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(svg.size()));
}
BENCHMARK(BM_Stage5_SvgParse)->Arg(10)->Arg(100)->Arg(500)->Arg(2000);

void BM_Stage6_GraphRebuild(benchmark::State& state) {
  dot::Graph graph = RandomDag(static_cast<int>(state.range(0)));
  auto layout = layout::LayoutGraph(graph);
  auto doc = layout::ParseSvg(layout::LayoutToSvg(graph, layout.value()));
  for (auto _ : state) {
    dot::Graph rebuilt = layout::SvgToGraph(doc.value());
    benchmark::DoNotOptimize(rebuilt.num_nodes());
  }
}
BENCHMARK(BM_Stage6_GraphRebuild)->Arg(10)->Arg(100)->Arg(500)->Arg(2000);

/// All stages chained, as both Stethoscope modes run them.
void BM_WholeWorkflow(benchmark::State& state) {
  std::string dot_text =
      dot::GraphToDot(RandomDag(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto graph = dot::ParseDot(dot_text);
    auto layout = layout::LayoutGraph(graph.value());
    std::string svg = layout::LayoutToSvg(graph.value(), layout.value());
    auto doc = layout::ParseSvg(svg);
    dot::Graph final_graph = layout::SvgToGraph(doc.value());
    benchmark::DoNotOptimize(final_graph.num_nodes());
  }
}
BENCHMARK(BM_WholeWorkflow)
    ->Arg(10)
    ->Arg(100)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
