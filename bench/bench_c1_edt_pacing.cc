// Experiment C1 (paper §4.2.1): "The Stethoscope uses the Java Event
// Dispatch thread queuing framework for queuing up nodes to render. This
// introduces a delay of up-to 150ms between rendering of consecutive
// nodes."
//
// Measures the event-dispatch substitute: real task throughput without
// pacing, and — on a virtual clock — the exact inter-render gap the pacing
// imposes, plus how long a burst of N node-color updates takes to drain
// (the paper's bottleneck for online coloring).

#include <benchmark/benchmark.h>

#include <atomic>

#include "common/clock.h"
#include "viz/event_dispatch.h"

namespace {

using namespace stetho;

void BM_PostNoPacing(benchmark::State& state) {
  VirtualClock clock;
  viz::EventDispatchThread edt(&clock, 0);
  std::atomic<int64_t> executed{0};
  for (auto _ : state) {
    edt.Post([&] { executed.fetch_add(1, std::memory_order_relaxed); });
  }
  edt.Drain();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PostNoPacing);

/// Burst of N renders with 150ms pacing on a virtual clock: the measured
/// virtual drain time must be (N-1) * 150ms — the paper's rendering
/// bottleneck, reproduced exactly.
void BM_RenderBurstVirtualDrain(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    VirtualClock clock;
    viz::EventDispatchThread edt(&clock, 150000);
    for (int64_t i = 0; i < n; ++i) {
      edt.PostRender([] {});
    }
    edt.Drain();
    state.counters["virtual_drain_ms"] =
        static_cast<double>(clock.NowMicros()) / 1000.0;
    auto stats = edt.Stats();
    int64_t min_gap = stats.render_gaps_us.empty()
                          ? 0
                          : *std::min_element(stats.render_gaps_us.begin(),
                                              stats.render_gaps_us.end());
    state.counters["min_gap_ms"] = static_cast<double>(min_gap) / 1000.0;
    edt.Shutdown();
  }
  state.counters["nodes_per_s_at_150ms"] =
      1e6 / 150000.0;  // the pacing-imposed ceiling
}
BENCHMARK(BM_RenderBurstVirtualDrain)->Arg(2)->Arg(10)->Arg(50)->Arg(200);

/// Real-time pacing with a short interval: verifies the dispatcher also
/// enforces intervals on a wall clock.
void BM_RenderPacedRealClock(benchmark::State& state) {
  const int64_t interval_us = state.range(0);
  for (auto _ : state) {
    viz::EventDispatchThread edt(SteadyClock::Default(), interval_us);
    for (int i = 0; i < 5; ++i) {
      edt.PostRender([] {});
    }
    edt.Drain();
    auto stats = edt.Stats();
    for (int64_t gap : stats.render_gaps_us) {
      if (gap < interval_us) {
        state.SkipWithError("pacing violated");
        return;
      }
    }
    edt.Shutdown();
  }
  state.SetLabel("5 renders per iteration");
}
BENCHMARK(BM_RenderPacedRealClock)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

/// Queue growth under a producer faster than the render rate — the paper's
/// online-mode scenario where the trace outruns the display.
void BM_QueueDepthUnderLoad(benchmark::State& state) {
  for (auto _ : state) {
    VirtualClock clock;
    viz::EventDispatchThread edt(&clock, 150000);
    for (int i = 0; i < 100; ++i) {
      edt.PostRender([] {});
    }
    edt.Drain();
    state.counters["max_queue_depth"] =
        static_cast<double>(edt.Stats().max_queue_depth);
    edt.Shutdown();
  }
}
BENCHMARK(BM_QueueDepthUnderLoad);

}  // namespace

int main(int argc, char** argv) {
  using namespace stetho;
  std::printf("=== C1: the 150ms event-dispatch rendering delay ===\n");
  VirtualClock clock;
  {
    viz::EventDispatchThread edt(&clock, 150000);
    for (int i = 0; i < 10; ++i) {
      edt.PostRender([] {});
    }
    edt.Drain();
    auto stats = edt.Stats();
    std::printf("10-node burst drained in %lld virtual ms "
                "(expected %d); gaps:",
                static_cast<long long>(clock.NowMicros() / 1000), 9 * 150);
    for (int64_t gap : stats.render_gaps_us) {
      std::printf(" %lld", static_cast<long long>(gap / 1000));
    }
    std::printf(" ms\n\n");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
