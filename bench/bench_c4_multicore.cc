// Experiment C4 (paper §5, online demo): "Multi-core utilization analysis
// exhibits degree of multi-threaded parallelization of MAL instructions",
// and the uncovered anomaly — "sequential execution of a MAL plan where
// multithreaded execution was expected".
//
// Sweeps the degree of parallelism over a mitosis-partitioned plan,
// reporting wall time and the utilization metrics the Stethoscope computes
// from the trace. The anomaly case (force_sequential) must be flagged.

#include <benchmark/benchmark.h>

#include <thread>

#include "bench_util.h"
#include "engine/interpreter.h"
#include "mal/program.h"
#include "profiler/sink.h"
#include "scope/analysis.h"

namespace {

using namespace stetho;

void BM_QueryAtDop(benchmark::State& state) {
  const int dop = static_cast<int>(state.range(0));
  server::MserverOptions options;
  options.dop = dop;
  options.mitosis_pieces = 16;
  auto server = bench::MakeServer(options, /*scale_factor=*/0.02);
  auto ring = std::make_shared<profiler::RingBufferSink>(1 << 16);
  server->profiler()->AddSink(ring);
  const std::string sql = tpch::GetQuery("q1").value().sql;

  for (auto _ : state) {
    ring->Clear();
    auto outcome = server->ExecuteSql(sql);
    if (!outcome.ok()) {
      state.SkipWithError(outcome.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(outcome);
  }
  auto report = scope::AnalyzeThreadUtilization(ring->Snapshot());
  state.counters["dop"] = dop;
  state.counters["threads_used"] = static_cast<double>(report.threads.size());
  state.counters["max_concurrency"] =
      static_cast<double>(report.max_concurrency);
  state.counters["avg_concurrency"] = report.avg_concurrency;
}
BENCHMARK(BM_QueryAtDop)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The anomaly: a sequential server analyzed with the same tooling.
void BM_SequentialAnomaly(benchmark::State& state) {
  server::MserverOptions options;
  options.dop = 4;
  options.mitosis_pieces = 16;
  options.force_sequential = true;
  auto server = bench::MakeServer(options, 0.02);
  auto ring = std::make_shared<profiler::RingBufferSink>(1 << 16);
  server->profiler()->AddSink(ring);
  const std::string sql = tpch::GetQuery("q1").value().sql;
  for (auto _ : state) {
    ring->Clear();
    auto outcome = server->ExecuteSql(sql);
    if (!outcome.ok()) {
      state.SkipWithError("query failed");
      return;
    }
  }
  auto diag = scope::DiagnoseParallelism(ring->Snapshot(), 4);
  state.counters["anomaly_flagged"] = diag.sequential_anomaly ? 1 : 0;
  state.counters["max_concurrency"] =
      static_cast<double>(diag.max_concurrency);
  state.SetLabel(diag.sequential_anomaly ? "ANOMALY detected" : "no anomaly");
}
BENCHMARK(BM_SequentialAnomaly)->Unit(benchmark::kMillisecond)->UseRealTime();

/// Wall-clock speedup on an embarrassingly-parallel MAL plan (independent
/// debug.spin instructions): the dataflow scheduler must scale near-
/// linearly until the core count is hit.
void BM_IndependentWorkSpeedup(benchmark::State& state) {
  const int dop = static_cast<int>(state.range(0));
  mal::Program plan;
  std::vector<int> outs;
  for (int i = 0; i < 16; ++i) {
    int v = plan.AddVariable(mal::MalType::Scalar(storage::DataType::kInt64));
    plan.Add("debug", "spin", {v},
             {mal::Argument::Const(storage::Value::Int(3000000))});
    outs.push_back(v);
  }
  for (int v : outs) plan.Add("io", "print", {}, {mal::Argument::Var(v)});
  storage::Catalog& catalog = bench::SharedCatalog();
  engine::Interpreter interp(&catalog);
  engine::ExecOptions exec;
  exec.num_threads = dop;
  for (auto _ : state) {
    auto r = interp.Execute(plan, exec);
    if (!r.ok()) {
      state.SkipWithError("exec failed");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["dop"] = dop;
}
BENCHMARK(BM_IndependentWorkSpeedup)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Scaling of the analysis itself over trace size.
void BM_UtilizationAnalysis(benchmark::State& state) {
  auto events = bench::SyntheticTrace(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto report = scope::AnalyzeThreadUtilization(events);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_UtilizationAnalysis)->Arg(10000)->Arg(100000);

}  // namespace

int main(int argc, char** argv) {
  using namespace stetho;
  std::printf("=== C4: utilization distribution by degree of parallelism "
              "(TPC-H Q1, mitosis=16) ===\n");
  const std::string sql = tpch::GetQuery("q1").value().sql;
  for (int dop : {1, 2, 4}) {
    server::MserverOptions options;
    options.dop = dop;
    options.mitosis_pieces = 16;
    auto server = bench::MakeServer(options, 0.02);
    auto ring = std::make_shared<profiler::RingBufferSink>(1 << 16);
    server->profiler()->AddSink(ring);
    auto outcome = server->ExecuteSql(sql);
    if (!outcome.ok()) continue;
    auto report = scope::AnalyzeThreadUtilization(ring->Snapshot());
    std::printf("dop=%d wall=%lldus threads=%zu peak_conc=%zu avg_conc=%.2f\n",
                dop, static_cast<long long>(report.wall_us),
                report.threads.size(), report.max_concurrency,
                report.avg_concurrency);
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
