// Experiment C5 (paper §5, offline demo): trace replay — "Step by step walk
// through", "Fast-forward, rewind, and pause functionality of the trace
// replay", "Finding costly instructions by coloring during trace replay",
// "Birds eye view of the entire trace".
//
// Measures step throughput, fast-forward at speed multipliers ×1..×64 (on a
// virtual clock, so the replay duration scaling is exact), seek/rewind
// cost, costly-instruction clustering, and birds-eye rendering.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/clock.h"
#include "dot/parser.h"
#include "layout/layout_cache.h"
#include "profiler/sink.h"
#include "scope/analysis.h"
#include "scope/replayer.h"

namespace {

using namespace stetho;

struct Recorded {
  dot::Graph graph;
  std::vector<profiler::TraceEvent> events;
};

/// One recorded q1 execution, shared by all benchmarks in this binary.
const Recorded& Recording() {
  static const Recorded* recorded = [] {
    server::MserverOptions options;
    options.dop = 2;
    options.mitosis_pieces = 8;
    auto server = bench::MakeServer(options, 0.005);
    auto ring = std::make_shared<profiler::RingBufferSink>(1 << 16);
    server->profiler()->AddSink(ring);
    auto outcome = server->ExecuteSql(tpch::GetQuery("q1").value().sql);
    if (!outcome.ok()) std::abort();
    auto graph = dot::ParseDot(outcome.value().dot);
    if (!graph.ok()) std::abort();
    auto* r = new Recorded{std::move(graph).value(), ring->Snapshot()};
    // Normalize timestamps to a strict 100us cadence so speed sweeps are
    // deterministic.
    for (size_t i = 0; i < r->events.size(); ++i) {
      r->events[i].time_us = static_cast<int64_t>(i) * 100;
    }
    return r;
  }();
  return *recorded;
}

std::unique_ptr<scope::OfflineReplayer> MakeReplayer(VirtualClock* clock) {
  scope::ReplayOptions options;
  options.clock = clock;
  options.render_interval_us = 0;
  auto r = scope::OfflineReplayer::Create(Recording().graph,
                                          Recording().events, options);
  if (!r.ok()) std::abort();
  return std::move(r).value();
}

void BM_StepThroughput(benchmark::State& state) {
  VirtualClock clock;
  auto replayer = MakeReplayer(&clock);
  for (auto _ : state) {
    if (replayer->AtEnd()) replayer->Rewind();
    (void)replayer->Step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StepThroughput);

/// Fast-forward at ×speed: replaying the whole trace takes
/// trace_duration / speed virtual time.
void BM_PlayAtSpeed(benchmark::State& state) {
  const double speed = static_cast<double>(state.range(0));
  for (auto _ : state) {
    VirtualClock clock;
    auto replayer = MakeReplayer(&clock);
    auto played = replayer->Play(speed, Recording().events.size());
    if (!played.ok()) {
      state.SkipWithError("play failed");
      return;
    }
    state.counters["virtual_replay_ms"] =
        static_cast<double>(clock.NowMicros()) / 1000.0;
  }
  int64_t trace_span =
      Recording().events.back().time_us - Recording().events.front().time_us;
  state.counters["trace_span_ms"] = static_cast<double>(trace_span) / 1000.0;
  state.counters["speed_x"] = speed;
}
BENCHMARK(BM_PlayAtSpeed)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_SeekToMiddle(benchmark::State& state) {
  VirtualClock clock;
  auto replayer = MakeReplayer(&clock);
  size_t middle = Recording().events.size() / 2;
  for (auto _ : state) {
    (void)replayer->SeekTo(middle);
    benchmark::DoNotOptimize(replayer->cursor());
  }
  state.SetLabel("repeated same-target seek (no-op fast path)");
}
BENCHMARK(BM_SeekToMiddle);

/// Alternating far seeks on a live replayer: every seek moves the cursor
/// half the trace, touching only the pcs whose color changes (per-pc
/// history binary search), not the whole event range.
void BM_SeekPingPong(benchmark::State& state) {
  VirtualClock clock;
  auto replayer = MakeReplayer(&clock);
  size_t n = Recording().events.size();
  bool at_middle = false;
  for (auto _ : state) {
    (void)replayer->SeekTo(at_middle ? n - 1 : n / 2);
    at_middle = !at_middle;
    benchmark::DoNotOptimize(replayer->cursor());
  }
}
BENCHMARK(BM_SeekPingPong);

/// Cold seek: layout cache cleared and the replayer rebuilt every
/// iteration — what every seek cost before the front-end work (scene
/// construction + full color recompute).
void BM_SeekCold(benchmark::State& state) {
  VirtualClock clock;
  size_t middle = Recording().events.size() / 2;
  for (auto _ : state) {
    layout::LayoutCache::Default()->Clear();
    auto replayer = MakeReplayer(&clock);
    (void)replayer->SeekTo(middle);
    benchmark::DoNotOptimize(replayer->cursor());
  }
}
BENCHMARK(BM_SeekCold)->Unit(benchmark::kMicrosecond);

/// Warm seek: replayer rebuilt per iteration but the layout comes from the
/// content-hash cache — the steady state of re-entering a recorded query.
void BM_SeekWarm(benchmark::State& state) {
  VirtualClock clock;
  size_t middle = Recording().events.size() / 2;
  (void)MakeReplayer(&clock);  // primes the layout cache
  for (auto _ : state) {
    auto replayer = MakeReplayer(&clock);
    (void)replayer->SeekTo(middle);
    benchmark::DoNotOptimize(replayer->cursor());
  }
}
BENCHMARK(BM_SeekWarm)->Unit(benchmark::kMicrosecond);

void BM_RewindAfterFullPlay(benchmark::State& state) {
  VirtualClock clock;
  auto replayer = MakeReplayer(&clock);
  for (auto _ : state) {
    (void)replayer->Play(1e12, Recording().events.size());
    replayer->Rewind();
  }
}
BENCHMARK(BM_RewindAfterFullPlay);

void BM_BirdsEyeView(benchmark::State& state) {
  VirtualClock clock;
  auto replayer = MakeReplayer(&clock);
  (void)replayer->Play(1e12, Recording().events.size());
  for (auto _ : state) {
    viz::Frame frame = replayer->BirdsEyeView();
    benchmark::DoNotOptimize(frame.commands.size());
  }
}
BENCHMARK(BM_BirdsEyeView);

void BM_CostlyClustering(benchmark::State& state) {
  auto events = bench::SyntheticTrace(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto clusters = scope::FindCostlyClusters(events, 1000);
    benchmark::DoNotOptimize(clusters);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_CostlyClustering)->Arg(10000)->Arg(100000);

void BM_TooltipLookup(benchmark::State& state) {
  VirtualClock clock;
  auto replayer = MakeReplayer(&clock);
  (void)replayer->Play(1e12, Recording().events.size());
  for (auto _ : state) {
    std::string tip = replayer->TooltipFor("n5");
    benchmark::DoNotOptimize(tip);
  }
}
BENCHMARK(BM_TooltipLookup);

}  // namespace

BENCHMARK_MAIN();
