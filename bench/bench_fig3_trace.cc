// Experiment F3 (paper Fig. 3): the MAL execution trace.
//
// Regenerates the trace excerpt and measures the profiler path: event
// emission throughput, trace-line formatting/parsing, and the end-to-end
// profiling overhead on query execution (profiler off vs ring buffer vs
// file sink).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/clock.h"
#include "profiler/profiler.h"
#include "profiler/sink.h"

namespace {

using namespace stetho;

void BM_ProfilerEmit(benchmark::State& state) {
  VirtualClock clock;
  profiler::Profiler prof(&clock);
  auto ring = std::make_shared<profiler::RingBufferSink>(1 << 16);
  prof.AddSink(ring);
  std::string stmt = "X_5:bat[:dbl] := algebra.projection(X_3,X_4);";
  int pc = 0;
  for (auto _ : state) {
    prof.EmitStart(pc, 0, 4096, stmt);
    prof.EmitDone(pc, 0, 17, 4096, stmt);
    ++pc;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_ProfilerEmit);

void BM_ProfilerEmitFiltered(benchmark::State& state) {
  // Filter that drops everything: measures the filtering fast path.
  VirtualClock clock;
  profiler::Profiler prof(&clock);
  auto ring = std::make_shared<profiler::RingBufferSink>(1 << 16);
  prof.AddSink(ring);
  profiler::EventFilter filter;
  filter.PcRange(1 << 20, 1 << 21);
  prof.SetFilter(filter);
  std::string stmt = "io.print(X_5);";
  for (auto _ : state) {
    prof.EmitDone(3, 0, 17, 4096, stmt);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerEmitFiltered);

void BM_TraceLineFormat(benchmark::State& state) {
  auto events = bench::SyntheticTrace(1000);
  size_t i = 0;
  for (auto _ : state) {
    std::string line = profiler::FormatTraceLine(events[i % events.size()]);
    benchmark::DoNotOptimize(line);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceLineFormat);

void BM_TraceLineParse(benchmark::State& state) {
  auto events = bench::SyntheticTrace(1000);
  std::vector<std::string> lines;
  for (const auto& e : events) lines.push_back(profiler::FormatTraceLine(e));
  size_t i = 0;
  for (auto _ : state) {
    auto event = profiler::ParseTraceLine(lines[i % lines.size()]);
    benchmark::DoNotOptimize(event);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceLineParse);

/// End-to-end profiling overhead on a real query.
void BM_QueryProfiled(benchmark::State& state) {
  server::MserverOptions options;
  options.dop = 2;
  auto server = bench::MakeServer(options);
  std::shared_ptr<profiler::RingBufferSink> ring;
  switch (state.range(0)) {
    case 0:
      server->profiler()->SetEnabled(false);
      state.SetLabel("profiler off");
      break;
    case 1:
      ring = std::make_shared<profiler::RingBufferSink>(1 << 16);
      server->profiler()->AddSink(ring);
      state.SetLabel("ring buffer sink");
      break;
    default: {
      auto file = profiler::FileSink::Open("/tmp/stetho_bench_fig3.trace");
      if (!file.ok()) {
        state.SkipWithError("cannot open trace file");
        return;
      }
      server->profiler()->AddSink(std::move(file).value());
      state.SetLabel("trace file sink");
    }
  }
  const std::string sql = tpch::GetQuery("q6").value().sql;
  for (auto _ : state) {
    auto outcome = server->ExecuteSql(sql);
    if (!outcome.ok()) state.SkipWithError(outcome.status().ToString().c_str());
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_QueryProfiled)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace stetho;
  auto server = bench::MakeServer();
  auto ring = std::make_shared<profiler::RingBufferSink>(1 << 16);
  server->profiler()->AddSink(ring);
  auto outcome =
      server->ExecuteSql("select l_tax from lineitem where l_partkey = 1");
  if (outcome.ok()) {
    std::printf("=== Fig. 3: MAL plan execution trace (first 10 events) ===\n");
    auto events = ring->Snapshot();
    for (size_t i = 0; i < events.size() && i < 10; ++i) {
      std::printf("%s\n", profiler::FormatTraceLine(events[i]).c_str());
    }
    std::printf("(%zu events total)\n\n", events.size());
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
