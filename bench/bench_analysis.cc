// Static-analysis cost on realistic plans: what one abstract-interpreter
// sweep, one full lint-suite run, and the optimizer's pass-equivalence
// differ cost on TPC-H plans, as a function of mitosis expansion (Arg =
// pieces; 0 disables mitosis). The differ runs inside every Pipeline::Run,
// so BM_PipelineWithDiffer is the end-to-end optimizer cost users actually
// pay; the per-sweep numbers bound how that scales with plan size.
// Shape expectation: all three are linear in plan instructions — the
// interpreter is a single forward pass over SSA.

#include <benchmark/benchmark.h>

#include <memory>
#include <utility>
#include <vector>

#include "analysis/absint.h"
#include "analysis/hb.h"
#include "analysis/liveness.h"
#include "analysis/runner.h"
#include "bench_util.h"
#include "common/clock.h"
#include "engine/interpreter.h"
#include "engine/kernel.h"
#include "optimizer/pass.h"
#include "profiler/profiler.h"
#include "profiler/sink.h"
#include "sql/compiler.h"

namespace {

using namespace stetho;

/// Compiles `query_id` and expands it with the default pipeline at `pieces`
/// mitosis partitions (0 = no mitosis) — the linted artifact.
mal::Program ExpandedPlan(const char* query_id, int pieces) {
  storage::Catalog& catalog = bench::SharedCatalog(0.01);
  auto base =
      sql::Compiler::CompileSql(&catalog, tpch::GetQuery(query_id).value().sql);
  if (!base.ok()) std::abort();
  mal::Program plan = std::move(base).value();
  optimizer::Pipeline pipeline = optimizer::Pipeline::Default(pieces);
  if (!pipeline.Run(&plan).ok()) std::abort();
  return plan;
}

void BM_AbstractInterpret(benchmark::State& state, const char* query_id) {
  mal::Program plan = ExpandedPlan(query_id, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    analysis::AbstractState facts = analysis::AnalyzeProgram(plan);
    benchmark::DoNotOptimize(facts);
  }
  state.counters["plan_instructions"] = static_cast<double>(plan.size());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(plan.size()));
}

void BM_LintSuite(benchmark::State& state, const char* query_id) {
  mal::Program plan = ExpandedPlan(query_id, static_cast<int>(state.range(0)));
  analysis::CheckContext ctx;
  ctx.program = &plan;
  ctx.registry = engine::ModuleRegistry::Default();
  for (auto _ : state) {
    std::vector<analysis::Diagnostic> diags =
        analysis::Runner::Default().Run(ctx);
    benchmark::DoNotOptimize(diags);
  }
  state.counters["plan_instructions"] = static_cast<double>(plan.size());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(plan.size()));
}

void BM_SummaryDiff(benchmark::State& state, const char* query_id) {
  mal::Program plan = ExpandedPlan(query_id, static_cast<int>(state.range(0)));
  analysis::PlanSummary before = analysis::SummarizeObservable(plan);
  for (auto _ : state) {
    analysis::PlanSummary after = analysis::SummarizeObservable(plan);
    Status st = analysis::CheckSummaryEquivalence(before, after, "bench");
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(after);
  }
  state.counters["sink_columns"] = static_cast<double>(before.columns.size());
  state.counters["plan_instructions"] = static_cast<double>(plan.size());
}

/// Happens-before schedule replay cost on a real trace: execute the
/// expanded plan once under the dataflow scheduler (dop 4) with profiling
/// on, then measure AnalyzeSchedule over the captured events. Shape
/// expectation: O(events * avg-indegree) — one pass over the sorted trace,
/// each start joining its producers' vector clocks (the events and
/// avg_indegree counters make the bound checkable across Args).
void BM_HbReplay(benchmark::State& state, const char* query_id) {
  mal::Program plan = ExpandedPlan(query_id, static_cast<int>(state.range(0)));
  storage::Catalog& catalog = bench::SharedCatalog(0.01);
  profiler::Profiler prof(SteadyClock::Default());
  auto ring = std::make_shared<profiler::RingBufferSink>(1 << 16);
  prof.AddSink(ring);
  engine::Interpreter interp(&catalog);
  engine::ExecOptions opts;
  opts.num_threads = 4;
  opts.profiler = &prof;
  auto r = interp.Execute(plan, opts);
  if (!r.ok()) {
    state.SkipWithError(r.status().ToString().c_str());
    return;
  }
  std::vector<profiler::TraceEvent> trace = ring->Snapshot();
  analysis::ScheduleReport report;
  for (auto _ : state) {
    report = analysis::AnalyzeSchedule(plan, trace);
    benchmark::DoNotOptimize(report);
  }
  state.counters["events"] = static_cast<double>(trace.size());
  state.counters["avg_indegree"] = report.avg_indegree;
  state.counters["plan_instructions"] = static_cast<double>(plan.size());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.size()));
}

/// End-to-end: compile + full default pipeline, which now re-lints and
/// re-diffs the plan after every pass that fired.
void BM_PipelineWithDiffer(benchmark::State& state, const char* query_id) {
  storage::Catalog& catalog = bench::SharedCatalog(0.01);
  auto base =
      sql::Compiler::CompileSql(&catalog, tpch::GetQuery(query_id).value().sql);
  if (!base.ok()) {
    state.SkipWithError("compile failed");
    return;
  }
  int pieces = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mal::Program plan = base.value();
    optimizer::Pipeline pipeline = optimizer::Pipeline::Default(pieces);
    auto fired = pipeline.Run(&plan);
    if (!fired.ok()) {
      state.SkipWithError(fired.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(plan);
  }
}

/// One full memory-lifetime analysis (forward absint + backward liveness +
/// accountant simulation) plus the dop-4 parallel bound — the cost `mal_lint
/// --memory`, the memory checks, and budgeted admission each pay per plan.
void BM_LivenessFootprintImpl(benchmark::State& state, const char* query_id) {
  mal::Program plan = ExpandedPlan(query_id, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    analysis::MemoryReport report = analysis::AnalyzeMemory(plan);
    int64_t bound = analysis::ParallelPeakBound(plan, report, 4);
    benchmark::DoNotOptimize(report);
    benchmark::DoNotOptimize(bound);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plan.size()));
}

/// The memory_reorder pass on an unoptimized plan (two AnalyzeMemory runs +
/// greedy list scheduling + validation) — its marginal pipeline cost.
void BM_MemoryReorderImpl(benchmark::State& state, const char* query_id) {
  storage::Catalog& catalog = bench::SharedCatalog(0.01);
  auto base =
      sql::Compiler::CompileSql(&catalog, tpch::GetQuery(query_id).value().sql);
  if (!base.ok()) std::abort();
  auto pass = optimizer::MakeMemoryReorderPass();
  for (auto _ : state) {
    mal::Program plan = base.value();
    auto changed = pass->Run(&plan);
    if (!changed.ok()) std::abort();
    benchmark::DoNotOptimize(plan);
  }
}

void BM_AbsintQ1(benchmark::State& state) { BM_AbstractInterpret(state, "q1"); }
void BM_AbsintQ3(benchmark::State& state) { BM_AbstractInterpret(state, "q3"); }
void BM_LintQ1(benchmark::State& state) { BM_LintSuite(state, "q1"); }
void BM_LintQ3(benchmark::State& state) { BM_LintSuite(state, "q3"); }
void BM_DiffQ1(benchmark::State& state) { BM_SummaryDiff(state, "q1"); }
void BM_HbReplayQ1(benchmark::State& state) { BM_HbReplay(state, "q1"); }
void BM_HbReplayQ3(benchmark::State& state) { BM_HbReplay(state, "q3"); }
void BM_PipelineQ1(benchmark::State& state) {
  BM_PipelineWithDiffer(state, "q1");
}
void BM_PipelineQ6(benchmark::State& state) {
  BM_PipelineWithDiffer(state, "q6");
}
void BM_LivenessFootprint(benchmark::State& state) {
  BM_LivenessFootprintImpl(state, "q1");
}
void BM_LivenessFootprintQ3(benchmark::State& state) {
  BM_LivenessFootprintImpl(state, "q3");
}
void BM_MemoryReorder(benchmark::State& state) {
  BM_MemoryReorderImpl(state, "q1");
}
void BM_MemoryReorderQ3(benchmark::State& state) {
  BM_MemoryReorderImpl(state, "q3");
}

BENCHMARK(BM_AbsintQ1)->Arg(0)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AbsintQ3)->Arg(0)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LintQ1)->Arg(0)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LintQ3)->Arg(0)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DiffQ1)->Arg(0)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_HbReplayQ1)->Arg(0)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_HbReplayQ3)->Arg(0)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PipelineQ1)->Arg(0)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PipelineQ6)->Arg(0)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LivenessFootprint)
    ->Arg(0)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LivenessFootprintQ3)
    ->Arg(0)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MemoryReorder)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MemoryReorderQ3)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
