// Static-analysis cost on realistic plans: what one abstract-interpreter
// sweep, one full lint-suite run, and the optimizer's pass-equivalence
// differ cost on TPC-H plans, as a function of mitosis expansion (Arg =
// pieces; 0 disables mitosis). The differ runs inside every Pipeline::Run,
// so BM_PipelineWithDiffer is the end-to-end optimizer cost users actually
// pay; the per-sweep numbers bound how that scales with plan size.
// Shape expectation: all three are linear in plan instructions — the
// interpreter is a single forward pass over SSA.

#include <benchmark/benchmark.h>

#include <utility>

#include "analysis/absint.h"
#include "analysis/runner.h"
#include "bench_util.h"
#include "engine/kernel.h"
#include "optimizer/pass.h"
#include "sql/compiler.h"

namespace {

using namespace stetho;

/// Compiles `query_id` and expands it with the default pipeline at `pieces`
/// mitosis partitions (0 = no mitosis) — the linted artifact.
mal::Program ExpandedPlan(const char* query_id, int pieces) {
  storage::Catalog& catalog = bench::SharedCatalog(0.01);
  auto base =
      sql::Compiler::CompileSql(&catalog, tpch::GetQuery(query_id).value().sql);
  if (!base.ok()) std::abort();
  mal::Program plan = std::move(base).value();
  optimizer::Pipeline pipeline = optimizer::Pipeline::Default(pieces);
  if (!pipeline.Run(&plan).ok()) std::abort();
  return plan;
}

void BM_AbstractInterpret(benchmark::State& state, const char* query_id) {
  mal::Program plan = ExpandedPlan(query_id, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    analysis::AbstractState facts = analysis::AnalyzeProgram(plan);
    benchmark::DoNotOptimize(facts);
  }
  state.counters["plan_instructions"] = static_cast<double>(plan.size());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(plan.size()));
}

void BM_LintSuite(benchmark::State& state, const char* query_id) {
  mal::Program plan = ExpandedPlan(query_id, static_cast<int>(state.range(0)));
  analysis::CheckContext ctx;
  ctx.program = &plan;
  ctx.registry = engine::ModuleRegistry::Default();
  for (auto _ : state) {
    std::vector<analysis::Diagnostic> diags =
        analysis::Runner::Default().Run(ctx);
    benchmark::DoNotOptimize(diags);
  }
  state.counters["plan_instructions"] = static_cast<double>(plan.size());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(plan.size()));
}

void BM_SummaryDiff(benchmark::State& state, const char* query_id) {
  mal::Program plan = ExpandedPlan(query_id, static_cast<int>(state.range(0)));
  analysis::PlanSummary before = analysis::SummarizeObservable(plan);
  for (auto _ : state) {
    analysis::PlanSummary after = analysis::SummarizeObservable(plan);
    Status st = analysis::CheckSummaryEquivalence(before, after, "bench");
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(after);
  }
  state.counters["sink_columns"] = static_cast<double>(before.columns.size());
  state.counters["plan_instructions"] = static_cast<double>(plan.size());
}

/// End-to-end: compile + full default pipeline, which now re-lints and
/// re-diffs the plan after every pass that fired.
void BM_PipelineWithDiffer(benchmark::State& state, const char* query_id) {
  storage::Catalog& catalog = bench::SharedCatalog(0.01);
  auto base =
      sql::Compiler::CompileSql(&catalog, tpch::GetQuery(query_id).value().sql);
  if (!base.ok()) {
    state.SkipWithError("compile failed");
    return;
  }
  int pieces = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mal::Program plan = base.value();
    optimizer::Pipeline pipeline = optimizer::Pipeline::Default(pieces);
    auto fired = pipeline.Run(&plan);
    if (!fired.ok()) {
      state.SkipWithError(fired.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(plan);
  }
}

void BM_AbsintQ1(benchmark::State& state) { BM_AbstractInterpret(state, "q1"); }
void BM_AbsintQ3(benchmark::State& state) { BM_AbstractInterpret(state, "q3"); }
void BM_LintQ1(benchmark::State& state) { BM_LintSuite(state, "q1"); }
void BM_LintQ3(benchmark::State& state) { BM_LintSuite(state, "q3"); }
void BM_DiffQ1(benchmark::State& state) { BM_SummaryDiff(state, "q1"); }
void BM_PipelineQ1(benchmark::State& state) {
  BM_PipelineWithDiffer(state, "q1");
}
void BM_PipelineQ6(benchmark::State& state) {
  BM_PipelineWithDiffer(state, "q6");
}

BENCHMARK(BM_AbsintQ1)->Arg(0)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AbsintQ3)->Arg(0)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LintQ1)->Arg(0)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LintQ3)->Arg(0)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DiffQ1)->Arg(0)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PipelineQ1)->Arg(0)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PipelineQ6)->Arg(0)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
