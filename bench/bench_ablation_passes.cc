// Ablation: what each optimizer pass contributes (DESIGN.md calls out the
// pass pipeline as a design choice). Measures, per TPC-H query, the plan
// size and execution time with passes selectively disabled:
//   none            unoptimized codegen output
//   +fold+cse+dce   scalar folding, dedup, dead-code only
//   +mitosis        the full default pipeline (8 pieces)
// Shape expectation: fold/cse/dce shrink or keep plan size (never hurt
// runtime); mitosis grows the plan (more, smaller instructions) to buy
// dataflow parallelism.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/interpreter.h"
#include "optimizer/pass.h"
#include "sql/compiler.h"

namespace {

using namespace stetho;

enum class PipelineKind : int { kNone = 0, kCleanupOnly = 1, kFull = 2 };

optimizer::Pipeline MakePipeline(PipelineKind kind) {
  optimizer::Pipeline pipeline;
  if (kind == PipelineKind::kNone) return pipeline;
  pipeline.Add(optimizer::MakeConstantFoldingPass());
  pipeline.Add(optimizer::MakeCommonSubexpressionPass());
  pipeline.Add(optimizer::MakeDeadCodePass());
  if (kind == PipelineKind::kFull) {
    pipeline.Add(optimizer::MakeMitosisPass(8));
    pipeline.Add(optimizer::MakeDataflowMarkerPass());
  }
  return pipeline;
}

void RunAblation(benchmark::State& state, const char* query_id) {
  PipelineKind kind = static_cast<PipelineKind>(state.range(0));
  storage::Catalog& catalog = bench::SharedCatalog(0.01);
  auto base = sql::Compiler::CompileSql(
      &catalog, tpch::GetQuery(query_id).value().sql);
  if (!base.ok()) {
    state.SkipWithError("compile failed");
    return;
  }
  mal::Program plan = std::move(base).value();
  optimizer::Pipeline pipeline = MakePipeline(kind);
  auto fired = pipeline.Run(&plan);
  if (!fired.ok()) {
    state.SkipWithError("pipeline failed");
    return;
  }
  engine::Interpreter interp(&catalog);
  engine::ExecOptions opts;
  opts.num_threads = 4;
  for (auto _ : state) {
    auto r = interp.Execute(plan, opts);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["plan_instructions"] = static_cast<double>(plan.size());
  switch (kind) {
    case PipelineKind::kNone:
      state.SetLabel("no passes");
      break;
    case PipelineKind::kCleanupOnly:
      state.SetLabel("fold+cse+dce");
      break;
    case PipelineKind::kFull:
      state.SetLabel("fold+cse+dce+mitosis(8)");
      break;
  }
}

void BM_AblationQ1(benchmark::State& state) { RunAblation(state, "q1"); }
void BM_AblationQ3(benchmark::State& state) { RunAblation(state, "q3"); }
void BM_AblationQ6(benchmark::State& state) { RunAblation(state, "q6"); }
void BM_AblationScanHeavy(benchmark::State& state) {
  RunAblation(state, "scan_heavy");
}

BENCHMARK(BM_AblationQ1)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AblationQ3)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AblationQ6)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AblationScanHeavy)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

/// CSE effectiveness in isolation: how many duplicate instructions each
/// query's raw codegen carries.
void BM_CseReduction(benchmark::State& state) {
  storage::Catalog& catalog = bench::SharedCatalog(0.01);
  size_t before_total = 0;
  size_t after_total = 0;
  for (auto _ : state) {
    before_total = 0;
    after_total = 0;
    for (const auto& q : tpch::TpchQueries()) {
      auto base = sql::Compiler::CompileSql(&catalog, q.sql);
      if (!base.ok()) continue;
      before_total += base.value().size();
      mal::Program plan = std::move(base).value();
      auto pass = optimizer::MakeCommonSubexpressionPass();
      (void)pass->Run(&plan);
      auto dce = optimizer::MakeDeadCodePass();
      (void)dce->Run(&plan);
      after_total += plan.size();
    }
  }
  state.counters["instructions_before"] = static_cast<double>(before_total);
  state.counters["instructions_after"] = static_cast<double>(after_total);
}
BENCHMARK(BM_CseReduction)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
