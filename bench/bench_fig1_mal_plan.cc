// Experiment F1 (paper Fig. 1): the MAL plan for
//   select l_tax from lineitem where l_partkey = 1
// Regenerates the figure (printed below) and measures every stage of plan
// production: SQL parse, MAL code generation, optimization, execution.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/interpreter.h"
#include "mal/parser.h"
#include "optimizer/pass.h"
#include "sql/compiler.h"
#include "sql/parser.h"

namespace {

using namespace stetho;

const char* kPaperSql = "select l_tax from lineitem where l_partkey = 1";

void BM_ParseSql(benchmark::State& state) {
  for (auto _ : state) {
    auto stmt = sql::ParseSelect(kPaperSql);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseSql);

void BM_CompileToMal(benchmark::State& state) {
  storage::Catalog& catalog = bench::SharedCatalog();
  for (auto _ : state) {
    auto program = sql::Compiler::CompileSql(&catalog, kPaperSql);
    benchmark::DoNotOptimize(program);
  }
  auto program = sql::Compiler::CompileSql(&catalog, kPaperSql);
  state.counters["plan_instructions"] =
      static_cast<double>(program.value().size());
}
BENCHMARK(BM_CompileToMal);

void BM_OptimizePlan(benchmark::State& state) {
  storage::Catalog& catalog = bench::SharedCatalog();
  auto base = sql::Compiler::CompileSql(&catalog, kPaperSql);
  optimizer::Pipeline pipeline =
      optimizer::Pipeline::Default(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    mal::Program copy = base.value();
    auto fired = pipeline.Run(&copy);
    benchmark::DoNotOptimize(fired);
  }
  mal::Program copy = base.value();
  (void)pipeline.Run(&copy);
  state.counters["optimized_instructions"] = static_cast<double>(copy.size());
}
BENCHMARK(BM_OptimizePlan)->Arg(0)->Arg(4)->Arg(16);

void BM_ExecutePaperQuery(benchmark::State& state) {
  server::MserverOptions options;
  options.dop = static_cast<int>(state.range(0));
  options.mitosis_pieces = options.dop;
  auto server = bench::MakeServer(options);
  for (auto _ : state) {
    auto outcome = server->ExecuteSql(kPaperSql);
    if (!outcome.ok()) state.SkipWithError(outcome.status().ToString().c_str());
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_ExecutePaperQuery)->Arg(1)->Arg(4);

void BM_PlanListingRoundTrip(benchmark::State& state) {
  storage::Catalog& catalog = bench::SharedCatalog();
  auto program = sql::Compiler::CompileSql(&catalog, kPaperSql);
  for (auto _ : state) {
    std::string text = program.value().ToString();
    auto parsed = mal::ParseProgram(text);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_PlanListingRoundTrip);

}  // namespace

int main(int argc, char** argv) {
  // Regenerate the figure itself.
  using namespace stetho;
  auto server = bench::MakeServer();
  auto outcome = server->ExecuteSql(kPaperSql);
  if (outcome.ok()) {
    std::printf("=== Fig. 1: MAL plan for \"%s\" ===\n%s\n", kPaperSql,
                outcome.value().plan.ToString().c_str());
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
