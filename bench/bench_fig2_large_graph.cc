// Experiment F2 (paper Fig. 2 + feature claim §1(5)): large query plan
// graphs — "Support for large query plans with graph representation of more
// than 1000 nodes."
//
// Mitosis-partitioned plans are swept from tens to thousands of nodes; each
// stage of the visualization pipeline (dot generation, dot parsing, layered
// layout, glyph scene construction) is timed per size. The paper's claim
// holds when every stage stays interactive (well under a second) beyond
// 1000 nodes.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "dot/parser.h"
#include "dot/writer.h"
#include "layout/layout_cache.h"
#include "layout/sugiyama.h"
#include "viz/virtual_space.h"

namespace {

using namespace stetho;

/// Builds the mitosis-inflated plan for `pieces` partitions.
mal::Program PlanWithPieces(int pieces) {
  server::MserverOptions options;
  options.mitosis_pieces = pieces;
  auto server = bench::MakeServer(options, /*scale_factor=*/0.001);
  auto plan = server->Explain(tpch::GetQuery("scan_heavy").value().sql);
  if (!plan.ok()) std::abort();
  return std::move(plan).value();
}

void SetNodeCounters(benchmark::State& state, const dot::Graph& graph) {
  state.counters["nodes"] = static_cast<double>(graph.num_nodes());
  state.counters["edges"] = static_cast<double>(graph.num_edges());
}

void BM_DotGenerate(benchmark::State& state) {
  mal::Program plan = PlanWithPieces(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::string text = dot::ProgramToDot(plan);
    benchmark::DoNotOptimize(text);
  }
  auto graph = dot::ParseDot(dot::ProgramToDot(plan));
  SetNodeCounters(state, graph.value());
}
BENCHMARK(BM_DotGenerate)->Arg(0)->Arg(8)->Arg(32)->Arg(128)->Arg(256);

void BM_DotParse(benchmark::State& state) {
  mal::Program plan = PlanWithPieces(static_cast<int>(state.range(0)));
  std::string text = dot::ProgramToDot(plan);
  for (auto _ : state) {
    auto graph = dot::ParseDot(text);
    benchmark::DoNotOptimize(graph);
  }
  SetNodeCounters(state, dot::ParseDot(text).value());
}
BENCHMARK(BM_DotParse)->Arg(0)->Arg(8)->Arg(32)->Arg(128)->Arg(256);

void BM_Layout(benchmark::State& state) {
  mal::Program plan = PlanWithPieces(static_cast<int>(state.range(0)));
  dot::Graph graph = dot::ProgramToGraph(plan);
  for (auto _ : state) {
    auto layout = layout::LayoutGraph(graph);
    benchmark::DoNotOptimize(layout);
  }
  auto layout = layout::LayoutGraph(graph);
  SetNodeCounters(state, graph);
  state.counters["crossings"] =
      static_cast<double>(layout.value().crossings);
}
BENCHMARK(BM_Layout)->Arg(0)->Arg(8)->Arg(32)->Arg(128)->Arg(256);

void BM_SceneBuild(benchmark::State& state) {
  mal::Program plan = PlanWithPieces(static_cast<int>(state.range(0)));
  dot::Graph graph = dot::ProgramToGraph(plan);
  auto layout = layout::LayoutGraph(graph);
  for (auto _ : state) {
    viz::VirtualSpace space;
    viz::BuildScene(graph, layout.value(), &space);
    benchmark::DoNotOptimize(space.size());
  }
  viz::VirtualSpace space;
  viz::BuildScene(graph, layout.value(), &space);
  SetNodeCounters(state, graph);
  state.counters["glyphs"] = static_cast<double>(space.size());
}
BENCHMARK(BM_SceneBuild)->Arg(0)->Arg(8)->Arg(32)->Arg(128)->Arg(256);

/// Whole pipeline at the paper's ">1000 nodes" scale, swept past 2000
/// nodes (pieces=256) where the interactive-scale work matters most.
void BM_FullPipelineLargeGraph(benchmark::State& state) {
  mal::Program plan = PlanWithPieces(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::string text = dot::ProgramToDot(plan);
    auto graph = dot::ParseDot(text);
    auto layout = layout::LayoutGraph(graph.value());
    viz::VirtualSpace space;
    viz::BuildScene(graph.value(), layout.value(), &space);
    benchmark::DoNotOptimize(space.size());
  }
  auto graph = dot::ParseDot(dot::ProgramToDot(plan));
  SetNodeCounters(state, graph.value());
}
BENCHMARK(BM_FullPipelineLargeGraph)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

/// Same pipeline, layout served from the content-hash cache — the steady
/// state of replay seeks, session re-focus, and repeated monitoring runs
/// of an unchanged plan.
void BM_FullPipelineWarmLayoutCache(benchmark::State& state) {
  mal::Program plan = PlanWithPieces(static_cast<int>(state.range(0)));
  layout::LayoutCache cache(4);
  {
    auto graph = dot::ParseDot(dot::ProgramToDot(plan));
    (void)cache.GetOrCompute(graph.value());
  }
  for (auto _ : state) {
    std::string text = dot::ProgramToDot(plan);
    auto graph = dot::ParseDot(text);
    auto layout = cache.GetOrCompute(graph.value());
    viz::VirtualSpace space;
    viz::BuildScene(graph.value(), *layout.value(), &space);
    benchmark::DoNotOptimize(space.size());
  }
  auto graph = dot::ParseDot(dot::ProgramToDot(plan));
  SetNodeCounters(state, graph.value());
}
BENCHMARK(BM_FullPipelineWarmLayoutCache)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

/// Interactive re-entry: the plan is unchanged and already parsed — what a
/// replay seek or session re-focus actually pays for geometry + glyphs: a
/// layout-cache hit plus scene construction. (Coloring updates on a live
/// scene are cheaper still — dirty-glyph deltas, see bench_layout.)
void BM_InteractiveReentry(benchmark::State& state) {
  mal::Program plan = PlanWithPieces(static_cast<int>(state.range(0)));
  dot::Graph graph = dot::ProgramToGraph(plan);
  layout::LayoutCache cache(4);
  (void)cache.GetOrCompute(graph);
  for (auto _ : state) {
    auto layout = cache.GetOrCompute(graph);
    viz::VirtualSpace space;
    viz::BuildScene(graph, *layout.value(), &space);
    benchmark::DoNotOptimize(space.size());
  }
  SetNodeCounters(state, graph);
}
BENCHMARK(BM_InteractiveReentry)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace stetho;
  std::printf("=== Fig. 2: plan size vs mitosis partitions ===\n");
  std::printf("%-10s %-8s %-8s\n", "pieces", "nodes", "edges");
  for (int pieces : {0, 8, 32, 128, 256}) {
    mal::Program plan = PlanWithPieces(pieces);
    dot::Graph graph = dot::ProgramToGraph(plan);
    std::printf("%-10d %-8zu %-8zu%s\n", pieces, graph.num_nodes(),
                graph.num_edges(),
                graph.num_nodes() > 1000 ? "   <-- exceeds 1000 nodes" : "");
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
