// Experiment LAYOUT (interactive-scale front end): micro costs of the
// layout/render optimizations that make the F2/C6 pipeline interactive at
// multi-thousand-node plans.
//
// Four before/after pairs, each with its slow path kept as the oracle:
//   - crossing counting: BIT O(E log E) vs the naive pairwise scan,
//   - layout with a cold vs warm LayoutCache (content-hash LRU),
//   - sequential vs pooled per-layer ordering sweeps,
//   - full re-rasterization vs dirty-rect incremental deltas.
// EXPERIMENTS.md § LAYOUT records the acceptance numbers.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/worker_pool.h"
#include "layout/layout_cache.h"
#include "layout/sugiyama.h"
#include "viz/raster.h"
#include "viz/renderer.h"
#include "viz/virtual_space.h"

namespace {

using namespace stetho;

/// Random layered DAG: `layers` ranks of `per_layer` nodes, each node wired
/// to ~edge_prob of the previous rank (same shape as the layout property
/// tests, sized up for measurement).
dot::Graph RandomLayeredDag(uint64_t seed, int layers, int per_layer,
                            double edge_prob) {
  SplitMix64 rng(seed);
  dot::Graph graph("bench");
  for (int l = 0; l < layers; ++l) {
    for (int i = 0; i < per_layer; ++i) {
      int id = l * per_layer + i;
      graph.AddNode("n" + std::to_string(id)).attrs["label"] =
          "X_" + std::to_string(id) + " := algebra.select(...)";
    }
  }
  for (int l = 1; l < layers; ++l) {
    for (int i = 0; i < per_layer; ++i) {
      bool has_parent = false;
      for (int j = 0; j < per_layer; ++j) {
        if (rng.NextBool(edge_prob)) {
          graph.AddEdge("n" + std::to_string((l - 1) * per_layer + j),
                        "n" + std::to_string(l * per_layer + i));
          has_parent = true;
        }
      }
      if (!has_parent) {
        graph.AddEdge("n" + std::to_string((l - 1) * per_layer + i % per_layer),
                      "n" + std::to_string(l * per_layer + i));
      }
    }
  }
  return graph;
}

/// ~n-node graph with enough edge density that crossing counting dominates.
dot::Graph DagWithNodes(int n) {
  int per_layer = 40;
  int layers = (n + per_layer - 1) / per_layer;
  return RandomLayeredDag(/*seed=*/7, layers, per_layer, /*edge_prob=*/0.12);
}

void BM_CountCrossingsBIT(benchmark::State& state) {
  dot::Graph graph = DagWithNodes(static_cast<int>(state.range(0)));
  auto layout = layout::LayoutGraph(graph);
  for (auto _ : state) {
    int64_t c = layout::CountCrossings(graph, layout.value());
    benchmark::DoNotOptimize(c);
  }
  state.counters["edges"] = static_cast<double>(graph.num_edges());
  state.counters["crossings"] =
      static_cast<double>(layout::CountCrossings(graph, layout.value()));
}
BENCHMARK(BM_CountCrossingsBIT)->Arg(500)->Arg(2000);

void BM_CountCrossingsNaive(benchmark::State& state) {
  dot::Graph graph = DagWithNodes(static_cast<int>(state.range(0)));
  auto layout = layout::LayoutGraph(graph);
  for (auto _ : state) {
    int64_t c = layout::CountCrossingsNaive(graph, layout.value());
    benchmark::DoNotOptimize(c);
  }
  state.counters["edges"] = static_cast<double>(graph.num_edges());
}
BENCHMARK(BM_CountCrossingsNaive)->Arg(500)->Arg(2000);

void BM_LayoutColdCache(benchmark::State& state) {
  dot::Graph graph = DagWithNodes(static_cast<int>(state.range(0)));
  layout::LayoutCache cache(8);
  for (auto _ : state) {
    cache.Clear();
    auto layout = cache.GetOrCompute(graph);
    benchmark::DoNotOptimize(layout);
  }
}
BENCHMARK(BM_LayoutColdCache)->Arg(500)->Arg(2000);

void BM_LayoutWarmCache(benchmark::State& state) {
  dot::Graph graph = DagWithNodes(static_cast<int>(state.range(0)));
  layout::LayoutCache cache(8);
  (void)cache.GetOrCompute(graph);
  for (auto _ : state) {
    auto layout = cache.GetOrCompute(graph);
    benchmark::DoNotOptimize(layout);
  }
  state.SetLabel("content hash + LRU lookup");
}
BENCHMARK(BM_LayoutWarmCache)->Arg(500)->Arg(2000);

void BM_LayoutSequential(benchmark::State& state) {
  dot::Graph graph = DagWithNodes(static_cast<int>(state.range(0)));
  layout::LayoutOptions options;
  options.parallel_min_nodes = 1 << 30;  // never parallelize
  for (auto _ : state) {
    auto layout = layout::LayoutGraph(graph, options);
    benchmark::DoNotOptimize(layout);
  }
}
BENCHMARK(BM_LayoutSequential)->Arg(2000);

void BM_LayoutParallel(benchmark::State& state) {
  dot::Graph graph = DagWithNodes(static_cast<int>(state.range(0)));
  engine::WorkerPool* pool = engine::WorkerPool::Default();
  pool->EnsureWorkers(static_cast<int>(state.range(1)));
  layout::LayoutOptions options;
  options.pool = pool;
  options.parallel_min_nodes = 1;
  for (auto _ : state) {
    auto layout = layout::LayoutGraph(graph, options);
    benchmark::DoNotOptimize(layout);
  }
  state.counters["workers"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_LayoutParallel)->Args({2000, 2})->Args({2000, 4});

/// Scene with n glyphs; returns the frame renderer + scene for delta work.
struct RasterSetup {
  std::unique_ptr<viz::VirtualSpace> space;
  viz::Frame frame;
  std::vector<int> shapes;
};

viz::Camera MakeCamera() {
  viz::Camera camera(1280, 800);
  camera.MoveTo(600, 400);
  return camera;
}

RasterSetup MakeRasterSetup(int n) {
  RasterSetup s;
  s.space = std::make_unique<viz::VirtualSpace>();
  int cols = 50;
  for (int i = 0; i < n; ++i) {
    viz::Glyph g;
    g.kind = viz::GlyphKind::kShape;
    g.x = static_cast<double>(i % cols) * 24.0;
    g.y = static_cast<double>(i / cols) * 24.0;
    g.width = 20.0;
    g.height = 16.0;
    g.fill = viz::Color::White();
    s.shapes.push_back(s.space->AddGlyph(g));
  }
  s.frame = viz::Renderer::RenderFrame(*s.space, MakeCamera());
  return s;
}

void BM_FullRasterRedraw(benchmark::State& state) {
  RasterSetup s = MakeRasterSetup(static_cast<int>(state.range(0)));
  viz::Camera camera = MakeCamera();
  int i = 0;
  for (auto _ : state) {
    int glyph = s.shapes[static_cast<size_t>(i++) % s.shapes.size()];
    (void)s.space->MutateGlyph(glyph, [&](viz::Glyph* g) {
      g->fill = (i % 2) != 0 ? viz::Color::Red() : viz::Color::Green();
    });
    viz::Frame frame = viz::Renderer::RenderFrame(*s.space, camera);
    viz::Raster raster = viz::RasterizeFrame(frame);
    benchmark::DoNotOptimize(raster.At(0, 0));
  }
}
BENCHMARK(BM_FullRasterRedraw)->Arg(500)->Arg(2000)->Unit(benchmark::kMicrosecond);

void BM_IncrementalRasterDelta(benchmark::State& state) {
  RasterSetup s = MakeRasterSetup(static_cast<int>(state.range(0)));
  viz::Camera camera = MakeCamera();
  viz::IncrementalRasterizer inc(1280, 800);
  inc.Draw(s.frame);
  int64_t epoch = s.frame.epoch;
  int i = 0;
  for (auto _ : state) {
    int glyph = s.shapes[static_cast<size_t>(i++) % s.shapes.size()];
    (void)s.space->MutateGlyph(glyph, [&](viz::Glyph* g) {
      g->fill = (i % 2) != 0 ? viz::Color::Red() : viz::Color::Green();
    });
    viz::Frame delta = viz::Renderer::RenderDelta(*s.space, camera, epoch);
    epoch = delta.epoch;
    if (!inc.ApplyDelta(delta).ok()) {
      state.SkipWithError("delta rejected");
      return;
    }
    benchmark::DoNotOptimize(inc.raster().At(0, 0));
  }
  state.counters["redrawn_last"] = static_cast<double>(inc.last_redrawn());
}
BENCHMARK(BM_IncrementalRasterDelta)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
