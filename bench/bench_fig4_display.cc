// Experiment F4 (paper Fig. 4): the display window — a MAL plan graph with
// colored execution state, navigated by a zoomable camera.
//
// Measures the rendering side of the Stethoscope: headless frame rendering
// at different zoom levels and graph sizes, lens-distorted rendering,
// frame-to-SVG serialization, and the end-to-end "display a replayed
// query" pipeline that regenerates the figure.

#include <benchmark/benchmark.h>

#include <fstream>

#include "bench_util.h"
#include "dot/parser.h"
#include "dot/writer.h"
#include "scope/replayer.h"
#include "viz/lens.h"
#include "viz/renderer.h"

namespace {

using namespace stetho;

struct Scene {
  dot::Graph graph;
  layout::GraphLayout layout;
  viz::VirtualSpace space;
  std::unique_ptr<viz::Camera> camera;
};

std::unique_ptr<Scene> MakeScene(int pieces) {
  server::MserverOptions options;
  options.mitosis_pieces = pieces;
  auto server = bench::MakeServer(options, 0.001);
  auto plan = server->Explain(tpch::GetQuery("q1").value().sql);
  if (!plan.ok()) std::abort();
  auto scene = std::make_unique<Scene>();
  auto graph = dot::ParseDot(dot::ProgramToDot(plan.value()));
  scene->graph = std::move(graph).value();
  scene->layout = layout::LayoutGraph(scene->graph).value();
  viz::BuildScene(scene->graph, scene->layout, &scene->space);
  scene->camera = std::make_unique<viz::Camera>(1280, 800);
  scene->camera->FitRect(0, 0, scene->layout.width, scene->layout.height);
  return scene;
}

void BM_RenderFrame(benchmark::State& state) {
  auto scene = MakeScene(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    viz::Frame frame = viz::Renderer::RenderFrame(scene->space, *scene->camera);
    benchmark::DoNotOptimize(frame.commands.size());
  }
  state.counters["glyphs"] = static_cast<double>(scene->space.size());
}
BENCHMARK(BM_RenderFrame)->Arg(0)->Arg(16)->Arg(64);

void BM_RenderFrameZoomedIn(benchmark::State& state) {
  // Zoomed to a node: most glyphs culled.
  auto scene = MakeScene(64);
  scene->camera->SetAltitude(0);
  scene->camera->CenterOn(scene->layout.nodes[0].x, scene->layout.nodes[0].y);
  for (auto _ : state) {
    viz::Frame frame = viz::Renderer::RenderFrame(scene->space, *scene->camera);
    benchmark::DoNotOptimize(frame.culled);
  }
  viz::Frame frame = viz::Renderer::RenderFrame(scene->space, *scene->camera);
  state.counters["drawn"] = static_cast<double>(frame.commands.size());
  state.counters["culled"] = static_cast<double>(frame.culled);
}
BENCHMARK(BM_RenderFrameZoomedIn);

void BM_RenderFrameWithLens(benchmark::State& state) {
  auto scene = MakeScene(16);
  viz::FisheyeLens lens(640, 400, 250, 3.0);
  for (auto _ : state) {
    viz::Frame frame =
        viz::Renderer::RenderFrame(scene->space, *scene->camera, &lens);
    benchmark::DoNotOptimize(frame.commands.size());
  }
}
BENCHMARK(BM_RenderFrameWithLens);

void BM_FrameToSvg(benchmark::State& state) {
  auto scene = MakeScene(16);
  viz::Frame frame = viz::Renderer::RenderFrame(scene->space, *scene->camera);
  for (auto _ : state) {
    std::string svg = frame.ToSvg();
    benchmark::DoNotOptimize(svg);
  }
}
BENCHMARK(BM_FrameToSvg);

/// The full Fig.-4 pipeline: trace replay + colored display frame.
void BM_DisplayReplayedQuery(benchmark::State& state) {
  server::MserverOptions options;
  options.dop = 2;
  auto server = bench::MakeServer(options, 0.001);
  auto ring = std::make_shared<profiler::RingBufferSink>(1 << 16);
  server->profiler()->AddSink(ring);
  auto outcome = server->ExecuteSql(tpch::GetQuery("q1").value().sql);
  if (!outcome.ok()) {
    state.SkipWithError("query failed");
    return;
  }
  auto events = ring->Snapshot();
  auto graph = dot::ParseDot(outcome.value().dot);
  for (auto _ : state) {
    scope::ReplayOptions replay;
    replay.render_interval_us = 0;
    auto replayer = scope::OfflineReplayer::Create(graph.value(), events, replay);
    (void)replayer.value()->Play(1e12, events.size());
    viz::Frame frame = replayer.value()->BirdsEyeView();
    benchmark::DoNotOptimize(frame.commands.size());
  }
  state.SetLabel("replay + colored frame");
}
BENCHMARK(BM_DisplayReplayedQuery)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace stetho;
  // Regenerate the display-window artifact.
  server::MserverOptions options;
  options.dop = 2;
  auto server = bench::MakeServer(options, 0.001);
  auto ring = std::make_shared<profiler::RingBufferSink>(1 << 16);
  server->profiler()->AddSink(ring);
  auto outcome = server->ExecuteSql(
      "select l_tax from lineitem where l_partkey = 1");
  if (outcome.ok()) {
    auto graph = dot::ParseDot(outcome.value().dot);
    scope::ReplayOptions replay;
    replay.render_interval_us = 0;
    auto replayer = scope::OfflineReplayer::Create(graph.value(),
                                                   ring->Snapshot(), replay);
    if (replayer.ok()) {
      (void)replayer.value()->Play(1e12, ring->Snapshot().size());
      std::ofstream("fig4_display_window.svg")
          << replayer.value()->BirdsEyeView().ToSvg();
      std::printf("=== Fig. 4 artifact written to fig4_display_window.svg "
                  "(%zu glyphs, all nodes green) ===\n\n",
                  replayer.value()->space()->size());
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
