#include "obs/profile_store.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace stetho::obs {
namespace {

/// Eight buckets per octave: values within one bucket differ by at most
/// 2^(1/8) ≈ 1.09×, so a bucket-center quantile is within ±4.5% of the
/// true sample — an order of magnitude finer than any alerting ratio.
constexpr double kBucketsPerOctave = 8.0;
constexpr int kMaxBucket = 512;  // 2^64 at 8/octave

int BucketIndex(int64_t value) {
  if (value <= 1) return 0;
  int i = static_cast<int>(
      std::llround(std::log2(static_cast<double>(value)) * kBucketsPerOctave));
  return std::clamp(i, 0, kMaxBucket);
}

double BucketCenter(int i) {
  if (i <= 0) return 1.0;
  return std::exp2(static_cast<double>(i) / kBucketsPerOctave);
}

Counter* QueriesCounter() {
  static Counter* c = Registry::Default()->GetOrCreateCounter(
      "stetho_profile_store_queries_total",
      "Completed-query observations folded into the profile store");
  return c;
}

Counter* LoadsCounter() {
  static Counter* c = Registry::Default()->GetOrCreateCounter(
      "stetho_profile_store_loads_total",
      "Journal records (query and aggregate) merged at load time");
  return c;
}

Counter* EvictionsCounter() {
  static Counter* c = Registry::Default()->GetOrCreateCounter(
      "stetho_profile_store_evictions_total",
      "Plan-shape profiles evicted from the in-memory store by the LRU cap");
  return c;
}

Counter* CorruptLinesCounter() {
  static Counter* c = Registry::Default()->GetOrCreateCounter(
      "stetho_profile_store_corrupt_lines_total",
      "Malformed journal lines skipped while loading a profile store");
  return c;
}

bool ParseI64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseHash(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s.c_str(), &end, 16);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

void RobustStat::Observe(int64_t value) {
  value = std::max<int64_t>(0, value);
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  ++count_;
  sum_ += value;
  ++buckets_[BucketIndex(value)];
}

void RobustStat::Merge(const RobustStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
  for (const auto& [bucket, n] : other.buckets_) buckets_[bucket] += n;
}

double RobustStat::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cumulative = 0;
  for (const auto& [bucket, n] : buckets_) {
    cumulative += static_cast<double>(n);
    if (cumulative >= target) return BucketCenter(bucket);
  }
  return BucketCenter(buckets_.rbegin()->first);
}

double RobustStat::Mad() const {
  if (count_ == 0) return 0;
  const double median = Median();
  std::vector<std::pair<double, int64_t>> deviations;
  deviations.reserve(buckets_.size());
  for (const auto& [bucket, n] : buckets_) {
    deviations.emplace_back(std::abs(BucketCenter(bucket) - median), n);
  }
  std::sort(deviations.begin(), deviations.end());
  const double target = 0.5 * static_cast<double>(count_);
  double cumulative = 0;
  for (const auto& [deviation, n] : deviations) {
    cumulative += static_cast<double>(n);
    if (cumulative >= target) return deviation;
  }
  return deviations.back().first;
}

std::string RobustStat::Serialize() const {
  std::string out = StrFormat(
      "%lld,%lld,%lld,%lld", static_cast<long long>(count_),
      static_cast<long long>(sum_), static_cast<long long>(min_),
      static_cast<long long>(max_));
  for (const auto& [bucket, n] : buckets_) {
    out += StrFormat(",%d:%lld", bucket, static_cast<long long>(n));
  }
  return out;
}

bool RobustStat::Parse(const std::string& text, RobustStat* out) {
  RobustStat stat;
  std::vector<std::string> fields = Split(text, ',');
  if (fields.size() < 4) return false;
  if (!ParseI64(fields[0], &stat.count_) || !ParseI64(fields[1], &stat.sum_) ||
      !ParseI64(fields[2], &stat.min_) || !ParseI64(fields[3], &stat.max_)) {
    return false;
  }
  int64_t bucket_total = 0;
  for (size_t i = 4; i < fields.size(); ++i) {
    std::vector<std::string> pair = Split(fields[i], ':');
    int64_t bucket = 0;
    int64_t n = 0;
    if (pair.size() != 2 || !ParseI64(pair[0], &bucket) ||
        !ParseI64(pair[1], &n) || bucket < 0 || bucket > kMaxBucket ||
        n <= 0) {
      return false;
    }
    stat.buckets_[static_cast<int>(bucket)] += n;
    bucket_total += n;
  }
  if (stat.count_ < 0 || bucket_total != stat.count_) return false;
  *out = std::move(stat);
  return true;
}

void PlanProfile::Fold(const QueryObservation& observation) {
  shape_hash = observation.shape_hash;
  plan_size = std::max(plan_size, observation.plan_size);
  ++queries;
  total_usec.Observe(observation.total_usec);
  for (const PcSample& sample : observation.pcs) {
    if (sample.pc < 0) continue;
    if (static_cast<size_t>(sample.pc) >= pcs.size()) {
      pcs.resize(static_cast<size_t>(sample.pc) + 1);
    }
    PcStats& stats = pcs[static_cast<size_t>(sample.pc)];
    stats.usec.Observe(sample.usec);
    stats.bytes.Observe(sample.bytes);
    stats.concurrency.Observe(sample.concurrency);
  }
}

void PlanProfile::Merge(const PlanProfile& other) {
  shape_hash = other.shape_hash;
  plan_size = std::max(plan_size, other.plan_size);
  queries += other.queries;
  total_usec.Merge(other.total_usec);
  if (other.pcs.size() > pcs.size()) pcs.resize(other.pcs.size());
  for (size_t pc = 0; pc < other.pcs.size(); ++pc) {
    pcs[pc].usec.Merge(other.pcs[pc].usec);
    pcs[pc].bytes.Merge(other.pcs[pc].bytes);
    pcs[pc].concurrency.Merge(other.pcs[pc].concurrency);
  }
}

ProfileStore::ProfileStore(ProfileStoreOptions options)
    : capacity_(options.capacity == 0 ? 1 : options.capacity) {
  if (!options.dir.empty()) (void)OpenDir(options.dir);
}

ProfileStore::~ProfileStore() {
  if (journal_ != nullptr) std::fclose(journal_);
}

Status ProfileStore::Fold(const QueryObservation& observation) {
  if (observation.shape_hash == 0) {
    return Status::InvalidArgument("observation carries no plan-shape hash");
  }
  std::lock_guard<std::mutex> lock(mu_);
  QueriesCounter()->Increment();
  return FoldLocked(observation);
}

Status ProfileStore::FoldLocked(const QueryObservation& observation) {
  auto it = profiles_.find(observation.shape_hash);
  if (it == profiles_.end()) {
    it = profiles_
             .emplace(observation.shape_hash, std::make_unique<PlanProfile>())
             .first;
    lru_.push_front(observation.shape_hash);
  } else {
    TouchLocked(observation.shape_hash);
  }
  it->second->Fold(observation);
  EvictLocked();
  return AppendJournalLocked(observation);
}

std::shared_ptr<const PlanProfile> ProfileStore::Lookup(
    uint64_t shape_hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = profiles_.find(shape_hash);
  if (it == profiles_.end()) return nullptr;
  TouchLocked(shape_hash);
  return std::make_shared<const PlanProfile>(*it->second);
}

void ProfileStore::TouchLocked(uint64_t shape_hash) const {
  lru_.remove(shape_hash);
  lru_.push_front(shape_hash);
}

void ProfileStore::EvictLocked() {
  while (lru_.size() > capacity_) {
    profiles_.erase(lru_.back());
    lru_.pop_back();
    EvictionsCounter()->Increment();
  }
}

Status ProfileStore::ParseLine(const std::string& line) {
  std::vector<std::string> tokens = Split(line, ' ');
  // Split keeps empty tokens for repeated separators; drop them so the
  // format survives cosmetic whitespace.
  tokens.erase(std::remove_if(tokens.begin(), tokens.end(),
                              [](const std::string& t) { return t.empty(); }),
               tokens.end());
  if (tokens.empty()) return Status::OK();  // blank line
  if (tokens[0] == "#") return Status::OK();  // comment
  if (tokens[0] == "q") {
    // q <hash> <plan_size> <total_usec> [<pc>:<usec>:<bytes>:<conc>]*
    if (tokens.size() < 4) return Status::InvalidArgument("short q record");
    QueryObservation observation;
    int64_t plan_size = 0;
    if (!ParseHash(tokens[1], &observation.shape_hash) ||
        observation.shape_hash == 0 || !ParseI64(tokens[2], &plan_size) ||
        plan_size < 0 || !ParseI64(tokens[3], &observation.total_usec)) {
      return Status::InvalidArgument("malformed q record");
    }
    observation.plan_size = static_cast<size_t>(plan_size);
    for (size_t i = 4; i < tokens.size(); ++i) {
      std::vector<std::string> f = Split(tokens[i], ':');
      int64_t pc = 0;
      int64_t conc = 0;
      PcSample sample;
      if (f.size() != 4 || !ParseI64(f[0], &pc) || pc < 0 ||
          !ParseI64(f[1], &sample.usec) || !ParseI64(f[2], &sample.bytes) ||
          !ParseI64(f[3], &conc)) {
        return Status::InvalidArgument("malformed pc sample");
      }
      sample.pc = static_cast<int>(pc);
      sample.concurrency = static_cast<int>(conc);
      observation.pcs.push_back(sample);
    }
    LoadsCounter()->Increment();
    // Journal replay must not re-journal: stash and restore the path.
    std::string path;
    std::swap(path, journal_path_);
    Status st = FoldLocked(observation);
    std::swap(path, journal_path_);
    return st;
  }
  if (tokens[0] == "p") {
    // p <hash> <plan_size> <queries> <total-stat> [<pc>=<u>/<b>/<c>]*
    if (tokens.size() < 5) return Status::InvalidArgument("short p record");
    PlanProfile profile;
    int64_t plan_size = 0;
    if (!ParseHash(tokens[1], &profile.shape_hash) ||
        profile.shape_hash == 0 || !ParseI64(tokens[2], &plan_size) ||
        plan_size < 0 || !ParseI64(tokens[3], &profile.queries) ||
        profile.queries <= 0 ||
        !RobustStat::Parse(tokens[4], &profile.total_usec)) {
      return Status::InvalidArgument("malformed p record");
    }
    profile.plan_size = static_cast<size_t>(plan_size);
    for (size_t i = 5; i < tokens.size(); ++i) {
      size_t eq = tokens[i].find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("malformed pc stats");
      }
      int64_t pc = 0;
      if (!ParseI64(tokens[i].substr(0, eq), &pc) || pc < 0) {
        return Status::InvalidArgument("malformed pc index");
      }
      std::vector<std::string> stats = Split(tokens[i].substr(eq + 1), '/');
      PcStats parsed;
      if (stats.size() != 3 || !RobustStat::Parse(stats[0], &parsed.usec) ||
          !RobustStat::Parse(stats[1], &parsed.bytes) ||
          !RobustStat::Parse(stats[2], &parsed.concurrency)) {
        return Status::InvalidArgument("malformed pc stats");
      }
      if (static_cast<size_t>(pc) >= profile.pcs.size()) {
        profile.pcs.resize(static_cast<size_t>(pc) + 1);
      }
      profile.pcs[static_cast<size_t>(pc)] = std::move(parsed);
    }
    LoadsCounter()->Increment();
    auto it = profiles_.find(profile.shape_hash);
    if (it == profiles_.end()) {
      it = profiles_
               .emplace(profile.shape_hash, std::make_unique<PlanProfile>())
               .first;
      lru_.push_front(profile.shape_hash);
    } else {
      TouchLocked(profile.shape_hash);
    }
    it->second->Merge(profile);
    EvictLocked();
    return Status::OK();
  }
  return Status::InvalidArgument("unknown record kind");
}

Status ProfileStore::LoadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::IoError("cannot open profile store '" + path + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::string line;
  int c;
  while (true) {
    c = std::fgetc(f);
    if (c == '\n' || c == EOF) {
      if (!line.empty()) {
        if (!ParseLine(line).ok()) {
          ++corrupt_lines_;
          CorruptLinesCounter()->Increment();
        }
        line.clear();
      }
      if (c == EOF) break;
    } else {
      line.push_back(static_cast<char>(c));
    }
  }
  std::fclose(f);
  return Status::OK();
}

Status ProfileStore::SaveFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot write profile store '" + path + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [hash, profile] : profiles_) {
    std::string line = StrFormat(
        "p %016llx %zu %lld %s", static_cast<unsigned long long>(hash),
        profile->plan_size, static_cast<long long>(profile->queries),
        profile->total_usec.Serialize().c_str());
    for (size_t pc = 0; pc < profile->pcs.size(); ++pc) {
      const PcStats& stats = profile->pcs[pc];
      if (stats.usec.count() == 0 && stats.bytes.count() == 0) continue;
      line += StrFormat(" %zu=%s/%s/%s", pc,
                        stats.usec.Serialize().c_str(),
                        stats.bytes.Serialize().c_str(),
                        stats.concurrency.Serialize().c_str());
    }
    line += '\n';
    if (std::fputs(line.c_str(), f) == EOF) {
      std::fclose(f);
      return Status::IoError("write failed for '" + path + "'");
    }
  }
  std::fclose(f);
  return Status::OK();
}

Status ProfileStore::OpenDir(const std::string& dir) {
  const std::string path = dir + "/profile.journal";
  // Merge whatever history the journal holds (a missing journal is a fresh
  // store, not an error), then rewrite it compacted and append from there.
  if (std::FILE* probe = std::fopen(path.c_str(), "r")) {
    std::fclose(probe);
    STETHO_RETURN_IF_ERROR(LoadFile(path));
    STETHO_RETURN_IF_ERROR(SaveFile(path));
  }
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    return Status::IoError("cannot open profile journal '" + path + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (journal_ != nullptr) std::fclose(journal_);
  journal_ = f;
  journal_path_ = path;
  return Status::OK();
}

Status ProfileStore::AppendJournalLocked(const QueryObservation& observation) {
  if (journal_path_.empty() || journal_ == nullptr) return Status::OK();
  std::string line = StrFormat(
      "q %016llx %zu %lld",
      static_cast<unsigned long long>(observation.shape_hash),
      observation.plan_size, static_cast<long long>(observation.total_usec));
  for (const PcSample& sample : observation.pcs) {
    line += StrFormat(" %d:%lld:%lld:%d", sample.pc,
                      static_cast<long long>(sample.usec),
                      static_cast<long long>(sample.bytes),
                      sample.concurrency);
  }
  line += '\n';
  if (std::fputs(line.c_str(), journal_) == EOF) {
    return Status::IoError("profile journal append failed");
  }
  std::fflush(journal_);
  return Status::OK();
}

size_t ProfileStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return profiles_.size();
}

int64_t ProfileStore::corrupt_lines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return corrupt_lines_;
}

ProfileStore* ProfileStore::Default() {
  static ProfileStore* store = [] {
    ProfileStoreOptions options;
    if (const char* dir = std::getenv("STETHO_PROFILE_DIR");
        dir != nullptr && dir[0] != '\0') {
      options.dir = dir;
    }
    return new ProfileStore(options);
  }();
  return store;
}

}  // namespace stetho::obs
