#include "obs/trace_export.h"

#include <cctype>
#include <cstdlib>
#include <map>

#include "common/string_util.h"

namespace stetho::obs {
namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          *out += c;
        }
    }
  }
}

/// Minimal JSON reader covering what WriteChromeTrace emits (and the usual
/// Chrome/Perfetto variations): objects, arrays, strings with escapes,
/// integer/float numbers, true/false/null. Parsed values are flattened into
/// just the shapes the span loader needs.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    STETHO_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError(
          StrFormat("trailing content at offset %zu", pos_));
    }
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  Status Expect(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Status::ParseError(
          StrFormat("expected '%c' at offset %zu", c, pos_));
    }
    ++pos_;
    return Status::OK();
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Status::ParseError("unexpected end");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    STETHO_RETURN_IF_ERROR(Expect('{'));
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      STETHO_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      STETHO_RETURN_IF_ERROR(Expect(':'));
      STETHO_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      value.object.emplace(std::move(key.str), std::move(member));
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        SkipSpace();
        continue;
      }
      STETHO_RETURN_IF_ERROR(Expect('}'));
      return value;
    }
  }

  Result<JsonValue> ParseArray() {
    STETHO_RETURN_IF_ERROR(Expect('['));
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      STETHO_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      value.array.push_back(std::move(element));
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      STETHO_RETURN_IF_ERROR(Expect(']'));
      return value;
    }
  }

  Result<JsonValue> ParseString() {
    STETHO_RETURN_IF_ERROR(Expect('"'));
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        value.str += c;
        continue;
      }
      if (pos_ >= text_.size()) return Status::ParseError("dangling escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': value.str += '"'; break;
        case '\\': value.str += '\\'; break;
        case '/': value.str += '/'; break;
        case 'n': value.str += '\n'; break;
        case 't': value.str += '\t'; break;
        case 'r': value.str += '\r'; break;
        case 'b': value.str += '\b'; break;
        case 'f': value.str += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::ParseError("truncated \\u escape");
          }
          long code = std::strtol(std::string(text_.substr(pos_, 4)).c_str(),
                                  nullptr, 16);
          pos_ += 4;
          // Trace content is ASCII; anything else degrades to '?'.
          value.str += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return Status::ParseError(StrFormat("bad escape '\\%c'", esc));
      }
    }
    STETHO_RETURN_IF_ERROR(Expect('"'));
    return value;
  }

  Result<JsonValue> ParseBool() {
    JsonValue value;
    value.kind = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      value.boolean = true;
      pos_ += 4;
      return value;
    }
    if (text_.substr(pos_, 5) == "false") {
      value.boolean = false;
      pos_ += 5;
      return value;
    }
    return Status::ParseError(StrFormat("bad literal at offset %zu", pos_));
  }

  Result<JsonValue> ParseNull() {
    if (text_.substr(pos_, 4) != "null") {
      return Status::ParseError(StrFormat("bad literal at offset %zu", pos_));
    }
    pos_ += 4;
    return JsonValue{};
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::ParseError(StrFormat("bad value at offset %zu", start));
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = std::atof(std::string(text_.substr(start, pos_ - start)).c_str());
    return value;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

int64_t NumberField(const JsonValue& object, const char* key,
                    int64_t fallback) {
  auto it = object.object.find(key);
  if (it == object.object.end() ||
      it->second.kind != JsonValue::Kind::kNumber) {
    return fallback;
  }
  return static_cast<int64_t>(it->second.number);
}

std::string StringField(const JsonValue& object, const char* key) {
  auto it = object.object.find(key);
  if (it == object.object.end() ||
      it->second.kind != JsonValue::Kind::kString) {
    return std::string();
  }
  return it->second.str;
}

}  // namespace

std::string WriteChromeTrace(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(&out, span.name);
    out += "\",\"cat\":\"";
    AppendEscaped(&out, span.cat);
    out += StrFormat("\",\"ph\":\"X\",\"ts\":%lld,\"dur\":%lld,"
                     "\"pid\":1,\"tid\":%d,\"args\":{\"seq\":%lld",
                     static_cast<long long>(span.start_us),
                     static_cast<long long>(span.dur_us), span.tid,
                     static_cast<long long>(span.seq));
    if (span.pc >= 0) out += StrFormat(",\"pc\":%d", span.pc);
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Result<std::vector<SpanRecord>> ParseChromeTrace(std::string_view json) {
  STETHO_ASSIGN_OR_RETURN(JsonValue root, JsonParser(json).Parse());
  const JsonValue* events = nullptr;
  if (root.kind == JsonValue::Kind::kArray) {
    events = &root;
  } else if (root.kind == JsonValue::Kind::kObject) {
    auto it = root.object.find("traceEvents");
    if (it == root.object.end() ||
        it->second.kind != JsonValue::Kind::kArray) {
      return Status::ParseError("no traceEvents array");
    }
    events = &it->second;
  } else {
    return Status::ParseError("trace JSON must be an object or array");
  }

  std::vector<SpanRecord> spans;
  spans.reserve(events->array.size());
  for (const JsonValue& event : events->array) {
    if (event.kind != JsonValue::Kind::kObject) {
      return Status::ParseError("trace event is not an object");
    }
    if (StringField(event, "ph") != "X") continue;  // not a complete event
    SpanRecord span;
    span.name = StringField(event, "name");
    span.cat = StringField(event, "cat");
    span.tid = static_cast<int>(NumberField(event, "tid", 0));
    span.start_us = NumberField(event, "ts", 0);
    span.dur_us = NumberField(event, "dur", 0);
    span.seq = static_cast<int64_t>(spans.size());
    auto args = event.object.find("args");
    if (args != event.object.end() &&
        args->second.kind == JsonValue::Kind::kObject) {
      span.pc = static_cast<int>(NumberField(args->second, "pc", -1));
      span.seq = NumberField(args->second, "seq", span.seq);
    }
    spans.push_back(std::move(span));
  }
  return spans;
}

}  // namespace stetho::obs
