#ifndef STETHO_OBS_METRICS_H_
#define STETHO_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace stetho::obs {

/// Process-wide observability kill switch gating every code path that costs
/// more than a relaxed atomic increment (span recording, latency clock
/// reads, per-pass timing). Plain counters stay live even when disabled —
/// they replace ad-hoc atomics and cost the same. Defaults to off so the
/// hot path pays nothing unless a CLI flag, test, or server command opts in.
void SetEnabled(bool enabled);
bool Enabled();

/// Compile-time kill switch: building with -DSTETHO_OBS_DISABLED pins
/// Active() to false so the optimizer removes every gated block outright.
#ifdef STETHO_OBS_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// True when observability is compiled in and enabled at runtime.
inline bool Active() { return kCompiledIn && Enabled(); }

/// Monotonically increasing counter. The hot path is one relaxed fetch_add;
/// construction and naming go through a Registry.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  friend class Registry;
  Counter(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}

  const std::string name_;
  const std::string help_;
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depths, live bytes).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  friend class Registry;
  Gauge(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}

  const std::string name_;
  const std::string help_;
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket latency histogram. Bucket `i` counts observations with
/// `value <= bounds[i]` (Prometheus `le` semantics); one implicit +Inf
/// bucket catches the rest. Observe is lock-free: a linear scan over a
/// handful of bounds plus two relaxed increments.
class Histogram {
 public:
  /// Microsecond latency bounds spanning 1µs..1s, roughly logarithmic.
  static const std::vector<int64_t>& DefaultLatencyBounds();

  void Observe(int64_t value) {
    size_t i = 0;
    while (i < bounds_.size() && value > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Estimated quantile (q in [0,1]) by linear interpolation inside the
  /// fixed buckets; observations in the +Inf bucket clamp to the last
  /// bound. 0 when empty. Approximate by construction — good enough for
  /// the p50/p95/p99 summary lines, not a substitute for the raw buckets.
  double QuantileEstimate(double q) const;

  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// Count in bucket `i` (non-cumulative); `i == bounds().size()` is +Inf.
  int64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  friend class Registry;
  Histogram(std::string name, std::string help, std::vector<int64_t> bounds)
      : name_(std::move(name)),
        help_(std::move(help)),
        bounds_(std::move(bounds)),
        buckets_(bounds_.size() + 1) {}

  const std::string name_;
  const std::string help_;
  const std::vector<int64_t> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> count_{0};
};

/// One metric at snapshot time, rendered kind-agnostically for the flight
/// recorder and tests.
struct MetricSample {
  std::string name;
  std::string kind;  ///< "counter" | "gauge" | "histogram"
  int64_t value = 0;  ///< counter/gauge value; histogram observation count
  int64_t sum = 0;    ///< histogram only
};

/// Process-wide metrics registry. Registration (rare, startup / first-use)
/// takes a mutex and validates names; the returned pointers are stable for
/// the registry's lifetime, so instrumented hot paths touch only the atomic
/// metric objects. Thread-safe throughout.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Strict registration: InvalidArgument for malformed names (allowed:
  /// [A-Za-z_:][A-Za-z0-9_:]*), AlreadyExists when the name is taken.
  Result<Counter*> RegisterCounter(const std::string& name,
                                   const std::string& help);
  Result<Gauge*> RegisterGauge(const std::string& name,
                               const std::string& help);
  Result<Histogram*> RegisterHistogram(const std::string& name,
                                       const std::string& help,
                                       std::vector<int64_t> bounds);

  /// Idempotent registration for literal-named instrumentation sites:
  /// returns the existing metric on a repeat call. A kind clash or malformed
  /// name is a programmer error and aborts (names are compile-time
  /// literals, like kernel registration).
  Counter* GetOrCreateCounter(const std::string& name, const std::string& help);
  Gauge* GetOrCreateGauge(const std::string& name, const std::string& help);
  Histogram* GetOrCreateHistogram(const std::string& name,
                                  const std::string& help,
                                  const std::vector<int64_t>& bounds);

  /// Lookups for tests and dump commands; NotFound for unknown names.
  Result<int64_t> CounterValue(const std::string& name) const;
  Result<int64_t> GaugeValue(const std::string& name) const;
  Result<const Histogram*> FindHistogram(const std::string& name) const;

  /// Prometheus naming-convention audit over every registered metric.
  /// Returns one human-readable violation per offending metric (empty =
  /// clean), enforcing: counters end in `_total`; histograms end in a unit
  /// suffix (`_usec`, `_bytes`, `_seconds`, or `_ratio`); gauges do not end
  /// in the suffixes Prometheus reserves for counter/histogram series
  /// (`_total`, `_count`, `_sum`, `_bucket`); and all names are lowercase.
  /// obs_test runs this against the default registry so a misnamed metric
  /// fails CI naming its creator.
  std::vector<std::string> AuditMetricNames() const;

  /// Prometheus-style text exposition, deterministically sorted by name.
  std::string ExpositionText() const;

  /// One "name p50=… p95=… p99=… count=… mean=…" line per non-empty
  /// histogram, sorted by name — the human-sized footer MetricsText() and
  /// `stethoscope --watch` append to the raw exposition.
  std::string HistogramSummaryText() const;

  /// Point-in-time snapshot of every metric, sorted by name.
  std::vector<MetricSample> Snapshot() const;

  size_t size() const;

  /// Process-wide shared instance all built-in instrumentation reports to.
  static Registry* Default();

 private:
  mutable std::mutex mu_;  // guards the maps; metric values are atomic
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace stetho::obs

#endif  // STETHO_OBS_METRICS_H_
