#ifndef STETHO_OBS_FLIGHT_RECORDER_H_
#define STETHO_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace stetho::obs {

/// Black-box recorder: keeps a bounded ring of recent annotations and, on
/// Dump, renders them together with the tracer's most recent spans and a
/// full metrics snapshot — so a query abort or a pass-equivalence failure
/// arrives with context attached instead of a bare Status message.
///
/// Disabled by default (failing queries are routine in tests); the CLI,
/// server dump command, and targeted tests switch it on. Thread-safe.
class FlightRecorder {
 public:
  explicit FlightRecorder(Registry* registry, Tracer* tracer,
                          size_t max_notes = 64, size_t max_spans = 48)
      : registry_(registry),
        tracer_(tracer),
        max_notes_(max_notes == 0 ? 1 : max_notes),
        max_spans_(max_spans) {}
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const {
    return kCompiledIn && enabled_.load(std::memory_order_relaxed);
  }

  /// Appends a timestamped annotation to the ring ("query s3 started",
  /// "pass dead-code fired"). No-op while disabled.
  void Note(std::string note);

  /// Renders the black box: reason, recent notes, the tracer's last
  /// `max_spans` spans, and the metrics snapshot.
  std::string Render(const std::string& reason) const;

  /// Renders and writes to the configured output (stderr by default, or the
  /// file set via SetOutputFile). Counts dumps; works even while disabled so
  /// an explicit operator request always answers.
  void Dump(const std::string& reason);

  /// Redirects dumps to `path` (truncates); "" restores stderr.
  Status SetOutputFile(const std::string& path);

  /// Writes each dump as its own bundle file `<dir>/flight_NNNN.txt` where
  /// NNNN is the dump ordinal — deterministic (no timestamps in the name,
  /// so VirtualClock-driven tests produce stable paths). "" restores the
  /// stderr/SetOutputFile behavior. The directory must exist.
  Status SetOutputDir(const std::string& dir);

  int64_t dump_count() const {
    return dumps_.load(std::memory_order_relaxed);
  }

  /// Bundle path the next Dump() will write, or "" when no directory is
  /// configured (lets callers report where the black box landed).
  std::string NextBundlePath() const;

  /// Process-wide recorder over Registry::Default() / Tracer::Default().
  /// Ring size honors STETHO_FLIGHT_RING (notes kept; default 64) and
  /// STETHO_FLIGHT_DIR preconfigures SetOutputDir, both read once.
  static FlightRecorder* Default();

 private:
  struct NoteEntry {
    int64_t time_us = 0;
    std::string text;
  };

  Registry* registry_;
  Tracer* tracer_;
  const size_t max_notes_;
  const size_t max_spans_;
  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> dumps_{0};

  mutable std::mutex mu_;  // guards notes_, out_, and out_dir_
  std::deque<NoteEntry> notes_;
  std::FILE* out_ = nullptr;  // nullptr = stderr
  std::string out_dir_;       // "" = single-stream output
};

/// STETHO_FLIGHT_RING parsed as a positive note-ring size; `fallback` when
/// unset or malformed. Exposed for tests (Default() reads the env once).
size_t FlightRingFromEnv(size_t fallback);

}  // namespace stetho::obs

#endif  // STETHO_OBS_FLIGHT_RECORDER_H_
