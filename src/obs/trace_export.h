#ifndef STETHO_OBS_TRACE_EXPORT_H_
#define STETHO_OBS_TRACE_EXPORT_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/span.h"

namespace stetho::obs {

/// Renders spans as Chrome trace-event JSON (the `traceEvents` array format
/// chrome://tracing and Perfetto load). Every span becomes one complete
/// ("ph":"X") event carrying its category, thread id, and — for kernel
/// spans — the plan pc in `args`. Spans are emitted in record (seq) order,
/// so output is deterministic for golden tests.
std::string WriteChromeTrace(const std::vector<SpanRecord>& spans);

/// Parses a Chrome trace-event JSON document back into spans. Accepts both
/// the `{"traceEvents": [...]}` object form WriteChromeTrace emits and a
/// bare event array; events other than "ph":"X" are skipped. ParseError on
/// malformed JSON. This closes the loop for the trace-span-conformance lint
/// check, which cross-validates an exported trace against a profiler trace.
Result<std::vector<SpanRecord>> ParseChromeTrace(std::string_view json);

}  // namespace stetho::obs

#endif  // STETHO_OBS_TRACE_EXPORT_H_
