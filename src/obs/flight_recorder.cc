#include "obs/flight_recorder.h"

#include <cstdlib>

#include "common/string_util.h"

namespace stetho::obs {

FlightRecorder::~FlightRecorder() {
  if (out_ != nullptr) std::fclose(out_);
}

void FlightRecorder::Note(std::string note) {
  if (!enabled()) return;
  NoteEntry entry;
  entry.time_us = tracer_->clock()->NowMicros();
  entry.text = std::move(note);
  std::lock_guard<std::mutex> lock(mu_);
  notes_.push_back(std::move(entry));
  while (notes_.size() > max_notes_) notes_.pop_front();
}

std::string FlightRecorder::Render(const std::string& reason) const {
  std::string out = "=== stethoscope flight recorder ===\n";
  out += "reason: " + reason + "\n";

  {
    std::lock_guard<std::mutex> lock(mu_);
    out += StrFormat("-- notes (%zu most recent) --\n", notes_.size());
    for (const NoteEntry& note : notes_) {
      out += StrFormat("  [%lld us] %s\n",
                       static_cast<long long>(note.time_us),
                       note.text.c_str());
    }
  }

  std::vector<SpanRecord> spans = tracer_->Snapshot();
  size_t first = spans.size() > max_spans_ ? spans.size() - max_spans_ : 0;
  out += StrFormat("-- spans (%zu most recent of %lld recorded) --\n",
                   spans.size() - first,
                   static_cast<long long>(tracer_->total_recorded()));
  for (size_t i = first; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    out += StrFormat("  %-10s tid=%-2d start=%-10lld dur=%-8lld %s",
                     span.cat.c_str(), span.tid,
                     static_cast<long long>(span.start_us),
                     static_cast<long long>(span.dur_us), span.name.c_str());
    if (span.pc >= 0) out += StrFormat(" (pc=%d)", span.pc);
    out += '\n';
  }

  out += "-- metrics --\n";
  out += registry_->ExpositionText();
  out += "=== end flight recorder ===\n";
  return out;
}

void FlightRecorder::Dump(const std::string& reason) {
  const int64_t ordinal = dumps_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::string rendered = Render(reason);
  std::lock_guard<std::mutex> lock(mu_);
  if (!out_dir_.empty()) {
    // One bundle file per dump, named by ordinal so repeated incidents
    // never overwrite each other and names stay clock-independent.
    const std::string path =
        StrFormat("%s/flight_%04lld.txt", out_dir_.c_str(),
                  static_cast<long long>(ordinal));
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fputs(rendered.c_str(), f);
      std::fclose(f);
      return;
    }
    // Unwritable directory: fall through to the stream output so the black
    // box is never lost silently.
  }
  std::FILE* f = out_ != nullptr ? out_ : stderr;
  std::fputs(rendered.c_str(), f);
  std::fflush(f);
}

Status FlightRecorder::SetOutputFile(const std::string& path) {
  std::FILE* next = nullptr;
  if (!path.empty()) {
    next = std::fopen(path.c_str(), "w");
    if (next == nullptr) {
      return Status::IoError("cannot open flight-recorder output '" + path +
                             "'");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (out_ != nullptr) std::fclose(out_);
  out_ = next;
  return Status::OK();
}

Status FlightRecorder::SetOutputDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  out_dir_ = dir;
  return Status::OK();
}

std::string FlightRecorder::NextBundlePath() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_dir_.empty()) return "";
  return StrFormat("%s/flight_%04lld.txt", out_dir_.c_str(),
                   static_cast<long long>(
                       dumps_.load(std::memory_order_relaxed) + 1));
}

size_t FlightRingFromEnv(size_t fallback) {
  const char* raw = std::getenv("STETHO_FLIGHT_RING");
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  long long v = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || v <= 0) return fallback;
  return static_cast<size_t>(v);
}

FlightRecorder* FlightRecorder::Default() {
  static FlightRecorder* recorder = [] {
    const size_t ring = FlightRingFromEnv(64);
    auto* r = new FlightRecorder(Registry::Default(), Tracer::Default(),
                                 /*max_notes=*/ring,
                                 /*max_spans=*/48);
    if (const char* dir = std::getenv("STETHO_FLIGHT_DIR");
        dir != nullptr && dir[0] != '\0') {
      (void)r->SetOutputDir(dir);
    }
    return r;
  }();
  return recorder;
}

}  // namespace stetho::obs
