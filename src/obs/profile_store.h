#ifndef STETHO_OBS_PROFILE_STORE_H_
#define STETHO_OBS_PROFILE_STORE_H_

#include <cstdint>
#include <cstdio>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace stetho::obs {

/// --- Cross-run performance baselining ---
///
/// The profile store folds every completed query into per-pc robust
/// statistics keyed by the plan's shape hash (the function-name-blind
/// content hash analysis::ProgressModelCache already uses), giving the
/// platform a memory of past runs: the live straggler comparator, the
/// server's slow-query log, and the trace-perf-regression lint check all
/// read baselines from here. The store lives in obs (it depends on nothing
/// but common) and speaks plain observations; extracting an observation
/// from a plan or trace is the analysis layer's job (analysis/perfdiff.h).

/// Count-weighted distribution over non-negative integer samples
/// (microseconds, bytes, slot counts) kept as a sparse fixed-log-bucket
/// histogram: bucket `round(8 * log2(v))` holds values within ~±4.5% of
/// `2^(i/8)`, so the structure is bounded, exactly mergeable (bucket-wise
/// add is associative and loss-free), and deterministic regardless of fold
/// order — the properties a streaming cross-run merge needs. Quantiles are
/// estimated at bucket centers; the ~9% bucket width is far below the 1.5×
/// ratios anything downstream alerts on.
class RobustStat {
 public:
  void Observe(int64_t value);
  void Merge(const RobustStat& other);

  int64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t min() const { return count_ > 0 ? min_ : 0; }
  int64_t max() const { return max_; }

  /// Weighted quantile (q in [0,1]) at bucket centers; 0 when empty.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }
  /// Median absolute deviation from the median, over bucket centers —
  /// the robust spread the `median + k·MAD` comparators use.
  double Mad() const;

  /// "count,sum,min,max[,bucket:count]*" — the journal's stat token.
  std::string Serialize() const;
  /// Strict parse of Serialize() output; false on any malformed token.
  static bool Parse(const std::string& text, RobustStat* out);

  bool operator==(const RobustStat& other) const {
    return count_ == other.count_ && sum_ == other.sum_ &&
           min_ == other.min_ && max_ == other.max_ &&
           buckets_ == other.buckets_;
  }

 private:
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  std::map<int, int64_t> buckets_;  // sparse: log bucket -> observations
};

/// One instruction's measurements from a single completed query.
struct PcSample {
  int pc = 0;
  int64_t usec = 0;      ///< instruction duration
  int64_t bytes = 0;     ///< engine live bytes after completion (0 = unknown)
  int concurrency = 1;   ///< instructions in flight when this one started
};

/// Everything one completed query contributes to the store.
struct QueryObservation {
  uint64_t shape_hash = 0;  ///< analysis::PlanShapeHash of the executed plan
  size_t plan_size = 0;
  int64_t total_usec = 0;   ///< end-to-end wall time
  std::vector<PcSample> pcs;
};

/// Per-pc robust statistics for one plan shape.
struct PcStats {
  RobustStat usec;
  RobustStat bytes;
  RobustStat concurrency;
};

/// The folded baseline for one plan shape across every observed run.
struct PlanProfile {
  uint64_t shape_hash = 0;
  size_t plan_size = 0;
  int64_t queries = 0;      ///< observations folded in
  RobustStat total_usec;    ///< end-to-end distribution
  std::vector<PcStats> pcs;  ///< indexed by pc

  void Fold(const QueryObservation& observation);
  void Merge(const PlanProfile& other);
};

struct ProfileStoreOptions {
  /// Directory holding the append-only journal (profile.journal). "" keeps
  /// the store in-memory only.
  std::string dir;
  /// Plan shapes kept in memory; least recently touched shapes are evicted
  /// (the journal retains their history for the next load).
  size_t capacity = 256;
};

/// Process-wide persistable profile store. Fold() merges an observation
/// into the in-memory profile for its shape and appends one journal record;
/// loading replays the journal (tolerating corrupt lines) and rewrites it
/// compacted to one aggregate record per shape. Thread-safe; deterministic
/// — no clocks, no randomness, output sorted by shape hash.
///
/// Metrics: stetho_profile_store_{queries,loads,evictions}_total and
/// stetho_profile_store_corrupt_lines_total.
class ProfileStore {
 public:
  explicit ProfileStore(ProfileStoreOptions options = {});
  ~ProfileStore();

  ProfileStore(const ProfileStore&) = delete;
  ProfileStore& operator=(const ProfileStore&) = delete;

  /// Merges one completed query into its shape's profile (journal-appended
  /// when a directory is configured). Observations with no shape hash are
  /// rejected; an unknown shape starts a fresh profile.
  Status Fold(const QueryObservation& observation);

  /// Immutable snapshot of the shape's profile, or nullptr when the store
  /// has never seen it. Refreshes the shape's LRU position.
  std::shared_ptr<const PlanProfile> Lookup(uint64_t shape_hash) const;

  /// Merges the records of `path` into memory. Corrupt lines are skipped
  /// and counted, never fatal; only an unreadable file is an error.
  Status LoadFile(const std::string& path);

  /// Writes every in-memory profile as one compacted record per shape,
  /// sorted by shape hash.
  Status SaveFile(const std::string& path) const;

  /// Points the store at `dir`: loads dir/profile.journal when present,
  /// rewrites it compacted, and appends subsequent folds to it.
  Status OpenDir(const std::string& dir);

  size_t size() const;
  int64_t corrupt_lines() const;

  /// Process-wide store: honors STETHO_PROFILE_DIR on first use (a load
  /// failure leaves the store in-memory; the corrupt-line counter tells).
  static ProfileStore* Default();

 private:
  Status FoldLocked(const QueryObservation& observation);
  void TouchLocked(uint64_t shape_hash) const;
  void EvictLocked();
  Status ParseLine(const std::string& line);
  Status AppendJournalLocked(const QueryObservation& observation);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::map<uint64_t, std::unique_ptr<PlanProfile>> profiles_;
  mutable std::list<uint64_t> lru_;  // most recently touched first
  std::string journal_path_;         // "" = in-memory only
  std::FILE* journal_ = nullptr;
  int64_t corrupt_lines_ = 0;
};

}  // namespace stetho::obs

#endif  // STETHO_OBS_PROFILE_STORE_H_
