#include "obs/span.h"

namespace stetho::obs {

void Tracer::RecordComplete(std::string_view name, std::string_view cat,
                            int tid, int pc, int64_t start_us,
                            int64_t dur_us) {
  if (!enabled()) return;
  SpanRecord rec;
  rec.name.assign(name.data(), name.size());
  rec.cat.assign(cat.data(), cat.size());
  rec.tid = tid;
  rec.pc = pc;
  rec.start_us = start_us;
  rec.dur_us = dur_us;
  std::lock_guard<std::mutex> lock(mu_);
  rec.seq = next_seq_++;
  ring_.push_back(std::move(rec));
  recorded_.fetch_add(1, std::memory_order_relaxed);
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SpanRecord>(ring_.begin(), ring_.end());
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

Tracer* Tracer::Default() {
  static Tracer tracer;
  return &tracer;
}

}  // namespace stetho::obs
