#include "obs/metrics.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace stetho::obs {
namespace {

std::atomic<bool> g_enabled{false};

bool ValidName(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

}  // namespace

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

const std::vector<int64_t>& Histogram::DefaultLatencyBounds() {
  static const std::vector<int64_t> bounds = {
      1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 50000, 100000, 500000, 1000000};
  return bounds;
}

double Histogram::QuantileEstimate(double q) const {
  const int64_t total = count();
  if (total <= 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(total);
  double cumulative = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    const double in_bucket = static_cast<double>(bucket_count(i));
    if (cumulative + in_bucket < target || in_bucket <= 0) {
      cumulative += in_bucket;
      continue;
    }
    if (i == bounds_.size()) break;  // +Inf bucket: clamp to the last bound
    const double lo = i == 0 ? 0 : static_cast<double>(bounds_[i - 1]);
    const double hi = static_cast<double>(bounds_[i]);
    const double frac = (target - cumulative) / in_bucket;
    return lo + frac * (hi - lo);
  }
  return static_cast<double>(bounds_.back());
}

Result<Counter*> Registry::RegisterCounter(const std::string& name,
                                           const std::string& help) {
  if (!ValidName(name)) {
    return Status::InvalidArgument("invalid metric name '" + name + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) != 0 || gauges_.count(name) != 0 ||
      histograms_.count(name) != 0) {
    return Status::AlreadyExists("metric '" + name + "' already registered");
  }
  auto metric = std::unique_ptr<Counter>(new Counter(name, help));
  Counter* raw = metric.get();
  counters_.emplace(name, std::move(metric));
  return raw;
}

Result<Gauge*> Registry::RegisterGauge(const std::string& name,
                                       const std::string& help) {
  if (!ValidName(name)) {
    return Status::InvalidArgument("invalid metric name '" + name + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) != 0 || gauges_.count(name) != 0 ||
      histograms_.count(name) != 0) {
    return Status::AlreadyExists("metric '" + name + "' already registered");
  }
  auto metric = std::unique_ptr<Gauge>(new Gauge(name, help));
  Gauge* raw = metric.get();
  gauges_.emplace(name, std::move(metric));
  return raw;
}

Result<Histogram*> Registry::RegisterHistogram(const std::string& name,
                                               const std::string& help,
                                               std::vector<int64_t> bounds) {
  if (!ValidName(name)) {
    return Status::InvalidArgument("invalid metric name '" + name + "'");
  }
  if (bounds.empty()) {
    return Status::InvalidArgument("histogram '" + name + "' needs >= 1 bound");
  }
  for (size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1]) {
      return Status::InvalidArgument("histogram '" + name +
                                     "' bounds must strictly increase");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) != 0 || gauges_.count(name) != 0 ||
      histograms_.count(name) != 0) {
    return Status::AlreadyExists("metric '" + name + "' already registered");
  }
  auto metric = std::unique_ptr<Histogram>(
      new Histogram(name, help, std::move(bounds)));
  Histogram* raw = metric.get();
  histograms_.emplace(name, std::move(metric));
  return raw;
}

Counter* Registry::GetOrCreateCounter(const std::string& name,
                                      const std::string& help) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    if (it != counters_.end()) return it->second.get();
  }
  Result<Counter*> made = RegisterCounter(name, help);
  if (made.ok()) return made.value();
  // Lost a registration race to an identical literal-named site, or a
  // programmer error (kind clash / bad literal) that CHECK surfaces.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  STETHO_CHECK(it != counters_.end());
  return it->second.get();
}

Gauge* Registry::GetOrCreateGauge(const std::string& name,
                                  const std::string& help) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = gauges_.find(name);
    if (it != gauges_.end()) return it->second.get();
  }
  Result<Gauge*> made = RegisterGauge(name, help);
  if (made.ok()) return made.value();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  STETHO_CHECK(it != gauges_.end());
  return it->second.get();
}

Histogram* Registry::GetOrCreateHistogram(const std::string& name,
                                          const std::string& help,
                                          const std::vector<int64_t>& bounds) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second.get();
  }
  Result<Histogram*> made = RegisterHistogram(name, help, bounds);
  if (made.ok()) return made.value();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  STETHO_CHECK(it != histograms_.end());
  return it->second.get();
}

Result<int64_t> Registry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    return Status::NotFound("no counter '" + name + "'");
  }
  return it->second->value();
}

Result<int64_t> Registry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) return Status::NotFound("no gauge '" + name + "'");
  return it->second->value();
}

Result<const Histogram*> Registry::FindHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    return Status::NotFound("no histogram '" + name + "'");
  }
  return static_cast<const Histogram*>(it->second.get());
}

namespace {

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool IsLowercase(const std::string& s) {
  for (char c : s) {
    if (c >= 'A' && c <= 'Z') return false;
  }
  return true;
}

}  // namespace

std::vector<std::string> Registry::AuditMetricNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> violations;
  auto check_common = [&](const std::string& name, const char* kind) {
    if (!IsLowercase(name)) {
      violations.push_back(std::string(kind) + " '" + name +
                           "' must be lowercase");
    }
  };
  for (const auto& [name, counter] : counters_) {
    check_common(name, "counter");
    if (!EndsWith(name, "_total")) {
      violations.push_back("counter '" + name + "' must end in _total");
    }
  }
  for (const auto& [name, gauge] : gauges_) {
    check_common(name, "gauge");
    for (const char* reserved : {"_total", "_count", "_sum", "_bucket"}) {
      if (EndsWith(name, reserved)) {
        violations.push_back("gauge '" + name + "' must not end in the "
                             "reserved suffix " + reserved);
      }
    }
  }
  for (const auto& [name, histogram] : histograms_) {
    check_common(name, "histogram");
    if (!EndsWith(name, "_usec") && !EndsWith(name, "_bytes") &&
        !EndsWith(name, "_seconds") && !EndsWith(name, "_ratio")) {
      violations.push_back("histogram '" + name +
                           "' must end in a unit suffix "
                           "(_usec, _bytes, _seconds, _ratio)");
    }
  }
  return violations;
}

std::string Registry::ExpositionText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  // One merged name-sorted walk keeps the output deterministic regardless of
  // metric kind; the three maps are each already sorted.
  auto c = counters_.begin();
  auto g = gauges_.begin();
  auto h = histograms_.begin();
  while (c != counters_.end() || g != gauges_.end() || h != histograms_.end()) {
    const std::string* cn = c != counters_.end() ? &c->first : nullptr;
    const std::string* gn = g != gauges_.end() ? &g->first : nullptr;
    const std::string* hn = h != histograms_.end() ? &h->first : nullptr;
    const std::string* min = cn;
    if (min == nullptr || (gn != nullptr && *gn < *min)) min = gn;
    if (min == nullptr || (hn != nullptr && *hn < *min)) min = hn;
    if (min == cn && cn != nullptr) {
      const Counter& m = *c->second;
      out += StrFormat("# HELP %s %s\n# TYPE %s counter\n%s %lld\n",
                       m.name().c_str(), m.help().c_str(), m.name().c_str(),
                       m.name().c_str(), static_cast<long long>(m.value()));
      ++c;
    } else if (min == gn && gn != nullptr) {
      const Gauge& m = *g->second;
      out += StrFormat("# HELP %s %s\n# TYPE %s gauge\n%s %lld\n",
                       m.name().c_str(), m.help().c_str(), m.name().c_str(),
                       m.name().c_str(), static_cast<long long>(m.value()));
      ++g;
    } else {
      const Histogram& m = *h->second;
      out += StrFormat("# HELP %s %s\n# TYPE %s histogram\n",
                       m.name().c_str(), m.help().c_str(), m.name().c_str());
      int64_t cumulative = 0;
      for (size_t i = 0; i < m.bounds().size(); ++i) {
        cumulative += m.bucket_count(i);
        out += StrFormat("%s_bucket{le=\"%lld\"} %lld\n", m.name().c_str(),
                         static_cast<long long>(m.bounds()[i]),
                         static_cast<long long>(cumulative));
      }
      cumulative += m.bucket_count(m.bounds().size());
      out += StrFormat("%s_bucket{le=\"+Inf\"} %lld\n", m.name().c_str(),
                       static_cast<long long>(cumulative));
      out += StrFormat("%s_sum %lld\n%s_count %lld\n", m.name().c_str(),
                       static_cast<long long>(m.sum()), m.name().c_str(),
                       static_cast<long long>(m.count()));
      ++h;
    }
  }
  return out;
}

std::string Registry::HistogramSummaryText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, metric] : histograms_) {
    if (metric->count() == 0) continue;
    const double mean =
        static_cast<double>(metric->sum()) /
        static_cast<double>(metric->count());
    out += StrFormat("%s p50=%.0f p95=%.0f p99=%.0f count=%lld mean=%.1f\n",
                     name.c_str(), metric->QuantileEstimate(0.50),
                     metric->QuantileEstimate(0.95),
                     metric->QuantileEstimate(0.99),
                     static_cast<long long>(metric->count()), mean);
  }
  return out;
}

std::vector<MetricSample> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, metric] : counters_) {
    out.push_back({name, "counter", metric->value(), 0});
  }
  for (const auto& [name, metric] : gauges_) {
    out.push_back({name, "gauge", metric->value(), 0});
  }
  for (const auto& [name, metric] : histograms_) {
    out.push_back({name, "histogram", metric->count(), metric->sum()});
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

Registry* Registry::Default() {
  static Registry registry;
  return &registry;
}

}  // namespace stetho::obs
