#ifndef STETHO_OBS_SPAN_H_
#define STETHO_OBS_SPAN_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "obs/metrics.h"

namespace stetho::obs {

/// One completed span on the platform's own timeline: a phase
/// (parse/optimize/execute/layout/svg), an optimizer pass, or one kernel
/// execution. `tid` carries the same logical thread id the profiler stamps
/// on trace events (the query-local admission slot), preserving the trace
/// thread contract; `pc` links kernel spans back to the plan instruction.
struct SpanRecord {
  std::string name;    ///< "parse", "pass:dead-code", "algebra.select", ...
  std::string cat;     ///< "phase" | "pass" | "kernel"
  int tid = 0;         ///< logical thread id (query slot; 0 for phases)
  int pc = -1;         ///< plan pc for kernel spans, -1 otherwise
  int64_t start_us = 0;
  int64_t dur_us = 0;
  int64_t seq = 0;     ///< record order, assigned by the tracer

  bool operator==(const SpanRecord& other) const = default;
};

/// Collects spans into a bounded in-memory ring. Disabled by default: a
/// disabled tracer costs one relaxed load per would-be span and records
/// nothing. Thread-safe; worker threads record concurrently.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(Clock* clock = nullptr, size_t capacity = kDefaultCapacity)
      : clock_(clock != nullptr ? clock
                                : static_cast<Clock*>(SteadyClock::Default())),
        capacity_(capacity == 0 ? 1 : capacity) {}

  /// Spans are recorded only while enabled (and obs is compiled in).
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const {
    return kCompiledIn && enabled_.load(std::memory_order_relaxed);
  }

  /// Swaps the time source (tests install a VirtualClock).
  void SetClock(Clock* clock) {
    clock_.store(clock, std::memory_order_release);
  }
  Clock* clock() const { return clock_.load(std::memory_order_acquire); }

  /// Records a completed span with caller-measured timestamps — the kernel
  /// hot path reuses the interpreter's existing clock reads, so tracing a
  /// kernel costs no extra NowMicros() call. No-op while disabled.
  void RecordComplete(std::string_view name, std::string_view cat, int tid,
                      int pc, int64_t start_us, int64_t dur_us);

  /// Snapshot in record order (oldest first).
  std::vector<SpanRecord> Snapshot() const;
  void Clear();

  size_t size() const;
  /// Total spans ever recorded (including ones evicted from the ring).
  int64_t total_recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  /// Spans evicted by ring overwrite.
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Process-wide shared instance all built-in instrumentation reports to.
  static Tracer* Default();

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<Clock*> clock_;
  const size_t capacity_;

  mutable std::mutex mu_;  // guards ring_ and next_seq_
  std::deque<SpanRecord> ring_;
  int64_t next_seq_ = 0;
  std::atomic<int64_t> recorded_{0};
  std::atomic<int64_t> dropped_{0};
};

/// RAII span: stamps start on construction, records on destruction. When the
/// tracer is disabled (or null) at construction the object holds nothing and
/// the destructor is a no-op — no clock read, no allocation.
class Span {
 public:
  Span(Tracer* tracer, std::string_view name, std::string_view cat,
       int tid = 0, int pc = -1) {
    if (tracer == nullptr || !tracer->enabled()) return;
    tracer_ = tracer;
    name_.assign(name.data(), name.size());
    cat_.assign(cat.data(), cat.size());
    tid_ = tid;
    pc_ = pc;
    start_us_ = tracer->clock()->NowMicros();
  }

  ~Span() {
    if (tracer_ == nullptr) return;
    tracer_->RecordComplete(name_, cat_, tid_, pc_, start_us_,
                            tracer_->clock()->NowMicros() - start_us_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  std::string name_;
  std::string cat_;
  int tid_ = 0;
  int pc_ = -1;
  int64_t start_us_ = 0;
};

}  // namespace stetho::obs

#endif  // STETHO_OBS_SPAN_H_
