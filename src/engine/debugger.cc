#include "engine/debugger.h"

#include "common/string_util.h"

namespace stetho::engine {

MalDebugger::MalDebugger(const mal::Program* program,
                         storage::Catalog* catalog,
                         const ModuleRegistry* registry)
    : program_(program),
      registry_(registry),
      ctx_(catalog, SteadyClock::Default()),
      registers_(program->num_variables()),
      assigned_(program->num_variables(), false) {}

Result<std::unique_ptr<MalDebugger>> MalDebugger::Create(
    const mal::Program* program, storage::Catalog* catalog,
    const ModuleRegistry* registry) {
  STETHO_RETURN_IF_ERROR(program->Validate());
  return std::unique_ptr<MalDebugger>(
      new MalDebugger(program, catalog, registry));
}

Status MalDebugger::BreakAt(int pc) {
  if (pc < 0 || static_cast<size_t>(pc) >= program_->size()) {
    return Status::OutOfRange(
        StrFormat("no instruction at pc=%d (plan has %zu)", pc,
                  program_->size()));
  }
  pc_breakpoints_.insert(pc);
  return Status::OK();
}

void MalDebugger::BreakOn(const std::string& operation) {
  op_breakpoints_.insert(operation);
}

void MalDebugger::ClearBreakpoints() {
  pc_breakpoints_.clear();
  op_breakpoints_.clear();
}

std::vector<std::string> MalDebugger::ListBreakpoints() const {
  std::vector<std::string> out;
  for (int pc : pc_breakpoints_) out.push_back(StrFormat("pc=%d", pc));
  for (const std::string& op : op_breakpoints_) out.push_back(op);
  return out;
}

bool MalDebugger::HitsBreakpoint(int pc) const {
  if (pc_breakpoints_.count(pc)) return true;
  if (op_breakpoints_.empty()) return false;
  const mal::Instruction& ins = program_->instruction(pc);
  return op_breakpoints_.count(ins.module) > 0 ||
         op_breakpoints_.count(ins.FullName()) > 0;
}

Status MalDebugger::ExecuteAt(int pc) {
  const mal::Instruction& ins = program_->instruction(pc);
  STETHO_ASSIGN_OR_RETURN(const KernelFn* kernel,
                          registry_->Lookup(ins.module, ins.function));
  KernelArgs args;
  args.ins = &ins;
  args.ctx = &ctx_;
  std::vector<RegisterValue> const_storage;
  const_storage.reserve(ins.args.size());
  for (const mal::Argument& arg : ins.args) {
    if (arg.kind == mal::Argument::Kind::kConst) {
      const_storage.push_back(RegisterValue::Scalar(arg.constant));
    }
  }
  size_t const_i = 0;
  for (const mal::Argument& arg : ins.args) {
    if (arg.kind == mal::Argument::Kind::kVar) {
      args.args.push_back(&registers_[static_cast<size_t>(arg.var)]);
    } else {
      args.args.push_back(&const_storage[const_i++]);
    }
  }
  for (int r : ins.results) {
    args.results.push_back(&registers_[static_cast<size_t>(r)]);
  }
  Status st = (*kernel)(args);
  if (!st.ok()) {
    return Status(st.code(),
                  StrFormat("pc=%d %s: %s", pc,
                            program_->InstructionToString(ins).c_str(),
                            st.message().c_str()));
  }
  for (int r : ins.results) assigned_[static_cast<size_t>(r)] = true;
  for (ResultColumn& rc : ctx_.TakeResults()) {
    results_.push_back(std::move(rc));
  }
  return Status::OK();
}

Status MalDebugger::Step() {
  if (Finished()) return Status::OutOfRange("plan finished");
  STETHO_RETURN_IF_ERROR(ExecuteAt(next_pc_));
  ++next_pc_;
  stopped_at_ = kNoStop;
  return Status::OK();
}

Result<int> MalDebugger::Continue() {
  while (!Finished()) {
    // Stop *before* a breakpointed instruction — unless we are resuming
    // from exactly that stop (gdb semantics: continue makes progress).
    if (next_pc_ != stopped_at_ && HitsBreakpoint(next_pc_)) {
      stopped_at_ = next_pc_;
      return next_pc_;
    }
    STETHO_RETURN_IF_ERROR(Step());
  }
  return -1;
}

std::string MalDebugger::CurrentInstruction() const {
  if (Finished()) return "<end of plan>";
  return StrFormat(
      "pc=%d  %s", next_pc_,
      program_->InstructionToString(program_->instruction(next_pc_)).c_str());
}

namespace {

std::string RenderRegister(const RegisterValue& reg) {
  if (!reg.is_bat()) return reg.scalar.ToString();
  const storage::ColumnPtr& bat = reg.bat;
  if (bat == nullptr) return "<freed>";
  std::string out = StrFormat("bat[%s] count=%zu [",
                              storage::DataTypeName(bat->type()) + 1,
                              bat->size());
  for (size_t i = 0; i < bat->size() && i < 5; ++i) {
    if (i > 0) out += ", ";
    out += bat->GetValue(i).ToString();
  }
  if (bat->size() > 5) out += ", ...";
  out += "]";
  return out;
}

}  // namespace

Result<std::string> MalDebugger::InspectVariable(const std::string& name) const {
  int id = program_->FindVariable(name);
  if (id < 0) return Status::NotFound("no variable '" + name + "'");
  if (!assigned_[static_cast<size_t>(id)]) {
    return name + " = <unassigned>";
  }
  return name + " = " + RenderRegister(registers_[static_cast<size_t>(id)]);
}

std::vector<std::string> MalDebugger::ListVariables() const {
  std::vector<std::string> out;
  for (size_t v = 0; v < registers_.size(); ++v) {
    if (!assigned_[v]) continue;
    out.push_back(program_->variable(static_cast<int>(v)).name + " = " +
                  RenderRegister(registers_[v]));
  }
  return out;
}

}  // namespace stetho::engine
