#include "engine/kernel.h"

#include <algorithm>

#include "common/string_util.h"

namespace stetho::engine {

void ExecContext::AddResult(ResultColumn column) {
  std::lock_guard<std::mutex> lock(mu_);
  results_.push_back(std::move(column));
}

std::vector<ResultColumn> ExecContext::TakeResults() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ResultColumn> out;
  out.swap(results_);
  std::sort(out.begin(), out.end(),
            [](const ResultColumn& a, const ResultColumn& b) {
              return a.order < b.order;
            });
  return out;
}

Status ModuleRegistry::Register(const std::string& module,
                                const std::string& function, KernelFn fn) {
  std::string key = module + "." + function;
  auto [it, inserted] = kernels_.emplace(std::move(key), std::move(fn));
  if (!inserted) {
    return Status::AlreadyExists("kernel '" + it->first +
                                 "' already registered");
  }
  return Status::OK();
}

Result<const KernelFn*> ModuleRegistry::Lookup(
    const std::string& module, const std::string& function) const {
  auto it = kernels_.find(module + "." + function);
  if (it == kernels_.end()) {
    return Status::NotFound("no kernel for '" + module + "." + function + "'");
  }
  return &it->second;
}

std::vector<std::string> ModuleRegistry::ListKernels() const {
  std::vector<std::string> out;
  out.reserve(kernels_.size());
  for (const auto& [name, fn] : kernels_) out.push_back(name);
  return out;
}

const ModuleRegistry* ModuleRegistry::Default() {
  static const ModuleRegistry* registry = [] {
    auto* r = new ModuleRegistry();
    RegisterCoreKernels(r);
    RegisterAlgebraKernels(r);
    RegisterGroupAggrKernels(r);
    return r;
  }();
  return registry;
}

Status ExpectArity(const KernelArgs& a, size_t num_args, size_t num_results) {
  if (a.args.size() != num_args || a.results.size() != num_results) {
    return Status::InvalidArgument(StrFormat(
        "%s: expected %zu args / %zu results, got %zu / %zu",
        a.ins->FullName().c_str(), num_args, num_results, a.args.size(),
        a.results.size()));
  }
  return Status::OK();
}

Result<storage::ColumnPtr> ArgBat(const KernelArgs& a, size_t i) {
  if (i >= a.args.size() || !a.args[i]->is_bat()) {
    return Status::TypeError(
        StrFormat("%s: argument %zu must be a BAT", a.ins->FullName().c_str(), i));
  }
  return a.args[i]->bat;
}

Result<storage::Value> ArgScalar(const KernelArgs& a, size_t i) {
  if (i >= a.args.size() || a.args[i]->is_bat()) {
    return Status::TypeError(StrFormat("%s: argument %zu must be a scalar",
                                       a.ins->FullName().c_str(), i));
  }
  return a.args[i]->scalar;
}

Result<int64_t> ArgInt(const KernelArgs& a, size_t i) {
  STETHO_ASSIGN_OR_RETURN(storage::Value v, ArgScalar(a, i));
  return v.ToInt();
}

Result<double> ArgDouble(const KernelArgs& a, size_t i) {
  STETHO_ASSIGN_OR_RETURN(storage::Value v, ArgScalar(a, i));
  return v.ToDouble();
}

Result<std::string> ArgString(const KernelArgs& a, size_t i) {
  STETHO_ASSIGN_OR_RETURN(storage::Value v, ArgScalar(a, i));
  if (v.type() != storage::DataType::kString) {
    return Status::TypeError(StrFormat("%s: argument %zu must be a string",
                                       a.ins->FullName().c_str(), i));
  }
  return v.AsString();
}

}  // namespace stetho::engine
