#ifndef STETHO_ENGINE_DEBUGGER_H_
#define STETHO_ENGINE_DEBUGGER_H_

#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "engine/kernel.h"
#include "mal/program.h"
#include "storage/table.h"

namespace stetho::engine {

/// The GDB-like MAL debugger the paper mentions (§2: "MonetDB provides a
/// GDB-like MAL debugger for runtime inspection") — the tool Stethoscope
/// improves upon. Interprets a plan sequentially one instruction at a time
/// with breakpoints and register inspection. Unlike the production
/// interpreter, registers are never garbage-collected so every intermediate
/// stays inspectable.
class MalDebugger {
 public:
  /// Prepares execution of `program` (validated) against `catalog`.
  static Result<std::unique_ptr<MalDebugger>> Create(
      const mal::Program* program, storage::Catalog* catalog,
      const ModuleRegistry* registry = ModuleRegistry::Default());

  /// --- breakpoints ---
  /// Break before the instruction at `pc`.
  Status BreakAt(int pc);
  /// Break before every instruction of `module` (e.g. "algebra") or a
  /// specific "module.function".
  void BreakOn(const std::string& operation);
  void ClearBreakpoints();
  std::vector<std::string> ListBreakpoints() const;

  /// --- execution control ---
  /// Executes exactly one instruction. OutOfRange at end of plan.
  Status Step();
  /// Runs until a breakpoint fires or the plan ends. Returns the pc it
  /// stopped *before* (-1 when the plan finished).
  Result<int> Continue();
  /// True once every instruction executed.
  bool Finished() const { return next_pc_ >= static_cast<int>(program_->size()); }
  /// The pc of the next instruction to execute (the "current line").
  int next_pc() const { return next_pc_; }

  /// --- inspection ---
  /// The listing line of the next instruction ("gdb: list").
  std::string CurrentInstruction() const;
  /// Renders a variable's value by name ("X_3"): scalars inline, BATs as
  /// type, length, and a head sample ("gdb: print").
  Result<std::string> InspectVariable(const std::string& name) const;
  /// All assigned variables so far with compact values ("info locals").
  std::vector<std::string> ListVariables() const;
  /// Rows of the accumulated result set so far.
  size_t results_so_far() const { return results_.size(); }

 private:
  MalDebugger(const mal::Program* program, storage::Catalog* catalog,
              const ModuleRegistry* registry);

  bool HitsBreakpoint(int pc) const;
  Status ExecuteAt(int pc);

  const mal::Program* program_;
  const ModuleRegistry* registry_;
  ExecContext ctx_;
  std::vector<RegisterValue> registers_;
  std::vector<bool> assigned_;
  std::vector<ResultColumn> results_;
  int next_pc_ = 0;
  /// Pc of the breakpoint stop being resumed from (kNoStop otherwise).
  static constexpr int kNoStop = -2;
  int stopped_at_ = kNoStop;
  std::set<int> pc_breakpoints_;
  std::set<std::string> op_breakpoints_;
};

}  // namespace stetho::engine

#endif  // STETHO_ENGINE_DEBUGGER_H_
