#include "engine/interpreter.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "engine/worker_pool.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace stetho::engine {
namespace {

/// Process-wide mirror of the per-query live-byte accountant: every
/// AddLiveBytes delta also lands here (one relaxed add, always on), so the
/// metrics page shows the engine's current column memory across all
/// concurrent queries. Drains back to the accountant's own zero when every
/// query releases its registers.
obs::Gauge* EngineLiveBytesGauge() {
  static obs::Gauge* gauge = obs::Registry::Default()->GetOrCreateGauge(
      "stetho_engine_live_bytes",
      "Live column bytes currently held by executing queries "
      "(Column::MemoryBytes accounting)");
  return gauge;
}

/// Peak of the accountant for the most recently finished query — the number
/// footprint-conformance checks against the static bound.
obs::Gauge* EnginePeakRssGauge() {
  static obs::Gauge* gauge = obs::Registry::Default()->GetOrCreateGauge(
      "stetho_engine_peak_rss_bytes",
      "Live-byte peak recorded by the last completed query execution");
  return gauge;
}

/// All mutable state shared by the dataflow tasks of one query execution —
/// the per-query "epoch" the shared WorkerPool knows nothing about. Execute
/// owns it on the stack and blocks until the job signals done, so tasks may
/// hold raw pointers; a task is only ever submitted after being counted in
/// `in_flight`, which the done predicate drains to zero first.
struct RunState {
  const mal::Program* program = nullptr;
  const ModuleRegistry* registry = nullptr;
  ExecContext* ctx = nullptr;
  const ExecOptions* options = nullptr;
  Clock* clock = nullptr;
  WorkerPool* pool = nullptr;

  std::vector<RegisterValue> registers;
  std::vector<std::string> stmt_text;          // rendered once per pc

  // Observability, resolved once per Execute so the per-instruction hot path
  // touches only stable pointers. tracer is non-null only when span
  // recording is on; the family vectors are empty unless obs::Active().
  obs::Tracer* tracer = nullptr;
  std::vector<std::string> span_names;          // per-pc "module.function"
  std::vector<obs::Counter*> family_calls;      // per-pc kernel-family counter
  std::vector<obs::Histogram*> family_usec;     // per-pc kernel-family latency
  std::vector<std::atomic<int>> var_consumers;  // pending readers per variable
  std::atomic<int64_t> live_bytes{0};
  std::atomic<int64_t> peak_bytes{0};
  std::vector<InstructionStat> stats;

  // Dependency graph. indegree is decremented lock-free by finishing
  // predecessors; the acq_rel counter is also the fence that publishes a
  // predecessor's register writes to the dependent's executing worker.
  std::vector<std::vector<int>> dependents;
  std::vector<std::atomic<int>> indegree;
  std::atomic<bool> abort{false};

  // Scheduler self-check state (SchedSelfCheckEnabled() at Execute time):
  // producers holds the inverse dependency lists, completed flips after an
  // instruction ran. Both empty/unused when the check is off.
  std::vector<std::vector<int>> producers;
  std::vector<std::atomic<bool>> completed;

  // Admission state (guarded by job_mu): at most `dop` instructions of this
  // query are in flight on the shared pool, each carrying a "slot" — the
  // virtual thread id in [0, dop) recorded in stats and trace events, so
  // thread-utilization analysis keeps its per-query meaning on a pool whose
  // workers serve many queries.
  std::mutex job_mu;
  std::condition_variable done_cv;
  std::deque<int> ready;
  std::vector<int> free_slots;
  int dop = 1;
  int in_flight = 0;
  int unfinished = 0;
  bool done = false;
  Status error;

  RunState(size_t num_vars, size_t num_ins)
      : var_consumers(num_vars), indegree(num_ins), completed(num_ins) {}

  void AddLiveBytes(int64_t delta) {
    EngineLiveBytesGauge()->Add(delta);
    int64_t now = live_bytes.fetch_add(delta, std::memory_order_relaxed) + delta;
    int64_t peak = peak_bytes.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_bytes.compare_exchange_weak(peak, now,
                                             std::memory_order_relaxed)) {
    }
  }
};

/// Executes one instruction as logical thread `thread_id`. Returns the
/// kernel's status; scheduling bookkeeping stays in the caller.
Status RunInstruction(RunState* state, int pc, int thread_id) {
  const mal::Instruction& ins = state->program->instruction(pc);
  const std::string& stmt = state->stmt_text[static_cast<size_t>(pc)];
  profiler::Profiler* prof = state->options->profiler;

  if (prof != nullptr) {
    prof->EmitStart(pc, thread_id, state->live_bytes.load(std::memory_order_relaxed),
                    stmt);
  }
  int64_t t0 = state->clock->NowMicros();

  // Resolve the kernel.
  auto kernel = state->registry->Lookup(ins.module, ins.function);
  if (!kernel.ok()) return kernel.status();

  // Materialize constants and collect argument registers.
  KernelArgs args;
  args.ins = &ins;
  args.ctx = state->ctx;
  std::vector<RegisterValue> const_storage;
  const_storage.reserve(ins.args.size());
  args.args.reserve(ins.args.size());
  args.results.reserve(ins.results.size());
  // Reserve first: pointers into const_storage must stay stable.
  for (const mal::Argument& arg : ins.args) {
    if (arg.kind == mal::Argument::Kind::kConst) {
      const_storage.push_back(RegisterValue::Scalar(arg.constant));
    }
  }
  size_t const_i = 0;
  for (const mal::Argument& arg : ins.args) {
    if (arg.kind == mal::Argument::Kind::kVar) {
      args.args.push_back(&state->registers[static_cast<size_t>(arg.var)]);
    } else {
      args.args.push_back(&const_storage[const_i++]);
    }
  }
  for (int r : ins.results) {
    args.results.push_back(&state->registers[static_cast<size_t>(r)]);
  }

  Status st = (*kernel.value())(args);
  if (!st.ok()) {
    return Status(st.code(), StrFormat("pc=%d %s: %s", pc, stmt.c_str(),
                                       st.message().c_str()));
  }

  if (state->options->pad_instruction_usec > 0) {
    state->clock->SleepMicros(state->options->pad_instruction_usec);
  }

  // Memory accounting: results enter the live set...
  int64_t result_bytes = 0;
  for (int r : ins.results) {
    result_bytes +=
        static_cast<int64_t>(state->registers[static_cast<size_t>(r)].MemoryBytes());
  }
  if (result_bytes > 0) state->AddLiveBytes(result_bytes);

  // ...and fully-consumed argument BATs leave it. The consumer counters were
  // initialized to the number of instructions reading each variable; the
  // last reader frees the register.
  for (const mal::Argument& arg : ins.args) {
    if (arg.kind != mal::Argument::Kind::kVar) continue;
    std::atomic<int>& counter = state->var_consumers[static_cast<size_t>(arg.var)];
    if (counter.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      RegisterValue& reg = state->registers[static_cast<size_t>(arg.var)];
      int64_t bytes = static_cast<int64_t>(reg.MemoryBytes());
      reg.bat.reset();
      if (bytes > 0) state->AddLiveBytes(-bytes);
    }
  }
  // Dead results (no consumers at all) are released immediately.
  for (int r : ins.results) {
    std::atomic<int>& counter = state->var_consumers[static_cast<size_t>(r)];
    if (counter.load(std::memory_order_acquire) == 0) {
      RegisterValue& reg = state->registers[static_cast<size_t>(r)];
      int64_t bytes = static_cast<int64_t>(reg.MemoryBytes());
      reg.bat.reset();
      if (bytes > 0) state->AddLiveBytes(-bytes);
    }
  }

  int64_t t1 = state->clock->NowMicros();
  InstructionStat& stat = state->stats[static_cast<size_t>(pc)];
  stat.pc = pc;
  stat.thread = thread_id;
  stat.start_us = t0;
  stat.usec = t1 - t0;
  stat.rss_after_bytes = state->live_bytes.load(std::memory_order_relaxed);

  if (prof != nullptr) {
    prof->EmitDone(pc, thread_id, t1 - t0, stat.rss_after_bytes, stmt);
  }
  if (state->options->progress != nullptr) {
    state->options->progress->OnInstructionDone(pc, t1 - t0, t1,
                                                stat.rss_after_bytes);
  }

  // Kernel-family metrics and the kernel span both reuse t0/t1 — tracing an
  // instruction adds no clock read beyond what the stats above already paid.
  if (!state->family_calls.empty()) {
    if (obs::Counter* calls = state->family_calls[static_cast<size_t>(pc)]) {
      calls->Increment();
    }
    if (obs::Histogram* usec = state->family_usec[static_cast<size_t>(pc)]) {
      usec->Observe(t1 - t0);
    }
  }
  if (state->tracer != nullptr) {
    state->tracer->RecordComplete(state->span_names[static_cast<size_t>(pc)],
                                  "kernel", thread_id, pc, t0, t1 - t0);
  }
  return Status::OK();
}

void RunDataflowTask(RunState* state, int pc, int slot);

/// Admits ready instructions to the pool while slots are free. job_mu held.
void PumpLocked(RunState* state) {
  while (!state->abort.load(std::memory_order_relaxed) &&
         state->in_flight < state->dop && !state->ready.empty()) {
    int pc = state->ready.front();
    state->ready.pop_front();
    int slot = state->free_slots.back();
    state->free_slots.pop_back();
    ++state->in_flight;
    state->pool->Submit([state, pc, slot] { RunDataflowTask(state, pc, slot); });
  }
}

/// One pool task: run the instruction, unlock dependents, admit more work,
/// and signal completion. On abort the instruction is skipped but its
/// in-flight/unfinished accounting is still drained, so a kernel failing
/// mid-flight with queued dependents can never leave Execute hanging.
void RunDataflowTask(RunState* state, int pc, int slot) {
  Status st;
  // Debug-gated scheduler self-check: a dispatched task's producers must
  // all have completed. A violation is a scheduler bug (dispatch past an
  // unfinished dependency), so record it, dump the flight recorder for
  // context, and abort the query instead of reading a half-built register.
  if (!state->producers.empty()) {
    for (int q : state->producers[static_cast<size_t>(pc)]) {
      if (state->completed[static_cast<size_t>(q)].load(
              std::memory_order_acquire)) {
        continue;
      }
      static obs::Counter* violations =
          obs::Registry::Default()->GetOrCreateCounter(
              "stetho_sched_selfcheck_violations_total",
              "Dataflow tasks dispatched before a producer completed "
              "(STETHO_SCHED_SELFCHECK)");
      violations->Increment();
      std::string what = StrFormat(
          "sched-selfcheck: pc=%d dispatched before producer pc=%d "
          "completed", pc, q);
      obs::FlightRecorder* recorder = obs::FlightRecorder::Default();
      recorder->Note(what);
      recorder->Dump("sched-selfcheck violation");
      st = Status::Internal(what);
      break;
    }
  }
  if (st.ok() && !state->abort.load(std::memory_order_acquire)) {
    st = RunInstruction(state, pc, slot);
    if (st.ok() && !state->completed.empty()) {
      state->completed[static_cast<size_t>(pc)].store(
          true, std::memory_order_release);
    }
  }

  // Unlock dependents outside the job lock. The acq_rel decrement chains
  // every predecessor's writes into the dependent's task.
  std::vector<int> newly_ready;
  if (st.ok() && !state->abort.load(std::memory_order_acquire)) {
    for (int dep : state->dependents[static_cast<size_t>(pc)]) {
      if (state->indegree[static_cast<size_t>(dep)].fetch_sub(
              1, std::memory_order_acq_rel) == 1) {
        newly_ready.push_back(dep);
      }
    }
  }

  std::lock_guard<std::mutex> lock(state->job_mu);
  --state->in_flight;
  --state->unfinished;
  state->free_slots.push_back(slot);
  if (!st.ok()) {
    if (state->error.ok()) state->error = st;
    state->abort.store(true, std::memory_order_release);
  }
  for (int dep : newly_ready) state->ready.push_back(dep);
  PumpLocked(state);
  bool finished = state->abort.load(std::memory_order_relaxed)
                      ? state->in_flight == 0
                      : state->unfinished == 0 ||
                            (state->in_flight == 0 && state->ready.empty());
  if (finished) {
    state->done = true;
    // Notify while holding job_mu: the waiting Execute cannot destroy the
    // RunState before this task releases the lock.
    state->done_cv.notify_all();
  }
}

/// Makes an arbitrary module name safe for a metric name (the registry
/// aborts on malformed names, and module names come from parsed MAL text).
std::string MetricToken(const std::string& module) {
  std::string out;
  out.reserve(module.size());
  for (char c : module) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  if (out.empty()) out = "unknown";
  return out;
}

/// Resolves per-kernel-family counters/histograms into per-pc vectors, one
/// registry lookup per distinct module in the plan.
void ResolveFamilyMetrics(RunState* state, const mal::Program& program) {
  obs::Registry* registry = obs::Registry::Default();
  std::map<std::string, std::pair<obs::Counter*, obs::Histogram*>> families;
  state->family_calls.resize(program.size(), nullptr);
  state->family_usec.resize(program.size(), nullptr);
  for (size_t pc = 0; pc < program.size(); ++pc) {
    const std::string& module = program.instruction(pc).module;
    auto [it, inserted] = families.try_emplace(module);
    if (inserted) {
      std::string token = MetricToken(module);
      it->second.first = registry->GetOrCreateCounter(
          "stetho_kernel_" + token + "_calls_total",
          "Kernel invocations in MAL module '" + module + "'");
      it->second.second = registry->GetOrCreateHistogram(
          "stetho_kernel_" + token + "_usec",
          "Kernel latency in microseconds for MAL module '" + module + "'",
          obs::Histogram::DefaultLatencyBounds());
    }
    state->family_calls[pc] = it->second.first;
    state->family_usec[pc] = it->second.second;
  }
}

}  // namespace

Result<QueryResult> Interpreter::Execute(const mal::Program& program,
                                         const ExecOptions& options) const {
  Result<QueryResult> result = ExecuteInternal(program, options);
  if (!result.ok()) {
    obs::FlightRecorder* recorder = options.recorder != nullptr
                                        ? options.recorder
                                        : obs::FlightRecorder::Default();
    if (recorder->enabled()) {
      std::string reason = "query aborted: " + result.status().ToString();
      recorder->Note(reason);
      recorder->Dump(reason);
    }
  }
  return result;
}

Result<QueryResult> Interpreter::ExecuteInternal(
    const mal::Program& program, const ExecOptions& options) const {
  STETHO_RETURN_IF_ERROR(program.Validate());

  Clock* clock = options.clock != nullptr
                     ? options.clock
                     : static_cast<Clock*>(SteadyClock::Default());
  ExecContext ctx(catalog_, clock);

  RunState state(program.num_variables(), program.size());
  state.program = &program;
  state.registry = registry_;
  state.ctx = &ctx;
  state.options = &options;
  state.clock = clock;
  state.registers.resize(program.num_variables());
  state.stats.resize(program.size());

  // Pre-render statement text (profiler payload) and consumer counts.
  state.stmt_text.reserve(program.size());
  for (const mal::Instruction& ins : program.instructions()) {
    state.stmt_text.push_back(program.InstructionToString(ins));
    for (const mal::Argument& arg : ins.args) {
      if (arg.kind == mal::Argument::Kind::kVar) {
        state.var_consumers[static_cast<size_t>(arg.var)].fetch_add(
            1, std::memory_order_relaxed);
      }
    }
  }

  obs::Tracer* tracer =
      options.tracer != nullptr ? options.tracer : obs::Tracer::Default();
  if (tracer->enabled()) {
    state.tracer = tracer;
    state.span_names.reserve(program.size());
    for (const mal::Instruction& ins : program.instructions()) {
      state.span_names.push_back(ins.module + "." + ins.function);
    }
  }
  if (obs::Active()) ResolveFamilyMetrics(&state, program);

  int64_t run_start = clock->NowMicros();

  int num_threads = options.num_threads > 0
                        ? options.num_threads
                        : static_cast<int>(std::thread::hardware_concurrency());
  if (num_threads < 1) num_threads = 1;

  if (!options.use_dataflow || num_threads == 1 || program.size() <= 1) {
    // Sequential interpretation in plan order (valid: SSA implies defs
    // precede uses) on the calling thread — the "sequential execution where
    // multithreading was expected" anomaly path must not touch the pool.
    for (size_t pc = 0; pc < program.size(); ++pc) {
      Status st = RunInstruction(&state, static_cast<int>(pc), 0);
      if (!st.ok()) return st;
    }
  } else {
    // Dataflow scheduling on the shared worker pool: atomic dependency
    // counters, per-query admission up to `num_threads` slots.
    state.pool = options.pool != nullptr ? options.pool : WorkerPool::Default();
    state.pool->EnsureWorkers(num_threads);
    state.dop = num_threads;
    state.free_slots.reserve(static_cast<size_t>(num_threads));
    for (int slot = num_threads - 1; slot >= 0; --slot) {
      state.free_slots.push_back(slot);
    }

    std::vector<std::vector<int>> deps = program.BuildDependencies();
    if (SchedSelfCheckEnabled()) state.producers = deps;
    state.dependents.resize(program.size());
    for (size_t pc = 0; pc < program.size(); ++pc) {
      state.indegree[pc].store(static_cast<int>(deps[pc].size()),
                               std::memory_order_relaxed);
      for (int d : deps[pc]) {
        state.dependents[static_cast<size_t>(d)].push_back(static_cast<int>(pc));
      }
    }
    state.unfinished = static_cast<int>(program.size());

    std::unique_lock<std::mutex> lock(state.job_mu);
    for (size_t pc = 0; pc < program.size(); ++pc) {
      if (state.indegree[pc].load(std::memory_order_relaxed) == 0) {
        state.ready.push_back(static_cast<int>(pc));
      }
    }
    PumpLocked(&state);
    if (state.in_flight == 0) state.done = true;  // nothing runnable: stall
    state.done_cv.wait(lock, [&state] { return state.done; });
    if (!state.error.ok()) return state.error;
    if (state.unfinished != 0) {
      return Status::Internal(
          StrFormat("dataflow scheduler stalled with %d unfinished "
                    "instructions (cyclic plan?)",
                    state.unfinished));
    }
  }

  QueryResult result;
  result.columns = ctx.TakeResults();
  result.stats = std::move(state.stats);
  result.total_usec = clock->NowMicros() - run_start;
  result.peak_rss_bytes = state.peak_bytes.load(std::memory_order_relaxed);
  EnginePeakRssGauge()->Set(result.peak_rss_bytes);
  // Whatever the query still holds (result columns about to be handed to the
  // caller) leaves the engine with it — drain the process-wide mirror so it
  // converges to zero when no query is executing.
  EngineLiveBytesGauge()->Add(
      -state.live_bytes.load(std::memory_order_relaxed));
  return result;
}

}  // namespace stetho::engine
