#include "engine/interpreter.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "common/string_util.h"

namespace stetho::engine {
namespace {

/// All mutable state shared by the workers of one query execution.
struct RunState {
  const mal::Program* program = nullptr;
  const ModuleRegistry* registry = nullptr;
  ExecContext* ctx = nullptr;
  const ExecOptions* options = nullptr;
  Clock* clock = nullptr;

  std::vector<RegisterValue> registers;
  std::vector<std::string> stmt_text;          // rendered once per pc
  std::vector<std::atomic<int>> var_consumers;  // pending readers per variable
  std::atomic<int64_t> live_bytes{0};
  std::atomic<int64_t> peak_bytes{0};
  std::vector<InstructionStat> stats;

  // Scheduler state (guarded by mu).
  std::mutex mu;
  std::condition_variable cv;
  std::deque<int> ready;
  std::vector<int> indegree;
  std::vector<std::vector<int>> dependents;
  int unfinished = 0;
  bool abort = false;
  Status error;

  explicit RunState(size_t num_vars)
      : var_consumers(num_vars) {}

  void AddLiveBytes(int64_t delta) {
    int64_t now = live_bytes.fetch_add(delta, std::memory_order_relaxed) + delta;
    int64_t peak = peak_bytes.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_bytes.compare_exchange_weak(peak, now,
                                             std::memory_order_relaxed)) {
    }
  }
};

/// Executes one instruction on worker `thread_id`. Returns the kernel's
/// status; scheduling bookkeeping stays in the caller.
Status RunInstruction(RunState* state, int pc, int thread_id) {
  const mal::Instruction& ins = state->program->instruction(pc);
  const std::string& stmt = state->stmt_text[static_cast<size_t>(pc)];
  profiler::Profiler* prof = state->options->profiler;

  if (prof != nullptr) {
    prof->EmitStart(pc, thread_id, state->live_bytes.load(std::memory_order_relaxed),
                    stmt);
  }
  int64_t t0 = state->clock->NowMicros();

  // Resolve the kernel.
  auto kernel = state->registry->Lookup(ins.module, ins.function);
  if (!kernel.ok()) return kernel.status();

  // Materialize constants and collect argument registers.
  KernelArgs args;
  args.ins = &ins;
  args.ctx = state->ctx;
  std::vector<RegisterValue> const_storage;
  const_storage.reserve(ins.args.size());
  // Reserve first: pointers into const_storage must stay stable.
  for (const mal::Argument& arg : ins.args) {
    if (arg.kind == mal::Argument::Kind::kConst) {
      const_storage.push_back(RegisterValue::Scalar(arg.constant));
    }
  }
  size_t const_i = 0;
  for (const mal::Argument& arg : ins.args) {
    if (arg.kind == mal::Argument::Kind::kVar) {
      args.args.push_back(&state->registers[static_cast<size_t>(arg.var)]);
    } else {
      args.args.push_back(&const_storage[const_i++]);
    }
  }
  for (int r : ins.results) {
    args.results.push_back(&state->registers[static_cast<size_t>(r)]);
  }

  Status st = (*kernel.value())(args);
  if (!st.ok()) {
    return Status(st.code(), StrFormat("pc=%d %s: %s", pc, stmt.c_str(),
                                       st.message().c_str()));
  }

  if (state->options->pad_instruction_usec > 0) {
    state->clock->SleepMicros(state->options->pad_instruction_usec);
  }

  // Memory accounting: results enter the live set...
  int64_t result_bytes = 0;
  for (int r : ins.results) {
    result_bytes +=
        static_cast<int64_t>(state->registers[static_cast<size_t>(r)].MemoryBytes());
  }
  if (result_bytes > 0) state->AddLiveBytes(result_bytes);

  // ...and fully-consumed argument BATs leave it. The consumer counters were
  // initialized to the number of instructions reading each variable; the
  // last reader frees the register.
  for (const mal::Argument& arg : ins.args) {
    if (arg.kind != mal::Argument::Kind::kVar) continue;
    std::atomic<int>& counter = state->var_consumers[static_cast<size_t>(arg.var)];
    if (counter.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      RegisterValue& reg = state->registers[static_cast<size_t>(arg.var)];
      int64_t bytes = static_cast<int64_t>(reg.MemoryBytes());
      reg.bat.reset();
      if (bytes > 0) state->AddLiveBytes(-bytes);
    }
  }
  // Dead results (no consumers at all) are released immediately.
  for (int r : ins.results) {
    std::atomic<int>& counter = state->var_consumers[static_cast<size_t>(r)];
    if (counter.load(std::memory_order_acquire) == 0) {
      RegisterValue& reg = state->registers[static_cast<size_t>(r)];
      int64_t bytes = static_cast<int64_t>(reg.MemoryBytes());
      reg.bat.reset();
      if (bytes > 0) state->AddLiveBytes(-bytes);
    }
  }

  int64_t t1 = state->clock->NowMicros();
  InstructionStat& stat = state->stats[static_cast<size_t>(pc)];
  stat.pc = pc;
  stat.thread = thread_id;
  stat.start_us = t0;
  stat.usec = t1 - t0;
  stat.rss_after_bytes = state->live_bytes.load(std::memory_order_relaxed);

  if (prof != nullptr) {
    prof->EmitDone(pc, thread_id, t1 - t0, stat.rss_after_bytes, stmt);
  }
  return Status::OK();
}

/// Worker loop for the dataflow scheduler.
void WorkerLoop(RunState* state, int thread_id) {
  std::unique_lock<std::mutex> lock(state->mu);
  while (true) {
    state->cv.wait(lock, [state] {
      return !state->ready.empty() || state->abort || state->unfinished == 0;
    });
    if (state->abort || (state->ready.empty() && state->unfinished == 0)) {
      return;
    }
    if (state->ready.empty()) continue;
    int pc = state->ready.front();
    state->ready.pop_front();
    lock.unlock();

    Status st = RunInstruction(state, pc, thread_id);

    lock.lock();
    --state->unfinished;
    if (!st.ok()) {
      if (state->error.ok()) state->error = st;
      state->abort = true;
      state->cv.notify_all();
      return;
    }
    for (int dep : state->dependents[static_cast<size_t>(pc)]) {
      if (--state->indegree[static_cast<size_t>(dep)] == 0) {
        state->ready.push_back(dep);
      }
    }
    state->cv.notify_all();
  }
}

}  // namespace

Result<QueryResult> Interpreter::Execute(const mal::Program& program,
                                         const ExecOptions& options) const {
  STETHO_RETURN_IF_ERROR(program.Validate());

  Clock* clock = options.clock != nullptr
                     ? options.clock
                     : static_cast<Clock*>(SteadyClock::Default());
  ExecContext ctx(catalog_, clock);

  RunState state(program.num_variables());
  state.program = &program;
  state.registry = registry_;
  state.ctx = &ctx;
  state.options = &options;
  state.clock = clock;
  state.registers.resize(program.num_variables());
  state.stats.resize(program.size());

  // Pre-render statement text (profiler payload) and consumer counts.
  state.stmt_text.reserve(program.size());
  for (const mal::Instruction& ins : program.instructions()) {
    state.stmt_text.push_back(program.InstructionToString(ins));
    for (const mal::Argument& arg : ins.args) {
      if (arg.kind == mal::Argument::Kind::kVar) {
        state.var_consumers[static_cast<size_t>(arg.var)].fetch_add(
            1, std::memory_order_relaxed);
      }
    }
  }

  int64_t run_start = clock->NowMicros();

  int num_threads = options.num_threads > 0
                        ? options.num_threads
                        : static_cast<int>(std::thread::hardware_concurrency());
  if (num_threads < 1) num_threads = 1;

  if (!options.use_dataflow || num_threads == 1 || program.size() <= 1) {
    // Sequential interpretation in plan order (valid: SSA implies defs
    // precede uses).
    for (size_t pc = 0; pc < program.size(); ++pc) {
      Status st = RunInstruction(&state, static_cast<int>(pc), 0);
      if (!st.ok()) return st;
    }
  } else {
    // Dataflow scheduling: dependency counting + worker pool.
    std::vector<std::vector<int>> deps = program.BuildDependencies();
    state.dependents.resize(program.size());
    state.indegree.assign(program.size(), 0);
    for (size_t pc = 0; pc < program.size(); ++pc) {
      state.indegree[pc] = static_cast<int>(deps[pc].size());
      for (int d : deps[pc]) {
        state.dependents[static_cast<size_t>(d)].push_back(static_cast<int>(pc));
      }
    }
    state.unfinished = static_cast<int>(program.size());
    for (size_t pc = 0; pc < program.size(); ++pc) {
      if (state.indegree[pc] == 0) state.ready.push_back(static_cast<int>(pc));
    }

    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) {
      workers.emplace_back(WorkerLoop, &state, t);
    }
    for (std::thread& t : workers) t.join();
    if (!state.error.ok()) return state.error;
    if (state.unfinished != 0) {
      return Status::Internal(
          StrFormat("dataflow scheduler stalled with %d unfinished "
                    "instructions (cyclic plan?)",
                    state.unfinished));
    }
  }

  QueryResult result;
  result.columns = ctx.TakeResults();
  result.stats = std::move(state.stats);
  result.total_usec = clock->NowMicros() - run_start;
  result.peak_rss_bytes = state.peak_bytes.load(std::memory_order_relaxed);
  return result;
}

}  // namespace stetho::engine
