#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "common/string_util.h"
#include "engine/kernel.h"

namespace stetho::engine {
namespace {

using storage::Column;
using storage::ColumnPtr;
using storage::DataType;
using storage::Value;

/// Comparison operators accepted by algebra.thetaselect.
enum class Theta { kEq, kNe, kLt, kLe, kGt, kGe };

Result<Theta> ParseTheta(const std::string& op) {
  if (op == "==") return Theta::kEq;
  if (op == "!=") return Theta::kNe;
  if (op == "<") return Theta::kLt;
  if (op == "<=") return Theta::kLe;
  if (op == ">") return Theta::kGt;
  if (op == ">=") return Theta::kGe;
  return Status::InvalidArgument("unknown theta operator '" + op + "'");
}

bool ThetaHolds(Theta op, int cmp) {
  switch (op) {
    case Theta::kEq:
      return cmp == 0;
    case Theta::kNe:
      return cmp != 0;
    case Theta::kLt:
      return cmp < 0;
    case Theta::kLe:
      return cmp <= 0;
    case Theta::kGt:
      return cmp > 0;
    case Theta::kGe:
      return cmp >= 0;
  }
  return false;
}

/// SQL LIKE pattern match with '%' (any sequence) and '_' (any single char).
bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer algorithm with backtracking on the last '%'.
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

/// True when `v` can drive the int64 fast path (kOid scalars share the
/// int64 representation).
bool IsIntScalar(const Value& v) {
  return v.type() == DataType::kInt64 || v.type() == DataType::kOid;
}

/// True when `v` coerces losslessly into the double fast path.
bool IsNumScalar(const Value& v) {
  return IsIntScalar(v) || v.type() == DataType::kDouble;
}

double NumScalarValue(const Value& v) {
  return v.type() == DataType::kDouble ? v.AsDouble()
                                       : static_cast<double>(v.AsInt());
}

/// Typed range scan over the candidate list: branch on the column type once,
/// then run a tight loop over the raw arrays. `lo`/`hi` are already widened
/// to sentinels for NULL (unbounded) bounds.
template <typename T>
Status SelectScanTyped(const Column& col, const Column& cand, const T* vals,
                       T lo, T hi, Column* out) {
  const std::vector<int64_t>& cand_oids = cand.ints();
  const size_t limit = col.size();
  const bool check_nulls = col.has_nulls();
  for (size_t k = 0; k < cand_oids.size(); ++k) {
    uint64_t pos = static_cast<uint64_t>(cand_oids[k]);
    if (pos >= limit) {
      return Status::OutOfRange("algebra.select: candidate oid out of range");
    }
    if (check_nulls && col.IsNull(pos)) continue;
    T v = vals[pos];
    if (v >= lo && v <= hi) out->AppendOid(pos);
  }
  return Status::OK();
}

/// algebra.select(col, cand, low, high) :bat[:oid]
/// Positions (from the candidate list) whose value lies in [low, high].
/// A NULL bound means unbounded on that side; NULL values never qualify.
Status AlgebraSelect(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 4, 1));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr col, ArgBat(a, 0));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr cand, ArgBat(a, 1));
  STETHO_ASSIGN_OR_RETURN(Value low, ArgScalar(a, 2));
  STETHO_ASSIGN_OR_RETURN(Value high, ArgScalar(a, 3));

  ColumnPtr out = Column::Make(DataType::kOid);
  const DataType ct = col->type();
  if ((ct == DataType::kInt64 || ct == DataType::kOid) &&
      (low.is_null() || IsIntScalar(low)) &&
      (high.is_null() || IsIntScalar(high))) {
    int64_t lo = low.is_null() ? std::numeric_limits<int64_t>::min() : low.AsInt();
    int64_t hi = high.is_null() ? std::numeric_limits<int64_t>::max() : high.AsInt();
    STETHO_RETURN_IF_ERROR(
        SelectScanTyped<int64_t>(*col, *cand, col->ints().data(), lo, hi, out.get()));
  } else if (ct == DataType::kDouble && (low.is_null() || IsNumScalar(low)) &&
             (high.is_null() || IsNumScalar(high))) {
    double lo = low.is_null() ? -std::numeric_limits<double>::infinity()
                              : NumScalarValue(low);
    double hi = high.is_null() ? std::numeric_limits<double>::infinity()
                               : NumScalarValue(high);
    STETHO_RETURN_IF_ERROR(
        SelectScanTyped<double>(*col, *cand, col->doubles().data(), lo, hi, out.get()));
  } else {
    // Generic boxed fallback: string columns, exotic bound types.
    for (size_t k = 0; k < cand->size(); ++k) {
      uint64_t pos = cand->OidAt(k);
      if (pos >= col->size()) {
        return Status::OutOfRange("algebra.select: candidate oid out of range");
      }
      if (col->IsNull(pos)) continue;
      Value v = col->GetValue(pos);
      if (!low.is_null() && v.Compare(low) < 0) continue;
      if (!high.is_null() && v.Compare(high) > 0) continue;
      out->AppendOid(pos);
    }
  }
  *a.results[0] = RegisterValue::Bat(std::move(out));
  return Status::OK();
}

/// Typed theta scan: the comparison op is loop-invariant, so the per-row
/// switch predicts perfectly; the win is never boxing values.
template <typename T>
Status ThetaScanTyped(const Column& col, const Column& cand, const T* vals,
                      Theta op, T pivot, Column* out) {
  const std::vector<int64_t>& cand_oids = cand.ints();
  const size_t limit = col.size();
  const bool check_nulls = col.has_nulls();
  for (size_t k = 0; k < cand_oids.size(); ++k) {
    uint64_t pos = static_cast<uint64_t>(cand_oids[k]);
    if (pos >= limit) {
      return Status::OutOfRange("algebra.thetaselect: candidate oid out of range");
    }
    if (check_nulls && col.IsNull(pos)) continue;
    T v = vals[pos];
    int cmp = v < pivot ? -1 : (v > pivot ? 1 : 0);
    if (ThetaHolds(op, cmp)) out->AppendOid(pos);
  }
  return Status::OK();
}

/// algebra.thetaselect(col, cand, value, op) :bat[:oid]
Status AlgebraThetaSelect(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 4, 1));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr col, ArgBat(a, 0));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr cand, ArgBat(a, 1));
  STETHO_ASSIGN_OR_RETURN(Value pivot, ArgScalar(a, 2));
  STETHO_ASSIGN_OR_RETURN(std::string op_name, ArgString(a, 3));
  STETHO_ASSIGN_OR_RETURN(Theta op, ParseTheta(op_name));

  ColumnPtr out = Column::Make(DataType::kOid);
  const DataType ct = col->type();
  if ((ct == DataType::kInt64 || ct == DataType::kOid) && IsIntScalar(pivot)) {
    STETHO_RETURN_IF_ERROR(ThetaScanTyped<int64_t>(
        *col, *cand, col->ints().data(), op, pivot.AsInt(), out.get()));
  } else if (ct == DataType::kDouble && IsNumScalar(pivot)) {
    STETHO_RETURN_IF_ERROR(ThetaScanTyped<double>(
        *col, *cand, col->doubles().data(), op, NumScalarValue(pivot), out.get()));
  } else {
    for (size_t k = 0; k < cand->size(); ++k) {
      uint64_t pos = cand->OidAt(k);
      if (pos >= col->size()) {
        return Status::OutOfRange("algebra.thetaselect: candidate oid out of range");
      }
      if (col->IsNull(pos)) continue;
      if (ThetaHolds(op, col->GetValue(pos).Compare(pivot))) {
        out->AppendOid(pos);
      }
    }
  }
  *a.results[0] = RegisterValue::Bat(std::move(out));
  return Status::OK();
}

/// algebra.likeselect(col, cand, pattern) :bat[:oid] — SQL LIKE filter.
Status AlgebraLikeSelect(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 3, 1));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr col, ArgBat(a, 0));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr cand, ArgBat(a, 1));
  STETHO_ASSIGN_OR_RETURN(std::string pattern, ArgString(a, 2));
  if (col->type() != DataType::kString) {
    return Status::TypeError("algebra.likeselect: column must be :str");
  }
  ColumnPtr out = Column::Make(DataType::kOid);
  for (size_t k = 0; k < cand->size(); ++k) {
    uint64_t pos = cand->OidAt(k);
    if (pos >= col->size()) {
      return Status::OutOfRange("algebra.likeselect: candidate oid out of range");
    }
    if (col->IsNull(pos)) continue;
    if (LikeMatch(col->StringAt(pos), pattern)) out->AppendOid(pos);
  }
  *a.results[0] = RegisterValue::Bat(std::move(out));
  return Status::OK();
}

/// algebra.selectmask(cand, mask) :bat[:oid] — keeps the candidates whose
/// aligned :bit mask entry is true (used for complex WHERE residuals).
Status AlgebraSelectMask(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 2, 1));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr cand, ArgBat(a, 0));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr mask, ArgBat(a, 1));
  if (mask->type() != DataType::kBool) {
    return Status::TypeError("algebra.selectmask: mask must be :bit");
  }
  if (mask->size() != cand->size()) {
    return Status::InvalidArgument(
        "algebra.selectmask: mask not aligned with candidates");
  }
  ColumnPtr out = Column::Make(DataType::kOid);
  for (size_t k = 0; k < cand->size(); ++k) {
    if (!mask->IsNull(k) && mask->BoolAt(k)) out->AppendOid(cand->OidAt(k));
  }
  *a.results[0] = RegisterValue::Bat(std::move(out));
  return Status::OK();
}

/// algebra.projection(cand, col) :bat — col values at the candidate oids.
Status AlgebraProjection(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 2, 1));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr cand, ArgBat(a, 0));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr col, ArgBat(a, 1));
  // Candidate oids share the int64 backing array: hand it to the typed
  // gather directly instead of copying it into a positions vector.
  STETHO_ASSIGN_OR_RETURN(ColumnPtr out, col->Gather(cand->ints()));
  *a.results[0] = RegisterValue::Bat(std::move(out));
  return Status::OK();
}

/// Hash key for join build sides: canonicalizes numerics to a bit pattern.
struct JoinKey {
  uint64_t bits;
  bool operator==(const JoinKey& other) const = default;
};
struct JoinKeyHash {
  size_t operator()(const JoinKey& k) const {
    return std::hash<uint64_t>()(k.bits * 0x9E3779B97F4A7C15ULL);
  }
};

Result<JoinKey> NumericKey(const ColumnPtr& col, size_t i) {
  switch (col->type()) {
    case DataType::kInt64:
    case DataType::kOid:
    case DataType::kBool: {
      // Encode integers via their double representation so an :lng column
      // joins correctly against a :dbl column holding integral values.
      double d = static_cast<double>(col->IntAt(i));
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return JoinKey{bits};
    }
    case DataType::kDouble: {
      double d = col->DoubleAt(i);
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return JoinKey{bits};
    }
    default:
      return Status::TypeError("join key column is not numeric");
  }
}

/// algebra.join(l, r) (:bat[:oid], :bat[:oid]) — positions of matching value
/// pairs (hash equi-join; NULLs never match).
Status AlgebraJoin(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 2, 2));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr l, ArgBat(a, 0));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr r, ArgBat(a, 1));

  ColumnPtr lout = Column::Make(DataType::kOid);
  ColumnPtr rout = Column::Make(DataType::kOid);

  if (l->type() == DataType::kString || r->type() == DataType::kString) {
    if (l->type() != DataType::kString || r->type() != DataType::kString) {
      return Status::TypeError("algebra.join: cannot join :str with numeric");
    }
    std::unordered_map<std::string_view, std::vector<uint64_t>> build;
    build.reserve(r->size());
    for (size_t i = 0; i < r->size(); ++i) {
      if (!r->IsNull(i)) build[r->StringAt(i)].push_back(i);
    }
    for (size_t i = 0; i < l->size(); ++i) {
      if (l->IsNull(i)) continue;
      auto it = build.find(l->StringAt(i));
      if (it == build.end()) continue;
      for (uint64_t j : it->second) {
        lout->AppendOid(i);
        rout->AppendOid(j);
      }
    }
  } else {
    std::unordered_map<JoinKey, std::vector<uint64_t>, JoinKeyHash> build;
    build.reserve(r->size());
    for (size_t i = 0; i < r->size(); ++i) {
      if (r->IsNull(i)) continue;
      STETHO_ASSIGN_OR_RETURN(JoinKey key, NumericKey(r, i));
      build[key].push_back(i);
    }
    for (size_t i = 0; i < l->size(); ++i) {
      if (l->IsNull(i)) continue;
      STETHO_ASSIGN_OR_RETURN(JoinKey key, NumericKey(l, i));
      auto it = build.find(key);
      if (it == build.end()) continue;
      for (uint64_t j : it->second) {
        lout->AppendOid(i);
        rout->AppendOid(j);
      }
    }
  }
  *a.results[0] = RegisterValue::Bat(std::move(lout));
  *a.results[1] = RegisterValue::Bat(std::move(rout));
  return Status::OK();
}

/// Stable-sorts `order` by raw array values — no per-comparison boxing.
template <typename T>
void SortOrderTyped(std::vector<int64_t>* order, const std::vector<T>& vals,
                    bool reverse) {
  if (reverse) {
    std::stable_sort(order->begin(), order->end(), [&](int64_t x, int64_t y) {
      return vals[static_cast<size_t>(y)] < vals[static_cast<size_t>(x)];
    });
  } else {
    std::stable_sort(order->begin(), order->end(), [&](int64_t x, int64_t y) {
      return vals[static_cast<size_t>(x)] < vals[static_cast<size_t>(y)];
    });
  }
}

/// Sort permutation of `col` (stable; NULLs first; ascending unless reverse).
std::vector<int64_t> SortOrder(const ColumnPtr& col, bool reverse) {
  std::vector<int64_t> order(col->size());
  std::iota(order.begin(), order.end(), 0);
  // Typed comparators for null-free columns; NULL handling (NULLs sort
  // first via Value::Compare) stays on the boxed fallback.
  if (!col->has_nulls()) {
    switch (col->type()) {
      case DataType::kInt64:
      case DataType::kOid:
      case DataType::kBool:
        SortOrderTyped(&order, col->ints(), reverse);
        return order;
      case DataType::kDouble:
        SortOrderTyped(&order, col->doubles(), reverse);
        return order;
      case DataType::kString:
        SortOrderTyped(&order, col->strings(), reverse);
        return order;
      default:
        break;
    }
  }
  std::stable_sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
    int c = col->GetValue(static_cast<size_t>(x))
                .Compare(col->GetValue(static_cast<size_t>(y)));
    return reverse ? c > 0 : c < 0;
  });
  return order;
}

/// algebra.sort(col, reverse) (:bat, :bat[:oid]) — sorted values plus the
/// permutation that produced them.
Status AlgebraSort(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 2, 2));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr col, ArgBat(a, 0));
  STETHO_ASSIGN_OR_RETURN(Value rev, ArgScalar(a, 1));
  bool reverse = rev.type() == DataType::kBool && rev.AsBool();
  std::vector<int64_t> order = SortOrder(col, reverse);
  STETHO_ASSIGN_OR_RETURN(ColumnPtr sorted, col->Gather(order));
  ColumnPtr perm = Column::Make(DataType::kOid);
  perm->Reserve(order.size());
  for (int64_t i : order) perm->AppendOid(static_cast<uint64_t>(i));
  *a.results[0] = RegisterValue::Bat(std::move(sorted));
  *a.results[1] = RegisterValue::Bat(std::move(perm));
  return Status::OK();
}

/// algebra.slice(col, lo, hi) :bat — rows [lo, hi) (LIMIT/OFFSET).
Status AlgebraSlice(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 3, 1));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr col, ArgBat(a, 0));
  STETHO_ASSIGN_OR_RETURN(int64_t lo, ArgInt(a, 1));
  STETHO_ASSIGN_OR_RETURN(int64_t hi, ArgInt(a, 2));
  if (lo < 0 || hi < lo) {
    return Status::InvalidArgument("algebra.slice: bad range");
  }
  *a.results[0] = RegisterValue::Bat(
      col->Slice(static_cast<size_t>(lo), static_cast<size_t>(hi)));
  return Status::OK();
}

/// algebra.firstn(col, n, asc) :bat[:oid] — positions of the n smallest
/// (asc) or largest (!asc) values, in sorted order.
Status AlgebraFirstn(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 3, 1));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr col, ArgBat(a, 0));
  STETHO_ASSIGN_OR_RETURN(int64_t n, ArgInt(a, 1));
  STETHO_ASSIGN_OR_RETURN(Value asc_v, ArgScalar(a, 2));
  bool asc = !(asc_v.type() == DataType::kBool && !asc_v.AsBool());
  if (n < 0) return Status::InvalidArgument("algebra.firstn: negative n");
  std::vector<int64_t> order = SortOrder(col, /*reverse=*/!asc);
  if (static_cast<size_t>(n) < order.size()) order.resize(static_cast<size_t>(n));
  ColumnPtr out = Column::Make(DataType::kOid);
  out->Reserve(order.size());
  for (int64_t i : order) out->AppendOid(static_cast<uint64_t>(i));
  *a.results[0] = RegisterValue::Bat(std::move(out));
  return Status::OK();
}

/// batcalc.like(col, pattern) :bat[:bit] — per-row LIKE mask (used when a
/// LIKE lands inside a residual OR expression rather than a pushdown).
Status BatcalcLike(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 2, 1));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr col, ArgBat(a, 0));
  STETHO_ASSIGN_OR_RETURN(Value pat, ArgScalar(a, 1));
  if (col->type() != DataType::kString ||
      pat.type() != DataType::kString) {
    return Status::TypeError("batcalc.like: needs :str column and pattern");
  }
  ColumnPtr out = Column::Make(DataType::kBool);
  out->Reserve(col->size());
  for (size_t i = 0; i < col->size(); ++i) {
    if (col->IsNull(i)) {
      out->AppendNull();
    } else {
      out->AppendBool(LikeMatch(col->StringAt(i), pat.AsString()));
    }
  }
  *a.results[0] = RegisterValue::Bat(std::move(out));
  return Status::OK();
}

}  // namespace

void RegisterAlgebraKernels(ModuleRegistry* r) {
  STETHO_CHECK_REGISTER(r->Register("batcalc", "like", BatcalcLike));
  STETHO_CHECK_REGISTER(r->Register("algebra", "select", AlgebraSelect));
  STETHO_CHECK_REGISTER(r->Register("algebra", "thetaselect", AlgebraThetaSelect));
  STETHO_CHECK_REGISTER(r->Register("algebra", "likeselect", AlgebraLikeSelect));
  STETHO_CHECK_REGISTER(r->Register("algebra", "selectmask", AlgebraSelectMask));
  STETHO_CHECK_REGISTER(r->Register("algebra", "projection", AlgebraProjection));
  STETHO_CHECK_REGISTER(r->Register("algebra", "join", AlgebraJoin));
  STETHO_CHECK_REGISTER(r->Register("algebra", "sort", AlgebraSort));
  STETHO_CHECK_REGISTER(r->Register("algebra", "slice", AlgebraSlice));
  STETHO_CHECK_REGISTER(r->Register("algebra", "firstn", AlgebraFirstn));
}

}  // namespace stetho::engine
