#ifndef STETHO_ENGINE_INTERPRETER_H_
#define STETHO_ENGINE_INTERPRETER_H_

#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "engine/kernel.h"
#include "mal/program.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "profiler/profiler.h"
#include "storage/table.h"

namespace stetho::engine {

class WorkerPool;

/// Observer of per-instruction completion, fed by the interpreter from both
/// the dataflow and the sequential execution paths. Implementations must be
/// thread-safe (dataflow workers call concurrently) and cheap — the call
/// reuses the clock reads RunInstruction already pays for its stats, so a
/// listener adds no timing overhead of its own. The live consumer is
/// analysis::ProgressEstimator (the server's per-query progress scoreboard).
class ProgressListener {
 public:
  virtual ~ProgressListener() = default;
  /// `pc` finished after `usec` microseconds, at clock time `now_us`, with
  /// `rss_bytes` engine live bytes held after completion (the same figure
  /// stamped on trace events — lets listeners fold byte baselines without
  /// a profiler sink attached).
  virtual void OnInstructionDone(int pc, int64_t usec, int64_t now_us,
                                 int64_t rss_bytes) = 0;
};

/// Execution configuration for one query.
struct ExecOptions {
  /// Degree of parallelism: at most this many instructions of the query are
  /// in flight on the worker pool at once; 0 = hardware concurrency.
  int num_threads = 0;
  /// Worker pool executing dataflow tasks; nullptr = the lazily-started
  /// process-wide WorkerPool::Default(), shared by all concurrent queries.
  WorkerPool* pool = nullptr;
  /// When false, instructions run sequentially in plan order on one thread —
  /// the "sequential execution where multithreading was expected" anomaly the
  /// paper's demo uncovers is produced exactly this way.
  bool use_dataflow = true;
  /// Optional MAL profiler receiving start/done events.
  profiler::Profiler* profiler = nullptr;
  /// Time source; nullptr = the process steady clock.
  Clock* clock = nullptr;
  /// Synthetic per-instruction padding (µs), for deterministic trace tests.
  int64_t pad_instruction_usec = 0;
  /// Span tracer receiving one "kernel" span per executed instruction
  /// (thread-tagged with the query-local slot, so exported traces keep the
  /// profiler's thread contract); nullptr = obs::Tracer::Default(). Spans
  /// are recorded only while the tracer is enabled.
  obs::Tracer* tracer = nullptr;
  /// Flight recorder dumped when the query aborts with an error;
  /// nullptr = obs::FlightRecorder::Default(). No-op while disabled.
  obs::FlightRecorder* recorder = nullptr;
  /// Optional per-instruction completion observer (live progress/ETA);
  /// nullptr = none. Must outlive Execute().
  ProgressListener* progress = nullptr;
};

/// Post-mortem per-instruction record kept by the interpreter (independent
/// of the profiler, which may be filtered or absent).
struct InstructionStat {
  int pc = 0;
  /// Logical thread id in [0, num_threads): the query-local admission slot
  /// under dataflow execution (pool workers are shared across queries), or
  /// 0 on the sequential path. Also stamped on trace events.
  int thread = 0;
  int64_t start_us = 0;       ///< clock time at instruction start
  int64_t usec = 0;           ///< elapsed microseconds
  int64_t rss_after_bytes = 0;  ///< engine live bytes after completion
};

/// The outcome of executing a MAL program.
struct QueryResult {
  std::vector<ResultColumn> columns;       ///< sql.resultSet / io.print output
  std::vector<InstructionStat> stats;      ///< indexed by pc
  int64_t total_usec = 0;
  /// Peak engine live-column memory observed during execution.
  int64_t peak_rss_bytes = 0;
};

/// The MAL interpreter: executes a Program against a Catalog, scheduling
/// independent instructions across a worker pool (MonetDB's dataflow
/// execution). Stateless and const — one Interpreter may serve concurrent
/// queries.
class Interpreter {
 public:
  explicit Interpreter(storage::Catalog* catalog,
                       const ModuleRegistry* registry = ModuleRegistry::Default())
      : catalog_(catalog), registry_(registry) {}

  /// Runs `program` to completion (or first error). The program must pass
  /// Program::Validate().
  Result<QueryResult> Execute(const mal::Program& program,
                              const ExecOptions& options) const;

  storage::Catalog* catalog() const { return catalog_; }

 private:
  Result<QueryResult> ExecuteInternal(const mal::Program& program,
                                      const ExecOptions& options) const;

  storage::Catalog* catalog_;
  const ModuleRegistry* registry_;
};

}  // namespace stetho::engine

#endif  // STETHO_ENGINE_INTERPRETER_H_
