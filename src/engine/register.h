#ifndef STETHO_ENGINE_REGISTER_H_
#define STETHO_ENGINE_REGISTER_H_

#include "storage/column.h"
#include "storage/value.h"

namespace stetho::engine {

/// Runtime value of one MAL variable: either a scalar or a BAT reference.
/// Registers are written exactly once (plans are SSA) and read by dependent
/// instructions after the dataflow scheduler establishes happens-before.
struct RegisterValue {
  storage::Value scalar;
  storage::ColumnPtr bat;  // non-null iff the register holds a BAT

  bool is_bat() const { return bat != nullptr; }

  static RegisterValue Scalar(storage::Value v) {
    RegisterValue r;
    r.scalar = std::move(v);
    return r;
  }
  static RegisterValue Bat(storage::ColumnPtr b) {
    RegisterValue r;
    r.bat = std::move(b);
    return r;
  }

  /// Approximate heap bytes held (0 for scalars).
  size_t MemoryBytes() const { return bat ? bat->MemoryBytes() : 0; }
};

}  // namespace stetho::engine

#endif  // STETHO_ENGINE_REGISTER_H_
