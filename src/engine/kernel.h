#ifndef STETHO_ENGINE_KERNEL_H_
#define STETHO_ENGINE_KERNEL_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/status.h"
#include "engine/register.h"
#include "mal/program.h"
#include "storage/table.h"

namespace stetho::engine {

/// Bits of ResultColumn::order reserved for the argument index within one
/// sink instruction; a sink can therefore order at most 2^bits columns.
/// Shared with the analysis sink-order-key lint check, which flags sinks
/// whose argument count would overflow this key space.
inline constexpr int kResultOrderArgBits = 8;

/// The canonical ResultColumn::order key: statement order first, operand
/// order within the statement second.
inline constexpr int64_t ResultOrderKey(int pc, size_t arg_index) {
  return (static_cast<int64_t>(pc) << kResultOrderArgBits) |
         static_cast<int64_t>(arg_index);
}

/// Named result column accumulated by sql.resultSet / io.print kernels.
struct ResultColumn {
  std::string name;
  storage::ColumnPtr column;
  storage::Value scalar;  // used when the result is a scalar
  bool is_scalar = false;
  /// Plan position of the producing sink (ResultOrderKey(pc, arg index)).
  /// Sink instructions are independent, so the dataflow scheduler may run
  /// them in any order; TakeResults sorts on this key to keep output columns
  /// in statement order.
  int64_t order = 0;
};

/// Per-query state visible to kernels. Thread-safe where noted.
class ExecContext {
 public:
  ExecContext(storage::Catalog* catalog, Clock* clock)
      : catalog_(catalog), clock_(clock) {}

  storage::Catalog* catalog() const { return catalog_; }
  Clock* clock() const { return clock_; }

  /// Appends a result column (thread-safe; io.print may run concurrently
  /// with other sinks in exotic plans).
  void AddResult(ResultColumn column);
  std::vector<ResultColumn> TakeResults();

 private:
  storage::Catalog* catalog_;
  Clock* clock_;
  std::mutex mu_;
  std::vector<ResultColumn> results_;
};

/// Arguments handed to a kernel: resolved argument registers (constants are
/// materialized into temporaries by the interpreter) and output registers.
struct KernelArgs {
  const mal::Instruction* ins = nullptr;
  std::vector<const RegisterValue*> args;
  std::vector<RegisterValue*> results;
  ExecContext* ctx = nullptr;
};

/// A native implementation of one MAL module.function.
using KernelFn = std::function<Status(KernelArgs&)>;

/// Registry mapping "module.function" to its native kernel — MAL's module
/// system. The default registry contains every built-in module (sql,
/// algebra, group, aggr, bat, mat, calc, batcalc, language, io, debug).
class ModuleRegistry {
 public:
  /// Registers a kernel; AlreadyExists if (module, function) is taken.
  Status Register(const std::string& module, const std::string& function,
                  KernelFn fn);

  /// Looks up a kernel; NotFound for unknown operations.
  Result<const KernelFn*> Lookup(const std::string& module,
                                 const std::string& function) const;

  /// Lists registered "module.function" names (sorted).
  std::vector<std::string> ListKernels() const;

  /// Shared registry pre-populated with all built-in kernels.
  static const ModuleRegistry* Default();

 private:
  std::map<std::string, KernelFn> kernels_;
};

/// Registration entry points for the built-in kernel families (each lives in
/// its own translation unit).
void RegisterCoreKernels(ModuleRegistry* registry);
void RegisterAlgebraKernels(ModuleRegistry* registry);
void RegisterGroupAggrKernels(ModuleRegistry* registry);

/// --- Kernel helper utilities (shared by kernel translation units) ---

/// Checks exact argument/result arity; InvalidArgument on mismatch.
Status ExpectArity(const KernelArgs& a, size_t num_args, size_t num_results);
/// Extracts a BAT argument; TypeError when arg i is a scalar.
Result<storage::ColumnPtr> ArgBat(const KernelArgs& a, size_t i);
/// Extracts a scalar argument; TypeError when arg i is a BAT.
Result<storage::Value> ArgScalar(const KernelArgs& a, size_t i);
/// Extracts a scalar argument coerced to int64.
Result<int64_t> ArgInt(const KernelArgs& a, size_t i);
/// Extracts a scalar argument coerced to double.
Result<double> ArgDouble(const KernelArgs& a, size_t i);
/// Extracts a string scalar argument.
Result<std::string> ArgString(const KernelArgs& a, size_t i);

}  // namespace stetho::engine

/// Kernel registration uses literal names at startup; a duplicate is a
/// programmer error, so it aborts rather than returning a Status.
#define STETHO_CHECK_REGISTER(expr) STETHO_CHECK((expr).ok())

#endif  // STETHO_ENGINE_KERNEL_H_
