#include <cstring>
#include <limits>
#include <unordered_map>

#include "common/string_util.h"
#include "engine/kernel.h"

namespace stetho::engine {
namespace {

using storage::Column;
using storage::ColumnPtr;
using storage::DataType;
using storage::Value;

/// Serializes the grouping key of row i (optionally combined with a prior
/// group id) into an exact byte string. NULL gets a distinct tag so all
/// NULLs land in one group.
void AppendKeyBytes(const ColumnPtr& col, size_t i, std::string* key) {
  if (col->IsNull(i)) {
    key->push_back('\0');
    key->push_back('N');
    return;
  }
  switch (col->type()) {
    case DataType::kInt64:
    case DataType::kOid:
    case DataType::kBool: {
      key->push_back('\1');
      int64_t v = col->IntAt(i);
      key->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kDouble: {
      key->push_back('\2');
      double v = col->DoubleAt(i);
      key->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kString: {
      key->push_back('\3');
      key->append(col->StringAt(i));
      break;
    }
    default:
      key->push_back('?');
  }
}

/// Shared implementation for group.group / group.subgroup. `prior` may be
/// null (initial grouping).
Status GroupImpl(const ColumnPtr& col, const ColumnPtr& prior,
                 KernelArgs& a) {
  if (prior != nullptr && prior->size() != col->size()) {
    return Status::InvalidArgument(
        "group.subgroup: prior groups not aligned with column");
  }
  ColumnPtr groups = Column::Make(DataType::kOid);
  ColumnPtr extents = Column::Make(DataType::kOid);
  ColumnPtr histo = Column::Make(DataType::kInt64);
  groups->Reserve(col->size());

  std::unordered_map<std::string, uint64_t> ids;
  std::vector<int64_t> counts;
  std::string key;
  for (size_t i = 0; i < col->size(); ++i) {
    key.clear();
    if (prior != nullptr) {
      uint64_t g = prior->OidAt(i);
      key.append(reinterpret_cast<const char*>(&g), sizeof(g));
    }
    AppendKeyBytes(col, i, &key);
    auto [it, inserted] = ids.emplace(key, ids.size());
    if (inserted) {
      extents->AppendOid(i);
      counts.push_back(0);
    }
    groups->AppendOid(it->second);
    ++counts[it->second];
  }
  for (int64_t c : counts) histo->AppendInt(c);

  *a.results[0] = RegisterValue::Bat(std::move(groups));
  *a.results[1] = RegisterValue::Bat(std::move(extents));
  *a.results[2] = RegisterValue::Bat(std::move(histo));
  return Status::OK();
}

/// group.group(col) (:bat[:oid], :bat[:oid], :bat[:lng]) — group id per row,
/// representative row per group, group sizes.
Status GroupGroup(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 1, 3));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr col, ArgBat(a, 0));
  return GroupImpl(col, nullptr, a);
}

/// group.subgroup(col, groups) — refines an existing grouping by `col`.
Status GroupSubgroup(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 2, 3));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr col, ArgBat(a, 0));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr prior, ArgBat(a, 1));
  return GroupImpl(col, prior, a);
}

/// Numeric view of col[i] for aggregation.
Result<double> NumAt(const ColumnPtr& col, size_t i) {
  switch (col->type()) {
    case DataType::kInt64:
    case DataType::kOid:
    case DataType::kBool:
      return static_cast<double>(col->IntAt(i));
    case DataType::kDouble:
      return col->DoubleAt(i);
    default:
      return Status::TypeError("aggregate over non-numeric column");
  }
}

enum class AggKind { kSum, kMin, kMax, kAvg, kCount };

/// Scalar aggregates: aggr.sum/min/max/avg/count(col).
Status ScalarAgg(AggKind kind, KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 1, 1));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr col, ArgBat(a, 0));

  if (kind == AggKind::kCount) {
    int64_t n = 0;
    for (size_t i = 0; i < col->size(); ++i) {
      if (!col->IsNull(i)) ++n;
    }
    *a.results[0] = RegisterValue::Scalar(Value::Int(n));
    return Status::OK();
  }

  double acc = kind == AggKind::kMin ? std::numeric_limits<double>::infinity()
               : kind == AggKind::kMax
                   ? -std::numeric_limits<double>::infinity()
                   : 0.0;
  int64_t n = 0;
  for (size_t i = 0; i < col->size(); ++i) {
    if (col->IsNull(i)) continue;
    STETHO_ASSIGN_OR_RETURN(double v, NumAt(col, i));
    switch (kind) {
      case AggKind::kSum:
      case AggKind::kAvg:
        acc += v;
        break;
      case AggKind::kMin:
        acc = v < acc ? v : acc;
        break;
      case AggKind::kMax:
        acc = v > acc ? v : acc;
        break;
      default:
        break;
    }
    ++n;
  }
  if (n == 0) {
    *a.results[0] = RegisterValue::Scalar(Value::Null());
    return Status::OK();
  }
  bool int_result = col->type() != DataType::kDouble && kind != AggKind::kAvg;
  double out = kind == AggKind::kAvg ? acc / static_cast<double>(n) : acc;
  *a.results[0] = RegisterValue::Scalar(
      int_result ? Value::Int(static_cast<int64_t>(out)) : Value::Double(out));
  return Status::OK();
}

/// Grouped aggregates: aggr.subX(col, groups, extents) :bat — one value per
/// group, aligned with `extents`.
Status GroupedAgg(AggKind kind, KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 3, 1));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr col, ArgBat(a, 0));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr groups, ArgBat(a, 1));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr extents, ArgBat(a, 2));
  if (groups->size() != col->size()) {
    return Status::InvalidArgument(a.ins->FullName() +
                                   ": groups not aligned with column");
  }
  size_t ngroups = extents->size();
  std::vector<double> acc(
      ngroups, kind == AggKind::kMin ? std::numeric_limits<double>::infinity()
               : kind == AggKind::kMax
                   ? -std::numeric_limits<double>::infinity()
                   : 0.0);
  std::vector<int64_t> counts(ngroups, 0);
  for (size_t i = 0; i < col->size(); ++i) {
    uint64_t g = groups->OidAt(i);
    if (g >= ngroups) {
      return Status::OutOfRange(a.ins->FullName() + ": group id out of range");
    }
    if (col->IsNull(i)) continue;
    STETHO_ASSIGN_OR_RETURN(double v, NumAt(col, i));
    switch (kind) {
      case AggKind::kSum:
      case AggKind::kAvg:
        acc[g] += v;
        break;
      case AggKind::kMin:
        acc[g] = v < acc[g] ? v : acc[g];
        break;
      case AggKind::kMax:
        acc[g] = v > acc[g] ? v : acc[g];
        break;
      default:
        break;
    }
    ++counts[g];
  }

  if (kind == AggKind::kCount) {
    ColumnPtr out = Column::Make(DataType::kInt64);
    out->Reserve(ngroups);
    for (size_t g = 0; g < ngroups; ++g) out->AppendInt(counts[g]);
    *a.results[0] = RegisterValue::Bat(std::move(out));
    return Status::OK();
  }

  bool int_result = col->type() != DataType::kDouble && kind != AggKind::kAvg;
  ColumnPtr out =
      Column::Make(int_result ? DataType::kInt64 : DataType::kDouble);
  out->Reserve(ngroups);
  for (size_t g = 0; g < ngroups; ++g) {
    if (counts[g] == 0) {
      out->AppendNull();
      continue;
    }
    double v = kind == AggKind::kAvg ? acc[g] / static_cast<double>(counts[g])
                                     : acc[g];
    if (int_result) {
      out->AppendInt(static_cast<int64_t>(v));
    } else {
      out->AppendDouble(v);
    }
  }
  *a.results[0] = RegisterValue::Bat(std::move(out));
  return Status::OK();
}

}  // namespace

void RegisterGroupAggrKernels(ModuleRegistry* r) {
  STETHO_CHECK_REGISTER(r->Register("group", "group", GroupGroup));
  STETHO_CHECK_REGISTER(r->Register("group", "subgroup", GroupSubgroup));

  const struct {
    const char* scalar_name;
    const char* grouped_name;
    AggKind kind;
  } kAggs[] = {
      {"sum", "subsum", AggKind::kSum},     {"min", "submin", AggKind::kMin},
      {"max", "submax", AggKind::kMax},     {"avg", "subavg", AggKind::kAvg},
      {"count", "subcount", AggKind::kCount},
  };
  for (const auto& e : kAggs) {
    AggKind kind = e.kind;
    STETHO_CHECK_REGISTER(r->Register(
        "aggr", e.scalar_name, [kind](KernelArgs& a) { return ScalarAgg(kind, a); }));
    STETHO_CHECK_REGISTER(r->Register(
        "aggr", e.grouped_name,
        [kind](KernelArgs& a) { return GroupedAgg(kind, a); }));
  }
}

}  // namespace stetho::engine
