#include <cmath>

#include "common/string_util.h"
#include "engine/kernel.h"

namespace stetho::engine {
namespace {

using storage::Column;
using storage::ColumnPtr;
using storage::DataType;
using storage::Value;

// ---------------------------------------------------------------------------
// sql module: catalog access.
// ---------------------------------------------------------------------------

/// sql.mvc() :lng — returns the session/transaction handle (always 0 here;
/// exists so generated plans match MonetDB's shape).
Status SqlMvc(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 0, 1));
  *a.results[0] = RegisterValue::Scalar(Value::Int(0));
  return Status::OK();
}

/// sql.tid(mvc, schema, table) :bat[:oid] — all visible row ids of a table.
Status SqlTid(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 3, 1));
  STETHO_ASSIGN_OR_RETURN(std::string table, ArgString(a, 2));
  STETHO_ASSIGN_OR_RETURN(storage::TablePtr t, a.ctx->catalog()->GetTable(table));
  *a.results[0] =
      RegisterValue::Bat(Column::MakeOidRange(0, t->num_rows()));
  return Status::OK();
}

/// sql.bind(mvc, schema, table, column, access) :bat — a full base column.
Status SqlBind(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 5, 1));
  STETHO_ASSIGN_OR_RETURN(std::string table, ArgString(a, 2));
  STETHO_ASSIGN_OR_RETURN(std::string column, ArgString(a, 3));
  STETHO_ASSIGN_OR_RETURN(storage::TablePtr t, a.ctx->catalog()->GetTable(table));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr col, t->GetColumn(column));
  *a.results[0] = RegisterValue::Bat(std::move(col));
  return Status::OK();
}

/// sql.resultSet(name, value) — appends one named output column (or scalar).
Status SqlResultSet(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 2, 0));
  STETHO_ASSIGN_OR_RETURN(std::string name, ArgString(a, 0));
  ResultColumn rc;
  rc.name = std::move(name);
  rc.order = ResultOrderKey(a.ins->pc, 0);
  if (a.args[1]->is_bat()) {
    rc.column = a.args[1]->bat;
  } else {
    rc.is_scalar = true;
    rc.scalar = a.args[1]->scalar;
  }
  a.ctx->AddResult(std::move(rc));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// bat module: BAT bookkeeping.
// ---------------------------------------------------------------------------

/// bat.mirror(b) :bat[:oid] — the positions of b as oids.
Status BatMirror(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 1, 1));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr b, ArgBat(a, 0));
  *a.results[0] = RegisterValue::Bat(Column::MakeOidRange(0, b->size()));
  return Status::OK();
}

/// bat.partition(b, pieces, index) :bat — the index-th of `pieces`
/// near-equal horizontal slices of b (the mitosis optimizer's workhorse).
Status BatPartition(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 3, 1));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr b, ArgBat(a, 0));
  STETHO_ASSIGN_OR_RETURN(int64_t pieces, ArgInt(a, 1));
  STETHO_ASSIGN_OR_RETURN(int64_t index, ArgInt(a, 2));
  if (pieces <= 0 || index < 0 || index >= pieces) {
    return Status::InvalidArgument(
        StrFormat("bat.partition: bad (pieces=%lld, index=%lld)",
                  static_cast<long long>(pieces), static_cast<long long>(index)));
  }
  size_t n = b->size();
  size_t lo = (n * static_cast<size_t>(index)) / static_cast<size_t>(pieces);
  size_t hi =
      (n * static_cast<size_t>(index + 1)) / static_cast<size_t>(pieces);
  *a.results[0] = RegisterValue::Bat(b->Slice(lo, hi));
  return Status::OK();
}

/// bat.densebat(n) :bat[:oid] — oids [0, n).
Status BatDense(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 1, 1));
  STETHO_ASSIGN_OR_RETURN(int64_t n, ArgInt(a, 0));
  if (n < 0) return Status::InvalidArgument("bat.densebat: negative size");
  *a.results[0] =
      RegisterValue::Bat(Column::MakeOidRange(0, static_cast<uint64_t>(n)));
  return Status::OK();
}

/// bat.append(a, b) :bat — concatenation of two BATs of the same type.
Status BatAppend(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 2, 1));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr x, ArgBat(a, 0));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr y, ArgBat(a, 1));
  if (x->type() != y->type()) {
    return Status::TypeError("bat.append: element type mismatch");
  }
  ColumnPtr out = x->Slice(0, x->size());
  STETHO_RETURN_IF_ERROR(out->AppendColumn(*y));
  *a.results[0] = RegisterValue::Bat(std::move(out));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// mat module: merge partitioned intermediates (mergetable).
// ---------------------------------------------------------------------------

/// mat.pack(b1, b2, ...) :bat — concatenates any number of same-typed BATs;
/// rejoins mitosis slices.
Status MatPack(KernelArgs& a) {
  if (a.results.size() != 1 || a.args.empty()) {
    return Status::InvalidArgument("mat.pack: needs >=1 args, 1 result");
  }
  STETHO_ASSIGN_OR_RETURN(ColumnPtr first, ArgBat(a, 0));
  ColumnPtr out = Column::Make(first->type());
  size_t total = 0;
  for (size_t k = 0; k < a.args.size(); ++k) {
    STETHO_ASSIGN_OR_RETURN(ColumnPtr piece, ArgBat(a, k));
    if (piece->type() != first->type()) {
      return Status::TypeError("mat.pack: element type mismatch");
    }
    total += piece->size();
  }
  out->Reserve(total);
  for (size_t k = 0; k < a.args.size(); ++k) {
    STETHO_ASSIGN_OR_RETURN(ColumnPtr piece, ArgBat(a, k));
    STETHO_RETURN_IF_ERROR(out->AppendColumn(*piece));
  }
  *a.results[0] = RegisterValue::Bat(std::move(out));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// calc / batcalc modules: scalar and vectorized arithmetic.
// ---------------------------------------------------------------------------

enum class BinOp { kAdd, kSub, kMul, kDiv, kEq, kNe, kLt, kLe, kGt, kGe };

bool IsComparison(BinOp op) {
  return op == BinOp::kEq || op == BinOp::kNe || op == BinOp::kLt ||
         op == BinOp::kLe || op == BinOp::kGt || op == BinOp::kGe;
}

Result<double> ApplyDouble(BinOp op, double x, double y) {
  switch (op) {
    case BinOp::kAdd:
      return x + y;
    case BinOp::kSub:
      return x - y;
    case BinOp::kMul:
      return x * y;
    case BinOp::kDiv:
      if (y == 0.0) return Status::InvalidArgument("division by zero");
      return x / y;
    default:
      return Status::Internal("ApplyDouble on comparison op");
  }
}

bool ApplyCompare(BinOp op, double x, double y) {
  switch (op) {
    case BinOp::kEq:
      return x == y;
    case BinOp::kNe:
      return x != y;
    case BinOp::kLt:
      return x < y;
    case BinOp::kLe:
      return x <= y;
    case BinOp::kGt:
      return x > y;
    case BinOp::kGe:
      return x >= y;
    default:
      return false;
  }
}

/// A numeric operand: broadcast scalar or full column.
struct NumOperand {
  ColumnPtr bat;       // null => scalar
  double scalar = 0;
  bool scalar_is_double = false;

  size_t size() const { return bat ? bat->size() : 0; }
  bool is_double() const {
    if (bat) return bat->type() == DataType::kDouble;
    return scalar_is_double;
  }
  bool IsNull(size_t i) const { return bat ? bat->IsNull(i) : false; }
  double At(size_t i) const {
    if (!bat) return scalar;
    return bat->type() == DataType::kDouble
               ? bat->DoubleAt(i)
               : static_cast<double>(bat->IntAt(i));
  }
};

Result<NumOperand> MakeOperand(const KernelArgs& a, size_t i) {
  NumOperand op;
  if (a.args[i]->is_bat()) {
    op.bat = a.args[i]->bat;
    DataType t = op.bat->type();
    if (t != DataType::kInt64 && t != DataType::kDouble &&
        t != DataType::kBool && t != DataType::kOid) {
      return Status::TypeError(
          StrFormat("%s: argument %zu is not numeric", a.ins->FullName().c_str(), i));
    }
    return op;
  }
  STETHO_ASSIGN_OR_RETURN(double v, ArgDouble(a, i));
  op.scalar = v;
  op.scalar_is_double = a.args[i]->scalar.type() == DataType::kDouble;
  return op;
}

/// String operand for vectorized comparisons: broadcast scalar or column.
struct StrOperand {
  ColumnPtr bat;
  std::string scalar;

  bool IsNull(size_t i) const { return bat ? bat->IsNull(i) : false; }
  const std::string& At(size_t i) const {
    return bat ? bat->StringAt(i) : scalar;
  }
};

Result<StrOperand> MakeStrOperand(const KernelArgs& a, size_t i) {
  StrOperand op;
  if (a.args[i]->is_bat()) {
    op.bat = a.args[i]->bat;
    if (op.bat->type() != DataType::kString) {
      return Status::TypeError(StrFormat("%s: argument %zu is not a string",
                                         a.ins->FullName().c_str(), i));
    }
    return op;
  }
  if (a.args[i]->scalar.type() != DataType::kString) {
    return Status::TypeError(StrFormat("%s: argument %zu is not a string",
                                       a.ins->FullName().c_str(), i));
  }
  op.scalar = a.args[i]->scalar.AsString();
  return op;
}

/// String comparison path of BatBinOp.
Status BatStringCompare(BinOp op, KernelArgs& a) {
  STETHO_ASSIGN_OR_RETURN(StrOperand lhs, MakeStrOperand(a, 0));
  STETHO_ASSIGN_OR_RETURN(StrOperand rhs, MakeStrOperand(a, 1));
  if (!lhs.bat && !rhs.bat) {
    return Status::TypeError(a.ins->FullName() + ": needs at least one BAT");
  }
  if (lhs.bat && rhs.bat && lhs.bat->size() != rhs.bat->size()) {
    return Status::InvalidArgument(a.ins->FullName() + ": BAT size mismatch");
  }
  size_t n = lhs.bat ? lhs.bat->size() : rhs.bat->size();
  ColumnPtr out = Column::Make(DataType::kBool);
  out->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (lhs.IsNull(i) || rhs.IsNull(i)) {
      out->AppendNull();
      continue;
    }
    int c = lhs.At(i).compare(rhs.At(i));
    bool r;
    switch (op) {
      case BinOp::kEq:
        r = c == 0;
        break;
      case BinOp::kNe:
        r = c != 0;
        break;
      case BinOp::kLt:
        r = c < 0;
        break;
      case BinOp::kLe:
        r = c <= 0;
        break;
      case BinOp::kGt:
        r = c > 0;
        break;
      default:
        r = c >= 0;
        break;
    }
    out->AppendBool(r);
  }
  *a.results[0] = RegisterValue::Bat(std::move(out));
  return Status::OK();
}

/// Vectorized binary op with scalar broadcasting; at least one side is a BAT.
Status BatBinOp(BinOp op, KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 2, 1));
  // Comparisons dispatch to the string path when either side is a string.
  auto is_string_arg = [&](size_t i) {
    if (a.args[i]->is_bat()) {
      return a.args[i]->bat->type() == DataType::kString;
    }
    return a.args[i]->scalar.type() == DataType::kString;
  };
  if (IsComparison(op) && (is_string_arg(0) || is_string_arg(1))) {
    return BatStringCompare(op, a);
  }
  STETHO_ASSIGN_OR_RETURN(NumOperand lhs, MakeOperand(a, 0));
  STETHO_ASSIGN_OR_RETURN(NumOperand rhs, MakeOperand(a, 1));
  if (!lhs.bat && !rhs.bat) {
    return Status::TypeError(a.ins->FullName() + ": needs at least one BAT");
  }
  if (lhs.bat && rhs.bat && lhs.bat->size() != rhs.bat->size()) {
    return Status::InvalidArgument(
        StrFormat("%s: BAT size mismatch %zu vs %zu", a.ins->FullName().c_str(),
                  lhs.bat->size(), rhs.bat->size()));
  }
  size_t n = lhs.bat ? lhs.size() : rhs.size();

  if (IsComparison(op)) {
    ColumnPtr out = Column::Make(DataType::kBool);
    out->Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (lhs.IsNull(i) || rhs.IsNull(i)) {
        out->AppendNull();
      } else {
        out->AppendBool(ApplyCompare(op, lhs.At(i), rhs.At(i)));
      }
    }
    *a.results[0] = RegisterValue::Bat(std::move(out));
    return Status::OK();
  }

  bool as_double = lhs.is_double() || rhs.is_double() || op == BinOp::kDiv;
  ColumnPtr out = Column::Make(as_double ? DataType::kDouble : DataType::kInt64);
  out->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (lhs.IsNull(i) || rhs.IsNull(i)) {
      out->AppendNull();
      continue;
    }
    STETHO_ASSIGN_OR_RETURN(double v, ApplyDouble(op, lhs.At(i), rhs.At(i)));
    if (as_double) {
      out->AppendDouble(v);
    } else {
      out->AppendInt(static_cast<int64_t>(v));
    }
  }
  *a.results[0] = RegisterValue::Bat(std::move(out));
  return Status::OK();
}

/// Scalar binary op.
Status CalcBinOp(BinOp op, KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 2, 1));
  STETHO_ASSIGN_OR_RETURN(Value x, ArgScalar(a, 0));
  STETHO_ASSIGN_OR_RETURN(Value y, ArgScalar(a, 1));
  if (x.is_null() || y.is_null()) {
    *a.results[0] = RegisterValue::Scalar(Value::Null());
    return Status::OK();
  }
  // String comparison path.
  if (x.type() == DataType::kString && y.type() == DataType::kString &&
      IsComparison(op)) {
    int c = x.Compare(y);
    bool r;
    switch (op) {
      case BinOp::kEq:
        r = c == 0;
        break;
      case BinOp::kNe:
        r = c != 0;
        break;
      case BinOp::kLt:
        r = c < 0;
        break;
      case BinOp::kLe:
        r = c <= 0;
        break;
      case BinOp::kGt:
        r = c > 0;
        break;
      default:
        r = c >= 0;
        break;
    }
    *a.results[0] = RegisterValue::Scalar(Value::Bool(r));
    return Status::OK();
  }
  STETHO_ASSIGN_OR_RETURN(double dx, x.ToDouble());
  STETHO_ASSIGN_OR_RETURN(double dy, y.ToDouble());
  if (IsComparison(op)) {
    *a.results[0] = RegisterValue::Scalar(Value::Bool(ApplyCompare(op, dx, dy)));
    return Status::OK();
  }
  STETHO_ASSIGN_OR_RETURN(double v, ApplyDouble(op, dx, dy));
  bool as_double = x.type() == DataType::kDouble ||
                   y.type() == DataType::kDouble || op == BinOp::kDiv;
  *a.results[0] = RegisterValue::Scalar(
      as_double ? Value::Double(v) : Value::Int(static_cast<int64_t>(v)));
  return Status::OK();
}

/// calc.lng / calc.dbl / calc.str casts.
Status CalcCast(DataType target, KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 1, 1));
  STETHO_ASSIGN_OR_RETURN(Value v, ArgScalar(a, 0));
  if (v.is_null()) {
    *a.results[0] = RegisterValue::Scalar(Value::Null());
    return Status::OK();
  }
  switch (target) {
    case DataType::kInt64: {
      if (v.type() == DataType::kDouble) {
        *a.results[0] = RegisterValue::Scalar(
            Value::Int(static_cast<int64_t>(v.AsDouble())));
        return Status::OK();
      }
      STETHO_ASSIGN_OR_RETURN(int64_t i, v.ToInt());
      *a.results[0] = RegisterValue::Scalar(Value::Int(i));
      return Status::OK();
    }
    case DataType::kDouble: {
      STETHO_ASSIGN_OR_RETURN(double d, v.ToDouble());
      *a.results[0] = RegisterValue::Scalar(Value::Double(d));
      return Status::OK();
    }
    case DataType::kString: {
      if (v.type() == DataType::kString) {
        *a.results[0] = RegisterValue::Scalar(v);
      } else {
        *a.results[0] = RegisterValue::Scalar(Value::String(v.ToString()));
      }
      return Status::OK();
    }
    default:
      return Status::Unimplemented("calc cast target");
  }
}

/// Boolean operand: broadcast scalar bool or :bit BAT.
struct BoolOperand {
  ColumnPtr bat;
  bool scalar = false;

  bool IsNull(size_t i) const { return bat ? bat->IsNull(i) : false; }
  bool At(size_t i) const { return bat ? bat->BoolAt(i) : scalar; }
};

Result<BoolOperand> MakeBoolOperand(const KernelArgs& a, size_t i) {
  BoolOperand op;
  if (a.args[i]->is_bat()) {
    op.bat = a.args[i]->bat;
    if (op.bat->type() != DataType::kBool) {
      return Status::TypeError(
          StrFormat("%s: argument %zu must be :bit", a.ins->FullName().c_str(), i));
    }
    return op;
  }
  const Value& v = a.args[i]->scalar;
  if (v.type() != DataType::kBool) {
    return Status::TypeError(
        StrFormat("%s: argument %zu must be :bit", a.ins->FullName().c_str(), i));
  }
  op.scalar = v.AsBool();
  return op;
}

enum class BoolOp { kAnd, kOr };

/// batcalc.and / batcalc.or over :bit BATs with scalar broadcast.
/// NULL semantics follow SQL three-valued logic.
Status BatBoolOp(BoolOp op, KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 2, 1));
  STETHO_ASSIGN_OR_RETURN(BoolOperand lhs, MakeBoolOperand(a, 0));
  STETHO_ASSIGN_OR_RETURN(BoolOperand rhs, MakeBoolOperand(a, 1));
  if (!lhs.bat && !rhs.bat) {
    return Status::TypeError(a.ins->FullName() + ": needs at least one BAT");
  }
  if (lhs.bat && rhs.bat && lhs.bat->size() != rhs.bat->size()) {
    return Status::InvalidArgument(a.ins->FullName() + ": BAT size mismatch");
  }
  size_t n = lhs.bat ? lhs.bat->size() : rhs.bat->size();
  ColumnPtr out = Column::Make(DataType::kBool);
  out->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    bool ln = lhs.IsNull(i);
    bool rn = rhs.IsNull(i);
    bool lv = ln ? false : lhs.At(i);
    bool rv = rn ? false : rhs.At(i);
    if (op == BoolOp::kAnd) {
      if ((!ln && !lv) || (!rn && !rv)) {
        out->AppendBool(false);
      } else if (ln || rn) {
        out->AppendNull();
      } else {
        out->AppendBool(true);
      }
    } else {
      if ((!ln && lv) || (!rn && rv)) {
        out->AppendBool(true);
      } else if (ln || rn) {
        out->AppendNull();
      } else {
        out->AppendBool(false);
      }
    }
  }
  *a.results[0] = RegisterValue::Bat(std::move(out));
  return Status::OK();
}

/// batcalc.not(b) :bat[:bit].
Status BatNot(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 1, 1));
  STETHO_ASSIGN_OR_RETURN(BoolOperand v, MakeBoolOperand(a, 0));
  if (!v.bat) return Status::TypeError("batcalc.not: needs a BAT");
  size_t n = v.bat->size();
  ColumnPtr out = Column::Make(DataType::kBool);
  out->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (v.IsNull(i)) {
      out->AppendNull();
    } else {
      out->AppendBool(!v.At(i));
    }
  }
  *a.results[0] = RegisterValue::Bat(std::move(out));
  return Status::OK();
}

/// batcalc.ifthenelse(mask, then, else) :bat — per-row conditional with
/// scalar broadcast on the value operands (SQL CASE WHEN).
Status BatIfThenElse(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 3, 1));
  STETHO_ASSIGN_OR_RETURN(ColumnPtr mask, ArgBat(a, 0));
  if (mask->type() != DataType::kBool) {
    return Status::TypeError("batcalc.ifthenelse: mask must be :bit");
  }
  size_t n = mask->size();
  auto value_at = [&](size_t arg, size_t i) -> Value {
    if (a.args[arg]->is_bat()) return a.args[arg]->bat->GetValue(i);
    return a.args[arg]->scalar;
  };
  for (size_t arg = 1; arg <= 2; ++arg) {
    if (a.args[arg]->is_bat() && a.args[arg]->bat->size() != n) {
      return Status::InvalidArgument("batcalc.ifthenelse: operand size mismatch");
    }
  }
  // Result element type: prefer the then-branch's type, widening to double
  // when either branch is double.
  auto branch_type = [&](size_t arg) -> DataType {
    if (a.args[arg]->is_bat()) return a.args[arg]->bat->type();
    return a.args[arg]->scalar.type();
  };
  DataType t1 = branch_type(1);
  DataType t2 = branch_type(2);
  DataType out_type = t1;
  if (t1 == DataType::kNull) out_type = t2;
  if (t1 == DataType::kDouble || t2 == DataType::kDouble) {
    out_type = DataType::kDouble;
  }
  if (out_type == DataType::kNull) out_type = DataType::kInt64;
  ColumnPtr out = Column::Make(out_type);
  out->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (mask->IsNull(i)) {
      out->AppendNull();
      continue;
    }
    Value v = mask->BoolAt(i) ? value_at(1, i) : value_at(2, i);
    STETHO_RETURN_IF_ERROR(out->AppendValue(v));
  }
  *a.results[0] = RegisterValue::Bat(std::move(out));
  return Status::OK();
}

/// calc.and / calc.or / calc.not on scalar :bit values.
Status CalcBoolOp(BoolOp op, KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 2, 1));
  STETHO_ASSIGN_OR_RETURN(Value x, ArgScalar(a, 0));
  STETHO_ASSIGN_OR_RETURN(Value y, ArgScalar(a, 1));
  auto known_false = [](const Value& v) {
    return !v.is_null() && v.type() == DataType::kBool && !v.AsBool();
  };
  auto known_true = [](const Value& v) {
    return !v.is_null() && v.type() == DataType::kBool && v.AsBool();
  };
  if (op == BoolOp::kAnd) {
    if (known_false(x) || known_false(y)) {
      *a.results[0] = RegisterValue::Scalar(Value::Bool(false));
    } else if (x.is_null() || y.is_null()) {
      *a.results[0] = RegisterValue::Scalar(Value::Null());
    } else {
      *a.results[0] = RegisterValue::Scalar(Value::Bool(x.AsBool() && y.AsBool()));
    }
  } else {
    if (known_true(x) || known_true(y)) {
      *a.results[0] = RegisterValue::Scalar(Value::Bool(true));
    } else if (x.is_null() || y.is_null()) {
      *a.results[0] = RegisterValue::Scalar(Value::Null());
    } else {
      *a.results[0] = RegisterValue::Scalar(Value::Bool(x.AsBool() || y.AsBool()));
    }
  }
  return Status::OK();
}

Status CalcNot(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 1, 1));
  STETHO_ASSIGN_OR_RETURN(Value x, ArgScalar(a, 0));
  if (x.is_null()) {
    *a.results[0] = RegisterValue::Scalar(Value::Null());
  } else if (x.type() != DataType::kBool) {
    return Status::TypeError("calc.not: argument must be :bit");
  } else {
    *a.results[0] = RegisterValue::Scalar(Value::Bool(!x.AsBool()));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// language / io / debug modules.
// ---------------------------------------------------------------------------

/// language.dataflow() — marker inserted by the dataflow optimizer; no-op at
/// run time (the scheduler parallelizes the whole plan).
Status LanguageDataflow(KernelArgs& a) {
  (void)a;
  return Status::OK();
}

/// language.pass(x) — explicit end-of-lifetime marker; no-op (the
/// interpreter's reference counting frees registers).
Status LanguagePass(KernelArgs& a) {
  (void)a;
  return Status::OK();
}

/// io.print(v...) — appends each argument as an unnamed result column.
Status IoPrint(KernelArgs& a) {
  if (!a.results.empty()) {
    return Status::InvalidArgument("io.print returns nothing");
  }
  for (size_t i = 0; i < a.args.size(); ++i) {
    ResultColumn rc;
    rc.name = StrFormat("column_%zu", i);
    rc.order = ResultOrderKey(a.ins->pc, i);
    if (a.args[i]->is_bat()) {
      rc.column = a.args[i]->bat;
    } else {
      rc.is_scalar = true;
      rc.scalar = a.args[i]->scalar;
    }
    a.ctx->AddResult(std::move(rc));
  }
  return Status::OK();
}

/// debug.sleep(usec) — blocks the worker for `usec` microseconds. Used to
/// synthesize long-running instructions in tests and benchmarks.
Status DebugSleep(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 1, 0));
  STETHO_ASSIGN_OR_RETURN(int64_t usec, ArgInt(a, 0));
  a.ctx->clock()->SleepMicros(usec);
  return Status::OK();
}

/// debug.spin(iterations) :lng — burns CPU deterministically; returns a
/// checksum so the optimizer cannot remove it.
Status DebugSpin(KernelArgs& a) {
  STETHO_RETURN_IF_ERROR(ExpectArity(a, 1, 1));
  STETHO_ASSIGN_OR_RETURN(int64_t iters, ArgInt(a, 0));
  volatile int64_t acc = 0;
  for (int64_t i = 0; i < iters; ++i) acc = acc + i * 2654435761LL;
  *a.results[0] = RegisterValue::Scalar(Value::Int(acc));
  return Status::OK();
}

}  // namespace

void RegisterCoreKernels(ModuleRegistry* r) {
  STETHO_CHECK_REGISTER(r->Register("sql", "mvc", SqlMvc));
  STETHO_CHECK_REGISTER(r->Register("sql", "tid", SqlTid));
  STETHO_CHECK_REGISTER(r->Register("sql", "bind", SqlBind));
  STETHO_CHECK_REGISTER(r->Register("sql", "resultSet", SqlResultSet));

  STETHO_CHECK_REGISTER(r->Register("bat", "mirror", BatMirror));
  STETHO_CHECK_REGISTER(r->Register("bat", "partition", BatPartition));
  STETHO_CHECK_REGISTER(r->Register("bat", "densebat", BatDense));
  STETHO_CHECK_REGISTER(r->Register("bat", "append", BatAppend));
  STETHO_CHECK_REGISTER(r->Register("mat", "pack", MatPack));

  const struct {
    const char* name;
    BinOp op;
  } kBinOps[] = {
      {"add", BinOp::kAdd}, {"sub", BinOp::kSub}, {"mul", BinOp::kMul},
      {"div", BinOp::kDiv}, {"eq", BinOp::kEq},   {"ne", BinOp::kNe},
      {"lt", BinOp::kLt},   {"le", BinOp::kLe},   {"gt", BinOp::kGt},
      {"ge", BinOp::kGe},
  };
  for (const auto& e : kBinOps) {
    BinOp op = e.op;
    STETHO_CHECK_REGISTER(r->Register(
        "calc", e.name, [op](KernelArgs& a) { return CalcBinOp(op, a); }));
    STETHO_CHECK_REGISTER(r->Register(
        "batcalc", e.name, [op](KernelArgs& a) { return BatBinOp(op, a); }));
  }
  STETHO_CHECK_REGISTER(r->Register("calc", "lng", [](KernelArgs& a) {
    return CalcCast(DataType::kInt64, a);
  }));
  STETHO_CHECK_REGISTER(r->Register("calc", "dbl", [](KernelArgs& a) {
    return CalcCast(DataType::kDouble, a);
  }));
  STETHO_CHECK_REGISTER(r->Register("calc", "str", [](KernelArgs& a) {
    return CalcCast(DataType::kString, a);
  }));

  STETHO_CHECK_REGISTER(r->Register("batcalc", "and", [](KernelArgs& a) {
    return BatBoolOp(BoolOp::kAnd, a);
  }));
  STETHO_CHECK_REGISTER(r->Register("batcalc", "or", [](KernelArgs& a) {
    return BatBoolOp(BoolOp::kOr, a);
  }));
  STETHO_CHECK_REGISTER(r->Register("batcalc", "not", BatNot));
  STETHO_CHECK_REGISTER(r->Register("batcalc", "ifthenelse", BatIfThenElse));
  STETHO_CHECK_REGISTER(r->Register("calc", "and", [](KernelArgs& a) {
    return CalcBoolOp(BoolOp::kAnd, a);
  }));
  STETHO_CHECK_REGISTER(r->Register("calc", "or", [](KernelArgs& a) {
    return CalcBoolOp(BoolOp::kOr, a);
  }));
  STETHO_CHECK_REGISTER(r->Register("calc", "not", CalcNot));

  STETHO_CHECK_REGISTER(r->Register("language", "dataflow", LanguageDataflow));
  STETHO_CHECK_REGISTER(r->Register("language", "pass", LanguagePass));
  STETHO_CHECK_REGISTER(r->Register("io", "print", IoPrint));
  STETHO_CHECK_REGISTER(r->Register("debug", "sleep", DebugSleep));
  STETHO_CHECK_REGISTER(r->Register("debug", "spin", DebugSpin));
}

}  // namespace stetho::engine
