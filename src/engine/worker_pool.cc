#include "engine/worker_pool.h"

#include <cstdlib>

#include "common/clock.h"
#include "common/logging.h"

namespace stetho::engine {
namespace {

/// Identity of the pool worker running the current thread (Submit locality).
thread_local const WorkerPool* tls_pool = nullptr;
thread_local int tls_worker = -1;

std::atomic<bool>& SchedSelfCheckFlag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("STETHO_SCHED_SELFCHECK");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  return flag;
}

}  // namespace

bool SchedSelfCheckEnabled() {
  return SchedSelfCheckFlag().load(std::memory_order_relaxed);
}

void SetSchedSelfCheck(bool enabled) {
  SchedSelfCheckFlag().store(enabled, std::memory_order_relaxed);
}

WorkerPool::WorkerPool(int max_workers)
    : max_workers_(max_workers < 1 ? 1 : max_workers) {
  obs::Registry* registry = obs::Registry::Default();
  steals_ = registry->GetOrCreateCounter(
      "stetho_pool_steals_total",
      "Tasks obtained by stealing from another worker's deque");
  executed_ = registry->GetOrCreateCounter(
      "stetho_pool_executed_total", "Tasks executed by pool workers");
  wakeups_ = registry->GetOrCreateCounter(
      "stetho_pool_wakeups_total", "Idle workers woken by Submit");
  queue_depth_ = registry->GetOrCreateGauge(
      "stetho_pool_queue_depth",
      "Queued-but-unclaimed tasks, sampled when a worker acquires one");
  task_usec_ = registry->GetOrCreateHistogram(
      "stetho_pool_task_usec",
      "Task execution latency in microseconds (recorded while observability "
      "is enabled)",
      obs::Histogram::DefaultLatencyBounds());
  // All Worker slots exist up front so Submit/steal never race a vector
  // reallocation; threads are attached lazily by EnsureWorkers.
  workers_.reserve(static_cast<size_t>(max_workers_));
  for (int i = 0; i < max_workers_; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
}

WorkerPool::~WorkerPool() {
  stop_.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    idle_cv_.notify_all();
  }
  for (int i = 0; i < started_.load(std::memory_order_acquire); ++i) {
    if (workers_[static_cast<size_t>(i)]->thread.joinable()) {
      workers_[static_cast<size_t>(i)]->thread.join();
    }
  }
}

WorkerPool* WorkerPool::Default() {
  static WorkerPool pool;
  return &pool;
}

void WorkerPool::EnsureWorkers(int n) {
  if (n > max_workers_) n = max_workers_;
  if (started_.load(std::memory_order_acquire) >= n) return;
  std::lock_guard<std::mutex> lock(grow_mu_);
  int have = started_.load(std::memory_order_acquire);
  for (int i = have; i < n; ++i) {
    workers_[static_cast<size_t>(i)]->thread =
        std::thread(&WorkerPool::WorkerMain, this, i);
    started_.store(i + 1, std::memory_order_release);
  }
}

void WorkerPool::Submit(Task task) {
  int n = started_.load(std::memory_order_acquire);
  if (n == 0) {
    EnsureWorkers(1);
    n = started_.load(std::memory_order_acquire);
  }
  int target;
  if (tls_pool == this && tls_worker >= 0 && tls_worker < n) {
    target = tls_worker;
  } else {
    target = next_victim_.fetch_add(1, std::memory_order_relaxed) % n;
    if (target < 0) target += n;
  }
  Worker& w = *workers_[static_cast<size_t>(target)];
  {
    std::lock_guard<std::mutex> lock(w.mu);
    w.queue.push_back(std::move(task));
  }
  // Two-phase wakeup: publish the task count, then wake one sleeper if any.
  // Both sides use seq_cst so either the sleeper observes pending_ > 0
  // before parking or we observe sleepers_ > 0 here — never neither.
  pending_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    wakeups_->Increment();
    std::lock_guard<std::mutex> lock(idle_mu_);
    idle_cv_.notify_one();
  }
}

bool WorkerPool::TryAcquire(int index, Task* out) {
  const int n = started_.load(std::memory_order_acquire);
  Worker& own = *workers_[static_cast<size_t>(index)];
  {
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.queue.empty()) {
      *out = std::move(own.queue.front());
      own.queue.pop_front();
      queue_depth_->Set(pending_.fetch_sub(1, std::memory_order_relaxed) - 1);
      return true;
    }
  }
  // Steal from the back of a victim's deque (oldest task: likely the head
  // of a dependency chain another query is waiting on).
  for (int k = 1; k < n; ++k) {
    Worker& victim = *workers_[static_cast<size_t>((index + k) % n)];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.queue.empty()) {
      *out = std::move(victim.queue.back());
      victim.queue.pop_back();
      queue_depth_->Set(pending_.fetch_sub(1, std::memory_order_relaxed) - 1);
      steals_->Increment();
      return true;
    }
  }
  return false;
}

void WorkerPool::WorkerMain(int index) {
  tls_pool = this;
  tls_worker = index;
  Task task;
  while (true) {
    if (TryAcquire(index, &task)) {
      executed_->Increment();
      if (obs::Active()) {
        // The latency histogram is the only pool stat that reads the clock,
        // so it alone hides behind the kill switch.
        int64_t t0 = SteadyClock::Default()->NowMicros();
        task();
        task_usec_->Observe(SteadyClock::Default()->NowMicros() - t0);
      } else {
        task();
      }
      task = nullptr;
      continue;
    }
    // Queues drained: on shutdown exit, otherwise park until Submit wakes us.
    if (stop_.load(std::memory_order_seq_cst)) return;
    std::unique_lock<std::mutex> lock(idle_mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    idle_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_seq_cst) > 0 ||
             stop_.load(std::memory_order_seq_cst);
    });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

}  // namespace stetho::engine
