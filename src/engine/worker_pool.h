#ifndef STETHO_ENGINE_WORKER_POOL_H_
#define STETHO_ENGINE_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace stetho::engine {

/// Scheduler self-check switch (off by default). When enabled — via the
/// STETHO_SCHED_SELFCHECK environment variable at startup or
/// SetSchedSelfCheck at runtime — the dataflow interpreter verifies, before
/// running every dispatched task, that each of the task's producers has
/// completed, counts violations in `stetho_sched_selfcheck_violations_total`,
/// and dumps the obs::FlightRecorder on the first violation. This is the
/// live enforcement twin of the post-hoc `trace-dependency-violation` lint:
/// the check costs one acquire load per dependency edge, so it stays off in
/// production and on in stress tests.
bool SchedSelfCheckEnabled();
void SetSchedSelfCheck(bool enabled);

/// A persistent, process-wide pool of dataflow worker threads.
///
/// Replaces the seed scheduler's thread-per-Execute model: workers are
/// started lazily on first use, grow on demand up to `max_workers`, and
/// serve every concurrent query in the process. Each worker owns its own
/// mutex-guarded deque (mutex-per-deque rather than a lock-free Chase–Lev
/// deque keeps the pool TSan-clean); submission targets one deque and an
/// idle worker steals from the others, so there is no global ready-list
/// lock and no notify_all wakeup storm on the hot path. A global mutex and
/// condition variable exist only for the idle transition: a worker takes
/// them solely after finding every deque empty, and Submit touches them
/// solely when some worker is actually asleep.
///
/// Queries coordinate through per-job state owned by the caller (atomic
/// dependency counters in the interpreter); submitted tasks are opaque
/// closures here. A task must never block on another task.
class WorkerPool {
 public:
  using Task = std::function<void()>;

  /// Upper bound on workers for any pool; requests beyond it are clamped.
  static constexpr int kMaxWorkers = 64;

  explicit WorkerPool(int max_workers = kMaxWorkers);
  ~WorkerPool();  // signals stop and joins all workers

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Process-wide shared instance. Lazily constructed; joined at exit.
  static WorkerPool* Default();

  /// Ensures at least `n` workers are running (clamped to max_workers).
  /// Cheap when already satisfied: one relaxed atomic load.
  void EnsureWorkers(int n);

  /// Enqueues a task and wakes at most one idle worker. When called from a
  /// pool worker the task lands on that worker's own deque (LIFO locality);
  /// external submitters round-robin across deques.
  void Submit(Task task);

  int num_workers() const { return started_.load(std::memory_order_acquire); }
  /// Tasks obtained by stealing from another worker's deque. Backed by the
  /// process-wide `stetho_pool_steals_total` registry counter (shared across
  /// pool instances); kept as an accessor for tests and callers that predate
  /// the registry.
  int64_t steal_count() const { return steals_->value(); }
  /// Total tasks executed; backed by `stetho_pool_executed_total` (same
  /// process-wide sharing caveat as steal_count()).
  int64_t executed_count() const { return executed_->value(); }

 private:
  struct Worker {
    std::mutex mu;
    std::deque<Task> queue;
    std::thread thread;
  };

  void WorkerMain(int index);
  /// Pops from own deque (front) or steals from a victim's deque (back).
  bool TryAcquire(int index, Task* out);

  const int max_workers_;
  std::atomic<int> started_{0};     // workers visible to Submit/stealing
  std::atomic<int> next_victim_{0}; // round-robin submission cursor
  // Pool statistics live in the process-wide metrics registry (one relaxed
  // fetch_add, same cost as the ad-hoc atomics they replaced). The latency
  // histogram alone reads the clock, so it is gated on obs::Active().
  obs::Counter* steals_;
  obs::Counter* executed_;
  obs::Counter* wakeups_;
  obs::Gauge* queue_depth_;
  obs::Histogram* task_usec_;
  std::atomic<int64_t> pending_{0}; // queued-but-unclaimed tasks
  std::atomic<bool> stop_{false};

  std::mutex grow_mu_;  // serializes EnsureWorkers
  std::vector<std::unique_ptr<Worker>> workers_;  // sized max_workers_ upfront

  std::mutex idle_mu_;  // serializes park/notify only
  std::condition_variable idle_cv_;
  /// Workers currently parked (or about to park) on idle_cv_. Modified under
  /// idle_mu_; read lock-free by Submit, hence atomic. The seq_cst pairing
  /// with pending_ closes the missed-wakeup window (see Submit).
  std::atomic<int> sleepers_{0};
};

}  // namespace stetho::engine

#endif  // STETHO_ENGINE_WORKER_POOL_H_
