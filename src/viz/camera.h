#ifndef STETHO_VIZ_CAMERA_H_
#define STETHO_VIZ_CAMERA_H_

#include "layout/sugiyama.h"

namespace stetho::viz {

/// ZVTM-style camera: a position in the virtual space plus an altitude.
/// Higher altitude = zoomed out. The projection scale is
/// focal / (focal + altitude), so altitude 0 renders 1:1 and the visible
/// world region grows linearly with altitude.
class Camera {
 public:
  Camera(double viewport_width, double viewport_height)
      : viewport_w_(viewport_width), viewport_h_(viewport_height) {}

  double x() const { return x_; }
  double y() const { return y_; }
  double altitude() const { return altitude_; }
  double viewport_width() const { return viewport_w_; }
  double viewport_height() const { return viewport_h_; }
  double focal() const { return focal_; }

  void MoveTo(double x, double y) {
    x_ = x;
    y_ = y;
  }
  /// Clamps to >= 0.
  void SetAltitude(double altitude) { altitude_ = altitude < 0 ? 0 : altitude; }

  /// Relative zoom: positive deltas zoom out.
  void AltitudeBy(double delta) { SetAltitude(altitude_ + delta); }

  /// Current world→screen scale factor.
  double Scale() const { return focal_ / (focal_ + altitude_); }

  /// Projects a world point to viewport coordinates (viewport center maps
  /// to the camera position).
  layout::Point Project(const layout::Point& world) const;

  /// Inverse projection.
  layout::Point Unproject(const layout::Point& screen) const;

  /// World-space rectangle currently visible: origin + size.
  layout::Point VisibleOrigin() const;
  layout::Point VisibleSize() const;

  /// Positions the camera so the given world rect fills the viewport
  /// (ZGrviewer's "get global view" / zoom-to-fit).
  void FitRect(double wx, double wy, double wwidth, double wheight);

  /// Centers on a world point keeping altitude (node focus on click).
  void CenterOn(double wx, double wy) { MoveTo(wx, wy); }

 private:
  double viewport_w_;
  double viewport_h_;
  double x_ = 0;
  double y_ = 0;
  double altitude_ = 0;
  double focal_ = 100.0;
};

}  // namespace stetho::viz

#endif  // STETHO_VIZ_CAMERA_H_
