#include "viz/event_dispatch.h"

namespace stetho::viz {

EventDispatchThread::EventDispatchThread(Clock* clock,
                                         int64_t min_render_interval_us)
    : clock_(clock), min_render_interval_us_(min_render_interval_us) {
  thread_ = std::thread(&EventDispatchThread::Loop, this);
}

EventDispatchThread::~EventDispatchThread() { Shutdown(); }

void EventDispatchThread::Post(std::function<void()> task, bool is_render) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!running_) return;
  queue_.push_back(Task{std::move(task), is_render});
  if (static_cast<int64_t>(queue_.size()) > stats_.max_queue_depth) {
    stats_.max_queue_depth = static_cast<int64_t>(queue_.size());
  }
  cv_.notify_one();
}

void EventDispatchThread::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return (queue_.empty() && !busy_) || !running_;
  });
}

void EventDispatchThread::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!running_ && !thread_.joinable()) return;
    idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
    running_ = false;
    cv_.notify_all();
    idle_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

DispatchStats EventDispatchThread::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void EventDispatchThread::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [this] { return !queue_.empty() || !running_; });
    if (!running_ && queue_.empty()) return;
    Task task = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;

    // Render pacing: enforce the minimum interval since the last render.
    // The wait happens outside the lock so Post never blocks.
    if (task.is_render && last_render_us_ >= 0 && min_render_interval_us_ > 0) {
      int64_t now = clock_->NowMicros();
      int64_t wait = last_render_us_ + min_render_interval_us_ - now;
      if (wait > 0) {
        lock.unlock();
        clock_->SleepMicros(wait);
        lock.lock();
      }
    }

    lock.unlock();
    task.fn();
    lock.lock();

    ++stats_.tasks_executed;
    if (task.is_render) {
      int64_t now = clock_->NowMicros();
      ++stats_.renders;
      if (last_render_us_ >= 0) {
        stats_.render_gaps_us.push_back(now - last_render_us_);
      }
      last_render_us_ = now;
    }
    busy_ = false;
    idle_cv_.notify_all();
  }
}

}  // namespace stetho::viz
