#include "viz/lens.h"

#include <cmath>

namespace stetho::viz {

bool FisheyeLens::Contains(const layout::Point& p) const {
  double dx = p.x - cx_;
  double dy = p.y - cy_;
  return dx * dx + dy * dy < radius_ * radius_;
}

double FisheyeLens::GainAt(double d) const {
  if (d >= radius_) return 1.0;
  // Sarkar-Brown radial gain with distortion m = mag-1: mag at the focus,
  // exactly 1.0 at the rim (continuous hand-off to undistorted space).
  double m = mag_ - 1.0;
  double t = d / radius_;
  return (m + 1.0) / (m * t + 1.0);
}

layout::Point FisheyeLens::Apply(const layout::Point& p) const {
  double dx = p.x - cx_;
  double dy = p.y - cy_;
  double d = std::sqrt(dx * dx + dy * dy);
  if (d >= radius_ || d == 0.0) return p;
  // Sarkar-Brown fisheye: r' = R * (m+1)t / (mt+1), t = d/R, m = mag-1.
  // Monotone in d, fixes the rim (r'(R) = R), magnifies by `mag` at the
  // focus.
  double m = mag_ - 1.0;
  double t = d / radius_;
  double scaled = radius_ * (m + 1.0) * t / (m * t + 1.0);
  double k = scaled / d;
  return {cx_ + dx * k, cy_ + dy * k};
}

}  // namespace stetho::viz
