#ifndef STETHO_VIZ_EVENT_DISPATCH_H_
#define STETHO_VIZ_EVENT_DISPATCH_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"

namespace stetho::viz {

/// Statistics about render pacing, used by the C1 benchmark (the paper's
/// "delay of up-to 150ms between rendering of consecutive nodes").
struct DispatchStats {
  int64_t tasks_executed = 0;
  int64_t renders = 0;
  int64_t max_queue_depth = 0;
  /// Gaps between consecutive render completions, microseconds.
  std::vector<int64_t> render_gaps_us;
};

/// The Java Event-Dispatch-Thread model the Stethoscope renders through:
/// a single dedicated thread consumes queued runnables in order; runnables
/// flagged as *renders* are throttled to at most one per
/// `min_render_interval_us` (default 150 ms — the rendering limitation the
/// paper works around). Plain tasks run unthrottled.
///
/// Thread-safe: any thread may Post; tasks run on the dispatch thread only.
class EventDispatchThread {
 public:
  /// `clock` drives throttling; a VirtualClock makes pacing deterministic
  /// (SleepMicros advances virtual time instantly).
  explicit EventDispatchThread(Clock* clock,
                               int64_t min_render_interval_us = 150000);
  ~EventDispatchThread();

  EventDispatchThread(const EventDispatchThread&) = delete;
  EventDispatchThread& operator=(const EventDispatchThread&) = delete;

  /// Enqueues a task. Render tasks are subject to the pacing delay.
  void Post(std::function<void()> task, bool is_render = false);

  /// Convenience: Post(task, /*is_render=*/true).
  void PostRender(std::function<void()> task) { Post(std::move(task), true); }

  /// Blocks until the queue is empty and the in-flight task finished.
  void Drain();

  /// Stops the thread after draining the queue.
  void Shutdown();

  /// Snapshot of pacing statistics.
  DispatchStats Stats() const;

  int64_t min_render_interval_us() const { return min_render_interval_us_; }

 private:
  struct Task {
    std::function<void()> fn;
    bool is_render = false;
  };

  void Loop();

  Clock* clock_;
  int64_t min_render_interval_us_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<Task> queue_;
  bool running_ = true;
  bool busy_ = false;

  DispatchStats stats_;
  int64_t last_render_us_ = -1;

  std::thread thread_;
};

}  // namespace stetho::viz

#endif  // STETHO_VIZ_EVENT_DISPATCH_H_
