#ifndef STETHO_VIZ_RENDERER_H_
#define STETHO_VIZ_RENDERER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "viz/camera.h"
#include "viz/lens.h"
#include "viz/virtual_space.h"

namespace stetho::viz {

/// One draw command of a rendered frame, in screen coordinates.
struct DrawCommand {
  GlyphKind kind;
  int glyph = -1;  ///< source glyph id (keys the incremental rasterizer)
  std::string owner;
  double x = 0, y = 0;        ///< center (shape/text) / first endpoint (edge)
  double x2 = 0, y2 = 0;      ///< second endpoint (edge)
  double width = 0, height = 0;
  std::string text;
  Color fill;
  Color stroke;
};

/// A headless frame: what would have been drawn, plus viewport metadata.
struct Frame {
  double viewport_width = 0;
  double viewport_height = 0;
  std::vector<DrawCommand> commands;
  /// Glyphs skipped because they fell outside the viewport (culling).
  size_t culled = 0;
  /// Space epoch this frame corresponds to; pass it to RenderDelta to get
  /// only the glyphs that changed afterwards.
  int64_t epoch = 0;

  /// Serializes the frame as SVG for inspection / golden artifacts.
  std::string ToSvg() const;
};

/// Headless renderer: projects visible glyphs through the camera (and an
/// optional fisheye lens) into a draw-command list. This stands in for
/// ZVTM's Swing painting; everything the paper's display window shows is
/// observable in the Frame.
class Renderer {
 public:
  /// Renders a frame; `lens` may be null.
  static Frame RenderFrame(const VirtualSpace& space, const Camera& camera,
                           const FisheyeLens* lens = nullptr);

  /// Renders only the glyphs modified after `since` (a previous frame's
  /// `epoch`) — the delta draw list incremental rasterization consumes.
  /// Camera and lens must be unchanged since the full frame.
  static Frame RenderDelta(const VirtualSpace& space, const Camera& camera,
                           int64_t since, const FisheyeLens* lens = nullptr);

  /// Renders ZGrviewer's overview+detail "radar": the whole scene through
  /// an auto-fitted camera of the given size, with one extra shape command
  /// (owner "viewport") outlining the world region `main_camera` currently
  /// shows.
  static Frame RenderMinimap(const VirtualSpace& space,
                             const Camera& main_camera, double minimap_width,
                             double minimap_height);
};

}  // namespace stetho::viz

#endif  // STETHO_VIZ_RENDERER_H_
