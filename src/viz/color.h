#ifndef STETHO_VIZ_COLOR_H_
#define STETHO_VIZ_COLOR_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace stetho::viz {

/// 24-bit RGB color used by glyphs and the coloring algorithms.
struct Color {
  uint8_t r = 0;
  uint8_t g = 0;
  uint8_t b = 0;

  bool operator==(const Color& other) const = default;

  /// "#rrggbb".
  std::string ToHex() const;

  /// Parses "#rrggbb" or a small set of named colors (red, green, white,
  /// black, gray, yellow, orange).
  static Result<Color> Parse(const std::string& text);

  /// Linear interpolation a→b at t in [0,1].
  static Color Lerp(const Color& a, const Color& b, double t);

  /// The paper's state colors: RED = instruction started, GREEN = done.
  static Color Red() { return {0xE0, 0x20, 0x20}; }
  static Color Green() { return {0x20, 0xA0, 0x20}; }
  static Color White() { return {0xFF, 0xFF, 0xFF}; }
  static Color Gray() { return {0xF2, 0xF2, 0xF2}; }
  static Color Black() { return {0x00, 0x00, 0x00}; }
  static Color Yellow() { return {0xE8, 0xC0, 0x20}; }
  static Color Orange() { return {0xE8, 0x80, 0x20}; }
  /// Deviation overlay: straggler glyph strokes in the online monitor —
  /// distinct from every pair-sequence fill state.
  static Color Magenta() { return {0xD0, 0x20, 0xD0}; }
};

}  // namespace stetho::viz

#endif  // STETHO_VIZ_COLOR_H_
