#include "viz/renderer.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace stetho::viz {

namespace {

/// Projects one glyph into frame coordinates and appends the draw command,
/// or bumps the cull counter. Shared by the full and delta render paths so
/// a delta command is byte-identical to its full-frame counterpart.
void ProjectGlyph(const Glyph& g, const Camera& camera,
                  const FisheyeLens* lens, double scale, Frame* frame) {
  DrawCommand cmd;
  cmd.kind = g.kind;
  cmd.glyph = g.id;
  cmd.owner = g.owner;
  cmd.text = g.text;
  cmd.fill = g.fill;
  cmd.stroke = g.stroke;

  layout::Point p1 = camera.Project({g.x, g.y});
  layout::Point p2 = camera.Project({g.x2, g.y2});
  if (lens != nullptr) {
    p1 = lens->Apply(p1);
    p2 = lens->Apply(p2);
  }
  double gain = 1.0;
  if (lens != nullptr) {
    double dx = p1.x - lens->cx();
    double dy = p1.y - lens->cy();
    gain = lens->GainAt(std::sqrt(dx * dx + dy * dy));
  }
  cmd.x = p1.x;
  cmd.y = p1.y;
  cmd.x2 = p2.x;
  cmd.y2 = p2.y;
  cmd.width = g.width * scale * gain;
  cmd.height = g.height * scale * gain;

  // Viewport culling with the glyph's extent.
  double half_w = cmd.width / 2.0 + 1.0;
  double half_h = cmd.height / 2.0 + 1.0;
  double min_x = cmd.x - half_w;
  double max_x = cmd.x + half_w;
  double min_y = cmd.y - half_h;
  double max_y = cmd.y + half_h;
  if (g.kind == GlyphKind::kEdge) {
    min_x = std::min(cmd.x, cmd.x2) - 1.0;
    max_x = std::max(cmd.x, cmd.x2) + 1.0;
    min_y = std::min(cmd.y, cmd.y2) - 1.0;
    max_y = std::max(cmd.y, cmd.y2) + 1.0;
  }
  if (max_x < 0 || min_x > frame->viewport_width || max_y < 0 ||
      min_y > frame->viewport_height) {
    ++frame->culled;
    return;
  }
  frame->commands.push_back(std::move(cmd));
}

}  // namespace

Frame Renderer::RenderFrame(const VirtualSpace& space, const Camera& camera,
                            const FisheyeLens* lens) {
  Frame frame;
  frame.viewport_width = camera.viewport_width();
  frame.viewport_height = camera.viewport_height();
  double scale = camera.Scale();
  for (const Glyph& g : space.Snapshot(&frame.epoch)) {
    if (!g.visible) continue;
    ProjectGlyph(g, camera, lens, scale, &frame);
  }
  return frame;
}

Frame Renderer::RenderDelta(const VirtualSpace& space, const Camera& camera,
                            int64_t since, const FisheyeLens* lens) {
  Frame frame;
  frame.viewport_width = camera.viewport_width();
  frame.viewport_height = camera.viewport_height();
  double scale = camera.Scale();
  for (const Glyph& g : space.SnapshotSince(since, &frame.epoch)) {
    if (!g.visible) continue;
    ProjectGlyph(g, camera, lens, scale, &frame);
  }
  return frame;
}

Frame Renderer::RenderMinimap(const VirtualSpace& space,
                              const Camera& main_camera, double minimap_width,
                              double minimap_height) {
  Camera overview(minimap_width, minimap_height);
  layout::Point origin = space.BoundsOrigin();
  layout::Point size = space.BoundsSize();
  overview.FitRect(origin.x, origin.y, size.x, size.y);
  Frame frame = RenderFrame(space, overview);

  // Outline the main camera's visible world rect.
  layout::Point view_origin = main_camera.VisibleOrigin();
  layout::Point view_size = main_camera.VisibleSize();
  layout::Point top_left = overview.Project(view_origin);
  layout::Point bottom_right = overview.Project(
      {view_origin.x + view_size.x, view_origin.y + view_size.y});
  DrawCommand marker;
  marker.kind = GlyphKind::kShape;
  marker.owner = "viewport";
  marker.x = (top_left.x + bottom_right.x) / 2.0;
  marker.y = (top_left.y + bottom_right.y) / 2.0;
  marker.width = bottom_right.x - top_left.x;
  marker.height = bottom_right.y - top_left.y;
  marker.fill = Color::White();
  marker.stroke = Color::Red();
  frame.commands.push_back(std::move(marker));
  return frame;
}

std::string Frame::ToSvg() const {
  std::string out = StrFormat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" "
      "height=\"%.0f\">\n",
      viewport_width, viewport_height);
  for (const DrawCommand& cmd : commands) {
    switch (cmd.kind) {
      case GlyphKind::kEdge:
        out += StrFormat(
            "  <line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
            "stroke=\"%s\"/>\n",
            cmd.x, cmd.y, cmd.x2, cmd.y2, cmd.stroke.ToHex().c_str());
        break;
      case GlyphKind::kShape:
        out += StrFormat(
            "  <rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
            "fill=\"%s\" stroke=\"%s\" data-owner=\"%s\"/>\n",
            cmd.x - cmd.width / 2.0, cmd.y - cmd.height / 2.0, cmd.width,
            cmd.height, cmd.fill.ToHex().c_str(), cmd.stroke.ToHex().c_str(),
            EscapeXml(cmd.owner).c_str());
        break;
      case GlyphKind::kText:
        out += StrFormat(
            "  <text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" "
            "font-size=\"%.1f\">%s</text>\n",
            cmd.x, cmd.y, std::max(6.0, cmd.height * 0.4),
            EscapeXml(cmd.text).c_str());
        break;
    }
  }
  out += "</svg>\n";
  return out;
}

}  // namespace stetho::viz
