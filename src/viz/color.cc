#include "viz/color.h"

#include <cstdio>

#include "common/string_util.h"

namespace stetho::viz {

std::string Color::ToHex() const {
  return StrFormat("#%02x%02x%02x", r, g, b);
}

Result<Color> Color::Parse(const std::string& text) {
  std::string t = ToLower(Trim(text));
  if (t.size() == 7 && t[0] == '#') {
    unsigned rr = 0;
    unsigned gg = 0;
    unsigned bb = 0;
    if (std::sscanf(t.c_str() + 1, "%02x%02x%02x", &rr, &gg, &bb) == 3) {
      return Color{static_cast<uint8_t>(rr), static_cast<uint8_t>(gg),
                   static_cast<uint8_t>(bb)};
    }
    return Status::ParseError("bad hex color '" + text + "'");
  }
  if (t == "red") return Red();
  if (t == "green") return Green();
  if (t == "white") return White();
  if (t == "black") return Black();
  if (t == "gray" || t == "grey") return Gray();
  if (t == "yellow") return Yellow();
  if (t == "orange") return Orange();
  return Status::ParseError("unknown color '" + text + "'");
}

Color Color::Lerp(const Color& a, const Color& b, double t) {
  if (t < 0) t = 0;
  if (t > 1) t = 1;
  auto mix = [t](uint8_t x, uint8_t y) {
    return static_cast<uint8_t>(static_cast<double>(x) +
                                (static_cast<double>(y) - x) * t + 0.5);
  };
  return Color{mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b)};
}

}  // namespace stetho::viz
