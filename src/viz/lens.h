#ifndef STETHO_VIZ_LENS_H_
#define STETHO_VIZ_LENS_H_

#include "layout/sugiyama.h"

namespace stetho::viz {

/// Fisheye distortion lens — one of ZGrviewer's "plethora of lenses" for
/// visual interaction with graph nodes (paper §3.1). Points inside the lens
/// radius are magnified around the focus; points outside are untouched; the
/// transition is continuous at the rim.
class FisheyeLens {
 public:
  FisheyeLens(double cx, double cy, double radius, double magnification)
      : cx_(cx), cy_(cy), radius_(radius), mag_(magnification) {}

  double cx() const { return cx_; }
  double cy() const { return cy_; }
  double radius() const { return radius_; }
  double magnification() const { return mag_; }

  void MoveTo(double cx, double cy) {
    cx_ = cx;
    cy_ = cy;
  }

  /// Applies the distortion in screen space.
  layout::Point Apply(const layout::Point& p) const;

  /// True when the point lies inside the lens.
  bool Contains(const layout::Point& p) const;

  /// Effective magnification at distance `d` from the focus (mag_ at the
  /// center, 1.0 at and beyond the rim).
  double GainAt(double d) const;

 private:
  double cx_;
  double cy_;
  double radius_;
  double mag_;
};

}  // namespace stetho::viz

#endif  // STETHO_VIZ_LENS_H_
