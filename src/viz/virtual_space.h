#ifndef STETHO_VIZ_VIRTUAL_SPACE_H_
#define STETHO_VIZ_VIRTUAL_SPACE_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "dot/graph.h"
#include "layout/sugiyama.h"
#include "viz/color.h"

namespace stetho::viz {

/// Kinds of fundamental graphical objects — ZVTM's glyph model (paper §3.1:
/// a two-node graph is represented by two shape glyphs, two text glyphs and
/// one edge glyph).
enum class GlyphKind { kShape, kText, kEdge };

/// One graphical object on the canvas. World coordinates; (x, y) is the
/// center for shapes/texts and unused for edges (which carry endpoints).
struct Glyph {
  int id = -1;
  GlyphKind kind = GlyphKind::kShape;
  std::string owner;  ///< graph node/edge id this glyph renders ("n3")
  double x = 0;
  double y = 0;
  double width = 0;
  double height = 0;
  std::string text;       // text glyphs
  double x2 = 0, y2 = 0;  // edge glyphs: second endpoint
  Color fill = Color::Gray();
  Color stroke = Color::Black();
  bool visible = true;
  int z = 0;  ///< draw order (higher on top)
};

/// The canvas all glyphs live on — ZVTM's virtual space. Thread-safe: the
/// event-dispatch thread mutates glyph state while analysis threads read
/// snapshots.
class VirtualSpace {
 public:
  VirtualSpace() = default;

  /// Adds a glyph, returns its id.
  int AddGlyph(Glyph glyph);

  /// Runs `fn` on the glyph under the lock; NotFound for bad ids.
  Status MutateGlyph(int id, const std::function<void(Glyph*)>& fn);

  /// Copy of one glyph.
  Result<Glyph> GetGlyph(int id) const;

  /// Copy of all glyphs in z-then-insertion order.
  std::vector<Glyph> Snapshot() const;

  size_t size() const;

  /// Ids of the shape/text glyphs owned by graph node `node_id`.
  std::vector<int> GlyphsForOwner(const std::string& owner) const;

  /// Id of the shape glyph owned by `owner`, or -1.
  int ShapeFor(const std::string& owner) const;

  /// Bounding box of all visible glyphs (world coords): x, y, w, h.
  layout::Point BoundsOrigin() const;
  layout::Point BoundsSize() const;

 private:
  mutable std::mutex mu_;
  std::vector<Glyph> glyphs_;
  std::multimap<std::string, int> by_owner_;
};

/// Builds the scene for a laid-out graph: per node one shape glyph + one
/// text glyph, per edge one edge glyph — the ZGrviewer object model.
/// Returns the populated space.
void BuildScene(const dot::Graph& graph, const layout::GraphLayout& layout,
                VirtualSpace* space);

}  // namespace stetho::viz

#endif  // STETHO_VIZ_VIRTUAL_SPACE_H_
