#ifndef STETHO_VIZ_VIRTUAL_SPACE_H_
#define STETHO_VIZ_VIRTUAL_SPACE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "dot/graph.h"
#include "layout/sugiyama.h"
#include "viz/color.h"

namespace stetho::viz {

/// Kinds of fundamental graphical objects — ZVTM's glyph model (paper §3.1:
/// a two-node graph is represented by two shape glyphs, two text glyphs and
/// one edge glyph).
enum class GlyphKind { kShape, kText, kEdge };

/// One graphical object on the canvas. World coordinates; (x, y) is the
/// center for shapes/texts and unused for edges (which carry endpoints).
struct Glyph {
  int id = -1;
  GlyphKind kind = GlyphKind::kShape;
  std::string owner;  ///< graph node/edge id this glyph renders ("n3")
  double x = 0;
  double y = 0;
  double width = 0;
  double height = 0;
  std::string text;       // text glyphs
  double x2 = 0, y2 = 0;  // edge glyphs: second endpoint
  Color fill = Color::Gray();
  Color stroke = Color::Black();
  bool visible = true;
  int z = 0;  ///< draw order (higher on top)
  /// Space-wide modification epoch stamped at the last add/mutation; the
  /// delta render path uses it to pick up only dirty glyphs.
  int64_t epoch = 0;
};

/// The canvas all glyphs live on — ZVTM's virtual space. Thread-safe: the
/// event-dispatch thread mutates glyph state while analysis threads read
/// snapshots.
///
/// Every mutation stamps the touched glyph with a monotonically increasing
/// space epoch; SnapshotSince(e) returns just the glyphs stamped after `e`,
/// which is what makes incremental (dirty-glyph) rendering O(changed)
/// instead of O(scene).
class VirtualSpace {
 public:
  VirtualSpace() = default;

  /// Adds a glyph, returns its id.
  int AddGlyph(Glyph glyph);

  /// Adds a batch of glyphs under one lock acquisition; returns the id of
  /// the first (ids are consecutive). Scene construction for a
  /// thousand-node plan is one lock round-trip instead of thousands.
  int AddGlyphs(std::vector<Glyph> glyphs);

  /// Runs `fn` on the glyph under the lock; NotFound for bad ids. Always
  /// marks the glyph dirty (the mutation is opaque).
  Status MutateGlyph(int id, const std::function<void(Glyph*)>& fn);

  /// Sets the fill color; marks the glyph dirty only when the color
  /// actually changes. The coloring hot path (replay, online monitor) goes
  /// through this so repeated identical updates stay invisible to the
  /// delta renderer.
  Status SetFill(int id, Color fill);

  /// Copy of one glyph.
  Result<Glyph> GetGlyph(int id) const;

  /// Copy of all glyphs in z-then-insertion order. When `epoch_out` is
  /// non-null it receives the space epoch the snapshot corresponds to.
  std::vector<Glyph> Snapshot(int64_t* epoch_out = nullptr) const;

  /// Copy of the glyphs modified after `since` (z-then-insertion order);
  /// `epoch_out` receives the epoch this delta brings the caller up to.
  std::vector<Glyph> SnapshotSince(int64_t since,
                                   int64_t* epoch_out = nullptr) const;

  /// Current modification epoch (bumped by every add/mutation).
  int64_t epoch() const;

  size_t size() const;

  /// Ids of the shape/text glyphs owned by graph node `node_id`.
  std::vector<int> GlyphsForOwner(const std::string& owner) const;

  /// Id of the shape glyph owned by `owner`, or -1.
  int ShapeFor(const std::string& owner) const;

  /// Bounding box of all visible glyphs (world coords): x, y, w, h.
  layout::Point BoundsOrigin() const;
  layout::Point BoundsSize() const;

 private:
  mutable std::mutex mu_;
  int64_t epoch_ = 0;  // guarded by mu_
  std::vector<Glyph> glyphs_;
  std::unordered_map<std::string, std::vector<int>> by_owner_;
};

/// Builds the scene for a laid-out graph: per node one shape glyph + one
/// text glyph, per edge one edge glyph — the ZGrviewer object model.
/// Glyphs are assembled outside the lock and added as one batch.
void BuildScene(const dot::Graph& graph, const layout::GraphLayout& layout,
                VirtualSpace* space);

}  // namespace stetho::viz

#endif  // STETHO_VIZ_VIRTUAL_SPACE_H_
