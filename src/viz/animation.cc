#include "viz/animation.h"

namespace stetho::viz {

double ApplyEasing(Easing easing, double t) {
  if (t < 0) t = 0;
  if (t > 1) t = 1;
  switch (easing) {
    case Easing::kLinear:
      return t;
    case Easing::kEaseInOut:
      // Smoothstep.
      return t * t * (3.0 - 2.0 * t);
  }
  return t;
}

void Animator::AnimateCamera(Camera* camera, double x, double y,
                             double altitude, int64_t duration_us,
                             Easing easing) {
  double x0 = camera->x();
  double y0 = camera->y();
  double a0 = camera->altitude();
  Animation anim;
  anim.start_us = clock_->NowMicros();
  anim.duration_us = duration_us;
  anim.easing = easing;
  anim.apply = [camera, x0, y0, a0, x, y, altitude](double t) {
    camera->MoveTo(x0 + (x - x0) * t, y0 + (y - y0) * t);
    camera->SetAltitude(a0 + (altitude - a0) * t);
  };
  std::lock_guard<std::mutex> lock(mu_);
  animations_.push_back(std::move(anim));
}

void Animator::AnimateGlyphFill(VirtualSpace* space, int glyph_id,
                                Color target, int64_t duration_us,
                                Easing easing) {
  auto glyph = space->GetGlyph(glyph_id);
  Color from = glyph.ok() ? glyph.value().fill : Color::Gray();
  Animation anim;
  anim.start_us = clock_->NowMicros();
  anim.duration_us = duration_us;
  anim.easing = easing;
  anim.apply = [space, glyph_id, from, target](double t) {
    (void)space->MutateGlyph(glyph_id, [&](Glyph* g) {
      g->fill = Color::Lerp(from, target, t);
    });
  };
  std::lock_guard<std::mutex> lock(mu_);
  animations_.push_back(std::move(anim));
}

size_t Animator::Tick() {
  int64_t now = clock_->NowMicros();
  std::vector<Animation> active;
  std::vector<Animation> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.swap(animations_);
  }
  for (Animation& anim : snapshot) {
    double t = anim.duration_us <= 0
                   ? 1.0
                   : static_cast<double>(now - anim.start_us) /
                         static_cast<double>(anim.duration_us);
    anim.apply(ApplyEasing(anim.easing, t));
    if (t < 1.0) active.push_back(std::move(anim));
  }
  size_t remaining;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // New animations scheduled during apply() land after the survivors.
    active.insert(active.end(),
                  std::make_move_iterator(animations_.begin()),
                  std::make_move_iterator(animations_.end()));
    animations_ = std::move(active);
    remaining = animations_.size();
  }
  return remaining;
}

void Animator::RunToCompletion(int64_t step_us) {
  while (Tick() > 0) {
    clock_->SleepMicros(step_us);
  }
}

size_t Animator::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return animations_.size();
}

}  // namespace stetho::viz
