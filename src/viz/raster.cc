#include "viz/raster.h"

#include <cmath>
#include <cstdio>

namespace stetho::viz {

Raster::Raster(int width, int height, Color background)
    : width_(width < 1 ? 1 : width),
      height_(height < 1 ? 1 : height),
      pixels_(static_cast<size_t>(width_) * static_cast<size_t>(height_),
              background) {}

Color Raster::At(int x, int y) const {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return Color::Black();
  return pixels_[static_cast<size_t>(y) * static_cast<size_t>(width_) +
                 static_cast<size_t>(x)];
}

void Raster::Set(int x, int y, Color color) {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return;
  pixels_[static_cast<size_t>(y) * static_cast<size_t>(width_) +
          static_cast<size_t>(x)] = color;
}

std::string Raster::ToPpm() const {
  std::string out = "P6\n" + std::to_string(width_) + " " +
                    std::to_string(height_) + "\n255\n";
  out.reserve(out.size() + pixels_.size() * 3);
  for (const Color& c : pixels_) {
    out.push_back(static_cast<char>(c.r));
    out.push_back(static_cast<char>(c.g));
    out.push_back(static_cast<char>(c.b));
  }
  return out;
}

Status Raster::WritePpm(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open '" + path + "'");
  std::string data = ToPpm();
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (written != data.size()) {
    return Status::IoError("short write to '" + path + "'");
  }
  return Status::OK();
}

double Raster::DiffRatio(const Raster& other) const {
  if (width_ != other.width_ || height_ != other.height_) return 1.0;
  size_t diff = 0;
  for (size_t i = 0; i < pixels_.size(); ++i) {
    if (!(pixels_[i] == other.pixels_[i])) ++diff;
  }
  return static_cast<double>(diff) / static_cast<double>(pixels_.size());
}

namespace {

void DrawLine(Raster* raster, double x1, double y1, double x2, double y2,
              Color color) {
  int ix1 = static_cast<int>(std::lround(x1));
  int iy1 = static_cast<int>(std::lround(y1));
  int ix2 = static_cast<int>(std::lround(x2));
  int iy2 = static_cast<int>(std::lround(y2));
  int dx = std::abs(ix2 - ix1);
  int dy = -std::abs(iy2 - iy1);
  int sx = ix1 < ix2 ? 1 : -1;
  int sy = iy1 < iy2 ? 1 : -1;
  int err = dx + dy;
  while (true) {
    raster->Set(ix1, iy1, color);
    if (ix1 == ix2 && iy1 == iy2) break;
    int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      ix1 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      iy1 += sy;
    }
  }
}

void FillRect(Raster* raster, double cx, double cy, double w, double h,
              Color fill, Color stroke) {
  int x1 = static_cast<int>(std::lround(cx - w / 2));
  int y1 = static_cast<int>(std::lround(cy - h / 2));
  int x2 = static_cast<int>(std::lround(cx + w / 2));
  int y2 = static_cast<int>(std::lround(cy + h / 2));
  for (int y = y1; y <= y2; ++y) {
    for (int x = x1; x <= x2; ++x) {
      bool border = (x == x1 || x == x2 || y == y1 || y == y2);
      raster->Set(x, y, border ? stroke : fill);
    }
  }
}

}  // namespace

Raster RasterizeFrame(const Frame& frame, Color background) {
  Raster raster(static_cast<int>(frame.viewport_width),
                static_cast<int>(frame.viewport_height), background);
  for (const DrawCommand& cmd : frame.commands) {
    switch (cmd.kind) {
      case GlyphKind::kEdge:
        DrawLine(&raster, cmd.x, cmd.y, cmd.x2, cmd.y2, cmd.stroke);
        break;
      case GlyphKind::kShape:
        FillRect(&raster, cmd.x, cmd.y, cmd.width, cmd.height, cmd.fill,
                 cmd.stroke);
        break;
      case GlyphKind::kText: {
        // Geometry-only placeholder: a thin dark strip at the baseline.
        double strip_w = std::min(cmd.width * 0.7,
                                  static_cast<double>(cmd.text.size()) * 4.0);
        if (strip_w >= 2 && cmd.height >= 6) {
          FillRect(&raster, cmd.x, cmd.y, strip_w, 1.0, Color{80, 80, 80},
                   Color{80, 80, 80});
        }
        break;
      }
    }
  }
  return raster;
}

}  // namespace stetho::viz
