#include "viz/raster.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/metrics.h"

namespace stetho::viz {

Raster::Raster(int width, int height, Color background)
    : width_(width < 1 ? 1 : width),
      height_(height < 1 ? 1 : height),
      pixels_(static_cast<size_t>(width_) * static_cast<size_t>(height_),
              background) {}

Color Raster::At(int x, int y) const {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return Color::Black();
  return pixels_[static_cast<size_t>(y) * static_cast<size_t>(width_) +
                 static_cast<size_t>(x)];
}

void Raster::Set(int x, int y, Color color) {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return;
  pixels_[static_cast<size_t>(y) * static_cast<size_t>(width_) +
          static_cast<size_t>(x)] = color;
}

std::string Raster::ToPpm() const {
  std::string out = "P6\n" + std::to_string(width_) + " " +
                    std::to_string(height_) + "\n255\n";
  out.reserve(out.size() + pixels_.size() * 3);
  for (const Color& c : pixels_) {
    out.push_back(static_cast<char>(c.r));
    out.push_back(static_cast<char>(c.g));
    out.push_back(static_cast<char>(c.b));
  }
  return out;
}

Status Raster::WritePpm(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open '" + path + "'");
  std::string data = ToPpm();
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (written != data.size()) {
    return Status::IoError("short write to '" + path + "'");
  }
  return Status::OK();
}

double Raster::DiffRatio(const Raster& other) const {
  if (width_ != other.width_ || height_ != other.height_) return 1.0;
  size_t diff = 0;
  for (size_t i = 0; i < pixels_.size(); ++i) {
    if (!(pixels_[i] == other.pixels_[i])) ++diff;
  }
  return static_cast<double>(diff) / static_cast<double>(pixels_.size());
}

namespace {

/// Inclusive pixel rectangle limiting where a redraw may write; nullptr
/// means unclipped. Clipped drawing keeps dirty-rect redraws from touching
/// correct pixels owned by commands outside the rectangle.
struct ClipRect {
  int x1, y1, x2, y2;
};

inline void PutPixel(Raster* raster, int x, int y, Color color,
                     const ClipRect* clip) {
  if (clip != nullptr &&
      (x < clip->x1 || x > clip->x2 || y < clip->y1 || y > clip->y2)) {
    return;
  }
  raster->Set(x, y, color);
}

void DrawLine(Raster* raster, double x1, double y1, double x2, double y2,
              Color color, const ClipRect* clip) {
  int ix1 = static_cast<int>(std::lround(x1));
  int iy1 = static_cast<int>(std::lround(y1));
  int ix2 = static_cast<int>(std::lround(x2));
  int iy2 = static_cast<int>(std::lround(y2));
  int dx = std::abs(ix2 - ix1);
  int dy = -std::abs(iy2 - iy1);
  int sx = ix1 < ix2 ? 1 : -1;
  int sy = iy1 < iy2 ? 1 : -1;
  int err = dx + dy;
  while (true) {
    PutPixel(raster, ix1, iy1, color, clip);
    if (ix1 == ix2 && iy1 == iy2) break;
    int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      ix1 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      iy1 += sy;
    }
  }
}

void FillRect(Raster* raster, double cx, double cy, double w, double h,
              Color fill, Color stroke, const ClipRect* clip) {
  int x1 = static_cast<int>(std::lround(cx - w / 2));
  int y1 = static_cast<int>(std::lround(cy - h / 2));
  int x2 = static_cast<int>(std::lround(cx + w / 2));
  int y2 = static_cast<int>(std::lround(cy + h / 2));
  for (int y = y1; y <= y2; ++y) {
    for (int x = x1; x <= x2; ++x) {
      bool border = (x == x1 || x == x2 || y == y1 || y == y2);
      PutPixel(raster, x, y, border ? stroke : fill, clip);
    }
  }
}

/// Draws one command, optionally clipped. The single rasterization routine
/// both the full and incremental paths use, so they cannot disagree.
void DrawCommandOn(Raster* raster, const DrawCommand& cmd,
                   const ClipRect* clip) {
  switch (cmd.kind) {
    case GlyphKind::kEdge:
      DrawLine(raster, cmd.x, cmd.y, cmd.x2, cmd.y2, cmd.stroke, clip);
      break;
    case GlyphKind::kShape:
      FillRect(raster, cmd.x, cmd.y, cmd.width, cmd.height, cmd.fill,
               cmd.stroke, clip);
      break;
    case GlyphKind::kText: {
      // Geometry-only placeholder: a thin dark strip at the baseline.
      double strip_w = std::min(cmd.width * 0.7,
                                static_cast<double>(cmd.text.size()) * 4.0);
      if (strip_w >= 2 && cmd.height >= 6) {
        FillRect(raster, cmd.x, cmd.y, strip_w, 1.0, Color{80, 80, 80},
                 Color{80, 80, 80}, clip);
      }
      break;
    }
  }
}

obs::Counter* RedrawnCounter() {
  static obs::Counter* c = obs::Registry::Default()->GetOrCreateCounter(
      "stetho_viz_glyphs_redrawn_total",
      "Draw commands re-rasterized by incremental dirty-rect redraws");
  return c;
}

}  // namespace

Raster RasterizeFrame(const Frame& frame, Color background) {
  Raster raster(static_cast<int>(frame.viewport_width),
                static_cast<int>(frame.viewport_height), background);
  for (const DrawCommand& cmd : frame.commands) {
    DrawCommandOn(&raster, cmd, nullptr);
  }
  return raster;
}

IncrementalRasterizer::IncrementalRasterizer(int width, int height,
                                             Color background)
    : raster_(width, height, background), background_(background) {}

IncrementalRasterizer::Box IncrementalRasterizer::BoundsOf(
    const DrawCommand& cmd) {
  Box b;
  if (cmd.kind == GlyphKind::kEdge) {
    b.x1 = static_cast<int>(std::lround(std::min(cmd.x, cmd.x2))) - 1;
    b.x2 = static_cast<int>(std::lround(std::max(cmd.x, cmd.x2))) + 1;
    b.y1 = static_cast<int>(std::lround(std::min(cmd.y, cmd.y2))) - 1;
    b.y2 = static_cast<int>(std::lround(std::max(cmd.y, cmd.y2))) + 1;
    return b;
  }
  b.x1 = static_cast<int>(std::lround(cmd.x - cmd.width / 2)) - 1;
  b.x2 = static_cast<int>(std::lround(cmd.x + cmd.width / 2)) + 1;
  b.y1 = static_cast<int>(std::lround(cmd.y - cmd.height / 2)) - 1;
  b.y2 = static_cast<int>(std::lround(cmd.y + cmd.height / 2)) + 1;
  return b;
}

void IncrementalRasterizer::Draw(const Frame& frame) {
  raster_ = Raster(static_cast<int>(frame.viewport_width),
                   static_cast<int>(frame.viewport_height), background_);
  commands_ = frame.commands;
  bounds_.clear();
  bounds_.reserve(commands_.size());
  by_glyph_.clear();
  for (size_t i = 0; i < commands_.size(); ++i) {
    bounds_.push_back(BoundsOf(commands_[i]));
    if (commands_[i].glyph >= 0) by_glyph_[commands_[i].glyph] = i;
    DrawCommandOn(&raster_, commands_[i], nullptr);
  }
  has_scene_ = true;
  last_redrawn_ = 0;
}

Status IncrementalRasterizer::ApplyDelta(const Frame& delta) {
  if (!has_scene_) {
    return Status::InvalidArgument("ApplyDelta before first Draw");
  }
  if (static_cast<int>(delta.viewport_width) != raster_.width() ||
      static_cast<int>(delta.viewport_height) != raster_.height()) {
    return Status::InvalidArgument("delta viewport does not match raster");
  }
  last_redrawn_ = 0;
  if (delta.commands.empty()) return Status::OK();

  // Old + new footprint of every changed glyph becomes a dirty rectangle.
  std::vector<Box> dirty;
  dirty.reserve(delta.commands.size());
  for (const DrawCommand& cmd : delta.commands) {
    Box nb = BoundsOf(cmd);
    auto it = by_glyph_.find(cmd.glyph);
    if (it == by_glyph_.end()) {
      // Unknown glyph: append at the end of the scene order.
      if (cmd.glyph >= 0) by_glyph_[cmd.glyph] = commands_.size();
      commands_.push_back(cmd);
      bounds_.push_back(nb);
      dirty.push_back(nb);
      continue;
    }
    Box ob = bounds_[it->second];
    commands_[it->second] = cmd;
    bounds_[it->second] = nb;
    dirty.push_back(ob);
    if (ob.x1 != nb.x1 || ob.y1 != nb.y1 || ob.x2 != nb.x2 ||
        ob.y2 != nb.y2) {
      dirty.push_back(nb);  // moved/resized: both footprints are dirty
    }
  }

  // Clear each dirty rectangle and redraw every intersecting command,
  // clipped, in scene order. Overlapping rectangles redraw some pixels
  // twice — idempotent, so still pixel-identical to a full redraw.
  for (const Box& box : dirty) {
    Box c{std::max(box.x1, 0), std::max(box.y1, 0),
          std::min(box.x2, raster_.width() - 1),
          std::min(box.y2, raster_.height() - 1)};
    if (c.x2 < c.x1 || c.y2 < c.y1) continue;
    for (int y = c.y1; y <= c.y2; ++y) {
      for (int x = c.x1; x <= c.x2; ++x) raster_.Set(x, y, background_);
    }
    ClipRect clip{c.x1, c.y1, c.x2, c.y2};
    for (size_t i = 0; i < commands_.size(); ++i) {
      if (!bounds_[i].Intersects(c)) continue;
      DrawCommandOn(&raster_, commands_[i], &clip);
      ++last_redrawn_;
    }
  }
  RedrawnCounter()->Increment(last_redrawn_);
  return Status::OK();
}

}  // namespace stetho::viz
