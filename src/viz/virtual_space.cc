#include "viz/virtual_space.h"

#include <algorithm>
#include <limits>

#include "common/string_util.h"

namespace stetho::viz {

int VirtualSpace::AddGlyph(Glyph glyph) {
  std::lock_guard<std::mutex> lock(mu_);
  glyph.id = static_cast<int>(glyphs_.size());
  by_owner_.emplace(glyph.owner, glyph.id);
  glyphs_.push_back(std::move(glyph));
  return glyphs_.back().id;
}

Status VirtualSpace::MutateGlyph(int id, const std::function<void(Glyph*)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= glyphs_.size()) {
    return Status::NotFound(StrFormat("no glyph %d", id));
  }
  fn(&glyphs_[static_cast<size_t>(id)]);
  return Status::OK();
}

Result<Glyph> VirtualSpace::GetGlyph(int id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= glyphs_.size()) {
    return Status::NotFound(StrFormat("no glyph %d", id));
  }
  return glyphs_[static_cast<size_t>(id)];
}

std::vector<Glyph> VirtualSpace::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Glyph> out = glyphs_;
  std::stable_sort(out.begin(), out.end(),
                   [](const Glyph& a, const Glyph& b) { return a.z < b.z; });
  return out;
}

size_t VirtualSpace::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return glyphs_.size();
}

std::vector<int> VirtualSpace::GlyphsForOwner(const std::string& owner) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> out;
  auto [lo, hi] = by_owner_.equal_range(owner);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  return out;
}

int VirtualSpace::ShapeFor(const std::string& owner) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto [lo, hi] = by_owner_.equal_range(owner);
  for (auto it = lo; it != hi; ++it) {
    if (glyphs_[static_cast<size_t>(it->second)].kind == GlyphKind::kShape) {
      return it->second;
    }
  }
  return -1;
}

layout::Point VirtualSpace::BoundsOrigin() const {
  std::lock_guard<std::mutex> lock(mu_);
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  for (const Glyph& g : glyphs_) {
    if (!g.visible) continue;
    min_x = std::min(min_x, g.x - g.width / 2.0);
    min_y = std::min(min_y, g.y - g.height / 2.0);
  }
  if (glyphs_.empty()) return {0, 0};
  return {min_x, min_y};
}

layout::Point VirtualSpace::BoundsSize() const {
  layout::Point origin = BoundsOrigin();
  std::lock_guard<std::mutex> lock(mu_);
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();
  for (const Glyph& g : glyphs_) {
    if (!g.visible) continue;
    max_x = std::max(max_x, g.x + g.width / 2.0);
    max_y = std::max(max_y, g.y + g.height / 2.0);
  }
  if (glyphs_.empty()) return {0, 0};
  return {max_x - origin.x, max_y - origin.y};
}

void BuildScene(const dot::Graph& graph, const layout::GraphLayout& layout,
                VirtualSpace* space) {
  // Edges first (z=0) so shapes (z=1) and labels (z=2) draw above them.
  for (const layout::EdgeLayout& el : layout.edges) {
    if (el.points.size() < 2 || el.edge < 0) continue;
    const dot::GraphEdge& edge = graph.edges()[static_cast<size_t>(el.edge)];
    Glyph g;
    g.kind = GlyphKind::kEdge;
    g.owner = edge.from + "->" + edge.to;
    g.x = el.points.front().x;
    g.y = el.points.front().y;
    g.x2 = el.points.back().x;
    g.y2 = el.points.back().y;
    g.stroke = Color{0x33, 0x33, 0x33};
    g.z = 0;
    space->AddGlyph(std::move(g));
  }
  for (const layout::NodeLayout& nl : layout.nodes) {
    if (nl.node < 0) continue;
    const dot::GraphNode& node = graph.node(static_cast<size_t>(nl.node));
    Glyph shape;
    shape.kind = GlyphKind::kShape;
    shape.owner = node.id;
    shape.x = nl.x;
    shape.y = nl.y;
    shape.width = nl.width;
    shape.height = nl.height;
    shape.fill = Color::Gray();
    shape.z = 1;
    space->AddGlyph(std::move(shape));

    Glyph text;
    text.kind = GlyphKind::kText;
    text.owner = node.id;
    text.x = nl.x;
    text.y = nl.y;
    text.width = nl.width;
    text.height = nl.height;
    text.text = node.label();
    text.z = 2;
    space->AddGlyph(std::move(text));
  }
}

}  // namespace stetho::viz
