#include "viz/virtual_space.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/string_util.h"

namespace stetho::viz {

int VirtualSpace::AddGlyph(Glyph glyph) {
  std::lock_guard<std::mutex> lock(mu_);
  glyph.id = static_cast<int>(glyphs_.size());
  glyph.epoch = ++epoch_;
  by_owner_[glyph.owner].push_back(glyph.id);
  glyphs_.push_back(std::move(glyph));
  return glyphs_.back().id;
}

int VirtualSpace::AddGlyphs(std::vector<Glyph> glyphs) {
  if (glyphs.empty()) return -1;
  std::lock_guard<std::mutex> lock(mu_);
  int first = static_cast<int>(glyphs_.size());
  glyphs_.reserve(glyphs_.size() + glyphs.size());
  for (Glyph& glyph : glyphs) {
    glyph.id = static_cast<int>(glyphs_.size());
    glyph.epoch = ++epoch_;
    by_owner_[glyph.owner].push_back(glyph.id);
    glyphs_.push_back(std::move(glyph));
  }
  return first;
}

Status VirtualSpace::MutateGlyph(int id, const std::function<void(Glyph*)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= glyphs_.size()) {
    return Status::NotFound(StrFormat("no glyph %d", id));
  }
  Glyph* g = &glyphs_[static_cast<size_t>(id)];
  fn(g);
  g->epoch = ++epoch_;
  return Status::OK();
}

Status VirtualSpace::SetFill(int id, Color fill) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= glyphs_.size()) {
    return Status::NotFound(StrFormat("no glyph %d", id));
  }
  Glyph* g = &glyphs_[static_cast<size_t>(id)];
  if (g->fill == fill) return Status::OK();  // no-op: stays clean
  g->fill = fill;
  g->epoch = ++epoch_;
  return Status::OK();
}

Result<Glyph> VirtualSpace::GetGlyph(int id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= glyphs_.size()) {
    return Status::NotFound(StrFormat("no glyph %d", id));
  }
  return glyphs_[static_cast<size_t>(id)];
}

std::vector<Glyph> VirtualSpace::Snapshot(int64_t* epoch_out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch_out != nullptr) *epoch_out = epoch_;
  std::vector<Glyph> out = glyphs_;
  std::stable_sort(out.begin(), out.end(),
                   [](const Glyph& a, const Glyph& b) { return a.z < b.z; });
  return out;
}

std::vector<Glyph> VirtualSpace::SnapshotSince(int64_t since,
                                               int64_t* epoch_out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch_out != nullptr) *epoch_out = epoch_;
  std::vector<Glyph> out;
  for (const Glyph& g : glyphs_) {
    if (g.epoch > since) out.push_back(g);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Glyph& a, const Glyph& b) { return a.z < b.z; });
  return out;
}

int64_t VirtualSpace::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

size_t VirtualSpace::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return glyphs_.size();
}

std::vector<int> VirtualSpace::GlyphsForOwner(const std::string& owner) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_owner_.find(owner);
  if (it == by_owner_.end()) return {};
  return it->second;
}

int VirtualSpace::ShapeFor(const std::string& owner) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_owner_.find(owner);
  if (it == by_owner_.end()) return -1;
  for (int id : it->second) {
    if (glyphs_[static_cast<size_t>(id)].kind == GlyphKind::kShape) {
      return id;
    }
  }
  return -1;
}

layout::Point VirtualSpace::BoundsOrigin() const {
  std::lock_guard<std::mutex> lock(mu_);
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  for (const Glyph& g : glyphs_) {
    if (!g.visible) continue;
    min_x = std::min(min_x, g.x - g.width / 2.0);
    min_y = std::min(min_y, g.y - g.height / 2.0);
  }
  if (glyphs_.empty()) return {0, 0};
  return {min_x, min_y};
}

layout::Point VirtualSpace::BoundsSize() const {
  layout::Point origin = BoundsOrigin();
  std::lock_guard<std::mutex> lock(mu_);
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();
  for (const Glyph& g : glyphs_) {
    if (!g.visible) continue;
    max_x = std::max(max_x, g.x + g.width / 2.0);
    max_y = std::max(max_y, g.y + g.height / 2.0);
  }
  if (glyphs_.empty()) return {0, 0};
  return {max_x - origin.x, max_y - origin.y};
}

void BuildScene(const dot::Graph& graph, const layout::GraphLayout& layout,
                VirtualSpace* space) {
  std::vector<Glyph> glyphs;
  glyphs.reserve(layout.edges.size() + 2 * layout.nodes.size());
  // Edges first (z=0) so shapes (z=1) and labels (z=2) draw above them.
  for (const layout::EdgeLayout& el : layout.edges) {
    if (el.points.size() < 2 || el.edge < 0) continue;
    const dot::GraphEdge& edge = graph.edges()[static_cast<size_t>(el.edge)];
    Glyph g;
    g.kind = GlyphKind::kEdge;
    g.owner = edge.from + "->" + edge.to;
    g.x = el.points.front().x;
    g.y = el.points.front().y;
    g.x2 = el.points.back().x;
    g.y2 = el.points.back().y;
    g.stroke = Color{0x33, 0x33, 0x33};
    g.z = 0;
    glyphs.push_back(std::move(g));
  }
  for (const layout::NodeLayout& nl : layout.nodes) {
    if (nl.node < 0) continue;
    const dot::GraphNode& node = graph.node(static_cast<size_t>(nl.node));
    Glyph shape;
    shape.kind = GlyphKind::kShape;
    shape.owner = node.id;
    shape.x = nl.x;
    shape.y = nl.y;
    shape.width = nl.width;
    shape.height = nl.height;
    shape.fill = Color::Gray();
    shape.z = 1;
    glyphs.push_back(std::move(shape));

    Glyph text;
    text.kind = GlyphKind::kText;
    text.owner = node.id;
    text.x = nl.x;
    text.y = nl.y;
    text.width = nl.width;
    text.height = nl.height;
    text.text = node.label();
    text.z = 2;
    glyphs.push_back(std::move(text));
  }
  space->AddGlyphs(std::move(glyphs));
}

}  // namespace stetho::viz
