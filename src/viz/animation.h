#ifndef STETHO_VIZ_ANIMATION_H_
#define STETHO_VIZ_ANIMATION_H_

#include <functional>
#include <mutex>
#include <vector>

#include "common/clock.h"
#include "viz/camera.h"
#include "viz/color.h"
#include "viz/virtual_space.h"

namespace stetho::viz {

/// Easing curves for animated transitions (paper §5: "Animation effects
/// such as change of zoom level, color, and transition time between
/// highlights of nodes").
enum class Easing { kLinear, kEaseInOut };

/// Applies easing to t in [0,1].
double ApplyEasing(Easing easing, double t);

/// Time-based animation engine. Animations are keyframe interpolations
/// between a start and an end state; Tick(now) advances all active ones.
/// Driven by a Clock so tests run on virtual time.
class Animator {
 public:
  explicit Animator(Clock* clock) : clock_(clock) {}

  /// Animates the camera to (x, y, altitude) over `duration_us`.
  void AnimateCamera(Camera* camera, double x, double y, double altitude,
                     int64_t duration_us, Easing easing = Easing::kEaseInOut);

  /// Animates a glyph's fill color over `duration_us`.
  void AnimateGlyphFill(VirtualSpace* space, int glyph_id, Color target,
                        int64_t duration_us, Easing easing = Easing::kLinear);

  /// Advances all animations to the clock's current time; finished ones are
  /// snapped to their end state and removed. Returns the number still
  /// running.
  size_t Tick();

  /// Runs Tick in a loop (sleeping `step_us` between ticks) until idle.
  void RunToCompletion(int64_t step_us = 10000);

  size_t active() const;

 private:
  struct Animation {
    int64_t start_us = 0;
    int64_t duration_us = 0;
    Easing easing = Easing::kLinear;
    /// Applies progress t in [0,1]; guaranteed called with t=1 at the end.
    std::function<void(double)> apply;
  };

  Clock* clock_;
  mutable std::mutex mu_;
  std::vector<Animation> animations_;
};

}  // namespace stetho::viz

#endif  // STETHO_VIZ_ANIMATION_H_
