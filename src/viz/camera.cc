#include "viz/camera.h"

#include <algorithm>

namespace stetho::viz {

layout::Point Camera::Project(const layout::Point& world) const {
  double s = Scale();
  return {(world.x - x_) * s + viewport_w_ / 2.0,
          (world.y - y_) * s + viewport_h_ / 2.0};
}

layout::Point Camera::Unproject(const layout::Point& screen) const {
  double s = Scale();
  return {(screen.x - viewport_w_ / 2.0) / s + x_,
          (screen.y - viewport_h_ / 2.0) / s + y_};
}

layout::Point Camera::VisibleOrigin() const {
  double s = Scale();
  return {x_ - viewport_w_ / (2.0 * s), y_ - viewport_h_ / (2.0 * s)};
}

layout::Point Camera::VisibleSize() const {
  double s = Scale();
  return {viewport_w_ / s, viewport_h_ / s};
}

void Camera::FitRect(double wx, double wy, double wwidth, double wheight) {
  MoveTo(wx + wwidth / 2.0, wy + wheight / 2.0);
  if (wwidth <= 0 || wheight <= 0) {
    SetAltitude(0);
    return;
  }
  // Required scale so the rect fits both dimensions.
  double scale =
      std::min(viewport_w_ / wwidth, viewport_h_ / wheight);
  // scale = focal/(focal+alt)  =>  alt = focal*(1-scale)/scale.
  if (scale >= 1.0) {
    SetAltitude(0);
    return;
  }
  SetAltitude(focal_ * (1.0 - scale) / scale);
}

}  // namespace stetho::viz
