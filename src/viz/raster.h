#ifndef STETHO_VIZ_RASTER_H_
#define STETHO_VIZ_RASTER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "viz/renderer.h"

namespace stetho::viz {

/// A plain RGB framebuffer — the "screenshot" target for headless
/// rendering. Pixels outside the buffer are silently clipped on write.
class Raster {
 public:
  Raster(int width, int height, Color background = Color::White());

  int width() const { return width_; }
  int height() const { return height_; }

  Color At(int x, int y) const;
  void Set(int x, int y, Color color);

  /// Binary PPM (P6) encoding of the buffer.
  std::string ToPpm() const;
  /// Writes the PPM to a file.
  Status WritePpm(const std::string& path) const;

  /// Fraction of pixels differing from `other` (sizes must match; returns
  /// 1.0 on size mismatch). Used by golden-image style tests.
  double DiffRatio(const Raster& other) const;

 private:
  int width_;
  int height_;
  std::vector<Color> pixels_;
};

/// Rasterizes a rendered frame: shapes become filled rectangles with a
/// stroke border, edges become Bresenham lines, text glyphs a thin baseline
/// strip (no font rendering — geometry only). The buffer matches the
/// frame's viewport size.
Raster RasterizeFrame(const Frame& frame, Color background = Color::White());

}  // namespace stetho::viz

#endif  // STETHO_VIZ_RASTER_H_
