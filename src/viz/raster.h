#ifndef STETHO_VIZ_RASTER_H_
#define STETHO_VIZ_RASTER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "viz/renderer.h"

namespace stetho::viz {

/// A plain RGB framebuffer — the "screenshot" target for headless
/// rendering. Pixels outside the buffer are silently clipped on write.
class Raster {
 public:
  Raster(int width, int height, Color background = Color::White());

  int width() const { return width_; }
  int height() const { return height_; }

  Color At(int x, int y) const;
  void Set(int x, int y, Color color);

  /// Binary PPM (P6) encoding of the buffer.
  std::string ToPpm() const;
  /// Writes the PPM to a file.
  Status WritePpm(const std::string& path) const;

  /// Fraction of pixels differing from `other` (sizes must match; returns
  /// 1.0 on size mismatch). Used by golden-image style tests.
  double DiffRatio(const Raster& other) const;

 private:
  int width_;
  int height_;
  std::vector<Color> pixels_;
};

/// Rasterizes a rendered frame: shapes become filled rectangles with a
/// stroke border, edges become Bresenham lines, text glyphs a thin baseline
/// strip (no font rendering — geometry only). The buffer matches the
/// frame's viewport size.
Raster RasterizeFrame(const Frame& frame, Color background = Color::White());

/// Keeps a rasterized scene and redraws only the regions dirtied by delta
/// frames, instead of re-rasterizing every command per update.
///
/// Usage: Draw(full_frame) once, then ApplyDelta(Renderer::RenderDelta(...))
/// per update. For each delta command the prior and new screen bounding
/// boxes become dirty rectangles; each dirty rectangle is cleared and every
/// cached command intersecting it is redrawn clipped to the rectangle, in
/// scene order, so the result is pixel-identical to a full redraw. Glyphs
/// redrawn this way count into `stetho_viz_glyphs_redrawn_total`.
///
/// Camera moves, viewport resizes, and glyphs leaving the viewport change
/// pixels everywhere — re-render a full frame and call Draw for those.
/// Delta commands for glyphs unknown to the cache are appended at the end
/// of the scene order (correct for the usual z-above-existing additions).
class IncrementalRasterizer {
 public:
  IncrementalRasterizer(int width, int height,
                        Color background = Color::White());

  /// Full redraw: resets all cached state from `frame`.
  void Draw(const Frame& frame);

  /// Applies a delta frame on top of the last Draw. InvalidArgument when
  /// the delta's viewport does not match the buffer or Draw has not run
  /// yet.
  Status ApplyDelta(const Frame& delta);

  const Raster& raster() const { return raster_; }
  /// Commands redrawn by the last ApplyDelta (dirty-work measure).
  int64_t last_redrawn() const { return last_redrawn_; }

 private:
  struct Box {
    int x1 = 0, y1 = 0, x2 = -1, y2 = -1;  // inclusive; empty when x2 < x1
    bool Intersects(const Box& o) const {
      return x1 <= o.x2 && o.x1 <= x2 && y1 <= o.y2 && o.y1 <= y2;
    }
  };

  static Box BoundsOf(const DrawCommand& cmd);

  Raster raster_;
  Color background_;
  bool has_scene_ = false;
  int64_t last_redrawn_ = 0;
  std::vector<DrawCommand> commands_;         // scene order (z-sorted)
  std::vector<Box> bounds_;                   // parallel to commands_
  std::unordered_map<int, size_t> by_glyph_;  // glyph id -> command index
};

}  // namespace stetho::viz

#endif  // STETHO_VIZ_RASTER_H_
