#ifndef STETHO_COMMON_STRING_UTIL_H_
#define STETHO_COMMON_STRING_UTIL_H_

#include <cstdarg>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace stetho {

/// Splits `input` on each occurrence of `sep`. Empty pieces are kept, so
/// Split("a,,b", ',') yields {"a", "", "b"}.
std::vector<std::string> Split(std::string_view input, char sep);

/// Splits on `sep` and drops empty pieces after trimming whitespace.
std::vector<std::string> SplitAndTrim(std::string_view input, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
bool ContainsString(std::string_view haystack, std::string_view needle);

/// ASCII-only case conversion.
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Strict numeric parsing: the whole string must be consumed.
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// Escapes `"` and `\` for embedding inside a double-quoted DOT/JSON string.
std::string EscapeQuoted(std::string_view s);

/// Inverse of EscapeQuoted for the characters it produces.
std::string UnescapeQuoted(std::string_view s);

/// Escapes XML special characters (&, <, >, ", ') for SVG attribute/text use.
std::string EscapeXml(std::string_view s);

}  // namespace stetho

#endif  // STETHO_COMMON_STRING_UTIL_H_
