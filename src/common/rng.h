#ifndef STETHO_COMMON_RNG_H_
#define STETHO_COMMON_RNG_H_

#include <cstdint>

namespace stetho {

/// Deterministic 64-bit PRNG (SplitMix64). All randomness in the library —
/// data generation, workload synthesis, jitter injection — flows through a
/// seeded instance of this class so every run is reproducible.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t NextRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace stetho

#endif  // STETHO_COMMON_RNG_H_
