#include "common/status.h"

namespace stetho {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kTypeError:
      return "type_error";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace stetho
