#ifndef STETHO_COMMON_LOGGING_H_
#define STETHO_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace stetho {

/// Log severities in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the process-wide minimum level that is emitted (default: kWarning so
/// tests stay quiet; examples raise it to kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; emits on destruction. Thread-safe emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace stetho

#define STETHO_LOG(level)                                        \
  ::stetho::internal::LogMessage(::stetho::LogLevel::k##level,   \
                                 __FILE__, __LINE__)             \
      .stream()

/// Fatal invariant check: logs and aborts when `cond` is false. Used only for
/// programmer errors (never for data-dependent failures, which use Status).
#define STETHO_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      STETHO_LOG(Error) << "CHECK failed: " #cond;                      \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

#endif  // STETHO_COMMON_LOGGING_H_
