#ifndef STETHO_COMMON_STATUS_H_
#define STETHO_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace stetho {

/// Error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kIoError,
  kParseError,
  kTypeError,
  kAborted,
  kResourceExhausted,
};

/// Returns the canonical lower-case name of a status code, e.g. "parse_error".
const char* StatusCodeName(StatusCode code);

/// Lightweight success/error value used across all public APIs.
///
/// The library does not throw exceptions across module boundaries; fallible
/// operations return Status (or Result<T> when they produce a value).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code_name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error holder; the moral equivalent of absl::StatusOr<T>.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value keeps call sites terse:
  /// `return some_value;`.
  Result(T value) : data_(std::move(value)) {}
  /// Implicit construction from a non-OK status: `return st;`.
  Result(Status status) : data_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Returns the error status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  /// Precondition: ok(). Accessing the value of an error Result aborts.
  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define STETHO_RETURN_IF_ERROR(expr)                   \
  do {                                                 \
    ::stetho::Status _st = (expr);                     \
    if (!_st.ok()) return _st;                         \
  } while (0)

/// Evaluates a Result-returning expression, assigning the value on success
/// and propagating the Status on failure.
#define STETHO_ASSIGN_OR_RETURN(lhs, expr)             \
  STETHO_ASSIGN_OR_RETURN_IMPL(                        \
      STETHO_STATUS_CONCAT(_res, __LINE__), lhs, expr)

#define STETHO_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)   \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define STETHO_STATUS_CONCAT_INNER(a, b) a##b
#define STETHO_STATUS_CONCAT(a, b) STETHO_STATUS_CONCAT_INNER(a, b)

}  // namespace stetho

#endif  // STETHO_COMMON_STATUS_H_
