#include "common/clock.h"

#include <chrono>
#include <thread>

namespace stetho {

int64_t SteadyClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SteadyClock::SleepMicros(int64_t micros) {
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

SteadyClock* SteadyClock::Default() {
  static SteadyClock* clock = new SteadyClock();
  return clock;
}

}  // namespace stetho
