#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace stetho {

std::vector<std::string> Split(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitAndTrim(std::string_view input, char sep) {
  std::vector<std::string> out;
  for (const std::string& piece : Split(input, sep)) {
    std::string trimmed = Trim(piece);
    if (!trimmed.empty()) out.push_back(std::move(trimmed));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view TrimView(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ContainsString(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

Result<int64_t> ParseInt64(std::string_view s) {
  std::string buf(TrimView(s));
  if (buf.empty()) return Status::ParseError("empty integer literal");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid integer literal: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  std::string buf(TrimView(s));
  if (buf.empty()) return Status::ParseError("empty float literal");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("float out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid float literal: " + buf);
  }
  return v;
}

std::string EscapeQuoted(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string UnescapeQuoted(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
    }
    out.push_back(s[i]);
  }
  return out;
}

std::string EscapeXml(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace stetho
