#ifndef STETHO_COMMON_CLOCK_H_
#define STETHO_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <memory>

namespace stetho {

/// Time source abstraction. All timestamps in the library are microseconds
/// since an arbitrary epoch. Production paths use SteadyClock; tests and
/// deterministic benchmarks drive a VirtualClock explicitly.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds.
  virtual int64_t NowMicros() const = 0;
  /// Blocks (or logically advances) for `micros` microseconds.
  virtual void SleepMicros(int64_t micros) = 0;
};

/// Monotonic wall clock backed by std::chrono::steady_clock.
class SteadyClock : public Clock {
 public:
  int64_t NowMicros() const override;
  void SleepMicros(int64_t micros) override;

  /// Process-wide shared instance.
  static SteadyClock* Default();
};

/// Deterministic manually-advanced clock. Thread-safe: Advance and NowMicros
/// may be called concurrently. SleepMicros advances the clock itself, so a
/// single-threaded test that "sleeps" observes time passing.
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() const override { return now_.load(std::memory_order_acquire); }
  void SleepMicros(int64_t micros) override { Advance(micros); }

  /// Moves time forward by `micros` (negative deltas are ignored).
  void Advance(int64_t micros) {
    if (micros > 0) now_.fetch_add(micros, std::memory_order_acq_rel);
  }

  /// Jumps to an absolute time; never moves backwards.
  void AdvanceTo(int64_t micros) {
    int64_t cur = now_.load(std::memory_order_acquire);
    while (micros > cur &&
           !now_.compare_exchange_weak(cur, micros, std::memory_order_acq_rel)) {
    }
  }

 private:
  std::atomic<int64_t> now_;
};

}  // namespace stetho

#endif  // STETHO_COMMON_CLOCK_H_
