#ifndef STETHO_SCOPE_TRACE_H_
#define STETHO_SCOPE_TRACE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "profiler/event.h"

namespace stetho::scope {

/// Reads an entire trace file (one FormatTraceLine event per line; blank
/// lines ignored). Used by offline mode, which "needs access to a
/// preexisting dot file and trace file".
Result<std::vector<profiler::TraceEvent>> ReadTraceFile(
    const std::string& path);

/// Incremental reader for a growing trace file — online mode's "trace file
/// continuously receives the trace stream". Poll() returns events appended
/// since the last call. Partial trailing lines are kept pending.
class TraceFileTail {
 public:
  explicit TraceFileTail(std::string path) : path_(std::move(path)) {}

  /// Reads newly appended complete lines; parse failures are skipped and
  /// counted. A missing file yields zero events (it may not exist yet).
  Result<std::vector<profiler::TraceEvent>> Poll();

  int64_t parse_errors() const { return parse_errors_; }

 private:
  std::string path_;
  int64_t offset_ = 0;
  std::string pending_;
  int64_t parse_errors_ = 0;
};

/// Restores emission order in a trace that crossed a reordering transport
/// (UDP datagrams may arrive out of order): stable-sorts by the profiler's
/// global event sequence number. Analyses and the pair-sequence coloring
/// algorithm assume emission order.
void SortTraceByEventId(std::vector<profiler::TraceEvent>* events);

}  // namespace stetho::scope

#endif  // STETHO_SCOPE_TRACE_H_
