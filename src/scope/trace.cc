#include "scope/trace.h"

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"

namespace stetho::scope {

using profiler::TraceEvent;

Result<std::vector<TraceEvent>> ReadTraceFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::IoError("cannot open trace file '" + path + "'");
  }
  std::string content;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);

  std::vector<TraceEvent> events;
  for (const std::string& line : Split(content, '\n')) {
    if (Trim(line).empty()) continue;
    STETHO_ASSIGN_OR_RETURN(TraceEvent event, profiler::ParseTraceLine(line));
    events.push_back(std::move(event));
  }
  return events;
}

Result<std::vector<TraceEvent>> TraceFileTail::Poll() {
  std::vector<TraceEvent> events;
  std::FILE* f = std::fopen(path_.c_str(), "r");
  if (f == nullptr) return events;  // not created yet
  if (std::fseek(f, static_cast<long>(offset_), SEEK_SET) != 0) {
    std::fclose(f);
    return Status::IoError("seek failed on '" + path_ + "'");
  }
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    pending_.append(buf, n);
    offset_ += static_cast<int64_t>(n);
  }
  std::fclose(f);

  size_t start = 0;
  while (true) {
    size_t nl = pending_.find('\n', start);
    if (nl == std::string::npos) break;
    std::string_view line(pending_.data() + start, nl - start);
    if (!TrimView(line).empty()) {
      auto event = profiler::ParseTraceLine(line);
      if (event.ok()) {
        events.push_back(std::move(event).value());
      } else {
        ++parse_errors_;
      }
    }
    start = nl + 1;
  }
  pending_.erase(0, start);
  return events;
}

void SortTraceByEventId(std::vector<TraceEvent>* events) {
  std::stable_sort(events->begin(), events->end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.event < b.event;
                   });
}

}  // namespace stetho::scope
