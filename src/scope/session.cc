#include "scope/session.h"

#include <fstream>

#include "common/string_util.h"
#include "scope/mapping.h"
#include "viz/raster.h"
#include "viz/renderer.h"

namespace stetho::scope {
namespace {

/// Altitude multiplier per zoom step (scroll-wheel notch equivalent).
constexpr double kZoomStep = 1.6;

}  // namespace

InteractiveSession::InteractiveSession(OfflineReplayer* replayer, Clock* clock,
                                       int64_t animation_ms)
    : replayer_(replayer),
      clock_(clock),
      animation_us_(animation_ms * 1000),
      animator_(clock) {}

void InteractiveSession::AnimateCameraTo(double x, double y, double altitude) {
  animator_.AnimateCamera(replayer_->camera(), x, y, altitude, animation_us_,
                          viz::Easing::kEaseInOut);
  animator_.RunToCompletion(animation_us_ / 16);
}

Result<std::string> InteractiveSession::Execute(const std::string& command) {
  std::vector<std::string> words = SplitAndTrim(command, ' ');
  if (words.empty()) return Status::InvalidArgument("empty command");
  auto response = Dispatch(words);
  if (response.ok()) {
    transcript_.emplace_back(command, response.value());
  }
  return response;
}

Result<std::string> InteractiveSession::Dispatch(
    const std::vector<std::string>& words) {
  viz::Camera* cam = replayer_->camera();
  const std::string& verb = words[0];

  if (verb == "help") {
    return std::string(
        "zoom in|out|fit, pan <dx> <dy>, focus <node>, next, prev, "
        "lens on [mag]|off, filter <spec>|off, step, back, rewind, "
        "play <speed> <events>, seek <index>, tooltip <node>, debug, "
        "progress, view, birdseye, shot <file.svg|.ppm>");
  }
  if (verb == "zoom") {
    if (words.size() < 2) return Status::InvalidArgument("zoom in|out|fit");
    if (words[1] == "in") {
      double target = cam->altitude() / kZoomStep;
      if (cam->altitude() < 1) target = 0;
      AnimateCameraTo(cam->x(), cam->y(), target);
    } else if (words[1] == "out") {
      double target = cam->altitude() < 1 ? cam->focal() * 0.5
                                          : cam->altitude() * kZoomStep;
      AnimateCameraTo(cam->x(), cam->y(), target);
    } else if (words[1] == "fit") {
      viz::Camera fitted(cam->viewport_width(), cam->viewport_height());
      layout::Point origin = replayer_->space()->BoundsOrigin();
      layout::Point size = replayer_->space()->BoundsSize();
      fitted.FitRect(origin.x, origin.y, size.x, size.y);
      AnimateCameraTo(fitted.x(), fitted.y(), fitted.altitude());
    } else {
      return Status::InvalidArgument("zoom in|out|fit");
    }
    return StrFormat("altitude=%.1f scale=%.3f", cam->altitude(), cam->Scale());
  }
  if (verb == "pan") {
    if (words.size() != 3) return Status::InvalidArgument("pan <dx> <dy>");
    STETHO_ASSIGN_OR_RETURN(double dx, ParseDouble(words[1]));
    STETHO_ASSIGN_OR_RETURN(double dy, ParseDouble(words[2]));
    AnimateCameraTo(cam->x() + dx, cam->y() + dy, cam->altitude());
    return StrFormat("camera=(%.1f, %.1f)", cam->x(), cam->y());
  }
  if (verb == "focus" || verb == "next" || verb == "prev") {
    std::string node;
    if (verb == "focus") {
      if (words.size() != 2) return Status::InvalidArgument("focus <node>");
      node = words[1];
      STETHO_ASSIGN_OR_RETURN(focused_pc_, PcForNode(node));
    } else {
      // Navigate to the next/previous node in plan order — the paper's
      // "navigate to the next node in the graph" click action.
      int count = static_cast<int>(replayer_->graph().num_nodes());
      if (count == 0) return Status::NotFound("empty graph");
      int delta = verb == "next" ? 1 : -1;
      for (int step = 0; step < count; ++step) {
        focused_pc_ = ((focused_pc_ + delta) % count + count) % count;
        if (replayer_->graph().FindNode(NodeForPc(focused_pc_)) >= 0) break;
      }
      node = NodeForPc(focused_pc_);
    }
    int idx = replayer_->graph().FindNode(node);
    if (idx < 0) return Status::NotFound("no node '" + node + "'");
    // Animated center: reuse the replayer's layout through FocusNode's
    // target, but animate the transition.
    viz::Camera before(cam->viewport_width(), cam->viewport_height());
    before.MoveTo(cam->x(), cam->y());
    STETHO_RETURN_IF_ERROR(replayer_->FocusNode(node));
    double tx = cam->x();
    double ty = cam->y();
    cam->MoveTo(before.x(), before.y());
    AnimateCameraTo(tx, ty, cam->altitude());
    return "focused " + node + ": " + replayer_->TooltipFor(node);
  }
  if (verb == "lens") {
    if (words.size() >= 2 && words[1] == "off") {
      lens_.reset();
      return std::string("lens off");
    }
    if (words.size() >= 2 && words[1] == "on") {
      double mag = 3.0;
      if (words.size() == 3) {
        STETHO_ASSIGN_OR_RETURN(mag, ParseDouble(words[2]));
      }
      lens_ = std::make_unique<viz::FisheyeLens>(
          cam->viewport_width() / 2, cam->viewport_height() / 2,
          std::min(cam->viewport_width(), cam->viewport_height()) / 3, mag);
      return StrFormat("fisheye lens on (x%.1f)", mag);
    }
    return Status::InvalidArgument("lens on [mag] | lens off");
  }
  if (verb == "filter") {
    // The filter-options window: "filter off" restores the full trace;
    // anything else is an EventFilter in its key=value;... serialization,
    // e.g. "filter start=0;done=1;modules=algebra;min_usec=100".
    if (words.size() < 2) return Status::InvalidArgument("filter <spec>|off");
    if (words[1] == "off") {
      replayer_->ClearFilter();
      return StrFormat("filter off (%zu events)", replayer_->size());
    }
    std::string spec;
    for (size_t w = 1; w < words.size(); ++w) spec += words[w];
    STETHO_ASSIGN_OR_RETURN(profiler::EventFilter filter,
                            profiler::EventFilter::Deserialize(spec));
    replayer_->SetFilter(std::move(filter));
    return StrFormat("filter on: %zu of %zu events visible", replayer_->size(),
                     replayer_->size() + replayer_->events_filtered_out());
  }
  if (verb == "step") {
    STETHO_RETURN_IF_ERROR(replayer_->Step());
    return replayer_->DebugWindowText();
  }
  if (verb == "back") {
    STETHO_RETURN_IF_ERROR(replayer_->StepBack());
    return StrFormat("cursor=%zu", replayer_->cursor());
  }
  if (verb == "rewind") {
    replayer_->Rewind();
    return std::string("rewound to start");
  }
  if (verb == "play") {
    if (words.size() != 3) return Status::InvalidArgument("play <speed> <events>");
    STETHO_ASSIGN_OR_RETURN(double speed, ParseDouble(words[1]));
    STETHO_ASSIGN_OR_RETURN(int64_t count, ParseInt64(words[2]));
    STETHO_ASSIGN_OR_RETURN(size_t applied,
                            replayer_->Play(speed, static_cast<size_t>(count)));
    return StrFormat("played %zu events, cursor=%zu/%zu", applied,
                     replayer_->cursor(), replayer_->size());
  }
  if (verb == "seek") {
    if (words.size() != 2) return Status::InvalidArgument("seek <index>");
    STETHO_ASSIGN_OR_RETURN(int64_t index, ParseInt64(words[1]));
    STETHO_RETURN_IF_ERROR(replayer_->SeekTo(static_cast<size_t>(index)));
    return StrFormat("cursor=%zu", replayer_->cursor());
  }
  if (verb == "tooltip") {
    if (words.size() != 2) return Status::InvalidArgument("tooltip <node>");
    return replayer_->TooltipFor(words[1]);
  }
  if (verb == "debug") {
    return replayer_->DebugWindowText();
  }
  if (verb == "progress") {
    double fraction = replayer_->size() == 0
                          ? 0.0
                          : static_cast<double>(replayer_->cursor()) /
                                static_cast<double>(replayer_->size());
    return StrFormat("%zu/%zu events (%.0f%%)", replayer_->cursor(),
                     replayer_->size(), fraction * 100.0);
  }
  if (verb == "view" || verb == "birdseye") {
    viz::Frame frame = verb == "view" ? Render() : replayer_->BirdsEyeView();
    return StrFormat("%zu draw commands, %zu culled", frame.commands.size(),
                     frame.culled);
  }
  if (verb == "shot") {
    // Headless screenshot of the current view: .svg or .ppm by extension.
    if (words.size() != 2) return Status::InvalidArgument("shot <file.svg|.ppm>");
    viz::Frame frame = Render();
    if (EndsWith(words[1], ".ppm")) {
      STETHO_RETURN_IF_ERROR(viz::RasterizeFrame(frame).WritePpm(words[1]));
    } else {
      std::ofstream out(words[1]);
      if (!out) return Status::IoError("cannot write " + words[1]);
      out << frame.ToSvg();
    }
    return "wrote " + words[1];
  }
  return Status::InvalidArgument("unknown command '" + verb + "' (try help)");
}

viz::Frame InteractiveSession::Render() const {
  return viz::Renderer::RenderFrame(*replayer_->space(), *replayer_->camera(),
                                    lens_.get());
}

}  // namespace stetho::scope
