#include "scope/replayer.h"

#include <algorithm>

#include "common/string_util.h"
#include "scope/mapping.h"

namespace stetho::scope {

using profiler::EventState;
using profiler::TraceEvent;

Result<std::unique_ptr<OfflineReplayer>> OfflineReplayer::Create(
    const dot::Graph& graph, std::vector<TraceEvent> events,
    const ReplayOptions& options) {
  STETHO_ASSIGN_OR_RETURN(layout::GraphLayout layout,
                          layout::LayoutGraph(graph));
  return std::unique_ptr<OfflineReplayer>(new OfflineReplayer(
      graph, std::move(layout), std::move(events), options));
}

OfflineReplayer::OfflineReplayer(const dot::Graph& graph,
                                 layout::GraphLayout layout,
                                 std::vector<TraceEvent> events,
                                 const ReplayOptions& options)
    : graph_(graph),
      layout_(std::move(layout)),
      all_events_(std::move(events)),
      events_(all_events_),
      options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : static_cast<Clock*>(SteadyClock::Default())),
      camera_(options.viewport_width, options.viewport_height),
      animator_(clock_) {
  viz::BuildScene(graph_, layout_, &space_);
  edt_ = std::make_unique<viz::EventDispatchThread>(
      clock_, options_.render_interval_us);
  camera_.FitRect(0, 0, layout_.width, layout_.height);
  int max_pc = 0;
  for (const TraceEvent& e : events_) max_pc = std::max(max_pc, e.pc);
  usec_by_pc_.assign(static_cast<size_t>(max_pc) + 1, 0);
}

OfflineReplayer::~OfflineReplayer() {
  if (edt_ != nullptr) edt_->Shutdown();
}

void OfflineReplayer::PostColor(int pc, viz::Color color) {
  int glyph = space_.ShapeFor(NodeForPc(pc));
  if (glyph < 0) return;  // trace event without a plan node: ignore
  if (options_.color_fade_us > 0) {
    // Animated transition: the render task *starts* the fade; the fade
    // itself progresses on Animator ticks.
    int64_t fade = options_.color_fade_us;
    edt_->PostRender([this, glyph, color, fade] {
      animator_.AnimateGlyphFill(&space_, glyph, color, fade);
    });
    return;
  }
  edt_->PostRender([this, glyph, color] {
    (void)space_.MutateGlyph(glyph, [&](viz::Glyph* g) { g->fill = color; });
  });
}

void OfflineReplayer::FinishPendingColorWork() {
  edt_->Drain();
  if (options_.color_fade_us > 0) {
    animator_.RunToCompletion(options_.color_fade_us / 8 + 1);
  }
}

void OfflineReplayer::ResetColors() {
  std::vector<viz::Glyph> glyphs = space_.Snapshot();
  for (const viz::Glyph& g : glyphs) {
    if (g.kind != viz::GlyphKind::kShape) continue;
    (void)space_.MutateGlyph(g.id, [](viz::Glyph* gg) {
      gg->fill = viz::Color::Gray();
    });
  }
  std::fill(usec_by_pc_.begin(), usec_by_pc_.end(), 0);
}

void OfflineReplayer::ApplyEvent(size_t index) {
  const TraceEvent& e = events_[index];
  if (e.state == EventState::kDone && static_cast<size_t>(e.pc) < usec_by_pc_.size()) {
    usec_by_pc_[static_cast<size_t>(e.pc)] += e.usec;
  }
  switch (options_.mode) {
    case ColoringMode::kState:
      PostColor(e.pc, e.state == EventState::kStart ? viz::Color::Red()
                                                    : viz::Color::Green());
      break;
    case ColoringMode::kThreshold:
      if (e.state == EventState::kDone && e.usec >= options_.threshold_us) {
        PostColor(e.pc, viz::Color::Red());
      }
      break;
    case ColoringMode::kGradient: {
      if (e.state != EventState::kDone) break;
      int64_t max_usec = 1;
      for (int64_t u : usec_by_pc_) max_usec = std::max(max_usec, u);
      double t = static_cast<double>(usec_by_pc_[static_cast<size_t>(e.pc)]) /
                 static_cast<double>(max_usec);
      PostColor(e.pc,
                viz::Color::Lerp(viz::Color::White(), viz::Color::Red(), t));
      break;
    }
  }
}

Status OfflineReplayer::Step() {
  if (AtEnd()) return Status::OutOfRange("end of trace");
  ApplyEvent(cursor_);
  ++cursor_;
  FinishPendingColorWork();
  return Status::OK();
}

Status OfflineReplayer::StepBack() {
  if (cursor_ == 0) return Status::OutOfRange("already at start of trace");
  return SeekTo(cursor_ - 1);
}

Result<size_t> OfflineReplayer::Play(double speed, size_t count) {
  if (speed <= 0) return Status::InvalidArgument("speed must be positive");
  size_t applied = 0;
  while (applied < count && !AtEnd()) {
    if (applied > 0 && cursor_ > 0) {
      int64_t gap = events_[cursor_].time_us - events_[cursor_ - 1].time_us;
      if (gap > 0) {
        clock_->SleepMicros(static_cast<int64_t>(
            static_cast<double>(gap) / speed));
      }
    }
    ApplyEvent(cursor_);
    ++cursor_;
    ++applied;
    // Advance any in-flight color fades alongside the replay.
    animator_.Tick();
  }
  FinishPendingColorWork();
  return applied;
}

Status OfflineReplayer::SeekTo(size_t index) {
  if (index > events_.size()) return Status::OutOfRange("seek beyond trace");
  RecomputeColors(index);
  cursor_ = index;
  return Status::OK();
}

void OfflineReplayer::Rewind() {
  ResetColors();
  cursor_ = 0;
  edt_->Drain();
}

void OfflineReplayer::SetFilter(profiler::EventFilter filter) {
  events_.clear();
  for (const TraceEvent& e : all_events_) {
    if (filter.Matches(e)) events_.push_back(e);
  }
  filtered_ = true;
  Rewind();
}

void OfflineReplayer::ClearFilter() {
  events_ = all_events_;
  filtered_ = false;
  Rewind();
}

void OfflineReplayer::RecomputeColors(size_t count) {
  // Rebuild color state from scratch without render pacing (a seek is a
  // single visual update, not an animation).
  ResetColors();
  // Final color per pc after `count` events, replayed with the same rules.
  std::vector<viz::Color> final_color(usec_by_pc_.size(), viz::Color::Gray());
  std::vector<bool> touched(usec_by_pc_.size(), false);
  for (size_t i = 0; i < count; ++i) {
    const TraceEvent& e = events_[i];
    size_t pc = static_cast<size_t>(e.pc);
    if (pc >= usec_by_pc_.size()) continue;
    if (e.state == EventState::kDone) usec_by_pc_[pc] += e.usec;
    switch (options_.mode) {
      case ColoringMode::kState:
        final_color[pc] = e.state == EventState::kStart ? viz::Color::Red()
                                                        : viz::Color::Green();
        touched[pc] = true;
        break;
      case ColoringMode::kThreshold:
        if (e.state == EventState::kDone && e.usec >= options_.threshold_us) {
          final_color[pc] = viz::Color::Red();
          touched[pc] = true;
        }
        break;
      case ColoringMode::kGradient:
        break;  // handled after the loop (needs the final max)
    }
  }
  if (options_.mode == ColoringMode::kGradient) {
    int64_t max_usec = 1;
    for (int64_t u : usec_by_pc_) max_usec = std::max(max_usec, u);
    for (size_t pc = 0; pc < usec_by_pc_.size(); ++pc) {
      if (usec_by_pc_[pc] <= 0) continue;
      double t = static_cast<double>(usec_by_pc_[pc]) /
                 static_cast<double>(max_usec);
      final_color[pc] =
          viz::Color::Lerp(viz::Color::White(), viz::Color::Red(), t);
      touched[pc] = true;
    }
  }
  for (size_t pc = 0; pc < final_color.size(); ++pc) {
    if (!touched[pc]) continue;
    int glyph = space_.ShapeFor(NodeForPc(static_cast<int>(pc)));
    if (glyph < 0) continue;
    viz::Color color = final_color[pc];
    (void)space_.MutateGlyph(glyph,
                             [color](viz::Glyph* g) { g->fill = color; });
  }
}

std::string OfflineReplayer::TooltipFor(const std::string& node_id) const {
  int idx = graph_.FindNode(node_id);
  if (idx < 0) return "unknown node " + node_id;
  const std::string& stmt = graph_.node(static_cast<size_t>(idx)).label();
  auto pc = PcForNode(node_id);
  std::string out = node_id + ": " + stmt;
  if (!pc.ok()) return out;
  // Observed executions of this pc up to the cursor.
  int64_t total_usec = 0;
  int64_t count = 0;
  int64_t last_rss = 0;
  int last_thread = -1;
  for (size_t i = 0; i < cursor_; ++i) {
    const TraceEvent& e = events_[i];
    if (e.pc != pc.value()) continue;
    if (e.state == EventState::kDone) {
      total_usec += e.usec;
      ++count;
      last_rss = e.rss_bytes;
      last_thread = e.thread;
    }
  }
  if (count > 0) {
    out += StrFormat("\nexecutions=%lld total=%lldus thread=%d rss=%lldB",
                     static_cast<long long>(count),
                     static_cast<long long>(total_usec), last_thread,
                     static_cast<long long>(last_rss));
  } else {
    out += "\nnot yet executed";
  }
  return out;
}

std::string OfflineReplayer::DebugWindowText() const {
  if (cursor_ == 0) return "trace not started";
  const TraceEvent& e = events_[cursor_ - 1];
  return StrFormat(
      "event=%lld time=%lldus pc=%d thread=%d state=%s usec=%lld rss=%lldB\n"
      "stmt: %s\nprogress: %zu/%zu events",
      static_cast<long long>(e.event), static_cast<long long>(e.time_us), e.pc,
      e.thread, profiler::EventStateName(e.state),
      static_cast<long long>(e.usec), static_cast<long long>(e.rss_bytes),
      e.stmt.c_str(), cursor_, events_.size());
}

viz::Frame OfflineReplayer::BirdsEyeView() const {
  viz::Camera overview(camera_.viewport_width(), camera_.viewport_height());
  overview.FitRect(0, 0, layout_.width, layout_.height);
  return viz::Renderer::RenderFrame(space_, overview);
}

viz::Frame OfflineReplayer::CurrentView() const {
  return viz::Renderer::RenderFrame(space_, camera_);
}

Status OfflineReplayer::FocusNode(const std::string& node_id) {
  int idx = graph_.FindNode(node_id);
  if (idx < 0) return Status::NotFound("no node '" + node_id + "'");
  const layout::NodeLayout& nl = layout_.nodes[static_cast<size_t>(idx)];
  camera_.CenterOn(nl.x, nl.y);
  return Status::OK();
}

Result<viz::Color> OfflineReplayer::NodeColor(const std::string& node_id) const {
  int glyph = space_.ShapeFor(node_id);
  if (glyph < 0) return Status::NotFound("no shape glyph for '" + node_id + "'");
  STETHO_ASSIGN_OR_RETURN(viz::Glyph g, space_.GetGlyph(glyph));
  return g.fill;
}

}  // namespace stetho::scope
