#include "scope/replayer.h"

#include <algorithm>

#include "common/string_util.h"
#include "layout/layout_cache.h"
#include "obs/metrics.h"
#include "scope/mapping.h"

namespace stetho::scope {

using profiler::EventState;
using profiler::TraceEvent;

namespace {

obs::Histogram* SeekHistogram() {
  static obs::Histogram* h = obs::Registry::Default()->GetOrCreateHistogram(
      "stetho_replay_seek_usec", "Latency of OfflineReplayer seeks",
      obs::Histogram::DefaultLatencyBounds());
  return h;
}

}  // namespace

Result<std::unique_ptr<OfflineReplayer>> OfflineReplayer::Create(
    const dot::Graph& graph, std::vector<TraceEvent> events,
    const ReplayOptions& options) {
  STETHO_ASSIGN_OR_RETURN(std::shared_ptr<const layout::GraphLayout> layout,
                          layout::LayoutCache::Default()->GetOrCompute(graph));
  return std::unique_ptr<OfflineReplayer>(new OfflineReplayer(
      graph, std::move(layout), std::move(events), options));
}

OfflineReplayer::OfflineReplayer(
    const dot::Graph& graph, std::shared_ptr<const layout::GraphLayout> layout,
    std::vector<TraceEvent> events, const ReplayOptions& options)
    : graph_(graph),
      layout_(std::move(layout)),
      all_events_(std::move(events)),
      events_(all_events_),
      options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : static_cast<Clock*>(SteadyClock::Default())),
      camera_(options.viewport_width, options.viewport_height),
      animator_(clock_) {
  viz::BuildScene(graph_, *layout_, &space_);
  edt_ = std::make_unique<viz::EventDispatchThread>(
      clock_, options_.render_interval_us);
  camera_.FitRect(0, 0, layout_->width, layout_->height);
  int max_pc = 0;
  for (const TraceEvent& e : all_events_) max_pc = std::max(max_pc, e.pc);
  size_t num_pcs = static_cast<size_t>(max_pc) + 1;
  usec_by_pc_.assign(num_pcs, 0);
  shape_by_pc_.assign(num_pcs, -1);
  for (size_t pc = 0; pc < num_pcs; ++pc) {
    shape_by_pc_[pc] = space_.ShapeFor(NodeForPc(static_cast<int>(pc)));
  }
  cur_color_.assign(num_pcs, viz::Color::Gray());
  pc_mark_.assign(num_pcs, 0);
  RebuildHistory();
}

OfflineReplayer::~OfflineReplayer() {
  if (edt_ != nullptr) edt_->Shutdown();
}

void OfflineReplayer::RebuildHistory() {
  size_t num_pcs = usec_by_pc_.size();
  history_.assign(num_pcs, {});
  colored_pcs_.clear();
  std::vector<viz::Color> running(num_pcs, viz::Color::Gray());
  std::vector<int64_t> cum(num_pcs, 0);
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    if (e.pc < 0 || static_cast<size_t>(e.pc) >= num_pcs) continue;
    size_t pc = static_cast<size_t>(e.pc);
    bool done = (e.state == EventState::kDone);
    PcEventHistory& h = history_[pc];
    switch (options_.mode) {
      case ColoringMode::kState:
        if (done) cum[pc] += e.usec;
        h.index.push_back(i);
        h.color.push_back(done ? viz::Color::Green() : viz::Color::Red());
        h.cum_usec.push_back(cum[pc]);
        break;
      case ColoringMode::kThreshold:
        if (!done) break;  // starts change neither color nor cumulative time
        cum[pc] += e.usec;
        if (e.usec >= options_.threshold_us) running[pc] = viz::Color::Red();
        h.index.push_back(i);
        h.color.push_back(running[pc]);
        h.cum_usec.push_back(cum[pc]);
        break;
      case ColoringMode::kGradient:
        if (!done) break;
        cum[pc] += e.usec;
        h.index.push_back(i);
        h.color.push_back(viz::Color::Gray());  // derived at seek time
        h.cum_usec.push_back(cum[pc]);
        break;
    }
  }
  for (size_t pc = 0; pc < num_pcs; ++pc) {
    if (!history_[pc].index.empty()) {
      colored_pcs_.push_back(static_cast<int>(pc));
    }
  }
}

void OfflineReplayer::PostColor(int pc, viz::Color color) {
  int glyph = (pc >= 0 && static_cast<size_t>(pc) < shape_by_pc_.size())
                  ? shape_by_pc_[static_cast<size_t>(pc)]
                  : -1;
  if (glyph < 0) return;  // trace event without a plan node: ignore
  if (options_.color_fade_us > 0) {
    // Animated transition: the render task *starts* the fade; the fade
    // itself progresses on Animator ticks.
    int64_t fade = options_.color_fade_us;
    edt_->PostRender([this, glyph, pc, color, fade] {
      animator_.AnimateGlyphFill(&space_, glyph, color, fade);
      cur_color_[static_cast<size_t>(pc)] = color;
    });
    return;
  }
  edt_->PostRender([this, glyph, pc, color] {
    (void)space_.SetFill(glyph, color);
    cur_color_[static_cast<size_t>(pc)] = color;
  });
}

void OfflineReplayer::SetFillIfChanged(int pc, viz::Color color) {
  size_t idx = static_cast<size_t>(pc);
  int glyph = shape_by_pc_[idx];
  if (glyph < 0) return;
  if (cur_color_[idx] == color) return;
  (void)space_.SetFill(glyph, color);
  cur_color_[idx] = color;
}

void OfflineReplayer::FinishPendingColorWork() {
  edt_->Drain();
  if (options_.color_fade_us > 0) {
    animator_.RunToCompletion(options_.color_fade_us / 8 + 1);
  }
}

void OfflineReplayer::ResetColors() {
  for (size_t pc = 0; pc < cur_color_.size(); ++pc) {
    SetFillIfChanged(static_cast<int>(pc), viz::Color::Gray());
  }
  std::fill(usec_by_pc_.begin(), usec_by_pc_.end(), 0);
}

void OfflineReplayer::ApplyEvent(size_t index) {
  const TraceEvent& e = events_[index];
  if (e.state == EventState::kDone && static_cast<size_t>(e.pc) < usec_by_pc_.size()) {
    usec_by_pc_[static_cast<size_t>(e.pc)] += e.usec;
  }
  switch (options_.mode) {
    case ColoringMode::kState:
      PostColor(e.pc, e.state == EventState::kStart ? viz::Color::Red()
                                                    : viz::Color::Green());
      break;
    case ColoringMode::kThreshold:
      if (e.state == EventState::kDone && e.usec >= options_.threshold_us) {
        PostColor(e.pc, viz::Color::Red());
      }
      break;
    case ColoringMode::kGradient: {
      if (e.state != EventState::kDone) break;
      int64_t max_usec = 1;
      for (int64_t u : usec_by_pc_) max_usec = std::max(max_usec, u);
      double t = static_cast<double>(usec_by_pc_[static_cast<size_t>(e.pc)]) /
                 static_cast<double>(max_usec);
      PostColor(e.pc,
                viz::Color::Lerp(viz::Color::White(), viz::Color::Red(), t));
      break;
    }
  }
}

Status OfflineReplayer::Step() {
  if (AtEnd()) return Status::OutOfRange("end of trace");
  ApplyEvent(cursor_);
  ++cursor_;
  FinishPendingColorWork();
  return Status::OK();
}

Status OfflineReplayer::StepBack() {
  if (cursor_ == 0) return Status::OutOfRange("already at start of trace");
  return SeekTo(cursor_ - 1);
}

Result<size_t> OfflineReplayer::Play(double speed, size_t count) {
  if (speed <= 0) return Status::InvalidArgument("speed must be positive");
  size_t applied = 0;
  while (applied < count && !AtEnd()) {
    if (applied > 0 && cursor_ > 0) {
      int64_t gap = events_[cursor_].time_us - events_[cursor_ - 1].time_us;
      if (gap > 0) {
        clock_->SleepMicros(static_cast<int64_t>(
            static_cast<double>(gap) / speed));
      }
    }
    ApplyEvent(cursor_);
    ++cursor_;
    ++applied;
    // Advance any in-flight color fades alongside the replay.
    animator_.Tick();
  }
  FinishPendingColorWork();
  return applied;
}

Status OfflineReplayer::SeekTo(size_t index) {
  if (index > events_.size()) return Status::OutOfRange("seek beyond trace");
  int64_t t0 = obs::Active() ? SteadyClock::Default()->NowMicros() : 0;
  // Flush in-flight color work so the mirror matches the applied state,
  // then move only the pcs whose color can differ between the cursors.
  FinishPendingColorWork();
  ApplyColorsAt(index);
  cursor_ = index;
  if (obs::Active()) {
    SeekHistogram()->Observe(SteadyClock::Default()->NowMicros() - t0);
  }
  return Status::OK();
}

void OfflineReplayer::Rewind() {
  FinishPendingColorWork();
  ResetColors();
  cursor_ = 0;
}

void OfflineReplayer::SetFilter(profiler::EventFilter filter) {
  events_.clear();
  for (const TraceEvent& e : all_events_) {
    if (filter.Matches(e)) events_.push_back(e);
  }
  filtered_ = true;
  RebuildHistory();
  Rewind();
}

void OfflineReplayer::ClearFilter() {
  events_ = all_events_;
  filtered_ = false;
  RebuildHistory();
  Rewind();
}

void OfflineReplayer::ApplyColorsAt(size_t target) {
  // Number of history entries of `h` that precede event index `target`.
  auto entries_before = [target](const PcEventHistory& h) {
    return static_cast<size_t>(
        std::lower_bound(h.index.begin(), h.index.end(), target) -
        h.index.begin());
  };
  if (options_.mode == ColoringMode::kGradient) {
    // The ramp divides by the global maximum, which shifts with the
    // cursor, so every colored pc is re-derived (and diffed) on a seek.
    int64_t max_usec = 1;
    for (int pc : colored_pcs_) {
      size_t k = entries_before(history_[static_cast<size_t>(pc)]);
      int64_t cum =
          k > 0 ? history_[static_cast<size_t>(pc)].cum_usec[k - 1] : 0;
      usec_by_pc_[static_cast<size_t>(pc)] = cum;
      max_usec = std::max(max_usec, cum);
    }
    for (int pc : colored_pcs_) {
      int64_t cum = usec_by_pc_[static_cast<size_t>(pc)];
      viz::Color color =
          cum > 0 ? viz::Color::Lerp(viz::Color::White(), viz::Color::Red(),
                                     static_cast<double>(cum) /
                                         static_cast<double>(max_usec))
                  : viz::Color::Gray();
      SetFillIfChanged(pc, color);
    }
    return;
  }
  // State/threshold colors are per-pc: only pcs touched by events between
  // the two cursors can change, and each is settled with one binary search.
  size_t lo = std::min(target, cursor_);
  size_t hi = std::max(target, cursor_);
  ++mark_gen_;
  for (size_t i = lo; i < hi; ++i) {
    const TraceEvent& e = events_[i];
    if (e.pc < 0 || static_cast<size_t>(e.pc) >= usec_by_pc_.size()) continue;
    size_t pc = static_cast<size_t>(e.pc);
    if (pc_mark_[pc] == mark_gen_) continue;
    pc_mark_[pc] = mark_gen_;
    const PcEventHistory& h = history_[pc];
    size_t k = entries_before(h);
    usec_by_pc_[pc] = k > 0 ? h.cum_usec[k - 1] : 0;
    SetFillIfChanged(static_cast<int>(pc),
                     k > 0 ? h.color[k - 1] : viz::Color::Gray());
  }
}

std::string OfflineReplayer::TooltipFor(const std::string& node_id) const {
  int idx = graph_.FindNode(node_id);
  if (idx < 0) return "unknown node " + node_id;
  const std::string& stmt = graph_.node(static_cast<size_t>(idx)).label();
  auto pc = PcForNode(node_id);
  std::string out = node_id + ": " + stmt;
  if (!pc.ok()) return out;
  // Observed executions of this pc up to the cursor.
  int64_t total_usec = 0;
  int64_t count = 0;
  int64_t last_rss = 0;
  int last_thread = -1;
  for (size_t i = 0; i < cursor_; ++i) {
    const TraceEvent& e = events_[i];
    if (e.pc != pc.value()) continue;
    if (e.state == EventState::kDone) {
      total_usec += e.usec;
      ++count;
      last_rss = e.rss_bytes;
      last_thread = e.thread;
    }
  }
  if (count > 0) {
    out += StrFormat("\nexecutions=%lld total=%lldus thread=%d rss=%lldB",
                     static_cast<long long>(count),
                     static_cast<long long>(total_usec), last_thread,
                     static_cast<long long>(last_rss));
  } else {
    out += "\nnot yet executed";
  }
  return out;
}

std::string OfflineReplayer::DebugWindowText() const {
  if (cursor_ == 0) return "trace not started";
  const TraceEvent& e = events_[cursor_ - 1];
  return StrFormat(
      "event=%lld time=%lldus pc=%d thread=%d state=%s usec=%lld rss=%lldB\n"
      "stmt: %s\nprogress: %zu/%zu events",
      static_cast<long long>(e.event), static_cast<long long>(e.time_us), e.pc,
      e.thread, profiler::EventStateName(e.state),
      static_cast<long long>(e.usec), static_cast<long long>(e.rss_bytes),
      e.stmt.c_str(), cursor_, events_.size());
}

viz::Frame OfflineReplayer::BirdsEyeView() const {
  viz::Camera overview(camera_.viewport_width(), camera_.viewport_height());
  overview.FitRect(0, 0, layout_->width, layout_->height);
  return viz::Renderer::RenderFrame(space_, overview);
}

viz::Frame OfflineReplayer::CurrentView() const {
  return viz::Renderer::RenderFrame(space_, camera_);
}

Status OfflineReplayer::FocusNode(const std::string& node_id) {
  int idx = graph_.FindNode(node_id);
  if (idx < 0) return Status::NotFound("no node '" + node_id + "'");
  const layout::NodeLayout& nl = layout_->nodes[static_cast<size_t>(idx)];
  camera_.CenterOn(nl.x, nl.y);
  return Status::OK();
}

Result<viz::Color> OfflineReplayer::NodeColor(const std::string& node_id) const {
  int glyph = space_.ShapeFor(node_id);
  if (glyph < 0) return Status::NotFound("no shape glyph for '" + node_id + "'");
  STETHO_ASSIGN_OR_RETURN(viz::Glyph g, space_.GetGlyph(glyph));
  return g.fill;
}

}  // namespace stetho::scope
