#ifndef STETHO_SCOPE_COLORING_H_
#define STETHO_SCOPE_COLORING_H_

#include <vector>

#include "profiler/event.h"
#include "viz/color.h"

namespace stetho::scope {

/// One coloring verdict for a plan node.
struct ColorDecision {
  int pc = -1;
  viz::Color color;
};

/// Algorithm 1 (paper §4.2.1): pair-sequence analysis over the sampled
/// event buffer.
///
/// Instructions whose start and done events appear *adjacent* in the buffer
/// (with more instructions following the pair) executed in the least time
/// and are not colored. An instruction whose start is not immediately
/// followed by its done — and which is not the final event (still
/// unjudged) — is colored RED (long-running). A done event not part of an
/// adjacent pair turns its node GREEN (it had been colored RED earlier).
///
/// The paper's worked example — {start,1},{done,1},{start,2},{done,2},
/// {start,3},{start,4} — yields exactly one decision: pc 3 RED.
std::vector<ColorDecision> PairSequenceColoring(
    const std::vector<profiler::TraceEvent>& buffer);

/// Incremental form of algorithm 1: feed events one at a time as they
/// arrive; decisions() is at all times exactly what
/// PairSequenceColoring(<events observed so far>) would return, without
/// rescanning. The last observed event stays withheld (the rescan's "not
/// yet judged" rule for a trailing start), so a start's RED verdict is
/// emitted only once a successor shows it unpaired.
///
/// Not thread-safe; callers feeding from a listener callback serialize
/// externally.
class PairSequenceTracker {
 public:
  /// Observes the next event in stream order, appending any decisions it
  /// settles.
  void Observe(const profiler::TraceEvent& event);

  /// All decisions so far, in rescan order.
  const std::vector<ColorDecision>& decisions() const { return decisions_; }

  /// Decisions appended since the previous TakeNew() call — the per-batch
  /// delta an online monitor applies instead of re-deriving the full set.
  std::vector<ColorDecision> TakeNew();

  /// Forgets all state (new buffer / new query).
  void Reset();

 private:
  bool has_pending_ = false;
  profiler::TraceEvent pending_{};  ///< trailing start, not yet judged
  std::vector<ColorDecision> decisions_;
  size_t taken_ = 0;
};

/// Algorithm 2 (paper §4.2.1, closing remark): the user supplies an
/// execution-time threshold. Done events at or above the threshold color
/// RED (costly); below-threshold done events are uncolored; instructions
/// still running at the end of the buffer color ORANGE.
std::vector<ColorDecision> ThresholdColoring(
    const std::vector<profiler::TraceEvent>& buffer, int64_t threshold_us);

/// Extension (paper §6 future work): gradient coloring displaying a range
/// of execution times — each completed instruction gets a white→red ramp
/// color proportional to its share of the buffer's maximum duration.
std::vector<ColorDecision> GradientColoring(
    const std::vector<profiler::TraceEvent>& buffer);

}  // namespace stetho::scope

#endif  // STETHO_SCOPE_COLORING_H_
