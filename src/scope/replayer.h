#ifndef STETHO_SCOPE_REPLAYER_H_
#define STETHO_SCOPE_REPLAYER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "dot/graph.h"
#include "layout/sugiyama.h"
#include "profiler/event.h"
#include "profiler/filter.h"
#include "scope/coloring.h"
#include "viz/animation.h"
#include "viz/camera.h"
#include "viz/event_dispatch.h"
#include "viz/renderer.h"
#include "viz/virtual_space.h"

namespace stetho::scope {

/// How replayed events color the plan nodes.
enum class ColoringMode {
  /// Live state colors: start → RED, done → GREEN (paper §4.2.1 base rule).
  kState,
  /// Only done events at/above a threshold color RED (algorithm 2).
  kThreshold,
  /// White→red ramp by cumulative execution time (paper §6 extension).
  kGradient,
};

struct ReplayOptions {
  Clock* clock = nullptr;            ///< nullptr = steady clock
  int64_t render_interval_us = 150000;  ///< EDT pacing (paper's 150 ms)
  ColoringMode mode = ColoringMode::kState;
  int64_t threshold_us = 1000;
  /// When > 0, node colors fade to their target over this duration instead
  /// of switching instantly (paper §5: animation effects on color changes).
  int64_t color_fade_us = 0;
  double viewport_width = 1280;
  double viewport_height = 800;
};

/// Offline trace replay (paper §4.1/§5): drives the glyph scene from a
/// recorded trace with step / play / pause / fast-forward / rewind controls,
/// color-coded execution state, tool-tip text, a debug window, and a
/// birds-eye view.
///
/// All coloring flows through the event-dispatch thread, reproducing the
/// render-pacing behaviour of the Java implementation. Deterministic when
/// constructed over a VirtualClock.
class OfflineReplayer {
 public:
  /// Builds scene state (layout + glyphs + camera) for `graph` and takes
  /// ownership of the trace.
  static Result<std::unique_ptr<OfflineReplayer>> Create(
      const dot::Graph& graph, std::vector<profiler::TraceEvent> events,
      const ReplayOptions& options = {});

  ~OfflineReplayer();

  /// --- transport controls ---

  /// Applies the next event; OutOfRange at end of trace.
  Status Step();
  /// Rewinds one event (recomputes colors up to the new cursor).
  Status StepBack();
  /// Replays up to `count` events, sleeping the inter-event trace gap
  /// scaled by 1/speed between consecutive events (speed 2 = twice as
  /// fast). Returns the number of events applied.
  Result<size_t> Play(double speed, size_t count);
  /// Jumps to absolute event index (fast-forward or rewind).
  Status SeekTo(size_t index);
  /// Back to the beginning, all node colors reset.
  void Rewind();

  size_t cursor() const { return cursor_; }
  size_t size() const { return events_.size(); }
  bool AtEnd() const { return cursor_ >= events_.size(); }

  /// --- filter options window (paper §5: "monitoring individual
  /// instruction using Stethoscope filter options window") ---

  /// Restricts the replay to events passing `filter` and rewinds. The full
  /// trace is kept; clearing restores it.
  void SetFilter(profiler::EventFilter filter);
  void ClearFilter();
  bool filtered() const { return filtered_; }
  /// Events hidden by the active filter.
  size_t events_filtered_out() const { return all_events_.size() - events_.size(); }

  /// --- inspection (the demo's tool-tip / debug window / birds-eye) ---

  /// Tool-tip text for a node: its MAL statement plus observed timing.
  std::string TooltipFor(const std::string& node_id) const;

  /// Debug-window text for the instruction at the cursor.
  std::string DebugWindowText() const;

  /// Whole-graph frame (camera fitted to the full scene).
  viz::Frame BirdsEyeView() const;

  /// Frame through the current camera.
  viz::Frame CurrentView() const;

  /// Centers the camera on a node ("navigate to the next node in the
  /// graph"); NotFound for unknown ids.
  Status FocusNode(const std::string& node_id);

  /// The color currently applied to a node's shape (White = uncolored).
  Result<viz::Color> NodeColor(const std::string& node_id) const;

  viz::VirtualSpace* space() { return &space_; }
  viz::Camera* camera() { return &camera_; }
  viz::EventDispatchThread* dispatcher() { return edt_.get(); }
  /// Color-fade animation engine (active when color_fade_us > 0). Step/Play
  /// run pending fades to completion before returning; callers that want to
  /// observe mid-fade colors tick it manually.
  viz::Animator* animator() { return &animator_; }
  const dot::Graph& graph() const { return graph_; }
  const std::vector<profiler::TraceEvent>& events() const { return events_; }

 private:
  /// Per-pc event history over the active (filtered) trace: for each event
  /// touching the pc, its index, the node color after it, and the
  /// cumulative done-usec after it. Seeks binary-search these instead of
  /// replaying the trace, making SeekTo O(changed nodes · log events).
  struct PcEventHistory {
    std::vector<size_t> index;      ///< event indices, ascending
    std::vector<viz::Color> color;  ///< color after that event (state/threshold)
    std::vector<int64_t> cum_usec;  ///< cumulative done-usec after that event
  };

  OfflineReplayer(const dot::Graph& graph,
                  std::shared_ptr<const layout::GraphLayout> layout,
                  std::vector<profiler::TraceEvent> events,
                  const ReplayOptions& options);

  /// Applies event `index`'s coloring through the EDT.
  void ApplyEvent(size_t index);
  /// Rebuilds the per-pc histories from events_ (ctor / filter changes).
  void RebuildHistory();
  /// Moves the applied color state from cursor_ to `target`, touching only
  /// pcs whose color can differ (gradient mode re-derives every colored pc
  /// because the global maximum shifts). Callers flush the EDT first.
  void ApplyColorsAt(size_t target);
  /// Sets a node's fill (render-paced; faded when color_fade_us > 0).
  void PostColor(int pc, viz::Color color);
  /// Applies `color` directly (no pacing) when it differs from the mirror.
  void SetFillIfChanged(int pc, viz::Color color);
  /// Drains the render queue and finishes outstanding color fades.
  void FinishPendingColorWork();
  void ResetColors();

  dot::Graph graph_;
  std::shared_ptr<const layout::GraphLayout> layout_;  ///< cache-shared
  std::vector<profiler::TraceEvent> all_events_;  ///< unfiltered trace
  std::vector<profiler::TraceEvent> events_;      ///< active (filtered) view
  bool filtered_ = false;
  ReplayOptions options_;
  Clock* clock_;
  viz::VirtualSpace space_;
  viz::Camera camera_;
  viz::Animator animator_;
  std::unique_ptr<viz::EventDispatchThread> edt_;
  size_t cursor_ = 0;
  /// Cumulative usec per pc (gradient mode input).
  std::vector<int64_t> usec_by_pc_;
  /// Shape glyph id per pc (-1 when the trace pc has no plan node).
  std::vector<int> shape_by_pc_;
  /// Mirror of the currently applied fill per pc; seeks diff against it so
  /// unchanged nodes cost nothing. Written on the EDT inside posted tasks,
  /// read on the caller thread only after an EDT drain (happens-before).
  std::vector<viz::Color> cur_color_;
  std::vector<PcEventHistory> history_;
  std::vector<int> colored_pcs_;  ///< pcs with at least one history entry
  /// Seek scratch: last mark generation per pc (dedups touched pcs).
  std::vector<uint32_t> pc_mark_;
  uint32_t mark_gen_ = 0;
};

}  // namespace stetho::scope

#endif  // STETHO_SCOPE_REPLAYER_H_
