#ifndef STETHO_SCOPE_ONLINE_H_
#define STETHO_SCOPE_ONLINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/progress.h"
#include "common/clock.h"
#include "common/status.h"
#include "net/fault_injection.h"
#include "net/pipe_health.h"
#include "scope/analysis.h"
#include "scope/coloring.h"
#include "scope/replayer.h"
#include "scope/textual.h"
#include "server/mserver.h"

namespace stetho::scope {

/// Options for an online monitoring session.
struct OnlineOptions {
  /// Time source for the dot-arrival deadline and monitoring sleeps;
  /// nullptr = steady clock. Tests pass a VirtualClock to drive the
  /// timeout deterministically.
  Clock* clock = nullptr;
  /// How long to wait for the server to push the plan's dot file over the
  /// stream before giving up.
  int64_t dot_timeout_us = 30'000'000;
  /// EDT render pacing (the paper's 150 ms Java limitation).
  int64_t render_interval_us = 150000;
  /// Sampling-buffer analysis period: the monitoring thread re-runs the
  /// pair-sequence algorithm this often.
  int64_t analysis_period_us = 20000;
  /// Client-side filter.
  profiler::EventFilter filter;
  /// Trace file the textual stethoscope redirects the stream into
  /// ("" = memory only).
  std::string trace_path;
  size_t buffer_capacity = 8192;
  double viewport_width = 1280;
  double viewport_height = 800;
  /// Transport faults injected between server and monitor (seeded; see
  /// net::FaultInjectingSender). All-zero probabilities = clean wire. The
  /// injector's exact counts land in OnlineReport::injected_* so tests can
  /// hold the receiver's accounting to them.
  net::FaultOptions fault;
  /// Called once per analysis round with a one-line live status (progress,
  /// ETA, pipe health) — the `stethoscope --watch` hook. May be empty.
  std::function<void(const std::string&)> status_line;
  /// Cross-run baseline store for live straggler detection (nullptr = the
  /// process-wide obs::ProfileStore::Default()). When the monitored plan's
  /// shape has a stored profile, every analysis round compares each
  /// instruction's completed — or still-running — duration against the
  /// baseline and flags stragglers: the glyph gets a magenta deviation
  /// stroke, the status line appends "stragglers:N", and
  /// OnlineReport::stragglers records the flags.
  obs::ProfileStore* profile = nullptr;
  /// A pc is a straggler when its duration is at least `straggler_ratio` x
  /// the baseline median AND exceeds it by max(straggler_mad_k x MAD,
  /// straggler_min_usec). Mirrors the trace-perf-regression lint gates.
  double straggler_ratio = 1.5;
  double straggler_mad_k = 4.0;
  int64_t straggler_min_usec = 10;
};

/// One instruction flagged by the live straggler comparator.
struct StragglerFlag {
  int pc = 0;
  int64_t usec = 0;          ///< duration at flag time (running or final)
  double baseline_median = 0;
  bool completed = false;    ///< false = flagged while still running
};

/// Result of monitoring one query online.
struct OnlineReport {
  server::QueryOutcome outcome;            ///< the query's server-side result
  std::string dot;                         ///< dot received over the stream
  size_t graph_nodes = 0;
  std::vector<profiler::TraceEvent> events;  ///< trace as received (sampled)
  int64_t events_received = 0;
  int64_t events_filtered = 0;
  size_t analysis_rounds = 0;              ///< buffer analyses performed
  size_t color_updates = 0;                ///< node color changes posted
  /// Progress estimate captured at every analysis round — the data behind
  /// the demo's "monitor the progress of query plan execution" window.
  /// Model-weighted (analysis::ProgressEstimator) and clamped monotone;
  /// ends at exactly 1.0 even when a lossy wire ate done-events.
  std::vector<double> progress_series;
  /// ETA captured alongside each progress sample (-1 until estimable).
  std::vector<int64_t> eta_series_usec;
  UtilizationReport utilization;
  ParallelismDiagnosis parallelism;
  std::vector<OperatorStats> operators;
  double final_progress = 0;
  /// Delivery health of the monitored stream (sequence-gap accounting),
  /// finalized — pending gaps have settled into `lost`.
  net::PipeHealthSummary pipe_health;
  /// Exact injected-fault counts when OnlineOptions::fault was active.
  int64_t injected_dropped = 0;
  int64_t injected_duplicated = 0;
  int64_t injected_reordered = 0;
  /// Instructions the baseline comparator flagged, in flag order (one entry
  /// per pc; a flag fired mid-run is not re-reported at completion).
  std::vector<StragglerFlag> stragglers;
  /// Magenta deviation-stroke overlays posted to the scene.
  size_t straggler_updates = 0;
};

/// Online mode (paper §4.2): multi-threaded pipeline wiring a running
/// Mserver to live plan-graph coloring.
///
///  - the textual Stethoscope listens for the UDP stream in its own thread;
///  - the query is launched in a separate thread;
///  - the dot file arrives over the stream before execution and is turned
///    into the in-memory graph + glyph scene;
///  - a monitoring thread samples the trace buffer and applies the
///    pair-sequence coloring algorithm (§4.2.1) through the render-paced
///    event-dispatch thread.
class OnlineMonitor {
 public:
  OnlineMonitor(server::Mserver* server, OnlineOptions options)
      : server_(server), options_(std::move(options)) {}

  /// Monitors one query end-to-end and returns the full report.
  Result<OnlineReport> MonitorQuery(const std::string& sql);

  /// The replayer-equivalent scene of the last monitored query (valid after
  /// MonitorQuery returns OK); exposes the colored glyph space, camera,
  /// tooltips...
  OfflineReplayer* scene() { return scene_.get(); }

 private:
  server::Mserver* server_;
  OnlineOptions options_;
  std::unique_ptr<OfflineReplayer> scene_;
};

}  // namespace stetho::scope

#endif  // STETHO_SCOPE_ONLINE_H_
