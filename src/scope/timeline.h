#ifndef STETHO_SCOPE_TIMELINE_H_
#define STETHO_SCOPE_TIMELINE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "profiler/event.h"

namespace stetho::scope {

/// Options for the per-thread execution timeline rendering.
struct TimelineOptions {
  double width = 1200;       ///< drawing width in px (time axis)
  double row_height = 22;    ///< per-thread lane height
  double label_width = 90;   ///< left gutter for thread labels
  /// Intervals shorter than this many µs are widened to stay visible.
  int64_t min_visible_us = 0;
};

/// One executed-instruction interval recovered from the trace.
struct TimelineInterval {
  int thread = 0;
  int pc = 0;
  int64_t start_us = 0;  ///< relative to the trace start
  int64_t end_us = 0;
  std::string op;        ///< "module.function"
};

/// Extracts per-thread instruction intervals from a trace (done events carry
/// thread + duration). Returned sorted by (thread, start).
std::vector<TimelineInterval> ExtractIntervals(
    const std::vector<profiler::TraceEvent>& events);

/// Renders the paper's "utilization distribution of threads" as an SVG
/// Gantt chart: one lane per worker thread, one bar per executed
/// instruction, colored by operator module, with the MAL statement as the
/// hover tooltip (<title>). Empty traces yield a small empty chart.
std::string RenderUtilizationTimeline(
    const std::vector<profiler::TraceEvent>& events,
    const TimelineOptions& options = {});

/// Renders the engine's live column memory over time (the trace's rss
/// field) as an SVG line chart — the companion view to the demo's "memory
/// usage by operators" analysis. Peak is annotated.
std::string RenderMemoryCurve(const std::vector<profiler::TraceEvent>& events,
                              const TimelineOptions& options = {});

}  // namespace stetho::scope

#endif  // STETHO_SCOPE_TIMELINE_H_
