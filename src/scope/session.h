#ifndef STETHO_SCOPE_SESSION_H_
#define STETHO_SCOPE_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "scope/replayer.h"
#include "viz/animation.h"
#include "viz/lens.h"

namespace stetho::scope {

/// Scripted interactive session over a replayer's scene — the headless
/// equivalent of ZGrviewer's keyboard/mouse interface (paper §3.1: "keyboard
/// and mouse scroll based navigation with zooming ability on individual
/// nodes and edges"; §5: zoom level changes, transition animations, lenses,
/// filter/debug windows).
///
/// Commands are text ("zoom in", "focus n4", "step", "play 8 100",
/// "lens on", "tooltip n4"...) so demos and tests can drive the exact
/// command stream a human would produce.
class InteractiveSession {
 public:
  /// Wraps a replayer (not owned). `animation_ms` is the camera-transition
  /// duration used for animated navigation.
  InteractiveSession(OfflineReplayer* replayer, Clock* clock,
                     int64_t animation_ms = 300);

  /// Executes one command; returns its textual response. Commands:
  ///   zoom in | zoom out | zoom fit      camera altitude control (animated)
  ///   pan <dx> <dy>                       move camera in world units
  ///   focus <node>                        animated center on a node
  ///   next | prev                         focus the next/previous node in
  ///                                       plan (pc) order
  ///   lens on [mag] | lens off            fisheye lens at the view center
  ///   step | back | rewind                replay transport
  ///   play <speed> <events>               fast-forward
  ///   seek <event-index>                  jump
  ///   tooltip <node>                      node tool-tip text
  ///   debug                               debug window text
  ///   progress                            replay progress
  ///   view | birdseye                     render stats of the frame
  ///   help                                command list
  Result<std::string> Execute(const std::string& command);

  /// Renders the current view (honoring the active lens).
  viz::Frame Render() const;

  /// The transcript of executed commands and responses.
  const std::vector<std::pair<std::string, std::string>>& transcript() const {
    return transcript_;
  }

  viz::Camera* camera() { return replayer_->camera(); }
  bool lens_active() const { return lens_ != nullptr; }

 private:
  Result<std::string> Dispatch(const std::vector<std::string>& words);
  /// Starts an animated camera transition and runs it to completion (the
  /// clock advances; on a VirtualClock this is instantaneous and exact).
  void AnimateCameraTo(double x, double y, double altitude);

  OfflineReplayer* replayer_;
  Clock* clock_;
  int64_t animation_us_;
  viz::Animator animator_;
  std::unique_ptr<viz::FisheyeLens> lens_;
  int focused_pc_ = -1;
  std::vector<std::pair<std::string, std::string>> transcript_;
};

}  // namespace stetho::scope

#endif  // STETHO_SCOPE_SESSION_H_
