#include "scope/coloring.h"

#include <algorithm>
#include <map>

namespace stetho::scope {

using profiler::EventState;
using profiler::TraceEvent;

std::vector<ColorDecision> PairSequenceColoring(
    const std::vector<TraceEvent>& buffer) {
  std::vector<ColorDecision> decisions;
  size_t i = 0;
  while (i < buffer.size()) {
    const TraceEvent& e = buffer[i];
    if (e.state == EventState::kStart) {
      // Adjacent start/done pair for the same pc: cheapest instructions,
      // not colored.
      if (i + 1 < buffer.size() &&
          buffer[i + 1].state == EventState::kDone &&
          buffer[i + 1].pc == e.pc) {
        i += 2;
        continue;
      }
      // A start with nothing after it is the event currently being
      // produced — not yet judged.
      if (i + 1 >= buffer.size()) {
        ++i;
        continue;
      }
      // Unpaired start with later instructions: long-running — RED.
      decisions.push_back({e.pc, viz::Color::Red()});
      ++i;
      continue;
    }
    // A done that was not consumed as part of an adjacent pair closes a
    // long-running instruction — GREEN.
    decisions.push_back({e.pc, viz::Color::Green()});
    ++i;
  }
  return decisions;
}

void PairSequenceTracker::Observe(const TraceEvent& event) {
  // Mirror of the rescan's cursor rules. Only a start can be pending: it
  // is judged by its immediate successor — a matching done consumes the
  // pair silently, anything else proves it long-running (RED). A done
  // never waits: unconsumed dones are GREEN immediately, and a trailing
  // done is judged identically by the rescan.
  if (has_pending_) {
    has_pending_ = false;
    if (event.state == EventState::kDone && event.pc == pending_.pc) {
      return;  // adjacent pair: cheapest instructions, not colored
    }
    decisions_.push_back({pending_.pc, viz::Color::Red()});
  }
  if (event.state == EventState::kStart) {
    pending_ = event;
    has_pending_ = true;
    return;
  }
  decisions_.push_back({event.pc, viz::Color::Green()});
}

std::vector<ColorDecision> PairSequenceTracker::TakeNew() {
  std::vector<ColorDecision> fresh(decisions_.begin() + taken_,
                                   decisions_.end());
  taken_ = decisions_.size();
  return fresh;
}

void PairSequenceTracker::Reset() {
  has_pending_ = false;
  decisions_.clear();
  taken_ = 0;
}

std::vector<ColorDecision> ThresholdColoring(
    const std::vector<TraceEvent>& buffer, int64_t threshold_us) {
  std::vector<ColorDecision> decisions;
  std::map<int, int> running;  // pc -> outstanding start count
  for (const TraceEvent& e : buffer) {
    if (e.state == EventState::kStart) {
      ++running[e.pc];
      continue;
    }
    auto it = running.find(e.pc);
    if (it != running.end() && it->second > 0) --it->second;
    if (e.usec >= threshold_us) {
      decisions.push_back({e.pc, viz::Color::Red()});
    }
  }
  for (const auto& [pc, count] : running) {
    if (count > 0) decisions.push_back({pc, viz::Color::Orange()});
  }
  return decisions;
}

std::vector<ColorDecision> GradientColoring(
    const std::vector<TraceEvent>& buffer) {
  // Total completed time per pc (mitosis clones share a pc only if the
  // plan reused it; normally pcs are unique, so this is per instruction).
  std::map<int, int64_t> usec_by_pc;
  for (const TraceEvent& e : buffer) {
    if (e.state == EventState::kDone) usec_by_pc[e.pc] += e.usec;
  }
  int64_t max_usec = 0;
  for (const auto& [pc, usec] : usec_by_pc) {
    max_usec = std::max(max_usec, usec);
  }
  std::vector<ColorDecision> decisions;
  for (const auto& [pc, usec] : usec_by_pc) {
    double t = max_usec > 0 ? static_cast<double>(usec) /
                                  static_cast<double>(max_usec)
                            : 0.0;
    decisions.push_back(
        {pc, viz::Color::Lerp(viz::Color::White(), viz::Color::Red(), t)});
  }
  return decisions;
}

}  // namespace stetho::scope
