#include "scope/timeline.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"

namespace stetho::scope {

using profiler::EventState;
using profiler::TraceEvent;

namespace {

std::string OperatorOf(const std::string& stmt) {
  size_t start = 0;
  size_t assign = stmt.find(":=");
  if (assign != std::string::npos) start = assign + 2;
  while (start < stmt.size() && stmt[start] == ' ') ++start;
  size_t paren = stmt.find('(', start);
  if (paren == std::string::npos) return stmt.substr(start);
  return stmt.substr(start, paren - start);
}

/// Deterministic pastel color per module name.
std::string ModuleColor(const std::string& op) {
  size_t dot = op.find('.');
  std::string module = dot == std::string::npos ? op : op.substr(0, dot);
  uint64_t h = 1469598103934665603ULL;
  for (char c : module) h = (h ^ static_cast<uint64_t>(c)) * 1099511628211ULL;
  // Pastel: keep channels in [96, 224].
  int r = 96 + static_cast<int>(h % 128);
  int g = 96 + static_cast<int>((h >> 8) % 128);
  int b = 96 + static_cast<int>((h >> 16) % 128);
  return StrFormat("#%02x%02x%02x", r, g, b);
}

}  // namespace

std::vector<TimelineInterval> ExtractIntervals(
    const std::vector<TraceEvent>& events) {
  std::vector<TimelineInterval> intervals;
  if (events.empty()) return intervals;
  int64_t t0 = events.front().time_us;
  for (const TraceEvent& e : events) t0 = std::min(t0, e.time_us);
  for (const TraceEvent& e : events) {
    if (e.state != EventState::kDone) continue;
    TimelineInterval iv;
    iv.thread = e.thread;
    iv.pc = e.pc;
    iv.end_us = e.time_us - t0;
    iv.start_us = iv.end_us - e.usec;
    if (iv.start_us < 0) iv.start_us = 0;
    iv.op = OperatorOf(e.stmt);
    intervals.push_back(std::move(iv));
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const TimelineInterval& a, const TimelineInterval& b) {
              if (a.thread != b.thread) return a.thread < b.thread;
              return a.start_us < b.start_us;
            });
  return intervals;
}

std::string RenderUtilizationTimeline(const std::vector<TraceEvent>& events,
                                      const TimelineOptions& options) {
  std::vector<TimelineInterval> intervals = ExtractIntervals(events);

  // Lanes in thread order.
  std::map<int, size_t> lane;
  int64_t span_us = 1;
  for (const TimelineInterval& iv : intervals) {
    lane.emplace(iv.thread, lane.size());
    span_us = std::max(span_us, iv.end_us);
  }
  double height =
      options.row_height * static_cast<double>(std::max<size_t>(lane.size(), 1)) +
      28;  // header row
  std::string out = StrFormat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" "
      "height=\"%.0f\">\n",
      options.width + options.label_width, height);
  out += StrFormat(
      "  <text x=\"4\" y=\"16\" font-family=\"monospace\" font-size=\"12\">"
      "thread timeline — %zu instructions over %lldus</text>\n",
      intervals.size(), static_cast<long long>(span_us));

  double usable = options.width;
  auto x_of = [&](int64_t us) {
    return options.label_width +
           usable * static_cast<double>(us) / static_cast<double>(span_us);
  };
  for (const auto& [thread, row] : lane) {
    double y = 24 + options.row_height * static_cast<double>(row);
    out += StrFormat(
        "  <text x=\"4\" y=\"%.1f\" font-family=\"monospace\" "
        "font-size=\"11\">thread %d</text>\n",
        y + options.row_height * 0.7, thread);
    out += StrFormat(
        "  <line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
        "stroke=\"#dddddd\"/>\n",
        options.label_width, y + options.row_height,
        options.label_width + usable, y + options.row_height);
  }
  for (const TimelineInterval& iv : intervals) {
    double y = 24 + options.row_height *
                        static_cast<double>(lane[iv.thread]);
    int64_t start = iv.start_us;
    int64_t end = std::max(iv.end_us, start + options.min_visible_us);
    double x1 = x_of(start);
    double w = std::max(0.5, x_of(end) - x1);
    out += StrFormat(
        "  <rect class=\"interval\" data-pc=\"%d\" x=\"%.2f\" y=\"%.1f\" "
        "width=\"%.2f\" height=\"%.1f\" fill=\"%s\" stroke=\"#666666\" "
        "stroke-width=\"0.3\"><title>pc=%d %s (%lldus)</title></rect>\n",
        iv.pc, x1, y + 2, w, options.row_height - 6,
        ModuleColor(iv.op).c_str(), iv.pc, EscapeXml(iv.op).c_str(),
        static_cast<long long>(iv.end_us - iv.start_us));
  }
  out += "</svg>\n";
  return out;
}

std::string RenderMemoryCurve(const std::vector<TraceEvent>& events,
                              const TimelineOptions& options) {
  // Points in emission order: (relative time, rss).
  std::vector<std::pair<int64_t, int64_t>> points;
  int64_t t0 = 0;
  int64_t span_us = 1;
  int64_t peak = 0;
  if (!events.empty()) {
    t0 = events.front().time_us;
    for (const TraceEvent& e : events) t0 = std::min(t0, e.time_us);
    for (const TraceEvent& e : events) {
      int64_t t = e.time_us - t0;
      points.emplace_back(t, e.rss_bytes);
      span_us = std::max(span_us, t);
      peak = std::max(peak, e.rss_bytes);
    }
    std::stable_sort(points.begin(), points.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  const double chart_h = 180;
  const double height = chart_h + 40;
  std::string out = StrFormat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" "
      "height=\"%.0f\">\n",
      options.width + options.label_width, height);
  out += StrFormat(
      "  <text x=\"4\" y=\"16\" font-family=\"monospace\" font-size=\"12\">"
      "engine memory — peak %lld bytes over %lldus</text>\n",
      static_cast<long long>(peak), static_cast<long long>(span_us));
  double y_base = 24 + chart_h;
  out += StrFormat(
      "  <line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
      "stroke=\"#888888\"/>\n",
      options.label_width, y_base, options.label_width + options.width, y_base);
  if (!points.empty() && peak > 0) {
    std::string path = "  <polyline fill=\"none\" stroke=\"#c03030\" "
                       "stroke-width=\"1.2\" points=\"";
    for (const auto& [t, rss] : points) {
      double x = options.label_width +
                 options.width * static_cast<double>(t) /
                     static_cast<double>(span_us);
      double y = y_base - chart_h * static_cast<double>(rss) /
                              static_cast<double>(peak);
      path += StrFormat("%.1f,%.1f ", x, y);
    }
    path += "\"/>\n";
    out += path;
  }
  out += "</svg>\n";
  return out;
}

}  // namespace stetho::scope
