#include "scope/textual.h"

#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"
#include "net/trace_stream.h"
#include "obs/metrics.h"

namespace stetho::scope {

using net::StreamFraming;
using profiler::TraceEvent;

TextualStethoscope::TextualStethoscope(TextualOptions options)
    : options_(std::move(options)),
      buffer_(std::make_shared<profiler::RingBufferSink>(
          options_.buffer_capacity)) {
  if (!options_.trace_path.empty()) {
    auto file = profiler::FileSink::Open(options_.trace_path);
    if (file.ok()) {
      trace_file_ = std::move(file).value();
    } else {
      STETHO_LOG(Warning) << "textual stethoscope: "
                          << file.status().ToString();
    }
  }
}

TextualStethoscope::~TextualStethoscope() { Stop(); }

Status TextualStethoscope::AddServer(
    const std::string& name, std::unique_ptr<net::DatagramReceiver> receiver) {
  if (!running_.load()) return Status::Aborted("stethoscope stopped");
  net::DatagramReceiver* raw = receiver.get();
  std::lock_guard<std::mutex> lock(mu_);
  auto& health = health_[name];
  if (health == nullptr) {
    health = std::make_unique<net::StreamHealth>(options_.health);
  }
  receivers_.push_back(std::move(receiver));
  threads_.emplace_back(&TextualStethoscope::ListenLoop, this, name, raw,
                        health.get());
  return Status::OK();
}

void TextualStethoscope::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& r : receivers_) r->Close();
    threads.swap(threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  // The streams are gone: any sequence number still missing is lost.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, health] : health_) health->Finalize();
}

void TextualStethoscope::SetEventCallback(
    std::function<void(const std::string&, const TraceEvent&)> cb) {
  std::lock_guard<std::mutex> lock(mu_);
  callback_ = std::move(cb);
}

std::vector<TraceEvent> TextualStethoscope::BufferSnapshot() const {
  return buffer_->Snapshot();
}

Result<std::string> TextualStethoscope::DotFor(const std::string& query) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = dot_complete_.find(query);
  if (it == dot_complete_.end()) {
    return Status::NotFound("no complete dot file for query '" + query + "'");
  }
  return it->second;
}

std::vector<std::string> TextualStethoscope::CompletedDots() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [query, dot] : dot_complete_) out.push_back(query);
  return out;
}

std::vector<std::string> TextualStethoscope::FinishedQueries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_;
}

bool TextualStethoscope::QueryFinished(const std::string& query) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& q : finished_) {
    if (q == query) return true;
  }
  return false;
}

Status TextualStethoscope::Flush() {
  if (trace_file_ != nullptr) return trace_file_->Flush();
  return Status::OK();
}

net::PipeHealthSummary TextualStethoscope::HealthFor(
    const std::string& server) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = health_.find(server);
  return it != health_.end() ? it->second->Snapshot()
                             : net::PipeHealthSummary{};
}

net::PipeHealthSummary TextualStethoscope::Health() const {
  std::lock_guard<std::mutex> lock(mu_);
  net::PipeHealthSummary total;
  for (const auto& [name, health] : health_) {
    net::PipeHealthSummary s = health->Snapshot();
    total.observed += s.observed;
    total.duplicated += s.duplicated;
    total.reordered += s.reordered;
    total.lost += s.lost;
    total.pending += s.pending;
    total.clock_offset_us = std::min(total.clock_offset_us, s.clock_offset_us);
    total.last_latency_us = std::max(total.last_latency_us, s.last_latency_us);
    total.max_latency_us = std::max(total.max_latency_us, s.max_latency_us);
    total.newest_emit_us = std::max(total.newest_emit_us, s.newest_emit_us);
  }
  return total;
}

void TextualStethoscope::ObserveStaleness() {
  if (!obs::Active()) return;
  Clock* clock = options_.clock != nullptr
                     ? options_.clock
                     : static_cast<Clock*>(SteadyClock::Default());
  const int64_t now = clock->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, health] : health_) health->ObserveStaleness(now);
}

namespace {

/// A stream-framing (control) line — never a trace event.
bool IsControlLine(const std::string& line) {
  return StartsWith(line, StreamFraming::kDotBegin) ||
         StartsWith(line, StreamFraming::kDotLine) ||
         StartsWith(line, StreamFraming::kDotEnd) ||
         StartsWith(line, StreamFraming::kEof);
}

}  // namespace

void TextualStethoscope::ListenLoop(std::string server,
                                    net::DatagramReceiver* receiver,
                                    net::StreamHealth* health) {
  std::vector<std::string> batch;
  std::string payload;
  const size_t max_batch =
      options_.max_batch > 0 ? static_cast<size_t>(options_.max_batch) : 1;
  while (running_.load(std::memory_order_relaxed)) {
    auto got = receiver->Receive(&payload, options_.poll_ms);
    if (!got.ok()) return;  // closed
    if (!got.value()) continue;
    // Drain whatever else is already queued (zero timeout) so one wakeup
    // processes a burst as a single batch. A Close mid-drain still gets
    // the collected batch processed before the loop exits.
    batch.clear();
    batch.push_back(std::move(payload));
    bool closed = false;
    while (batch.size() < max_batch) {
      auto more = receiver->Receive(&payload, 0);
      if (!more.ok()) {
        closed = true;
        break;
      }
      if (!more.value()) break;
      batch.push_back(std::move(payload));
    }
    HandleBatch(server, batch, health);
    if (closed) return;
  }
}

void TextualStethoscope::HandleBatch(const std::string& server,
                                     const std::vector<std::string>& lines,
                                     net::StreamHealth* health) {
  std::function<void(const std::string&, const TraceEvent&)> cb;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cb = callback_;
  }
  // One ingest timestamp per batch feeds the emit→ingest latency estimate.
  // The clock read is gated on the obs kill switch (counting gaps is free,
  // timing them is opt-in); a negative ingest skips the latency path.
  int64_t ingest_us = -1;
  if (obs::Active()) {
    Clock* clock = options_.clock != nullptr
                       ? options_.clock
                       : static_cast<Clock*>(SteadyClock::Default());
    ingest_us = clock->NowMicros();
  }

  std::vector<TraceEvent> events;  // current contiguous run of accepted events
  events.reserve(lines.size());
  int64_t received = 0;
  int64_t filtered = 0;
  int64_t malformed = 0;
  auto flush_events = [&] {
    if (received > 0) received_.fetch_add(received, std::memory_order_relaxed);
    if (filtered > 0) filtered_.fetch_add(filtered, std::memory_order_relaxed);
    if (malformed > 0) {
      malformed_.fetch_add(malformed, std::memory_order_relaxed);
    }
    received = filtered = malformed = 0;
    if (events.empty()) return;
    buffer_->ConsumeBatch(events.data(), events.size());
    if (trace_file_ != nullptr) {
      trace_file_->ConsumeBatch(events.data(), events.size());
    }
    if (cb) {
      for (const TraceEvent& e : events) cb(server, e);
    }
    events.clear();
  };

  size_t i = 0;
  while (i < lines.size()) {
    if (IsControlLine(lines[i])) {
      // Flush pending events first so state observable through the framing
      // markers (e.g. %EOF → QueryFinished) never runs ahead of the buffer.
      flush_events();
      std::lock_guard<std::mutex> lock(mu_);
      while (i < lines.size() && IsControlLine(lines[i])) {
        // %EOF closes the query: sequence numbers still missing will never
        // arrive (delivery is ordered behind the marker), so the open gaps
        // settle into `lost` now instead of waiting for Stop().
        if (StartsWith(lines[i], StreamFraming::kEof)) health->Finalize();
        HandleControlLocked(server, lines[i]);
        ++i;
      }
      continue;
    }
    auto event = profiler::ParseTraceLine(lines[i]);
    ++i;
    if (!event.ok()) {
      ++malformed;
      continue;
    }
    ++received;
    // Health accounting runs before the client-side filter: the wire
    // delivered the event, so suppressing it locally must not read as
    // transport loss.
    health->Observe(event.value(), ingest_us);
    if (!options_.filter.Matches(event.value())) {
      ++filtered;
      continue;
    }
    events.push_back(std::move(event).value());
  }
  flush_events();
}

void TextualStethoscope::HandleControlLocked(const std::string& server,
                                             const std::string& line) {
  // Demultiplex dot-file content from trace events (paper §4.2). Queries
  // from different servers may share a name ("s0"), so all dot/EOF keys are
  // namespaced "server/query".
  if (StartsWith(line, StreamFraming::kDotBegin)) {
    std::string key =
        server + "/" + line.substr(std::strlen(StreamFraming::kDotBegin));
    dot_partial_[key].clear();
    return;
  }
  if (StartsWith(line, StreamFraming::kDotLine)) {
    // Dot lines carry no query tag; append to this server's open
    // accumulations (exactly one at a time per server in practice).
    std::string prefix = server + "/";
    for (auto& [key, content] : dot_partial_) {
      if (!StartsWith(key, prefix)) continue;
      content += line.substr(std::strlen(StreamFraming::kDotLine));
      content += '\n';
    }
    return;
  }
  if (StartsWith(line, StreamFraming::kDotEnd)) {
    std::string key =
        server + "/" + line.substr(std::strlen(StreamFraming::kDotEnd));
    auto it = dot_partial_.find(key);
    if (it != dot_partial_.end()) {
      dot_complete_[key] = std::move(it->second);
      dot_partial_.erase(it);
    }
    return;
  }
  std::string key =
      server + "/" + line.substr(std::strlen(StreamFraming::kEof));
  finished_.push_back(key);
}

}  // namespace stetho::scope
